package passivelight

import (
	"time"

	"passivelight/internal/telemetry"
)

// pipeConfig is the resolved configuration a Pipeline runs with; it
// is assembled exclusively through functional options so every knob
// has a working zero value.
type pipeConfig struct {
	fs            float64
	decode        DecodeOptions
	preRollSec    float64
	quietHoldSec  float64
	maxSegmentSec float64
	workers       int
	shards        int
	idleTimeout   time.Duration
	queueSamples  int
	maxSessions   int
	eventBuffer   int
	codebook      *Codebook
	autoSelect    []ReceiverDevice
	autoSelectOn  bool
	sinks         []func(Event)
	statsEvery    time.Duration
	statsSink     func(StreamStats)
	metrics       *telemetry.Registry
	onSessionEnd  func(session uint64, stats SessionStats, reason string)
}

// Option configures a Pipeline.
type Option func(*pipeConfig)

// WithSampleRate overrides the source's sample rate (Hz). Required
// when the source does not declare one (a ChunkSource built with fs 0)
// and its chunks do not carry their own.
func WithSampleRate(fs float64) Option {
	return func(c *pipeConfig) { c.fs = fs }
}

// WithDecodeOptions tunes the per-segment adaptive threshold decode,
// exactly as for the batch Decode.
func WithDecodeOptions(opt DecodeOptions) Option {
	return func(c *pipeConfig) { c.decode = opt }
}

// WithExpectedSymbols bounds the number of symbols sliced per packet
// (preamble + data); zero decodes to the end of each segment. It is a
// shorthand for the same field of WithDecodeOptions.
func WithExpectedSymbols(n int) Option {
	return func(c *pipeConfig) { c.decode.ExpectedSymbols = n }
}

// WithPreRoll sets the quiet context retained before detected
// activity, in seconds. Zero selects 1 s; negative switches the
// pipeline to batch-equivalent mode (the entire stream is retained
// and decoded on end-of-stream, bit-identical to the batch Decode of
// the same samples — unbounded memory, for tests and offline replay).
func WithPreRoll(sec float64) Option {
	return func(c *pipeConfig) { c.preRollSec = sec }
}

// WithQuietHold sets how long the signal must sit back in the noise
// band before an active segment decodes (seconds). Zero selects 1.5 s.
func WithQuietHold(sec float64) Option {
	return func(c *pipeConfig) { c.quietHoldSec = sec }
}

// WithMaxSegment bounds one active segment (seconds); a segment that
// grows past it is force-decoded. Zero selects 60 s.
func WithMaxSegment(sec float64) Option {
	return func(c *pipeConfig) { c.maxSegmentSec = sec }
}

// WithWorkers sets the decode worker pool size. Zero selects
// runtime.GOMAXPROCS(0).
func WithWorkers(n int) Option {
	return func(c *pipeConfig) { c.workers = n }
}

// WithShards splits the engine's session table into n independent
// shards (per-shard map, lock, run queue and workers), so feeders and
// decode workers on different cores never contend on a single mutex
// or queue. Zero selects min(workers, GOMAXPROCS); values above the
// worker count are clamped so every shard keeps at least one worker.
// One shard reproduces the unsharded engine exactly.
func WithShards(n int) Option {
	return func(c *pipeConfig) { c.shards = n }
}

// WithIdleTimeout evicts sessions not fed for this long (their open
// segment is flushed first). Zero selects 60 s; negative disables
// eviction.
func WithIdleTimeout(d time.Duration) Option {
	return func(c *pipeConfig) { c.idleTimeout = d }
}

// WithQueue sets the per-session ring buffer capacity in samples; a
// real-time session that falls behind drops its oldest samples. Zero
// selects 32768.
func WithQueue(samples int) Option {
	return func(c *pipeConfig) { c.queueSamples = samples }
}

// WithMaxSessions bounds the concurrent session table. Zero selects
// 65536.
func WithMaxSessions(n int) Option {
	return func(c *pipeConfig) { c.maxSessions = n }
}

// WithEventBuffer sets the capacity of the event channel returned by
// Stream. Zero selects 1024.
func WithEventBuffer(n int) Option {
	return func(c *pipeConfig) { c.eventBuffer = n }
}

// WithCodebook matches every decoded payload against a
// Hamming-separated codebook: events gain CodeIndex (the nearest
// codeword) and CodeDistance (bit errors corrected). The paper's
// restricted code sets (Sec. 4.2) as a pipeline stage.
func WithCodebook(cb *Codebook) Option {
	return func(c *pipeConfig) { c.codebook = cb }
}

// WithReceiverAutoSelect picks the receiver device per the paper's
// Sec. 4.4 dual-receiver policy — the most sensitive candidate that
// does not saturate at the source's ambient level — before the source
// opens. No candidates selects the four Fig. 11 devices. Only sources
// that know their ambient level support it (NewCarPassSource); others
// fail Run/Stream with a configuration error.
func WithReceiverAutoSelect(candidates ...ReceiverDevice) Option {
	return func(c *pipeConfig) {
		c.autoSelect = candidates
		c.autoSelectOn = true
	}
}

// WithSink registers a callback invoked for every event, in stream
// order, before the event is delivered on the Stream channel. Sinks
// must not block; they run on the pipeline's forwarding goroutine.
func WithSink(fn func(Event)) Option {
	return func(c *pipeConfig) { c.sinks = append(c.sinks, fn) }
}

// WithTelemetry records the pipeline's observability surface into the
// registry: the engine's session/throughput/drop counters and
// decode-step histogram (pl_engine_*), plus per-strategy event
// counters and the detection latency histogram
// pl_pipeline_detection_latency_ns{strategy="..."} — stamped from the
// arrival of the chunk that completed each segment to the event's
// emit on the pipeline's forwarder. Serve the registry live with
// TelemetryHandler, or read it with Snapshot/WritePrometheus. One
// registry may be shared across pipelines and other layers; metric
// registration is get-or-create.
func WithTelemetry(t *Telemetry) Option {
	return func(c *pipeConfig) { c.metrics = t }
}

// WithSessionEnd registers a release hook fired once per streaming
// session after its final flush has emitted: reason "end" for an
// explicit end (a Reset/End chunk, EndSession), "idle" for idle
// eviction, "close" for pipeline shutdown. The hook runs on the
// releasing goroutine and must not block. Cluster engines use it to
// export per-session decode totals at handoff time. Streaming
// strategies only (Threshold, TwoPhase); whole-stream strategies
// ignore it.
func WithSessionEnd(fn func(session uint64, stats SessionStats, reason string)) Option {
	return func(c *pipeConfig) { c.onSessionEnd = fn }
}

// WithStats registers a metrics sink called with an engine snapshot
// every interval while the pipeline runs (and once at shutdown).
// interval <= 0 selects 1 s.
func WithStats(interval time.Duration, fn func(StreamStats)) Option {
	return func(c *pipeConfig) {
		if interval <= 0 {
			interval = time.Second
		}
		c.statsEvery = interval
		c.statsSink = fn
	}
}
