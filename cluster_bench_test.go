package passivelight

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"passivelight/internal/cluster"
	"passivelight/internal/rxnet"
	"passivelight/internal/scenario"
)

// benchSession is one pre-rendered session trace, chunked for replay.
type benchSession struct {
	fs     float64
	chunks [][]float64
	bytes  int64
}

// renderBenchSessions expands and renders the fleet load once, outside
// the benchmark timer — socket transport and decode are under test,
// not scene simulation.
func renderBenchSessions(b *testing.B, n, chunkSize int) []benchSession {
	b.Helper()
	load, err := scenario.GetLoad("fleet-load")
	if err != nil {
		b.Fatal(err)
	}
	load.Sessions = n
	specs, err := load.Expand()
	if err != nil {
		b.Fatal(err)
	}
	out := make([]benchSession, n)
	for k, spec := range specs {
		world, err := spec.CompileMulti()
		if err != nil {
			b.Fatal(err)
		}
		tr, err := world.Links[0].Link.Simulate()
		if err != nil {
			b.Fatal(err)
		}
		s := benchSession{fs: tr.Fs}
		for chunk := range tr.Chunks(chunkSize) {
			c := append([]float64(nil), chunk...)
			s.chunks = append(s.chunks, c)
			s.bytes += int64(8 * len(c))
		}
		out[k] = s
	}
	return out
}

// benchClusterReplay measures end-to-end fleet throughput over real
// sockets: sessions stream concurrently into target (a bare engine, or
// a router fronting it) and an iteration completes when every packet
// of the wave has decoded.
func benchClusterReplay(b *testing.B, routed bool) {
	const (
		fleet     = 16
		chunkSize = 2048
	)
	sessions := renderBenchSessions(b, fleet, chunkSize)

	src, err := ListenSourceConfig("127.0.0.1:0", NetSourceConfig{})
	if err != nil {
		b.Fatal(err)
	}
	var decoded atomic.Int64
	pipe, err := NewPipeline(src, Threshold(),
		WithExpectedSymbols(8),
		WithIdleTimeout(100*time.Millisecond),
		WithSink(func(ev Event) {
			if ev.Err == nil {
				decoded.Add(1)
			}
		}),
	)
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events, err := pipe.Stream(ctx)
	if err != nil {
		b.Fatal(err)
	}
	go func() {
		for range events {
		}
	}()

	target := src.Addr()
	if routed {
		ring, err := cluster.NewRing(0, cluster.Member{ID: "engine", Addr: src.Addr()})
		if err != nil {
			b.Fatal(err)
		}
		router, err := cluster.NewRouter(cluster.RouterConfig{Ring: ring})
		if err != nil {
			b.Fatal(err)
		}
		defer router.Close()
		target, err = router.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
	}

	var perIter int64
	for _, s := range sessions {
		perIter += s.bytes
	}
	b.SetBytes(perIter)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for k, s := range sessions {
			wg.Add(1)
			go func(nodeID uint32, s benchSession) {
				defer wg.Done()
				node, err := rxnet.Dial(ctx, target, rxnet.Hello{NodeID: nodeID})
				if err != nil {
					b.Error(err)
					return
				}
				defer node.Close()
				for _, chunk := range s.chunks {
					if err := node.StreamChunk(0, s.fs, chunk); err != nil {
						b.Error(err)
						return
					}
				}
			}(uint32(i*fleet+k+1), s)
		}
		wg.Wait()
		// The wave is done when its packets decode, not when its bytes
		// are written: decode completion is the cluster's unit of work.
		want := int64((i + 1) * fleet)
		for decoded.Load() < want {
			time.Sleep(200 * time.Microsecond)
		}
	}
}

// BenchmarkClusterDirect is the baseline: the fleet streams straight
// into one engine's listener.
func BenchmarkClusterDirect(b *testing.B) { benchClusterReplay(b, false) }

// BenchmarkClusterRouted adds the consistent-hash router in front of
// the same engine — its cost is the delta against BenchmarkClusterDirect.
func BenchmarkClusterRouted(b *testing.B) { benchClusterReplay(b, true) }
