package passivelight

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"
)

// TestMultiLinkRxLanesAttribution is the acceptance lock for the
// multi-receiver fan-out: the rx-lanes preset compiles to two
// heterogeneous links that decode end to end through one Pipeline,
// and every detection attributes back to its receiver via the stream
// id.
func TestMultiLinkRxLanesAttribution(t *testing.T) {
	spec, err := ScenarioPreset("rx-lanes")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Receivers) < 2 {
		t.Fatalf("rx-lanes declares %d receivers, want >= 2", len(spec.Receivers))
	}
	src := NewMultiSource(spec).Chunked(2048)
	pipe, err := NewPipeline(src, TwoPhase(), WithExpectedSymbols(spec.Decode.ExpectedSymbols))
	if err != nil {
		t.Fatal(err)
	}
	events, err := pipe.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	streams := src.Streams()
	if len(streams) != len(spec.Receivers) {
		t.Fatalf("%d streams for %d receivers", len(streams), len(spec.Receivers))
	}
	byStream := map[uint64][]string{}
	for _, ev := range events {
		if ev.Err != nil {
			t.Fatalf("session %d event error: %v", ev.Session, ev.Err)
		}
		byStream[ev.Session] = append(byStream[ev.Session], ev.BitString())
	}
	for _, st := range streams {
		if st.Session != 0 || ScenarioStreamReceiver(st.ID) != st.Receiver {
			t.Fatalf("stream %s keyed (%d,%d) id=%d", st.Name, st.Session, st.Receiver, st.ID)
		}
		got := byStream[st.ID]
		if len(got) != len(st.Packets) {
			t.Fatalf("receiver %s decoded %d packets (%v), scene encodes %d", st.Name, len(got), got, len(st.Packets))
		}
		for i, want := range st.Packets {
			if got[i] != want.Packet.BitString() {
				t.Fatalf("receiver %s packet %d: decoded %q, want %q", st.Name, i, got[i], want.Packet.BitString())
			}
		}
	}
}

// TestLoadSourceFleetThroughPipeline: a fleet-load expansion streams
// sessions × receivers through one pipeline, and every staggered
// session's packet comes back attributed to its session index.
func TestLoadSourceFleetThroughPipeline(t *testing.T) {
	load, err := ScenarioLoadPreset("fleet-load")
	if err != nil {
		t.Fatal(err)
	}
	load.Sessions = 12
	src := NewLoadSource(load)
	pipe, err := NewPipeline(src, Threshold(), WithExpectedSymbols(8))
	if err != nil {
		t.Fatal(err)
	}
	events, err := pipe.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	decoded := map[int][]string{}
	for _, ev := range events {
		if ev.Err != nil {
			t.Fatalf("session %d event error: %v", ev.Session, ev.Err)
		}
		decoded[ScenarioStreamSession(ev.Session)] = append(decoded[ScenarioStreamSession(ev.Session)], ev.BitString())
	}
	streams := src.Streams()
	if len(streams) != load.Sessions {
		t.Fatalf("%d streams for %d sessions", len(streams), load.Sessions)
	}
	for _, st := range streams {
		got := decoded[st.Session]
		if len(got) != len(st.Packets) {
			t.Fatalf("session %d (%s): decoded %v, want %d packets", st.Session, st.Scenario, got, len(st.Packets))
		}
		for i, want := range st.Packets {
			if got[i] != want.Packet.BitString() {
				t.Fatalf("session %d packet %d: decoded %q, want %q", st.Session, i, got[i], want.Packet.BitString())
			}
		}
	}
	if st := pipe.Stats(); st.Detections != int64(load.Sessions) {
		t.Fatalf("engine counted %d detections for %d sessions", st.Detections, load.Sessions)
	}
}

// TestLoadOversubscriptionSurfacesTableFull: a fleet larger than
// WithMaxSessions with eviction disabled must fail loudly — the
// ErrSessionTableFull sentinel unwraps from Pipeline.Err and the
// engine counters record the rejected feed.
func TestLoadOversubscriptionSurfacesTableFull(t *testing.T) {
	load, err := ScenarioLoadPreset("fleet-load")
	if err != nil {
		t.Fatal(err)
	}
	load.Sessions = 12
	const maxSessions = 4
	src := NewLoadSource(load)
	pipe, err := NewPipeline(src, Threshold(),
		WithExpectedSymbols(8),
		WithMaxSessions(maxSessions),
		WithIdleTimeout(-1), // no eviction: the table can only grow
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.Run(context.Background()); err == nil {
		t.Fatal("oversubscribed fleet should fail the pipeline")
	}
	if err := pipe.Err(); !errors.Is(err, ErrSessionTableFull) {
		t.Fatalf("pipeline error %v, want ErrSessionTableFull", err)
	}
	st := pipe.Stats()
	if st.Sessions > maxSessions {
		t.Fatalf("engine tracks %d sessions past the %d cap", st.Sessions, maxSessions)
	}
	if st.DroppedSamples == 0 {
		t.Fatal("rejected feed should count dropped samples")
	}
}

// pacedSource delays each stream hand-off so the engine's idle
// janitor gets wall-clock room to evict finished sessions between
// staggered arrivals.
type pacedSource struct {
	Source
	delay time.Duration
}

func (p pacedSource) Next(ctx context.Context) (SourceChunk, error) {
	chunk, err := p.Source.Next(ctx)
	if err == nil && chunk.Reset {
		time.Sleep(p.delay)
	}
	return chunk, err
}

// TestLoadEvictionKeepsFleetFlowing: with idle eviction enabled, a
// fleet far larger than the session table flows through — finished
// sessions are evicted between staggered arrivals (Stats().Evicted
// counts them), the table never overflows, and every packet still
// decodes. The Reset chunk each new stream leads with exercises the
// pipeline's evicted-session tolerance (EndSession on an unknown or
// evicted id must not fail the run).
func TestLoadEvictionKeepsFleetFlowing(t *testing.T) {
	load, err := ScenarioLoadPreset("fleet-load")
	if err != nil {
		t.Fatal(err)
	}
	load.Sessions = 12
	const maxSessions = 3
	src := NewLoadSource(load).Window(1) // sessions arrive one after another
	pipe, err := NewPipeline(pacedSource{Source: src, delay: 40 * time.Millisecond}, Threshold(),
		WithExpectedSymbols(8),
		WithMaxSessions(maxSessions),
		WithIdleTimeout(5*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	events, err := pipe.Run(context.Background())
	if err != nil {
		t.Fatalf("evicting fleet should flow: %v", err)
	}
	got := 0
	for _, ev := range events {
		if ev.Err != nil {
			t.Fatalf("session %d event error: %v", ev.Session, ev.Err)
		}
		got++
	}
	if got != load.Sessions {
		t.Fatalf("decoded %d of %d sessions", got, load.Sessions)
	}
	st := pipe.Stats()
	if st.Evicted == 0 {
		t.Fatal("idle janitor evicted nothing; the fleet must have overflowed the table instead")
	}
	if st.DroppedSamples != 0 {
		t.Fatalf("dropped %d samples", st.DroppedSamples)
	}
}

// TestStopAndGoClassifiesThroughPipeline drives the stop-and-go
// preset (mid-packet dwell) through a DTWClassify pipeline: the event
// carries the correct nearest-baseline label even though the dwell
// defeats plain threshold slicing.
func TestStopAndGoClassifiesThroughPipeline(t *testing.T) {
	cls := NewClassifier(256)
	for i, payload := range []string{"00", "10"} {
		link, _, err := (IndoorBench{
			Height: 0.20, SymbolWidth: 0.03, Speed: 0.08,
			Payload: payload, Seed: int64(10 + i),
		}).Build()
		if err != nil {
			t.Fatal(err)
		}
		tr, err := link.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		if err := cls.AddBaseline(payload, tr); err != nil {
			t.Fatal(err)
		}
	}
	spec, err := ScenarioPreset("stop-and-go")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Decode.Strategy != "dtw" {
		t.Fatalf("stop-and-go declares strategy %q, want dtw", spec.Decode.Strategy)
	}
	src := NewScenarioSource(spec).Chunked(1024)
	pipe, err := NewPipeline(src, DTWClassify(cls))
	if err != nil {
		t.Fatal(err)
	}
	events, err := pipe.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Err != nil {
		t.Fatalf("expected one clean classification event, got %+v", events)
	}
	if want := src.Packets()[0].Packet.BitString(); events[0].Label != want {
		t.Fatalf("classified %q, want %q (matches %v)", events[0].Label, want, events[0].Matches)
	}
}

// TestPacedReplayHoldsStreamClock: a Paced MultiSource may not emit a
// chunk before its stream clock — the whole replay therefore takes at
// least the rendered duration of its longest stream. The lower bound
// is what matters (and is timing-robust); as-fast-as-possible replay
// is locked in by every other load test finishing instantly.
func TestPacedReplayHoldsStreamClock(t *testing.T) {
	spec, err := ScenarioPreset("multi-lane")
	if err != nil {
		t.Fatal(err)
	}
	spec.DurationSec = 0.25 // truncate the pass; pacing, not decoding, is under test
	const chunk = 64
	src := NewMultiSource(spec).Chunked(chunk).Paced(true)
	ctx := context.Background()
	info, err := src.Open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Fs <= 0 {
		t.Fatalf("single-receiver scenario should declare a rate, got %v", info.Fs)
	}
	start := time.Now()
	total := 0
	for {
		c, err := src.Next(ctx)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		total += len(c.Samples)
	}
	elapsed := time.Since(start)
	// The final chunk is due when its first sample's stream time
	// arrives, so the floor is (total - chunk) samples of wall clock.
	floor := time.Duration(float64(total-chunk) / info.Fs * float64(time.Second))
	if elapsed < floor {
		t.Fatalf("paced replay of %d samples at %v Hz took %v, want >= %v", total, info.Fs, elapsed, floor)
	}
}

// TestLoadPaceFlagPlumbsToSource: NewLoadSource adopts the load
// spec's Pace field and Paced() overrides it either way.
func TestLoadPaceFlagPlumbsToSource(t *testing.T) {
	load, err := ScenarioLoadPreset("fleet-load")
	if err != nil {
		t.Fatal(err)
	}
	if src := NewLoadSource(load); src.paced {
		t.Fatal("pace should default off")
	}
	load.Pace = true
	if src := NewLoadSource(load); !src.paced {
		t.Fatal("load.Pace did not reach the source")
	}
	if src := NewLoadSource(load).Paced(false); src.paced {
		t.Fatal("Paced(false) should override load.Pace")
	}
}
