package passivelight

import (
	"context"
	"encoding/json"
	"testing"
)

// TestScenarioMultiLaneStreamsThroughPipeline is the acceptance lock
// for the scenario layer: the multi-lane preset (two staggered tagged
// cars in adjacent lanes) feeds a streaming TwoPhase pipeline through
// NewScenarioSource, and every encoded packet comes back as its own
// detection, in lane order.
func TestScenarioMultiLaneStreamsThroughPipeline(t *testing.T) {
	spec, err := ScenarioPreset("multi-lane")
	if err != nil {
		t.Fatal(err)
	}
	src := NewScenarioSource(spec).Chunked(1024) // stream in real chunks
	pipe, err := NewPipeline(src, TwoPhase(),
		WithExpectedSymbols(spec.Decode.ExpectedSymbols),
	)
	if err != nil {
		t.Fatal(err)
	}
	events, err := pipe.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	packets := src.Packets()
	if len(packets) != 2 {
		t.Fatalf("multi-lane should encode 2 packets, got %d", len(packets))
	}
	var decoded []string
	for _, ev := range events {
		if ev.Err != nil {
			t.Fatalf("event error: %v", ev.Err)
		}
		decoded = append(decoded, ev.BitString())
	}
	if len(decoded) != len(packets) {
		t.Fatalf("decoded %d packets (%v), want %d", len(decoded), decoded, len(packets))
	}
	for i, want := range packets {
		if decoded[i] != want.Packet.BitString() {
			t.Fatalf("lane %d (%s): decoded %q, want %q", i+1, want.Object, decoded[i], want.Packet.BitString())
		}
	}
}

// TestScenarioPresetsThroughPipelines drives every registry preset
// with a declared packet strategy through a real Pipeline.
func TestScenarioPresetsThroughPipelines(t *testing.T) {
	for _, e := range ScenarioPresets() {
		spec, err := e.Spec()
		if err != nil {
			t.Fatal(err)
		}
		var strat Strategy
		switch spec.Decode.Strategy {
		case "threshold":
			strat = Threshold()
		case "two-phase":
			strat = TwoPhase()
		case "collision":
			strat = Collision(CollisionOptions{MinFreq: 1.0, MaxFreq: 4.0, MinSeparation: 0.9, SignificanceRatio: 0.6})
		default:
			continue // shape-only presets are covered in internal/scenario
		}
		t.Run(e.Name, func(t *testing.T) {
			if len(spec.Receivers) > 0 {
				// Multi-receiver preset: all links through one pipeline,
				// one event per (receiver, packet).
				src := NewMultiSource(spec)
				pipe, err := NewPipeline(src, strat, WithExpectedSymbols(spec.Decode.ExpectedSymbols))
				if err != nil {
					t.Fatal(err)
				}
				events, err := pipe.Run(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				streams := src.Streams()
				perStream := map[uint64]int{}
				for _, ev := range events {
					if ev.Err != nil {
						t.Fatalf("event error: %v", ev.Err)
					}
					perStream[ev.Session]++
				}
				for _, st := range streams {
					if got := perStream[st.ID]; got != len(st.Packets) {
						t.Fatalf("receiver %s: %d events for %d packets", st.Name, got, len(st.Packets))
					}
				}
				return
			}
			src := NewScenarioSource(spec)
			pipe, err := NewPipeline(src, strat, WithExpectedSymbols(spec.Decode.ExpectedSymbols))
			if err != nil {
				t.Fatal(err)
			}
			events, err := pipe.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if len(events) == 0 {
				t.Fatal("no events")
			}
			for _, ev := range events {
				if ev.Err != nil {
					t.Fatalf("event error: %v", ev.Err)
				}
			}
			if spec.Decode.Strategy != "collision" && len(events) != len(src.Packets()) {
				t.Fatalf("%d events for %d packets", len(events), len(src.Packets()))
			}
		})
	}
}

// TestScenarioSourceAutoSelect applies the Sec. 4.4 receiver policy
// to a declarative scenario: the dim pass picks the capped PD over
// the RX-LED, exactly like the typed car-pass source does.
func TestScenarioSourceAutoSelect(t *testing.T) {
	spec, err := (OutdoorCarPass{Payload: "00", NoiseFloorLux: 100, ReceiverHeight: 0.25, Seed: 9}).Spec()
	if err != nil {
		t.Fatal(err)
	}
	spec.DurationSec = 0 // let the window follow the selected device's FoV
	src := NewScenarioSource(spec)
	pipe, err := NewPipeline(src, TwoPhase(),
		WithExpectedSymbols(8),
		WithPreRoll(-1),
		WithReceiverAutoSelect(PDReceiver(GainG2).WithCap(), RXLEDReceiver()),
	)
	if err != nil {
		t.Fatal(err)
	}
	events, err := pipe.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if src.Receiver() != "pd-G2+cap" {
		t.Fatalf("selected %q, want the capped PD at 100 lux", src.Receiver())
	}
	ok := false
	for _, ev := range events {
		if ev.Err == nil && ev.BitString() == "00" {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("capped PD should decode the dim pass; events: %+v", events)
	}
	// A lamp-lit scenario has no ambient floor to select against.
	bench, err := (IndoorBench{Height: 0.2, SymbolWidth: 0.03, Speed: 0.08, Payload: "10", Seed: 1}).Spec()
	if err != nil {
		t.Fatal(err)
	}
	lampSrc := NewScenarioSource(bench)
	lampPipe, err := NewPipeline(lampSrc, Threshold(), WithReceiverAutoSelect())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lampPipe.Run(context.Background()); err == nil {
		t.Fatal("auto-select over a point lamp should fail loudly")
	}
}

// TestScenarioJSONThroughPublicSurface loads a spec from JSON (as
// plsim -spec does) and replays it through the public API.
func TestScenarioJSONThroughPublicSurface(t *testing.T) {
	spec, err := ScenarioPreset("indoor-bench")
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var loaded Scenario
	if err := json.Unmarshal(data, &loaded); err != nil {
		t.Fatal(err)
	}
	src := NewScenarioSource(loaded)
	pipe, err := NewPipeline(src, Threshold(), WithExpectedSymbols(8), WithPreRoll(-1))
	if err != nil {
		t.Fatal(err)
	}
	events, err := pipe.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Err != nil || events[0].BitString() != "10" {
		t.Fatalf("JSON-loaded bench should decode '10': %+v", events)
	}
}
