// Package passivelight is a library-scale reproduction of
// "Passive Communication with Ambient Light" (Wang, Zuniga,
// Giustiniano — CoNEXT 2016): a communication system in which
// unmodulated ambient light (a lamp, ceiling lights, the sun) is
// reflected by patterned surfaces worn by mobile objects and decoded
// by a single cheap photodiode or an LED used as a receiver.
//
// The package exposes the end-to-end pipeline:
//
//   - encode payload bits into a reflective-stripe "packet"
//     (Manchester code behind an HLHL preamble, Fig. 4 of the paper);
//   - simulate the passive optical channel (light source, moving
//     reflectance profile, receiver field-of-view kernel, front-end
//     electronics, ADC) — the hardware testbed of the paper replaced
//     by physics per DESIGN.md;
//   - decode received traces with the paper's adaptive threshold
//     algorithm (per-packet tau_r/tau_t), classify distorted traces
//     with DTW, and analyze packet collisions with an FFT;
//   - measure channel capacity envelopes and run every experiment of
//     the paper's evaluation (see EXPERIMENTS.md).
//
// Quickstart:
//
//	bench := passivelight.IndoorBench{
//		Height:      0.20, // m
//		SymbolWidth: 0.03, // m
//		Speed:       0.08, // m/s
//		Payload:     "10",
//	}
//	link, packet, err := bench.Build()
//	if err != nil { ... }
//	result, err := passivelight.RunEndToEnd(link, packet, passivelight.DecodeOptions{})
//	if err != nil { ... }
//	fmt.Println(result.Decode.SymbolString(), result.Success)
//
// # Streaming architecture
//
// Beyond the paper's record-then-decode workflow, the library has an
// online tier for samples that arrive live. The adaptive-threshold
// state machine (noise-floor tracking, activity detection, symbol
// clocking) is resumable, so a StreamDecoder accepts RSS chunks of
// any size and emits detections as packets complete, in bounded
// memory; the batch Decode is the same machine fed one chunk, and in
// the batch-equivalent configuration (PreRollSec < 0) a chunked
// stream decode of a trace is bit-identical to it. A
// StreamEngine multiplexes thousands of concurrent sessions over a
// worker pool with per-session ring buffers and idle eviction:
//
//	engine, err := passivelight.NewStreamEngine(passivelight.StreamEngineConfig{
//		Session: passivelight.StreamConfig{Fs: 2000},
//	})
//	if err != nil { ... }
//	defer engine.Close()
//	go func() {
//		for det := range engine.Detections() {
//			if det.Err == nil {
//				fmt.Printf("session %d decoded %s\n", det.Session, det.BitString())
//			}
//		}
//	}()
//	// One session per receiver; chunks arrive from the network.
//	engine.Feed(sessionID, fs, chunk)
//	fmt.Printf("%+v\n", engine.Stats()) // sessions, samples/s, detections
//
// The receiver network (internal/rxnet, cmd/plnet) builds on this:
// nodes may either decode locally and publish compact detections, or
// ship raw SampleChunk frames and let the aggregator decode them
// server-side through an engine before fusing tracks.
//
// The runnable programs under cmd/ and the examples/ directory cover
// the paper's indoor bench, the outdoor car application and the
// networked-receivers extension.
package passivelight
