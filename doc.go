// Package passivelight is a library-scale reproduction of
// "Passive Communication with Ambient Light" (Wang, Zuniga,
// Giustiniano — CoNEXT 2016): a communication system in which
// unmodulated ambient light (a lamp, ceiling lights, the sun) is
// reflected by patterned surfaces worn by mobile objects and decoded
// by a single cheap photodiode or an LED used as a receiver.
//
// The package exposes the end-to-end pipeline:
//
//   - encode payload bits into a reflective-stripe "packet"
//     (Manchester code behind an HLHL preamble, Fig. 4 of the paper);
//   - simulate the passive optical channel (light source, moving
//     reflectance profile, receiver field-of-view kernel, front-end
//     electronics, ADC) — the hardware testbed of the paper replaced
//     by physics per DESIGN.md;
//   - decode received traces with the paper's adaptive threshold
//     algorithm (per-packet tau_r/tau_t), classify distorted traces
//     with DTW, and analyze packet collisions with an FFT;
//   - measure channel capacity envelopes and run every experiment of
//     the paper's evaluation (see EXPERIMENTS.md).
//
// Quickstart:
//
//	bench := passivelight.IndoorBench{
//		Height:      0.20, // m
//		SymbolWidth: 0.03, // m
//		Speed:       0.08, // m/s
//		Payload:     "10",
//	}
//	link, packet, err := bench.Build()
//	if err != nil { ... }
//	result, err := passivelight.RunEndToEnd(link, packet, passivelight.DecodeOptions{})
//	if err != nil { ... }
//	fmt.Println(result.Decode.SymbolString(), result.Success)
//
// The runnable programs under cmd/ and the examples/ directory cover
// the paper's indoor bench, the outdoor car application and the
// networked-receivers extension.
package passivelight
