// Package passivelight is a library-scale reproduction of
// "Passive Communication with Ambient Light" (Wang, Zuniga,
// Giustiniano — CoNEXT 2016): a communication system in which
// unmodulated ambient light (a lamp, ceiling lights, the sun) is
// reflected by patterned surfaces worn by mobile objects and decoded
// by a single cheap photodiode or an LED used as a receiver.
//
// # Source → Pipeline → Events
//
// The public API mirrors the paper's single physical pipeline (light
// source → tag → receiver front end → decoder) as two composable
// abstractions. A Source produces RSS sample chunks:
//
//   - NewTraceSource — a recorded Trace, replayed in chunks;
//   - NewScenarioSource — any declarative Scenario (a registry
//     preset, a JSON spec file, or a hand-built Spec), compiled and
//     rendered on Open;
//   - NewBenchSource / NewCarPassSource / NewLinkSource — the
//     simulated testbed (indoor bench, Sec. 5 car pass, or any custom
//     Link); the first two are thin typed wrappers over the scenario
//     layer;
//   - NewChunkSource — a live feed of sample chunks from a channel;
//   - ListenSource — a receiver-network listener: nodes stream raw
//     SampleChunk frames over TCP and each (node, stream) pair
//     becomes one decode session.
//
// A Pipeline binds one source to a decode strategy — Threshold
// (Sec. 4.1 adaptive tau_r/tau_t), TwoPhase (Sec. 5 car-shape
// preamble + stripe decode), Collision (Sec. 4.3 FFT analysis) or
// DTWClassify (Sec. 4.2) — configured with functional options:
//
//	src := passivelight.NewBenchSource(passivelight.IndoorBench{
//		Height:      0.20, // m
//		SymbolWidth: 0.03, // m
//		Speed:       0.08, // m/s
//		Payload:     "10",
//	})
//	pipe, err := passivelight.NewPipeline(src, passivelight.Threshold(),
//		passivelight.WithExpectedSymbols(8),
//		passivelight.WithPreRoll(-1), // offline replay: batch-equivalent
//	)
//	if err != nil { ... }
//	events, err := pipe.Run(ctx)
//	if err != nil { ... }
//	for _, ev := range events {
//		fmt.Println(ev.Symbols, ev.BitString() == src.Packet().BitString())
//	}
//
// Run collects every event until the source ends; Stream returns the
// event channel for live consumption. Both honor context.Context
// cancellation end to end, and failures unwrap to typed sentinels
// (ErrNoPreamble, ErrLowContrast, ErrSaturated, ErrSessionEvicted,
// ErrEngineClosed) with errors.Is at every layer. Options bolt the
// paper's system pieces onto any pipeline: WithCodebook applies the
// Sec. 4.2 restricted code sets as an error-correction stage,
// WithReceiverAutoSelect applies the Sec. 4.4 dual-receiver policy to
// simulated sources, WithWorkers/WithShards/WithQueue/WithIdleTimeout
// tune the concurrent substrate, WithSink taps the event flow.
//
// # Scenario catalog
//
// Worlds are data. A Scenario declares the complete physical setup —
// ambient optics (lamp / ceiling light / sun with cloud drift),
// receiver placement and device, noise profile with optional fog, and
// mobile objects (tags, cars, tagged cars, dynamic tags) with
// mobility models (constant, piecewise, stop-and-go, staggered lane
// offsets) — and compiles deterministically into a renderable link:
// the same spec + seed renders a bit-identical trace every time, and
// a spec round-trips through JSON losslessly. The preset registry
// (ScenarioPreset, ScenarioPresets, RegisterScenario) ships the
// paper's worlds (indoor-bench, outdoor-pass, car-signature,
// collision) plus multi-object workloads (multi-lane: staggered
// tagged cars in adjacent lanes; tag-fleet: N tags at distinct
// lateral FoV shares; weather-sweep: ambient ramps plus fog):
//
//	spec, _ := passivelight.ScenarioPreset("multi-lane")
//	src := passivelight.NewScenarioSource(spec)
//	pipe, _ := passivelight.NewPipeline(src, passivelight.TwoPhase(),
//		passivelight.WithExpectedSymbols(spec.Decode.ExpectedSymbols))
//	events, _ := pipe.Run(ctx) // one detection per lane, in pass order
//
// Each spec carries a Decode hint (strategy + expected symbols) so
// generic drivers can bind the right pipeline. cmd/plsim is the CLI
// face of the registry (-list, -scenario, -spec, -dump-spec, -load).
//
// # Multi-receiver scenarios and load generation
//
// A Scenario can declare a Receivers list instead of the single
// Receiver: CompileMulti then fans the one shared world out into one
// deterministic core link per receiver (heterogeneous devices,
// placements, per-receiver noise/seed overrides — the Sec. 4.4
// deployment of several receivers covering one scene). NewMultiSource
// replays all links into one Pipeline; every chunk carries its link's
// stable stream id, so events attribute back to the receiver via
// ScenarioStreamReceiver. The rx-lanes preset is the canonical form:
// two staggered tagged lanes observed by an RX-LED pole and a
// lens-focused photodiode on one gantry, two links, four detections:
//
//	spec, _ := passivelight.ScenarioPreset("rx-lanes")
//	src := passivelight.NewMultiSource(spec)
//	pipe, _ := passivelight.NewPipeline(src, passivelight.TwoPhase(),
//		passivelight.WithExpectedSymbols(spec.Decode.ExpectedSymbols))
//	events, _ := pipe.Run(ctx)
//	for _, ev := range events {
//		rx := passivelight.ScenarioStreamReceiver(ev.Session)
//		fmt.Println(src.Streams()[rx].Name, ev.BitString())
//	}
//
// On top of the fan-out sits spec-driven load generation: a
// ScenarioLoad names a base scenario and expands it into N sessions,
// each with its own deterministic seed and a staggered (optionally
// jittered) start — hundreds of staggered passes from one JSON-sized
// spec. NewLoadSource feeds sessions x receivers streams into one
// pipeline; ScenarioStreamSession / ScenarioStreamReceiver split
// every event's stream id back into (session, receiver). The
// fleet-load preset (ScenarioLoadPreset) fans the indoor bench out
// into 128 staggered sessions by default and is what the
// EngineSessions benchmarks run from; Window bounds how many sessions
// replay concurrently, which with WithIdleTimeout models a fleet
// arriving over time against a bounded session table:
//
//	load, _ := passivelight.ScenarioLoadPreset("fleet-load")
//	load.Sessions = 256
//	pipe, _ := passivelight.NewPipeline(passivelight.NewLoadSource(load),
//		passivelight.Threshold(), passivelight.WithExpectedSymbols(8))
//
// cmd/plsim replays a load from the CLI (plsim -scenario fleet-load
// -load 128) and cmd/plnet replays one as synthetic node traffic over
// the rxnet wire protocol (plnet -mode load), one node per session.
//
// # Execution substrate
//
// Behind Run/Stream every streaming strategy executes on the online
// decode engine: the adaptive-threshold state machine is resumable
// (noise-floor tracking, activity segmentation, per-segment decode),
// so each session consumes chunks of any size in bounded memory while
// a worker pool multiplexes thousands of concurrent sessions with
// per-session ring buffers and idle eviction. One pipeline therefore
// serves a single recorded trace and a whole receiver deployment with
// the same code path. In batch-equivalent mode (WithPreRoll(-1)) a
// pipeline over a recorded trace produces detections bit-identical to
// the batch Decode of the same samples. Whole-stream strategies
// (Collision, DTWClassify) buffer per session and analyze at end of
// stream.
//
// The receiver network (internal/rxnet, cmd/plnet) builds on this:
// nodes either decode locally and publish compact detections to an
// aggregator, or ship raw samples into a ListenSource pipeline whose
// sink feeds the aggregator's track fusion.
//
// # Cluster tier
//
// When one engine is not enough, internal/cluster distributes the
// receiver network across a fleet of them. A cluster.Ring
// consistent-hashes (node, stream) sessions over virtual nodes —
// deterministic for a member set, JSON-serializable, epoch-versioned —
// and a cluster.Router fronts the fleet: receiver nodes dial it with
// the unchanged wire protocol and every chunk is forwarded raw to its
// session's owning engine, with sticky routes, a bounded per-stream
// replay buffer, and crash failover. Engines stay plain pipelines:
// plnet -mode engine wraps ListenSource + Pipeline with a graceful
// drain path (SIGTERM or a wire drain request → refuse new streams,
// finish in-flight ones, flush, NACK stragglers to the router for
// replay on their new owner, exit clean), NetSource exposes the same
// drain surface (Drain, Draining, ForceRedirect, Sessions) for
// embedding, and WithSessionEnd observes every session release.
// Handoffs, failovers and replays are visible under pl_cluster_*; the
// README's "Running a cluster" section has the topology, the rolling-
// restart runbook and the metric catalog. The zero-loss guarantee —
// 128 staggered sessions through drain, shutdown and rejoin without
// dropping a packet — is locked by an in-process integration test and
// a multi-process CI smoke.
//
// The cluster is self-healing. Membership is engine-initiated: an
// engine announces itself over the wire (cluster.Join sends
// EngineHello, the router answers with the ring) and keeps
// re-announcing as a liveness beacon, so a router can start on an
// empty ring, a crashed engine rejoins on restart with no operator
// step, and an engine unreachable past a dead-engine timeout is
// evicted automatically. Every dial path retries with capped, jittered
// exponential backoff (rxnet.Backoff). Overload propagates backwards:
// a hot engine (pl_engine_occupancy, NetSource.AutoThrottle) emits a
// throttle upstream and the router pauses exactly the nodes feeding
// it — flow-controlled nodes (rxnet.DialReliable) block or, with
// ShedWhilePaused, shed at the edge with the gap kept visible to the
// server's continuity cursor. Replay buffers are byte-bounded
// (RouterConfig.ReplayBytes), so partitions cost bounded memory and
// trimmed bytes are counted, never spliced over. Engines ack each
// decoded session upstream (NetSource.AckSession), which trims the
// stream's replay buffer; evicting a dead engine fails all its
// streams over at once, replaying only the unacked tail — what its
// nodes had finished sending does not die with the process. The
// internal/cluster/chaos package injects connection faults (drop,
// delay, duplicate, mid-frame sever, scripted kill/restart schedules)
// for the churn tier that locks all of this down: an auto-assembled
// fleet through three kill/rejoin cycles under paced load, zero loss,
// no operator Rebalance.
//
// The routing tier itself is replicated — a router is not a single
// point of failure. Routers name each other as peers
// (RouterConfig.Peers, Router.AddPeer) and share ring state over the
// same RingUpdate frames engines already receive: every membership
// change is pushed to every peer, a router adopts a peer ring with a
// higher epoch wholesale and unions an equal-epoch one without a
// bump, so replicas converge with no external coordinator. Receiver
// nodes carry a failover rotation (rxnet.RedialConfig.Addrs): when
// their router dies they redial the next address and proactively
// resend a byte-bounded tail of each stream (ResendBytes) as marked
// replay frames — the engine's continuity cursor discards what the
// dead router already delivered and keeps what it took with it, so a
// router SIGKILL costs neither a lost packet nor a duplicate decode.
// Ring changes are batched (RouterConfig.RingBatchWindow, default
// 250ms): a join stampede of N engines — or a restarted router
// re-learning its whole fleet — produces one epoch bump, not N.
// Sequence comparisons use serial-number arithmetic (rxnet.SeqLess),
// so replay buffers and acks survive uint32 wraparound on
// long-lived streams.
//
// # Performance
//
// The engine is sharded: sessions are hashed by stream id onto N
// independent shards, each with its own session table, lock, run
// queue, worker set and padded statistics block, and detections are
// delivered in batches (one channel send per decode step). The feed
// path writes no state shared between shards — counters are
// shard-local and folded only when Stats or a telemetry snapshot
// asks — so on a multi-core box ingest scales with shards until
// decode saturates the workers. WithShards sets the shard count
// (default min(workers, GOMAXPROCS)); WithWorkers sets the decode
// pool size (default GOMAXPROCS). Sizing guidance: leave both at
// their defaults unless profiling says otherwise — workers bound the
// decode parallelism, so set WithWorkers to the cores you want decode
// to use; shards only need to exceed 1 when many feeder goroutines
// contend on ingest, and more shards than workers is never useful
// (the engine clamps it). One shard reproduces the unsharded engine
// exactly.
//
// Per-session memory is bounded and recycled: session rings allocate
// lazily and grow geometrically only to the WithQueue bound, retired
// ring buffers return to a per-shard free-list for the next session,
// and decoder segment buffers and detection batches are pooled
// (consumers may hand batches back with RecycleDetections). Steady-
// state feed+decode of an established fleet does not touch the
// allocator; a tier-1 test pins that with testing.AllocsPerRun. On
// the network path, rxnet frames decode into reference-counted
// pooled buffers that travel to the engine's ring copy untouched —
// one sample copy from socket to ring. BENCH_PR9.json is the
// committed baseline (GOMAXPROCS swept 1/4/8): the 128-session
// fleet round allocates 9.9 MB where the pre-pooling engine spent
// 59.1 MB, and 1024/4096-session rounds hold ~60 KB allocated per
// session end to end.
//
// The simulation and decode hot paths are plan-cached: the channel
// renderer specializes time-invariant/uniform light sources and
// piecewise-constant reflectance profiles (bit-identical to the
// generic evaluator), the FFT runs over cached twiddle/bit-reversal
// plans with a real-input path for power spectra, DTW runs a pooled
// two-row band-limited dynamic program, and the threshold decoder's
// timing search answers window maxima from a sparse table. Measured
// against the PR 1 baseline on the same hardware (see
// BENCH_PR3.json for the committed machine-readable numbers):
// BenchmarkDTWClassify ~14x, BenchmarkFFTCollision ~6x,
// BenchmarkBatchDecode ~3.5x MB/s, BenchmarkEngineSessions128 ~3x
// MB/s — on a single-core container, i.e. before any shard
// parallelism; multi-core boxes add near-linear shard scaling on the
// ingest path.
//
// # Observability
//
// WithTelemetry attaches a metrics registry (NewTelemetry) to a
// pipeline: the engine records its session/throughput/drop counters,
// ring occupancy and per-decode-step duration histogram under
// pl_engine_*, and the pipeline records per-strategy event counts and
// a detection-latency histogram (chunk arrival → event emit) under
// pl_pipeline_*{strategy="..."}. ListenSourceConfig wires the same
// registry into the receiver-network listener (per-node ingest bytes,
// frame errors, queue depth, dropped chunks under pl_rxnet_*), and
// NetSourceConfig{QueueDepth, DropOnFull} bounds the ingest queue —
// lossless TCP backpressure by default, counted drops when opted in.
//
// The registry renders Prometheus text exposition and JSON;
// TelemetryHandler serves both plus a /healthz endpoint driven by
// TelemetryHealth checks. Histograms are log-bucketed (HDR-style,
// ~6% worst-case quantile error) and every recording is a single
// atomic add, so telemetry can stay attached under production load;
// with no registry attached the hot paths skip instrumentation
// entirely. cmd/plnet serves a live endpoint via -metrics-addr, and
// cmd/benchdump embeds the same TelemetryHistogram schema in
// committed BENCH baselines.
//
// # Deprecated free functions
//
// The pre-Pipeline entry points (Decode, DecodeCarPass,
// AnalyzeCollision, NewStreamDecoder, NewStreamEngine) remain as thin
// wrappers over the same internals; see the README's migration table.
//
// The runnable programs under cmd/ and the examples/ directory cover
// the paper's indoor bench, the outdoor car application and the
// networked-receivers extension, all on the Pipeline API.
package passivelight
