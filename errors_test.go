package passivelight

import (
	"errors"
	"testing"

	"passivelight/internal/trace"
)

// TestSentinelErrorsEndToEnd: the typed sentinels must unwrap with
// errors.Is through every layer — facade functions, the streaming
// engine and the pipeline share one error vocabulary.
func TestSentinelErrorsEndToEnd(t *testing.T) {
	// ErrSaturated out of the receiver-selection policy.
	if _, err := SelectReceiver(1e6); !errors.Is(err, ErrSaturated) {
		t.Fatalf("SelectReceiver(1e6): %v, want ErrSaturated", err)
	}

	// ErrNoPreamble out of a flat trace (no peaks to anchor A/B/C).
	flat := trace.New(1000, 0, make([]float64, 1000))
	if _, err := Decode(flat, DecodeOptions{}); !errors.Is(err, ErrNoPreamble) {
		t.Fatalf("Decode(flat): %v, want ErrNoPreamble", err)
	}

	// ErrSessionEvicted for an unknown engine session; ErrEngineClosed
	// after shutdown.
	eng, err := NewStreamEngine(StreamEngineConfig{Session: StreamConfig{Fs: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.FlushSession(42); !errors.Is(err, ErrSessionEvicted) {
		t.Fatalf("FlushSession(42): %v, want ErrSessionEvicted", err)
	}
	if err := eng.EndSession(42); !errors.Is(err, ErrSessionEvicted) {
		t.Fatalf("EndSession(42): %v, want ErrSessionEvicted", err)
	}
	eng.Close()
	if err := eng.Feed(1, 0, []float64{1, 2, 3}); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Feed after Close: %v, want ErrEngineClosed", err)
	}
}

// TestSentinelErrorsThroughStreamDetections: a decode failure inside
// a streaming session surfaces the same sentinel on the detection.
func TestSentinelErrorsThroughStreamDetections(t *testing.T) {
	dec, err := NewStreamDecoder(StreamConfig{Fs: 1000, PreRollSec: -1})
	if err != nil {
		t.Fatal(err)
	}
	dec.Feed(make([]float64, 1000)) // flat: no preamble anywhere
	dets := dec.Flush()
	if len(dets) != 1 {
		t.Fatalf("flush produced %d detections", len(dets))
	}
	if !errors.Is(dets[0].Err, ErrNoPreamble) {
		t.Fatalf("stream detection error %v, want ErrNoPreamble", dets[0].Err)
	}
}
