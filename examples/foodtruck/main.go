// Foodtruck: the paper's Fig. 1 scenario. Food trucks wear reflective
// codes from a Hamming-separated codebook; a curbside photodiode box
// reads the code as each truck drives past in daylight and looks up
// the vendor — even correcting a bit flipped by a dirty stripe. The
// codebook lookup is a pipeline stage (WithCodebook), so events carry
// the corrected vendor index directly.
package main

import (
	"context"
	"fmt"
	"log"

	"passivelight"
)

var vendors = []string{
	"Taco Cart", "Noodle Wagon", "Burger Van", "Smoothie Bus",
}

func main() {
	// 6-bit codewords at minimum Hamming distance 3: corrects any
	// single-bit decode error (Sec. 4.2's restricted code sets).
	codebook, err := passivelight.NewCodebook(6, 3, len(vendors))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("codebook: %d words, min distance %d, corrects %d bit error(s)\n\n",
		codebook.Len(), codebook.MinDistance(), codebook.CorrectableErrors())

	for id, vendor := range vendors {
		word, err := codebook.Encode(id)
		if err != nil {
			log.Fatal(err)
		}
		payload := ""
		for _, b := range word {
			payload += string('0' + byte(b))
		}
		// Each truck passes the curbside receiver at 18 km/h under a
		// cloudy-noon sky. 16 stripes at 8 cm fill the 1.3 m roof, so
		// the receiver sits at 50 cm where its footprint still
		// resolves the narrower symbols.
		src := passivelight.NewCarPassSource(passivelight.OutdoorCarPass{
			Payload:        payload,
			SymbolWidth:    0.08,
			NoiseFloorLux:  6200,
			ReceiverHeight: 0.50,
			Seed:           int64(200 + id),
		})
		pipe, err := passivelight.NewPipeline(src, passivelight.TwoPhase(),
			passivelight.WithExpectedSymbols(4+2*len(payload)),
			passivelight.WithPreRoll(-1),
			passivelight.WithCodebook(codebook),
		)
		if err != nil {
			log.Fatal(err)
		}
		events, err := pipe.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		read := false
		for _, ev := range events {
			if ev.Err != nil {
				fmt.Printf("%-14s code=%s  -> no read (%v)\n", vendor, payload, ev.Err)
				continue
			}
			status := "exact"
			if ev.CodeDistance > 0 {
				status = fmt.Sprintf("corrected %d bit(s)", ev.CodeDistance)
			}
			fmt.Printf("%-14s code=%s sent=%s read=%s -> %q (%s)\n",
				vendor, payload, src.Packet().BitString(), ev.BitString(),
				vendors[ev.CodeIndex], status)
			read = true
		}
		if !read && len(events) == 0 {
			fmt.Printf("%-14s code=%s  -> no read (no packet in pass)\n", vendor, payload)
		}
	}
}
