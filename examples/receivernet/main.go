// Receivernet: the paper's future-work item (5) — networked
// receivers sharing observations. Three pole receivers along a lane
// each decode the same tagged car locally (a TwoPhase pipeline per
// pole) and publish detections to an aggregator, which fuses them
// into a track with speed and direction.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"passivelight"
	"passivelight/internal/rxnet"
)

func main() {
	agg := rxnet.NewAggregator(rxnet.AggregatorOptions{TrackGap: time.Minute})
	addr, err := agg.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer agg.Close()

	const (
		payload  = "1001"
		speedMS  = 5.0  // 18 km/h
		poleGapM = 25.0 // pole spacing
	)
	base := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	for i := 0; i < 3; i++ {
		// Each pole decodes its own pass locally through a pipeline...
		src := passivelight.NewCarPassSource(passivelight.OutdoorCarPass{
			Payload:        payload,
			NoiseFloorLux:  6200,
			ReceiverHeight: 0.75,
			Seed:           int64(400 + i),
		})
		pipe, err := passivelight.NewPipeline(src, passivelight.TwoPhase(),
			passivelight.WithExpectedSymbols(4+2*len(payload)),
			passivelight.WithPreRoll(-1),
		)
		if err != nil {
			log.Fatal(err)
		}
		events, err := pipe.Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		var det *passivelight.Event
		for j := range events {
			if events[j].Err == nil {
				det = &events[j]
				break
			}
		}
		if det == nil {
			log.Fatalf("pole %d: no packet decoded", i+1)
		}
		// ...and publishes the compact detection to the aggregator.
		node, err := rxnet.Dial(ctx, addr, rxnet.Hello{
			NodeID: uint32(i + 1),
			PosX:   float64(i) * poleGapM,
			Height: 0.75,
			Name:   fmt.Sprintf("pole-%d", i+1),
		})
		if err != nil {
			log.Fatal(err)
		}
		d := rxnet.Detection{
			Time:       base.Add(time.Duration(float64(i)*poleGapM/speedMS) * time.Second),
			Bits:       det.Bits,
			RSSPeak:    src.Trace().Stats().Max,
			NoiseFloor: 6200,
			SymbolRate: det.SymbolRate,
		}
		if err := node.Publish(d); err != nil {
			log.Fatal(err)
		}
		node.Close()
		fmt.Printf("pole-%d published %s (%.0f sym/s)\n", i+1, rxnet.BitsString(det.Bits), d.SymbolRate)
	}

	tracks := agg.Tracks()
	if len(tracks) == 0 {
		log.Fatal("no track fused")
	}
	track := tracks[len(tracks)-1]
	fmt.Printf("\nfused track: object=%s speed=%.2f m/s (ground truth %.2f) over %d receivers, %0.fs dwell\n",
		rxnet.BitsString(track.ObjectBits), track.SpeedMS, speedMS,
		track.Confirmations, track.LastSeen.Sub(track.FirstSeen).Seconds())
}
