// Parkinglot: the paper's Sec. 5 outdoor application. A pole-mounted
// dual receiver watches a parking lot entrance; cars carry roof codes.
// The car's own optical signature (hood peak, windshield valley)
// serves as a long-duration preamble, then the stripe code is decoded.
// The receiver is chosen per ambient conditions by the pipeline's
// WithReceiverAutoSelect stage (Sec. 4.4).
package main

import (
	"context"
	"fmt"
	"log"

	"passivelight"
	"passivelight/internal/scene"
)

func main() {
	arrivals := []struct {
		label   string
		car     scene.CarModel
		payload string
		lux     float64
	}{
		{"cloudy noon, Volvo V40", scene.VolvoV40(), "00", 6200},
		{"late afternoon, Volvo V40", scene.VolvoV40(), "10", 5500},
		{"overcast, BMW 3", scene.BMW3(), "01", 3700},
	}
	for i, a := range arrivals {
		src := passivelight.NewCarPassSource(passivelight.OutdoorCarPass{
			Car:            a.car,
			Payload:        a.payload,
			NoiseFloorLux:  a.lux,
			ReceiverHeight: 0.75,
			Seed:           int64(300 + i),
		})
		// The pipeline applies the paper's dual-receiver policy
		// (Sec. 4.4) over the two devices with pole-appropriate
		// optics: the capped PD (sensitive, for dim days) and the
		// RX-LED (for bright days).
		pipe, err := passivelight.NewPipeline(src, passivelight.TwoPhase(),
			passivelight.WithExpectedSymbols(4+2*len(a.payload)),
			passivelight.WithPreRoll(-1),
			passivelight.WithReceiverAutoSelect(
				passivelight.PDReceiver(passivelight.GainG2).WithCap(),
				passivelight.RXLEDReceiver()),
		)
		if err != nil {
			log.Fatal(err)
		}
		events, err := pipe.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		for _, ev := range events {
			if ev.Err != nil {
				fmt.Printf("%-26s [%s] no decode: %v\n", a.label, src.Receiver(), ev.Err)
				continue
			}
			ok := ev.BitString() == src.Packet().BitString()
			fmt.Printf("%-26s [%s @ %4.0f lux] code=%s ok=%v (%.0f sym/s)\n",
				a.label, src.Receiver(), a.lux, ev.BitString(), ok, ev.SymbolRate)
		}
	}
}
