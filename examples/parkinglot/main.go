// Parkinglot: the paper's Sec. 5 outdoor application. A pole-mounted
// dual receiver watches a parking lot entrance; cars carry roof codes.
// The car's own optical signature (hood peak, windshield valley)
// serves as a long-duration preamble, then the stripe code is decoded.
//
// Each arrival is a declarative Scenario fed to the pipeline with
// NewScenarioSource; the receiver is chosen per ambient conditions by
// the pipeline's WithReceiverAutoSelect stage (Sec. 4.4), and the
// scenario re-derives its simulation window for whichever device the
// policy picks.
package main

import (
	"context"
	"fmt"
	"log"

	"passivelight"
)

func main() {
	arrivals := []struct {
		label   string
		car     string
		payload string
		lux     float64
	}{
		{"cloudy noon, Volvo V40", "volvo-v40", "00", 6200},
		{"late afternoon, Volvo V40", "volvo-v40", "10", 5500},
		{"overcast, BMW 3", "bmw-3", "01", 3700},
	}
	for i, a := range arrivals {
		// The typed car-pass params compile to a declarative Scenario;
		// any field of the spec can be adjusted before it is compiled.
		spec, err := (passivelight.OutdoorCarPass{
			Payload:        a.payload,
			NoiseFloorLux:  a.lux,
			ReceiverHeight: 0.75,
			Seed:           int64(300 + i),
		}).Spec()
		if err != nil {
			log.Fatal(err)
		}
		spec.Objects[0].Car = a.car
		// Let the window follow whichever device the policy selects
		// (a capped PD sees a different footprint than the RX-LED).
		spec.DurationSec = 0
		src := passivelight.NewScenarioSource(spec)
		// The pipeline applies the paper's dual-receiver policy
		// (Sec. 4.4) over the two devices with pole-appropriate
		// optics: the capped PD (sensitive, for dim days) and the
		// RX-LED (for bright days).
		pipe, err := passivelight.NewPipeline(src, passivelight.TwoPhase(),
			passivelight.WithExpectedSymbols(4+2*len(a.payload)),
			passivelight.WithPreRoll(-1),
			passivelight.WithReceiverAutoSelect(
				passivelight.PDReceiver(passivelight.GainG2).WithCap(),
				passivelight.RXLEDReceiver()),
		)
		if err != nil {
			log.Fatal(err)
		}
		events, err := pipe.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		for _, ev := range events {
			if ev.Err != nil {
				fmt.Printf("%-26s [%s] no decode: %v\n", a.label, src.Receiver(), ev.Err)
				continue
			}
			ok := ev.BitString() == src.Packet().BitString()
			fmt.Printf("%-26s [%s @ %4.0f lux] code=%s ok=%v (%.0f sym/s)\n",
				a.label, src.Receiver(), a.lux, ev.BitString(), ok, ev.SymbolRate)
		}
	}
}
