// Parkinglot: the paper's Sec. 5 outdoor application. A pole-mounted
// dual receiver watches a parking lot entrance; cars carry roof codes.
// The car's own optical signature (hood peak, windshield valley)
// serves as a long-duration preamble, then the stripe code is decoded.
// The receiver is chosen per ambient conditions (Sec. 4.4).
package main

import (
	"fmt"
	"log"

	"passivelight"
	"passivelight/internal/scene"
)

func main() {
	arrivals := []struct {
		label   string
		car     scene.CarModel
		payload string
		lux     float64
	}{
		{"cloudy noon, Volvo V40", scene.VolvoV40(), "00", 6200},
		{"late afternoon, Volvo V40", scene.VolvoV40(), "10", 5500},
		{"overcast, BMW 3", scene.BMW3(), "01", 3700},
	}
	for i, a := range arrivals {
		// Pick the receiver the paper's policy would (Sec. 4.4) from
		// the two devices with pole-appropriate optics: the capped PD
		// (sensitive, for dim days) and the RX-LED (for bright days).
		dev, err := passivelight.SelectReceiver(a.lux,
			passivelight.PDReceiver(passivelight.GainG2).WithCap(),
			passivelight.RXLEDReceiver())
		if err != nil {
			log.Fatal(err)
		}
		pass := passivelight.OutdoorCarPass{
			Car:            a.car,
			Payload:        a.payload,
			NoiseFloorLux:  a.lux,
			ReceiverHeight: 0.75,
			Receiver:       dev,
			Seed:           int64(300 + i),
		}
		link, packet, err := pass.Build()
		if err != nil {
			log.Fatal(err)
		}
		tr, err := link.Simulate()
		if err != nil {
			log.Fatal(err)
		}
		twoPhase, err := passivelight.DecodeCarPass(tr, passivelight.DecodeOptions{
			ExpectedSymbols: 4 + 2*len(a.payload),
		})
		if err != nil {
			fmt.Printf("%-26s [%s] no decode: %v\n", a.label, dev.Name, err)
			continue
		}
		ok := twoPhase.Decode.ParseErr == nil &&
			twoPhase.Decode.Packet.BitString() == packet.BitString()
		fmt.Printf("%-26s [%s @ %4.0f lux] shape@%.2fs code=%s ok=%v\n",
			a.label, dev.Name, a.lux,
			tr.TimeAt(twoPhase.Signature.HoodPeakIndex),
			twoPhase.Decode.Packet.BitString(), ok)
	}
}
