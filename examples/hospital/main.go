// Hospital: the paper's indoor motivation — emergency, treatment and
// housekeeping trolleys wear reflective codes; corridor receivers
// under fluorescent ceiling lights read them to report trolley
// locations. Each corridor read is a Threshold pipeline over a
// simulated bench source (the fluorescent fixture swapped in with a
// source Customize hook); the two-trolley doorway collision runs the
// same source through a Collision pipeline, which flags two distinct
// symbol-rate tones in the frequency domain (Sec. 4.3).
package main

import (
	"context"
	"fmt"
	"log"

	"passivelight"
	"passivelight/internal/optics"
)

var trolleys = map[string]string{
	"emergency":    "00",
	"treatment":    "10",
	"housekeeping": "01",
}

func main() {
	ctx := context.Background()
	// Single trolley passes under a corridor receiver lit by 150 lux
	// fluorescent fixtures (Fig. 7 conditions).
	for name, payload := range trolleys {
		src := passivelight.NewBenchSource(passivelight.IndoorBench{
			Height:      0.20,
			SymbolWidth: 0.03,
			Speed:       0.10,
			Payload:     payload,
			Seed:        int64(len(name)),
		}).Customize(func(l *passivelight.Link) {
			l.Scene.Source = optics.CeilingLight{Lux: 150, RippleDepth: 0.12, MainsHz: 50}
		})
		pipe, err := passivelight.NewPipeline(src, passivelight.Threshold(),
			passivelight.WithExpectedSymbols(8),
			passivelight.WithPreRoll(-1),
		)
		if err != nil {
			log.Fatal(err)
		}
		events, err := pipe.Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		for _, ev := range events {
			ok := ev.Err == nil && ev.BitString() == src.Packet().BitString()
			fmt.Printf("%-13s trolley: decoded=%s ok=%v\n", name, ev.Symbols, ok)
		}
	}

	// Two trolleys share a doorway: the time-domain signal garbles,
	// but the FFT reveals two symbol-rate tones.
	pipe, err := passivelight.NewPipeline(
		passivelight.NewScenarioSource(doorwayCollision()),
		passivelight.Collision(passivelight.CollisionOptions{
			MinFreq: 1.0, MaxFreq: 4.0, SignificanceRatio: 0.6,
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	events, err := pipe.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, ev := range events {
		if ev.Err != nil {
			log.Fatal(ev.Err)
		}
		rep := ev.Collision
		fmt.Printf("\ndoorway collision: %d distinct symbol-rate tones detected", rep.SignificantTones)
		for _, p := range rep.Peaks {
			fmt.Printf("  [%.1f Hz]", p.Freq)
		}
		fmt.Println()
		if rep.SignificantTones >= 2 {
			fmt.Println("-> two trolleys crossed together; requesting a re-read")
		}
	}
}

// doorwayCollision is the declarative scenario for two trolleys
// (different stripe widths, half the FoV each) crossing the receiver
// at the same time; the simulation window is derived from the passes.
func doorwayCollision() passivelight.Scenario {
	const (
		speed  = 0.12
		startM = -0.11 // just before the doorway receiver's footprint
	)
	return passivelight.Scenario{
		Name: "doorway-collision",
		Seed: 7,
		Optics: passivelight.ScenarioOptics{
			Kind: "ceiling-light", Lux: 300, RippleDepth: 0.1, MainsHz: 50,
		},
		Receiver: passivelight.ScenarioReceiver{
			Device: "pd-g1", HeightM: 0.08, FoVDeg: 5, Fs: 1000,
		},
		Objects: []passivelight.ScenarioObject{
			{
				Kind: "tag", Name: "trolley-a", Payload: "0010",
				SymbolWidthM: 0.04, LateralShare: 0.5,
				Mobility: passivelight.ScenarioMobility{StartM: startM, SpeedMS: speed},
			},
			{
				Kind: "tag", Name: "trolley-b", Payload: "0000100000",
				SymbolWidthM: 0.02, LateralShare: 0.5,
				Mobility: passivelight.ScenarioMobility{StartM: startM, SpeedMS: speed},
			},
		},
	}
}
