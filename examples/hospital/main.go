// Hospital: the paper's indoor motivation — emergency, treatment and
// housekeeping trolleys wear reflective codes; corridor receivers
// under fluorescent ceiling lights read them to report trolley
// locations. Each corridor read is a Threshold pipeline over a
// simulated bench source (the fluorescent fixture swapped in with a
// source Customize hook); the two-trolley doorway collision runs the
// same source through a Collision pipeline, which flags two distinct
// symbol-rate tones in the frequency domain (Sec. 4.3).
package main

import (
	"context"
	"fmt"
	"log"

	"passivelight"
	"passivelight/internal/channel"
	"passivelight/internal/coding"
	"passivelight/internal/core"
	"passivelight/internal/frontend"
	"passivelight/internal/noise"
	"passivelight/internal/optics"
	"passivelight/internal/scene"
	"passivelight/internal/tag"
)

var trolleys = map[string]string{
	"emergency":    "00",
	"treatment":    "10",
	"housekeeping": "01",
}

func main() {
	ctx := context.Background()
	// Single trolley passes under a corridor receiver lit by 150 lux
	// fluorescent fixtures (Fig. 7 conditions).
	for name, payload := range trolleys {
		src := passivelight.NewBenchSource(passivelight.IndoorBench{
			Height:      0.20,
			SymbolWidth: 0.03,
			Speed:       0.10,
			Payload:     payload,
			Seed:        int64(len(name)),
		}).Customize(func(l *passivelight.Link) {
			l.Scene.Source = optics.CeilingLight{Lux: 150, RippleDepth: 0.12, MainsHz: 50}
		})
		pipe, err := passivelight.NewPipeline(src, passivelight.Threshold(),
			passivelight.WithExpectedSymbols(8),
			passivelight.WithPreRoll(-1),
		)
		if err != nil {
			log.Fatal(err)
		}
		events, err := pipe.Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		for _, ev := range events {
			ok := ev.Err == nil && ev.BitString() == src.Packet().BitString()
			fmt.Printf("%-13s trolley: decoded=%s ok=%v\n", name, ev.Symbols, ok)
		}
	}

	// Two trolleys share a doorway: the time-domain signal garbles,
	// but the FFT reveals two symbol-rate tones.
	link, err := doorwayCollision()
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := passivelight.NewPipeline(
		passivelight.NewLinkSource(link),
		passivelight.Collision(passivelight.CollisionOptions{
			MinFreq: 1.0, MaxFreq: 4.0, SignificanceRatio: 0.6,
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	events, err := pipe.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, ev := range events {
		if ev.Err != nil {
			log.Fatal(ev.Err)
		}
		rep := ev.Collision
		fmt.Printf("\ndoorway collision: %d distinct symbol-rate tones detected", rep.SignificantTones)
		for _, p := range rep.Peaks {
			fmt.Printf("  [%.1f Hz]", p.Freq)
		}
		fmt.Println()
		if rep.SignificantTones >= 2 {
			fmt.Println("-> two trolleys crossed together; requesting a re-read")
		}
	}
}

// doorwayCollision builds a scene with two trolleys (different stripe
// widths) crossing the receiver FoV at the same time.
func doorwayCollision() (*core.Link, error) {
	wide, err := tag.New(coding.MustPacket("0010"), tag.Config{SymbolWidth: 0.04})
	if err != nil {
		return nil, err
	}
	narrow, err := tag.New(coding.MustPacket("0000100000"), tag.Config{SymbolWidth: 0.02})
	if err != nil {
		return nil, err
	}
	rx := channel.Receiver{X: 0, Height: 0.08, FoVHalfAngleDeg: 5}
	start := -(rx.FootprintRadius() + 0.1)
	const speed = 0.12
	a, err := scene.NewTagObject("trolley-a", wide, scene.ConstantSpeed{Start: start, Speed: speed}, 0.5)
	if err != nil {
		return nil, err
	}
	b, err := scene.NewTagObject("trolley-b", narrow, scene.ConstantSpeed{Start: start, Speed: speed}, 0.5)
	if err != nil {
		return nil, err
	}
	lamp := optics.CeilingLight{Lux: 300, RippleDepth: 0.1, MainsHz: 50}
	fe, err := frontend.NewChain(frontend.PD(frontend.G1), 1000, 7)
	if err != nil {
		return nil, err
	}
	dur := (-start + wide.Length() + rx.FootprintRadius() + 0.05) / speed
	return &core.Link{
		Scene:    scene.New(lamp, a, b),
		Receiver: rx,
		Frontend: fe,
		Noise:    noise.Indoor(7),
		Duration: dur,
	}, nil
}
