// Quickstart: encode two bits on a reflective tag, slide it under a
// lamp-lit receiver, and decode the reflected light — the paper's
// Fig. 5 as one Pipeline: a simulated bench source bound to the
// adaptive threshold strategy.
package main

import (
	"context"
	"fmt"
	"log"

	"passivelight"
)

func main() {
	src := passivelight.NewBenchSource(passivelight.IndoorBench{
		Height:      0.20, // lamp and receiver 20 cm above the plane
		SymbolWidth: 0.03, // 3 cm reflective stripes
		Speed:       0.08, // tag slides at 8 cm/s
		Payload:     "10",
		Seed:        42,
	})
	pipe, err := passivelight.NewPipeline(src, passivelight.Threshold(),
		passivelight.WithExpectedSymbols(8),
		passivelight.WithPreRoll(-1), // offline replay: batch-equivalent decode
	)
	if err != nil {
		log.Fatal(err)
	}
	events, err := pipe.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	packet := src.Packet()
	fmt.Printf("sent    : %s (payload %s)\n", packet.SymbolString(), packet.BitString())
	for _, ev := range events {
		if ev.Err != nil {
			log.Fatal(ev.Err)
		}
		fmt.Printf("decoded : %s\n", ev.Symbols)
		fmt.Printf("success : %v\n", ev.BitString() == packet.BitString())
		fmt.Printf("symbol rate: %.2f sym/s (adaptive tau_t)\n", ev.SymbolRate)
	}
	tr := src.Trace()
	fmt.Printf("trace   : %d samples at %g Hz\n", tr.Len(), tr.Fs)
}
