// Quickstart: encode two bits on a reflective tag, slide it under a
// lamp-lit receiver, and decode the reflected light — the paper's
// Fig. 5 in a dozen lines of library use.
package main

import (
	"fmt"
	"log"

	"passivelight"
)

func main() {
	bench := passivelight.IndoorBench{
		Height:      0.20, // lamp and receiver 20 cm above the plane
		SymbolWidth: 0.03, // 3 cm reflective stripes
		Speed:       0.08, // tag slides at 8 cm/s
		Payload:     "10",
		Seed:        42,
	}
	link, packet, err := bench.Build()
	if err != nil {
		log.Fatal(err)
	}
	result, err := passivelight.RunEndToEnd(link, packet, passivelight.DecodeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sent    : %s (payload %s)\n", packet.SymbolString(), packet.BitString())
	fmt.Printf("decoded : %s\n", result.Decode.SymbolString())
	fmt.Printf("success : %v (bit errors: %d)\n", result.Success, result.BitErrs)
	fmt.Printf("adaptive thresholds: tau_r=%.1f counts, tau_t=%.3f s\n",
		result.Decode.Thresholds.TauR, result.Decode.Thresholds.TauT)
	fmt.Printf("trace   : %d samples at %g Hz, ambient %.0f lux\n",
		result.Trace.Len(), result.Trace.Fs, result.Floor)
}
