// Command plexperiments regenerates every table and figure of the
// paper's evaluation (and the DESIGN.md ablations) and prints the
// results as text tables. See EXPERIMENTS.md for the paper-vs-measured
// record.
//
// Usage:
//
//	plexperiments            # full sweeps (minutes)
//	plexperiments -quick     # coarse grids (seconds)
//	plexperiments -only fig10,fig11
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"passivelight/internal/experiments"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "coarse sweep grids")
		only  = flag.String("only", "", "comma-separated experiment ids to print (default all)")
	)
	flag.Parse()
	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}
	start := time.Now()
	reports, err := experiments.All(*quick)
	if err != nil {
		fmt.Fprintln(os.Stderr, "plexperiments:", err)
		os.Exit(1)
	}
	printed := 0
	for _, rep := range reports {
		if len(want) > 0 && !want[rep.ID] {
			continue
		}
		fmt.Print(rep)
		fmt.Println()
		printed++
	}
	if printed == 0 {
		fmt.Fprintf(os.Stderr, "plexperiments: no experiment matched %q\n", *only)
		os.Exit(1)
	}
	fmt.Printf("(%d experiments in %.1fs)\n", printed, time.Since(start).Seconds())
}
