// Command benchdump runs the repository's benchmarks and writes the
// results as structured JSON, so every PR can commit a
// machine-readable performance baseline (BENCH_PR<n>.json) that later
// PRs diff against instead of eyeballing bench output in commit
// messages.
//
//	benchdump                          # all benchmarks -> bench.json
//	benchdump -out BENCH_PR3.json      # name the baseline
//	benchdump -bench 'Engine' -benchtime 10x -note "post-sharding"
//	benchdump -bench 'Engine' -pkg . -cpuprofile cpu.pprof
//
// Each run also diffs against the previous committed baseline
// (-prev, default auto = the highest-numbered BENCH_PR*.json other
// than -out) and stores per-benchmark deltas, so an alloc or
// throughput regression is visible in the dump itself.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"passivelight/internal/stream"
	"passivelight/internal/telemetry"
)

// Result is one parsed benchmark line.
type Result struct {
	Package string `json:"package"`
	Name    string `json:"name"`
	// GOMAXPROCS is set when the dump swept several values via the
	// -gomaxprocs flag; it is the setting this result ran under.
	GOMAXPROCS  int     `json:"gomaxprocs,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units the schema has no
	// dedicated field for.
	Extra map[string]float64 `json:"extra,omitempty"`
	// Latency is the detection-latency distribution reconstructed from
	// the engine benchmarks' lat-* metrics — the same HistogramSnapshot
	// schema the live /metrics.json endpoint serves, so committed
	// baselines diff directly against production telemetry.
	Latency *telemetry.HistogramSnapshot `json:"latency,omitempty"`
	// VsPrev is the delta against the same benchmark in the previous
	// baseline file (Dump.ComparedTo); absent when the benchmark is new
	// or no previous baseline was found.
	VsPrev *Compare `json:"vs_prev,omitempty"`
}

// Compare holds the previous baseline's numbers for one benchmark and
// the percentage deltas of this run against them (negative = this run
// is lower).
type Compare struct {
	NsPerOp        float64 `json:"ns_per_op,omitempty"`
	MBPerS         float64 `json:"mb_per_s,omitempty"`
	BytesPerOp     float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp    float64 `json:"allocs_per_op,omitempty"`
	NsDeltaPct     float64 `json:"ns_delta_pct,omitempty"`
	BytesDeltaPct  float64 `json:"bytes_delta_pct,omitempty"`
	AllocsDeltaPct float64 `json:"allocs_delta_pct,omitempty"`
}

// Dump is the file schema.
type Dump struct {
	GeneratedAt time.Time `json:"generated_at"`
	Note        string    `json:"note,omitempty"`
	GoVersion   string    `json:"go_version"`
	GOOS        string    `json:"goos"`
	GOARCH      string    `json:"goarch"`
	CPU         string    `json:"cpu,omitempty"`
	GOMAXPROCS  int       `json:"gomaxprocs"`
	NumCPU      int       `json:"num_cpu"`
	// DefaultShards is what an auto-sharded engine resolves to under
	// this run's GOMAXPROCS — the sharding the EngineSessions*
	// benchmarks actually used.
	DefaultShards int      `json:"default_shards"`
	BenchTime     string   `json:"benchtime,omitempty"`
	ComparedTo    string   `json:"compared_to,omitempty"`
	Benchmarks    []Result `json:"benchmarks"`
}

func main() {
	var (
		out        = flag.String("out", "bench.json", "output JSON path")
		bench      = flag.String("bench", ".", "benchmark name pattern (go test -bench)")
		benchtime  = flag.String("benchtime", "", "per-benchmark time or count (go test -benchtime)")
		count      = flag.Int("count", 1, "runs per benchmark (go test -count)")
		pkgs       = flag.String("pkg", "./...", "packages to benchmark")
		note       = flag.String("note", "", "free-form note stored in the dump")
		prev       = flag.String("prev", "auto", "previous baseline to diff against: a path, 'auto' (highest BENCH_PR*.json), or 'none'")
		gomax      = flag.String("gomaxprocs", "", "comma-separated GOMAXPROCS sweep (e.g. '1,4,8'); each value reruns the suite and tags its results")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile (go test -cpuprofile; requires -pkg naming a single package)")
		memprofile = flag.String("memprofile", "", "write an allocation profile (go test -memprofile; requires -pkg naming a single package)")
	)
	flag.Parse()

	if (*cpuprofile != "" || *memprofile != "") && strings.Contains(*pkgs, "...") {
		fmt.Fprintln(os.Stderr, "benchdump: -cpuprofile/-memprofile need a single package (go test restriction); pass e.g. -pkg .")
		os.Exit(2)
	}

	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem", "-count", strconv.Itoa(*count)}
	if *benchtime != "" {
		args = append(args, "-benchtime", *benchtime)
	}
	if *cpuprofile != "" {
		args = append(args, "-cpuprofile", *cpuprofile)
	}
	if *memprofile != "" {
		args = append(args, "-memprofile", *memprofile)
	}
	args = append(args, *pkgs)

	// The GOMAXPROCS sweep reruns the same suite once per value, each
	// child pinned via the environment; 0 means "one run, inherit".
	sweep := []int{0}
	if *gomax != "" {
		sweep = sweep[:0]
		for _, s := range strings.Split(*gomax, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v < 1 {
				fmt.Fprintf(os.Stderr, "benchdump: bad -gomaxprocs value %q\n", s)
				os.Exit(2)
			}
			sweep = append(sweep, v)
		}
	}

	dump := Dump{
		GeneratedAt:   time.Now().UTC(),
		Note:          *note,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		DefaultShards: stream.DefaultShards(),
		BenchTime:     *benchtime,
	}
	for _, procs := range sweep {
		cmd := exec.Command("go", args...)
		cmd.Env = os.Environ()
		if procs > 0 {
			cmd.Env = append(cmd.Env, "GOMAXPROCS="+strconv.Itoa(procs))
			fmt.Fprintln(os.Stderr, "benchdump: GOMAXPROCS="+strconv.Itoa(procs), "go", strings.Join(args, " "))
		} else {
			fmt.Fprintln(os.Stderr, "benchdump: go", strings.Join(args, " "))
		}
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintln(os.Stderr, "benchdump: go test:", err)
			os.Exit(1)
		}
		pkg := ""
		sc := bufio.NewScanner(&buf)
		sc.Buffer(make([]byte, 1024*1024), 1024*1024)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "pkg: ") {
				pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
				continue
			}
			if strings.HasPrefix(line, "cpu: ") && dump.CPU == "" {
				dump.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
				continue
			}
			if r, ok := parseBenchLine(line); ok {
				r.Package = pkg
				r.GOMAXPROCS = procs
				dump.Benchmarks = append(dump.Benchmarks, r)
			}
		}
	}
	if len(dump.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchdump: no benchmark lines parsed")
		os.Exit(1)
	}
	if prevPath := resolvePrev(*prev, *out); prevPath != "" {
		if err := diffAgainst(&dump, prevPath); err != nil {
			fmt.Fprintln(os.Stderr, "benchdump: diff vs", prevPath+":", err)
		} else {
			fmt.Fprintf(os.Stderr, "benchdump: diffed against %s\n", prevPath)
		}
	}
	data, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdump:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchdump:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchdump: wrote %d benchmarks to %s\n", len(dump.Benchmarks), *out)
}

// resolvePrev picks the baseline file to diff against: an explicit
// path is used as-is, "none"/"" disables, and "auto" selects the
// highest-numbered BENCH_PR*.json in the working directory, skipping
// the file this run is about to write.
func resolvePrev(prev, out string) string {
	switch prev {
	case "", "none":
		return ""
	case "auto":
	default:
		return prev
	}
	matches, _ := filepath.Glob("BENCH_PR*.json")
	type cand struct {
		n    int
		path string
	}
	var cands []cand
	for _, m := range matches {
		if filepath.Clean(m) == filepath.Clean(out) {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(m), "BENCH_PR"), ".json")
		n, err := strconv.Atoi(num)
		if err != nil {
			continue
		}
		cands = append(cands, cand{n, m})
	}
	if len(cands) == 0 {
		return ""
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].n > cands[j].n })
	return cands[0].path
}

// diffAgainst loads a previous Dump and attaches per-benchmark deltas
// to this run's results. Benchmarks are matched by package+name; a
// previous dump may hold several counts of the same benchmark (e.g.
// runs at different GOMAXPROCS) — the first occurrence wins, matching
// the file's run order.
func diffAgainst(dump *Dump, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var old Dump
	if err := json.Unmarshal(data, &old); err != nil {
		return err
	}
	byName := make(map[string]*Result, len(old.Benchmarks))
	for i := range old.Benchmarks {
		r := &old.Benchmarks[i]
		key := r.Package + "/" + r.Name
		if _, ok := byName[key]; !ok {
			byName[key] = r
		}
	}
	pct := func(now, was float64) float64 {
		if was == 0 {
			return 0
		}
		return 100 * (now - was) / was
	}
	matched := 0
	for i := range dump.Benchmarks {
		r := &dump.Benchmarks[i]
		o, ok := byName[r.Package+"/"+r.Name]
		if !ok {
			continue
		}
		matched++
		r.VsPrev = &Compare{
			NsPerOp:        o.NsPerOp,
			MBPerS:         o.MBPerS,
			BytesPerOp:     o.BytesPerOp,
			AllocsPerOp:    o.AllocsPerOp,
			NsDeltaPct:     pct(r.NsPerOp, o.NsPerOp),
			BytesDeltaPct:  pct(r.BytesPerOp, o.BytesPerOp),
			AllocsDeltaPct: pct(r.AllocsPerOp, o.AllocsPerOp),
		}
	}
	if matched == 0 {
		return fmt.Errorf("no benchmarks in common with %s", path)
	}
	dump.ComparedTo = filepath.Base(path)
	return nil
}

// parseBenchLine parses one `go test -bench` output line, e.g.
//
//	BenchmarkFoo-8   	 123	 456 ns/op	 7.89 MB/s	 100 B/op	 5 allocs/op
func parseBenchLine(line string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "MB/s":
			r.MBPerS = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[fields[i+1]] = v
		}
	}
	if r.NsPerOp == 0 {
		return Result{}, false
	}
	r.foldLatency()
	return r, true
}

// foldLatency lifts the engine benchmarks' lat-* custom metrics out of
// Extra into a HistogramSnapshot.
func (r *Result) foldLatency() {
	count, ok := r.Extra["lat-count"]
	if !ok || count <= 0 {
		return
	}
	r.Latency = &telemetry.HistogramSnapshot{
		Count: int64(count),
		Max:   int64(r.Extra["lat-max-ns"]),
		P50:   r.Extra["lat-p50-ns"],
		P90:   r.Extra["lat-p90-ns"],
		P99:   r.Extra["lat-p99-ns"],
	}
	for _, k := range []string{"lat-count", "lat-max-ns", "lat-p50-ns", "lat-p90-ns", "lat-p99-ns"} {
		delete(r.Extra, k)
	}
	if len(r.Extra) == 0 {
		r.Extra = nil
	}
}
