// Command benchdump runs the repository's benchmarks and writes the
// results as structured JSON, so every PR can commit a
// machine-readable performance baseline (BENCH_PR<n>.json) that later
// PRs diff against instead of eyeballing bench output in commit
// messages.
//
//	benchdump                          # all benchmarks -> bench.json
//	benchdump -out BENCH_PR3.json      # name the baseline
//	benchdump -bench 'Engine' -benchtime 10x -note "post-sharding"
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"passivelight/internal/telemetry"
)

// Result is one parsed benchmark line.
type Result struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units the schema has no
	// dedicated field for.
	Extra map[string]float64 `json:"extra,omitempty"`
	// Latency is the detection-latency distribution reconstructed from
	// the engine benchmarks' lat-* metrics — the same HistogramSnapshot
	// schema the live /metrics.json endpoint serves, so committed
	// baselines diff directly against production telemetry.
	Latency *telemetry.HistogramSnapshot `json:"latency,omitempty"`
}

// Dump is the file schema.
type Dump struct {
	GeneratedAt time.Time `json:"generated_at"`
	Note        string    `json:"note,omitempty"`
	GoVersion   string    `json:"go_version"`
	GOOS        string    `json:"goos"`
	GOARCH      string    `json:"goarch"`
	CPU         string    `json:"cpu,omitempty"`
	GOMAXPROCS  int       `json:"gomaxprocs"`
	BenchTime   string    `json:"benchtime,omitempty"`
	Benchmarks  []Result  `json:"benchmarks"`
}

func main() {
	var (
		out       = flag.String("out", "bench.json", "output JSON path")
		bench     = flag.String("bench", ".", "benchmark name pattern (go test -bench)")
		benchtime = flag.String("benchtime", "", "per-benchmark time or count (go test -benchtime)")
		count     = flag.Int("count", 1, "runs per benchmark (go test -count)")
		pkgs      = flag.String("pkg", "./...", "packages to benchmark")
		note      = flag.String("note", "", "free-form note stored in the dump")
	)
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem", "-count", strconv.Itoa(*count)}
	if *benchtime != "" {
		args = append(args, "-benchtime", *benchtime)
	}
	args = append(args, *pkgs)
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	fmt.Fprintln(os.Stderr, "benchdump: go", strings.Join(args, " "))
	if err := cmd.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchdump: go test:", err)
		os.Exit(1)
	}

	dump := Dump{
		GeneratedAt: time.Now().UTC(),
		Note:        *note,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		BenchTime:   *benchtime,
	}
	pkg := ""
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "pkg: ") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		}
		if strings.HasPrefix(line, "cpu: ") && dump.CPU == "" {
			dump.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
			continue
		}
		if r, ok := parseBenchLine(line); ok {
			r.Package = pkg
			dump.Benchmarks = append(dump.Benchmarks, r)
		}
	}
	if len(dump.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchdump: no benchmark lines parsed")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdump:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchdump:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchdump: wrote %d benchmarks to %s\n", len(dump.Benchmarks), *out)
}

// parseBenchLine parses one `go test -bench` output line, e.g.
//
//	BenchmarkFoo-8   	 123	 456 ns/op	 7.89 MB/s	 100 B/op	 5 allocs/op
func parseBenchLine(line string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "MB/s":
			r.MBPerS = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[fields[i+1]] = v
		}
	}
	if r.NsPerOp == 0 {
		return Result{}, false
	}
	r.foldLatency()
	return r, true
}

// foldLatency lifts the engine benchmarks' lat-* custom metrics out of
// Extra into a HistogramSnapshot.
func (r *Result) foldLatency() {
	count, ok := r.Extra["lat-count"]
	if !ok || count <= 0 {
		return
	}
	r.Latency = &telemetry.HistogramSnapshot{
		Count: int64(count),
		Max:   int64(r.Extra["lat-max-ns"]),
		P50:   r.Extra["lat-p50-ns"],
		P90:   r.Extra["lat-p90-ns"],
		P99:   r.Extra["lat-p99-ns"],
	}
	for _, k := range []string{"lat-count", "lat-max-ns", "lat-p50-ns", "lat-p90-ns", "lat-p99-ns"} {
		delete(r.Extra, k)
	}
	if len(r.Extra) == 0 {
		r.Extra = nil
	}
}
