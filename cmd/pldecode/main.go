// Command pldecode decodes a trace CSV produced by plsim (or captured
// from real hardware in the same format).
//
// Usage:
//
//	pldecode -mode threshold -symbols 8 trace.csv
//	pldecode -mode carpass -symbols 8 pass.csv
//	pldecode -mode fft trace.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"passivelight/internal/decoder"
	"passivelight/internal/trace"
)

func main() {
	var (
		mode    = flag.String("mode", "threshold", "threshold | carpass | fft")
		symbols = flag.Int("symbols", 0, "expected symbol count (0 = auto)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pldecode [-mode m] [-symbols n] trace.csv")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "pldecode:", err)
		os.Exit(1)
	}
	defer f.Close()
	tr, err := trace.ReadCSV(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pldecode:", err)
		os.Exit(1)
	}
	if err := run(tr, *mode, *symbols); err != nil {
		fmt.Fprintln(os.Stderr, "pldecode:", err)
		os.Exit(1)
	}
}

func run(tr *trace.Trace, mode string, symbols int) error {
	opt := decoder.Options{ExpectedSymbols: symbols}
	switch mode {
	case "threshold":
		res, err := decoder.Decode(tr, opt)
		if err != nil {
			return err
		}
		printResult(res)
	case "carpass":
		tp, err := decoder.DecodeCarPass(tr, opt)
		if err != nil {
			return err
		}
		fmt.Printf("car shape: hood@%.3fs windshield@%.3fs model=%s\n",
			tr.TimeAt(tp.Signature.HoodPeakIndex),
			tr.TimeAt(tp.Signature.WindshieldValleyIndex),
			decoder.MatchCarModel(tp.Signature))
		printResult(tp.Decode)
	case "fft":
		rep, err := decoder.AnalyzeCollision(tr, decoder.CollisionOptions{})
		if err != nil {
			return err
		}
		fmt.Printf("dominant=%.2f Hz significant tones=%d\n", rep.DominantFreq, rep.SignificantTones)
		for _, p := range rep.Peaks {
			fmt.Printf("  peak %.2f Hz power %.1f\n", p.Freq, p.Power)
		}
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	return nil
}

func printResult(res decoder.Result) {
	fmt.Printf("symbols: %s\n", res.SymbolString())
	if res.ParseErr == nil {
		fmt.Printf("payload: %s\n", res.Packet.BitString())
	} else {
		fmt.Printf("payload: <invalid: %v>\n", res.ParseErr)
	}
	fmt.Printf("tau_r=%.2f tau_t=%.4fs baseline=%.2f (A@%.3fs B@%.3fs C@%.3fs)\n",
		res.Thresholds.TauR, res.Thresholds.TauT, res.Thresholds.Baseline,
		res.Preamble.ATime, res.Preamble.BTime, res.Preamble.CTime)
}
