// Command plsim simulates a passive-light scenario and writes the
// received RSS trace as CSV (readable by pldecode and any plotting
// tool).
//
// Usage:
//
//	plsim -scenario indoor -payload 10 -height 0.2 -width 0.03 -speed 0.08 -o trace.csv
//	plsim -scenario outdoor -payload 00 -height 0.75 -lux 6200 -receiver rx-led -o pass.csv
//	plsim -scenario car -car bmw3 -height 0.75 -lux 6200 -o bmw.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"passivelight/internal/core"
	"passivelight/internal/frontend"
	"passivelight/internal/scene"
	"passivelight/internal/trace"
)

func main() {
	var (
		scenario = flag.String("scenario", "indoor", "indoor | outdoor | car (bare car, no tag)")
		payload  = flag.String("payload", "10", "payload bits")
		height   = flag.Float64("height", 0.20, "receiver height (m)")
		width    = flag.Float64("width", 0.03, "symbol width (m)")
		speed    = flag.Float64("speed", 0.08, "object speed (m/s, indoor) ")
		speedKmh = flag.Float64("speed-kmh", 18, "car speed (km/h, outdoor)")
		lux      = flag.Float64("lux", 450, "outdoor ambient noise floor (lux)")
		receiver = flag.String("receiver", "rx-led", "outdoor receiver: rx-led | pd-g1 | pd-g2 | pd-g3 | pd-g2-cap")
		car      = flag.String("car", "volvo", "car model: volvo | bmw3")
		seed     = flag.Int64("seed", 1, "noise seed")
		out      = flag.String("o", "", "output CSV path (default stdout)")
	)
	flag.Parse()

	tr, err := simulate(*scenario, *payload, *height, *width, *speed, *speedKmh, *lux, *receiver, *car, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "plsim:", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "plsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := tr.WriteCSV(w); err != nil {
		fmt.Fprintln(os.Stderr, "plsim:", err)
		os.Exit(1)
	}
	if *out != "" {
		st := tr.Stats()
		fmt.Fprintf(os.Stderr, "wrote %d samples (fs=%g Hz, rss %.0f..%.0f) to %s\n",
			tr.Len(), tr.Fs, st.Min, st.Max, *out)
	}
}

func simulate(scenario, payload string, height, width, speed, speedKmh, lux float64, receiver, car string, seed int64) (*trace.Trace, error) {
	switch scenario {
	case "indoor":
		link, _, err := core.BenchSetup{
			Height:      height,
			SymbolWidth: width,
			Speed:       speed,
			Payload:     payload,
			Seed:        seed,
		}.Build()
		if err != nil {
			return nil, err
		}
		return link.Simulate()
	case "outdoor", "car":
		dev, err := receiverByName(receiver)
		if err != nil {
			return nil, err
		}
		setup := core.OutdoorSetup{
			Payload:        payload,
			SymbolWidth:    width,
			SpeedKmh:       speedKmh,
			ReceiverHeight: height,
			NoiseFloorLux:  lux,
			Receiver:       dev,
			Seed:           seed,
		}
		if scenario == "car" {
			setup.Payload = "" // bare car: shape signature only
		}
		switch car {
		case "volvo", "":
			setup.Car = scene.VolvoV40()
		case "bmw3", "bmw":
			setup.Car = scene.BMW3()
		default:
			return nil, fmt.Errorf("unknown car %q", car)
		}
		link, _, err := setup.Build()
		if err != nil {
			return nil, err
		}
		return link.Simulate()
	default:
		return nil, fmt.Errorf("unknown scenario %q", scenario)
	}
}

func receiverByName(name string) (frontend.Receiver, error) {
	switch name {
	case "rx-led", "":
		return frontend.RXLED(), nil
	case "pd-g1":
		return frontend.PD(frontend.G1), nil
	case "pd-g2":
		return frontend.PD(frontend.G2), nil
	case "pd-g3":
		return frontend.PD(frontend.G3), nil
	case "pd-g2-cap":
		return frontend.PD(frontend.G2).WithCap(), nil
	default:
		return frontend.Receiver{}, fmt.Errorf("unknown receiver %q", name)
	}
}
