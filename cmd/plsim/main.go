// Command plsim simulates a passive-light scenario and writes the
// received RSS trace as CSV (readable by pldecode and any plotting
// tool). Worlds come from the declarative scenario registry: name a
// preset, load a spec file, or use the legacy indoor/outdoor/car
// aliases with their tuning flags.
//
// Usage:
//
//	plsim -list
//	plsim -scenario multi-lane -o lane.csv
//	plsim -scenario indoor -payload 10 -height 0.2 -width 0.03 -speed 0.08 -o trace.csv
//	plsim -scenario outdoor -payload 00 -height 0.75 -lux 6200 -receiver rx-led -o pass.csv
//	plsim -dump-spec weather-sweep > weather.json
//	plsim -spec weather.json -seed 7 -o weather.csv
//
// Load mode expands a load preset (or fans any scenario out) into N
// staggered sessions and decodes them all through one pipeline,
// printing a summary instead of a CSV:
//
//	plsim -scenario fleet-load -load 128
//	plsim -scenario rx-lanes -load 16 -stagger 0.5
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"passivelight"
	"passivelight/internal/frontend"
	"passivelight/internal/scenario"
	"passivelight/internal/trace"
)

func main() {
	var (
		name     = flag.String("scenario", "indoor", "registry preset name (see -list); the legacy aliases indoor | outdoor | car accept the tuning flags below")
		list     = flag.Bool("list", false, "print the scenario registry and exit")
		specPath = flag.String("spec", "", "load the scenario from a JSON spec file instead of the registry")
		dumpSpec = flag.String("dump-spec", "", "print the named preset as a JSON spec and exit")
		payload  = flag.String("payload", "10", "payload bits (legacy scenarios)")
		height   = flag.Float64("height", 0.20, "receiver height (m, legacy scenarios)")
		width    = flag.Float64("width", 0.03, "symbol width (m, legacy scenarios)")
		speed    = flag.Float64("speed", 0.08, "object speed (m/s, indoor)")
		speedKmh = flag.Float64("speed-kmh", 18, "car speed (km/h, outdoor)")
		lux      = flag.Float64("lux", 450, "outdoor ambient noise floor (lux)")
		receiver = flag.String("receiver", "rx-led", "outdoor receiver: rx-led | pd-g1 | pd-g2 | pd-g3 | pd-g2+cap")
		car      = flag.String("car", "volvo", "car model: volvo | bmw3")
		seed     = flag.Int64("seed", 1, "noise seed")
		out      = flag.String("o", "", "output CSV path (default stdout)")
		loadN    = flag.Int("load", 0, "expand the scenario (or a load preset) into N staggered sessions and decode them through one pipeline")
		stagger  = flag.Float64("stagger", -1, "per-session start offset in load mode (s; <0 keeps the preset's)")
		jitter   = flag.Float64("jitter", -1, "max per-session start jitter in load mode (s; <0 keeps the preset's)")
	)
	flag.Parse()

	if *list {
		printRegistry()
		return
	}
	if *dumpSpec != "" {
		if err := dump(*dumpSpec); err != nil {
			fail(err)
		}
		return
	}
	seedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})
	lf := legacyFlags{
		payload: *payload, height: *height, width: *width, speed: *speed,
		speedKmh: *speedKmh, lux: *lux, receiver: *receiver, car: *car, seed: *seed,
	}
	if *loadN > 0 {
		if err := runLoad(*specPath, *name, lf, *loadN, *stagger, *jitter, seedSet, *seed); err != nil {
			fail(err)
		}
		return
	}
	spec, err := resolveSpec(*specPath, *name, lf)
	if err != nil {
		fail(err)
	}
	if seedSet {
		spec.Seed = *seed
	}
	_, tr, err := spec.Simulate()
	if err != nil {
		fail(err)
	}
	if err := write(tr, *out); err != nil {
		fail(err)
	}
}

// runLoad is load mode: resolve the load (a load-registry preset by
// name, or any scenario fanned out with default stagger), expand to N
// staggered sessions, and decode sessions x receivers streams through
// one pipeline.
func runLoad(specPath, name string, lf legacyFlags, sessions int, stagger, jitter float64, seedSet bool, seed int64) error {
	var load scenario.Load
	if specPath == "" {
		l, err := scenario.GetLoad(name)
		switch {
		case err == nil:
			load = l
		case !errors.Is(err, scenario.ErrUnknownLoad):
			// A registered load preset whose builder failed: surface
			// the real error instead of falling back to the scenario
			// registry's "unknown preset".
			return err
		}
	}
	if load.Name == "" {
		spec, err := resolveSpec(specPath, name, lf)
		if err != nil {
			return err
		}
		load = scenario.Load{
			Name: spec.Name, Base: &spec,
			StaggerSec: scenario.DefaultStaggerSec,
			JitterSec:  scenario.DefaultJitterSec,
		}
	}
	load.Sessions = sessions
	if stagger >= 0 {
		load.StaggerSec = stagger
	}
	if jitter >= 0 {
		load.JitterSec = jitter
	}
	if seedSet {
		load.Seed = seed
	}
	specs, err := load.Expand()
	if err != nil {
		return err
	}
	strat, err := passivelight.StrategyForScenario(specs[0].Decode)
	if err != nil {
		return err
	}
	src := passivelight.NewLoadSource(load)
	pipe, err := passivelight.NewPipeline(src, strat,
		passivelight.WithExpectedSymbols(specs[0].Decode.ExpectedSymbols))
	if err != nil {
		return err
	}
	start := time.Now()
	events, err := pipe.Run(context.Background())
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	ok, bad := 0, 0
	for _, ev := range events {
		if ev.Err != nil {
			bad++
			continue
		}
		ok++
	}
	st := pipe.Stats()
	streams := src.Streams()
	fmt.Printf("load %s: %d sessions x %d receivers = %d streams\n",
		load.Name, sessions, len(streams)/sessions, len(streams))
	fmt.Printf("decoded %d packets (%d undecodable segments) from %d samples in %s (%.1f MB/s)\n",
		ok, bad, st.SamplesIn, elapsed.Round(time.Millisecond),
		float64(8*st.SamplesIn)/1e6/elapsed.Seconds())
	fmt.Printf("engine: %d shards, %d detections, %d decode errors, %d evicted, %d dropped samples\n",
		st.Shards, st.Detections, st.DecodeErrors, st.Evicted, st.DroppedSamples)
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "plsim:", err)
	os.Exit(1)
}

func printRegistry() {
	fmt.Println("scenario registry (plsim -scenario <name>):")
	for _, e := range scenario.Entries() {
		fmt.Printf("  %-14s %s\n", e.Name, e.Description)
	}
	fmt.Println("\nload registry (plsim -scenario <name> -load N):")
	for _, e := range scenario.LoadEntries() {
		fmt.Printf("  %-14s %s\n", e.Name, e.Description)
	}
	fmt.Println("\nlegacy aliases (accept the tuning flags; see -h):")
	fmt.Println("  indoor         indoor bench built from -payload/-height/-width/-speed")
	fmt.Println("  outdoor        outdoor car pass from -payload/-height/-lux/-receiver/-car/-speed-kmh")
	fmt.Println("  car            bare car (shape signature only), same flags as outdoor")
}

func dump(name string) error {
	spec, err := scenario.Get(name)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

// legacyFlags carries the tuning flags of the legacy scenario names.
type legacyFlags struct {
	payload, receiver, car         string
	height, width, speed, speedKmh float64
	lux                            float64
	seed                           int64
}

// resolveSpec builds the scenario: from a spec file, a legacy alias
// plus its flags, or the registry.
func resolveSpec(specPath, name string, lf legacyFlags) (scenario.Spec, error) {
	if specPath != "" {
		data, err := os.ReadFile(specPath)
		if err != nil {
			return scenario.Spec{}, err
		}
		var spec scenario.Spec
		if err := json.Unmarshal(data, &spec); err != nil {
			return scenario.Spec{}, fmt.Errorf("parsing %s: %w", specPath, err)
		}
		return spec, nil
	}
	switch name {
	case "indoor":
		return scenario.BenchParams{
			Height:      lf.height,
			SymbolWidth: lf.width,
			Speed:       lf.speed,
			Payload:     lf.payload,
			Seed:        lf.seed,
		}.Spec()
	case "outdoor", "car":
		dev, err := frontend.ByName(lf.receiver)
		if err != nil {
			return scenario.Spec{}, err
		}
		model, err := scenario.CarByName(lf.car)
		if err != nil {
			return scenario.Spec{}, err
		}
		p := scenario.OutdoorParams{
			Payload:        lf.payload,
			SymbolWidth:    lf.width,
			SpeedKmh:       lf.speedKmh,
			ReceiverHeight: lf.height,
			NoiseFloorLux:  lf.lux,
			Receiver:       dev,
			Car:            model,
			Seed:           lf.seed,
		}
		if name == "car" {
			p.Payload = "" // bare car: shape signature only
		}
		return p.Spec()
	default:
		return scenario.Get(name)
	}
}

func write(tr *trace.Trace, out string) error {
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := tr.WriteCSV(w); err != nil {
		return err
	}
	if out != "" {
		st := tr.Stats()
		fmt.Fprintf(os.Stderr, "wrote %d samples (fs=%g Hz, rss %.0f..%.0f) to %s\n",
			tr.Len(), tr.Fs, st.Min, st.Max, out)
	}
	return nil
}
