// Command plsim simulates a passive-light scenario and writes the
// received RSS trace as CSV (readable by pldecode and any plotting
// tool). Worlds come from the declarative scenario registry: name a
// preset, load a spec file, or use the legacy indoor/outdoor/car
// aliases with their tuning flags.
//
// Usage:
//
//	plsim -list
//	plsim -scenario multi-lane -o lane.csv
//	plsim -scenario indoor -payload 10 -height 0.2 -width 0.03 -speed 0.08 -o trace.csv
//	plsim -scenario outdoor -payload 00 -height 0.75 -lux 6200 -receiver rx-led -o pass.csv
//	plsim -dump-spec weather-sweep > weather.json
//	plsim -spec weather.json -seed 7 -o weather.csv
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"passivelight/internal/frontend"
	"passivelight/internal/scenario"
	"passivelight/internal/trace"
)

func main() {
	var (
		name     = flag.String("scenario", "indoor", "registry preset name (see -list); the legacy aliases indoor | outdoor | car accept the tuning flags below")
		list     = flag.Bool("list", false, "print the scenario registry and exit")
		specPath = flag.String("spec", "", "load the scenario from a JSON spec file instead of the registry")
		dumpSpec = flag.String("dump-spec", "", "print the named preset as a JSON spec and exit")
		payload  = flag.String("payload", "10", "payload bits (legacy scenarios)")
		height   = flag.Float64("height", 0.20, "receiver height (m, legacy scenarios)")
		width    = flag.Float64("width", 0.03, "symbol width (m, legacy scenarios)")
		speed    = flag.Float64("speed", 0.08, "object speed (m/s, indoor)")
		speedKmh = flag.Float64("speed-kmh", 18, "car speed (km/h, outdoor)")
		lux      = flag.Float64("lux", 450, "outdoor ambient noise floor (lux)")
		receiver = flag.String("receiver", "rx-led", "outdoor receiver: rx-led | pd-g1 | pd-g2 | pd-g3 | pd-g2+cap")
		car      = flag.String("car", "volvo", "car model: volvo | bmw3")
		seed     = flag.Int64("seed", 1, "noise seed")
		out      = flag.String("o", "", "output CSV path (default stdout)")
	)
	flag.Parse()

	if *list {
		printRegistry()
		return
	}
	if *dumpSpec != "" {
		if err := dump(*dumpSpec); err != nil {
			fail(err)
		}
		return
	}
	seedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})
	spec, err := resolveSpec(*specPath, *name, legacyFlags{
		payload: *payload, height: *height, width: *width, speed: *speed,
		speedKmh: *speedKmh, lux: *lux, receiver: *receiver, car: *car, seed: *seed,
	})
	if err != nil {
		fail(err)
	}
	if seedSet {
		spec.Seed = *seed
	}
	_, tr, err := spec.Simulate()
	if err != nil {
		fail(err)
	}
	if err := write(tr, *out); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "plsim:", err)
	os.Exit(1)
}

func printRegistry() {
	fmt.Println("scenario registry (plsim -scenario <name>):")
	for _, e := range scenario.Entries() {
		fmt.Printf("  %-14s %s\n", e.Name, e.Description)
	}
	fmt.Println("\nlegacy aliases (accept the tuning flags; see -h):")
	fmt.Println("  indoor         indoor bench built from -payload/-height/-width/-speed")
	fmt.Println("  outdoor        outdoor car pass from -payload/-height/-lux/-receiver/-car/-speed-kmh")
	fmt.Println("  car            bare car (shape signature only), same flags as outdoor")
}

func dump(name string) error {
	spec, err := scenario.Get(name)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

// legacyFlags carries the tuning flags of the legacy scenario names.
type legacyFlags struct {
	payload, receiver, car         string
	height, width, speed, speedKmh float64
	lux                            float64
	seed                           int64
}

// resolveSpec builds the scenario: from a spec file, a legacy alias
// plus its flags, or the registry.
func resolveSpec(specPath, name string, lf legacyFlags) (scenario.Spec, error) {
	if specPath != "" {
		data, err := os.ReadFile(specPath)
		if err != nil {
			return scenario.Spec{}, err
		}
		var spec scenario.Spec
		if err := json.Unmarshal(data, &spec); err != nil {
			return scenario.Spec{}, fmt.Errorf("parsing %s: %w", specPath, err)
		}
		return spec, nil
	}
	switch name {
	case "indoor":
		return scenario.BenchParams{
			Height:      lf.height,
			SymbolWidth: lf.width,
			Speed:       lf.speed,
			Payload:     lf.payload,
			Seed:        lf.seed,
		}.Spec()
	case "outdoor", "car":
		dev, err := frontend.ByName(lf.receiver)
		if err != nil {
			return scenario.Spec{}, err
		}
		model, err := scenario.CarByName(lf.car)
		if err != nil {
			return scenario.Spec{}, err
		}
		p := scenario.OutdoorParams{
			Payload:        lf.payload,
			SymbolWidth:    lf.width,
			SpeedKmh:       lf.speedKmh,
			ReceiverHeight: lf.height,
			NoiseFloorLux:  lf.lux,
			Receiver:       dev,
			Car:            model,
			Seed:           lf.seed,
		}
		if name == "car" {
			p.Payload = "" // bare car: shape signature only
		}
		return p.Spec()
	default:
		return scenario.Get(name)
	}
}

func write(tr *trace.Trace, out string) error {
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := tr.WriteCSV(w); err != nil {
		return err
	}
	if out != "" {
		st := tr.Stats()
		fmt.Fprintf(os.Stderr, "wrote %d samples (fs=%g Hz, rss %.0f..%.0f) to %s\n",
			tr.Len(), tr.Fs, st.Min, st.Max, out)
	}
	return nil
}
