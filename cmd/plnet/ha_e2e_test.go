package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"syscall"
	"testing"
	"time"
)

// The multi-process HA smoke: TWO peered plnet routers front three
// engines, the load replayer streams 128 paced sessions at the first
// router with the second as its failover rotation, and the router
// carrying the traffic is SIGKILLed mid-replay. The nodes must fail
// over to the survivor and the fleet must still decode 128/128 with
// zero loss. Gated behind PLNET_HA_E2E because it builds the binary
// and takes minutes; CI runs it as the HA smoke tier.
// (routerGauge/routerCounter helpers live in the sibling e2e files.)

func TestClusterHADualRouterMultiProcess(t *testing.T) {
	if os.Getenv("PLNET_HA_E2E") == "" {
		t.Skip("set PLNET_HA_E2E=1 to run the multi-process dual-router smoke")
	}
	bin := filepath.Join(t.TempDir(), "plnet")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	const sessions = 128
	engineIDs := []string{"engine-a", "engine-b", "engine-c"}
	engAddr := map[string]string{}
	obsAddr := map[string]string{"router-a": freePort(t), "router-b": freePort(t)}
	for _, id := range engineIDs {
		engAddr[id] = freePort(t)
		obsAddr[id] = freePort(t)
	}
	// Both router ports are reserved up front so each router can name
	// the other in -peers before either has started.
	routerAddrA, routerAddrB := freePort(t), freePort(t)

	// Engines join BOTH routers; either replica keeps the fleet routed.
	var engines []*proc
	for _, id := range engineIDs {
		engines = append(engines, startProc(t, bin, id,
			"-mode", "engine", "-engine-id", id,
			"-listen", engAddr[id], "-metrics-addr", obsAddr[id],
			"-idle", "3s", "-drain-wait", "30s",
			"-join", routerAddrA+","+routerAddrB,
		))
	}
	for _, id := range engineIDs {
		waitHealthy(t, id, obsAddr[id])
	}

	routerA := startProc(t, bin, "router-a",
		"-mode", "route", "-listen", routerAddrA, "-peers", routerAddrB,
		"-metrics-addr", obsAddr["router-a"],
	)
	routerB := startProc(t, bin, "router-b",
		"-mode", "route", "-listen", routerAddrB, "-peers", routerAddrA,
		"-metrics-addr", obsAddr["router-b"],
	)
	waitHealthy(t, "router-a", obsAddr["router-a"])
	waitHealthy(t, "router-b", obsAddr["router-b"])

	// Both routers must converge on the 3-engine fleet — directly or via
	// a peer push (a peer-merged engine never counts as a join, so watch
	// the ring gauge) — at the same epoch, and see each other up.
	deadline := time.Now().Add(30 * time.Second)
	for {
		engsA := routerGauge(obsAddr["router-a"], "pl_cluster_engines")
		engsB := routerGauge(obsAddr["router-b"], "pl_cluster_engines")
		epochA := routerGauge(obsAddr["router-a"], "pl_cluster_epoch")
		epochB := routerGauge(obsAddr["router-b"], "pl_cluster_epoch")
		peersA := routerGauge(obsAddr["router-a"], "pl_cluster_router_peers")
		peersB := routerGauge(obsAddr["router-b"], "pl_cluster_router_peers")
		if engsA == 3 && engsB == 3 && epochA == epochB && peersA == 1 && peersB == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("HA pair never converged (engines a=%v b=%v, epoch a=%v b=%v, peers a=%v b=%v)\nrouter-a:\n%s\nrouter-b:\n%s",
				engsA, engsB, epochA, epochB, peersA, peersB, routerA.out.String(), routerB.out.String())
		}
		time.Sleep(25 * time.Millisecond)
	}
	// The join stampede batched: each router bumped its epoch at most
	// once for the three admissions (a peer adoption costs zero).
	for _, name := range []string{"router-a", "router-b"} {
		if got := routerCounter(obsAddr[name], "pl_cluster_ring_batches_total"); got > 1 {
			t.Errorf("%s pl_cluster_ring_batches_total = %d, want <= 1 (batched stampede)", name, got)
		}
	}

	// Paced replay at router A with router B as the standby rotation.
	load := startProc(t, bin, "load",
		"-mode", "load", "-load", "fleet-load", "-sessions", strconv.Itoa(sessions),
		"-routers", routerAddrA+","+routerAddrB, "-chunk", "512", "-fanout", "16", "-pace",
	)

	// SIGKILL the router carrying the traffic once it is mid-replay.
	deadline = time.Now().Add(60 * time.Second)
	for routerCounter(obsAddr["router-a"], "pl_cluster_chunks_forwarded_total") < 64 {
		if time.Now().After(deadline) {
			t.Fatalf("router-a never carried traffic; output:\n%s", routerA.out.String())
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Logf("killing router-a after %d forwarded chunks",
		routerCounter(obsAddr["router-a"], "pl_cluster_chunks_forwarded_total"))
	if err := routerA.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}

	// The load must complete against the survivor alone.
	if err := load.wait(t, 240*time.Second); err != nil {
		t.Fatalf("load replay across router kill: %v\noutput:\n%s", err, load.out.String())
	}
	if got := routerCounter(obsAddr["router-b"], "pl_cluster_chunks_forwarded_total"); got == 0 {
		t.Errorf("surviving router forwarded nothing after the kill\nrouter-b:\n%s", routerB.out.String())
	}

	// The survivor's /metrics text endpoint carries the router-peer
	// series, as the runbook's grep expects.
	_, metricsText, err := httpGet(obsAddr["router-b"], "/metrics")
	if err != nil {
		t.Fatalf("survivor /metrics: %v", err)
	}
	for _, series := range []string{
		"pl_cluster_router_peers",
		"pl_cluster_ring_batches_total",
		"pl_cluster_peer_updates_total",
	} {
		if !regexp.MustCompile(series).MatchString(metricsText) {
			t.Errorf("survivor /metrics missing %s", series)
		}
	}

	// Wait for every packet to flush, then drain the engines for their
	// summaries: 128/128 decoded exactly once, fleet-wide.
	decodedRe := regexp.MustCompile(`session \d+ decoded`)
	deadline = time.Now().Add(120 * time.Second)
	for {
		total := 0
		for _, e := range engines {
			total += len(decodedRe.FindAllString(e.out.String(), -1))
		}
		if total >= sessions || time.Now().After(deadline) {
			break // shortfall surfaces in the summary assertion below
		}
		time.Sleep(50 * time.Millisecond)
	}
	var totalDecoded, totalUndecodable int64
	var counts []string
	for _, e := range engines {
		if err := e.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range engines {
		if err := e.wait(t, 60*time.Second); err != nil {
			t.Fatalf("%s drain exit: %v\noutput:\n%s", e.name, err, e.out.String())
		}
		decoded, undecodable := drainSummary(t, e)
		totalDecoded += decoded
		totalUndecodable += undecodable
		counts = append(counts, fmt.Sprintf("%s=%d", e.name, decoded))
	}
	if totalDecoded != sessions {
		t.Errorf("fleet decoded %d packets for %d sessions (%v) — loss or duplicate decode\nrouter-b:\n%s",
			totalDecoded, sessions, counts, routerB.out.String())
	}
	if totalUndecodable != 0 {
		t.Errorf("engines reported %d undecodable sessions", totalUndecodable)
	}
	t.Logf("HA smoke: %v decoded across the router kill", counts)

	routerB.cmd.Process.Signal(os.Interrupt)
	if err := routerB.wait(t, 30*time.Second); err != nil {
		t.Fatalf("router-b exit: %v\noutput:\n%s", err, routerB.out.String())
	}
}
