package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"syscall"
	"testing"
	"time"
)

// The multi-process cluster smoke: a real plnet binary per role —
// router, two engines, a load replayer — wired over loopback TCP,
// with one engine SIGTERM-drained mid-replay. Gated behind
// PLNET_CLUSTER_E2E because it builds the binary and takes tens of
// seconds; CI runs it as the cluster smoke tier.

// lineBuffer collects a child process's combined output; exec writes
// from its own goroutine, so reads must synchronize.
type lineBuffer struct {
	mu  sync.Mutex
	buf []byte
}

func (b *lineBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf = append(b.buf, p...)
	return len(p), nil
}

func (b *lineBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return string(b.buf)
}

// proc is one plnet child process.
type proc struct {
	name string
	cmd  *exec.Cmd
	out  *lineBuffer
	done chan error
}

func startProc(t *testing.T, bin, name string, args ...string) *proc {
	t.Helper()
	p := &proc{name: name, out: &lineBuffer{}, done: make(chan error, 1)}
	p.cmd = exec.Command(bin, args...)
	p.cmd.Stdout = p.out
	p.cmd.Stderr = p.out
	if err := p.cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", name, err)
	}
	go func() { p.done <- p.cmd.Wait() }()
	t.Cleanup(func() {
		select {
		case <-p.done:
		default:
			p.cmd.Process.Kill()
			<-p.done
		}
	})
	return p
}

// wait blocks until the process exits and returns its error (nil on
// exit status 0), failing the test on timeout.
func (p *proc) wait(t *testing.T, timeout time.Duration) error {
	t.Helper()
	select {
	case err := <-p.done:
		p.done <- err // keep the cleanup non-blocking
		return err
	case <-time.After(timeout):
		t.Fatalf("%s did not exit within %v; output:\n%s", p.name, timeout, p.out.String())
		return nil
	}
}

// freePort reserves an ephemeral TCP port and releases it for a child
// process to bind.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().String()
}

func httpGet(addr, path string) (int, string, error) {
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body), err
}

// waitHealthy polls /healthz until the endpoint answers at all (any
// status: a draining engine reports 503 but is very much alive).
func waitHealthy(t *testing.T, name, addr string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if _, _, err := httpGet(addr, "/healthz"); err == nil {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("%s /healthz on %s never came up", name, addr)
}

// routerCounter reads one counter from the router's /metrics.json.
func routerCounter(addr, name string) int64 {
	_, body, err := httpGet(addr, "/metrics.json")
	if err != nil {
		return -1
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if json.Unmarshal([]byte(body), &snap) != nil {
		return -1
	}
	return snap.Counters[name]
}

var drainSummaryRe = regexp.MustCompile(`engine (\S+) drained: (\d+) decoded, (\d+) undecodable`)

// drainSummary parses an engine's exit summary into (decoded,
// undecodable).
func drainSummary(t *testing.T, p *proc) (int64, int64) {
	t.Helper()
	m := drainSummaryRe.FindStringSubmatch(p.out.String())
	if m == nil {
		t.Fatalf("%s printed no drain summary; output:\n%s", p.name, p.out.String())
	}
	decoded, _ := strconv.ParseInt(m[2], 10, 64)
	undecodable, _ := strconv.ParseInt(m[3], 10, 64)
	return decoded, undecodable
}

func TestClusterSmokeMultiProcess(t *testing.T) {
	if os.Getenv("PLNET_CLUSTER_E2E") == "" {
		t.Skip("set PLNET_CLUSTER_E2E=1 to run the multi-process cluster smoke")
	}
	bin := filepath.Join(t.TempDir(), "plnet")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	const sessions = 128
	engAddr := map[string]string{"engine-a": freePort(t), "engine-b": freePort(t)}
	obsAddr := map[string]string{"engine-a": freePort(t), "engine-b": freePort(t), "router": freePort(t)}
	routerAddr := freePort(t)

	// The paced replay gaps chunks by chunk/fs seconds of wall clock
	// (512 samples at the indoor bench's 1 kHz = ~0.5 s), so the 3 s
	// idle timeout must stay comfortably above the gap or the engines
	// would evict live sessions mid-stream.
	engineArgs := func(id string) []string {
		return []string{
			"-mode", "engine", "-engine-id", id,
			"-listen", engAddr[id], "-metrics-addr", obsAddr[id],
			"-idle", "3s", "-drain-wait", "30s",
		}
	}
	engA := startProc(t, bin, "engine-a", engineArgs("engine-a")...)
	engB := startProc(t, bin, "engine-b", engineArgs("engine-b")...)
	waitHealthy(t, "engine-a", obsAddr["engine-a"])
	waitHealthy(t, "engine-b", obsAddr["engine-b"])

	router := startProc(t, bin, "router",
		"-mode", "route", "-listen", routerAddr,
		"-engines", fmt.Sprintf("engine-a=%s,engine-b=%s", engAddr["engine-a"], engAddr["engine-b"]),
		"-metrics-addr", obsAddr["router"],
	)
	waitHealthy(t, "router", obsAddr["router"])

	// Paced replay stretches the fleet over several seconds of wall
	// clock — room to drain an engine while streams are in flight.
	load := startProc(t, bin, "load",
		"-mode", "load", "-load", "fleet-load", "-sessions", strconv.Itoa(sessions),
		"-router", routerAddr, "-chunk", "512", "-fanout", "16", "-pace",
	)

	// SIGTERM engine A once the router has live routes on it.
	deadline := time.Now().Add(30 * time.Second)
	for routerCounter(obsAddr["router"], "pl_cluster_streams_routed_total") < 20 {
		if time.Now().After(deadline) {
			t.Fatalf("router never saw 20 streams; router output:\n%s", router.out.String())
		}
		time.Sleep(25 * time.Millisecond)
	}
	if err := engA.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// The drain must be visible from outside: /healthz flips to 503
	// with the draining detail while in-flight sessions finish.
	sawDraining := false
	deadline = time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) && !sawDraining {
		code, body, err := httpGet(obsAddr["engine-a"], "/healthz")
		if err != nil {
			break // the engine finished draining and exited
		}
		if code == http.StatusServiceUnavailable && regexp.MustCompile(`draining`).MatchString(body) {
			sawDraining = true
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sawDraining {
		t.Errorf("engine-a /healthz never reported draining; output:\n%s", engA.out.String())
	}
	if err := engA.wait(t, 60*time.Second); err != nil {
		t.Fatalf("engine-a drain exit: %v\noutput:\n%s", err, engA.out.String())
	}

	if err := load.wait(t, 180*time.Second); err != nil {
		t.Fatalf("load replay: %v\noutput:\n%s", err, load.out.String())
	}

	// Let B flush its tail (idle eviction releases the last sessions),
	// then drain it for its summary. Zero loss across the restart:
	// every session's packet decoded on exactly one engine.
	aDecoded, aUndecodable := drainSummary(t, engA)
	wantB := int64(sessions) - aDecoded
	deadline = time.Now().Add(60 * time.Second)
	for {
		if m := regexp.MustCompile(`decoded`).FindAllString(engB.out.String(), -1); int64(len(m)) >= wantB {
			break
		}
		if time.Now().After(deadline) {
			break // the summary assertion below reports the shortfall
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := engB.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := engB.wait(t, 60*time.Second); err != nil {
		t.Fatalf("engine-b drain exit: %v\noutput:\n%s", err, engB.out.String())
	}
	bDecoded, bUndecodable := drainSummary(t, engB)
	if total := aDecoded + bDecoded; total != sessions {
		t.Errorf("cluster decoded %d packets for %d sessions (a=%d b=%d)\nrouter:\n%s",
			total, sessions, aDecoded, bDecoded, router.out.String())
	}
	if aUndecodable+bUndecodable != 0 {
		t.Errorf("engines reported %d undecodable sessions", aUndecodable+bUndecodable)
	}
	if handoffs := routerCounter(obsAddr["router"], "pl_cluster_handoffs_total"); handoffs < 0 {
		t.Error("router metrics endpoint went away before the final scrape")
	} else {
		t.Logf("cluster smoke: a=%d b=%d decoded, %d handoffs", aDecoded, bDecoded, handoffs)
	}

	// The router runs until interrupted (plnet cancels its context on
	// SIGINT only; engines add their own SIGTERM drain handler).
	router.cmd.Process.Signal(os.Interrupt)
	if err := router.wait(t, 30*time.Second); err != nil {
		t.Fatalf("router exit: %v\noutput:\n%s", err, router.out.String())
	}
}
