package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"syscall"
	"testing"
	"time"
)

// The multi-process churn smoke: a router started on an EMPTY ring
// (-auto-admit, no -engines), engines that announce themselves with
// -join, one engine SIGKILLed mid-replay (evicted after -dead-timeout,
// then rejoining under the same identity), and a paced fleet replay
// whose every session must decode somewhere. Gated behind
// PLNET_CHURN_E2E; CI runs it as the ~60 s churn soak tier.

// routerGauge reads one gauge from the router's /metrics.json.
func routerGauge(addr, name string) float64 {
	_, body, err := httpGet(addr, "/metrics.json")
	if err != nil {
		return -1
	}
	var snap struct {
		Gauges map[string]float64 `json:"gauges"`
	}
	if json.Unmarshal([]byte(body), &snap) != nil {
		return -1
	}
	return snap.Gauges[name]
}

var decodedSessionRe = regexp.MustCompile(`session (\d+) decoded`)

// decodedSessions extracts the set of session IDs an engine process
// logged as decoded — the cross-process ledger. Counting distinct IDs
// makes the zero-silent-loss assertion immune to the at-least-once
// duplicates a crash failover's replay can produce.
func decodedSessions(into map[string]int, procs ...*proc) int {
	total := 0
	for _, p := range procs {
		for _, m := range decodedSessionRe.FindAllStringSubmatch(p.out.String(), -1) {
			into[m[1]]++
			total++
		}
	}
	return total
}

func TestClusterChurnMultiProcess(t *testing.T) {
	if os.Getenv("PLNET_CHURN_E2E") == "" {
		t.Skip("set PLNET_CHURN_E2E=1 to run the multi-process churn smoke")
	}
	bin := filepath.Join(t.TempDir(), "plnet")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	const sessions = 128
	engAddr := map[string]string{"engine-a": freePort(t), "engine-b": freePort(t)}
	obsAddr := map[string]string{"engine-a": freePort(t), "engine-b": freePort(t), "router": freePort(t)}
	routerAddr := freePort(t)

	// The router starts knowing nobody: membership arrives purely over
	// the wire from -join engines.
	router := startProc(t, bin, "router",
		"-mode", "route", "-listen", routerAddr,
		"-auto-admit", "-dead-timeout", "2s",
		"-metrics-addr", obsAddr["router"],
	)
	waitHealthy(t, "router", obsAddr["router"])
	if got := routerGauge(obsAddr["router"], "pl_cluster_engines"); got != 0 {
		t.Fatalf("fresh auto-admit router reports %v engines, want 0", got)
	}

	engineArgs := func(id, listen, obs string) []string {
		return []string{
			"-mode", "engine", "-engine-id", id,
			"-listen", listen, "-metrics-addr", obs,
			"-join", routerAddr,
			"-idle", "3s", "-drain-wait", "30s",
		}
	}
	engA := startProc(t, bin, "engine-a", engineArgs("engine-a", engAddr["engine-a"], obsAddr["engine-a"])...)
	engB := startProc(t, bin, "engine-b", engineArgs("engine-b", engAddr["engine-b"], obsAddr["engine-b"])...)
	waitEngines := func(what string, want float64) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for routerGauge(obsAddr["router"], "pl_cluster_engines") != want {
			if time.Now().After(deadline) {
				t.Fatalf("%s: pl_cluster_engines never reached %v; router output:\n%s",
					what, want, router.out.String())
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
	waitEngines("initial auto-join", 2)
	epochAfterJoin := routerGauge(obsAddr["router"], "pl_cluster_epoch")

	load := startProc(t, bin, "load",
		"-mode", "load", "-load", "fleet-load", "-sessions", strconv.Itoa(sessions),
		"-router", routerAddr, "-chunk", "512", "-fanout", "16", "-pace",
	)

	// Hard-kill engine A once it has live routes: no drain, no goodbye.
	// The router's outage clock starts when the connection drops, the
	// janitor evicts it after -dead-timeout, and in-flight streams fail
	// over with replay.
	deadline := time.Now().Add(30 * time.Second)
	for routerCounter(obsAddr["router"], "pl_cluster_streams_routed_total") < 20 {
		if time.Now().After(deadline) {
			t.Fatalf("router never saw 20 streams; router output:\n%s", router.out.String())
		}
		time.Sleep(25 * time.Millisecond)
	}
	if err := engA.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	killErr := <-engA.done
	engA.done <- killErr // keep the harness cleanup non-blocking
	waitEngines("dead-engine eviction", 1)
	if got := routerCounter(obsAddr["router"], "pl_cluster_engines_evicted_total"); got < 1 {
		t.Fatalf("pl_cluster_engines_evicted_total = %d, want >= 1", got)
	}

	// The same identity comes back on a fresh port and re-admits itself
	// mid-replay — no operator Rebalance anywhere in this test.
	engAddr["engine-a2"] = freePort(t)
	obsAddr["engine-a2"] = freePort(t)
	engA2 := startProc(t, bin, "engine-a2", engineArgs("engine-a", engAddr["engine-a2"], obsAddr["engine-a2"])...)
	waitEngines("rejoin after crash", 2)
	if epoch := routerGauge(obsAddr["router"], "pl_cluster_epoch"); epoch <= epochAfterJoin {
		t.Errorf("pl_cluster_epoch = %v after crash+rejoin, want > %v", epoch, epochAfterJoin)
	}

	if err := load.wait(t, 180*time.Second); err != nil {
		t.Fatalf("load replay: %v\noutput:\n%s", err, load.out.String())
	}

	// Give the survivors time to decode the tail, then drain them for
	// their summaries. The ledger counts DISTINCT decoded sessions
	// across all three engine processes (including the killed one's
	// captured output): every one of the 128 sessions must appear at
	// least once — crash duplicates are allowed, silence is not.
	ledger := map[string]int{}
	deadline = time.Now().Add(90 * time.Second)
	for len(ledger) < sessions && time.Now().Before(deadline) {
		ledger = map[string]int{}
		decodedSessions(ledger, engA, engB, engA2)
		time.Sleep(250 * time.Millisecond)
	}
	for _, p := range []*proc{engB, engA2} {
		if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		if err := p.wait(t, 60*time.Second); err != nil {
			t.Fatalf("%s drain exit: %v\noutput:\n%s", p.name, err, p.out.String())
		}
	}
	ledger = map[string]int{}
	total := decodedSessions(ledger, engA, engB, engA2)
	if len(ledger) != sessions {
		t.Errorf("decoded %d distinct sessions of %d (%d events total)\nrouter:\n%s",
			len(ledger), sessions, total, router.out.String())
	}
	if joins := routerCounter(obsAddr["router"], "pl_cluster_engine_joins_total"); joins < 3 {
		t.Errorf("pl_cluster_engine_joins_total = %d, want >= 3 (two joins + one rejoin)", joins)
	}
	t.Logf("churn smoke: %d distinct sessions decoded (%d events, %d duplicate), joins=%d evicted=%d handoffs=%d failovers=%d",
		len(ledger), total, total-len(ledger),
		routerCounter(obsAddr["router"], "pl_cluster_engine_joins_total"),
		routerCounter(obsAddr["router"], "pl_cluster_engines_evicted_total"),
		routerCounter(obsAddr["router"], "pl_cluster_handoffs_total"),
		routerCounter(obsAddr["router"], "pl_cluster_failovers_total"))

	router.cmd.Process.Signal(os.Interrupt)
	if err := router.wait(t, 30*time.Second); err != nil {
		t.Fatalf("router exit: %v\noutput:\n%s", err, router.out.String())
	}
}
