// Cluster modes: the distributed receiver-network tier. An engine is
// one decode process (NetSource + Pipeline) that can drain and hand
// its streams off; a router consistent-hashes sessions over a fleet
// of engines; the remote load replayer drives either over real
// sockets with optional wall-clock pacing.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"passivelight"
	"passivelight/internal/cluster"
	"passivelight/internal/rxnet"
	"passivelight/internal/scenario"
)

// paceTo sleeps until sample pos of a stream replaying at fs Hz is
// due on the wall clock anchored at start.
func paceTo(ctx context.Context, start time.Time, pos int, fs float64) error {
	due := start.Add(time.Duration(float64(pos) / fs * float64(time.Second)))
	wait := time.Until(due)
	if wait <= 0 {
		return nil
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// splitAddrs parses a comma-separated address list, dropping empties.
func splitAddrs(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseEngines parses "id=host:port,id=host:port" into ring members.
func parseEngines(s string) ([]cluster.Member, error) {
	if strings.TrimSpace(s) == "" {
		return nil, errors.New("no engines given (want -engines id=host:port,...)")
	}
	var members []cluster.Member
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("bad engine %q (want id=host:port)", part)
		}
		members = append(members, cluster.Member{ID: id, Addr: addr})
	}
	return members, nil
}

// buildRing assembles the routing ring from a JSON file (-ring) or
// the -engines flag.
func buildRing(enginesFlag, ringPath string, vnodes int) (*cluster.Ring, error) {
	if ringPath != "" {
		blob, err := os.ReadFile(ringPath)
		if err != nil {
			return nil, err
		}
		ring := new(cluster.Ring)
		if err := json.Unmarshal(blob, ring); err != nil {
			return nil, fmt.Errorf("ring file %s: %w", ringPath, err)
		}
		return ring, nil
	}
	members, err := parseEngines(enginesFlag)
	if err != nil {
		return nil, err
	}
	return cluster.NewRing(vnodes, members...)
}

// runDumpRing prints the ring as JSON — the file -ring consumes, and
// the canonical way to diff layouts before a rebalance.
func runDumpRing(enginesFlag string, vnodes int) error {
	ring, err := buildRing(enginesFlag, "", vnodes)
	if err != nil {
		return err
	}
	blob, err := json.MarshalIndent(ring, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(blob))
	return nil
}

// runRoute fronts the engine fleet: receiver nodes connect here and
// every (node, stream) session is forwarded to its ring owner, with
// drain handoffs and crash failover handled by the cluster router.
// With autoAdmit (and no -engines/-ring) it starts on an empty ring
// and builds its fleet from EngineHello announcements alone. peers
// names replica routers to share ring state with — the HA pair.
func runRoute(ctx context.Context, mon *obs, listen, enginesFlag, ringPath string, vnodes int, autoAdmit bool, deadTimeout time.Duration, peers []string, ringBatch time.Duration) error {
	var ring *cluster.Ring
	if enginesFlag != "" || ringPath != "" || !autoAdmit {
		var err error
		ring, err = buildRing(enginesFlag, ringPath, vnodes)
		if err != nil {
			return err
		}
	}
	r, err := cluster.NewRouter(cluster.RouterConfig{
		Ring:              ring,
		Logf:              rxnet.StdLogf,
		Metrics:           mon.registry(),
		AutoAdmit:         autoAdmit,
		DeadEngineTimeout: deadTimeout,
		Peers:             peers,
		RingBatchWindow:   ringBatch,
	})
	if err != nil {
		return err
	}
	defer r.Close()
	addr, err := r.Listen(listen)
	if err != nil {
		return err
	}
	st := r.Stats()
	fmt.Printf("cluster router on %s fronting %d engines (ring epoch %d, auto-admit %v, %d peers)\n",
		addr, st.Engines, st.Epoch, autoAdmit, len(peers))
	if err := mon.serveBare(func(h *passivelight.TelemetryHealth) {
		h.AddCheck("engines", func() (bool, string) {
			st := r.Stats()
			if st.Down > 0 {
				return false, fmt.Sprintf("%d of %d engines down (%d draining, %d routes)",
					st.Down, st.Engines, st.Draining, st.Routes)
			}
			return true, ""
		})
	}); err != nil {
		return err
	}
	defer mon.close()
	<-ctx.Done()
	st = r.Stats()
	fmt.Printf("router shutting down: %d routes, %d handoffs, %d undeliverable chunks\n",
		st.Routes, st.Handoffs, st.Undeliverable)
	return nil
}

// runEngine is one cluster decode engine: a NetSource fed by the
// router, a pipeline decoding every routed stream, and a graceful
// drain path — SIGTERM (or a wire FrameDrainRequest) stops new
// streams, lets in-flight ones finish, force-redirects stragglers
// after drainWait, then exits clean with a summary.
func runEngine(ctx context.Context, mon *obs, listen, engineID, strategyName string, symbols, workers, shards int, idle, drainWait time.Duration, joinAddr, advertiseAddr string, throttleHigh float64) error {
	strat, err := passivelight.StrategyForScenario(passivelight.ScenarioDecode{Strategy: strategyName})
	if err != nil {
		return err
	}
	rootCtx := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	src, err := passivelight.ListenSourceConfig(listen, passivelight.NetSourceConfig{
		Telemetry: mon.registry(),
		Logf:      rxnet.StdLogf,
		// Paced chunks spanning at least the idle timeout would let
		// the janitor flush sessions between chunks; warn and gauge it.
		PaceGuardIdle: idle,
	})
	if err != nil {
		return err
	}
	var decoded, undecodable, released atomic.Int64
	pipe, err := passivelight.NewPipeline(src, strat,
		passivelight.WithExpectedSymbols(symbols),
		passivelight.WithWorkers(workers),
		passivelight.WithShards(shards),
		passivelight.WithIdleTimeout(idle),
		passivelight.WithTelemetry(mon.registry()),
		passivelight.WithSessionEnd(func(session uint64, stats passivelight.SessionStats, reason string) {
			released.Add(1)
			fmt.Printf("engine %s: session %d released (%s): %d samples, %d detections\n",
				engineID, session, reason, stats.Samples, stats.Detections)
		}),
		passivelight.WithSink(func(ev passivelight.Event) {
			if ev.Err != nil {
				undecodable.Add(1)
				return
			}
			decoded.Add(1)
			// Confirm consumption upstream so the router trims the
			// session's replay buffer: if this engine dies later, only
			// unacked streams replay to a failover owner.
			src.AckSession(ev.Session)
			fmt.Printf("engine %s: session %d decoded %s\n", engineID, ev.Session, ev.BitString())
		}),
	)
	if err != nil {
		return err
	}
	events, err := pipe.Stream(ctx)
	if err != nil {
		return err
	}
	drained := make(chan struct{})
	go func() {
		for range events { // the sink already counted
		}
		close(drained)
	}()
	if err := mon.serve(pipe, src, func(h *passivelight.TelemetryHealth) {
		h.AddCheck("draining", func() (bool, string) {
			if src.Draining() {
				return false, fmt.Sprintf("draining: %d sessions in flight", pipe.Stats().Sessions)
			}
			return true, ""
		})
	}); err != nil {
		return err
	}
	defer mon.close()
	if throttleHigh > 0 {
		// Close the backpressure loop: occupancy past the watermark
		// throttles the router, which pauses the nodes feeding us.
		stopThrottle := src.AutoThrottle(pipe.Occupancy, throttleHigh, 0, 0)
		defer stopThrottle()
	}
	if routers := splitAddrs(joinAddr); len(routers) > 0 {
		adv := advertiseAddr
		if adv == "" {
			adv = src.Addr()
		}
		// -join accepts a comma list: an HA pair of routers each gets
		// its own hello/keepalive loop, so the engine stays admitted on
		// whichever replicas survive.
		for _, raddr := range routers {
			stopJoin, err := cluster.Join(ctx, raddr, engineID, adv, cluster.JoinConfig{Logf: rxnet.StdLogf})
			if err != nil {
				return err
			}
			defer stopJoin()
		}
		fmt.Printf("engine %s joining router(s) %s (advertising %s)\n", engineID, strings.Join(routers, ","), adv)
	}
	fmt.Printf("cluster engine %s (%s, %d symbols) decoding on %s\n", engineID, strategyName, symbols, src.Addr())

	term := make(chan os.Signal, 1)
	signal.Notify(term, syscall.SIGTERM)
	defer signal.Stop(term)
	select {
	case <-ctx.Done():
		// Hard stop (SIGINT): no handoff, just a clean teardown.
		<-drained
		return pipelineErr(pipe.Err())
	case <-term:
		fmt.Printf("engine %s: SIGTERM, draining\n", engineID)
	case <-src.DrainRequests():
		fmt.Printf("engine %s: drain requested over the wire\n", engineID)
	}

	// Graceful drain: refuse new streams (the router re-routes them),
	// let in-flight sessions finish and flush naturally...
	src.Drain()
	deadline := time.Now().Add(drainWait)
	for time.Now().Before(deadline) && pipe.Stats().Sessions > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		time.Sleep(25 * time.Millisecond)
	}
	// ...then evict the stragglers: each gets an End (flush + release)
	// here and a NACK replay on its new owner, so nothing is lost.
	for _, session := range src.Sessions() {
		if src.ForceRedirect(session) {
			fmt.Printf("engine %s: redirected straggler stream %d\n", engineID, session)
		}
	}
	settle := time.Now().Add(5 * time.Second)
	for time.Now().Before(settle) && pipe.Stats().Sessions > 0 {
		time.Sleep(25 * time.Millisecond)
	}
	pipe.Flush()
	cancel()
	<-drained
	fmt.Printf("engine %s drained: %d decoded, %d undecodable, %d sessions released\n",
		engineID, decoded.Load(), undecodable.Load(), released.Load())
	mon.wait(rootCtx)
	return pipelineErr(pipe.Err())
}

// runDrainRequest asks a running engine to drain over the wire — the
// remote equivalent of sending it SIGTERM.
func runDrainRequest(target string) error {
	conn, err := net.DialTimeout("tcp", target, 5*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.SetWriteDeadline(time.Now().Add(5 * time.Second)); err != nil {
		return err
	}
	if err := rxnet.WriteFrame(conn, rxnet.FrameDrainRequest, nil); err != nil {
		return err
	}
	fmt.Println("drain requested from", target)
	return nil
}

// runLoadRemote replays an expanded load against an external router
// (or single engine) over real sockets: sessions stream concurrently
// (bounded by fanout), each as its own receiver node, optionally
// paced to the stream clocks — the workload a rolling-restart
// rehearsal is run against. targets[0] is dialed; any further
// addresses are standby routers the nodes fail over to transparently
// (reliable dial + buffered-tail resend) when the primary dies.
func runLoadRemote(ctx context.Context, loadName string, sessions, chunkSize int, pace bool, targets []string, fanout int, engineIdle time.Duration) error {
	if len(targets) == 0 {
		return errors.New("load replay needs at least one target address")
	}
	load, err := scenario.GetLoad(loadName)
	if err != nil {
		return err
	}
	if sessions > 0 {
		load.Sessions = sessions
	}
	pace = pace || load.Pace
	specs, err := load.Expand()
	if err != nil {
		return err
	}
	if fanout < 1 {
		fanout = 1
	}
	fmt.Printf("load replay %s: %d sessions -> %s (fanout %d, paced %v)\n",
		load.Name, len(specs), strings.Join(targets, ","), fanout, pace)

	// A paced chunk that spans at least the engine's idle timeout
	// means the engine flushes every session between chunks — the
	// replay "works" but decodes nothing whole. Warn once, up front.
	var paceWarn sync.Once
	warnGap := func(fs float64) {
		if !pace || engineIdle <= 0 || fs <= 0 {
			return
		}
		gap := time.Duration(float64(chunkSize) / fs * float64(time.Second))
		if gap >= engineIdle {
			paceWarn.Do(func() {
				fmt.Printf("warning: paced chunks span %s of signal at %.0f S/s — at least the engine idle timeout (%s); sessions will be flushed between chunks. Lower -chunk or raise the engine's -idle.\n",
					gap.Round(time.Millisecond), fs, engineIdle)
			})
		}
	}

	var (
		wg    sync.WaitGroup
		sent  atomic.Int64
		links atomic.Int64
		mu    sync.Mutex
		first error
	)
	fail := func(err error) {
		mu.Lock()
		if first == nil && !errors.Is(err, context.Canceled) {
			first = err
		}
		mu.Unlock()
	}
	sem := make(chan struct{}, fanout)
	start := time.Now()
	for k, spec := range specs {
		wg.Add(1)
		go func(k int, spec scenario.Spec) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				return
			}
			defer func() { <-sem }()
			n, l, err := replaySession(ctx, targets, k, spec, chunkSize, pace, warnGap)
			sent.Add(n)
			links.Add(l)
			if err != nil {
				fail(fmt.Errorf("session %d: %w", k, err))
			}
		}(k, spec)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	if first != nil {
		return first
	}
	elapsed := time.Since(start)
	fmt.Printf("replayed %d sessions (%d links, %d samples) in %s (%.1f MB/s over sockets)\n",
		len(specs), links.Load(), sent.Load(), elapsed.Round(time.Millisecond),
		float64(8*sent.Load())/1e6/elapsed.Seconds())
	return nil
}

// replaySession renders one expanded session and ships every link's
// trace to the first target, returning samples and links sent.
// Additional targets become the node's failover rotation: the dial
// turns reliable and a dead primary costs a reconnect plus a
// buffered-tail resend, not the session. warnGap, if non-nil, is told
// each link's sample rate for the pacing-gap guard.
func replaySession(ctx context.Context, targets []string, k int, spec scenario.Spec, chunkSize int, pace bool, warnGap func(fs float64)) (int64, int64, error) {
	world, err := spec.CompileMulti()
	if err != nil {
		return 0, 0, err
	}
	hello := rxnet.Hello{
		NodeID: uint32(k + 1),
		Height: world.Links[0].Receiver.HeightM,
		Name:   spec.Name,
	}
	var node *rxnet.Node
	if len(targets) > 1 {
		node, err = rxnet.DialReliable(ctx, targets[0], hello, rxnet.RedialConfig{
			Addrs: targets[1:],
			Logf:  rxnet.StdLogf,
		})
	} else {
		node, err = rxnet.Dial(ctx, targets[0], hello)
	}
	if err != nil {
		return 0, 0, err
	}
	defer node.Close()
	var sent, links int64
	for _, l := range world.Links {
		tr, err := l.Link.Simulate()
		if err != nil {
			return sent, links, fmt.Errorf("link %s: %w", l.Name, err)
		}
		if warnGap != nil {
			warnGap(tr.Fs)
		}
		pos, linkStart := 0, time.Now()
		for chunk := range tr.Chunks(chunkSize) {
			if err := ctx.Err(); err != nil {
				return sent, links, err
			}
			if pace {
				if err := paceTo(ctx, linkStart, pos, tr.Fs); err != nil {
					return sent, links, err
				}
			}
			if err := node.StreamChunk(uint32(l.Index), tr.Fs, chunk); err != nil {
				return sent, links, err
			}
			pos += len(chunk)
		}
		sent += int64(tr.Len())
		links++
	}
	return sent, links, nil
}
