// Command plnet runs the networked-receivers extension (paper
// Sec. 6, future work (5)): an aggregator fusing detections from
// receiver nodes into object tracks.
//
// Usage:
//
//	plnet -mode aggregator -listen :7410
//	plnet -mode node -connect host:7410 -id 2 -x 25 -payload 1001
//	plnet -mode demo            # in-process aggregator + 3 simulated nodes
//	plnet -mode stream -nodes 3 # nodes stream raw samples into a
//	                            # server-side decode Pipeline
//	plnet -mode load -load fleet-load -sessions 16
//	                            # replay a scenario load spec as
//	                            # synthetic node traffic: each session
//	                            # is one node, each receiver one stream
//	plnet -mode load -sessions 16 -metrics-addr :9090 -linger 5m
//	                            # same, with live /metrics,
//	                            # /metrics.json and /healthz; -linger
//	                            # keeps the endpoint up after the run
//
// Cluster modes (internal/cluster): a router front-end consistent-
// hashes each (node, stream) session onto a fleet of engine
// processes, hands streams off losslessly when an engine drains, and
// fails them over when one dies:
//
//	plnet -mode engine -listen :7501 -engine-id a -metrics-addr :9501
//	plnet -mode engine -listen :7502 -engine-id b -metrics-addr :9502
//	plnet -mode route  -listen :7500 -engines a=127.0.0.1:7501,b=127.0.0.1:7502
//	plnet -mode load   -router 127.0.0.1:7500 -sessions 128 -pace
//	                            # concurrent paced fleet replay against
//	                            # the router instead of an in-process
//	                            # pipeline
//	plnet -mode drain  -connect 127.0.0.1:7501
//	                            # ask an engine to drain over the wire
//	                            # (SIGTERM to the engine does the same)
//
// A draining engine refuses new streams (the router re-routes them),
// finishes its in-flight sessions, force-redirects stragglers after
// -drain-wait, reports "draining" on /healthz, and exits clean.
//
// Stream mode is built on the unified Pipeline API: a NetSource
// accepts the nodes' raw chunk streams, a TwoPhase pipeline decodes
// them on the worker pool, and a sink feeds the detections into the
// aggregator's track fusion. Ctrl-C cancels the shared context, which
// shuts down sources, sessions and run loops cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"time"

	"passivelight"
	"passivelight/internal/rxnet"
	"passivelight/internal/scenario"
	"passivelight/internal/telemetry"
)

func main() {
	var (
		mode     = flag.String("mode", "demo", "aggregator | node | demo | stream")
		listen   = flag.String("listen", ":7410", "aggregator listen address")
		connect  = flag.String("connect", "127.0.0.1:7410", "aggregator address for nodes")
		discover = flag.String("discover", "", "UDP discovery address (nodes: probe it instead of -connect; aggregator: answer probes on it)")
		nodeID   = flag.Uint("id", 1, "node id")
		posX     = flag.Float64("x", 0, "node position along the lane (m)")
		payload  = flag.String("payload", "1001", "payload the simulated node observes")
		nodes    = flag.Int("nodes", 3, "simulated node count (stream mode)")
		chunk    = flag.Int("chunk", 1024, "samples per streamed chunk (stream and load modes)")
		workers  = flag.Int("workers", 0, "decode worker pool size (stream and load modes; 0 = GOMAXPROCS)")
		shards   = flag.Int("shards", 0, "engine shard count (stream and load modes; 0 = min(workers, GOMAXPROCS))")
		loadName = flag.String("load", "fleet-load", "load-registry preset to replay (load mode)")
		sessions = flag.Int("sessions", 16, "session count to expand the load to (load mode; 0 keeps the preset's)")
		metrics  = flag.String("metrics-addr", "", "serve /metrics, /metrics.json and /healthz on this address (stream, load, engine and route modes)")
		linger   = flag.Duration("linger", 0, "keep the metrics endpoint alive this long after a stream/load run completes")

		pace      = flag.Bool("pace", false, "pace load replay to the stream clocks (wall time) instead of as fast as possible")
		router    = flag.String("router", "", "replay the load against this router/engine address instead of an in-process pipeline (load mode)")
		fanout    = flag.Int("fanout", 16, "concurrent sessions replaying at once (load mode with -router)")
		engineID  = flag.String("engine-id", "engine", "this engine's ring member id (engine mode)")
		engines   = flag.String("engines", "", "comma-separated id=host:port ring members (route mode, -dump-ring)")
		ringPath  = flag.String("ring", "", "ring JSON file to route by, as printed by -dump-ring (route mode; overrides -engines)")
		vnodes    = flag.Int("vnodes", 0, "virtual nodes per ring member (0 = default 128)")
		dumpRing  = flag.Bool("dump-ring", false, "print the ring built from -engines/-vnodes as JSON and exit")
		strategy  = flag.String("strategy", "threshold", "decode strategy for engine mode (threshold | two-phase)")
		symbols   = flag.Int("symbols", 8, "expected symbols per packet (engine mode)")
		idle      = flag.Duration("idle", 3*time.Second, "engine-mode session idle eviction (quiet streams flush and release after this long)")
		drainWait = flag.Duration("drain-wait", 30*time.Second, "how long a draining engine waits for in-flight streams before force-redirecting them")

		join         = flag.String("join", "", "comma-separated router addresses to announce this engine to — engine-initiated membership, no operator rebalance; list both routers of an HA pair (engine mode)")
		advertise    = flag.String("advertise", "", "chunk-ingest address to advertise when joining (engine mode; default: the bound -listen address)")
		throttleHigh = flag.Float64("throttle-high", 0.75, "engine occupancy that engages cluster backpressure, released at half that (engine mode; 0 disables)")
		autoAdmit    = flag.Bool("auto-admit", true, "accept EngineHello announcements onto the ring; allows starting with no -engines (route mode)")
		deadTimeout  = flag.Duration("dead-timeout", 60*time.Second, "evict engines unreachable this long from the ring (route mode; negative disables)")
		peers        = flag.String("peers", "", "comma-separated peer router addresses to replicate ring and membership with — run two routers pointing at each other for an HA pair (route mode)")
		ringBatch    = flag.Duration("ring-batch", 0, "coalesce engine admissions landing within this window into one epoch bump (route mode; 0 = default 250ms, negative = apply each immediately)")
		routers      = flag.String("routers", "", "comma-separated router addresses for load replay with transparent failover — the first is dialed, the rest are standbys (load mode; overrides -router)")
	)
	flag.Parse()
	// One signal-handling context for every mode: Ctrl-C propagates
	// into node run loops, stream sessions and the aggregator.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var err error
	switch *mode {
	case "aggregator":
		err = runAggregator(ctx, *listen, *discover)
	case "node":
		target := *connect
		if *discover != "" {
			target, err = rxnet.Discover(*discover, 5*time.Second)
		}
		if err == nil {
			if *discover != "" {
				fmt.Println("discovered aggregator at", target)
			}
			err = runNode(ctx, target, uint32(*nodeID), *posX, *payload)
		}
	case "demo":
		err = runDemo(ctx)
	case "stream":
		err = runStream(ctx, newObs(*metrics, *linger), *nodes, *chunk, *payload, *workers, *shards)
	case "load":
		if targets := splitAddrs(*routers); len(targets) > 0 {
			err = runLoadRemote(ctx, *loadName, *sessions, *chunk, *pace, targets, *fanout, *idle)
		} else if *router != "" {
			err = runLoadRemote(ctx, *loadName, *sessions, *chunk, *pace, []string{*router}, *fanout, *idle)
		} else {
			err = runLoad(ctx, newObs(*metrics, *linger), *loadName, *sessions, *chunk, *workers, *shards, *pace)
		}
	case "engine":
		err = runEngine(ctx, newObs(*metrics, *linger), *listen, *engineID, *strategy, *symbols, *workers, *shards, *idle, *drainWait, *join, *advertise, *throttleHigh)
	case "route":
		if *dumpRing {
			err = runDumpRing(*engines, *vnodes)
		} else {
			err = runRoute(ctx, newObs(*metrics, *linger), *listen, *engines, *ringPath, *vnodes, *autoAdmit, *deadTimeout, splitAddrs(*peers), *ringBatch)
		}
	case "drain":
		err = runDrainRequest(*connect)
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "plnet:", err)
		os.Exit(1)
	}
}

func runAggregator(ctx context.Context, listen, discoverAddr string) error {
	agg := rxnet.NewAggregator(rxnet.AggregatorOptions{Logf: rxnet.StdLogf})
	addr, err := agg.Listen(listen)
	if err != nil {
		return err
	}
	defer agg.Close()
	fmt.Println("aggregator listening on", addr)
	if discoverAddr != "" {
		resp, udpAddr, err := rxnet.NewResponder(discoverAddr, addr)
		if err != nil {
			return err
		}
		defer resp.Close()
		fmt.Println("answering discovery probes on", udpAddr)
	}
	tracks := agg.Subscribe()
	for {
		select {
		case t, ok := <-tracks:
			if !ok {
				return nil
			}
			fmt.Printf("track: object=%s speed=%.2f m/s nodes %d->%d confirmations=%d\n",
				rxnet.BitsString(t.ObjectBits), t.SpeedMS, t.FirstNode, t.LastNode, t.Confirmations)
		case <-ctx.Done():
			return nil
		}
	}
}

// runNode simulates one receiver node: it decodes a car pass locally
// through a TwoPhase pipeline and publishes the detection.
func runNode(ctx context.Context, connect string, id uint32, posX float64, payload string) error {
	dialCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	node, err := rxnet.Dial(dialCtx, connect, rxnet.Hello{
		NodeID: id,
		PosX:   posX,
		Height: 0.75,
		Name:   fmt.Sprintf("pole-%d", id),
	})
	if err != nil {
		return err
	}
	defer node.Close()
	det, err := observe(ctx, payload, int64(id))
	if err != nil {
		return err
	}
	if err := node.Publish(det); err != nil {
		return err
	}
	fmt.Printf("node %d published detection %s\n", id, rxnet.BitsString(det.Bits))
	return nil
}

// observe simulates a local car pass and decodes it into a Detection
// through the Pipeline API (CarPassSource -> TwoPhase).
func observe(ctx context.Context, payload string, seed int64) (rxnet.Detection, error) {
	src := passivelight.NewCarPassSource(passivelight.OutdoorCarPass{
		Payload:        payload,
		NoiseFloorLux:  6200,
		ReceiverHeight: 0.75,
		Seed:           seed,
	})
	pipe, err := passivelight.NewPipeline(src, passivelight.TwoPhase(),
		passivelight.WithExpectedSymbols(4+2*len(payload)),
		passivelight.WithPreRoll(-1), // offline replay: decode on end of stream
	)
	if err != nil {
		return rxnet.Detection{}, err
	}
	events, err := pipe.Run(ctx)
	if err != nil {
		return rxnet.Detection{}, err
	}
	for _, ev := range events {
		if ev.Err != nil {
			continue
		}
		st := src.Trace().Stats()
		return rxnet.Detection{
			Time:       time.Now(),
			Bits:       ev.Bits,
			RSSPeak:    st.Max,
			NoiseFloor: 6200,
			SymbolRate: ev.SymbolRate,
		}, nil
	}
	return rxnet.Detection{}, fmt.Errorf("local decode: no packet found in pass")
}

// runStream is the streaming variant of the demo, fully on the new
// Pipeline API: N simulated nodes ship their raw RSS traces live in
// chunks to a NetSource; one TwoPhase pipeline decodes every stream
// server-side and its sink feeds the aggregator's track fusion — the
// paper's testbed inverted, with all DSP at the pipeline.
func runStream(ctx context.Context, mon *obs, nodeCount, chunkSize int, payload string, workers, shards int) error {
	if nodeCount < 2 {
		return fmt.Errorf("stream mode needs at least 2 nodes to fuse a track, got %d", nodeCount)
	}
	rootCtx := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// The aggregator only fuses; decode lives in the pipeline.
	agg := rxnet.NewAggregator(rxnet.AggregatorOptions{Logf: rxnet.StdLogf, TrackGap: time.Minute})
	defer agg.Close()

	src, err := passivelight.ListenSourceConfig("127.0.0.1:0", passivelight.NetSourceConfig{Telemetry: mon.registry()})
	if err != nil {
		return err
	}
	src.OnHello(func(h passivelight.NodeHello) { agg.RegisterNode(h) })
	pipe, err := passivelight.NewPipeline(src, passivelight.TwoPhase(),
		passivelight.WithExpectedSymbols(4+2*len(payload)),
		passivelight.WithWorkers(workers),
		passivelight.WithShards(shards),
		passivelight.WithTelemetry(mon.registry()),
		passivelight.WithSink(func(ev passivelight.Event) {
			if ev.Err != nil {
				fmt.Printf("stream session %d segment [%d,%d): %v\n", ev.Session, ev.Start, ev.End, ev.Err)
				return
			}
			agg.Ingest(rxnet.Detection{
				NodeID:     rxnet.SessionNodeID(ev.Session),
				Time:       ev.Wall,
				Bits:       ev.Bits,
				RSSPeak:    ev.RSSPeak,
				NoiseFloor: ev.NoiseFloor,
				SymbolRate: ev.SymbolRate,
			})
		}),
	)
	if err != nil {
		return err
	}
	events, err := pipe.Stream(ctx)
	if err != nil {
		return err
	}
	drained := make(chan struct{})
	go func() {
		for range events { // sinks already did the work
		}
		close(drained)
	}()
	if err := mon.serve(pipe, src); err != nil {
		return err
	}
	defer mon.close()
	fmt.Println("streaming decode pipeline on", src.Addr())

	var sent int64
	for i := 0; i < nodeCount; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		node, err := rxnet.Dial(ctx, src.Addr(), rxnet.Hello{
			NodeID: uint32(i + 1),
			PosX:   float64(i) * 25,
			Height: 0.75,
			Name:   fmt.Sprintf("pole-%d", i+1),
		})
		if err != nil {
			return err
		}
		// Render this node's car pass and ship the raw trace.
		link, _, err := (passivelight.OutdoorCarPass{
			Payload:        payload,
			NoiseFloorLux:  6200,
			ReceiverHeight: 0.75,
			Seed:           int64(i + 1),
		}).Build()
		if err != nil {
			node.Close()
			return err
		}
		tr, err := link.Simulate()
		if err != nil {
			node.Close()
			return err
		}
		for chunk := range tr.Chunks(chunkSize) {
			if err := ctx.Err(); err != nil {
				node.Close()
				return err
			}
			if err := node.StreamChunk(0, tr.Fs, chunk); err != nil {
				node.Close()
				return err
			}
		}
		node.Close()
		fmt.Printf("pole-%d streamed %d samples (%.1f s at %.0f S/s)\n", i+1, tr.Len(), tr.Duration(), tr.Fs)
		// Wait for the pipeline to ingest everything sent so far, then
		// flush so the open segment decodes now instead of waiting out
		// the quiet hold (dial-order spacing also keeps detection
		// timestamps ordered for fusion).
		sent += int64(tr.Len())
		ingestDeadline := time.Now().Add(30 * time.Second)
		for {
			if err := ctx.Err(); err != nil {
				return err
			}
			st := pipe.Stats()
			if st.SamplesIn >= sent {
				break
			}
			if time.Now().After(ingestDeadline) {
				return fmt.Errorf("pipeline ingested %d of %d streamed samples (dropped %d)",
					st.SamplesIn, sent, st.DroppedSamples)
			}
			time.Sleep(5 * time.Millisecond)
		}
		pipe.Flush()
		time.Sleep(20 * time.Millisecond)
	}

	st := pipe.Stats()
	fmt.Printf("pipeline: %d sessions, %d samples in, %d detections, %d decode errors, %d buffered\n",
		st.Sessions, st.SamplesIn, st.Detections, st.DecodeErrors, st.BufferedSamples)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if tracks := agg.Tracks(); len(tracks) > 0 {
			t := tracks[len(tracks)-1]
			fmt.Printf("fused track: object=%s across %d receivers (%d -> %d)\n",
				rxnet.BitsString(t.ObjectBits), t.Confirmations, t.FirstNode, t.LastNode)
			cancel()
			<-drained
			mon.wait(rootCtx)
			return pipelineErr(pipe.Err())
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("no track fused from streamed samples")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// runLoad replays a declarative load spec as synthetic node traffic:
// every expanded session dials in as its own receiver node and ships
// each of its compiled links' rendered traces chunk by chunk, so the
// server-side pipeline sees exactly the fleet the spec describes —
// spec-driven scale testing of the networked decode path.
func runLoad(ctx context.Context, mon *obs, loadName string, sessions, chunkSize, workers, shards int, pace bool) error {
	load, err := scenario.GetLoad(loadName)
	if err != nil {
		return err
	}
	if sessions > 0 {
		load.Sessions = sessions
	}
	pace = pace || load.Pace
	specs, err := load.Expand()
	if err != nil {
		return err
	}
	strat, err := passivelight.StrategyForScenario(specs[0].Decode)
	if err != nil {
		return err
	}

	rootCtx := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	src, err := passivelight.ListenSourceConfig("127.0.0.1:0", passivelight.NetSourceConfig{Telemetry: mon.registry()})
	if err != nil {
		return err
	}
	var decoded, undecodable atomic.Int64
	pipe, err := passivelight.NewPipeline(src, strat,
		passivelight.WithExpectedSymbols(specs[0].Decode.ExpectedSymbols),
		passivelight.WithWorkers(workers),
		passivelight.WithShards(shards),
		passivelight.WithTelemetry(mon.registry()),
		passivelight.WithSink(func(ev passivelight.Event) {
			if ev.Err != nil {
				undecodable.Add(1)
				return
			}
			decoded.Add(1)
		}),
	)
	if err != nil {
		return err
	}
	events, err := pipe.Stream(ctx)
	if err != nil {
		return err
	}
	drained := make(chan struct{})
	go func() {
		for range events { // the sink already counted
		}
		close(drained)
	}()
	if err := mon.serve(pipe, src); err != nil {
		return err
	}
	defer mon.close()
	fmt.Printf("load replay %s: %d sessions into pipeline on %s\n", load.Name, len(specs), src.Addr())

	start := time.Now()
	var sent, links int64
	for k, spec := range specs {
		if err := ctx.Err(); err != nil {
			return err
		}
		world, err := spec.CompileMulti()
		if err != nil {
			return fmt.Errorf("session %d: %w", k, err)
		}
		node, err := rxnet.Dial(ctx, src.Addr(), rxnet.Hello{
			NodeID: uint32(k + 1),
			Height: world.Links[0].Receiver.HeightM,
			Name:   spec.Name,
		})
		if err != nil {
			return err
		}
		for _, l := range world.Links {
			tr, err := l.Link.Simulate()
			if err != nil {
				node.Close()
				return fmt.Errorf("session %d link %s: %w", k, l.Name, err)
			}
			pos, linkStart := 0, time.Now()
			for chunk := range tr.Chunks(chunkSize) {
				if err := ctx.Err(); err != nil {
					node.Close()
					return err
				}
				if pace {
					if err := paceTo(ctx, linkStart, pos, tr.Fs); err != nil {
						node.Close()
						return err
					}
				}
				if err := node.StreamChunk(uint32(l.Index), tr.Fs, chunk); err != nil {
					node.Close()
					return err
				}
				pos += len(chunk)
			}
			sent += int64(tr.Len())
			links++
		}
		node.Close()
	}

	// Wait for full ingest, then flush the open segments so trailing
	// packets decode without waiting out the quiet hold.
	ingestDeadline := time.Now().Add(60 * time.Second)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		st := pipe.Stats()
		if st.SamplesIn >= sent {
			break
		}
		if time.Now().After(ingestDeadline) {
			return fmt.Errorf("pipeline ingested %d of %d streamed samples (dropped %d)",
				st.SamplesIn, sent, st.DroppedSamples)
		}
		time.Sleep(5 * time.Millisecond)
	}
	pipe.Flush()
	// Flush decodes synchronously but publishes through the batched
	// detection channel; wait until the event totals settle before
	// tearing the pipeline down, so the summary counts are not a race
	// against the forwarder.
	settleDeadline := time.Now().Add(5 * time.Second)
	prev := int64(-1)
	for {
		cur := decoded.Load() + undecodable.Load()
		if cur == prev || time.Now().After(settleDeadline) {
			break
		}
		prev = cur
		time.Sleep(25 * time.Millisecond)
	}
	elapsed := time.Since(start)
	cancel()
	<-drained

	st := pipe.Stats()
	fmt.Printf("replayed %d sessions (%d links, %d samples) in %s (%.1f MB/s over loopback)\n",
		len(specs), links, sent, elapsed.Round(time.Millisecond),
		float64(8*sent)/1e6/elapsed.Seconds())
	fmt.Printf("pipeline: %d shards, %d decoded, %d undecodable, %d dropped samples\n",
		st.Shards, decoded.Load(), undecodable.Load(), st.DroppedSamples)
	if decoded.Load() == 0 {
		return fmt.Errorf("load replay decoded nothing")
	}
	mon.wait(rootCtx)
	return pipelineErr(pipe.Err())
}

// obs is the optional observability surface of the stream and load
// modes: one registry shared by the chunk listener, the pipeline and
// a live HTTP endpoint, plus the /healthz degradation checks.
type obs struct {
	addr   string
	linger time.Duration
	tel    *passivelight.Telemetry
	srv    *telemetry.Server
}

// newObs builds the surface when -metrics-addr is set; nil otherwise
// (every method no-ops on a nil receiver).
func newObs(addr string, linger time.Duration) *obs {
	if addr == "" {
		return nil
	}
	return &obs{addr: addr, linger: linger, tel: passivelight.NewTelemetry()}
}

// registry returns the shared registry (nil when metrics are off —
// the pipeline and source treat nil as "no telemetry").
func (o *obs) registry() *passivelight.Telemetry {
	if o == nil {
		return nil
	}
	return o.tel
}

// serve starts the metrics endpoint once the pipeline and source
// exist, wiring two /healthz checks: "drops" degrades when any drop
// counter (engine samples/detections/flattened, listener chunks) grew
// since the previous probe, and "sessions" degrades when the session
// table is full. hooks add mode-specific checks (e.g. the engine
// mode's "draining" state).
func (o *obs) serve(pipe *passivelight.Pipeline, src *passivelight.NetSource, hooks ...func(*passivelight.TelemetryHealth)) error {
	if o == nil {
		return nil
	}
	health := passivelight.NewTelemetryHealth()
	for _, hook := range hooks {
		hook(health)
	}
	var lastDrops atomic.Int64
	health.AddCheck("drops", func() (bool, string) {
		st := pipe.Stats()
		total := st.DroppedSamples + st.DroppedDetections + st.DroppedFlattened + src.DroppedChunks()
		prev := lastDrops.Swap(total)
		if total > prev {
			return false, fmt.Sprintf("%d dropped (+%d since last probe)", total, total-prev)
		}
		return true, ""
	})
	health.AddCheck("sessions", func() (bool, string) {
		// plnet never overrides WithMaxSessions, so the engine's
		// default table bound applies.
		const sessionLimit = 65536
		if st := pipe.Stats(); st.Sessions >= sessionLimit {
			return false, fmt.Sprintf("session table full (%d/%d)", st.Sessions, sessionLimit)
		}
		return true, ""
	})
	srv, err := telemetry.StartServer(o.addr, o.tel, health)
	if err != nil {
		return err
	}
	o.srv = srv
	fmt.Println("metrics on http://" + srv.Addr())
	return nil
}

// serveBare starts the metrics endpoint with only hook-provided
// health checks — for modes without a pipeline (the cluster router).
func (o *obs) serveBare(hooks ...func(*passivelight.TelemetryHealth)) error {
	if o == nil {
		return nil
	}
	health := passivelight.NewTelemetryHealth()
	for _, hook := range hooks {
		hook(health)
	}
	srv, err := telemetry.StartServer(o.addr, o.tel, health)
	if err != nil {
		return err
	}
	o.srv = srv
	fmt.Println("metrics on http://" + srv.Addr())
	return nil
}

// wait keeps the metrics endpoint up for the linger window after a
// completed run, so scrapes and health probes can read the final
// counters before the process exits.
func (o *obs) wait(ctx context.Context) {
	if o == nil || o.srv == nil || o.linger <= 0 {
		return
	}
	fmt.Printf("metrics endpoint lingering for %s\n", o.linger)
	select {
	case <-time.After(o.linger):
	case <-ctx.Done():
	}
}

// close stops the metrics endpoint.
func (o *obs) close() {
	if o != nil && o.srv != nil {
		o.srv.Close()
	}
}

// pipelineErr strips the expected cancellation from a pipeline
// shutdown (stream mode cancels the context to end the NetSource).
func pipelineErr(err error) error {
	if errors.Is(err, context.Canceled) {
		return nil
	}
	return err
}

// runDemo spins up an in-process aggregator and three nodes along a
// lane; a simulated car carrying payload 1001 passes each node in
// turn, and the aggregator fuses the detections into a track.
func runDemo(ctx context.Context) error {
	agg := rxnet.NewAggregator(rxnet.AggregatorOptions{Logf: rxnet.StdLogf, TrackGap: time.Minute})
	addr, err := agg.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer agg.Close()
	fmt.Println("demo aggregator on", addr)

	const payload = "1001"
	positions := []float64{0, 25, 50} // poles every 25 m
	passTimes := []time.Duration{0, 5 * time.Second, 10 * time.Second}
	base := time.Now()
	for i, x := range positions {
		if err := ctx.Err(); err != nil {
			return err
		}
		node, err := rxnet.Dial(ctx, addr, rxnet.Hello{
			NodeID: uint32(i + 1),
			PosX:   x,
			Height: 0.75,
			Name:   fmt.Sprintf("pole-%d", i+1),
		})
		if err != nil {
			return err
		}
		det, err := observe(ctx, payload, int64(i+1))
		if err != nil {
			node.Close()
			return err
		}
		// Stamp the detection with the (simulated) time the car
		// passed this pole: 25 m apart at 5 m/s.
		det.Time = base.Add(passTimes[i])
		if err := node.Publish(det); err != nil {
			node.Close()
			return err
		}
		fmt.Printf("pole-%d at x=%.0f m saw %s\n", i+1, x, rxnet.BitsString(det.Bits))
		node.Close()
	}
	tracks := agg.Tracks()
	if len(tracks) == 0 {
		return fmt.Errorf("no track fused")
	}
	t := tracks[len(tracks)-1]
	fmt.Printf("fused track: object=%s speed=%.2f m/s (expected 5.00) across %d receivers\n",
		rxnet.BitsString(t.ObjectBits), t.SpeedMS, t.Confirmations)
	return nil
}
