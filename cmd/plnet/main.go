// Command plnet runs the networked-receivers extension (paper
// Sec. 6, future work (5)): an aggregator fusing detections from
// receiver nodes into object tracks.
//
// Usage:
//
//	plnet -mode aggregator -listen :7410
//	plnet -mode node -connect host:7410 -id 2 -x 25 -payload 1001
//	plnet -mode demo            # in-process aggregator + 3 simulated nodes
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"passivelight/internal/core"
	"passivelight/internal/decoder"
	"passivelight/internal/rxnet"
)

func main() {
	var (
		mode     = flag.String("mode", "demo", "aggregator | node | demo")
		listen   = flag.String("listen", ":7410", "aggregator listen address")
		connect  = flag.String("connect", "127.0.0.1:7410", "aggregator address for nodes")
		discover = flag.String("discover", "", "UDP discovery address (nodes: probe it instead of -connect; aggregator: answer probes on it)")
		nodeID   = flag.Uint("id", 1, "node id")
		posX     = flag.Float64("x", 0, "node position along the lane (m)")
		payload  = flag.String("payload", "1001", "payload the simulated node observes")
	)
	flag.Parse()
	var err error
	switch *mode {
	case "aggregator":
		err = runAggregator(*listen, *discover)
	case "node":
		target := *connect
		if *discover != "" {
			target, err = rxnet.Discover(*discover, 5*time.Second)
		}
		if err == nil {
			if *discover != "" {
				fmt.Println("discovered aggregator at", target)
			}
			err = runNode(target, uint32(*nodeID), *posX, *payload)
		}
	case "demo":
		err = runDemo()
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "plnet:", err)
		os.Exit(1)
	}
}

func runAggregator(listen, discoverAddr string) error {
	agg := rxnet.NewAggregator(rxnet.AggregatorOptions{Logf: rxnet.StdLogf})
	addr, err := agg.Listen(listen)
	if err != nil {
		return err
	}
	defer agg.Close()
	fmt.Println("aggregator listening on", addr)
	if discoverAddr != "" {
		resp, udpAddr, err := rxnet.NewResponder(discoverAddr, addr)
		if err != nil {
			return err
		}
		defer resp.Close()
		fmt.Println("answering discovery probes on", udpAddr)
	}
	tracks := agg.Subscribe()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	for {
		select {
		case t, ok := <-tracks:
			if !ok {
				return nil
			}
			fmt.Printf("track: object=%s speed=%.2f m/s nodes %d->%d confirmations=%d\n",
				rxnet.BitsString(t.ObjectBits), t.SpeedMS, t.FirstNode, t.LastNode, t.Confirmations)
		case <-ctx.Done():
			return nil
		}
	}
}

// runNode simulates one receiver node: it renders a car pass with the
// given payload, decodes it locally, and publishes the detection.
func runNode(connect string, id uint32, posX float64, payload string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	node, err := rxnet.Dial(ctx, connect, rxnet.Hello{
		NodeID: id,
		PosX:   posX,
		Height: 0.75,
		Name:   fmt.Sprintf("pole-%d", id),
	})
	if err != nil {
		return err
	}
	defer node.Close()
	det, err := observe(payload, int64(id))
	if err != nil {
		return err
	}
	if err := node.Publish(det); err != nil {
		return err
	}
	fmt.Printf("node %d published detection %s\n", id, rxnet.BitsString(det.Bits))
	return nil
}

// observe simulates a local car pass and decodes it into a Detection.
func observe(payload string, seed int64) (rxnet.Detection, error) {
	link, _, err := core.OutdoorSetup{
		Payload:        payload,
		NoiseFloorLux:  6200,
		ReceiverHeight: 0.75,
		Seed:           seed,
	}.Build()
	if err != nil {
		return rxnet.Detection{}, err
	}
	tr, err := link.Simulate()
	if err != nil {
		return rxnet.Detection{}, err
	}
	tp, err := decoder.DecodeCarPass(tr, decoder.Options{ExpectedSymbols: 4 + 2*len(payload)})
	if err != nil {
		return rxnet.Detection{}, fmt.Errorf("local decode: %w", err)
	}
	if tp.Decode.ParseErr != nil {
		return rxnet.Detection{}, fmt.Errorf("local decode: %w", tp.Decode.ParseErr)
	}
	bits := make([]byte, len(tp.Decode.Packet.Data))
	for i, b := range tp.Decode.Packet.Data {
		bits[i] = byte(b)
	}
	st := tr.Stats()
	return rxnet.Detection{
		Time:       time.Now(),
		Bits:       bits,
		RSSPeak:    st.Max,
		NoiseFloor: 6200,
		SymbolRate: 1 / tp.Decode.Thresholds.TauT,
	}, nil
}

// runDemo spins up an in-process aggregator and three nodes along a
// lane; a simulated car carrying payload 1001 passes each node in
// turn, and the aggregator fuses the detections into a track.
func runDemo() error {
	agg := rxnet.NewAggregator(rxnet.AggregatorOptions{Logf: rxnet.StdLogf, TrackGap: time.Minute})
	addr, err := agg.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer agg.Close()
	fmt.Println("demo aggregator on", addr)

	const payload = "1001"
	positions := []float64{0, 25, 50} // poles every 25 m
	passTimes := []time.Duration{0, 5 * time.Second, 10 * time.Second}
	base := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, x := range positions {
		node, err := rxnet.Dial(ctx, addr, rxnet.Hello{
			NodeID: uint32(i + 1),
			PosX:   x,
			Height: 0.75,
			Name:   fmt.Sprintf("pole-%d", i+1),
		})
		if err != nil {
			return err
		}
		det, err := observe(payload, int64(i+1))
		if err != nil {
			node.Close()
			return err
		}
		// Stamp the detection with the (simulated) time the car
		// passed this pole: 25 m apart at 5 m/s.
		det.Time = base.Add(passTimes[i])
		if err := node.Publish(det); err != nil {
			node.Close()
			return err
		}
		fmt.Printf("pole-%d at x=%.0f m saw %s\n", i+1, x, rxnet.BitsString(det.Bits))
		node.Close()
	}
	tracks := agg.Tracks()
	if len(tracks) == 0 {
		return fmt.Errorf("no track fused")
	}
	t := tracks[len(tracks)-1]
	fmt.Printf("fused track: object=%s speed=%.2f m/s (expected 5.00) across %d receivers\n",
		rxnet.BitsString(t.ObjectBits), t.SpeedMS, t.Confirmations)
	return nil
}
