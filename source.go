package passivelight

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"passivelight/internal/rxnet"
)

// SourceChunk is one batch of RSS samples produced by a Source.
type SourceChunk struct {
	// Session distinguishes concurrent streams from a multi-stream
	// source (e.g. one per receiver node); single-stream sources leave
	// it zero.
	Session uint64
	// Fs is the chunk's sample rate; zero adopts the source's default
	// rate from SourceInfo.
	Fs float64
	// Samples are RSS values (ADC counts). The slice may be reused by
	// the source after the pipeline consumes the chunk; consumers that
	// retain it must copy.
	Samples []float64
	// Reset marks a restarted stream (reconnect, sequence gap): the
	// pipeline ends any open decode session for Session before feeding
	// these samples, so old and new epochs cannot splice together.
	Reset bool
	// release, when non-nil, returns the chunk's pooled sample buffer
	// to its source (e.g. the rxnet listener pool). The pipeline calls
	// Release once the samples have been consumed; sources whose
	// chunks are plain slices leave it nil.
	release func()
}

// Release hands the chunk's sample buffer back to its source's pool,
// if the chunk carries one. After Release the Samples slice must not
// be used. Safe to call on any chunk (no-op without a pooled buffer)
// but not twice on the same pooled chunk.
func (c SourceChunk) Release() {
	if c.release != nil {
		c.release()
	}
}

// SourceInfo describes an opened source.
type SourceInfo struct {
	// Fs is the default sample rate (Hz) for chunks that do not carry
	// their own. Zero means every chunk declares its rate (network
	// sources) — the pipeline then requires WithSampleRate or per-chunk
	// rates.
	Fs float64
	// Name labels the source in diagnostics.
	Name string
}

// Source produces RSS sample chunks for a Pipeline: a recorded trace,
// a live chunked feed, a simulated link, or a receiver-network stream.
// The pipeline calls Open once, Next until it returns io.EOF (or the
// context is canceled), then Close. Implementations need not be safe
// for concurrent use; the pipeline serializes calls.
type Source interface {
	// Open starts the source and reports its default sample rate.
	Open(ctx context.Context) (SourceInfo, error)
	// Next returns the next chunk, blocking until one is available.
	// io.EOF ends the stream cleanly; ctx cancellation should abort a
	// blocked Next with ctx.Err().
	Next(ctx context.Context) (SourceChunk, error)
	// Close releases the source's resources. It must be safe to call
	// after Next returned an error.
	Close() error
}

// TraceSource replays a recorded trace in chunks.
type TraceSource struct {
	tr    *Trace
	chunk int
	pos   int
}

// NewTraceSource wraps a recorded trace as a source, replayed in
// chunks of chunkSize samples (<= 0 replays the whole trace as one
// chunk). Decoding a trace through a Pipeline in batch-equivalent
// mode (WithPreRoll(-1)) is bit-identical to the batch Decode.
func NewTraceSource(tr *Trace, chunkSize int) *TraceSource {
	return &TraceSource{tr: tr, chunk: chunkSize}
}

// Open implements Source.
func (s *TraceSource) Open(ctx context.Context) (SourceInfo, error) {
	if s.tr == nil || s.tr.Len() == 0 {
		return SourceInfo{}, errors.New("passivelight: trace source has no samples")
	}
	if s.chunk <= 0 {
		s.chunk = s.tr.Len()
	}
	s.pos = 0
	return SourceInfo{Fs: s.tr.Fs, Name: "trace"}, nil
}

// Next implements Source.
func (s *TraceSource) Next(ctx context.Context) (SourceChunk, error) {
	if err := ctx.Err(); err != nil {
		return SourceChunk{}, err
	}
	if s.pos >= s.tr.Len() {
		return SourceChunk{}, io.EOF
	}
	hi := s.pos + s.chunk
	if hi > s.tr.Len() {
		hi = s.tr.Len()
	}
	out := SourceChunk{Samples: s.tr.Samples[s.pos:hi]}
	s.pos = hi
	return out, nil
}

// Close implements Source.
func (s *TraceSource) Close() error { return nil }

// SimSource simulates a configured scenario (or an already-assembled
// link) on Open and replays the rendered trace — the programmatic
// equivalent of one pass of the paper's testbed feeding the decode
// pipeline.
type SimSource struct {
	build func() (*Link, Packet, error)
	name  string
	chunk int

	customize  []func(*Link)
	selectHook func(cands []ReceiverDevice) error

	link        *Link
	packet      Packet
	trace       *Trace
	inner       *TraceSource
	compiled    *ScenarioWorld
	receiverTag string
}

// compileSpec compiles a scenario spec into the source's link,
// retaining the compiled world so Packets/World stay inspectable.
func (s *SimSource) compileSpec(spec Scenario) (*Link, Packet, error) {
	c, err := spec.Compile()
	if err != nil {
		return nil, Packet{}, err
	}
	s.compiled = c
	return c.Link, c.Packet(), nil
}

// NewScenarioSource simulates any declarative scenario — a registry
// preset, a -spec JSON file, or a hand-built Spec — as a pipeline
// source. With WithReceiverAutoSelect the receiver device is chosen
// per the Sec. 4.4 dual-receiver policy against the scenario's
// ambient level (uniform optics only) before compilation; note the
// swap keeps an explicitly set DurationSec, so presets sized for one
// device's FoV should leave DurationSec zero if they expect
// auto-selection to change the footprint materially.
func NewScenarioSource(spec Scenario) *SimSource {
	s := &SimSource{name: "scenario"}
	if spec.Name != "" {
		s.name = spec.Name
	}
	s.build = func() (*Link, Packet, error) { return s.compileSpec(spec) }
	s.selectHook = func(cands []ReceiverDevice) error {
		floor, ok := spec.AmbientLux()
		if !ok {
			return fmt.Errorf("passivelight: scenario %q has no ambient noise floor (optics %q); receiver auto-select needs a uniform source", s.name, spec.Optics.Kind)
		}
		dev, err := SelectReceiver(floor, cands...)
		if err != nil {
			return err
		}
		spec.SetReceiverDevice(dev)
		s.receiverTag = dev.Name
		return nil
	}
	return s
}

// NewBenchSource simulates the paper's indoor bench (Sec. 4) as a
// pipeline source — a thin preset wrapper over the scenario layer.
func NewBenchSource(b IndoorBench) *SimSource {
	s := &SimSource{name: "bench"}
	s.build = func() (*Link, Packet, error) {
		spec, err := b.Spec()
		if err != nil {
			return nil, Packet{}, err
		}
		return s.compileSpec(spec)
	}
	return s
}

// NewCarPassSource simulates the paper's outdoor car pass (Sec. 5) as
// a pipeline source — a thin preset wrapper over the scenario layer.
// With WithReceiverAutoSelect the receiver device is chosen per the
// Sec. 4.4 dual-receiver policy against the pass's ambient noise
// floor before the scenario is compiled.
func NewCarPassSource(p OutdoorCarPass) *SimSource {
	s := &SimSource{name: "carpass"}
	// The build closure and the select hook share p, so auto-selecting
	// a receiver before Open changes the spec the scenario layer
	// compiles (lead-in geometry and window follow the device's FoV).
	s.build = func() (*Link, Packet, error) {
		spec, err := p.Spec()
		if err != nil {
			return nil, Packet{}, err
		}
		return s.compileSpec(spec)
	}
	s.selectHook = func(cands []ReceiverDevice) error {
		dev, err := SelectReceiver(p.NoiseFloorLux, cands...)
		if err != nil {
			return err
		}
		p.Receiver = dev
		s.receiverTag = dev.Name
		return nil
	}
	return s
}

// receiverSelectable is implemented by sources that can apply the
// WithReceiverAutoSelect policy (they know their ambient level).
type receiverSelectable interface {
	applyReceiverAutoSelect(cands []ReceiverDevice) error
}

func (s *SimSource) applyReceiverAutoSelect(cands []ReceiverDevice) error {
	if s.selectHook == nil {
		return fmt.Errorf("passivelight: source %q does not support receiver auto-select", s.name)
	}
	return s.selectHook(cands)
}

// NewLinkSource wraps an already-assembled Link (custom scene,
// receiver, noise) as a pipeline source.
func NewLinkSource(l *Link) *SimSource {
	return &SimSource{build: func() (*Link, Packet, error) { return l, Packet{}, nil }, name: "link"}
}

// Customize registers a hook run on the built link before simulation
// (swap the light source, bend the trajectory...). Returns the source
// for chaining.
func (s *SimSource) Customize(fn func(*Link)) *SimSource {
	s.customize = append(s.customize, fn)
	return s
}

// Chunked sets the replay chunk size in samples (<= 0, the default,
// replays the rendered trace as one chunk). Returns the source for
// chaining.
func (s *SimSource) Chunked(size int) *SimSource {
	s.chunk = size
	return s
}

// Open implements Source: build the link, render the channel, and
// prepare the replay.
func (s *SimSource) Open(ctx context.Context) (SourceInfo, error) {
	if err := ctx.Err(); err != nil {
		return SourceInfo{}, err
	}
	link, pkt, err := s.build()
	if err != nil {
		return SourceInfo{}, err
	}
	for _, fn := range s.customize {
		fn(link)
	}
	tr, err := link.Simulate()
	if err != nil {
		return SourceInfo{}, err
	}
	s.link, s.packet, s.trace = link, pkt, tr
	s.inner = NewTraceSource(tr, s.chunk)
	info, err := s.inner.Open(ctx)
	info.Name = s.name
	return info, err
}

// Next implements Source.
func (s *SimSource) Next(ctx context.Context) (SourceChunk, error) {
	if s.inner == nil {
		return SourceChunk{}, errors.New("passivelight: source not opened")
	}
	return s.inner.Next(ctx)
}

// Close implements Source.
func (s *SimSource) Close() error { return nil }

// Packet returns the payload physically encoded on the simulated tag
// (zero value for bare-car passes). Valid after the pipeline opened
// the source. Multi-object scenarios report their first tag; use
// Packets for the full set.
func (s *SimSource) Packet() Packet { return s.packet }

// Packets returns every payload physically present in the simulated
// scenario, in scene order (nil for NewLinkSource). Valid after the
// pipeline opened the source.
func (s *SimSource) Packets() []ScenarioPacket {
	if s.compiled == nil {
		return nil
	}
	return s.compiled.Packets
}

// World returns the compiled scenario (nil for NewLinkSource). Valid
// after the pipeline opened the source.
func (s *SimSource) World() *ScenarioWorld { return s.compiled }

// Trace returns the rendered trace. Valid after the pipeline opened
// the source.
func (s *SimSource) Trace() *Trace { return s.trace }

// Link returns the built link. Valid after the pipeline opened the
// source.
func (s *SimSource) Link() *Link { return s.link }

// Receiver returns the name of the receiver device chosen by
// WithReceiverAutoSelect (empty without it).
func (s *SimSource) Receiver() string { return s.receiverTag }

// MultiStream identifies one link of an opened MultiSource: which
// load session and which receiver of the compiled scenario the
// stream id stands for. Pipeline events carry the stream id in
// Event.Session, so detections attribute back through this table.
type MultiStream struct {
	// ID is the stream id chunks carry (ScenarioStreamID(Session,
	// Receiver)).
	ID uint64
	// Session is the load session index (0 for NewMultiSource).
	Session int
	// Receiver is the receiver index within the scenario.
	Receiver int
	// Name labels the receiver ("pole-led", "rx0-pd-G1", ...).
	Name string
	// Scenario is the per-session spec name.
	Scenario string
	// Packets are the payloads physically present in the stream's
	// world, in object order.
	Packets []ScenarioPacket
}

// multiStream is one link's replay state.
type multiStream struct {
	info MultiStream
	link *Link
	fs   float64
	tr   *Trace
	pos  int
}

// MultiSource compiles a multi-receiver scenario (NewMultiSource) or
// an expanded Load (NewLoadSource) into N deterministic links and
// replays them as one interleaved multi-session stream: every chunk
// carries its link's stream id, so one Pipeline decodes the whole
// receiver network (or fleet) concurrently and events attribute back
// to (session, receiver) via ScenarioStreamSession /
// ScenarioStreamReceiver. Links render lazily as their replay starts;
// Window bounds how many are live at once.
type MultiSource struct {
	name   string
	build  func() ([]*multiStream, error)
	chunk  int
	window int
	paced  bool

	streams []*multiStream
	active  []*multiStream
	next    int // streams[next] is admitted when an active one ends
	cursor  int
	start   time.Time // wall-clock anchor of a paced replay
}

// NewMultiSource compiles a declarative scenario into one link per
// receiver (CompileMulti) and replays all links through one pipeline.
// Single-receiver scenarios work too (one stream); use
// NewScenarioSource when you want the single-link extras
// (auto-select, Customize).
func NewMultiSource(spec Scenario) *MultiSource {
	s := &MultiSource{name: "multi"}
	if spec.Name != "" {
		s.name = spec.Name
	}
	s.build = func() ([]*multiStream, error) {
		m, err := spec.CompileMulti()
		if err != nil {
			return nil, err
		}
		return multiStreams(m, 0), nil
	}
	return s
}

// NewLoadSource expands a load spec into its staggered per-session
// scenarios, compiles every session's receiver links, and replays
// sessions × receivers streams into one pipeline — spec-driven load
// generation for engine-scale runs.
func NewLoadSource(load ScenarioLoad) *MultiSource {
	s := &MultiSource{name: "load"}
	if load.Name != "" {
		s.name = load.Name
	}
	s.paced = load.Pace
	s.build = func() ([]*multiStream, error) {
		specs, err := load.Expand()
		if err != nil {
			return nil, err
		}
		var out []*multiStream
		for k, spec := range specs {
			m, err := spec.CompileMulti()
			if err != nil {
				return nil, fmt.Errorf("passivelight: load session %d: %w", k, err)
			}
			out = append(out, multiStreams(m, k)...)
		}
		return out, nil
	}
	return s
}

// multiStreams keys one compiled scenario's links under a session
// index.
func multiStreams(m *ScenarioMultiWorld, session int) []*multiStream {
	out := make([]*multiStream, len(m.Links))
	for i, l := range m.Links {
		// The front-end chain carries the compile-resolved sample
		// rate, so chunks always declare the rate the trace actually
		// renders at.
		fs := l.Link.Frontend.Fs
		out[i] = &multiStream{
			info: MultiStream{
				ID:       ScenarioStreamID(session, l.Index),
				Session:  session,
				Receiver: l.Index,
				Name:     l.Name,
				Scenario: m.Spec.Name,
				Packets:  m.Packets,
			},
			link: l.Link,
			fs:   fs,
		}
	}
	return out
}

// Chunked sets the replay chunk size in samples (<= 0 keeps the
// default 1024). Returns the source for chaining.
func (s *MultiSource) Chunked(size int) *MultiSource {
	if size > 0 {
		s.chunk = size
	}
	return s
}

// Window bounds how many streams replay concurrently (0, the default,
// replays all at once): earlier sessions finish before later ones are
// admitted, modeling a fleet arriving over time and bounding the
// rendered-trace memory to the window.
func (s *MultiSource) Window(n int) *MultiSource {
	s.window = n
	return s
}

// Paced switches the replay from as-fast-as-possible (the default,
// right for throughput tests and benchmarks) to stream-clock pacing:
// a chunk whose first sample lies at t seconds into its stream is not
// emitted before t seconds of wall clock have elapsed since the first
// Next. Every stream then delivers samples at its own rate in real
// time — the replay a live receiver fleet would produce, which is
// what a cluster drain rehearsal or latency measurement needs.
// NewLoadSource adopts the load spec's Pace field; Paced overrides
// either way. Returns the source for chaining.
func (s *MultiSource) Paced(on bool) *MultiSource {
	s.paced = on
	return s
}

// Open implements Source: compile every link. Rendering is lazy (a
// link simulates when its replay starts).
func (s *MultiSource) Open(ctx context.Context) (SourceInfo, error) {
	if err := ctx.Err(); err != nil {
		return SourceInfo{}, err
	}
	streams, err := s.build()
	if err != nil {
		return SourceInfo{}, err
	}
	if len(streams) == 0 {
		return SourceInfo{}, errors.New("passivelight: multi source compiled no links")
	}
	if s.chunk <= 0 {
		s.chunk = 1024
	}
	s.streams = streams
	window := s.window
	if window <= 0 || window > len(streams) {
		window = len(streams)
	}
	s.active = append([]*multiStream(nil), streams[:window]...)
	s.next = window
	s.cursor = 0
	// Chunks always carry their own rate (links may sample at
	// different rates); declare the common one when it exists.
	info := SourceInfo{Fs: streams[0].fs, Name: s.name}
	for _, st := range streams {
		if st.fs != info.Fs {
			info.Fs = 0
			break
		}
	}
	return info, nil
}

// Next implements Source: round-robin one chunk per live stream. The
// first chunk of every stream is a Reset, so re-used stream ids (or
// engine-evicted sessions) start a fresh decode epoch.
func (s *MultiSource) Next(ctx context.Context) (SourceChunk, error) {
	if err := ctx.Err(); err != nil {
		return SourceChunk{}, err
	}
	if s.streams == nil {
		return SourceChunk{}, errors.New("passivelight: source not opened")
	}
	if len(s.active) == 0 {
		return SourceChunk{}, io.EOF
	}
	if s.cursor >= len(s.active) {
		s.cursor = 0
	}
	st := s.active[s.cursor]
	if st.tr == nil {
		tr, err := st.link.Simulate()
		if err != nil {
			return SourceChunk{}, fmt.Errorf("passivelight: stream %d (%s): %w", st.info.ID, st.info.Name, err)
		}
		st.tr = tr
	}
	if s.paced {
		if s.start.IsZero() {
			s.start = time.Now()
		}
		// Round-robin keeps active streams within one chunk of each
		// other, so gating each chunk on its own stream clock paces the
		// whole interleave.
		due := s.start.Add(time.Duration(float64(st.pos) / st.fs * float64(time.Second)))
		if wait := time.Until(due); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return SourceChunk{}, ctx.Err()
			}
		}
	}
	hi := st.pos + s.chunk
	if hi > st.tr.Len() {
		hi = st.tr.Len()
	}
	out := SourceChunk{
		Session: st.info.ID,
		Fs:      st.fs,
		Samples: st.tr.Samples[st.pos:hi],
		Reset:   st.pos == 0,
	}
	st.pos = hi
	if st.pos >= st.tr.Len() {
		// Stream done: release the trace, admit the next pending one.
		st.tr = nil
		s.active = append(s.active[:s.cursor], s.active[s.cursor+1:]...)
		if s.next < len(s.streams) {
			s.active = append(s.active, s.streams[s.next])
			s.next++
		}
	} else {
		s.cursor++
	}
	return out, nil
}

// Close implements Source.
func (s *MultiSource) Close() error { return nil }

// Streams describes every link of the source, in replay-admission
// order. Valid after the pipeline opened the source.
func (s *MultiSource) Streams() []MultiStream {
	out := make([]MultiStream, len(s.streams))
	for i, st := range s.streams {
		out[i] = st.info
	}
	return out
}

// ChunkSource adapts a live feed: the producer sends SourceChunks on
// a channel (closing it to signal end of stream), the pipeline pulls
// them. Chunks may carry per-session ids and rates, so one ChunkSource
// can multiplex many physical receivers.
type ChunkSource struct {
	fs float64
	ch <-chan SourceChunk
}

// NewChunkSource wraps a channel of chunks as a source with the given
// default sample rate. Close the channel to end the stream.
func NewChunkSource(fs float64, ch <-chan SourceChunk) *ChunkSource {
	return &ChunkSource{fs: fs, ch: ch}
}

// Open implements Source.
func (s *ChunkSource) Open(ctx context.Context) (SourceInfo, error) {
	if s.ch == nil {
		return SourceInfo{}, errors.New("passivelight: chunk source has no channel")
	}
	return SourceInfo{Fs: s.fs, Name: "chunks"}, nil
}

// Next implements Source.
func (s *ChunkSource) Next(ctx context.Context) (SourceChunk, error) {
	select {
	case c, ok := <-s.ch:
		if !ok {
			return SourceChunk{}, io.EOF
		}
		return c, nil
	case <-ctx.Done():
		return SourceChunk{}, ctx.Err()
	}
}

// Close implements Source.
func (s *ChunkSource) Close() error { return nil }

// NodeHello is a receiver node's registration (id, position, name) as
// seen by a NetSource.
type NodeHello = rxnet.Hello

// NetSource accepts receiver-node connections speaking the rxnet
// frame protocol and yields their raw SampleChunk streams — the
// paper's testbed inverted, with all DSP running wherever the
// pipeline runs. Each (node, stream) pair becomes one pipeline
// session; reconnects and sequence gaps arrive as Reset chunks so
// decode epochs cannot splice.
type NetSource struct {
	l       *rxnet.ChunkListener
	onHello func(NodeHello)
}

// NetSourceConfig tunes a NetSource's ingest path.
type NetSourceConfig struct {
	// QueueDepth bounds the ingest queue between the network readers
	// and the pipeline (in chunks). Zero selects 64.
	QueueDepth int
	// DropOnFull discards (and counts) chunks arriving while the
	// ingest queue is full instead of exerting TCP backpressure on the
	// nodes — lossy ingest for deployments where a stalled pipeline
	// must not stall the receiver network. Default false: lossless.
	DropOnFull bool
	// Telemetry registers the listener's ingest series (per-node
	// ingest bytes, frame errors, queue depth, dropped chunks) into
	// the registry — typically the same one passed to WithTelemetry.
	Telemetry *Telemetry
	// PaceGuardIdle, when positive, is this engine's session idle
	// timeout: if an arriving chunk spans at least that much signal
	// time (its pacing gap would expire idle sessions between
	// chunks), the listener warns once and publishes the worst ratio
	// as pl_rxnet_pace_gap_ratio.
	PaceGuardIdle time.Duration
	// Logf receives transport diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

// ListenSource starts a NetSource listening on addr ("host:port";
// empty port picks an ephemeral one) with default config: lossless
// ingest, no telemetry.
func ListenSource(addr string) (*NetSource, error) {
	return ListenSourceConfig(addr, NetSourceConfig{})
}

// ListenSourceConfig starts a NetSource with explicit ingest
// configuration.
func ListenSourceConfig(addr string, cfg NetSourceConfig) (*NetSource, error) {
	l, err := rxnet.ListenChunksConfig(addr, rxnet.ChunkListenerConfig{
		Logf:          cfg.Logf,
		QueueDepth:    cfg.QueueDepth,
		DropOnFull:    cfg.DropOnFull,
		Metrics:       cfg.Telemetry,
		PaceGuardIdle: cfg.PaceGuardIdle,
	})
	if err != nil {
		return nil, err
	}
	return &NetSource{l: l}, nil
}

// Addr returns the bound listen address (for nodes to Dial).
func (s *NetSource) Addr() string { return s.l.Addr() }

// DroppedChunks reports how many chunks a DropOnFull source has
// discarded because the ingest queue was full (always 0 otherwise).
func (s *NetSource) DroppedChunks() int64 { return s.l.DroppedChunks() }

// DuplicateChunks reports how many replayed chunks the ingest side
// discarded because the stream's continuity cursor had already
// consumed them — a router failover replays its unacked buffer, and
// everything this engine already decoded lands here instead of being
// fed (and counted) as fresh samples.
func (s *NetSource) DuplicateChunks() int64 { return s.l.DuplicateChunks() }

// OnHello registers a callback invoked (from the pipeline's pull
// goroutine) for each node registration — e.g. to register node
// positions with a track-fusion aggregator. Returns the source for
// chaining.
func (s *NetSource) OnHello(fn func(NodeHello)) *NetSource {
	s.onHello = fn
	return s
}

// Drain switches the source into cluster drain mode: connected peers
// are notified, new streams are refused (NACKed back to the router so
// it re-routes them) and in-flight streams keep flowing so they finish
// losslessly. Idempotent.
func (s *NetSource) Drain() { s.l.Drain() }

// Draining reports whether the source is refusing new streams.
func (s *NetSource) Draining() bool { return s.l.Draining() }

// DrainRequests signals drain orders arriving over the wire (an ops
// client asking this engine to drain). Level-triggered and coalesced.
func (s *NetSource) DrainRequests() <-chan struct{} { return s.l.DrainRequests() }

// Sessions lists the streams currently flowing through the source,
// for drain bookkeeping.
func (s *NetSource) Sessions() []uint64 { return s.l.Sessions() }

// ForceRedirect evicts one in-flight stream: the pipeline flushes and
// releases its decode session, and the stream's router replays the
// unconsumed remainder on another engine. Reports whether the stream
// was known. Used to finish a drain that must not wait for streams to
// end naturally.
func (s *NetSource) ForceRedirect(session uint64) bool { return s.l.ForceRedirect(session) }

// AckSession confirms consumption upstream: everything received on the
// session so far has been decoded, so a cluster router can trim the
// stream's replay buffer — if this engine later dies, only unacked
// chunks are replayed to the failover owner. Call it when a session's
// packet decodes. Reports whether the stream was still known.
func (s *NetSource) AckSession(session uint64) bool { return s.l.AckSession(session) }

// Throttle flips the source's backpressure signal: paused sends a
// Throttle frame to every connected peer (a cluster router relays it
// to the receiver nodes feeding this engine, which pause or shed at
// the edge), resume releases them. Idempotent per state.
func (s *NetSource) Throttle(paused bool) { s.l.SetThrottled(paused) }

// Throttled reports whether the source currently signals
// backpressure.
func (s *NetSource) Throttled() bool { return s.l.Throttled() }

// StreamResets reports how many continuity resets the ingest side has
// observed (reconnects, sequence gaps, shed chunks) — the "counted,
// never silent" loss ledger.
func (s *NetSource) StreamResets() int64 { return s.l.StreamResets() }

// AutoThrottle ties the throttle signal to a load measure with
// hysteresis: a monitor goroutine samples occupancy (typically
// Pipeline.Occupancy) every interval, engages the throttle at high
// and releases it back below low. Zero interval selects 250 ms; low
// defaults to high/2 when not below high. The returned stop function
// ends the monitor and releases any engaged throttle.
func (s *NetSource) AutoThrottle(occupancy func() float64, high, low float64, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	if low <= 0 || low >= high {
		low = high / 2
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				occ := occupancy()
				if occ >= high && !s.Throttled() {
					s.Throttle(true)
				} else if occ <= low && s.Throttled() {
					s.Throttle(false)
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
			if s.Throttled() {
				s.Throttle(false)
			}
		})
	}
}

// Open implements Source. Network streams carry their own sample
// rates, so the default rate is zero.
func (s *NetSource) Open(ctx context.Context) (SourceInfo, error) {
	return SourceInfo{Fs: 0, Name: "rxnet"}, nil
}

// Next implements Source. It never returns io.EOF on its own — a
// network source ends when the context is canceled or the source is
// closed.
func (s *NetSource) Next(ctx context.Context) (SourceChunk, error) {
	for {
		select {
		case ev, ok := <-s.l.Chunks():
			if !ok {
				return SourceChunk{}, io.EOF
			}
			if ev.End {
				// A cluster router (or ForceRedirect) ended the stream:
				// an empty Reset chunk makes the pipeline flush and
				// release the decode session without feeding samples.
				return SourceChunk{Session: ev.Session, Reset: true}, nil
			}
			chunk := SourceChunk{Session: ev.Session, Fs: ev.Fs, Samples: ev.Samples, Reset: ev.Reset}
			if ev.Buf != nil {
				// Zero-copy path: the samples still live in the
				// listener's pooled buffer; the pipeline releases it
				// after Engine.Feed has copied them into the session
				// ring.
				chunk.release = ev.Buf.Release
			}
			return chunk, nil
		case h, ok := <-s.l.Hellos():
			if ok && s.onHello != nil {
				s.onHello(h)
			}
		case <-ctx.Done():
			return SourceChunk{}, ctx.Err()
		}
	}
}

// Close implements Source, stopping the listener and all node
// connections.
func (s *NetSource) Close() error { return s.l.Close() }
