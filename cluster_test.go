package passivelight

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"passivelight/internal/cluster"
	"passivelight/internal/rxnet"
	"passivelight/internal/scenario"
)

// clusterEngine is one in-process decode engine of the cluster tier:
// a NetSource on a real socket plus a pipeline counting what it
// decodes — the test-sized equivalent of `plnet -mode engine`.
type clusterEngine struct {
	id     string
	src    *NetSource
	pipe   *Pipeline
	cancel context.CancelFunc
	done   chan struct{}

	decoded atomic.Int64
	errs    atomic.Int64
}

func startClusterEngine(t *testing.T, id string) *clusterEngine {
	t.Helper()
	src, err := ListenSourceConfig("127.0.0.1:0", NetSourceConfig{})
	if err != nil {
		t.Fatalf("engine %s listen: %v", id, err)
	}
	e := &clusterEngine{id: id, src: src, done: make(chan struct{})}
	// The idle timeout must sit far above any scheduling stall between
	// a session's chunks: under the race detector a loaded runtime can
	// starve a sender for hundreds of milliseconds, and a reap
	// mid-packet splits the session (a decode error on the residue, or
	// a lost packet). 2 s keeps the reaper real without racing the
	// fleet load.
	pipe, err := NewPipeline(src, Threshold(),
		WithExpectedSymbols(8),
		WithIdleTimeout(2*time.Second),
	)
	if err != nil {
		t.Fatalf("engine %s pipeline: %v", id, err)
	}
	e.pipe = pipe
	ctx, cancel := context.WithCancel(context.Background())
	e.cancel = cancel
	events, err := pipe.Stream(ctx)
	if err != nil {
		t.Fatalf("engine %s stream: %v", id, err)
	}
	go func() {
		defer close(e.done)
		for ev := range events {
			if ev.Err != nil {
				e.errs.Add(1)
				continue
			}
			e.decoded.Add(1)
			// Confirm consumption upstream, as plnet's engine mode
			// does: the router trims the session's replay buffer so an
			// eviction-time failover never re-decodes what this engine
			// already delivered.
			src.AckSession(ev.Session)
		}
	}()
	t.Cleanup(func() { e.stop() })
	return e
}

// stop tears the engine down (idempotent): cancel the pipeline, wait
// for its event forwarder to exit.
func (e *clusterEngine) stop() {
	e.cancel()
	<-e.done
}

// replayClusterSession streams one expanded session's links to the
// router over its own node connection, exactly as `plnet -mode load
// -router` does.
func replayClusterSession(ctx context.Context, target string, k int, spec scenario.Spec) error {
	world, err := spec.CompileMulti()
	if err != nil {
		return err
	}
	node, err := rxnet.Dial(ctx, target, rxnet.Hello{NodeID: uint32(k + 1), Name: spec.Name})
	if err != nil {
		return err
	}
	defer node.Close()
	for _, l := range world.Links {
		tr, err := l.Link.Simulate()
		if err != nil {
			return fmt.Errorf("link %s: %w", l.Name, err)
		}
		for chunk := range tr.Chunks(2048) {
			if err := node.StreamChunk(uint32(l.Index), tr.Fs, chunk); err != nil {
				return err
			}
		}
	}
	return nil
}

// replayClusterPhase fans a slice of sessions through the router
// concurrently and waits for every send to complete.
func replayClusterPhase(t *testing.T, target string, specs []scenario.Spec, offset int) {
	t.Helper()
	sem := make(chan struct{}, 16)
	var wg sync.WaitGroup
	errs := make(chan error, len(specs))
	for i, spec := range specs {
		wg.Add(1)
		go func(k int, spec scenario.Spec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := replayClusterSession(context.Background(), target, k, spec); err != nil {
				errs <- fmt.Errorf("session %d: %w", k, err)
			}
		}(offset+i, spec)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func waitDecoded(t *testing.T, what string, want int64, engines ...*clusterEngine) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	total := func() int64 {
		var n int64
		for _, e := range engines {
			n += e.decoded.Load()
		}
		return n
	}
	for time.Now().Before(deadline) {
		if total() >= want {
			if got := total(); got > want {
				t.Fatalf("%s: decoded %d packets, want exactly %d (duplicate decode)", what, got, want)
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	var parts []string
	for _, e := range engines {
		parts = append(parts, fmt.Sprintf("%s=%d", e.id, e.decoded.Load()))
	}
	t.Fatalf("%s: decoded %d of %d packets (%v)", what, total(), want, parts)
}

// TestClusterRollingRestartZeroLoss is the acceptance lock for the
// cluster tier: the 128-session fleet load replayed over real sockets
// against a 2-engine cluster loses no packets through a full rolling
// restart — drain engine A mid-phase, hand a pinned straggler off
// explicitly, take A down, run against B alone, rejoin a restarted A
// — with the handoffs visible in the router's pl_cluster_* metrics.
func TestClusterRollingRestartZeroLoss(t *testing.T) {
	load, err := scenario.GetLoad("fleet-load")
	if err != nil {
		t.Fatal(err)
	}
	load.Sessions = 128
	specs, err := load.Expand()
	if err != nil {
		t.Fatal(err)
	}

	a := startClusterEngine(t, "engine-a")
	b := startClusterEngine(t, "engine-b")
	reg := NewTelemetry()
	ring, err := cluster.NewRing(0,
		cluster.Member{ID: "engine-a", Addr: a.src.Addr()},
		cluster.Member{ID: "engine-b", Addr: b.src.Addr()},
	)
	if err != nil {
		t.Fatal(err)
	}
	router, err := cluster.NewRouter(cluster.RouterConfig{Ring: ring, Metrics: reg, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := router.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	// Phase 1a: 32 sessions against the healthy pair — the ring splits
	// them across both engines, so A ends up owning live streams.
	phase1a := specs[:32]
	replayClusterPhase(t, addr, phase1a, 0)
	waitDecoded(t, "phase 1a (healthy pair)", int64(len(phase1a)), a, b)
	if a.decoded.Load() == 0 || b.decoded.Load() == 0 {
		t.Fatalf("ring sent all of phase 1a to one engine (a=%d b=%d)",
			a.decoded.Load(), b.decoded.Load())
	}

	// Phase 1b: A starts draining; new sessions route away to B while
	// anything in flight on A would keep flowing.
	a.src.Drain()
	phase1b := specs[32:64]
	replayClusterPhase(t, addr, phase1b, 32)
	waitDecoded(t, "phase 1b (A draining)", int64(len(phase1a)+len(phase1b)), a, b)

	// Drain runbook straggler step: A's fully-delivered streams still
	// hold continuity cursors (node connections outlive the packets).
	// ForceRedirect flushes each and NACKs the router, which moves the
	// route to B — the session handoff, counted in pl_cluster_*. Every
	// packet already decoded, so the handoffs are provably lossless.
	var redirected bool
	for _, s := range a.src.Sessions() {
		if a.src.ForceRedirect(s) {
			redirected = true
		}
	}
	if !redirected {
		t.Fatal("no stream to force-redirect off the draining engine")
	}
	// Settle before shutdown (as the engine's drain loop does): closing
	// A's listener too fast can discard the NACKs still in flight to
	// the router.
	settle := time.Now().Add(10 * time.Second)
	for reg.Snapshot().Counters["pl_cluster_handoffs_total"] == 0 {
		if time.Now().After(settle) {
			t.Fatal("router never registered the redirect handoffs")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Phase 2: engine A goes down entirely (pipeline cancel closes its
	// listener). Every new session must land on B, error-free.
	if !a.src.Draining() {
		t.Fatal("engine A should be draining before shutdown")
	}
	a.stop()
	phase2 := specs[64:96]
	replayClusterPhase(t, addr, phase2, 64)
	// a's counter is frozen by stop(); the cumulative total isolates
	// phase 2's packets without caring how phase 1 split across a/b.
	waitDecoded(t, "phase 2 (A down)", int64(64+len(phase2)), a, b)

	// Phase 3: a restarted A rejoins on a fresh address via Rebalance;
	// new sessions spread across both engines again.
	a2 := startClusterEngine(t, "engine-a2")
	ring2, err := cluster.NewRing(0,
		cluster.Member{ID: "engine-a2", Addr: a2.src.Addr()},
		cluster.Member{ID: "engine-b", Addr: b.src.Addr()},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := router.Rebalance(ring2, false); err != nil {
		t.Fatal(err)
	}
	phase3 := specs[96:]
	replayClusterPhase(t, addr, phase3, 96)
	waitDecoded(t, "phase 3 (A rejoined)", int64(load.Sessions), a, b, a2)

	// Zero loss, fleet-wide: every session's packet decoded exactly
	// once, nothing dropped, no decode errors, and the restarted
	// engine actually took new streams.
	total := a.decoded.Load() + b.decoded.Load() + a2.decoded.Load()
	if total != int64(load.Sessions) {
		t.Fatalf("decoded %d packets for %d sessions", total, load.Sessions)
	}
	for _, e := range []*clusterEngine{a, b, a2} {
		if n := e.errs.Load(); n != 0 {
			t.Errorf("engine %s: %d decode errors", e.id, n)
		}
	}
	if n := b.src.DroppedChunks() + a2.src.DroppedChunks(); n != 0 {
		t.Errorf("listeners dropped %d chunks", n)
	}
	if a2.decoded.Load() == 0 {
		t.Error("restarted engine decoded nothing after rejoining the ring")
	}
	snap := reg.Snapshot()
	if got := snap.Counters["pl_cluster_handoffs_total"]; got < 1 {
		t.Errorf("pl_cluster_handoffs_total = %d, want >= 1", got)
	}
	if got := snap.Counters["pl_cluster_chunks_forwarded_total"]; got == 0 {
		t.Error("pl_cluster_chunks_forwarded_total = 0; router forwarded nothing?")
	}
	if got := snap.Counters["pl_cluster_streams_routed_total"]; got < int64(load.Sessions) {
		t.Errorf("pl_cluster_streams_routed_total = %d, want >= %d", got, load.Sessions)
	}
	t.Logf("fleet: a=%d a2=%d b=%d decoded; handoffs=%d nacks=%d replayed=%d failovers=%d",
		a.decoded.Load(), a2.decoded.Load(), b.decoded.Load(),
		snap.Counters["pl_cluster_handoffs_total"],
		snap.Counters["pl_cluster_nacks_received_total"],
		snap.Counters["pl_cluster_replayed_chunks_total"],
		snap.Counters["pl_cluster_failovers_total"])
}
