package passivelight

import (
	"net/http"

	"passivelight/internal/capacity"
	"passivelight/internal/coding"
	"passivelight/internal/core"
	"passivelight/internal/decoder"
	"passivelight/internal/frontend"
	"passivelight/internal/scenario"
	"passivelight/internal/stream"
	"passivelight/internal/telemetry"
	"passivelight/internal/trace"
)

// Packet is a passive packet payload (preamble handling is implicit).
type Packet = coding.Packet

// Symbol is a reflective stripe value (High or Low).
type Symbol = coding.Symbol

// Stripe symbol values.
const (
	Low  = coding.Low
	High = coding.High
)

// NewPacket parses a bit string such as "10" into a Packet.
func NewPacket(bits string) (Packet, error) { return coding.NewPacket(bits) }

// MustPacket is NewPacket that panics on invalid input.
func MustPacket(bits string) Packet { return coding.MustPacket(bits) }

// Codebook selects payloads with a guaranteed minimum pairwise
// Hamming distance (Sec. 4.2 of the paper).
type Codebook = coding.Codebook

// NewCodebook builds a codebook of nBits-long words at the given
// minimum distance; maxWords <= 0 keeps all found words.
func NewCodebook(nBits, minDist, maxWords int) (*Codebook, error) {
	return coding.NewCodebook(nBits, minDist, maxWords)
}

// Link is a fully configured passive optical link (scene + receiver +
// front end).
type Link = core.Link

// Scenario is a declarative world: ambient optics, receiver
// placement, noise/weather profile and mobile objects with mobility
// models, compiled on demand into a renderable link. Build one by
// hand, load one from JSON, or take a preset from ScenarioPreset;
// feed it to a pipeline with NewScenarioSource.
type Scenario = scenario.Spec

// Scenario sub-specs, for building Scenario literals.
type (
	// ScenarioOptics selects the ambient light source.
	ScenarioOptics = scenario.OpticsSpec
	// ScenarioReceiver places the receiver and selects its device.
	ScenarioReceiver = scenario.ReceiverSpec
	// ScenarioNoise selects the impairment profile (plus fog).
	ScenarioNoise = scenario.NoiseSpec
	// ScenarioFog configures the fog stage.
	ScenarioFog = scenario.FogSpec
	// ScenarioObject is one mobile element.
	ScenarioObject = scenario.ObjectSpec
	// ScenarioMobility is a declarative trajectory.
	ScenarioMobility = scenario.MobilitySpec
	// ScenarioSpeedSegment is one piecewise-speed segment.
	ScenarioSpeedSegment = scenario.SpeedSegmentSpec
	// ScenarioStop is one dwell of a stop-and-go trajectory.
	ScenarioStop = scenario.StopSpec
	// ScenarioDecode hints the intended decode strategy.
	ScenarioDecode = scenario.DecodeSpec
	// ScenarioWorld is a compiled scenario (link + encoded packets).
	ScenarioWorld = scenario.Compiled
	// ScenarioPacket is one payload physically present in a scenario.
	ScenarioPacket = scenario.TagPacket
	// ScenarioEntry is one registry preset.
	ScenarioEntry = scenario.Entry
	// ScenarioMultiWorld is a scenario compiled to one link per
	// receiver over a single shared world (Scenario.CompileMulti).
	ScenarioMultiWorld = scenario.MultiCompiled
	// ScenarioLink is one receiver's link of a ScenarioMultiWorld.
	ScenarioLink = scenario.CompiledLink
	// ScenarioLoad is a declarative load spec: a base scenario fanned
	// out into N staggered, independently seeded sessions. Feed one to
	// a pipeline with NewLoadSource.
	ScenarioLoad = scenario.Load
	// ScenarioLoadEntry is one load-registry preset.
	ScenarioLoadEntry = scenario.LoadEntry
)

// ScenarioStreamID composes the stable stream id of (session,
// receiver) — the id MultiSource chunks and Pipeline events carry.
func ScenarioStreamID(session, receiver int) uint64 {
	return scenario.StreamID(session, receiver)
}

// ScenarioStreamSession recovers the load-session half of a stream id.
func ScenarioStreamSession(id uint64) int { return scenario.StreamSession(id) }

// ScenarioStreamReceiver recovers the receiver half of a stream id.
func ScenarioStreamReceiver(id uint64) int { return scenario.StreamReceiver(id) }

// ScenarioLoadPreset builds a named load preset from the load
// registry ("fleet-load", ...). Callers may override Sessions and the
// stagger policy on the returned value.
func ScenarioLoadPreset(name string) (ScenarioLoad, error) { return scenario.GetLoad(name) }

// ScenarioLoadPresets lists the load-registry presets sorted by name.
func ScenarioLoadPresets() []ScenarioLoadEntry { return scenario.LoadEntries() }

// RegisterScenarioLoad adds a named load preset to the registry.
func RegisterScenarioLoad(name, description string, build func() (ScenarioLoad, error)) error {
	return scenario.RegisterLoad(name, description, build)
}

// ScenarioPreset builds a named preset from the scenario registry
// ("indoor-bench", "outdoor-pass", "car-signature", "collision",
// "multi-lane", "tag-fleet", "weather-sweep", ...).
func ScenarioPreset(name string) (Scenario, error) { return scenario.Get(name) }

// ScenarioPresets lists the registry presets sorted by name.
func ScenarioPresets() []ScenarioEntry { return scenario.Entries() }

// RegisterScenario adds a named preset to the registry.
func RegisterScenario(name, description string, build func() (Scenario, error)) error {
	return scenario.Register(name, description, build)
}

// IndoorBench is the paper's Sec. 4 controlled bench: an LED lamp and
// receiver at equal height, a tag passing underneath. It is the typed
// parameter form of the "indoor-bench" scenario family (Spec()
// exposes the declarative form).
type IndoorBench = scenario.BenchParams

// OutdoorCarPass is the paper's Sec. 5 application: a tagged car
// passing under a pole-mounted receiver in daylight — the typed
// parameter form of the "outdoor-pass" scenario family.
type OutdoorCarPass = scenario.OutdoorParams

// CollisionBench is the Sec. 4.3 two-packet collision world — the
// typed parameter form of the "collision" scenario family.
type CollisionBench = scenario.CollisionParams

// RunResult is the outcome of an end-to-end run.
type RunResult = core.RunResult

// DecodeOptions tunes the adaptive threshold decoder.
type DecodeOptions = decoder.Options

// DecodeResult is the threshold decoder output.
type DecodeResult = decoder.Result

// TwoPhaseResult is the outdoor (car-shape + stripe) decode output.
type TwoPhaseResult = decoder.TwoPhaseResult

// Classifier matches distorted waveforms against clean baselines with
// DTW (Sec. 4.2).
type Classifier = decoder.Classifier

// CollisionReport is the FFT collision analysis output (Sec. 4.3).
type CollisionReport = decoder.CollisionReport

// CollisionOptions tunes the FFT collision analyzer.
type CollisionOptions = decoder.CollisionOptions

// Trace is a sampled RSS time series.
type Trace = trace.Trace

// ReceiverDevice is an optical receiver model (photodiode gain levels
// or the RX-LED of Sec. 4.4).
type ReceiverDevice = frontend.Receiver

// Receiver devices from the paper's Fig. 11.
func PDReceiver(g frontend.GainLevel) ReceiverDevice { return frontend.PD(g) }

// RXLEDReceiver returns the LED-as-receiver model.
func RXLEDReceiver() ReceiverDevice { return frontend.RXLED() }

// Photodiode gain levels.
const (
	GainG1 = frontend.G1
	GainG2 = frontend.G2
	GainG3 = frontend.G3
)

// SelectReceiver picks the most sensitive receiver that does not
// saturate at the given ambient level (the paper's dual-receiver
// policy). With no candidates, the four Fig. 11 devices are used.
func SelectReceiver(noiseFloorLux float64, candidates ...ReceiverDevice) (ReceiverDevice, error) {
	return frontend.SelectReceiver(noiseFloorLux, candidates...)
}

// RunEndToEnd simulates a link and decodes the result, comparing the
// decoded payload against the packet physically present on the tag.
//
// Deprecated: build a Pipeline over NewLinkSource (or
// NewBenchSource/NewCarPassSource) and compare events against the
// source's Packet; the pipeline adds context cancellation, sinks and
// the codebook/receiver-policy stages.
func RunEndToEnd(l *Link, sent Packet, opt DecodeOptions) (RunResult, error) {
	return core.EndToEnd(l, sent, opt)
}

// Decode runs the paper's Sec. 4.1 adaptive threshold decoder on a
// trace.
//
// Deprecated: use NewPipeline(NewTraceSource(tr, 0), Threshold(),
// WithDecodeOptions(opt), WithPreRoll(-1)) — bit-identical output,
// one composable surface. Decode remains as a thin wrapper over the
// same state machine.
func Decode(tr *Trace, opt DecodeOptions) (DecodeResult, error) {
	return decoder.Decode(tr, opt)
}

// DecodeCarPass runs the Sec. 5 two-phase decode: detect the car's
// optical signature (long-duration preamble), then threshold-decode
// the roof tag.
//
// Deprecated: use NewPipeline with the TwoPhase strategy.
func DecodeCarPass(tr *Trace, opt DecodeOptions) (TwoPhaseResult, error) {
	return decoder.DecodeCarPass(tr, opt)
}

// NewClassifier builds a DTW waveform classifier; length <= 0 selects
// 256 resampled points. Bind it to a stream with the DTWClassify
// pipeline strategy, or call Classify directly.
func NewClassifier(length int) *Classifier { return decoder.NewClassifier(length) }

// AnalyzeCollision runs the Sec. 4.3 FFT analysis on a trace.
//
// Deprecated: use NewPipeline with the Collision strategy.
func AnalyzeCollision(tr *Trace, opt CollisionOptions) (CollisionReport, error) {
	return decoder.AnalyzeCollision(tr, opt)
}

// StreamConfig tunes one streaming decode session (sample rate,
// decoder options, pre-roll / quiet-hold windows).
type StreamConfig = stream.Config

// StreamDetection is one decoded packet event from a streaming
// session.
type StreamDetection = stream.Detection

// StreamDecoder is a single online decode session: feed RSS samples
// in chunks, get detections as packets complete, in bounded memory.
type StreamDecoder = stream.Decoder

// StreamEngineConfig tunes the concurrent session manager (worker
// pool, shard count, per-session queues, idle eviction).
type StreamEngineConfig = stream.EngineConfig

// StreamEngine multiplexes thousands of concurrent streaming decode
// sessions over a sharded worker pool (per-shard session table, lock
// and run queue; batched detection delivery).
type StreamEngine = stream.Engine

// StreamStats is the engine's operational snapshot (sessions,
// samples/s, detections, drops).
type StreamStats = stream.Stats

// SessionStats summarizes one streaming decode session (samples fed,
// detections, errors, buffered) — the payload of WithSessionEnd.
type SessionStats = stream.SessionStats

// NewStreamDecoder builds a streaming decode session. With
// PreRollSec < 0 (batch-equivalent mode, unbounded memory) a chunked
// stream decode of a trace is bit-identical to the batch Decode of
// the same trace; the default online mode bounds memory by
// segmenting around detected activity, so it decodes the same
// packets but is not guaranteed sample-for-sample batch parity.
//
// Deprecated: use NewPipeline over a NewChunkSource (or any other
// source); the same session machinery runs behind Pipeline.Stream
// with context cancellation and sinks.
func NewStreamDecoder(cfg StreamConfig) (*StreamDecoder, error) { return stream.NewDecoder(cfg) }

// NewStreamEngine starts a concurrent streaming decode engine.
//
// Deprecated: the engine is the execution substrate behind
// Pipeline.Run/Pipeline.Stream; build a Pipeline over a multi-session
// source (ListenSource, NewChunkSource) instead of driving the engine
// directly.
func NewStreamEngine(cfg StreamEngineConfig) (*StreamEngine, error) { return stream.NewEngine(cfg) }

// RecycleDetections returns a batch received from StreamEngine.Batches
// (or Pipeline internals) to the engine's slice pool once the caller
// is done with every element. Optional — unreturned batches are simply
// garbage-collected — but consumers that process batches promptly and
// do not retain Detection values can call it to keep the steady-state
// feed path allocation-free.
func RecycleDetections(batch []StreamDetection) { stream.RecycleBatch(batch) }

// Telemetry is a metrics registry: named counters, gauges and
// latency histograms that render as Prometheus text or JSON. Pass one
// to a pipeline with WithTelemetry (and to ListenSourceConfig for
// ingest metrics); serve it live with TelemetryHandler. Registration
// is get-or-create, so one registry can be shared across every layer
// of a process.
type Telemetry = telemetry.Registry

// NewTelemetry builds an empty metrics registry.
func NewTelemetry() *Telemetry { return telemetry.NewRegistry() }

// TelemetryHealth aggregates named degradation checks for the
// /healthz endpoint served by TelemetryHandler.
type TelemetryHealth = telemetry.Health

// NewTelemetryHealth builds an empty health check set (always
// healthy until checks are added).
func NewTelemetryHealth() *TelemetryHealth { return telemetry.NewHealth() }

// TelemetrySnapshot is the JSON form of a Telemetry registry.
type TelemetrySnapshot = telemetry.Snapshot

// TelemetryHistogram is a point-in-time distribution summary
// (count/sum/min/max plus p50/p90/p99) — the schema shared by the
// /metrics.json endpoint and benchdump's committed BENCH files.
type TelemetryHistogram = telemetry.HistogramSnapshot

// TelemetryHandler serves a registry over HTTP: /metrics (Prometheus
// text), /metrics.json (TelemetrySnapshot), /healthz (200 "ok" or
// 503 "degraded" per the health checks). health may be nil.
func TelemetryHandler(t *Telemetry, health *TelemetryHealth) http.Handler {
	return telemetry.Handler(t, health)
}

// CapacitySweep is the configuration for decodable-region and
// throughput measurements (Fig. 6).
type CapacitySweep = capacity.SweepConfig

// DecodableRegion sweeps symbol widths and reports the maximal
// decodable height for each (Fig. 6(a)).
func DecodableRegion(widths []float64, hLo, hHi, hStep float64, cfg CapacitySweep) ([]capacity.RegionPoint, error) {
	return capacity.DecodableRegion(widths, hLo, hHi, hStep, cfg)
}

// ThroughputCurve reports symbols/second against receiver height
// (Fig. 6(b)).
func ThroughputCurve(heights []float64, wLo, wHi, wStep float64, cfg CapacitySweep) ([]capacity.ThroughputPoint, error) {
	return capacity.ThroughputCurve(heights, wLo, wHi, wStep, cfg)
}
