package passivelight

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"passivelight/internal/coding"
	"passivelight/internal/decoder"
	"passivelight/internal/stream"
	"passivelight/internal/telemetry"
	"passivelight/internal/trace"
)

// ClassifierMatch is one DTW classification candidate (label +
// distance, ascending).
type ClassifierMatch = decoder.Match

// Event is one output of a running Pipeline. Streaming strategies
// (Threshold, TwoPhase) fill the embedded detection; whole-stream
// strategies add their analysis: Collision fills Collision,
// DTWClassify fills Label/Matches. WithCodebook fills
// CodeIndex/CodeDistance on successfully decoded events.
type Event struct {
	StreamDetection
	// Label is the nearest-baseline label from a DTWClassify
	// pipeline.
	Label string
	// Matches is the full ordered candidate list from DTWClassify.
	Matches []ClassifierMatch
	// Collision is the Sec. 4.3 frequency-domain report from a
	// Collision pipeline.
	Collision *CollisionReport
	// CodeIndex is the nearest codeword index when WithCodebook is
	// set (-1 otherwise or on decode errors); CodeDistance is its
	// Hamming distance to the decoded bits (0 = exact read).
	CodeIndex    int
	CodeDistance int
}

// strategyKind selects the decode algorithm bound to a pipeline.
type strategyKind int

const (
	strategyThreshold strategyKind = iota + 1
	strategyTwoPhase
	strategyCollision
	strategyDTW
)

// Strategy selects the decode algorithm a Pipeline binds to its
// source. Threshold and TwoPhase run online on the streaming engine
// (bounded memory, many concurrent sessions); Collision and
// DTWClassify are whole-stream analyses that buffer each session and
// run at end of stream.
type Strategy struct {
	kind       strategyKind
	collision  CollisionOptions
	classifier *Classifier
}

// Threshold decodes with the paper's Sec. 4.1 adaptive threshold
// algorithm (per-packet tau_r/tau_t).
func Threshold() Strategy { return Strategy{kind: strategyThreshold} }

// TwoPhase decodes with the paper's Sec. 5 outdoor algorithm: the
// car's optical signature as a long-duration preamble, then the
// roof-tag stripe decode.
func TwoPhase() Strategy { return Strategy{kind: strategyTwoPhase} }

// Collision analyzes each stream with the Sec. 4.3 FFT collision
// analyzer instead of decoding it; events carry the spectral report.
func Collision(opt CollisionOptions) Strategy {
	return Strategy{kind: strategyCollision, collision: opt}
}

// DTWClassify matches each stream against the classifier's clean
// baselines with DTW (Sec. 4.2); events carry the ranked labels.
func DTWClassify(c *Classifier) Strategy {
	return Strategy{kind: strategyDTW, classifier: c}
}

// StrategyForScenario maps a scenario's decode hint onto a pipeline
// strategy. Only the streaming hints are data-only: "threshold" and
// "two-phase" resolve directly. "collision" and "dtw" need options or
// a baseline database (build Collision/DTWClassify yourself), and
// "shape"/"none" have no pipeline form — those return an error naming
// the hint, so generic drivers (plsim -load, plnet -mode load) fail
// with the same message.
func StrategyForScenario(decode ScenarioDecode) (Strategy, error) {
	switch decode.Strategy {
	case "threshold":
		return Threshold(), nil
	case "two-phase":
		return TwoPhase(), nil
	default:
		return Strategy{}, fmt.Errorf("passivelight: decode hint %q has no data-only pipeline strategy (want threshold | two-phase)", decode.Strategy)
	}
}

func (s Strategy) String() string {
	switch s.kind {
	case strategyThreshold:
		return "threshold"
	case strategyTwoPhase:
		return "two-phase"
	case strategyCollision:
		return "collision"
	case strategyDTW:
		return "dtw-classify"
	default:
		return "invalid"
	}
}

// Pipeline binds a Source to a decode Strategy plus sinks: one
// composable surface over the batch, streaming and two-phase decode
// paths. Configure with functional options, then call Run (collect
// everything) or Stream (consume events as they happen); both honor
// context cancellation end to end. The streaming engine is the
// execution substrate: every chunk is routed to a per-session decoder
// on a worker pool, so one pipeline serves a single recorded trace
// and a thousand live receiver nodes with the same code path.
//
// A Pipeline is single-shot: Run or Stream may be called once.
type Pipeline struct {
	src   Source
	strat Strategy
	cfg   pipeConfig

	started atomic.Bool

	mu     sync.Mutex
	engine *stream.Engine
	err    error

	samplesIn atomic.Int64
	tel       *pipeTel
}

// pipeTel is the pipeline's own telemetry surface, one per-strategy
// label set over the shared registry. The engine contributes its own
// pl_engine_* series separately (wired through EngineConfig.Metrics).
type pipeTel struct {
	events  *telemetry.Counter
	errors  *telemetry.Counter
	latency *telemetry.Histogram
}

func newPipeTel(reg *telemetry.Registry, strategy string) *pipeTel {
	label := fmt.Sprintf("{strategy=%q}", strategy)
	return &pipeTel{
		events: reg.Counter("pl_pipeline_events_total"+label,
			"Events emitted by the pipeline (decode errors included)."),
		errors: reg.Counter("pl_pipeline_event_errors_total"+label,
			"Emitted events that carry a decode/analysis error."),
		latency: reg.Histogram("pl_pipeline_detection_latency_ns"+label,
			"Chunk arrival to event emit on the pipeline forwarder, nanoseconds."),
	}
}

// NewPipeline binds a source to a decode strategy.
func NewPipeline(src Source, strat Strategy, opts ...Option) (*Pipeline, error) {
	if src == nil {
		return nil, errors.New("passivelight: pipeline needs a source")
	}
	if strat.kind == 0 {
		return nil, errors.New("passivelight: pipeline needs a strategy (Threshold, TwoPhase, Collision or DTWClassify)")
	}
	if strat.kind == strategyDTW && strat.classifier == nil {
		return nil, errors.New("passivelight: DTWClassify needs a classifier")
	}
	p := &Pipeline{src: src, strat: strat}
	for _, opt := range opts {
		opt(&p.cfg)
	}
	return p, nil
}

// Stream starts the pipeline and returns its event channel. The
// channel is closed when the source ends (io.EOF), the context is
// canceled, or the source fails; check Err afterwards. Events flow
// through WithSink callbacks first, then the channel.
func (p *Pipeline) Stream(ctx context.Context) (<-chan Event, error) {
	if !p.started.CompareAndSwap(false, true) {
		return nil, errors.New("passivelight: pipeline already started")
	}
	if p.cfg.metrics != nil {
		p.tel = newPipeTel(p.cfg.metrics, p.strat.String())
	}
	if p.cfg.autoSelectOn {
		rs, ok := p.src.(receiverSelectable)
		if !ok {
			return nil, fmt.Errorf("passivelight: source does not support WithReceiverAutoSelect")
		}
		if err := rs.applyReceiverAutoSelect(p.cfg.autoSelect); err != nil {
			return nil, err
		}
	}
	info, err := p.src.Open(ctx)
	if err != nil {
		return nil, err
	}
	fs := p.cfg.fs
	if fs == 0 {
		fs = info.Fs
	}
	buffer := p.cfg.eventBuffer
	if buffer == 0 {
		buffer = 1024
	}
	out := make(chan Event, buffer)
	switch p.strat.kind {
	case strategyThreshold, strategyTwoPhase:
		if err := p.startEngine(ctx, fs, out); err != nil {
			// The source was opened but no goroutine owns it yet.
			p.src.Close()
			return nil, err
		}
		return out, nil
	default:
		go p.runWholeStream(ctx, fs, out)
		return out, nil
	}
}

// startEngine wires the streaming-engine substrate: a pull goroutine
// routing source chunks into per-session decoders, and a forwarder
// turning engine detections into events.
func (p *Pipeline) startEngine(ctx context.Context, fs float64, out chan Event) error {
	sessionFs := fs
	if sessionFs == 0 {
		// Placeholder; sources without a declared rate must carry
		// per-chunk rates, which the pull loop enforces.
		sessionFs = 1000
	}
	eng, err := stream.NewEngine(stream.EngineConfig{
		Session: stream.Config{
			Fs:            sessionFs,
			Decode:        p.cfg.decode,
			PreRollSec:    p.cfg.preRollSec,
			QuietHoldSec:  p.cfg.quietHoldSec,
			MaxSegmentSec: p.cfg.maxSegmentSec,
			CarShape:      p.strat.kind == strategyTwoPhase,
		},
		Workers:         p.cfg.workers,
		Shards:          p.cfg.shards,
		QueueSamples:    p.cfg.queueSamples,
		IdleTimeout:     p.cfg.idleTimeout,
		DetectionBuffer: cap(out),
		MaxSessions:     p.cfg.maxSessions,
		OnSessionEnd:    p.cfg.onSessionEnd,
		Metrics:         p.cfg.metrics,
	})
	if err != nil {
		return err
	}
	p.mu.Lock()
	p.engine = eng
	p.mu.Unlock()

	statsDone := make(chan struct{})
	if p.cfg.statsSink != nil {
		go func() {
			tick := time.NewTicker(p.cfg.statsEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					p.cfg.statsSink(eng.Stats())
				case <-statsDone:
					p.cfg.statsSink(eng.Stats())
					return
				}
			}
		}()
	}

	// Forwarder: engine detection batches -> sinks -> event channel.
	// Consuming Batches (one receive per decode step) instead of the
	// flattened Detections channel skips a per-detection hop. Runs
	// until the engine closes the channel (after flushing every
	// session), so no event is lost on shutdown.
	go func() {
		for batch := range eng.Batches() {
			for _, det := range batch {
				p.emit(out, p.event(det))
			}
			// The events copied everything they need; hand the batch
			// slice back to the engine's pool.
			stream.RecycleBatch(batch)
		}
		if p.cfg.statsSink != nil {
			close(statsDone)
		}
		close(out)
	}()

	// Pull loop: source chunks -> engine sessions.
	go func() {
		defer eng.Close()
		defer p.src.Close()
		for {
			chunk, err := p.src.Next(ctx)
			if err == io.EOF {
				return
			}
			if err != nil {
				p.fail(err)
				return
			}
			if chunk.Reset {
				// A restarted stream must not splice into the old
				// epoch; an unknown session is fine (nothing to end).
				if err := eng.EndSession(chunk.Session); err != nil && !errors.Is(err, stream.ErrSessionEvicted) {
					p.fail(err)
					return
				}
			}
			if len(chunk.Samples) == 0 {
				chunk.Release()
				continue
			}
			if chunk.Fs == 0 && fs == 0 {
				chunk.Release()
				p.fail(fmt.Errorf("passivelight: session %d chunk carries no sample rate and the source declares none; use WithSampleRate", chunk.Session))
				return
			}
			p.samplesIn.Add(int64(len(chunk.Samples)))
			err = eng.Feed(chunk.Session, chunk.Fs, chunk.Samples)
			// Feed has copied the samples into the session ring (or
			// dropped them); the pooled wire buffer can go back now.
			chunk.Release()
			if err != nil {
				p.fail(err)
				return
			}
		}
	}()
	return nil
}

// runWholeStream buffers each session and runs the whole-stream
// analysis (Collision, DTWClassify) at end of stream — or at a Reset
// boundary, which closes the session's previous epoch.
func (p *Pipeline) runWholeStream(ctx context.Context, fs float64, out chan Event) {
	defer close(out)
	defer p.src.Close()
	if p.cfg.statsSink != nil {
		statsDone := make(chan struct{})
		defer close(statsDone)
		go func() {
			tick := time.NewTicker(p.cfg.statsEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					p.cfg.statsSink(p.Stats())
				case <-statsDone:
					p.cfg.statsSink(p.Stats())
					return
				}
			}
		}()
	}
	type accum struct {
		fs  float64
		buf []float64
	}
	bufs := make(map[uint64]*accum)
	var order []uint64
	analyze := func(id uint64, a *accum) {
		if len(a.buf) == 0 {
			return
		}
		p.emit(out, p.analyzeWhole(id, a.fs, a.buf))
		a.buf = nil
	}
	for {
		chunk, err := p.src.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			p.fail(err)
			return
		}
		cfs := chunk.Fs
		if cfs == 0 {
			cfs = fs
		}
		if cfs == 0 {
			p.fail(fmt.Errorf("passivelight: session %d chunk carries no sample rate and the source declares none; use WithSampleRate", chunk.Session))
			return
		}
		a, ok := bufs[chunk.Session]
		if !ok {
			a = &accum{fs: cfs}
			bufs[chunk.Session] = a
			order = append(order, chunk.Session)
		}
		if chunk.Reset {
			analyze(chunk.Session, a)
			a.fs = cfs
		}
		a.buf = append(a.buf, chunk.Samples...)
		p.samplesIn.Add(int64(len(chunk.Samples)))
		chunk.Release()
	}
	for _, id := range order {
		analyze(id, bufs[id])
	}
}

// analyzeWhole runs the whole-stream strategy over one session's
// buffered samples.
func (p *Pipeline) analyzeWhole(id uint64, fs float64, buf []float64) Event {
	ev := Event{CodeIndex: -1}
	ev.Session = id
	ev.End = int64(len(buf))
	ev.TimeSec = float64(len(buf)) / fs
	tr := trace.New(fs, 0, buf)
	switch p.strat.kind {
	case strategyCollision:
		rep, err := decoder.AnalyzeCollision(tr, p.strat.collision)
		if err != nil {
			ev.Err = err
			return ev
		}
		ev.Collision = &rep
	case strategyDTW:
		matches, err := p.strat.classifier.Classify(tr)
		if err != nil {
			ev.Err = err
			return ev
		}
		ev.Matches = matches
		if len(matches) > 0 {
			ev.Label = matches[0].Label
		}
	}
	return ev
}

// event converts one engine detection into a pipeline event, applying
// the codebook stage.
func (p *Pipeline) event(det StreamDetection) Event {
	ev := Event{StreamDetection: det, CodeIndex: -1}
	if p.cfg.codebook != nil && det.Err == nil {
		bits := make([]coding.Bit, len(det.Bits))
		for i, b := range det.Bits {
			bits[i] = coding.Bit(b)
		}
		ev.CodeIndex, ev.CodeDistance = p.cfg.codebook.Decode(bits)
	}
	return ev
}

// emit runs sinks and delivers the event in stream order.
func (p *Pipeline) emit(out chan Event, ev Event) {
	if p.tel != nil {
		p.tel.events.Inc()
		if ev.Err != nil {
			p.tel.errors.Inc()
		}
		// Whole-stream strategies carry no arrival stamp (they analyze
		// at end of stream); only streaming events feed the latency
		// histogram.
		if !ev.Arrival.IsZero() {
			p.tel.latency.Observe(int64(time.Since(ev.Arrival)))
		}
	}
	for _, sink := range p.cfg.sinks {
		sink(ev)
	}
	out <- ev
}

// Run starts the pipeline and collects every event until the source
// ends or the context is canceled. The returned error is the first
// pipeline failure (context cancellation included); per-segment
// decode errors arrive as events with Err set, not as a Run error.
func (p *Pipeline) Run(ctx context.Context) ([]Event, error) {
	ch, err := p.Stream(ctx)
	if err != nil {
		return nil, err
	}
	var events []Event
	for ev := range ch {
		events = append(events, ev)
	}
	return events, p.Err()
}

// Flush forces end-of-stream on every open session of a streaming
// strategy: pending samples decode and open segments flush now,
// without waiting out the quiet hold. No-op for whole-stream
// strategies (they analyze when the source ends).
func (p *Pipeline) Flush() {
	p.mu.Lock()
	eng := p.engine
	p.mu.Unlock()
	if eng != nil {
		eng.FlushAll()
	}
}

// Stats returns an operational snapshot: the engine's counters for
// streaming strategies, or the ingest count for whole-stream ones.
func (p *Pipeline) Stats() StreamStats {
	p.mu.Lock()
	eng := p.engine
	p.mu.Unlock()
	if eng != nil {
		return eng.Stats()
	}
	return StreamStats{SamplesIn: p.samplesIn.Load()}
}

// Occupancy reports the streaming engine's queue fill on a 0..1
// scale (0 before the engine starts or for whole-stream strategies).
// Feed it to NetSource.AutoThrottle to close the cluster
// backpressure loop.
func (p *Pipeline) Occupancy() float64 {
	p.mu.Lock()
	eng := p.engine
	p.mu.Unlock()
	if eng == nil {
		return 0
	}
	return eng.Occupancy()
}

// Err returns the first pipeline failure (nil on a clean end of
// stream). Meaningful once the Stream channel has closed or Run has
// returned.
func (p *Pipeline) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

func (p *Pipeline) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}
