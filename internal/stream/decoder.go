package stream

import (
	"errors"
	"fmt"
	"time"

	"passivelight/internal/decoder"
)

// Config tunes one streaming decode session.
type Config struct {
	// Fs is the sample rate of the session in Hz. Required.
	Fs float64
	// Decode tunes the per-segment adaptive threshold decode exactly
	// as in the batch decoder.
	Decode decoder.Options
	// PreRollSec is the quiet context retained before detected
	// activity. Zero selects 1 s; negative retains the entire stream
	// (batch-equivalent mode: detections only on Flush, unbounded
	// memory — for tests and offline replay).
	PreRollSec float64
	// QuietHoldSec is how long the signal must return to the noise
	// band before an active segment is decoded. Zero selects 1.5 s.
	QuietHoldSec float64
	// MaxSegmentSec bounds an active segment; a segment that grows
	// past it is force-decoded. Zero selects 60 s.
	MaxSegmentSec float64
	// ActivityMargin is the activity band half-width in multiples of
	// the tracked noise deviation. Zero selects 4.
	ActivityMargin float64
	// CarShape decodes each segment with the paper's Sec. 5 two-phase
	// outdoor algorithm (car signature, then roof-tag stripes) instead
	// of the plain indoor threshold pass.
	CarShape bool
}

func (c Config) incremental() decoder.IncrementalConfig {
	if c.PreRollSec < 0 {
		cfg := decoder.BatchConfig()
		cfg.TwoPhase = c.CarShape
		return cfg
	}
	cfg := decoder.IncrementalConfig{ActivityMargin: c.ActivityMargin, TwoPhase: c.CarShape}
	if c.PreRollSec > 0 {
		cfg.PreRollSamples = max(1, int(c.PreRollSec*c.Fs))
	}
	if c.QuietHoldSec > 0 {
		cfg.QuietHoldSamples = max(1, int(c.QuietHoldSec*c.Fs))
	}
	if c.MaxSegmentSec > 0 {
		cfg.MaxSegmentSamples = max(1, int(c.MaxSegmentSec*c.Fs))
	} else {
		cfg.MaxSegmentSamples = max(1, int(60*c.Fs))
	}
	return cfg
}

// Detection is one decoded (or undecodable) packet event emitted by a
// streaming session.
type Detection struct {
	// Session that produced the event (set by the Engine; zero for a
	// standalone Decoder).
	Session uint64
	// Bits is the decoded payload, one 0/1 value per bit. Empty when
	// Err is non-nil.
	Bits []byte
	// Symbols is the decoded symbol string in the paper's notation.
	Symbols string
	// Start and End are absolute sample indices of the decoded span
	// within the session's stream (End exclusive).
	Start, End int64
	// TimeSec is the stream time of the segment end (End / Fs).
	TimeSec float64
	// Wall estimates the wall-clock time of the segment end: the
	// session's first-sample arrival plus TimeSec. Set by the Engine;
	// zero for a standalone Decoder. For a stream paced in real time
	// this is the actual pass time, independent of when the segment
	// was decoded or consumed.
	Wall time.Time
	// Arrival is the wall-clock time the session was last fed before
	// the decode step that produced this detection — the anchor of
	// the detection-latency metric (arrival to emit). Set by the
	// Engine; zero for a standalone Decoder.
	Arrival time.Time
	// SymbolRate is the measured symbols/second (1/tau_t).
	SymbolRate float64
	// RSSPeak is the largest window maximum of the decode.
	RSSPeak float64
	// NoiseFloor is the tracked noise-floor mean when the segment
	// opened.
	NoiseFloor float64
	// Err is non-nil when the segment held no decodable packet
	// (glint, partial pass, low contrast). Such events are still
	// emitted so operators can count them.
	Err error
}

// BitString renders the payload as "0"/"1" text.
func (d Detection) BitString() string {
	out := make([]byte, len(d.Bits))
	for i, b := range d.Bits {
		out[i] = '0' + b
	}
	return string(out)
}

// Decoder is one streaming decode session over a single RSS sample
// stream. It is not safe for concurrent use; the Engine serializes
// access per session.
type Decoder struct {
	cfg Config
	inc *decoder.Incremental

	samples    int64
	detections int64
	errors     int64
}

// NewDecoder builds a streaming session. The session's retained-sample
// buffer starts from the recycled-capacity pool, so session churn
// under a steady load stops hitting the allocator; release() returns
// it when the engine retires the session.
func NewDecoder(cfg Config) (*Decoder, error) {
	if cfg.Fs <= 0 {
		return nil, errors.New("stream: config needs a positive sample rate Fs")
	}
	d := &Decoder{cfg: cfg, inc: decoder.NewIncremental(cfg.Fs, cfg.Decode, cfg.incremental())}
	if buf := getSegBuf(); buf != nil {
		d.inc.AdoptBuf(buf)
	}
	return d, nil
}

// release returns the session's pooled state after its final flush.
// The decoder must not be fed again afterwards.
func (d *Decoder) release() {
	putSegBuf(d.inc.ReleaseBuf())
}

// Feed consumes one chunk of RSS samples and returns the detections
// that completed inside it, in stream order.
func (d *Decoder) Feed(chunk []float64) []Detection {
	d.samples += int64(len(chunk))
	return d.convert(d.inc.Feed(chunk))
}

// Flush decodes whatever segment is still open (end of stream).
func (d *Decoder) Flush() []Detection {
	return d.convert(d.inc.Flush())
}

func (d *Decoder) convert(segs []decoder.SegmentResult) []Detection {
	if len(segs) == 0 {
		return nil
	}
	// The batch comes from (and, when the consumer recycles, returns
	// to) the shared pool — one decode step no longer costs one heap
	// allocation for its batch header.
	out := getBatch(len(segs))
	for _, seg := range segs {
		det := Detection{
			Start:      seg.Start,
			End:        seg.End,
			TimeSec:    float64(seg.End) / d.cfg.Fs,
			NoiseFloor: seg.Floor,
		}
		for _, wm := range seg.Result.WindowMax {
			if wm > det.RSSPeak {
				det.RSSPeak = wm
			}
		}
		if seg.Result.Thresholds.TauT > 0 {
			det.SymbolRate = 1 / seg.Result.Thresholds.TauT
		}
		switch {
		case seg.Err != nil:
			det.Err = seg.Err
		case seg.Result.ParseErr != nil:
			det.Err = fmt.Errorf("stream: segment decoded but did not parse: %w", seg.Result.ParseErr)
			det.Symbols = seg.Result.SymbolString()
		default:
			det.Symbols = seg.Result.SymbolString()
			det.Bits = make([]byte, len(seg.Result.Packet.Data))
			for i, b := range seg.Result.Packet.Data {
				det.Bits[i] = byte(b)
			}
		}
		if det.Err != nil {
			d.errors++
		} else {
			d.detections++
		}
		out = append(out, det)
	}
	return out
}

// Buffered returns the number of samples currently retained by the
// session (its memory footprint).
func (d *Decoder) Buffered() int { return d.inc.Buffered() }

// Position returns the number of samples consumed so far.
func (d *Decoder) Position() int64 { return d.inc.Position() }

// SessionStats summarizes one session.
type SessionStats struct {
	Samples    int64
	Detections int64
	Errors     int64
	Buffered   int
}

// Stats returns the session counters.
func (d *Decoder) Stats() SessionStats {
	return SessionStats{
		Samples:    d.samples,
		Detections: d.detections,
		Errors:     d.errors,
		Buffered:   d.inc.Buffered(),
	}
}
