// Package stream is the online decode layer between the DSP tier and
// the receiver network: RSS samples arrive live, in chunks, from many
// receiver nodes, and decoded packets come out as they complete —
// with bounded memory, regardless of how long the stream runs.
//
// Two types make up the subsystem:
//
//   - Decoder is one streaming decode session. It wraps the
//     resumable adaptive-threshold state machine of
//     internal/decoder (noise-floor tracking, activity detection,
//     symbol clocking) and turns completed segments into Detection
//     events. Feed it chunks of any size; chunk boundaries never
//     change the outcome.
//
//   - Engine multiplexes thousands of concurrent sessions over a
//     worker pool: per-session ring buffers absorb bursts, idle
//     sessions are evicted, and Stats() reports sessions, sample
//     throughput and detections for operational visibility.
//
// The batch decoder.Decode is a thin wrapper over the same state
// machine (one chunk, then flush); in the batch-equivalent session
// configuration (PreRollSec < 0, unbounded memory) a chunked stream
// decode of a trace is bit-identical to it. The default online mode
// bounds memory by segmenting around detected activity, so it
// decodes the same packets without guaranteeing sample-for-sample
// batch parity.
package stream
