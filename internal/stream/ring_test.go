package stream

import (
	"testing"
)

func ringContents(r *ring) []float64 { return append([]float64(nil), r.drain(nil)...) }

func TestRingPushDrain(t *testing.T) {
	r := newRing(8)
	r.push([]float64{1, 2, 3})
	if r.len() != 3 {
		t.Fatalf("len %d", r.len())
	}
	got := ringContents(r)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("drain %v", got)
	}
	if r.len() != 0 {
		t.Fatal("drain should empty the ring")
	}
}

func TestRingWraparound(t *testing.T) {
	r := newRing(8)
	r.push([]float64{1, 2, 3, 4, 5, 6})
	r.drain(nil)
	// head is reset by drain; force wrap with two pushes
	r.push([]float64{1, 2, 3, 4, 5})
	if d := r.push([]float64{6, 7, 8, 9, 10}); d != 2 {
		t.Fatalf("dropped %d, want 2", d)
	}
	got := ringContents(r)
	want := []float64{3, 4, 5, 6, 7, 8, 9, 10}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRingOversizedChunk(t *testing.T) {
	r := newRing(4)
	if d := r.push([]float64{1, 2, 3, 4, 5, 6, 7}); d != 3 {
		t.Fatalf("dropped %d, want 3", d)
	}
	got := ringContents(r)
	want := []float64{4, 5, 6, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
