package stream

import "sync"

// Pools for the per-session state that session churn would otherwise
// re-allocate on every create/evict cycle: decoder segment buffers,
// ring backing arrays (ring.go) and detection batches. All are global
// sync.Pools so the capacity survives engine restarts too (a pipeline
// that tears one engine down and builds the next starts warm); the
// ring path additionally fronts the pool with a per-shard free-list.

// segBufPool recycles decoder retained-sample buffers (the pre-roll /
// open-segment tail each session's Incremental grows). These reach the
// open segment's full size under load, so reusing them removes the
// second-largest allocation source of a busy engine.
var segBufPool = sync.Pool{}

func getSegBuf() []float64 {
	if v := segBufPool.Get(); v != nil {
		return (*(v.(*[]float64)))[:0]
	}
	return nil
}

func putSegBuf(buf []float64) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:0]
	segBufPool.Put(&buf)
}

// batchPool recycles detection batch slices. One batch is allocated
// per decode step that produced detections, handed to the consumer
// through Batches(), and — when the consumer honors the RecycleBatch
// contract — returned here once drained.
var batchPool = sync.Pool{}

// getBatch returns an empty batch with at least capHint capacity.
func getBatch(capHint int) []Detection {
	if v := batchPool.Get(); v != nil {
		if b := *(v.(*[]Detection)); cap(b) >= capHint {
			return b[:0]
		}
	}
	return make([]Detection, 0, capHint)
}

// RecycleBatch returns a detection batch received from Batches() (or
// built by Decoder.Feed/Flush) to the engine's batch pool. Call it
// after the batch has been fully consumed; the Detection values —
// including their Bits payloads — remain valid if copied out, only the
// batch slice itself is reused. Recycling is optional: consumers that
// retain batches simply leave the pool cold. A nil or empty batch is
// ignored.
func RecycleBatch(batch []Detection) {
	if cap(batch) == 0 {
		return
	}
	// Drop the element payloads so pooled slices do not pin decoded
	// bit buffers or error values until their next use.
	clear(batch[:cap(batch)])
	batch = batch[:0]
	batchPool.Put(&batch)
}
