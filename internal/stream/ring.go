package stream

import "sync"

// ring is a bounded FIFO of RSS samples with drop-oldest overflow: a
// session that falls behind loses its oldest samples (a stale pass)
// rather than growing without bound or stalling the network reader.
//
// The backing buffer is allocated lazily and grown geometrically up to
// the configured bound, so an idle or well-drained session costs a few
// KB instead of the full QueueSamples capacity (32768 samples would be
// 256 KB per session). Drop-oldest semantics only engage once the
// buffer has reached the bound, so the observable push/drain behavior
// is identical to a fully pre-allocated ring.
type ring struct {
	buf  []float64
	head int // index of the oldest sample
	size int
	max  int // capacity bound (drop-oldest engages here)
}

// ringBufPool recycles ring backing arrays across sessions and across
// engines; shards additionally keep a small free-list in front of it
// (see shard.getRingBuf) so same-shard session churn never touches the
// pool's CAS either.
var ringBufPool = sync.Pool{}

func newRing(capacity int) *ring {
	return &ring{max: capacity}
}

// newRingWith seeds the ring with a recycled backing array (clamped to
// the capacity bound); recycled == nil is a plain lazy ring.
func newRingWith(capacity int, recycled []float64) *ring {
	r := &ring{max: capacity}
	if n := cap(recycled); n > 0 {
		if n > capacity {
			n = capacity
		}
		r.buf = recycled[:n]
	}
	return r
}

func (r *ring) len() int { return r.size }

// capacity is the configured bound, regardless of how much backing
// store has been materialized so far.
func (r *ring) capacity() int { return r.max }

// release surrenders the backing array for reuse by another session.
// Only the terminal claim holder may call it.
func (r *ring) release() []float64 {
	buf := r.buf
	r.buf = nil
	r.head = 0
	r.size = 0
	return buf
}

// grow materializes backing store for at least need samples (clamped
// to the bound), linearizing the contents so head restarts at 0.
func (r *ring) grow(need int) {
	newCap := 2 * len(r.buf)
	if newCap < 1024 {
		newCap = 1024
	}
	for newCap < need {
		newCap *= 2
	}
	if newCap > r.max {
		newCap = r.max
	}
	var buf []float64
	if v := ringBufPool.Get(); v != nil {
		if b := *(v.(*[]float64)); cap(b) >= newCap {
			buf = b[:newCap]
		}
	}
	if buf == nil {
		buf = make([]float64, newCap)
	}
	n := copy(buf, r.buf[r.head:r.head+min(r.size, len(r.buf)-r.head)])
	if n < r.size {
		copy(buf[n:], r.buf[:r.size-n])
	}
	r.buf = buf
	r.head = 0
}

// push appends chunk, evicting the oldest samples on overflow, and
// returns how many were dropped.
func (r *ring) push(chunk []float64) (dropped int) {
	if need := r.size + len(chunk); need > len(r.buf) && len(r.buf) < r.max {
		r.grow(need)
	}
	c := len(r.buf)
	if len(chunk) >= c {
		// The chunk alone fills the ring: keep only its tail.
		dropped = r.size + len(chunk) - c
		copy(r.buf, chunk[len(chunk)-c:])
		r.head = 0
		r.size = c
		return dropped
	}
	if over := r.size + len(chunk) - c; over > 0 {
		r.head = (r.head + over) % c
		r.size -= over
		dropped = over
	}
	tail := (r.head + r.size) % c
	n := copy(r.buf[tail:], chunk)
	copy(r.buf, chunk[n:])
	r.size += len(chunk)
	return dropped
}

// drain appends the ring's entire contents to dst and empties it.
func (r *ring) drain(dst []float64) []float64 {
	c := len(r.buf)
	first := r.head + r.size
	if first > c {
		first = c
	}
	dst = append(dst, r.buf[r.head:first]...)
	if wrapped := r.head + r.size - c; wrapped > 0 {
		dst = append(dst, r.buf[:wrapped]...)
	}
	r.head = 0
	r.size = 0
	return dst
}
