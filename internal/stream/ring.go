package stream

// ring is a fixed-capacity FIFO of RSS samples with drop-oldest
// overflow: a session that falls behind loses its oldest samples (a
// stale pass) rather than growing without bound or stalling the
// network reader.
type ring struct {
	buf  []float64
	head int // index of the oldest sample
	size int
}

func newRing(capacity int) *ring {
	return &ring{buf: make([]float64, capacity)}
}

func (r *ring) len() int { return r.size }

// push appends chunk, evicting the oldest samples on overflow, and
// returns how many were dropped.
func (r *ring) push(chunk []float64) (dropped int) {
	c := len(r.buf)
	if len(chunk) >= c {
		// The chunk alone fills the ring: keep only its tail.
		dropped = r.size + len(chunk) - c
		copy(r.buf, chunk[len(chunk)-c:])
		r.head = 0
		r.size = c
		return dropped
	}
	if over := r.size + len(chunk) - c; over > 0 {
		r.head = (r.head + over) % c
		r.size -= over
		dropped = over
	}
	tail := (r.head + r.size) % c
	n := copy(r.buf[tail:], chunk)
	copy(r.buf, chunk[n:])
	r.size += len(chunk)
	return dropped
}

// drain appends the ring's entire contents to dst and empties it.
func (r *ring) drain(dst []float64) []float64 {
	c := len(r.buf)
	first := r.head + r.size
	if first > c {
		first = c
	}
	dst = append(dst, r.buf[r.head:first]...)
	if wrapped := r.head + r.size - c; wrapped > 0 {
		dst = append(dst, r.buf[:wrapped]...)
	}
	r.head = 0
	r.size = 0
	return dst
}
