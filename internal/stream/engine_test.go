package stream

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"passivelight/internal/coding"
	"passivelight/internal/decoder"
	"passivelight/internal/telemetry"
)

// sessionStream synthesizes what one receiver node sees: quiet noise,
// a packet pass, quiet, another pass, quiet.
func sessionStream(payloads []string, fs, symbolDur, gapSec, noise float64, seed int64) []float64 {
	const high, low, baseline = 90.0, 12.0, 10.0
	rng := rand.New(rand.NewSource(seed))
	gap := int(gapSec * fs)
	perSymbol := int(symbolDur * fs)
	var out []float64
	appendQuiet := func(n int) {
		for i := 0; i < n; i++ {
			out = append(out, baseline+noise*rng.NormFloat64())
		}
	}
	appendQuiet(gap)
	for _, p := range payloads {
		for _, s := range coding.MustPacket(p).Symbols() {
			level := low
			if s == coding.High {
				level = high
			}
			for i := 0; i < perSymbol; i++ {
				out = append(out, level+noise*rng.NormFloat64())
			}
		}
		appendQuiet(gap)
	}
	return out
}

// TestEngineConcurrentSessions drives well over 100 sessions through
// the worker pool at once and checks every session decodes both of
// its passes, with memory staying far below the total sample volume.
func TestEngineConcurrentSessions(t *testing.T) {
	const sessions = 120
	// A fixed 4-bit packet format, as a real installation would use —
	// ExpectedSymbols pins the grid length, which is what makes the
	// decode robust against clock aliases at this noise level.
	payloadSet := []string{"1001", "0110", "1100", "0011"}
	e, err := NewEngine(EngineConfig{
		Session:     Config{Fs: 1000, Decode: decoder.Options{ExpectedSymbols: 12}},
		IdleTimeout: -1, // deterministic: no eviction mid-test
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	streams := make([][]float64, sessions)
	wants := make([]string, sessions)
	totalSamples := 0
	for i := range streams {
		p := payloadSet[i%len(payloadSet)]
		wants[i] = p
		streams[i] = sessionStream([]string{p, p}, 1000, 0.2, 2.5, 0.3, int64(i+1))
		totalSamples += len(streams[i])
	}

	// Collect detections as they are emitted.
	var detMu sync.Mutex
	got := make(map[uint64][]string)
	var collect sync.WaitGroup
	collect.Add(1)
	go func() {
		defer collect.Done()
		for det := range e.Detections() {
			if det.Err == nil {
				detMu.Lock()
				got[det.Session] = append(got[det.Session], det.BitString())
				detMu.Unlock()
			}
		}
	}()

	// Shard sessions across feeders: per-session chunk order is the
	// caller's responsibility, cross-session concurrency is the
	// engine's.
	const feeders = 8
	var feed sync.WaitGroup
	for f := 0; f < feeders; f++ {
		feed.Add(1)
		go func(f int) {
			defer feed.Done()
			const chunk = 512
			for id := f; id < sessions; id += feeders {
				s := streams[id]
				for lo := 0; lo < len(s); lo += chunk {
					hi := min(lo+chunk, len(s))
					if err := e.Feed(uint64(id), 0, s[lo:hi]); err != nil {
						t.Errorf("feed %d: %v", id, err)
						return
					}
				}
			}
		}(f)
	}
	feed.Wait()

	st := e.Stats()
	if st.Sessions != sessions {
		t.Fatalf("sessions %d, want %d", st.Sessions, sessions)
	}
	if st.SamplesIn != int64(totalSamples) {
		t.Fatalf("samples in %d, want %d", st.SamplesIn, totalSamples)
	}
	if st.DroppedSamples != 0 {
		t.Fatalf("dropped %d samples", st.DroppedSamples)
	}
	// Bounded memory: once the workers catch up, sessions retain only
	// pre-roll context and open segments, never whole streams. Each
	// session's steady-state footprint is about a pre-roll (1 s = 1000
	// samples) plus a partial segment — far below its ~12k stream.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st = e.Stats()
		if st.BufferedSamples < int64(sessions)*4000 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("buffered %d of %d samples fed — unbounded growth", st.BufferedSamples, st.SamplesIn)
		}
		time.Sleep(10 * time.Millisecond)
	}

	for id := 0; id < sessions; id++ {
		if err := e.FlushSession(uint64(id)); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()
	collect.Wait()

	for id := 0; id < sessions; id++ {
		bits := got[uint64(id)]
		if len(bits) != 2 {
			t.Fatalf("session %d decoded %v, want 2 passes of %q", id, bits, wants[id])
		}
		for _, b := range bits {
			if b != wants[id] {
				t.Fatalf("session %d decoded %v, want %q", id, bits, wants[id])
			}
		}
	}
}

func TestEngineIdleEviction(t *testing.T) {
	e, err := NewEngine(EngineConfig{
		Session:     Config{Fs: 1000},
		IdleTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	s := sessionStream([]string{"10"}, 1000, 0.2, 2.0, 0.3, 3)
	// Withhold the trailing quiet so the segment stays open and only
	// the eviction flush can complete it.
	if err := e.Feed(7, 0, s[:len(s)-1900]); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := e.Stats()
		if st.Evicted >= 1 {
			if st.Sessions != 0 {
				t.Fatalf("evicted but %d sessions remain", st.Sessions)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no eviction after 5 s: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	det := <-e.Detections()
	if det.Err != nil || det.BitString() != "10" {
		t.Fatalf("eviction flush produced %q (err %v), want 10", det.BitString(), det.Err)
	}
	// The evicted id starts a fresh session on the next feed.
	if err := e.Feed(7, 0, s[:100]); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Sessions != 1 {
		t.Fatalf("refeed after eviction: %d sessions", st.Sessions)
	}
}

// TestEngineFlushAllAfterEviction pins the eviction/flush claim
// protocol: FlushAll on sessions the janitor has already evicted (or
// is evicting concurrently) must return, not spin on the stale
// pointers.
func TestEngineFlushAllAfterEviction(t *testing.T) {
	e, err := NewEngine(EngineConfig{
		Session:     Config{Fs: 1000},
		IdleTimeout: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	s := sessionStream([]string{"10"}, 1000, 0.2, 2.0, 0.3, 3)
	for id := uint64(0); id < 8; id++ {
		if err := e.Feed(id, 0, s); err != nil {
			t.Fatal(err)
		}
	}
	// Hammer FlushAll while the janitor evicts underneath it.
	done := make(chan struct{})
	go func() {
		defer close(done)
		deadline := time.Now().Add(500 * time.Millisecond)
		for time.Now().Before(deadline) {
			e.FlushAll()
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("FlushAll deadlocked against eviction")
	}
	// Evicted ids accept new feeds as fresh sessions.
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().Sessions != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sessions not evicted: %+v", e.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := e.Feed(3, 0, s[:100]); err != nil {
		t.Fatal(err)
	}
}

func TestEngineEndSession(t *testing.T) {
	e, err := NewEngine(EngineConfig{
		Session:     Config{Fs: 1000},
		IdleTimeout: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	s := sessionStream([]string{"10"}, 1000, 0.2, 2.0, 0.3, 3)
	// Withhold the trailing quiet: only EndSession's flush completes
	// the segment.
	if err := e.Feed(5, 0, s[:len(s)-1900]); err != nil {
		t.Fatal(err)
	}
	if err := e.EndSession(5); err != nil {
		t.Fatal(err)
	}
	det := <-e.Detections()
	if det.Err != nil || det.BitString() != "10" {
		t.Fatalf("end-session flush produced %q (err %v)", det.BitString(), det.Err)
	}
	if st := e.Stats(); st.Sessions != 0 {
		t.Fatalf("%d sessions after EndSession", st.Sessions)
	}
	if err := e.EndSession(5); err == nil {
		t.Fatal("ending a gone session should error")
	}
	// The id restarts cleanly.
	if err := e.Feed(5, 0, s); err != nil {
		t.Fatal(err)
	}
	if err := e.FlushSession(5); err != nil {
		t.Fatal(err)
	}
	det = <-e.Detections()
	if det.Err != nil || det.BitString() != "10" {
		t.Fatalf("restarted session produced %q (err %v)", det.BitString(), det.Err)
	}
}

// TestEngineOversizedFeed replays a whole recorded stream in one Feed
// call larger than the ring: the head must not be structurally
// evicted before a worker drains it.
func TestEngineOversizedFeed(t *testing.T) {
	e, err := NewEngine(EngineConfig{
		Session:      Config{Fs: 1000},
		QueueSamples: 1024,
		IdleTimeout:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	s := sessionStream([]string{"10"}, 1000, 0.2, 2.0, 0.3, 3) // ~5600 samples >> 1024
	if err := e.Feed(1, 0, s); err != nil {
		t.Fatal(err)
	}
	if err := e.FlushSession(1); err != nil {
		t.Fatal(err)
	}
	det := <-e.Detections()
	if det.Err != nil || det.BitString() != "10" {
		t.Fatalf("oversized feed decoded %q (err %v); stats %+v", det.BitString(), det.Err, e.Stats())
	}
}

// TestEngineNegativeWorkers pins the config clamp: a negative worker
// count (e.g. a miswired WithWorkers(-1)) must select the default
// pool, not panic on a negative shard slice.
func TestEngineNegativeWorkers(t *testing.T) {
	e, err := NewEngine(EngineConfig{
		Session:     Config{Fs: 1000},
		Workers:     -1,
		IdleTimeout: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	s := sessionStream([]string{"10"}, 1000, 0.2, 2.0, 0.3, 3)
	if err := e.Feed(1, 0, s); err != nil {
		t.Fatal(err)
	}
	if err := e.FlushSession(1); err != nil {
		t.Fatal(err)
	}
	det := <-e.Detections()
	if det.Err != nil || det.BitString() != "10" {
		t.Fatalf("decoded %q (err %v)", det.BitString(), det.Err)
	}
}

func TestEngineGuards(t *testing.T) {
	e, err := NewEngine(EngineConfig{
		Session:     Config{Fs: 1000},
		MaxSessions: 2,
		IdleTimeout: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	chunk := make([]float64, 64)
	if err := e.Feed(1, 0, chunk); err != nil {
		t.Fatal(err)
	}
	if err := e.Feed(2, 4000, chunk); err != nil {
		t.Fatal(err)
	}
	if err := e.Feed(3, 0, chunk); err == nil {
		t.Fatal("session table full should reject")
	}
	if err := e.Feed(2, 8000, chunk); err == nil {
		t.Fatal("fs mismatch should reject")
	}
	if err := e.Feed(2, 4000, chunk); err != nil {
		t.Fatalf("matching fs rejected: %v", err)
	}
	st := e.Stats()
	if st.DroppedSamples != 128 {
		t.Fatalf("dropped %d, want 128 (table-full chunk + fs-mismatch chunk)", st.DroppedSamples)
	}
	e.Close()
	if err := e.Feed(1, 0, chunk); err == nil {
		t.Fatal("feed after close should fail")
	}
}

// TestEngineDetectionsAbandonedConsumer is the regression test for
// the flattening-forwarder drop counter: a caller that asks for the
// per-detection view and then walks away must show up in
// Stats().DroppedFlattened (and the matching telemetry counter), not
// vanish into the batch-drop count.
func TestEngineDetectionsAbandonedConsumer(t *testing.T) {
	reg := telemetry.NewRegistry()
	e, err := NewEngine(EngineConfig{
		Session:     Config{Fs: 1000, Decode: decoder.Options{ExpectedSymbols: 12}},
		IdleTimeout: -1,
		// One slot in each output channel: with nobody draining the
		// flattened view, detections beyond the first of a batch are
		// dropped by the forwarder.
		DetectionBuffer: 1,
		Metrics:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ch := e.Detections() // start the forwarder, then stop consuming

	// One session carrying several packets, fed as a single chunk: the
	// decode step publishes its detections as one batch, which always
	// fits the empty batch channel, so the forwarder (not the batch
	// send) is what sheds the overflow.
	const packets = 4
	stream := sessionStream([]string{"1001", "1001", "1001", "1001"}, 1000, 0.2, 2.5, 0.3, 7)
	if err := e.Feed(1, 0, stream); err != nil {
		t.Fatal(err)
	}
	e.FlushAll()
	e.Close()

	// Close flushed every session and the forwarder has drained the
	// closed batch channel once ch closes; count what it delivered.
	delivered := int64(0)
	for range ch {
		delivered++
	}

	st := e.Stats()
	total := st.Detections + st.DecodeErrors
	if total < packets {
		t.Fatalf("published %d detections, want >= %d: %+v", total, packets, st)
	}
	if st.DroppedFlattened < 1 {
		t.Fatalf("abandoned consumer never surfaced in DroppedFlattened: %+v", st)
	}
	// Every published detection is delivered or counted in exactly one
	// drop counter — the flattener's own drops must not leak into the
	// batch-overflow count.
	if delivered+st.DroppedFlattened+st.DroppedDetections != total {
		t.Fatalf("detections unaccounted: delivered %d + flattened %d + batch %d != %d",
			delivered, st.DroppedFlattened, st.DroppedDetections, total)
	}
	if got := reg.Snapshot().Counters["pl_engine_dropped_flattened_total"]; got != st.DroppedFlattened {
		t.Fatalf("telemetry dropped_flattened = %d, want %d", got, st.DroppedFlattened)
	}
}

// TestEngineTelemetry checks the metrics registry mirrors Stats after
// a decode round and that the live histograms saw the decode steps.
func TestEngineTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	e, err := NewEngine(EngineConfig{
		Session:     Config{Fs: 1000, Decode: decoder.Options{ExpectedSymbols: 12}},
		IdleTimeout: -1,
		Metrics:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan int)
	go func() {
		got := 0
		for batch := range e.Batches() {
			for _, det := range batch {
				if det.Err == nil {
					got++
				}
				if det.Arrival.IsZero() {
					t.Error("detection carries no Arrival stamp")
				}
			}
		}
		done <- got
	}()
	stream := sessionStream([]string{"1001", "0110"}, 1000, 0.2, 2.5, 0.3, 7)
	if err := e.Feed(1, 0, stream); err != nil {
		t.Fatal(err)
	}
	e.FlushAll()
	st := e.Stats()
	e.Close()
	if got := <-done; got != 2 {
		t.Fatalf("decoded %d packets, want 2", got)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["pl_engine_samples_in_total"]; got != st.SamplesIn {
		t.Fatalf("samples_in = %d, want %d", got, st.SamplesIn)
	}
	if got := snap.Counters["pl_engine_detections_total"]; got != 2 {
		t.Fatalf("detections_total = %d, want 2", got)
	}
	lat := snap.Histograms["pl_engine_detection_latency_ns"]
	if lat.Count != st.Detections+st.DecodeErrors {
		t.Fatalf("latency histogram count = %d, want %d", lat.Count, st.Detections+st.DecodeErrors)
	}
	if lat.Max <= 0 {
		t.Fatalf("latency histogram never observed a positive latency: %+v", lat)
	}
	if steps := snap.Histograms["pl_engine_decode_step_ns"]; steps.Count == 0 {
		t.Fatal("decode step histogram never recorded")
	}
}

// TestEngineOnSessionEnd locks in the session-release hook: exactly
// one callback per released session, after the final flush, with the
// release reason ("end" | "idle" | "close") and the session's decode
// totals — the export point cluster handoffs rely on.
func TestEngineOnSessionEnd(t *testing.T) {
	type ended struct {
		id     uint64
		stats  SessionStats
		reason string
	}
	var mu sync.Mutex
	var ends []ended
	e, err := NewEngine(EngineConfig{
		Session:     Config{Fs: 1000, Decode: decoder.Options{ExpectedSymbols: 12}},
		IdleTimeout: 50 * time.Millisecond,
		OnSessionEnd: func(id uint64, stats SessionStats, reason string) {
			mu.Lock()
			ends = append(ends, ended{id, stats, reason})
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range e.Batches() {
		}
	}()

	samples := sessionStream([]string{"1001"}, 1000, 0.05, 1.0, 0.3, 1)

	// Session 1: explicit end.
	if err := e.Feed(1, 0, samples); err != nil {
		t.Fatal(err)
	}
	if err := e.EndSession(1); err != nil {
		t.Fatal(err)
	}
	// Session 2: idle-evicted by the janitor.
	if err := e.Feed(2, 0, samples); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(ends)
		mu.Unlock()
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("have %d session-end callbacks, want 2 (end + idle)", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Session 3: released by Close.
	if err := e.Feed(3, 0, samples); err != nil {
		t.Fatal(err)
	}
	e.Close()

	mu.Lock()
	defer mu.Unlock()
	byID := map[uint64]ended{}
	for _, en := range ends {
		if prev, dup := byID[en.id]; dup {
			t.Fatalf("session %d released twice: %q then %q", en.id, prev.reason, en.reason)
		}
		byID[en.id] = en
	}
	for id, want := range map[uint64]string{1: "end", 2: "idle", 3: "close"} {
		en, ok := byID[id]
		if !ok {
			t.Fatalf("session %d never fired the release hook", id)
		}
		if en.reason != want {
			t.Fatalf("session %d released with reason %q, want %q", id, en.reason, want)
		}
		if en.stats.Samples != int64(len(samples)) {
			t.Fatalf("session %d exported %d samples, want %d", id, en.stats.Samples, len(samples))
		}
		if en.stats.Detections < 1 {
			t.Fatalf("session %d exported %d detections, want >= 1", id, en.stats.Detections)
		}
	}
}
