package stream

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// engineSteadyStateAllocCeiling is the committed allocs-per-run bound
// for steady-state feed+decode of a small fleet (8 sessions × 4096
// quiet samples, ring drain + decode + synchronous flush per session).
// The pooled-session-state design holds this near zero — the ceiling
// leaves slack for scheduler noise (testing.AllocsPerRun measures
// every goroutine's allocations, including the decode workers') but
// fails loudly if a per-chunk or per-decode-step allocation sneaks
// back onto the hot path: before pooling, the same loop cost several
// hundred allocations per run.
const engineSteadyStateAllocCeiling = 48

// TestEngineSteadyStateAllocs is the alloc-regression guard for the
// engine hot path: feeding and decoding a steady fleet must not hit
// the allocator once rings, decoder buffers and batch slices have
// reached steady state.
func TestEngineSteadyStateAllocs(t *testing.T) {
	const (
		sessions  = 8
		chunkSize = 512
		chunks    = 8
	)
	e, err := NewEngine(EngineConfig{
		Session:     Config{Fs: 1000},
		Workers:     2,
		Shards:      2,
		IdleTimeout: -1, // no janitor: nothing but the fed work runs
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Quiet baseline samples: the noise tracker settles and no segment
	// ever opens, so every chunk exercises exactly the steady-state
	// path (ring push, worker drain, per-sample state machine,
	// pre-roll trim).
	chunk := make([]float64, chunkSize)
	for i := range chunk {
		chunk[i] = 10
	}
	oneRound := func() {
		for id := uint64(1); id <= sessions; id++ {
			for c := 0; c < chunks; c++ {
				if err := e.Feed(id, 0, chunk); err != nil {
					t.Fatal(err)
				}
			}
		}
		// FlushSession is synchronous: when it returns, the session
		// ring is empty and the decoder idle — a deterministic
		// steady-state boundary for the measurement.
		for id := uint64(1); id <= sessions; id++ {
			if err := e.FlushSession(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Warm up: first rounds grow rings, decoder buffers and the
	// pre-roll to their steady capacity.
	for i := 0; i < 3; i++ {
		oneRound()
	}
	avg := testing.AllocsPerRun(20, oneRound)
	t.Logf("steady-state allocs/run: %.1f (ceiling %d)", avg, engineSteadyStateAllocCeiling)
	if avg > engineSteadyStateAllocCeiling {
		t.Fatalf("engine steady-state feed+decode allocates %.1f/run, above the committed ceiling %d — a hot-path allocation regressed",
			avg, engineSteadyStateAllocCeiling)
	}
}

// TestEngineShardHammer drives every shard from many goroutines at
// once — disjoint session feeds, concurrent Stats/Occupancy polling,
// explicit EndSession churn and janitor eviction — and then checks
// the folded shard-local counters account for every sample. Run under
// -race (CI does) this locks the shard-local accumulator fold-up and
// the pooled session teardown as race-free.
func TestEngineShardHammer(t *testing.T) {
	const (
		feeders    = 8
		perFeeder  = 4 // disjoint sessions per feeder
		duration   = 300 * time.Millisecond
		chunkSize  = 256
		queueLimit = 1 << 15
	)
	e, err := NewEngine(EngineConfig{
		Session:      Config{Fs: 1000},
		Workers:      4,
		Shards:       4,
		QueueSamples: queueLimit,
		IdleTimeout:  40 * time.Millisecond, // janitor evicts mid-hammer
	})
	if err != nil {
		t.Fatal(err)
	}

	var fed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(f)))
			chunk := make([]float64, chunkSize)
			for i := range chunk {
				chunk[i] = 10 + 0.1*rng.NormFloat64()
			}
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				id := uint64(f*perFeeder+n%perFeeder) + 1
				if err := e.Feed(id, 0, chunk); err != nil {
					t.Errorf("feed session %d: %v", id, err)
					return
				}
				fed.Add(int64(chunkSize))
				if n%97 == 0 {
					// Session churn: end one of our sessions so the
					// next feed recreates it from the pooled state.
					// An already-evicted session is fine.
					e.EndSession(id)
				}
				if n%31 == 0 {
					runtime.Gosched()
				}
			}
		}(f)
	}
	// Pollers: fold the shard-local counters while feeders write them.
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := e.Stats()
				if st.SamplesIn < 0 || st.BufferedSamples < 0 {
					t.Error("stats went negative")
					return
				}
				_ = e.Occupancy()
				runtime.Gosched()
			}
		}()
	}
	// Consumer: drain batches (quiet data decodes to errors at most)
	// and recycle them, the consumer contract the pipeline follows.
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		for batch := range e.Batches() {
			RecycleBatch(batch)
		}
	}()

	time.Sleep(duration)
	close(stop)
	wg.Wait()

	// With the feeders quiet, the janitor (period IdleTimeout/4) must
	// evict the whole fleet — this is the concurrent-eviction leg, and
	// it races only against the pollers still folding Stats.
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().Sessions > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	evicted := e.Stats().Evicted
	e.Close()
	<-consumerDone

	st := e.Stats()
	if st.SamplesIn != fed.Load() {
		t.Fatalf("accepted %d samples, fed %d — shard counter fold-up lost samples", st.SamplesIn, fed.Load())
	}
	if st.DroppedSamples != 0 {
		t.Fatalf("dropped %d samples with rings far below capacity", st.DroppedSamples)
	}
	if evicted == 0 {
		t.Fatal("janitor evicted nothing after the feeders stopped")
	}
	if st.Sessions != 0 {
		t.Fatalf("%d sessions still tracked after idle eviction window", st.Sessions)
	}
	t.Logf("hammer: %d samples, %d evictions", st.SamplesIn, st.Evicted)
}

// TestEngineSessionStateRecycled pins the pooling behavior: a session
// ended and recreated on the same shard reuses the retired ring
// buffer via the shard free-list instead of allocating a fresh one.
func TestEngineSessionStateRecycled(t *testing.T) {
	e, err := NewEngine(EngineConfig{
		Session:      Config{Fs: 1000},
		Workers:      1,
		Shards:       1,
		QueueSamples: 2048,
		IdleTimeout:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	chunk := make([]float64, 1024)
	for i := range chunk {
		chunk[i] = 10
	}
	if err := e.Feed(1, 0, chunk); err != nil {
		t.Fatal(err)
	}
	if err := e.FlushSession(1); err != nil {
		t.Fatal(err)
	}
	if err := e.EndSession(1); err != nil {
		t.Fatal(err)
	}
	sh := e.shards[0]
	sh.freeMu.Lock()
	free := len(sh.freeBufs)
	sh.freeMu.Unlock()
	if free != 1 {
		t.Fatalf("ended session left %d buffers on the shard free-list, want 1", free)
	}
	if err := e.Feed(2, 0, chunk); err != nil {
		t.Fatal(err)
	}
	sh.freeMu.Lock()
	free = len(sh.freeBufs)
	sh.freeMu.Unlock()
	if free != 0 {
		t.Fatalf("recreated session did not take the free-list buffer (%d left)", free)
	}
}

// TestRingLazyGrowth pins the lazy-allocation contract: a fresh ring
// owns no backing store, materializes it geometrically as pushes
// arrive, and never exceeds the configured bound.
func TestRingLazyGrowth(t *testing.T) {
	r := newRing(1 << 15)
	if got := len(r.buf); got != 0 {
		t.Fatalf("fresh ring materialized %d samples of backing store", got)
	}
	r.push(make([]float64, 100))
	if got := len(r.buf); got > 1024 {
		t.Fatalf("100-sample ring materialized %d samples", got)
	}
	if d := r.push(make([]float64, 5000)); d != 0 {
		t.Fatalf("dropped %d below capacity", d)
	}
	if got, want := r.len(), 5100; got != want {
		t.Fatalf("len %d, want %d", got, want)
	}
	if len(r.buf) > 1<<15 {
		t.Fatalf("backing store %d exceeds bound %d", len(r.buf), 1<<15)
	}
	out := r.drain(nil)
	if len(out) != 5100 {
		t.Fatalf("drained %d", len(out))
	}
	// Overflow only at the bound.
	small := newRing(8)
	small.push([]float64{1, 2, 3, 4, 5, 6})
	if d := small.push([]float64{7, 8, 9, 10}); d != 2 {
		t.Fatalf("dropped %d at bound, want 2", d)
	}
	got := small.drain(nil)
	want := []float64{3, 4, 5, 6, 7, 8, 9, 10}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}
