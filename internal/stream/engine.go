package stream

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"passivelight/internal/telemetry"
)

// Sentinel errors for engine session management; test with errors.Is.
var (
	// ErrEngineClosed is returned by Feed, FlushSession and EndSession
	// after Close.
	ErrEngineClosed = errors.New("stream: engine closed")
	// ErrSessionEvicted is returned by FlushSession and EndSession
	// when the engine no longer tracks the session — it was never fed,
	// was ended explicitly, or was idle-evicted by the janitor.
	ErrSessionEvicted = errors.New("stream: session not tracked (evicted or never fed)")
	// ErrSessionTableFull is returned by Feed when MaxSessions
	// sessions are already tracked and the chunk addresses a new one.
	ErrSessionTableFull = errors.New("stream: session table full")
)

// EngineConfig tunes the concurrent session manager.
type EngineConfig struct {
	// Session is the template for per-session decoders. Session.Fs is
	// the default sample rate; Feed can override it per session.
	Session Config
	// Workers is the decode worker pool size, spread across the
	// shards. Zero selects runtime.GOMAXPROCS(0).
	Workers int
	// Shards splits the session table into independent groups, each
	// with its own map, lock, run queue and worker set; sessions are
	// hashed to a shard by stream id. More shards mean feeders and
	// workers on different cores never contend on one mutex or one
	// queue. Zero selects min(Workers, GOMAXPROCS); values above
	// Workers are clamped so every shard keeps at least one worker.
	Shards int
	// QueueSamples is the per-session ring buffer capacity. A session
	// that falls behind drops its oldest samples. Zero selects 32768.
	QueueSamples int
	// IdleTimeout evicts sessions that have not been fed for this
	// long (their open segment is flushed first). Zero selects 60 s;
	// negative disables eviction.
	IdleTimeout time.Duration
	// DetectionBuffer is the capacity of the Batches channel (and of
	// the flattened Detections channel); detection batches beyond it
	// are dropped (and counted). Zero selects 1024.
	DetectionBuffer int
	// MaxSessions bounds the session table across all shards. Feeds
	// for new sessions beyond it are rejected. Zero selects 65536.
	MaxSessions int
	// OnSessionEnd, when non-nil, fires once per session release,
	// after the session's final flush has published its detections:
	// reason "end" for an explicit EndSession, "idle" for janitor
	// eviction, "close" for engine shutdown. It runs on the releasing
	// goroutine (an EndSession caller, the janitor, or Close) with no
	// engine locks held, but must not block — the janitor and Close
	// release sessions serially. Cluster deployments use it to export
	// per-session decode totals at handoff time.
	OnSessionEnd func(id uint64, stats SessionStats, reason string)
	// Metrics, when non-nil, registers the engine's observability
	// surface into the registry: counters and gauges mirroring Stats
	// (read at snapshot time, zero hot-path cost) plus two histograms
	// recorded live on the worker path — pl_engine_decode_step_ns
	// (duration of one decode step) and pl_engine_detection_latency_ns
	// (last chunk arrival to detection publish).
	Metrics *telemetry.Registry
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Shards == 0 {
		c.Shards = min(c.Workers, runtime.GOMAXPROCS(0))
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Shards > c.Workers {
		c.Shards = c.Workers
	}
	if c.QueueSamples == 0 {
		c.QueueSamples = 32768
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 60 * time.Second
	}
	if c.DetectionBuffer == 0 {
		c.DetectionBuffer = 1024
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 65536
	}
	return c
}

// Stats is an operational snapshot of the engine.
type Stats struct {
	// Sessions currently tracked; Shards is the configured shard
	// count.
	Sessions int
	Shards   int
	// SamplesIn is the total samples accepted since start.
	SamplesIn int64
	// SamplesPerSec is the ingest rate measured since the previous
	// Stats call (or since start, for the first call).
	SamplesPerSec float64
	// Detections successfully decoded; DecodeErrors are segments that
	// completed but held no parsable packet.
	Detections, DecodeErrors int64
	// DroppedSamples were evicted from ring buffers of lagging
	// sessions; DroppedDetections overflowed the batched detection
	// channel.
	DroppedSamples, DroppedDetections int64
	// DroppedFlattened counts detections the Detections() flattening
	// forwarder discarded because its consumer stopped draining — the
	// abandoned-consumer signal, kept separate from DroppedDetections
	// so operators can tell a slow batch consumer from a dead
	// per-detection one.
	DroppedFlattened int64
	// Evicted counts idle sessions removed.
	Evicted int64
	// BufferedSamples is the current memory footprint across all
	// session rings and open decode segments, in samples.
	BufferedSamples int64
}

type session struct {
	id uint64
	// sh is the owning shard — the home of the session's share of the
	// engine counters and of the ring-buffer free-list its buffer
	// retires to.
	sh  *shard
	mu  sync.Mutex
	rng *ring
	// dec is owned by whichever goroutine holds a claim (scheduled
	// for workers and drains, evicted for teardown) — it is NOT
	// guarded by mu.
	dec *Decoder
	// scheduled marks the session as enqueued on its shard's run
	// queue or being drained by a worker/drainNow; at most one
	// run-queue entry exists per session.
	scheduled bool
	// evicted is the terminal claim: set (under mu, only when
	// !scheduled) by the janitor, EndSession or Close. Once set, no
	// other goroutine touches the session again — a Feed holding a
	// stale pointer sees it and retries against the session table.
	evicted  bool
	lastFeed time.Time
	// created anchors the session's stream time to the wall clock
	// (first sample arrived then).
	created time.Time
	// buffered mirrors dec.Buffered() for Stats, updated by the claim
	// owner after each decode step.
	buffered atomic.Int64
}

// shardStats is one shard's slice of the engine-wide counters. Every
// shard owns a private copy — padded out to a cache line — so feeders
// and workers of different shards never write the same line (the old
// engine-global atomics funneled every shard's feed and publish path
// through one contended cache line); Stats() and the telemetry counter
// funcs fold the shards at snapshot time instead.
type shardStats struct {
	samplesIn, detections, decodeErrs   atomic.Int64
	droppedSamples, droppedDets, evicts atomic.Int64
	_                                   [16]byte // pad to 64 bytes
}

// maxShardFreeBufs bounds each shard's ring-buffer free-list; overflow
// spills to the global ringBufPool.
const maxShardFreeBufs = 32

// shard is one independent slice of the engine: its own session
// table, lock, run queue, counters and ring-buffer free-list, drained
// by its own workers. Feeders and workers of different shards share
// nothing but the detection output. The run queue is a slice FIFO
// under the shard mutex (not a channel pre-sized at MaxSessions — that
// would multiply idle memory by the shard count); cond wakes the
// shard's workers on enqueue and on Close. At most one entry exists
// per session (the scheduled flag), so the FIFO is bounded by the
// shard's session count.
type shard struct {
	mu       sync.Mutex
	sessions map[uint64]*session
	stopped  bool // set under mu by Close; session lookup refuses new sessions, workers exit
	// runq[runqHead:] is the FIFO of scheduled sessions. A head index
	// (instead of re-slicing runq[1:]) keeps the backing array in
	// place, so steady-state enqueue/dequeue cycles never re-allocate
	// it; the array is bounded by the shard's session count because at
	// most one entry exists per session.
	runq     []*session
	runqHead int
	cond     *sync.Cond // signaled on enqueue; broadcast on Close

	stats shardStats

	// freeMu guards the shard-local ring-buffer free-list, the fast
	// front of the sync.Pool hybrid: session churn inside one shard
	// recycles buffers without even the pool's CAS traffic, and the
	// global pool catches cross-shard and cross-engine reuse. Lock
	// order: sh.mu may be held when freeMu is taken, never the
	// reverse.
	freeMu   sync.Mutex
	freeBufs [][]float64
}

// getRingBuf pops a recycled ring backing array: shard free-list
// first, then the global pool. nil means allocate lazily.
func (sh *shard) getRingBuf() []float64 {
	sh.freeMu.Lock()
	if n := len(sh.freeBufs); n > 0 {
		b := sh.freeBufs[n-1]
		sh.freeBufs[n-1] = nil
		sh.freeBufs = sh.freeBufs[:n-1]
		sh.freeMu.Unlock()
		return b
	}
	sh.freeMu.Unlock()
	if v := ringBufPool.Get(); v != nil {
		return *(v.(*[]float64))
	}
	return nil
}

// recycleRingBuf returns a retired session's ring backing array to the
// free-list (or the global pool when the list is full).
func (sh *shard) recycleRingBuf(buf []float64) {
	if cap(buf) == 0 {
		return
	}
	sh.freeMu.Lock()
	if len(sh.freeBufs) < maxShardFreeBufs {
		sh.freeBufs = append(sh.freeBufs, buf)
		sh.freeMu.Unlock()
		return
	}
	sh.freeMu.Unlock()
	ringBufPool.Put(&buf)
}

// enqueue appends a scheduled session and wakes one worker.
func (sh *shard) enqueue(s *session) {
	sh.mu.Lock()
	sh.runq = append(sh.runq, s)
	sh.mu.Unlock()
	sh.cond.Signal()
}

// dequeue blocks until a session is scheduled or the engine stops;
// ok=false means stop. Entries still queued at stop time are left for
// Close's sweep, mirroring the old stranded-channel-entry semantics.
func (sh *shard) dequeue() (*session, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for sh.runqHead == len(sh.runq) && !sh.stopped {
		sh.cond.Wait()
	}
	if sh.stopped {
		return nil, false
	}
	s := sh.runq[sh.runqHead]
	sh.runq[sh.runqHead] = nil
	sh.runqHead++
	if sh.runqHead == len(sh.runq) {
		// Empty: rewind onto the same backing array.
		sh.runq = sh.runq[:0]
		sh.runqHead = 0
	}
	return s, true
}

// Engine multiplexes many concurrent streaming decode sessions over a
// sharded worker pool: sessions are hashed by id to one of N shards,
// each with a private map, mutex, run queue and workers, so aggregate
// ingest scales across cores instead of serializing on one lock and
// one queue. Feeds are cheap (a ring-buffer copy); decoding happens
// on the workers; detections are delivered in batches (one channel
// send per decode step, not per detection). All methods are safe for
// concurrent use.
type Engine struct {
	cfg    EngineConfig
	shards []*shard
	// sessionCount enforces MaxSessions across shards.
	sessionCount atomic.Int64

	batches chan []Detection
	closed  chan struct{}
	once    sync.Once
	wg      sync.WaitGroup

	// flat is the per-detection view of batches, built on first use.
	flatOnce sync.Once
	flat     chan Detection

	// lifeMu serializes Close (writer) against the caller-goroutine
	// drain operations FlushSession/FlushAll/EndSession (readers):
	// Close must not touch session decoders while a flusher holds a
	// drain claim, and a flusher must not spin on claims that no
	// worker is left alive to release.
	lifeMu sync.RWMutex

	pubMu      sync.RWMutex
	detsClosed bool

	// droppedFlat belongs to the engine-wide flattening forwarder; all
	// hot-path counters live in the per-shard shardStats blocks.
	droppedFlat atomic.Int64

	// tel holds the live-recorded histograms; nil when the engine runs
	// without a metrics registry, which keeps time.Now off the worker
	// path entirely.
	tel *engineTelemetry

	rateMu      sync.Mutex
	rateTime    time.Time
	rateSamples int64
}

// DefaultShards reports the shard count a zero EngineConfig resolves
// to in this process — the GOMAXPROCS-bound auto setting. Tooling
// (benchdump) records it alongside bench results so committed
// baselines say what sharding they actually ran with.
func DefaultShards() int { return EngineConfig{}.withDefaults().Shards }

// NewEngine starts the sharded worker pool and idle-eviction janitor.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.Session.Fs <= 0 {
		return nil, errors.New("stream: engine config needs Session.Fs > 0")
	}
	e := &Engine{
		cfg:      cfg,
		shards:   make([]*shard, cfg.Shards),
		batches:  make(chan []Detection, cfg.DetectionBuffer),
		closed:   make(chan struct{}),
		rateTime: time.Now(),
	}
	// Spread the workers: shard i gets floor(W/S) workers plus one of
	// the remainder, so every shard has at least one.
	base, rem := cfg.Workers/cfg.Shards, cfg.Workers%cfg.Shards
	for i := range e.shards {
		sh := &shard{sessions: make(map[uint64]*session)}
		sh.cond = sync.NewCond(&sh.mu)
		e.shards[i] = sh
		workers := base
		if i < rem {
			workers++
		}
		for w := 0; w < workers; w++ {
			e.wg.Add(1)
			go e.worker(sh)
		}
	}
	if cfg.IdleTimeout > 0 {
		e.wg.Add(1)
		go e.janitor()
	}
	if cfg.Metrics != nil {
		e.tel = e.registerMetrics(cfg.Metrics)
	}
	return e, nil
}

// engineTelemetry is the engine's live-recorded metric set.
type engineTelemetry struct {
	decodeStep *telemetry.Histogram
	latency    *telemetry.Histogram
}

// sumShards folds one shard-local counter across all shards — the
// snapshot-time half of the shard-local counter scheme. pick must be a
// capture-free selector so the call allocates nothing.
func (e *Engine) sumShards(pick func(*shardStats) *atomic.Int64) int64 {
	var n int64
	for _, sh := range e.shards {
		n += pick(&sh.stats).Load()
	}
	return n
}

// registerMetrics publishes the engine's observability surface. The
// Stats counters are exported as snapshot-time funcs folding the
// shard-local counters, so scraping costs nothing on the decode path;
// only the two histograms record live.
func (e *Engine) registerMetrics(reg *telemetry.Registry) *engineTelemetry {
	reg.CounterFunc("pl_engine_samples_in_total", "samples accepted across all sessions", func() int64 {
		return e.sumShards(func(st *shardStats) *atomic.Int64 { return &st.samplesIn })
	})
	reg.CounterFunc("pl_engine_detections_total", "successfully decoded detections", func() int64 {
		return e.sumShards(func(st *shardStats) *atomic.Int64 { return &st.detections })
	})
	reg.CounterFunc("pl_engine_decode_errors_total", "segments that held no parsable packet", func() int64 {
		return e.sumShards(func(st *shardStats) *atomic.Int64 { return &st.decodeErrs })
	})
	reg.CounterFunc("pl_engine_dropped_samples_total", "samples evicted from lagging session rings", func() int64 {
		return e.sumShards(func(st *shardStats) *atomic.Int64 { return &st.droppedSamples })
	})
	reg.CounterFunc("pl_engine_dropped_detections_total", "detection batches dropped on channel overflow", func() int64 {
		return e.sumShards(func(st *shardStats) *atomic.Int64 { return &st.droppedDets })
	})
	reg.CounterFunc("pl_engine_dropped_flattened_total", "detections dropped by the flattening forwarder (abandoned consumer)", e.droppedFlat.Load)
	reg.CounterFunc("pl_engine_sessions_evicted_total", "idle sessions evicted", func() int64 {
		return e.sumShards(func(st *shardStats) *atomic.Int64 { return &st.evicts })
	})
	reg.GaugeFunc("pl_engine_sessions_active", "sessions currently tracked", func() float64 {
		return float64(e.sessionCount.Load())
	})
	reg.GaugeFunc("pl_engine_sessions_limit", "configured MaxSessions bound", func() float64 {
		return float64(e.cfg.MaxSessions)
	})
	reg.GaugeFunc("pl_engine_shards", "configured shard count", func() float64 {
		return float64(len(e.shards))
	})
	reg.GaugeFunc("pl_engine_buffered_samples", "ring-buffer plus open-segment occupancy in samples", func() float64 {
		_, samples := e.bufferedSamples()
		return float64(samples)
	})
	reg.GaugeFunc("pl_engine_occupancy", "queue fill fraction (0 idle .. 1 saturated), the backpressure signal", e.Occupancy)
	return &engineTelemetry{
		decodeStep: reg.Histogram("pl_engine_decode_step_ns", "duration of one worker decode step"),
		latency:    reg.Histogram("pl_engine_detection_latency_ns", "last chunk arrival to detection publish"),
	}
}

// shardOf hashes a stream id onto a shard. Fibonacci mixing spreads
// sequential ids (the common assignment scheme) as well as sparse
// hashes.
func (e *Engine) shardOf(id uint64) *shard {
	if len(e.shards) == 1 {
		return e.shards[0]
	}
	h := id * 0x9E3779B97F4A7C15
	return e.shards[(h>>32)%uint64(len(e.shards))]
}

// Feed routes one chunk of RSS samples to the session's ring buffer
// and wakes a worker on the session's shard. fs selects the session
// sample rate on first feed; zero uses the engine default. Feeding an
// existing session with a different non-zero fs is an error.
func (e *Engine) Feed(id uint64, fs float64, chunk []float64) error {
	if len(chunk) == 0 {
		return nil
	}
	// A chunk larger than the ring would structurally evict its own
	// head before any worker saw it. Split it and apply backpressure:
	// each sub-push waits for ring space (workers free it with a
	// quick copy), so replaying a long recorded trace in one call is
	// lossless. Normal-sized feeds stay non-blocking with drop-oldest
	// semantics for real-time streams.
	if max := e.cfg.QueueSamples; len(chunk) > max {
		for len(chunk) > max {
			if err := e.feedChunk(id, fs, chunk[:max], true); err != nil {
				return err
			}
			chunk = chunk[max:]
		}
		return e.feedChunk(id, fs, chunk, true)
	}
	return e.feedChunk(id, fs, chunk, false)
}

func (e *Engine) feedChunk(id uint64, fs float64, chunk []float64, wait bool) error {
	sh := e.shardOf(id)
	for {
		s, err := e.session(sh, id, fs)
		if err != nil {
			sh.stats.droppedSamples.Add(int64(len(chunk)))
			return err
		}
		s.mu.Lock()
		if s.evicted {
			// The session was torn down between lookup and lock;
			// retry against the table (a fresh session, or an
			// engine-closed error).
			s.mu.Unlock()
			continue
		}
		if wait && s.rng.len()+len(chunk) > s.rng.capacity() {
			// Backpressure: the ring holds earlier sub-chunks a
			// worker has not copied out yet. The content's wake is
			// already queued (scheduled), so a worker will free the
			// space; closing the engine surfaces via the session
			// lookup on the next retry.
			s.mu.Unlock()
			time.Sleep(time.Millisecond)
			continue
		}
		dropped := s.rng.push(chunk)
		s.lastFeed = time.Now()
		wake := !s.scheduled
		if wake {
			s.scheduled = true
		}
		s.mu.Unlock()
		sh.stats.samplesIn.Add(int64(len(chunk)))
		if dropped > 0 {
			sh.stats.droppedSamples.Add(int64(dropped))
		}
		if wake {
			sh.enqueue(s)
		}
		return nil
	}
}

func (e *Engine) session(sh *shard, id uint64, fs float64) (*session, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.stopped {
		return nil, ErrEngineClosed
	}
	if s, ok := sh.sessions[id]; ok {
		if fs != 0 && fs != s.dec.cfg.Fs {
			return nil, fmt.Errorf("stream: session %d is at %g Hz, chunk says %g Hz", id, s.dec.cfg.Fs, fs)
		}
		return s, nil
	}
	// The cap is engine-wide; claim a slot before creating so
	// concurrent creations on different shards cannot overshoot.
	if e.sessionCount.Add(1) > int64(e.cfg.MaxSessions) {
		e.sessionCount.Add(-1)
		return nil, fmt.Errorf("%w (%d)", ErrSessionTableFull, e.cfg.MaxSessions)
	}
	scfg := e.cfg.Session
	if fs != 0 {
		scfg.Fs = fs
	}
	dec, err := NewDecoder(scfg)
	if err != nil {
		e.sessionCount.Add(-1)
		return nil, err
	}
	now := time.Now()
	s := &session{
		id:       id,
		sh:       sh,
		rng:      newRingWith(e.cfg.QueueSamples, sh.getRingBuf()),
		dec:      dec,
		lastFeed: now,
		created:  now,
	}
	sh.sessions[id] = s
	return s, nil
}

// worker drains scheduled sessions of one shard: pull everything from
// the ring, run the decode state machine, publish detections, repeat
// until the ring is empty.
func (e *Engine) worker(sh *shard) {
	defer e.wg.Done()
	var scratch []float64
	for {
		s, ok := sh.dequeue()
		if !ok {
			return
		}
		for {
			s.mu.Lock()
			scratch = s.rng.drain(scratch[:0])
			arrival := s.lastFeed
			if len(scratch) == 0 {
				s.scheduled = false
				s.mu.Unlock()
				break
			}
			s.mu.Unlock()
			var t0 time.Time
			if e.tel != nil {
				t0 = time.Now()
			}
			dets := s.dec.Feed(scratch)
			if e.tel != nil {
				e.tel.decodeStep.Observe(int64(time.Since(t0)))
			}
			s.buffered.Store(int64(s.dec.Buffered()))
			e.publish(s, dets, arrival)
		}
	}
}

// publish stamps one decode step's detections and delivers them to
// the consumer in a single channel send. The slice comes fresh from
// the session decoder, so ownership transfers to the consumer.
// arrival is the wall-clock time the session was last fed before this
// decode step — the chunk-arrival anchor of the detection-latency
// histogram and of Detection.Arrival.
func (e *Engine) publish(s *session, dets []Detection, arrival time.Time) {
	if len(dets) == 0 {
		return
	}
	var latency int64
	if e.tel != nil && !arrival.IsZero() {
		latency = int64(time.Since(arrival))
	}
	st := &s.sh.stats
	e.pubMu.RLock()
	defer e.pubMu.RUnlock()
	for i := range dets {
		det := &dets[i]
		det.Session = s.id
		// Anchor stream time to the wall clock: for a real-time
		// paced stream this is the actual pass time, regardless of
		// when the segment got decoded or consumed.
		det.Wall = s.created.Add(time.Duration(det.TimeSec * float64(time.Second)))
		det.Arrival = arrival
		if det.Err != nil {
			st.decodeErrs.Add(1)
		} else {
			st.detections.Add(1)
		}
		if e.tel != nil {
			e.tel.latency.Observe(latency)
		}
	}
	if e.detsClosed {
		st.droppedDets.Add(int64(len(dets)))
		RecycleBatch(dets)
		return
	}
	select {
	case e.batches <- dets:
	default:
		// No consumer took ownership: count the loss and recycle the
		// batch ourselves.
		st.droppedDets.Add(int64(len(dets)))
		RecycleBatch(dets)
	}
}

// janitor evicts sessions that have been idle past the timeout,
// flushing their open segment first.
func (e *Engine) janitor() {
	defer e.wg.Done()
	interval := e.cfg.IdleTimeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-e.closed:
			return
		case now := <-tick.C:
			var stale []*session
			for _, sh := range e.shards {
				sh.mu.Lock()
				var shardStale []*session
				for _, s := range sh.sessions {
					s.mu.Lock()
					if !s.scheduled && s.rng.len() == 0 && now.Sub(s.lastFeed) > e.cfg.IdleTimeout {
						// Terminal claim: no worker holds the session
						// (!scheduled) and none can acquire it afterwards
						// (a racing Feed sees evicted and retries, which
						// recreates the session fresh).
						s.evicted = true
						shardStale = append(shardStale, s)
					}
					s.mu.Unlock()
				}
				for _, s := range shardStale {
					delete(sh.sessions, s.id)
				}
				e.sessionCount.Add(-int64(len(shardStale)))
				sh.mu.Unlock()
				stale = append(stale, shardStale...)
			}
			for _, s := range stale {
				// Terminal claim held: lastFeed is stable now.
				e.publish(s, s.dec.Flush(), s.lastFeed)
				s.sh.stats.evicts.Add(1)
				e.sessionEnded(s, "idle")
			}
		}
	}
}

// FlushSession forces end-of-stream on one session: pending ring
// samples are decoded and any open segment is flushed. The session
// stays registered.
func (e *Engine) FlushSession(id uint64) error {
	e.lifeMu.RLock()
	defer e.lifeMu.RUnlock()
	sh := e.shardOf(id)
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	sh.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: session %d", ErrSessionEvicted, id)
	}
	e.drainNow(s)
	return nil
}

// FlushAll forces end-of-stream on every registered session (e.g.
// when a deployment-wide capture window closes).
func (e *Engine) FlushAll() {
	e.lifeMu.RLock()
	defer e.lifeMu.RUnlock()
	for _, sh := range e.shards {
		sh.mu.Lock()
		sessions := make([]*session, 0, len(sh.sessions))
		for _, s := range sh.sessions {
			sessions = append(sessions, s)
		}
		sh.mu.Unlock()
		for _, s := range sessions {
			e.drainNow(s)
		}
	}
}

// drainNow synchronously decodes a session's pending samples and
// flushes its open segment. It waits for a concurrent worker drain to
// settle by claiming the scheduled flag itself. A session that gets
// evicted while we wait needs nothing more — eviction flushed it.
func (e *Engine) drainNow(s *session) {
	for {
		select {
		case <-e.closed:
			// Shutting down: a scheduled claim may be stranded on the
			// run queue with no worker left to release it. Yield —
			// Close flushes every session itself.
			return
		default:
		}
		s.mu.Lock()
		if s.evicted {
			s.mu.Unlock()
			return
		}
		if s.scheduled {
			s.mu.Unlock()
			time.Sleep(time.Millisecond)
			continue
		}
		s.scheduled = true
		pending := s.rng.drain(getSegBuf())
		arrival := s.lastFeed
		s.mu.Unlock()
		if len(pending) > 0 {
			e.publish(s, s.dec.Feed(pending), arrival)
		}
		putSegBuf(pending)
		dets := s.dec.Flush()
		s.buffered.Store(int64(s.dec.Buffered()))
		e.publish(s, dets, arrival)
		s.mu.Lock()
		done := s.rng.len() == 0
		s.scheduled = false
		s.mu.Unlock()
		if done {
			return
		}
	}
}

// EndSession flushes and removes one session: its pending samples
// decode, its open segment flushes, and the next Feed for the same id
// starts a fresh stream. Use when a sensor's stream restarts (e.g. a
// node reconnect) so old and new epochs cannot splice together.
func (e *Engine) EndSession(id uint64) error {
	e.lifeMu.RLock()
	defer e.lifeMu.RUnlock()
	sh := e.shardOf(id)
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	if ok {
		delete(sh.sessions, id)
		e.sessionCount.Add(-1)
	}
	sh.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: session %d", ErrSessionEvicted, id)
	}
	// Terminal claim, waiting out any worker currently draining.
	for {
		select {
		case <-e.closed:
			// Shutting down: hand the session back so Close's sweep
			// (which runs after this RLock is released and clears
			// stranded claims) flushes it instead.
			sh.mu.Lock()
			sh.sessions[id] = s
			e.sessionCount.Add(1)
			sh.mu.Unlock()
			return ErrEngineClosed
		default:
		}
		s.mu.Lock()
		if !s.scheduled {
			s.evicted = true
			s.mu.Unlock()
			break
		}
		s.mu.Unlock()
		time.Sleep(time.Millisecond)
	}
	s.mu.Lock()
	pending := s.rng.drain(getSegBuf())
	arrival := s.lastFeed
	s.mu.Unlock()
	if len(pending) > 0 {
		e.publish(s, s.dec.Feed(pending), arrival)
	}
	putSegBuf(pending)
	e.publish(s, s.dec.Flush(), arrival)
	e.sessionEnded(s, "end")
	return nil
}

// sessionEnded fires the release hook for a terminally-claimed
// session whose final flush has published, then recycles the session's
// pooled state (ring backing array to the shard free-list, decoder
// segment buffer to the global pool). Safe without s.mu: the terminal
// claim was taken under s.mu, so every other goroutine that could
// touch the ring or decoder has either finished or will observe
// evicted first and back off.
func (e *Engine) sessionEnded(s *session, reason string) {
	if e.cfg.OnSessionEnd != nil {
		e.cfg.OnSessionEnd(s.id, s.dec.Stats(), reason)
	}
	s.sh.recycleRingBuf(s.rng.release())
	s.dec.release()
}

// Batches is the engine's native output: every channel receive
// carries all detections of one decode step, so the engine pays one
// channel operation per step instead of one per detection. The
// channel is closed by Close after all sessions are flushed. Consume
// either Batches or Detections, not both.
func (e *Engine) Batches() <-chan []Detection { return e.batches }

// Detections is the per-detection view of the output stream,
// flattened from Batches by a forwarding goroutine started on first
// call. Like the batch channel, delivery is non-blocking: detections
// beyond the buffer are dropped and counted, so an abandoned consumer
// strands neither the forwarder nor the engine shutdown. The channel
// is closed after Close has flushed every session. Consume either
// Detections or Batches, not both.
func (e *Engine) Detections() <-chan Detection {
	e.flatOnce.Do(func() {
		e.flat = make(chan Detection, e.cfg.DetectionBuffer)
		go func() {
			for batch := range e.batches {
				for _, det := range batch {
					select {
					case e.flat <- det:
					default:
						e.droppedFlat.Add(1)
					}
				}
				// The forwarder is the batch's consumer of record;
				// once flattened (values copied onto flat) the slice
				// goes back to the pool.
				RecycleBatch(batch)
			}
			close(e.flat)
		}()
	})
	return e.flat
}

// Occupancy reports how full the engine is on a 0..1 scale: the
// larger of mean session-ring fill (buffered samples over sessions ×
// QueueSamples) and detection-channel fill. Near 0 the engine is
// keeping up; near 1 the next chunks will start displacing buffered
// samples or detection batches. This is the signal cluster
// backpressure keys off (NetSource.AutoThrottle).
func (e *Engine) Occupancy() float64 {
	sessions, samples := e.bufferedSamples()
	var ring float64
	if capacity := int64(sessions) * int64(e.cfg.QueueSamples); capacity > 0 {
		ring = float64(samples) / float64(capacity)
	}
	var dets float64
	if c := cap(e.batches); c > 0 {
		dets = float64(len(e.batches)) / float64(c)
	}
	if dets > ring {
		return dets
	}
	return ring
}

// bufferedSamples walks the session tables and sums ring occupancy
// plus open decode segments — shared by Stats and the
// pl_engine_buffered_samples gauge. Sessions are visited in place
// under their shard lock (the same sh.mu → s.mu nesting the janitor
// uses), so polling it — AutoThrottle does, several times a second —
// allocates nothing.
func (e *Engine) bufferedSamples() (sessions int, samples int64) {
	for _, sh := range e.shards {
		sh.mu.Lock()
		sessions += len(sh.sessions)
		for _, s := range sh.sessions {
			s.mu.Lock()
			pending := s.rng.len()
			s.mu.Unlock()
			samples += int64(pending) + s.buffered.Load()
		}
		sh.mu.Unlock()
	}
	return sessions, samples
}

// Stats returns an operational snapshot, folding the shard-local
// counters.
func (e *Engine) Stats() Stats {
	st := Stats{
		Shards:           len(e.shards),
		DroppedFlattened: e.droppedFlat.Load(),
	}
	for _, sh := range e.shards {
		ss := &sh.stats
		st.SamplesIn += ss.samplesIn.Load()
		st.Detections += ss.detections.Load()
		st.DecodeErrors += ss.decodeErrs.Load()
		st.DroppedSamples += ss.droppedSamples.Load()
		st.DroppedDetections += ss.droppedDets.Load()
		st.Evicted += ss.evicts.Load()
	}
	st.Sessions, st.BufferedSamples = e.bufferedSamples()
	e.rateMu.Lock()
	now := time.Now()
	if dt := now.Sub(e.rateTime).Seconds(); dt > 0 {
		st.SamplesPerSec = float64(st.SamplesIn-e.rateSamples) / dt
	}
	e.rateTime = now
	e.rateSamples = st.SamplesIn
	e.rateMu.Unlock()
	return st
}

// Close stops the workers and janitor, flushes every session's
// remaining samples and open segments, and closes the detection
// output.
func (e *Engine) Close() {
	e.once.Do(func() {
		// Refuse feeds first: a producer racing Close could otherwise
		// keep a worker's drain loop fed forever and wg.Wait below
		// would never return. The broadcast releases workers parked in
		// dequeue.
		for _, sh := range e.shards {
			sh.mu.Lock()
			sh.stopped = true
			sh.mu.Unlock()
			sh.cond.Broadcast()
		}
		close(e.closed)
		e.wg.Wait()
		// Wait out in-flight FlushSession/FlushAll/EndSession callers
		// (they hold drain claims on session decoders) and block new
		// ones for the remainder of the shutdown.
		e.lifeMu.Lock()
		defer e.lifeMu.Unlock()
		var sessions []*session
		for _, sh := range e.shards {
			sh.mu.Lock()
			// Entries stranded on the run queue when the workers
			// exited hold a scheduled claim nobody will release;
			// clear them so the per-session drain below owns the
			// decoders.
			for _, s := range sh.runq[sh.runqHead:] {
				s.mu.Lock()
				s.scheduled = false
				s.mu.Unlock()
			}
			sh.runq, sh.runqHead = nil, 0
			for _, s := range sh.sessions {
				sessions = append(sessions, s)
			}
			e.sessionCount.Add(-int64(len(sh.sessions)))
			sh.sessions = make(map[uint64]*session)
			sh.mu.Unlock()
		}
		for _, s := range sessions {
			// Workers are stopped; claim terminally (so a Feed still
			// holding the pointer retries into the engine-closed
			// error instead of feeding a dead ring), then drain.
			s.mu.Lock()
			s.evicted = true
			pending := s.rng.drain(getSegBuf())
			arrival := s.lastFeed
			s.mu.Unlock()
			if len(pending) > 0 {
				e.publish(s, s.dec.Feed(pending), arrival)
			}
			putSegBuf(pending)
			e.publish(s, s.dec.Flush(), arrival)
			e.sessionEnded(s, "close")
		}
		e.pubMu.Lock()
		e.detsClosed = true
		close(e.batches)
		e.pubMu.Unlock()
	})
}
