package stream

import (
	"fmt"
	"testing"

	"passivelight/internal/coding"
	"passivelight/internal/decoder"
	"passivelight/internal/scenario"
)

// TestStreamMatchesBatchAcrossLinks is the subsystem's contract: a
// chunked streaming decode of a trace yields bit-identical payloads
// to the batch decoder.Decode of the same trace, across simulated
// links spanning heights, stripe widths, speeds and payloads.
func TestStreamMatchesBatchAcrossLinks(t *testing.T) {
	payloads := []string{"10", "00", "0110", "1001", "111000"}
	heights := []float64{0.15, 0.20, 0.25}
	widths := []float64{0.03, 0.04}
	speeds := []float64{0.06, 0.08}
	links := 0
	for _, payload := range payloads {
		for _, h := range heights {
			for _, w := range widths {
				for _, v := range speeds {
					links++
					seed := int64(links)
					name := fmt.Sprintf("link%02d_h%.2f_w%.2f_v%.2f_%s", links, h, w, v, payload)
					t.Run(name, func(t *testing.T) {
						link, _, err := scenario.BenchParams{
							Height: h, SymbolWidth: w, Speed: v,
							Payload: payload, Seed: seed,
						}.Build()
						if err != nil {
							t.Fatal(err)
						}
						tr, err := link.Simulate()
						if err != nil {
							t.Fatal(err)
						}
						opt := decoder.Options{ExpectedSymbols: coding.PreambleLen + 2*len(payload)}
						batch, batchErr := decoder.Decode(tr, opt)

						dec, err := NewDecoder(Config{Fs: tr.Fs, Decode: opt, PreRollSec: -1})
						if err != nil {
							t.Fatal(err)
						}
						// Chunk size varies per link so the property
						// covers many chunkings, including tiny ones.
						chunk := 64 + (links*149)%1931
						var dets []Detection
						for lo := 0; lo < tr.Len(); lo += chunk {
							hi := min(lo+chunk, tr.Len())
							dets = append(dets, dec.Feed(tr.Samples[lo:hi])...)
						}
						dets = append(dets, dec.Flush()...)
						if len(dets) != 1 {
							t.Fatalf("streaming emitted %d detections, want 1", len(dets))
						}
						det := dets[0]
						if batchErr != nil || batch.ParseErr != nil {
							// Batch could not decode this link; the
							// stream must agree, not invent bits.
							if det.Err == nil {
								t.Fatalf("batch failed (%v/%v) but stream decoded %q", batchErr, batch.ParseErr, det.BitString())
							}
							return
						}
						if det.Err != nil {
							t.Fatalf("batch decoded %q but stream failed: %v", batch.Packet.BitString(), det.Err)
						}
						if det.BitString() != batch.Packet.BitString() {
							t.Fatalf("stream bits %q != batch bits %q", det.BitString(), batch.Packet.BitString())
						}
						if det.Symbols != batch.SymbolString() {
							t.Fatalf("stream symbols %q != batch symbols %q", det.Symbols, batch.SymbolString())
						}
					})
				}
			}
		}
	}
	if links < 50 {
		t.Fatalf("property covered %d links, want >= 50", links)
	}
}

// TestStreamCarShapeMatchesBatch runs the outdoor equivalence: a
// chunked CarShape stream decode equals the batch DecodeCarPass.
func TestStreamCarShapeMatchesBatch(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		link, pkt, err := scenario.OutdoorParams{
			Payload:        "1001",
			NoiseFloorLux:  6200,
			ReceiverHeight: 0.75,
			Seed:           seed,
		}.Build()
		if err != nil {
			t.Fatal(err)
		}
		tr, err := link.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		opt := decoder.Options{ExpectedSymbols: coding.PreambleLen + 2*len(pkt.Data)}
		batch, batchErr := decoder.DecodeCarPass(tr, opt)

		dec, err := NewDecoder(Config{Fs: tr.Fs, Decode: opt, PreRollSec: -1, CarShape: true})
		if err != nil {
			t.Fatal(err)
		}
		var dets []Detection
		for lo := 0; lo < tr.Len(); lo += 900 {
			hi := min(lo+900, tr.Len())
			dets = append(dets, dec.Feed(tr.Samples[lo:hi])...)
		}
		dets = append(dets, dec.Flush()...)
		if len(dets) != 1 {
			t.Fatalf("seed %d: %d detections, want 1", seed, len(dets))
		}
		det := dets[0]
		if batchErr != nil || batch.Decode.ParseErr != nil {
			if det.Err == nil {
				t.Fatalf("seed %d: batch failed (%v) but stream decoded %q", seed, batchErr, det.BitString())
			}
			continue
		}
		if det.Err != nil {
			t.Fatalf("seed %d: batch decoded %q but stream failed: %v", seed, batch.Decode.Packet.BitString(), det.Err)
		}
		if det.BitString() != batch.Decode.Packet.BitString() {
			t.Fatalf("seed %d: stream %q != batch %q", seed, det.BitString(), batch.Decode.Packet.BitString())
		}
	}
}

// TestStreamOnlineModeDecodesLiveLinks checks the default (bounded
// memory, online emission) configuration against the same simulated
// links: the session must emit the link's payload without waiting for
// an explicit flush of the full trace.
func TestStreamOnlineModeDecodesLiveLinks(t *testing.T) {
	payloads := []string{"10", "0110", "1001"}
	for i, payload := range payloads {
		link, _, err := scenario.BenchParams{
			Height: 0.20, SymbolWidth: 0.03, Speed: 0.08,
			Payload: payload, Seed: int64(100 + i),
		}.Build()
		if err != nil {
			t.Fatal(err)
		}
		tr, err := link.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		opt := decoder.Options{ExpectedSymbols: coding.PreambleLen + 2*len(payload)}
		want, err := decoder.Decode(tr, opt)
		if err != nil || want.ParseErr != nil {
			t.Fatalf("%s: batch decode failed: %v / %v", payload, err, want.ParseErr)
		}
		dec, err := NewDecoder(Config{Fs: tr.Fs, Decode: opt})
		if err != nil {
			t.Fatal(err)
		}
		var dets []Detection
		for lo := 0; lo < tr.Len(); lo += 256 {
			hi := min(lo+256, tr.Len())
			dets = append(dets, dec.Feed(tr.Samples[lo:hi])...)
		}
		dets = append(dets, dec.Flush()...)
		var got []string
		for _, det := range dets {
			if det.Err == nil {
				got = append(got, det.BitString())
			}
		}
		if len(got) != 1 || got[0] != want.Packet.BitString() {
			t.Fatalf("%s: online mode decoded %v, want [%s]", payload, got, want.Packet.BitString())
		}
		// Bounded memory: the session must not have retained the
		// whole trace.
		if dec.Buffered() >= tr.Len() {
			t.Fatalf("%s: session retained %d of %d samples", payload, dec.Buffered(), tr.Len())
		}
	}
}
