package experiments

import (
	"fmt"
	"math/rand"

	"passivelight/internal/channel"
	"passivelight/internal/coding"
	"passivelight/internal/core"
	"passivelight/internal/decoder"
	"passivelight/internal/frontend"
	"passivelight/internal/noise"
	"passivelight/internal/scenario"
	"passivelight/internal/scene"
)

// AblationAdaptiveResult contrasts the paper's per-packet adaptive
// thresholds against fixed thresholds calibrated under a different
// light level (DESIGN.md A1).
type AblationAdaptiveResult struct {
	Report Report
	// AdaptiveOK / FixedOK: did each decoder recover the packet under
	// the *changed* lighting?
	AdaptiveOK, FixedOK bool
	FixedDecoded        string
}

// AblationAdaptive calibrates thresholds on a 6200 lux pass, then
// decodes a 2500 lux pass with (a) those frozen thresholds and (b)
// the adaptive decoder.
func AblationAdaptive() (AblationAdaptiveResult, error) {
	res := AblationAdaptiveResult{Report: Report{ID: "ablation-adaptive", Title: "adaptive tau_r/tau_t vs fixed thresholds under a lighting change (6200 -> 2500 lux)"}}
	calib := scenario.OutdoorParams{Payload: "00", NoiseFloorLux: 6200, ReceiverHeight: 0.75, Seed: 80}
	calibLink, _, err := calib.Build()
	if err != nil {
		return res, err
	}
	calibTrace, err := calibLink.Simulate()
	if err != nil {
		return res, err
	}
	calibDec, err := decoder.DecodeCarPass(calibTrace, decoder.Options{ExpectedSymbols: 8})
	if err != nil {
		return res, fmt.Errorf("calibration pass failed: %w", err)
	}
	frozen := calibDec.Decode.Thresholds

	test := scenario.OutdoorParams{Payload: "00", NoiseFloorLux: 2500, ReceiverHeight: 0.75, Seed: 81}
	testLink, pkt, err := test.Build()
	if err != nil {
		return res, err
	}
	testTrace, err := testLink.Simulate()
	if err != nil {
		return res, err
	}
	// Adaptive: the paper's two-phase decode.
	if tp, err := decoder.DecodeCarPass(testTrace, decoder.Options{ExpectedSymbols: 8}); err == nil {
		res.AdaptiveOK = tp.Decode.ParseErr == nil && tp.Decode.Packet.BitString() == pkt.BitString()
	}
	// Fixed: frozen thresholds, no adaptation.
	if fd, err := decoder.DecodeFixed(testTrace, frozen, decoder.Options{ExpectedSymbols: 8}); err == nil {
		res.FixedDecoded = fd.SymbolString()
		res.FixedOK = fd.ParseErr == nil && fd.Packet.BitString() == pkt.BitString()
	}
	res.Report.addf("adaptive decode under new lighting: ok=%v", res.AdaptiveOK)
	res.Report.addf("fixed thresholds (calibrated at 6200 lux): ok=%v decoded=%q", res.FixedOK, res.FixedDecoded)
	res.Report.addf("paper: thresholds are obtained per packet and 'need to be highly adaptive'")
	return res, nil
}

// AblationManchesterResult compares Manchester against NRZ stripes
// under rippling mains light (DESIGN.md A2).
type AblationManchesterResult struct {
	Report Report
	// Success rates over random payloads.
	ManchesterRate, NRZRate float64
	Trials                  int
}

// AblationManchester encodes random 4-bit payloads both ways on the
// indoor bench under a fluorescent source with baseline drift and
// measures decode success.
func AblationManchester(quick bool) (AblationManchesterResult, error) {
	res := AblationManchesterResult{Report: Report{ID: "ablation-manchester", Title: "Manchester vs NRZ stripes under fluorescent ripple + drift"}}
	trials := 12
	if quick {
		trials = 4
	}
	res.Trials = trials
	rng := rand.New(rand.NewSource(90))
	manOK, nrzOK := 0, 0
	for trial := 0; trial < trials; trial++ {
		bits := make([]coding.Bit, 4)
		payload := ""
		for i := range bits {
			bits[i] = coding.Bit(rng.Intn(2))
			payload += string('0' + byte(bits[i]))
		}
		seed := int64(100 + trial)
		// Shared bench geometry under a rippling ceiling light with
		// slow drift.
		nm := noise.Model{ShotCoeff: 0.02, ThermalSigma: 0.2, DriftSigma: 0.05, Seed: seed}
		// Manchester run (standard packet tag) under the rippling
		// fixture: the bench spec with its optics swapped.
		spec, err := scenario.BenchParams{
			Height: 0.20, SymbolWidth: 0.03, Speed: 0.08,
			Payload: payload, Seed: seed, NoiseModel: &nm,
		}.Spec()
		if err != nil {
			return res, err
		}
		spec.Optics = scenario.CeilingOptics(300, 0.12, 50, nil)
		world, err := spec.Compile()
		if err != nil {
			return res, err
		}
		run, err := core.EndToEnd(world.Link, world.Packet(), decoder.Options{})
		if err != nil {
			return res, err
		}
		if run.Success {
			manOK++
		}
		// NRZ run: preamble HLHL + NRZ data stripes as a raw-symbol
		// scenario tag.
		symbols := append(append([]coding.Symbol{}, coding.Preamble...), coding.NRZEncode(bits)...)
		nrzSpec, err := scenario.BenchParams{
			Height: 0.20, SymbolWidth: 0.03, Speed: 0.08,
			Symbols: scenario.FormatSymbols(symbols), Seed: seed, NoiseModel: &nm,
		}.Spec()
		if err != nil {
			return res, err
		}
		nrzSpec.Optics = scenario.CeilingOptics(300, 0.12, 50, nil)
		nrzWorld, err := nrzSpec.Compile()
		if err != nil {
			return res, err
		}
		tr, err := nrzWorld.Link.Simulate()
		if err != nil {
			return res, err
		}
		dec, derr := decoder.Decode(tr, decoder.Options{ExpectedSymbols: len(symbols)})
		if derr == nil && len(dec.Symbols) == len(symbols) {
			good := true
			for i, want := range coding.Preamble {
				if dec.Symbols[i] != want {
					good = false
					break
				}
			}
			if good {
				got := coding.NRZDecode(dec.Symbols[coding.PreambleLen:])
				if coding.HammingDistance(got, bits) == 0 {
					nrzOK++
				}
			}
		}
	}
	res.ManchesterRate = float64(manOK) / float64(trials)
	res.NRZRate = float64(nrzOK) / float64(trials)
	res.Report.addf("Manchester success: %.0f%%  NRZ success: %.0f%% over %d random 4-bit payloads",
		100*res.ManchesterRate, 100*res.NRZRate, trials)
	res.Report.addf("Manchester guarantees a transition per bit: self-clocking and DC-balanced under ripple/drift")
	return res, nil
}

// AblationDTWResult compares DTW against plain Euclidean matching on
// variable-speed packets (DESIGN.md A3).
type AblationDTWResult struct {
	Report Report
	// Accuracy of each classifier over the distorted trials.
	DTWAccuracy, EuclideanAccuracy float64
	Trials                         int
}

// AblationDTW distorts '00'/'10' packets with random mid-pass speed
// multipliers and classifies with both distance measures.
func AblationDTW(quick bool) (AblationDTWResult, error) {
	res := AblationDTWResult{Report: Report{ID: "ablation-dtw", Title: "DTW vs Euclidean classification of variable-speed packets"}}
	trials := 10
	if quick {
		trials = 4
	}
	res.Trials = trials
	dtwCls := decoder.NewClassifier(256)
	eucCls := decoder.NewClassifier(256)
	eucCls.UseEuclidean = true
	for i, payload := range []string{"00", "10"} {
		link, _, err := fig5Bench(payload, int64(110+i)).Build()
		if err != nil {
			return res, err
		}
		tr, err := link.Simulate()
		if err != nil {
			return res, err
		}
		if err := dtwCls.AddBaseline(payload, tr); err != nil {
			return res, err
		}
		if err := eucCls.AddBaseline(payload, tr); err != nil {
			return res, err
		}
	}
	rng := rand.New(rand.NewSource(120))
	dtwOK, eucOK := 0, 0
	for trial := 0; trial < trials; trial++ {
		payload := "00"
		if rng.Intn(2) == 1 {
			payload = "10"
		}
		factor := 1.5 + rng.Float64()*1.5 // speed multiplier 1.5-3.0
		b := fig5Bench(payload, int64(130+trial))
		startX := -(0.2*0.0875 + 0.15)
		tagLen := 8 * b.SymbolWidth
		// Switch point: somewhere between 30% and 70% of the tag.
		switchAt := tagLen * (0.3 + 0.4*rng.Float64())
		dist := switchAt - startX
		tSwitch := dist / b.Speed
		traj, err := scene.NewPiecewiseSpeed(startX, []scene.SpeedSegment{
			{Until: tSwitch, Speed: b.Speed},
			{Until: 1e9, Speed: b.Speed * factor},
		})
		if err != nil {
			return res, err
		}
		b.Trajectory = traj
		link, _, err := b.Build()
		if err != nil {
			return res, err
		}
		tr, err := link.Simulate()
		if err != nil {
			return res, err
		}
		if m, err := dtwCls.Classify(tr); err == nil && m[0].Label == payload {
			dtwOK++
		}
		if m, err := eucCls.Classify(tr); err == nil && m[0].Label == payload {
			eucOK++
		}
	}
	res.DTWAccuracy = float64(dtwOK) / float64(trials)
	res.EuclideanAccuracy = float64(eucOK) / float64(trials)
	res.Report.addf("DTW accuracy: %.0f%%  Euclidean accuracy: %.0f%% over %d distorted packets",
		100*res.DTWAccuracy, 100*res.EuclideanAccuracy, trials)
	return res, nil
}

// AblationFoVResult quantifies the Fig. 2(b) trade-off: narrow FoV
// raises the signal-to-interference margin, wide FoV raises coverage
// (DESIGN.md A4).
type AblationFoVResult struct {
	Report Report
	Points []FoVPoint
}

// FoVPoint is one FoV sweep sample.
type FoVPoint struct {
	FoVDeg     float64
	Success    bool
	TauR       float64 // decision margin (counts)
	FootprintM float64 // ground coverage diameter (m)
}

// AblationFoV sweeps the receiver FoV on the outdoor pole.
func AblationFoV() (AblationFoVResult, error) {
	res := AblationFoVResult{Report: Report{ID: "ablation-fov", Title: "FoV sweep at h=75 cm, 6200 lux: decode margin vs coverage"}}
	for i, fov := range []float64{2, 4, 6, 10, 14, 20, 30, 40} {
		dev := frontend.RXLED()
		dev.FoVHalfAngleDeg = fov
		run, err := runCarPass("fov-sweep", scenario.OutdoorParams{
			Payload:        "00",
			NoiseFloorLux:  6200,
			ReceiverHeight: 0.75,
			Receiver:       dev,
			Seed:           int64(140 + i),
		})
		if err != nil {
			return res, err
		}
		rx := channel.Receiver{Height: 0.75, FoVHalfAngleDeg: fov}
		pt := FoVPoint{
			FoVDeg:     fov,
			Success:    run.Success,
			FootprintM: 2 * rx.FootprintRadius(),
		}
		res.Points = append(res.Points, pt)
		res.Report.addf("fov=+-%2.0f deg  footprint=%.2f m  decode ok=%v", fov, pt.FootprintM, pt.Success)
	}
	res.Report.addf("narrow FoV -> higher signal-to-interference, less coverage; wide FoV -> opposite (Fig. 2(b))")
	return res, nil
}

// AblationCodebookResult measures how the restricted codebooks of
// Sec. 4.2 trade capacity for error tolerance (DESIGN.md A5).
type AblationCodebookResult struct {
	Report Report
	Rows   []CodebookRow
}

// CodebookRow is one (minDist, flips) operating point.
type CodebookRow struct {
	MinDist    int
	Words      int
	Flips      int
	SuccessPct float64
}

// AblationCodebook builds 8-bit codebooks at increasing minimum
// Hamming distance and measures nearest-codeword recovery under
// random bit flips.
func AblationCodebook(quick bool) (AblationCodebookResult, error) {
	res := AblationCodebookResult{Report: Report{ID: "ablation-codebook", Title: "codebook minimum Hamming distance vs size vs recovery under bit flips (8-bit words)"}}
	trials := 400
	if quick {
		trials = 100
	}
	rng := rand.New(rand.NewSource(150))
	for _, minDist := range []int{1, 2, 3, 4, 5} {
		cb, err := coding.NewCodebook(8, minDist, 0)
		if err != nil {
			return res, err
		}
		for _, flips := range []int{1, 2} {
			ok := 0
			for trial := 0; trial < trials; trial++ {
				idx := rng.Intn(cb.Len())
				w, err := cb.Encode(idx)
				if err != nil {
					return res, err
				}
				// Flip `flips` distinct random positions.
				perm := rng.Perm(len(w))
				for f := 0; f < flips; f++ {
					w[perm[f]] ^= 1
				}
				if got, _ := cb.Decode(w); got == idx {
					ok++
				}
			}
			row := CodebookRow{MinDist: minDist, Words: cb.Len(), Flips: flips, SuccessPct: 100 * float64(ok) / float64(trials)}
			res.Rows = append(res.Rows, row)
			res.Report.addf("minDist=%d words=%3d flips=%d -> recovered %.0f%%", row.MinDist, row.Words, row.Flips, row.SuccessPct)
		}
	}
	res.Report.addf("paper: under distortion use 'far less codes ... inter-Hamming distances maximized'")
	return res, nil
}

// MaxSpeedResult probes future work (3): the maximal supported object
// speed for the outdoor link at 2 kS/s.
type MaxSpeedResult struct {
	Report Report
	// MaxKmh is the fastest speed that still decoded.
	MaxKmh float64
	Points []SpeedPoint
}

// SpeedPoint is one sweep sample.
type SpeedPoint struct {
	Kmh              float64
	Success          bool
	SamplesPerSymbol float64
}

// MaxSpeed sweeps car speed at h=75 cm, 6200 lux.
func MaxSpeed(quick bool) (MaxSpeedResult, error) {
	res := MaxSpeedResult{Report: Report{ID: "max-speed", Title: "maximal supported car speed (RX-LED, h=75 cm, 6200 lux, 2 kS/s)"}}
	speeds := []float64{18, 36, 54, 72, 90, 108, 126, 144}
	if quick {
		speeds = []float64{18, 54, 90, 126}
	}
	for i, kmh := range speeds {
		run, err := runCarPass("speed-sweep", scenario.OutdoorParams{
			Payload:        "00",
			NoiseFloorLux:  6200,
			ReceiverHeight: 0.75,
			SpeedKmh:       kmh,
			Seed:           int64(160 + i),
		})
		if err != nil {
			return res, err
		}
		symbolDur := core.OutdoorSymbolWidth / scene.KmhToMs(kmh)
		pt := SpeedPoint{Kmh: kmh, Success: run.Success, SamplesPerSymbol: symbolDur * core.OutdoorFs}
		res.Points = append(res.Points, pt)
		if run.Success {
			res.MaxKmh = kmh
		}
		res.Report.addf("%3.0f km/h (%4.1f samples/symbol): decode ok=%v", kmh, pt.SamplesPerSymbol, pt.Success)
	}
	res.Report.addf("bound set by receiver response time and sampling rate (paper future work (3))")
	return res, nil
}

// ReceiverSelectionResult exercises the Sec. 4.4 dual-receiver policy.
type ReceiverSelectionResult struct {
	Report Report
	Rows   []SelectionRow
}

// SelectionRow is one ambient operating point.
type SelectionRow struct {
	NoiseFloorLux float64
	Selected      string
	Err           string
}

// ReceiverSelection picks the best receiver across ambient levels.
func ReceiverSelection() (ReceiverSelectionResult, error) {
	res := ReceiverSelectionResult{Report: Report{ID: "receiver-selection", Title: "dual-receiver policy: most sensitive non-saturating receiver per noise floor"}}
	for _, lux := range []float64{50, 100, 440, 450, 1200, 3000, 5000, 10000, 34000, 40000} {
		row := SelectionRow{NoiseFloorLux: lux}
		dev, err := frontend.SelectReceiver(lux)
		if err != nil {
			row.Err = err.Error()
		} else {
			row.Selected = dev.Name
		}
		res.Rows = append(res.Rows, row)
		if row.Err != "" {
			res.Report.addf("%6.0f lux -> no usable receiver (%s)", lux, row.Err)
		} else {
			res.Report.addf("%6.0f lux -> %s", lux, row.Selected)
		}
	}
	res.Report.addf("paper: PD for low light, RX-LED for outdoor noise floors up to 35 klux")
	return res, nil
}
