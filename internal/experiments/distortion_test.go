package experiments

import "testing"

func TestDistortionSweep(t *testing.T) {
	res, err := Distortion()
	if err != nil {
		t.Fatal(err)
	}
	// Clean points decode both ways.
	if !res.Dirt[0].ThresholdOK || !res.Dirt[0].ClassifiedOK {
		t.Fatal("clean bench should decode and classify")
	}
	if !res.Fog[0].ThresholdOK {
		t.Fatal("clear air should decode")
	}
	// Moderate distortion survives (the adaptive thresholds are per
	// packet); extreme dirt kills the contrast.
	if !res.Dirt[2].ThresholdOK {
		t.Fatal("60% dirt should still decode (contrast reduced, not erased)")
	}
	last := res.Dirt[len(res.Dirt)-1]
	if last.ThresholdOK {
		t.Fatal("97% dirt should erase the contrast")
	}
	lastFog := res.Fog[len(res.Fog)-1]
	if lastFog.ThresholdOK {
		t.Fatal("96% fog should erase the contrast")
	}
}

func TestSignatureIDAllCorrect(t *testing.T) {
	res, err := SignatureID()
	if err != nil {
		t.Fatal(err)
	}
	if res.Total < 6 {
		t.Fatalf("only %d probes", res.Total)
	}
	if res.Correct != res.Total {
		t.Fatalf("identified %d/%d", res.Correct, res.Total)
	}
}

func TestEnergyClaims(t *testing.T) {
	res, err := Energy()
	if err != nil {
		t.Fatal(err)
	}
	if !res.TinyBoxSelfSustainingAt6200 {
		t.Fatal("tiny box should be solar-sustainable at 6200 lux")
	}
	if res.CameraRatio < 100 {
		t.Fatalf("camera ratio %.0f, want 'orders of magnitude'", res.CameraRatio)
	}
}

func TestDynamicTagTwoFrames(t *testing.T) {
	res, err := DynamicTag()
	if err != nil {
		t.Fatal(err)
	}
	if !res.BothCorrect {
		t.Fatalf("frames decoded %q / %q", res.FirstDecoded, res.SecondDecoded)
	}
}
