package experiments

import (
	"math"
	"strings"
	"testing"
)

// The experiment drivers are the reproduction record: these tests pin
// each figure's qualitative outcome to the paper's.

func TestFig5BothPacketsDecode(t *testing.T) {
	res, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 2 {
		t.Fatalf("runs %d", len(res.Runs))
	}
	for _, r := range res.Runs {
		if !r.Success {
			t.Fatalf("payload %q: decoded %s", r.Payload, r.Decoded)
		}
		// tau_t should match width/speed = 0.03/0.08 = 0.375 s.
		if math.Abs(r.TauT-0.375) > 0.05 {
			t.Fatalf("payload %q: tau_t %.3f, want ~0.375", r.Payload, r.TauT)
		}
	}
}

func TestFig6aLinearBoundary(t *testing.T) {
	res, err := Fig6a(true)
	if err != nil {
		t.Fatal(err)
	}
	if res.B <= 0 {
		t.Fatalf("boundary slope %v, want positive", res.B)
	}
	if res.R2 < 0.8 {
		t.Fatalf("boundary linearity R2 %v", res.R2)
	}
	// The slope should be within a factor ~2 of the paper's 5.4 m/m.
	if res.B < 2.5 || res.B > 11 {
		t.Fatalf("slope %v too far from paper's ~5.4", res.B)
	}
}

func TestFig6bThroughputFalls(t *testing.T) {
	res, err := Fig6b(true)
	if err != nil {
		t.Fatal(err)
	}
	if res.B >= 0 {
		t.Fatalf("throughput exponent %v, want negative", res.B)
	}
	prev := math.Inf(1)
	for _, p := range res.Points {
		if !p.Decodable {
			continue
		}
		if p.Throughput > prev {
			t.Fatalf("throughput not monotone: %+v", res.Points)
		}
		prev = p.Throughput
	}
}

func TestFig7CeilingLight(t *testing.T) {
	res, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("ceiling-light decode failed: %s", res.Decoded)
	}
	if res.RippleRatio < 10 {
		t.Fatalf("ripple ratio %v, want >> 1 (the 'thicker lines')", res.RippleRatio)
	}
	if res.GapRatio >= 1 {
		t.Fatalf("gap ratio %v, want < 1 (smaller HIGH-LOW difference)", res.GapRatio)
	}
}

func TestFig8ThresholdFailsDTWClassifies(t *testing.T) {
	res, err := Fig8DTW()
	if err != nil {
		t.Fatal(err)
	}
	if res.ThresholdCorrect {
		t.Fatal("threshold decode should fail under the speed doubling")
	}
	if res.Classified != "10" {
		t.Fatalf("classified %q, want 10", res.Classified)
	}
	// Distance ordering as in the paper: correct < incorrect, self
	// scale smallest.
	if res.DistTo10 >= res.DistTo00 {
		t.Fatalf("distance to correct baseline %v >= incorrect %v", res.DistTo10, res.DistTo00)
	}
	if res.SelfDist >= res.DistTo10 {
		t.Fatalf("self distance %v >= correct distance %v", res.SelfDist, res.DistTo10)
	}
}

func TestFig10CollisionCases(t *testing.T) {
	res, err := Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) != 3 {
		t.Fatalf("cases %d", len(res.Cases))
	}
	c1, c2, c3 := res.Cases[0], res.Cases[1], res.Cases[2]
	if !c1.TimeDecodable {
		t.Fatalf("case1 should decode in time domain: %s", c1.Decoded)
	}
	if c1.Tones != 1 {
		t.Fatalf("case1 tones %d", c1.Tones)
	}
	if math.Abs(c1.DominantFreq-1.5) > 0.4 {
		t.Fatalf("case1 dominant %.2f Hz, want ~1.5", c1.DominantFreq)
	}
	if !c2.TimeDecodable {
		t.Fatalf("case2 should decode in time domain: %s", c2.Decoded)
	}
	if c2.Tones != 1 {
		t.Fatalf("case2 tones %d", c2.Tones)
	}
	if math.Abs(c2.DominantFreq-3.0) > 0.4 {
		t.Fatalf("case2 dominant %.2f Hz, want ~3", c2.DominantFreq)
	}
	if c3.TimeDecodable {
		t.Fatal("case3 should be undecodable in the time domain")
	}
	if c3.Tones < 2 {
		t.Fatalf("case3 tones %d, want >= 2 (two object types visible)", c3.Tones)
	}
}

func TestFig11SpecVsMeasured(t *testing.T) {
	res, err := Fig11Table()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Measured saturation within 15% of the Fig. 11 spec.
		ratio := row.MeasuredSaturationLux / row.SpecSaturationLux
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("%s: measured saturation %.0f vs spec %.0f", row.Receiver, row.MeasuredSaturationLux, row.SpecSaturationLux)
		}
		// Measured sensitivity within 25% (quantization at the low end).
		if row.SpecSensitivity > 0 {
			r := row.MeasuredSensitivity / row.SpecSensitivity
			if r < 0.75 || r > 1.25 {
				t.Errorf("%s: measured sensitivity %.3f vs spec %.3f", row.Receiver, row.MeasuredSensitivity, row.SpecSensitivity)
			}
		}
	}
}

func TestFig13_14CarSignatures(t *testing.T) {
	res, err := Fig13_14()
	if err != nil {
		t.Fatal(err)
	}
	if res.VolvoModel != "hatchback" {
		t.Fatalf("volvo classified %q", res.VolvoModel)
	}
	if res.BMWModel != "sedan" {
		t.Fatalf("bmw classified %q", res.BMWModel)
	}
	if res.BMWPeaks <= res.VolvoPeaks {
		t.Fatalf("sedan should show more metal peaks: %d vs %d", res.BMWPeaks, res.VolvoPeaks)
	}
}

func TestFig15NoiseFloorCrossover(t *testing.T) {
	res, err := Fig15()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Runs[0].Success {
		t.Fatalf("450 lux should decode: %s / %s", res.Runs[0].Decoded, res.Runs[0].DecodeErr)
	}
	if res.Runs[1].Success {
		t.Fatal("100 lux should fail")
	}
}

func TestFig16CapResult(t *testing.T) {
	res, err := Fig16()
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs[0].Success {
		t.Fatal("bare PD should fail at 100 lux over the car roof")
	}
	if !res.Runs[1].Success {
		t.Fatalf("capped PD should decode: %s", res.Runs[1].DecodeErr)
	}
	// The cap costs RSS (the paper notes the drop).
	bare := res.Runs[0].Trace.Stats().Mean
	capped := res.Runs[1].Trace.Stats().Mean
	if capped >= bare {
		t.Fatalf("cap should reduce mean RSS: %v vs %v", capped, bare)
	}
}

func TestFig17WellIlluminated(t *testing.T) {
	res, err := Fig17()
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range res.Runs {
		if !run.Success {
			t.Fatalf("%s failed: %s / %s", run.Name, run.Decoded, run.DecodeErr)
		}
	}
	// Fig. 17(a): ~50 symbols/s.
	if math.Abs(res.Runs[0].ThroughputSym-50) > 5 {
		t.Fatalf("throughput %.1f, want ~50", res.Runs[0].ThroughputSym)
	}
}

func TestAblationAdaptiveBeatsFixed(t *testing.T) {
	res, err := AblationAdaptive()
	if err != nil {
		t.Fatal(err)
	}
	if !res.AdaptiveOK {
		t.Fatal("adaptive decode should survive the lighting change")
	}
	if res.FixedOK {
		t.Fatal("fixed thresholds should fail after the lighting change")
	}
}

func TestAblationManchesterBeatsNRZ(t *testing.T) {
	res, err := AblationManchester(true)
	if err != nil {
		t.Fatal(err)
	}
	if res.ManchesterRate < res.NRZRate {
		t.Fatalf("Manchester %.2f below NRZ %.2f", res.ManchesterRate, res.NRZRate)
	}
	if res.ManchesterRate < 0.75 {
		t.Fatalf("Manchester success %.2f too low", res.ManchesterRate)
	}
}

func TestAblationDTWBeatsEuclidean(t *testing.T) {
	res, err := AblationDTW(true)
	if err != nil {
		t.Fatal(err)
	}
	if res.DTWAccuracy < res.EuclideanAccuracy {
		t.Fatalf("DTW %.2f below Euclidean %.2f", res.DTWAccuracy, res.EuclideanAccuracy)
	}
	if res.DTWAccuracy < 0.75 {
		t.Fatalf("DTW accuracy %.2f too low", res.DTWAccuracy)
	}
}

func TestAblationFoVTradeoff(t *testing.T) {
	res, err := AblationFoV()
	if err != nil {
		t.Fatal(err)
	}
	// Narrow FoVs decode, wide ones do not; coverage grows with FoV.
	if !res.Points[0].Success {
		t.Fatal("narrowest FoV should decode")
	}
	last := res.Points[len(res.Points)-1]
	if last.Success {
		t.Fatal("widest FoV should fail (ISI)")
	}
	if last.FootprintM <= res.Points[0].FootprintM {
		t.Fatal("coverage should grow with FoV")
	}
	// Success must be prefix-monotone: once it fails it stays failed.
	failed := false
	for _, p := range res.Points {
		if failed && p.Success {
			t.Fatalf("non-monotone FoV outcome: %+v", res.Points)
		}
		if !p.Success {
			failed = true
		}
	}
}

func TestAblationCodebookDistanceHelps(t *testing.T) {
	res, err := AblationCodebook(true)
	if err != nil {
		t.Fatal(err)
	}
	get := func(d, flips int) float64 {
		for _, r := range res.Rows {
			if r.MinDist == d && r.Flips == flips {
				return r.SuccessPct
			}
		}
		t.Fatalf("row d=%d flips=%d missing", d, flips)
		return 0
	}
	if get(3, 1) < 99 || get(5, 1) < 99 {
		t.Fatal("distance >= 3 should correct single flips")
	}
	if get(1, 1) > 5 {
		t.Fatal("distance 1 cannot correct flips")
	}
	if get(5, 2) < 99 {
		t.Fatal("distance 5 should correct double flips")
	}
}

func TestMaxSpeedBound(t *testing.T) {
	res, err := MaxSpeed(true)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxKmh < 18 {
		t.Fatalf("max speed %.0f km/h, the paper's 18 km/h must work", res.MaxKmh)
	}
	// The sweep should find a breaking point below 150 km/h at 2 kS/s.
	last := res.Points[len(res.Points)-1]
	if last.Success {
		t.Fatalf("fastest sweep point (%.0f km/h) unexpectedly decoded", last.Kmh)
	}
}

func TestReceiverSelectionTable(t *testing.T) {
	res, err := ReceiverSelection()
	if err != nil {
		t.Fatal(err)
	}
	byLux := map[float64]SelectionRow{}
	for _, r := range res.Rows {
		byLux[r.NoiseFloorLux] = r
	}
	if byLux[100].Selected != "pd-G1" {
		t.Fatalf("100 lux -> %q", byLux[100].Selected)
	}
	if byLux[10000].Selected != "rx-led" {
		t.Fatalf("10 klux -> %q", byLux[10000].Selected)
	}
	if byLux[40000].Err == "" {
		t.Fatal("40 klux should saturate every receiver")
	}
}

func TestAllQuickProducesReports(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment battery")
	}
	reps, err := All(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) < 15 {
		t.Fatalf("only %d reports", len(reps))
	}
	seen := map[string]bool{}
	for _, r := range reps {
		if r.ID == "" || len(r.Lines) == 0 {
			t.Fatalf("empty report: %+v", r)
		}
		if seen[r.ID] {
			t.Fatalf("duplicate report id %q", r.ID)
		}
		seen[r.ID] = true
		if !strings.Contains(r.String(), r.Title) {
			t.Fatal("report string missing title")
		}
	}
	for _, id := range []string{"fig5", "fig6a", "fig6b", "fig7", "fig8", "fig10", "fig11", "fig13-14", "fig15", "fig16", "fig17"} {
		if !seen[id] {
			t.Fatalf("missing paper experiment %q", id)
		}
	}
}
