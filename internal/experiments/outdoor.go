package experiments

import (
	"passivelight/internal/decoder"
	"passivelight/internal/frontend"
	"passivelight/internal/scenario"
	"passivelight/internal/scene"
	"passivelight/internal/trace"
)

// CarRun is one outdoor pass result.
type CarRun struct {
	Name          string
	NoiseFloorLux float64
	HeightM       float64
	Receiver      string
	Sent          string
	Decoded       string
	Success       bool
	DecodeErr     string
	ThroughputSym float64 // symbols/second while the tag crosses
	Trace         *trace.Trace
}

// runCarPass builds and evaluates one outdoor configuration with the
// two-phase decoder.
func runCarPass(name string, setup scenario.OutdoorParams) (CarRun, error) {
	link, pkt, err := setup.Build()
	if err != nil {
		return CarRun{}, err
	}
	tr, err := link.Simulate()
	if err != nil {
		return CarRun{}, err
	}
	run := CarRun{
		Name:          name,
		NoiseFloorLux: setup.NoiseFloorLux,
		HeightM:       setup.ReceiverHeight,
		Receiver:      link.Frontend.Receiver.Name,
		Sent:          pkt.SymbolString(),
		Trace:         tr,
	}
	expected := 4 + 2*len(pkt.Data)
	tp, derr := decoder.DecodeCarPass(tr, decoder.Options{ExpectedSymbols: expected})
	if derr != nil {
		run.DecodeErr = derr.Error()
		return run, nil
	}
	run.Decoded = tp.Decode.SymbolString()
	run.Success = tp.Decode.ParseErr == nil && tp.Decode.Packet.BitString() == pkt.BitString()
	// Throughput: symbols per second at the measured symbol duration.
	if tau := tp.Decode.Thresholds.TauT; tau > 0 {
		run.ThroughputSym = 1 / tau
	}
	return run, nil
}

// Fig13_14Result reproduces the car optical signatures.
type Fig13_14Result struct {
	Report Report
	// Volvo/BMW classification outcomes and feature counts.
	VolvoModel, BMWModel string
	VolvoPeaks, BMWPeaks int
}

// Fig13_14 drives both bare cars under the RX-LED and matches their
// shape signatures.
func Fig13_14() (Fig13_14Result, error) {
	res := Fig13_14Result{Report: Report{ID: "fig13-14", Title: "car optical signatures as long-duration preambles (bare cars, RX-LED, 18 km/h)"}}
	for _, tc := range []struct {
		car  scene.CarModel
		dest *string
		npk  *int
	}{
		{scene.VolvoV40(), &res.VolvoModel, &res.VolvoPeaks},
		{scene.BMW3(), &res.BMWModel, &res.BMWPeaks},
	} {
		link, _, err := scenario.OutdoorParams{
			Car:            tc.car,
			NoiseFloorLux:  6200,
			ReceiverHeight: 0.75,
			Seed:           40,
		}.Build()
		if err != nil {
			return res, err
		}
		tr, err := link.Simulate()
		if err != nil {
			return res, err
		}
		sig, err := decoder.DetectCarShape(tr)
		if err != nil {
			return res, err
		}
		peaks := 0
		for _, e := range sig.Extrema {
			if e.IsPeak {
				peaks++
			}
		}
		*tc.dest = decoder.MatchCarModel(sig)
		*tc.npk = peaks
		res.Report.addf("%-10s peaks=%d (metal sections) -> classified %q", tc.car.Name, peaks, *tc.dest)
	}
	res.Report.addf("paper: hoods/roofs/trunks reflect much more than windshields; designs distinguish the cars")
	return res, nil
}

// Fig15Result reproduces Fig. 15: RX-LED, h=25 cm, 18 km/h,
// code HLHL.HLHL — decodes at 450 lux, fails at 100 lux.
type Fig15Result struct {
	Report Report
	Runs   []CarRun
}

// Fig15 runs the two noise floors.
func Fig15() (Fig15Result, error) {
	res := Fig15Result{Report: Report{ID: "fig15", Title: "RX-LED outdoors, h=25 cm, 18 km/h, code HLHL.HLHL"}}
	for i, floor := range []float64{450, 100} {
		run, err := runCarPass("rx-led", scenario.OutdoorParams{
			Payload:        "00",
			NoiseFloorLux:  floor,
			ReceiverHeight: 0.25,
			Seed:           int64(50 + i),
		})
		if err != nil {
			return res, err
		}
		res.Runs = append(res.Runs, run)
		res.Report.addf("noise floor %4.0f lux: success=%v decoded=%s err=%s", floor, run.Success, run.Decoded, run.DecodeErr)
	}
	res.Report.addf("paper: works at 450 lux, undecodable at 100 lux (too little ambient light to modulate)")
	return res, nil
}

// Fig16Result reproduces Fig. 16: PD at G2, 100 lux — fails bare
// (wide FoV picks up roof interference), decodes with the cap.
type Fig16Result struct {
	Report Report
	Runs   []CarRun
}

// Fig16 runs the PD with and without the FoV-reducing cap.
func Fig16() (Fig16Result, error) {
	res := Fig16Result{Report: Report{ID: "fig16", Title: "PD(G2) outdoors at 100 lux, h=25 cm: bare vs physical cap"}}
	configs := []struct {
		name string
		dev  frontend.Receiver
	}{
		{"pd-g2 bare", frontend.PD(frontend.G2)},
		{"pd-g2 +cap", frontend.PD(frontend.G2).WithCap()},
	}
	for i, cfg := range configs {
		run, err := runCarPass(cfg.name, scenario.OutdoorParams{
			Payload:        "00",
			NoiseFloorLux:  100,
			ReceiverHeight: 0.25,
			Receiver:       cfg.dev,
			Seed:           int64(60 + i),
		})
		if err != nil {
			return res, err
		}
		res.Runs = append(res.Runs, run)
		mean := run.Trace.Stats().Mean
		res.Report.addf("%s: success=%v decoded=%s err=%s mean RSS=%.0f", cfg.name, run.Success, run.Decoded, run.DecodeErr, mean)
	}
	res.Report.addf("paper: bare PD fails (roof interference in wide FoV); cap decodes despite lower RSS")
	return res, nil
}

// Fig17Result reproduces Fig. 17: well-illuminated RX-LED runs.
type Fig17Result struct {
	Report Report
	Runs   []CarRun
}

// Fig17 runs (a) h=75 cm @6200 lux, (b) h=100 cm @3700 lux, (c)
// h=100 cm @5500 lux with code HLHL.LHHL.
func Fig17() (Fig17Result, error) {
	res := Fig17Result{Report: Report{ID: "fig17", Title: "RX-LED well illuminated, 18 km/h"}}
	cases := []struct {
		name    string
		payload string
		floor   float64
		height  float64
	}{
		{"(a) h=75cm 6200lux code HLHL.HLHL", "00", 6200, 0.75},
		{"(b) h=100cm 3700lux code HLHL.HLHL", "00", 3700, 1.00},
		{"(c) h=100cm 5500lux code HLHL.LHHL", "10", 5500, 1.00},
	}
	for i, tc := range cases {
		run, err := runCarPass(tc.name, scenario.OutdoorParams{
			Payload:        tc.payload,
			NoiseFloorLux:  tc.floor,
			ReceiverHeight: tc.height,
			Seed:           int64(70 + i),
		})
		if err != nil {
			return res, err
		}
		res.Runs = append(res.Runs, run)
		res.Report.addf("%s: success=%v decoded=%s throughput=%.0f sym/s", tc.name, run.Success, run.Decoded, run.ThroughputSym)
	}
	res.Report.addf("paper: all three decode; throughput ~50 sym/s at 18 km/h with 10 cm symbols")
	return res, nil
}
