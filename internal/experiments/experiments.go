// Package experiments regenerates every table and figure of the
// paper's evaluation (Secs. 4-5) on the simulated substrate, plus the
// ablations listed in DESIGN.md. Each driver returns a typed result
// and a printable Report whose rows mirror what the paper plots.
package experiments

import (
	"fmt"
	"strings"
)

// Report is a printable experiment summary.
type Report struct {
	// ID is the paper anchor ("fig5", "fig11", "ablation-fov", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Lines are preformatted result rows.
	Lines []string
}

// String renders the report.
func (r Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		sb.WriteString("  ")
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func (r *Report) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// All runs every experiment in paper order and returns the reports.
// Expensive sweeps honor the quick flag by coarsening their grids.
func All(quick bool) ([]Report, error) {
	var reports []Report
	add := func(rep Report, err error) error {
		if err != nil {
			return err
		}
		reports = append(reports, rep)
		return nil
	}
	f5, err := Fig5()
	if err := add(f5.Report, err); err != nil {
		return nil, fmt.Errorf("fig5: %w", err)
	}
	f6a, err := Fig6a(quick)
	if err := add(f6a.Report, err); err != nil {
		return nil, fmt.Errorf("fig6a: %w", err)
	}
	f6b, err := Fig6b(quick)
	if err := add(f6b.Report, err); err != nil {
		return nil, fmt.Errorf("fig6b: %w", err)
	}
	f7, err := Fig7()
	if err := add(f7.Report, err); err != nil {
		return nil, fmt.Errorf("fig7: %w", err)
	}
	f8, err := Fig8DTW()
	if err := add(f8.Report, err); err != nil {
		return nil, fmt.Errorf("fig8: %w", err)
	}
	f10, err := Fig10()
	if err := add(f10.Report, err); err != nil {
		return nil, fmt.Errorf("fig10: %w", err)
	}
	f11, err := Fig11Table()
	if err := add(f11.Report, err); err != nil {
		return nil, fmt.Errorf("fig11: %w", err)
	}
	f13, err := Fig13_14()
	if err := add(f13.Report, err); err != nil {
		return nil, fmt.Errorf("fig13-14: %w", err)
	}
	f15, err := Fig15()
	if err := add(f15.Report, err); err != nil {
		return nil, fmt.Errorf("fig15: %w", err)
	}
	f16, err := Fig16()
	if err := add(f16.Report, err); err != nil {
		return nil, fmt.Errorf("fig16: %w", err)
	}
	f17, err := Fig17()
	if err := add(f17.Report, err); err != nil {
		return nil, fmt.Errorf("fig17: %w", err)
	}
	aa, err := AblationAdaptive()
	if err := add(aa.Report, err); err != nil {
		return nil, fmt.Errorf("ablation-adaptive: %w", err)
	}
	am, err := AblationManchester(quick)
	if err := add(am.Report, err); err != nil {
		return nil, fmt.Errorf("ablation-manchester: %w", err)
	}
	ad, err := AblationDTW(quick)
	if err := add(ad.Report, err); err != nil {
		return nil, fmt.Errorf("ablation-dtw: %w", err)
	}
	af, err := AblationFoV()
	if err := add(af.Report, err); err != nil {
		return nil, fmt.Errorf("ablation-fov: %w", err)
	}
	ac, err := AblationCodebook(quick)
	if err := add(ac.Report, err); err != nil {
		return nil, fmt.Errorf("ablation-codebook: %w", err)
	}
	ms, err := MaxSpeed(quick)
	if err := add(ms.Report, err); err != nil {
		return nil, fmt.Errorf("max-speed: %w", err)
	}
	sel, err := ReceiverSelection()
	if err := add(sel.Report, err); err != nil {
		return nil, fmt.Errorf("receiver-selection: %w", err)
	}
	dist, err := Distortion()
	if err := add(dist.Report, err); err != nil {
		return nil, fmt.Errorf("distortion: %w", err)
	}
	sid, err := SignatureID()
	if err := add(sid.Report, err); err != nil {
		return nil, fmt.Errorf("signature-id: %w", err)
	}
	en, err := Energy()
	if err := add(en.Report, err); err != nil {
		return nil, fmt.Errorf("energy: %w", err)
	}
	dyn, err := DynamicTag()
	if err := add(dyn.Report, err); err != nil {
		return nil, fmt.Errorf("dynamic-tag: %w", err)
	}
	return reports, nil
}
