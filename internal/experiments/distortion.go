package experiments

import (
	"passivelight/internal/channel"
	"passivelight/internal/core"
	"passivelight/internal/decoder"
	"passivelight/internal/energy"
	"passivelight/internal/noise"
	"passivelight/internal/scenario"
	"passivelight/internal/scene"
	"passivelight/internal/trace"
)

// DistortionResult covers the Sec. 3 channel distortions the paper
// calls out but does not quantify: dirt on the reflective surfaces
// and fog between the object and the receiver. For each severity the
// driver records whether the threshold decoder still works and
// whether DTW classification (the Sec. 4.2 fallback) recovers the
// packet identity.
type DistortionResult struct {
	Report Report
	Dirt   []DistortionPoint
	Fog    []DistortionPoint
}

// DistortionPoint is one severity step.
type DistortionPoint struct {
	Severity     float64 // dirt coverage or (1 - fog transmission)
	ThresholdOK  bool
	ClassifiedOK bool
}

// dirtBench renders the Fig. 5 '10' bench with a dirty tag.
func dirtBench(coverage float64, seed int64) (*trace.Trace, error) {
	link, _, err := scenario.BenchParams{
		Height: 0.20, SymbolWidth: 0.03, Speed: 0.08,
		Payload: "10", Dirt: coverage, Seed: seed,
	}.Build()
	if err != nil {
		return nil, err
	}
	return link.Simulate()
}

// Distortion sweeps dirt coverage and fog density.
func Distortion() (DistortionResult, error) {
	res := DistortionResult{Report: Report{ID: "distortion", Title: "channel distortions (Sec. 3): dirt on stripes and fog in the path"}}
	// Classifier baselines from the clean bench.
	cls := decoder.NewClassifier(256)
	for i, payload := range []string{"00", "10"} {
		link, _, err := fig5Bench(payload, int64(170+i)).Build()
		if err != nil {
			return res, err
		}
		tr, err := link.Simulate()
		if err != nil {
			return res, err
		}
		if err := cls.AddBaseline(payload, tr); err != nil {
			return res, err
		}
	}
	classify := func(tr *trace.Trace) bool {
		m, err := cls.Classify(tr)
		return err == nil && m[0].Label == "10"
	}
	decode := func(tr *trace.Trace) bool {
		dec, err := decoder.Decode(tr, decoder.Options{ExpectedSymbols: 8})
		return err == nil && dec.ParseErr == nil && dec.Packet.BitString() == "10"
	}
	// Dirt sweep. The cliff sits between 95% and 97%: edge-based
	// clock re-acquisition decodes through 95% coverage, and 97%
	// erases the reflectance contrast itself.
	for i, coverage := range []float64{0, 0.3, 0.6, 0.8, 0.95, 0.97} {
		tr, err := dirtBench(coverage, int64(180+i))
		if err != nil {
			return res, err
		}
		pt := DistortionPoint{Severity: coverage, ThresholdOK: decode(tr), ClassifiedOK: classify(tr)}
		res.Dirt = append(res.Dirt, pt)
		res.Report.addf("dirt %3.0f%%: threshold ok=%v, DTW ok=%v", coverage*100, pt.ThresholdOK, pt.ClassifiedOK)
	}
	// Fog sweep: the clean bench scenario rendered once, then fog and
	// a fresh noise stream applied per density — fog and noise are
	// post-render stages, so re-rendering the identical world six
	// times would only burn the dominant simulation cost.
	cleanWorld, err := fig5Bench("10", 190).Spec()
	if err != nil {
		return res, err
	}
	clean, err := cleanWorld.Compile()
	if err != nil {
		return res, err
	}
	cleanLink := clean.Link
	cleanLux, err := channel.Render(cleanLink.Scene, cleanLink.Receiver, 0, cleanLink.Duration, cleanLink.Frontend.Fs)
	if err != nil {
		return res, err
	}
	for i, density := range []float64{0, 0.3, 0.6, 0.8, 0.9, 0.96} {
		fog := noise.Fog{Transmission: 1 - density, ScatterLevel: 30}
		lux := fog.Apply(cleanLux)
		lux = noise.Indoor(int64(195 + i)).ApplyInPlace(lux)
		counts := cleanLink.Frontend.Digitize(lux)
		tr := trace.New(cleanLink.Frontend.Fs, 0, counts)
		pt := DistortionPoint{Severity: density, ThresholdOK: decode(tr), ClassifiedOK: classify(tr)}
		res.Fog = append(res.Fog, pt)
		res.Report.addf("fog %3.0f%%: threshold ok=%v, DTW ok=%v", density*100, pt.ThresholdOK, pt.ClassifiedOK)
	}
	res.Report.addf("the adaptive thresholds absorb moderate distortion; extreme dirt/fog erases the reflectance contrast itself")
	return res, nil
}

// SignatureIDResult exercises the Sec. 5.1 promise that car optical
// signatures are unique: identify unknown passes against registered
// template passes with DTW.
type SignatureIDResult struct {
	Report  Report
	Correct int
	Total   int
}

// SignatureID registers one template pass per car and identifies
// fresh passes (different noise seeds, slightly different speeds).
func SignatureID() (SignatureIDResult, error) {
	res := SignatureIDResult{Report: Report{ID: "signature-id", Title: "car identification from optical signatures (Sec. 5.1) via DTW"}}
	cls := decoder.NewSignatureClassifier(0)
	cars := []scene.CarModel{scene.VolvoV40(), scene.BMW3()}
	for i, car := range cars {
		link, _, err := scenario.OutdoorParams{Car: car, NoiseFloorLux: 6200, ReceiverHeight: 0.75, Seed: int64(210 + i)}.Build()
		if err != nil {
			return res, err
		}
		tr, err := link.Simulate()
		if err != nil {
			return res, err
		}
		if err := cls.AddTemplate(car.Name, tr); err != nil {
			return res, err
		}
	}
	// Probe passes: new seeds and varied speeds.
	for i, car := range cars {
		for j, speed := range []float64{15, 18, 22} {
			link, _, err := scenario.OutdoorParams{
				Car: car, NoiseFloorLux: 6200, ReceiverHeight: 0.75,
				SpeedKmh: speed, Seed: int64(220 + 10*i + j),
			}.Build()
			if err != nil {
				return res, err
			}
			tr, err := link.Simulate()
			if err != nil {
				return res, err
			}
			matches, err := cls.Identify(tr)
			if err != nil {
				return res, err
			}
			res.Total++
			ok := matches[0].Label == car.Name
			if ok {
				res.Correct++
			}
			res.Report.addf("%-10s at %2.0f km/h -> identified %q ok=%v", car.Name, speed, matches[0].Label, ok)
		}
	}
	return res, nil
}

// EnergyResult reproduces the introduction's sustainability argument.
type EnergyResult struct {
	Report Report
	// TinyBoxSelfSustainingAt6200 under daylight.
	TinyBoxSelfSustainingAt6200 bool
	// CameraRatio is camera/tiny-box consumption.
	CameraRatio float64
}

// Energy evaluates the credit-card solar panel against the tiny-box
// and camera budgets.
func Energy() (EnergyResult, error) {
	res := EnergyResult{Report: Report{ID: "energy", Title: "sustainability: tiny-box vs camera power, credit-card solar harvesting (Sec. 1)"}}
	rows, err := energy.CompareReport(6200, true)
	if err != nil {
		return res, err
	}
	res.Report.Lines = append(res.Report.Lines, rows...)
	ok, _, err := energy.SelfSustaining(energy.CreditCardPanel(), energy.TinyBoxBudget(), 6200, true)
	if err != nil {
		return res, err
	}
	res.TinyBoxSelfSustainingAt6200 = ok
	res.CameraRatio = energy.CameraBudget().TotalMW() / energy.TinyBoxBudget().TotalMW()
	// Also show an indoor office level.
	indoorRows, err := energy.CompareReport(450, false)
	if err != nil {
		return res, err
	}
	res.Report.Lines = append(res.Report.Lines, indoorRows...)
	return res, nil
}

// DynamicTagResult exercises future work (1): a tag cycling between
// two codes (E-ink/LCD-shutter surface); two passes separated in time
// read different payloads from the same physical object.
type DynamicTagResult struct {
	Report        Report
	FirstDecoded  string
	SecondDecoded string
	BothCorrect   bool
}

// DynamicTag simulates two passes over a frame-cycling tag.
func DynamicTag() (DynamicTagResult, error) {
	res := DynamicTagResult{Report: Report{ID: "dynamic-tag", Title: "future work (1): E-ink/LCD dynamic tag cycling two codes"}}
	// Frame period far longer than one pass, so each pass sees one
	// stable frame.
	const (
		framePeriod = 60.0
		symbolWidth = 0.03
		speed       = 0.08
	)
	decodePass := func(t0 float64, seed int64) (string, error) {
		rx := channel.Receiver{X: 0, Height: 0.2, FoVHalfAngleDeg: core.IndoorFoVDeg}
		start := -(rx.FootprintRadius() + 0.15)
		tagLen, err := scenario.TagLength("00", symbolWidth)
		if err != nil {
			return "", err
		}
		// The object starts its pass at absolute time t0 (it idles at
		// zero speed until then, so the frame clock keeps running).
		spec := scenario.Spec{
			Seed:        seed,
			T0Sec:       t0,
			DurationSec: (-start + tagLen + rx.FootprintRadius() + 0.05) / speed,
			Optics:      scenario.LampOptics(0.12, 0.2, core.IndoorLampLux, core.IndoorRefHeight, 4),
			Receiver:    scenario.ReceiverSpec{Device: "pd-G1", HeightM: 0.2, FoVDeg: core.IndoorFoVDeg, Fs: 1000},
			Noise:       scenario.NoiseSpec{Profile: "indoor"},
			Objects: []scenario.ObjectSpec{{
				Kind:           "dynamic-tag",
				Name:           "dyn",
				Frames:         []string{"00", "10"},
				FramePeriodSec: framePeriod,
				SymbolWidthM:   symbolWidth,
				Mobility: scenario.MobilitySpec{
					Kind:   "piecewise",
					StartM: start,
					Segments: []scenario.SpeedSegmentSpec{
						{UntilSec: t0, SpeedMS: 0},
						{UntilSec: 1e9, SpeedMS: speed},
					},
				},
			}},
			Decode: scenario.DecodeSpec{Strategy: "threshold", ExpectedSymbols: 8},
		}
		world, err := spec.Compile()
		if err != nil {
			return "", err
		}
		tr, err := world.Link.Simulate()
		if err != nil {
			return "", err
		}
		dec, err := decoder.Decode(tr, decoder.Options{ExpectedSymbols: 8})
		if err != nil {
			return "", err
		}
		if dec.ParseErr != nil {
			return dec.SymbolString(), nil
		}
		return dec.Packet.BitString(), nil
	}
	first, err := decodePass(1, 230) // within frame 0 ('00')
	if err != nil {
		return res, err
	}
	second, err := decodePass(framePeriod+1, 231) // within frame 1 ('10')
	if err != nil {
		return res, err
	}
	res.FirstDecoded, res.SecondDecoded = first, second
	res.BothCorrect = first == "00" && second == "10"
	res.Report.addf("pass during frame 0 decoded %q (want 00); pass during frame 1 decoded %q (want 10)", first, second)
	res.Report.addf("same physical tag conveys time-varying data at an increased footprint (paper Sec. 6 (1))")
	return res, nil
}
