package experiments

import (
	"fmt"

	"passivelight/internal/decoder"
	"passivelight/internal/frontend"
	"passivelight/internal/scenario"
	"passivelight/internal/trace"
)

// Fig10Case is one collision scenario of Sec. 4.3.
type Fig10Case struct {
	Name string
	// LowShare/HighShare are the FoV shares of the low- and
	// high-frequency packets.
	LowShare, HighShare float64
	// TimeDecodable: could the adaptive threshold decoder recover the
	// dominant packet from the time-domain signal?
	TimeDecodable bool
	Decoded       string
	// Tones found by the FFT analyzer and the dominant frequency.
	Tones        int
	DominantFreq float64
	TonesFreqs   []float64
	Trace        *trace.Trace
}

// Fig10Result reproduces Figs. 9-10: two packets (one wide-symbol
// "low-frequency", one narrow-symbol "high-frequency") crossing the
// FoV simultaneously under three dominance splits.
type Fig10Result struct {
	Report Report
	Cases  []Fig10Case
}

// collisionCompiled builds the two-packet scenario. The low-frequency
// packet has 4 cm symbols, the high-frequency one 2 cm symbols with
// twice as many, so both strips are 48 cm long (Fig. 9: equal-length
// packets). At 12 cm/s their alternation tones sit at 1.5 Hz and
// 3 Hz. The payloads and bench geometry are the scenario layer's
// collision preset parameters.
func collisionCompiled(lowShare, highShare float64, seed int64) (*scenario.Compiled, error) {
	return scenario.CollisionParams{LowShare: lowShare, HighShare: highShare, Seed: seed}.Compile()
}

// Fig10 runs the three collision cases and the FFT analysis.
func Fig10() (Fig10Result, error) {
	res := Fig10Result{Report: Report{ID: "fig10", Title: "packet collisions: time-domain decode vs FFT (low-freq @4cm vs high-freq @2cm symbols, 1.5/3 Hz tones)"}}
	cases := []struct {
		name                string
		lowShare, highShare float64
		wantDominant        string // "low", "high" or "" (no dominant)
	}{
		{"case1 low-freq dominates", 0.80, 0.20, "low"},
		{"case2 high-freq dominates", 0.15, 0.85, "high"},
		{"case3 equal share", 0.50, 0.50, ""},
	}
	for i, tc := range cases {
		world, err := collisionCompiled(tc.lowShare, tc.highShare, int64(20+i))
		if err != nil {
			return res, err
		}
		tr, err := world.Link.Simulate()
		if err != nil {
			return res, err
		}
		c := Fig10Case{Name: tc.name, LowShare: tc.lowShare, HighShare: tc.highShare, Trace: tr}
		// Time-domain attempt: decode expecting the dominant packet's
		// symbol count. The scenario carries both encoded packets in
		// scene order (low-frequency first).
		want := world.Packets[0].Packet
		if tc.wantDominant == "high" {
			want = world.Packets[1].Packet
		}
		expected := 4 + 2*len(want.Data)
		// Plain Sec. 4.1 decoder, as in the paper's collision study.
		dec, derr := decoder.Decode(tr, decoder.Options{ExpectedSymbols: expected, DisableTimingRecovery: true})
		if derr == nil && dec.ParseErr == nil {
			c.Decoded = dec.Packet.SymbolString()
			c.TimeDecodable = tc.wantDominant != "" && dec.Packet.BitString() == want.BitString()
		} else if derr == nil {
			c.Decoded = dec.SymbolString()
		}
		// Frequency-domain analysis. The low packet alternates at
		// 1.5 Hz (4 cm symbols at 12 cm/s), the high one at 3 Hz.
		rep, err := decoder.AnalyzeCollision(tr, decoder.CollisionOptions{
			MinFreq: 1.0, MaxFreq: 4.0, MinSeparation: 0.9, SignificanceRatio: 0.6,
		})
		if err != nil {
			return res, err
		}
		c.Tones = rep.SignificantTones
		c.DominantFreq = rep.DominantFreq
		for _, p := range rep.Peaks {
			c.TonesFreqs = append(c.TonesFreqs, p.Freq)
		}
		res.Cases = append(res.Cases, c)
		res.Report.addf("%s (shares %.2f/%.2f): time decode ok=%v (%s); FFT tones=%d dominant=%.1f Hz peaks=[%s]",
			c.Name, c.LowShare, c.HighShare, c.TimeDecodable, c.Decoded, c.Tones, c.DominantFreq, fmtFreqs(c.TonesFreqs))
	}
	res.Report.addf("paper: cases 1-2 decodable in time with one dominant tone; case 3 undecodable but FFT reveals two tones")
	return res, nil
}

// Fig11Row is one row of the Fig. 11 device table.
type Fig11Row struct {
	Receiver string
	// SpecSaturationLux / SpecSensitivity from the paper's table.
	SpecSaturationLux, SpecSensitivity float64
	// MeasuredSaturationLux found by sweeping ambient light on the
	// simulated front end until the output rails.
	MeasuredSaturationLux float64
	// MeasuredSensitivity is the small-signal output slope relative
	// to the PD at G1.
	MeasuredSensitivity float64
}

// Fig11Result verifies the saturation/sensitivity table against the
// simulated front ends.
type Fig11Result struct {
	Report Report
	Rows   []Fig11Row
}

// Fig11Table sweeps each receiver model and reports spec vs measured.
func Fig11Table() (Fig11Result, error) {
	res := Fig11Result{Report: Report{ID: "fig11", Title: "supported noise floor (saturation) and normalized sensitivity per receiver"}}
	devices := []frontend.Receiver{
		frontend.PD(frontend.G1),
		frontend.PD(frontend.G2),
		frontend.PD(frontend.G3),
		frontend.RXLED(),
	}
	var g1Slope float64
	for i, dev := range devices {
		fe, err := frontend.NewChain(dev, 1000, int64(30+i))
		if err != nil {
			return res, err
		}
		fe.DisableNoise = true
		// Measured saturation: bracket by doubling (output flat when
		// doubling the light means the rail was hit), then binary
		// search the boundary. Comparing lux against 2*lux avoids the
		// quantization plateaus a fine sweep would trip over on
		// low-sensitivity receivers.
		railedAt := func(lux float64) bool {
			a := fe.Digitize([]float64{lux})[0]
			b := fe.Digitize([]float64{2 * lux})[0]
			return b <= a
		}
		lo, hi := 50.0, 50.0
		for hi <= 50000 && !railedAt(hi) {
			lo = hi
			hi *= 2
		}
		for i := 0; i < 40; i++ {
			mid := (lo + hi) / 2
			if railedAt(mid) {
				hi = mid
			} else {
				lo = mid
			}
		}
		// railedAt(l) is true exactly when l already rails (out(2l)
		// can only tie a railed out(l)), so hi converges on the rail.
		sat := hi
		// Small-signal slope: counts per lux at low light.
		outLo := fe.Digitize([]float64{40})[0]
		outHi := fe.Digitize([]float64{120})[0]
		slope := (outHi - outLo) / 80
		if i == 0 {
			g1Slope = slope
		}
		row := Fig11Row{
			Receiver:              dev.Name,
			SpecSaturationLux:     dev.SaturationLux,
			SpecSensitivity:       dev.Sensitivity,
			MeasuredSaturationLux: sat,
		}
		if g1Slope > 0 {
			row.MeasuredSensitivity = slope / g1Slope
		}
		res.Rows = append(res.Rows, row)
		res.Report.addf("%-8s spec: sat=%6.0f lux sens=%.3f | measured: sat=%6.0f lux sens=%.3f",
			dev.Name, row.SpecSaturationLux, row.SpecSensitivity, row.MeasuredSaturationLux, row.MeasuredSensitivity)
	}
	return res, nil
}

// fmtFreqs renders a frequency list.
func fmtFreqs(fs []float64) string {
	s := ""
	for i, f := range fs {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%.1f", f)
	}
	return s
}
