package experiments

import (
	"passivelight/internal/capacity"
	"passivelight/internal/core"
	"passivelight/internal/decoder"
	"passivelight/internal/dsp"
	"passivelight/internal/scenario"
	"passivelight/internal/scene"
	"passivelight/internal/trace"
)

// Fig5Result reproduces Fig. 5: clean received signals for payloads
// '00' (HLHL) and '10' (LHHL) at 3 cm symbols, bench at 20 cm.
type Fig5Result struct {
	Report Report
	Runs   []Fig5Run
}

// Fig5Run is one packet pass.
type Fig5Run struct {
	Payload string
	Sent    string // symbol string
	Decoded string
	Success bool
	TauR    float64
	TauT    float64
	Trace   *trace.Trace
}

// fig5Bench is the shared Fig. 5 bench scenario parameters.
func fig5Bench(payload string, seed int64) scenario.BenchParams {
	return scenario.BenchParams{
		Height:      0.20,
		SymbolWidth: 0.03,
		Speed:       0.08,
		Payload:     payload,
		Seed:        seed,
	}
}

// Fig5 runs both Fig. 5 packets end to end.
func Fig5() (Fig5Result, error) {
	res := Fig5Result{Report: Report{ID: "fig5", Title: "ideal-scenario signals and adaptive decode ('00' and '10', 3 cm symbols, h=20 cm)"}}
	for i, payload := range []string{"00", "10"} {
		link, pkt, err := fig5Bench(payload, int64(i+1)).Build()
		if err != nil {
			return res, err
		}
		run, err := core.EndToEnd(link, pkt, decoder.Options{})
		if err != nil {
			return res, err
		}
		r := Fig5Run{
			Payload: payload,
			Sent:    pkt.SymbolString(),
			Decoded: run.Decode.SymbolString(),
			Success: run.Success,
			TauR:    run.Decode.Thresholds.TauR,
			TauT:    run.Decode.Thresholds.TauT,
			Trace:   run.Trace,
		}
		res.Runs = append(res.Runs, r)
		res.Report.addf("data=%q sent=%s decoded=%s success=%v tau_r=%.1f counts tau_t=%.3f s",
			payload, r.Sent, r.Decoded, r.Success, r.TauR, r.TauT)
	}
	return res, nil
}

// Fig6aResult reproduces Fig. 6(a): the decodable region boundary.
type Fig6aResult struct {
	Report Report
	Points []capacity.RegionPoint
	// Linear fit maxHeight = A + B*width over decodable points.
	A, B, R2 float64
}

// Fig6a sweeps symbol widths 1.5-7.5 cm against heights 20-55 cm at
// 8 cm/s, exactly the paper's ranges.
func Fig6a(quick bool) (Fig6aResult, error) {
	res := Fig6aResult{Report: Report{ID: "fig6a", Title: "decodable region: max emitter/receiver height vs symbol width (speed 8 cm/s)"}}
	widths := []float64{0.015, 0.025, 0.035, 0.045, 0.055, 0.065, 0.075}
	hStep := 0.025
	cfg := capacity.SweepConfig{Trials: 2}
	if quick {
		widths = []float64{0.02, 0.045, 0.075}
		hStep = 0.05
		cfg.Trials = 1
	}
	pts, err := capacity.DecodableRegion(widths, 0.20, 0.55, hStep, cfg)
	if err != nil {
		return res, err
	}
	res.Points = pts
	res.A, res.B, res.R2 = capacity.FitRegion(pts)
	for _, p := range pts {
		if p.Decodable {
			res.Report.addf("width=%.1f cm  max height=%.1f cm", p.SymbolWidth*100, p.MaxHeight*100)
		} else {
			res.Report.addf("width=%.1f cm  not decodable at >=20 cm", p.SymbolWidth*100)
		}
	}
	res.Report.addf("linear fit: maxH = %.3f + %.2f*width (R^2=%.3f); paper boundary ~ 0.09 + 5.4*width", res.A, res.B, res.R2)
	return res, nil
}

// Fig6bResult reproduces Fig. 6(b): throughput vs height.
type Fig6bResult struct {
	Report Report
	Points []capacity.ThroughputPoint
	// Exponential fit throughput = A*exp(B*height).
	A, B, R2 float64
}

// Fig6b finds the narrowest decodable width per height at 8 cm/s and
// converts to symbols/second.
func Fig6b(quick bool) (Fig6bResult, error) {
	res := Fig6bResult{Report: Report{ID: "fig6b", Title: "channel throughput (symbols/s) vs height (speed 8 cm/s, narrowest decodable width)"}}
	heights := []float64{0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50}
	wStep := 0.0025
	cfg := capacity.SweepConfig{Trials: 2}
	if quick {
		heights = []float64{0.20, 0.35, 0.50}
		wStep = 0.005
		cfg.Trials = 1
	}
	pts, err := capacity.ThroughputCurve(heights, 0.010, 0.075, wStep, cfg)
	if err != nil {
		return res, err
	}
	res.Points = pts
	res.A, res.B, res.R2 = capacity.FitThroughput(pts)
	for _, p := range pts {
		if p.Decodable {
			res.Report.addf("height=%.0f cm  narrowest width=%.1f cm  throughput=%.1f sym/s", p.Height*100, p.Width*100, p.Throughput)
		} else {
			res.Report.addf("height=%.0f cm  not decodable in width range", p.Height*100)
		}
	}
	res.Report.addf("exp fit: tput = %.1f*exp(%.2f*h) (log-R^2=%.3f); paper: capacity decreases ~exponentially with height", res.A, res.B, res.R2)
	return res, nil
}

// Fig7Result reproduces Fig. 7: decoding under mains-powered ceiling
// lights — higher noise floor, AC ripple "thickening" the signal.
type Fig7Result struct {
	Report Report
	// Decoded/Success for the packet under fluorescent light.
	Decoded string
	Success bool
	// RippleRatio is the 100 Hz Goertzel magnitude relative to the
	// dark-room bench (should be >> 1 under mains lighting).
	RippleRatio float64
	// GapRatio compares the HIGH-LOW gap *relative to the mean RSS
	// level* against the dark room. The illuminated room has a much
	// higher noise floor (DC pedestal), so the relative gap shrinks —
	// the paper's "smaller difference between the HIGH and LOW
	// symbols compared to our dark-room experiments".
	GapRatio float64
	Trace    *trace.Trace
}

// Fig7 mounts the Fig. 5 tag under a 2.3 m fluorescent ceiling light
// with the receiver at 0.2 m.
func Fig7() (Fig7Result, error) {
	res := Fig7Result{Report: Report{ID: "fig7", Title: "signal under ceiling fluorescent light (2.3 m lights, 0.2 m receiver)"}}
	// Dark-room reference run.
	refLink, refPkt, err := fig5Bench("00", 3).Build()
	if err != nil {
		return res, err
	}
	refRun, err := core.EndToEnd(refLink, refPkt, decoder.Options{})
	if err != nil {
		return res, err
	}
	// Ceiling-light run: same bench geometry, but the scenario's
	// optics swap to a uniform rippling luminaire. Work-plane
	// illuminance of office fluorescents is a few hundred lux; 2.3 m
	// ceiling fixtures flood the whole area, so the noise floor is
	// far above the dark room's, the signal rides a large pedestal,
	// and the AC supply ripples it ("thicker lines").
	spec, err := fig5Bench("00", 4).Spec()
	if err != nil {
		return res, err
	}
	spec.Optics = scenario.CeilingOptics(300, 0.12, 50, []float64{0.25})
	c, err := spec.Compile()
	if err != nil {
		return res, err
	}
	run, err := core.EndToEnd(c.Link, c.Packet(), decoder.Options{})
	if err != nil {
		return res, err
	}
	res.Decoded = run.Decode.SymbolString()
	res.Success = run.Success
	res.Trace = run.Trace
	ripRef := dsp.Goertzel(refRun.Trace.Samples, refRun.Trace.Fs, 100)
	ripCeil := dsp.Goertzel(run.Trace.Samples, run.Trace.Fs, 100)
	if ripRef > 0 {
		res.RippleRatio = ripCeil / ripRef
	}
	refRel := refRun.Decode.Thresholds.TauR / refRun.Trace.Stats().Mean
	ceilRel := run.Decode.Thresholds.TauR / run.Trace.Stats().Mean
	if refRel > 0 {
		res.GapRatio = ceilRel / refRel
	}
	res.Report.addf("decoded=%s success=%v", res.Decoded, res.Success)
	res.Report.addf("100 Hz ripple vs dark room: %.1fx (paper: 'thicker lines' from the AC supply)", res.RippleRatio)
	res.Report.addf("relative HIGH-LOW gap vs dark room: %.2fx (paper: smaller difference, higher noise floor)", res.GapRatio)
	return res, nil
}

// Fig8Result reproduces Sec. 4.2: variable speed breaks the threshold
// decoder; DTW classification against clean baselines recovers the
// packet identity.
type Fig8Result struct {
	Report Report
	// ThresholdDecoded is the (erroneous) symbol string the adaptive
	// decoder produced on the distorted signal (paper: "HLHL.HL").
	ThresholdDecoded string
	ThresholdCorrect bool
	// Distances to the '00' and '10' baselines and the self-distance
	// scale (paper: 326, 172, self 131).
	DistTo00, DistTo10, SelfDist float64
	// Classified label ('10' is correct).
	Classified string
}

// Fig8DTW builds the two Fig. 5 baselines, distorts a '10' packet by
// doubling its speed mid-pass, and classifies it.
func Fig8DTW() (Fig8Result, error) {
	res := Fig8Result{Report: Report{ID: "fig8", Title: "variable speed: threshold decode fails, DTW classifies ('10' packet, speed doubles mid-pass)"}}
	cls := decoder.NewClassifier(256)
	baselines := map[string]*trace.Trace{}
	for i, payload := range []string{"00", "10"} {
		link, _, err := fig5Bench(payload, int64(10+i)).Build()
		if err != nil {
			return res, err
		}
		tr, err := link.Simulate()
		if err != nil {
			return res, err
		}
		baselines[payload] = tr
		if err := cls.AddBaseline(payload, tr); err != nil {
			return res, err
		}
	}
	// Distorted run: same '10' bench but the speed doubles when the
	// data half passes the receiver.
	b := fig5Bench("10", 12)
	probeTag := 8 * b.SymbolWidth  // preamble+data symbols
	startX := -(0.2*0.0875 + 0.15) // matches bench default lead-in
	traj, err := scene.SpeedDoubler(startX, probeTag, 0, b.Speed)
	if err != nil {
		return res, err
	}
	b.Trajectory = traj
	link, pkt, err := b.Build()
	if err != nil {
		return res, err
	}
	// Decode with the paper's plain Sec. 4.1 algorithm (no timing
	// recovery): this is the decoder the paper shows failing here.
	run, err := core.EndToEnd(link, pkt, decoder.Options{DisableTimingRecovery: true})
	if err != nil {
		return res, err
	}
	res.ThresholdDecoded = run.Decode.SymbolString()
	res.ThresholdCorrect = run.Success
	matches, err := cls.Classify(run.Trace)
	if err != nil {
		return res, err
	}
	for _, m := range matches {
		switch m.Label {
		case "00":
			res.DistTo00 = m.Distance
		case "10":
			res.DistTo10 = m.Distance
		}
	}
	res.Classified = matches[0].Label
	self, err := cls.SelfDistance(run.Trace)
	if err != nil {
		return res, err
	}
	res.SelfDist = self
	res.Report.addf("threshold decode: %s (correct=%v; paper read 'HLHL.HL' instead of 'HLHL.LHHL')", res.ThresholdDecoded, res.ThresholdCorrect)
	res.Report.addf("DTW distance to '00'=%.1f, to '10'=%.1f, self-scale=%.1f (paper: 326, 172, 131)", res.DistTo00, res.DistTo10, res.SelfDist)
	res.Report.addf("classified as %q (correct='10')", res.Classified)
	return res, nil
}
