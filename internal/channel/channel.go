// Package channel renders the passive optical channel: it computes the
// light level incident on a downward-looking receiver as the scene's
// mobile reflective surfaces sweep through its field of view.
//
// The physical model is a FoV-footprint kernel. A receiver at height h
// with FoV half-angle psi sees the ground interval |x - x0| <=
// h*tan(psi). Each ground point contributes illuminance-times-
// reflectance, weighted by cos^4(theta) (Lambert factor at the surface
// and at the detector, plus inverse-square growth of the slant path).
// The received level is
//
//	L(t) = eta * sum_i w_i * E(x_i, t) * rho(x_i, t)  +  stray * E(x0, t)
//
// where w_i are the normalized kernel weights, eta the collection
// efficiency of the reflected path and stray the coupling of ambient
// light that reaches the detector without bouncing off the scene.
// The kernel width is what produces inter-symbol interference: wide
// FoV or large height smears narrow stripes together (paper Fig. 2(b),
// Fig. 6(a), and the Fig. 16 cap/shield result).
package channel

import (
	"errors"
	"math"

	"passivelight/internal/geom"
	"passivelight/internal/scene"
)

// Receiver describes the geometry and optics of one receiver.
type Receiver struct {
	// X is the horizontal position of the receiver (m).
	X float64
	// Height above the ground plane (m); must be > 0.
	Height float64
	// FoVHalfAngleDeg is the optical half-angle of the receiver
	// (degrees). Bare photodiode ~40, PD with the paper's physical
	// cap ~10, RX-LED ~14, focused indoor bench ~5.
	FoVHalfAngleDeg float64
	// CollectionEfficiency eta in (0, 1] scales the reflected path.
	// Zero selects the default 0.5.
	CollectionEfficiency float64
	// StrayCoupling scales the ambient light reaching the detector
	// without reflecting off the scene (sets the DC pedestal and
	// drives saturation outdoors). Zero selects the default 0.25.
	StrayCoupling float64
	// KernelSamples is the number of quadrature points across the
	// footprint. Zero selects the default 129.
	KernelSamples int
}

// Defaults applied by Render for zero-valued optional fields.
const (
	DefaultCollectionEfficiency = 0.5
	DefaultStrayCoupling        = 0.25
	DefaultKernelSamples        = 129
)

func (r Receiver) withDefaults() Receiver {
	if r.CollectionEfficiency == 0 {
		r.CollectionEfficiency = DefaultCollectionEfficiency
	}
	if r.StrayCoupling == 0 {
		r.StrayCoupling = DefaultStrayCoupling
	}
	if r.KernelSamples == 0 {
		r.KernelSamples = DefaultKernelSamples
	}
	return r
}

// Validate checks the receiver geometry.
func (r Receiver) Validate() error {
	if r.Height <= 0 {
		return errors.New("channel: receiver height must be positive")
	}
	if r.FoVHalfAngleDeg <= 0 || r.FoVHalfAngleDeg >= 90 {
		return errors.New("channel: FoV half-angle must be in (0, 90) degrees")
	}
	if r.CollectionEfficiency < 0 || r.CollectionEfficiency > 1 {
		return errors.New("channel: collection efficiency outside [0, 1]")
	}
	if r.StrayCoupling < 0 || r.StrayCoupling > 1 {
		return errors.New("channel: stray coupling outside [0, 1]")
	}
	if r.KernelSamples < 0 {
		return errors.New("channel: kernel samples must be non-negative")
	}
	return nil
}

// FootprintRadius returns the ground radius of the FoV.
func (r Receiver) FootprintRadius() float64 {
	return geom.NewConeDeg(r.FoVHalfAngleDeg).FootprintRadius(r.Height)
}

// Kernel returns the quadrature offsets and normalized weights of the
// receiver's footprint kernel.
func (r Receiver) Kernel() (offsets, weights []float64) {
	r = r.withDefaults()
	n := r.KernelSamples
	if n < 3 {
		n = 3
	}
	if n%2 == 0 {
		n++
	}
	rad := r.FootprintRadius()
	offsets = make([]float64, n)
	weights = make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		dx := -rad + 2*rad*float64(i)/float64(n-1)
		offsets[i] = dx
		c := geom.IncidenceCos(dx, r.Height)
		w := c * c * c * c
		weights[i] = w
		sum += w
	}
	for i := range weights {
		weights[i] /= sum
	}
	return offsets, weights
}

// LevelAt computes the instantaneous incident level (lux) on the
// receiver at time t.
func LevelAt(s *scene.Scene, r Receiver, t float64) float64 {
	r = r.withDefaults()
	offsets, weights := r.Kernel()
	var reflected float64
	for i, dx := range offsets {
		x := r.X + dx
		e := s.IlluminanceAt(x, t)
		sample := s.SampleAt(x, t)
		reflected += weights[i] * e * sample.Reflectance
	}
	stray := r.StrayCoupling * s.IlluminanceAt(r.X, t)
	return r.CollectionEfficiency*reflected + stray
}

// Render produces the incident-level time series for t in [t0, t0+dur)
// sampled at fs Hz.
func Render(s *scene.Scene, r Receiver, t0, dur, fs float64) ([]float64, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if dur <= 0 || fs <= 0 {
		return nil, errors.New("channel: duration and sample rate must be positive")
	}
	n := int(math.Round(dur * fs))
	if n < 1 {
		return nil, errors.New("channel: window shorter than one sample")
	}
	r = r.withDefaults()
	offsets, weights := r.Kernel()
	out := make([]float64, n)
	if plan, ok := newRenderPlan(s, r, offsets, weights); ok {
		plan.render(t0, fs, out)
		return out, nil
	}
	renderGeneric(s, r, offsets, weights, t0, fs, out)
	return out, nil
}

// renderGeneric is the fallback evaluator for scenes the renderPlan
// cannot specialize (dynamic tags, custom profiles). renderPlan must
// stay bit-identical to this loop.
func renderGeneric(s *scene.Scene, r Receiver, offsets, weights []float64, t0, fs float64, out []float64) {
	for i := range out {
		t := t0 + float64(i)/fs
		var reflected float64
		for k, dx := range offsets {
			x := r.X + dx
			e := s.IlluminanceAt(x, t)
			sample := s.SampleAt(x, t)
			reflected += weights[k] * e * sample.Reflectance
		}
		stray := r.StrayCoupling * s.IlluminanceAt(r.X, t)
		out[i] = r.CollectionEfficiency*reflected + stray
	}
}

// PassWindow computes the time interval during which an object's
// profile overlaps the receiver footprint, given the object's
// trajectory is monotonic with positive speed. It scans [0, maxT]
// with the given step and returns the first/last overlap times padded
// by pad seconds (clamped at 0 and maxT). ok is false if the object
// never enters the FoV.
func PassWindow(obj *scene.Object, r Receiver, maxT, step, pad float64) (t0, t1 float64, ok bool) {
	if step <= 0 {
		step = 1e-3
	}
	rad := r.FootprintRadius()
	length := obj.Profile.Length()
	first, last := -1.0, -1.0
	for t := 0.0; t <= maxT; t += step {
		lead := obj.Trajectory.PositionAt(t)
		tail := lead - length
		// Overlap if [tail, lead] intersects [r.X-rad, r.X+rad].
		if lead >= r.X-rad && tail <= r.X+rad {
			if first < 0 {
				first = t
			}
			last = t
		}
	}
	if first < 0 {
		return 0, 0, false
	}
	t0 = math.Max(0, first-pad)
	t1 = math.Min(maxT, last+pad)
	return t0, t1, true
}
