package channel

import (
	"testing"

	"passivelight/internal/coding"
	"passivelight/internal/material"
	"passivelight/internal/optics"
	"passivelight/internal/scene"
	"passivelight/internal/tag"
)

// planScenes builds one scene per specialization the renderPlan
// handles: steady point lamp + tag, rippling ceiling light (uniform
// source), sun + tagged car, and a two-object collision scene.
func planScenes(t *testing.T) map[string]*scene.Scene {
	t.Helper()
	mustTag := func(payload string, w float64) *tag.Tag {
		pkt, err := coding.NewPacket(payload)
		if err != nil {
			t.Fatal(err)
		}
		return tag.MustNew(pkt, tag.Config{SymbolWidth: w})
	}
	tagObj := func(tg *tag.Tag, start, speed, share float64) *scene.Object {
		obj, err := scene.NewTagObject("tag", tg, scene.ConstantSpeed{Start: start, Speed: speed}, share)
		if err != nil {
			t.Fatal(err)
		}
		return obj
	}
	out := map[string]*scene.Scene{}

	lamp := optics.LampForLux(0, 0.2, 900, 30)
	out["lamp+tag"] = scene.New(lamp, tagObj(mustTag("10", 0.03), -0.2, 0.08, 1.0))

	ceiling := optics.CeilingLight{Lux: 300, RippleDepth: 0.12, MainsHz: 50, Harmonics: []float64{0.25}}
	out["ceiling+tag"] = scene.New(ceiling, tagObj(mustTag("00", 0.03), -0.2, 0.08, 1.0))

	car, err := scene.NewTaggedCarObject(scene.VolvoV40(), mustTag("10", 0.10), scene.ConstantSpeed{Start: -3, Speed: 5})
	if err != nil {
		t.Fatal(err)
	}
	out["sun+car"] = scene.New(optics.Sun{Lux: 6200}, car)

	out["sun+drift+collision"] = scene.New(
		optics.Sun{Lux: 450, SlowDriftAmp: 0.05, DriftPeriod: 20},
		tagObj(mustTag("10", 0.04), -0.3, 0.08, 0.8),
		tagObj(mustTag("01", 0.02), -0.5, 0.12, 0.2),
	)
	return out
}

// TestRenderPlanMatchesGeneric locks the fast path to the generic
// evaluator bit for bit across every specialization.
func TestRenderPlanMatchesGeneric(t *testing.T) {
	r := Receiver{Height: 0.2, FoVHalfAngleDeg: 5}
	for name, s := range planScenes(t) {
		rr := r.withDefaults()
		offsets, weights := rr.Kernel()
		plan, ok := newRenderPlan(s, rr, offsets, weights)
		if !ok {
			t.Fatalf("%s: scene did not take the fast path", name)
		}
		const t0, fs = 0.0, 500.0
		n := 2000
		fast := make([]float64, n)
		plan.render(t0, fs, fast)
		slow := make([]float64, n)
		renderGeneric(s, rr, offsets, weights, t0, fs, slow)
		for i := range fast {
			if fast[i] != slow[i] {
				t.Fatalf("%s: sample %d differs: fast=%v generic=%v", name, i, fast[i], slow[i])
			}
		}
	}
}

// TestRenderFallsBackOnDynamicTag checks the generic path still
// serves scenes the plan cannot specialize.
func TestRenderFallsBackOnDynamicTag(t *testing.T) {
	pktA, err := coding.NewPacket("10")
	if err != nil {
		t.Fatal(err)
	}
	pktB, err := coding.NewPacket("01")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(p coding.Packet) *tag.Tag { return tag.MustNew(p, tag.Config{SymbolWidth: 0.03}) }
	dyn, err := tag.NewDynamic([]*tag.Tag{mk(pktA), mk(pktB)}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := scene.NewDynamicTagObject("dyn", dyn, scene.ConstantSpeed{Start: -0.2, Speed: 0.08}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	s := scene.New(optics.LampForLux(0, 0.2, 900, 30), obj)
	r := Receiver{Height: 0.2, FoVHalfAngleDeg: 5}.withDefaults()
	offsets, weights := r.Kernel()
	if _, ok := newRenderPlan(s, r, offsets, weights); ok {
		t.Fatal("dynamic tag scene must not take the fast path")
	}
	if _, err := Render(s, r, 0, 1.0, 500); err != nil {
		t.Fatal(err)
	}
}

// TestCarProfileFlatMatchesLookup sweeps the merged car+tag flat
// profile against the reference lookup.
func TestCarProfileFlatMatchesLookup(t *testing.T) {
	pkt, err := coding.NewPacket("10")
	if err != nil {
		t.Fatal(err)
	}
	roofTag := tag.MustNew(pkt, tag.Config{
		SymbolWidth: 0.10,
		HighMat:     &material.AluminumTape,
		LowMat:      &material.BlackNapkin,
	})
	for _, model := range []scene.CarModel{scene.VolvoV40(), scene.BMW3()} {
		for _, tg := range []*tag.Tag{nil, roofTag} {
			var obj *scene.Object
			var err error
			if tg == nil {
				obj, err = scene.NewCarObject(model, scene.ConstantSpeed{})
			} else {
				obj, err = scene.NewTaggedCarObject(model, tg, scene.ConstantSpeed{})
			}
			if err != nil {
				t.Fatal(err)
			}
			pc, ok := obj.Profile.(scene.PiecewiseConstant)
			if !ok {
				t.Fatal("car profile must be piecewise constant")
			}
			fp := pc.FlatReflectance()
			if len(fp.Edges) != len(fp.Rho)+1 || fp.Edges[0] != 0 {
				t.Fatalf("malformed flat profile: %d edges, %d segments", len(fp.Edges), len(fp.Rho))
			}
			if (tg != nil) != (fp.Overlay != nil) {
				t.Fatalf("overlay presence %v does not match tag presence %v", fp.Overlay != nil, tg != nil)
			}
			flatAt := func(u float64) float64 {
				if ov := fp.Overlay; ov != nil {
					if v := u - ov.Offset; v >= 0 && v < ov.Edges[len(ov.Edges)-1] {
						seg := 0
						for v >= ov.Edges[seg+1] {
							seg++
						}
						return ov.Rho[seg]
					}
				}
				seg := 0
				for u >= fp.Edges[seg+1] {
					seg++
				}
				return fp.Rho[seg]
			}
			L := obj.Profile.Length()
			for i := 0; i <= 5000; i++ {
				u := L * float64(i) / 5000 * 0.9999
				want, ok := obj.Profile.ReflectanceAtLocal(u)
				if !ok {
					t.Fatalf("lookup failed inside profile at u=%v", u)
				}
				if got := flatAt(u); got != want {
					t.Fatalf("%s tag=%v: u=%v flat=%v lookup=%v", model.Name, tg != nil, u, got, want)
				}
			}
		}
	}
}
