package channel

import (
	"math"
	"testing"

	"passivelight/internal/coding"
	"passivelight/internal/material"
	"passivelight/internal/optics"
	"passivelight/internal/scene"
	"passivelight/internal/tag"
)

func TestKernelWeightsNormalizedAndSymmetric(t *testing.T) {
	r := Receiver{Height: 0.3, FoVHalfAngleDeg: 10}
	offsets, weights := r.Kernel()
	if len(offsets) != len(weights) {
		t.Fatal("length mismatch")
	}
	var sum float64
	for _, w := range weights {
		if w < 0 {
			t.Fatal("negative weight")
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
	// Symmetric about center, maximal in the middle.
	n := len(weights)
	for i := 0; i < n/2; i++ {
		if math.Abs(weights[i]-weights[n-1-i]) > 1e-12 {
			t.Fatalf("asymmetric weights at %d", i)
		}
	}
	if weights[n/2] < weights[0] {
		t.Fatal("center weight should dominate")
	}
	// Footprint endpoints.
	wantR := 0.3 * math.Tan(10*math.Pi/180)
	if math.Abs(offsets[n-1]-wantR) > 1e-9 || math.Abs(offsets[0]+wantR) > 1e-9 {
		t.Fatalf("footprint edges %v..%v, want +-%v", offsets[0], offsets[n-1], wantR)
	}
}

func TestReceiverValidation(t *testing.T) {
	bad := []Receiver{
		{Height: 0, FoVHalfAngleDeg: 10},
		{Height: 1, FoVHalfAngleDeg: 0},
		{Height: 1, FoVHalfAngleDeg: 95},
		{Height: 1, FoVHalfAngleDeg: 10, CollectionEfficiency: 2},
		{Height: 1, FoVHalfAngleDeg: 10, StrayCoupling: -0.1},
		{Height: 1, FoVHalfAngleDeg: 10, KernelSamples: -1},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	good := Receiver{Height: 0.25, FoVHalfAngleDeg: 40}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRenderStaticSceneIsFlat(t *testing.T) {
	sc := scene.New(optics.Sun{Lux: 500})
	r := Receiver{Height: 0.5, FoVHalfAngleDeg: 10}
	out, err := Render(sc, r, 0, 0.1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 100 {
		t.Fatalf("samples %d", len(out))
	}
	for i, v := range out {
		if math.Abs(v-out[0]) > 1e-9 {
			t.Fatalf("sample %d differs: %v vs %v", i, v, out[0])
		}
	}
	// Expected level: eta*rho_ground*E + stray*E with defaults.
	want := DefaultCollectionEfficiency*material.Tarmac.Reflectance*500 + DefaultStrayCoupling*500
	if math.Abs(out[0]-want) > 1e-9 {
		t.Fatalf("level %v, want %v", out[0], want)
	}
}

func TestRenderBrightStripeCreatesBump(t *testing.T) {
	hiTag, err := tag.NewFromSymbols([]coding.Symbol{coding.High}, tag.Config{SymbolWidth: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	obj, err := scene.NewTagObject("stripe", hiTag, scene.ConstantSpeed{Start: -0.2, Speed: 0.1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc := scene.New(optics.Sun{Lux: 500}, obj)
	r := Receiver{Height: 0.2, FoVHalfAngleDeg: 5}
	out, err := Render(sc, r, 0, 5, 200)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := out[0], out[0]
	hiIdx := 0
	for i, v := range out {
		if v > hi {
			hi, hiIdx = v, i
		}
		if v < lo {
			lo = v
		}
	}
	if hi <= lo {
		t.Fatal("no bump rendered")
	}
	// The stripe center passes the receiver (x=0) when the leading
	// edge is at +0.025: t = 0.225/0.1 = 2.25 s -> sample 450.
	if math.Abs(float64(hiIdx)-450) > 40 {
		t.Fatalf("bump at sample %d, want ~450", hiIdx)
	}
}

func TestRenderISIWithWideFoV(t *testing.T) {
	// The same alternating tag rendered with a narrow and a wide FoV:
	// the wide footprint must reduce the peak-to-peak excursion
	// (inter-symbol interference, Fig. 2(b)).
	mk := func(fov float64) float64 {
		tg, err := tag.New(coding.MustPacket("00"), tag.Config{SymbolWidth: 0.03})
		if err != nil {
			t.Fatal(err)
		}
		obj, err := scene.NewTagObject("tag", tg, scene.ConstantSpeed{Start: -0.2, Speed: 0.08}, 1)
		if err != nil {
			t.Fatal(err)
		}
		sc := scene.New(optics.Sun{Lux: 500}, obj)
		out, err := Render(sc, Receiver{Height: 0.3, FoVHalfAngleDeg: fov}, 0, 8, 200)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := out[0], out[0]
		for _, v := range out {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		return hi - lo
	}
	narrow := mk(3)
	wide := mk(25)
	if wide >= narrow*0.8 {
		t.Fatalf("wide FoV should smear symbols: narrow %.2f wide %.2f", narrow, wide)
	}
}

func TestRenderErrors(t *testing.T) {
	sc := scene.New(optics.Sun{Lux: 100})
	if _, err := Render(sc, Receiver{Height: 0, FoVHalfAngleDeg: 10}, 0, 1, 100); err == nil {
		t.Fatal("invalid receiver should fail")
	}
	r := Receiver{Height: 1, FoVHalfAngleDeg: 10}
	if _, err := Render(sc, r, 0, 0, 100); err == nil {
		t.Fatal("zero duration should fail")
	}
	if _, err := Render(sc, r, 0, 1, 0); err == nil {
		t.Fatal("zero sample rate should fail")
	}
}

func TestLevelAtMatchesRender(t *testing.T) {
	sc := scene.New(optics.Sun{Lux: 300})
	r := Receiver{Height: 0.4, FoVHalfAngleDeg: 15}
	out, err := Render(sc, r, 0.5, 0.01, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := LevelAt(sc, r, 0.5); math.Abs(got-out[0]) > 1e-9 {
		t.Fatalf("LevelAt %v vs Render %v", got, out[0])
	}
}

func TestPassWindow(t *testing.T) {
	tg, err := tag.New(coding.MustPacket("0"), tag.Config{SymbolWidth: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	obj, err := scene.NewTagObject("tag", tg, scene.ConstantSpeed{Start: -1, Speed: 0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := Receiver{Height: 0.2, FoVHalfAngleDeg: 5}
	t0, t1, ok := PassWindow(obj, r, 10, 0.01, 0.1)
	if !ok {
		t.Fatal("pass not found")
	}
	// The tag (0.3 m long) reaches the FoV edge (~ -0.0175) when its
	// leading edge arrives: t ~ (1-0.0175)/0.5 ~ 1.97 s; it leaves
	// when its tail passes +0.0175: t ~ (1 + 0.3 + 0.0175)/0.5 ~ 2.64.
	if t0 > 1.97 || t0 < 1.5 {
		t.Fatalf("t0 = %v", t0)
	}
	if t1 < 2.6 || t1 > 3.1 {
		t.Fatalf("t1 = %v", t1)
	}
	// An object moving away never enters.
	away, err := scene.NewTagObject("away", tg, scene.ConstantSpeed{Start: -1, Speed: -0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := PassWindow(away, r, 10, 0.01, 0.1); ok {
		t.Fatal("receding object should not produce a window")
	}
}

func TestStrayCouplingSetsPedestal(t *testing.T) {
	sc := scene.New(optics.Sun{Lux: 1000}).WithGround(material.DarkCloth)
	withStray := Receiver{Height: 0.5, FoVHalfAngleDeg: 10, StrayCoupling: 0.3, CollectionEfficiency: 0.5}
	noStray := Receiver{Height: 0.5, FoVHalfAngleDeg: 10, StrayCoupling: -1, CollectionEfficiency: 0.5}
	// StrayCoupling < 0 is invalid; emulate "no stray" with a tiny
	// positive value instead.
	noStray.StrayCoupling = 1e-9
	a := LevelAt(sc, withStray, 0)
	b := LevelAt(sc, noStray, 0)
	if a-b < 0.3*1000*0.9 {
		t.Fatalf("stray pedestal missing: %v vs %v", a, b)
	}
}

func BenchmarkRenderCarPassWindow(b *testing.B) {
	tg, err := tag.New(coding.MustPacket("00"), tag.Config{SymbolWidth: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	obj, err := scene.NewTagObject("tag", tg, scene.ConstantSpeed{Start: -1, Speed: 5}, 1)
	if err != nil {
		b.Fatal(err)
	}
	sc := scene.New(optics.Sun{Lux: 6200}, obj)
	r := Receiver{Height: 0.75, FoVHalfAngleDeg: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Render(sc, r, 0, 0.5, 2000); err != nil {
			b.Fatal(err)
		}
	}
}
