package channel

import (
	"sort"

	"passivelight/internal/optics"
	"passivelight/internal/scene"
)

// renderPlan is the specialized fast path of Render. The generic loop
// evaluates, per output sample, the source illuminance and a
// polymorphic reflectance lookup at every footprint point — for a
// 129-point kernel that is ~130 interface calls and (for a point
// lamp) 129 math.Pow evaluations per sample, which dominates every
// simulation benchmark. The plan removes all of it for the common
// scene shapes while producing bit-identical output:
//
//   - a time-invariant source (PointLamp, Sun without drift) has its
//     footprint illuminance evaluated once per render and folded into
//     the kernel weights;
//   - a position-invariant source (CeilingLight, Sun) is evaluated
//     once per time step instead of once per footprint point;
//   - piecewise-constant object profiles (tags, car bodies) are
//     flattened to edge/reflectance arrays walked with a monotone
//     cursor, and the object's trajectory is advanced once per time
//     step instead of once per footprint point.
//
// Float operation order matches the generic path exactly, so the two
// paths produce identical bits; equivalence is locked down by
// TestRenderPlanMatchesGeneric.
type renderPlan struct {
	rx      Receiver
	xs      []float64 // footprint sample positions (r.X + offset)
	weights []float64
	ground  float64
	objs    []planObject

	src optics.Source
	// srcKind selects how illuminance is evaluated.
	srcKind srcKind
	// wE[k] = weights[k] * E(xs[k]) for a steady source.
	wE []float64
	// strayE = StrayCoupling * E(r.X) for a steady source.
	strayE float64
	// quietOut is the output value of a time step no object touches,
	// for a steady source: sum_k wE[k]*ground folded with the stray
	// term, accumulated in kernel order so it is bit-identical to the
	// per-sample loop.
	quietOut float64
	// groundPrefix[k] is the running sum of wE[j]*ground for j < k,
	// accumulated in kernel order — exactly the value the reflected
	// accumulator holds after the ground prefix loop, so render can
	// start the active span from a table lookup instead of re-summing
	// the quiet prefix every time step.
	groundPrefix []float64
	// accShare/accRho are per-footprint-point blend accumulators
	// reused across time steps (zeroed over the active span only).
	accShare, accRho []float64
}

// PlanSpecialized reports whether Render will take the specialized
// fast path for this scene + receiver (no dynamic tags, every profile
// piecewise-constant). Benchmarks of multi-object scenario scenes
// assert it so a fast-path regression fails loudly instead of
// silently multiplying render cost.
func PlanSpecialized(s *scene.Scene, r Receiver) bool {
	r = r.withDefaults()
	offsets, weights := r.Kernel()
	_, ok := newRenderPlan(s, r, offsets, weights)
	return ok
}

type srcKind int

const (
	srcGeneric srcKind = iota // E(x, t) per footprint point
	srcUniform                // E(t): once per time step
	srcSteady                 // E(x): folded into the kernel weights
)

type planObject struct {
	traj   scene.Trajectory
	share  float64
	edges  []float64 // len(rho)+1, edges[0] = 0
	rho    []float64
	length float64
	// Overlay layer (a roof tag over a car body): active on local
	// coordinates v = u - ovOffset in [0, ovLen). Kept separate from
	// the base layer so every boundary comparison rounds exactly like
	// the reference ReflectanceAtLocal.
	ovEdges  []float64
	ovRho    []float64
	ovOffset float64
	ovLen    float64
	// lead is the leading-edge position at the current time step;
	// kLo/kHi the footprint index range the object covers there.
	lead     float64
	kLo, kHi int
	// seg/ovSeg are monotone segment cursors: footprint positions
	// ascend within a time step, so the local coordinate u = lead - x
	// only descends and the cursors amortize to O(1) per lookup.
	seg, ovSeg int
}

// newRenderPlan builds the fast path for the scene, or ok=false when
// any element needs the generic evaluator (dynamic tags, custom
// profiles without the PiecewiseConstant capability).
func newRenderPlan(s *scene.Scene, r Receiver, offsets, weights []float64) (*renderPlan, bool) {
	if s.Source == nil {
		return nil, false
	}
	p := &renderPlan{
		rx:      r,
		weights: weights,
		ground:  s.Ground.Reflectance,
		src:     s.Source,
	}
	for _, o := range s.Objects {
		if o.DynamicTag != nil {
			return nil, false
		}
		pc, ok := o.Profile.(scene.PiecewiseConstant)
		if !ok {
			return nil, false
		}
		fp := pc.FlatReflectance()
		if len(fp.Rho) == 0 || len(fp.Edges) != len(fp.Rho)+1 {
			return nil, false
		}
		po := planObject{
			traj:   o.Trajectory,
			share:  o.LateralShare,
			edges:  fp.Edges,
			rho:    fp.Rho,
			length: fp.Edges[len(fp.Edges)-1],
		}
		if ov := fp.Overlay; ov != nil {
			if len(ov.Rho) == 0 || len(ov.Edges) != len(ov.Rho)+1 {
				return nil, false
			}
			po.ovEdges = ov.Edges
			po.ovRho = ov.Rho
			po.ovOffset = ov.Offset
			po.ovLen = ov.Edges[len(ov.Edges)-1]
		}
		p.objs = append(p.objs, po)
	}
	p.xs = make([]float64, len(offsets))
	for k, dx := range offsets {
		p.xs[k] = r.X + dx
	}
	p.accShare = make([]float64, len(p.xs))
	p.accRho = make([]float64, len(p.xs))
	if ss, ok := s.Source.(optics.SteadySource); ok && ss.SteadyIlluminance() {
		p.srcKind = srcSteady
		p.wE = make([]float64, len(p.xs))
		for k, x := range p.xs {
			p.wE[k] = weights[k] * s.Source.IlluminanceAt(x, 0)
		}
		p.strayE = r.StrayCoupling * s.Source.IlluminanceAt(r.X, 0)
		p.groundPrefix = make([]float64, len(p.xs)+1)
		var ground float64
		for k := range p.xs {
			p.groundPrefix[k] = ground
			ground += p.wE[k] * p.ground
		}
		p.groundPrefix[len(p.xs)] = ground
		p.quietOut = r.CollectionEfficiency*ground + p.strayE
	} else if us, ok := s.Source.(optics.UniformSource); ok && us.UniformIlluminance() {
		p.srcKind = srcUniform
	}
	return p, true
}

// kernelRange returns the footprint index range [kLo, kHi) the object
// covers at its current lead, using binary search over the exact
// coverage predicates (u = lead - x, u >= 0 and u < length) so the
// split agrees bit for bit with the per-point checks: u descends as k
// ascends, making both predicates monotone in k.
func (o *planObject) kernelRange(xs []float64) (int, int) {
	kLo := sort.Search(len(xs), func(k int) bool { return o.lead-xs[k] < o.length })
	kHi := sort.Search(len(xs), func(k int) bool { return o.lead-xs[k] < 0 })
	return kLo, kHi
}

// blendSpan composes the blended scene reflectance into
// p.accRho[kStart:kEnd], mirroring scene.SampleAt exactly: for every
// footprint point the objects contribute in scene order with the same
// share-clamp logic and float operation order, followed by the ground
// fill. Iterating object-major (instead of point-major) keeps each
// object's flat arrays and segment cursor in registers; the per-point
// result is unchanged because points are independent and the
// per-point object order is preserved.
func (p *renderPlan) blendSpan(kStart, kEnd int) {
	accShare, accRho := p.accShare, p.accRho
	clear(accShare[kStart:kEnd])
	clear(accRho[kStart:kEnd])
	xs := p.xs
	for j := range p.objs {
		o := &p.objs[j]
		lo, hi := o.kLo, o.kHi
		if lo >= hi {
			continue
		}
		lead, share := o.lead, o.share
		edges, rho := o.edges, o.rho
		seg := o.seg
		if o.ovRho == nil {
			// Cache the current segment's bounds and reflectance in
			// locals: the monotone cursor stays put for nearly every
			// point, so the common case touches no slice element of
			// the profile at all (the original loop re-read edges[seg]
			// and edges[seg+1] — bounds checks included — per point).
			// Re-walking only when u leaves [e0, e1) takes the exact
			// steps the unconditional walk would, so seg and the
			// blended output are bit-identical.
			e0, e1, rv := edges[seg], edges[seg+1], rho[seg]
			for k := lo; k < hi; k++ {
				u := lead - xs[k]
				if u < e0 || u >= e1 {
					for u < edges[seg] {
						seg--
					}
					for u >= edges[seg+1] {
						seg++
					}
					e0, e1, rv = edges[seg], edges[seg+1], rho[seg]
				}
				s := share
				if as := accShare[k]; as+s > 1 {
					s = 1 - as
				}
				if s <= 0 {
					continue
				}
				accShare[k] += s
				accRho[k] += s * rv
			}
		} else {
			ovEdges, ovRho := o.ovEdges, o.ovRho
			ovOffset, ovLen := o.ovOffset, o.ovLen
			ovSeg := o.ovSeg
			// Both layers get the cached-segment treatment; which
			// layer a point samples is decided per point exactly as
			// before.
			be0, be1, brv := edges[seg], edges[seg+1], rho[seg]
			oe0, oe1, orv := ovEdges[ovSeg], ovEdges[ovSeg+1], ovRho[ovSeg]
			for k := lo; k < hi; k++ {
				u := lead - xs[k]
				var r float64
				if v := u - ovOffset; v >= 0 && v < ovLen {
					if v < oe0 || v >= oe1 {
						for v < ovEdges[ovSeg] {
							ovSeg--
						}
						for v >= ovEdges[ovSeg+1] {
							ovSeg++
						}
						oe0, oe1, orv = ovEdges[ovSeg], ovEdges[ovSeg+1], ovRho[ovSeg]
					}
					r = orv
				} else {
					if u < be0 || u >= be1 {
						for u < edges[seg] {
							seg--
						}
						for u >= edges[seg+1] {
							seg++
						}
						be0, be1, brv = edges[seg], edges[seg+1], rho[seg]
					}
					r = brv
				}
				s := share
				if as := accShare[k]; as+s > 1 {
					s = 1 - as
				}
				if s <= 0 {
					continue
				}
				accShare[k] += s
				accRho[k] += s * r
			}
			o.ovSeg = ovSeg
		}
		o.seg = seg
	}
	ground := p.ground
	share := accShare[kStart:kEnd]
	blend := accRho[kStart:kEnd]
	blend = blend[:len(share)]
	for k := range share {
		if as := share[k]; as < 1 {
			blend[k] += (1 - as) * ground
		}
	}
}

// render fills out[i] for t = t0 + i/fs.
func (p *renderPlan) render(t0, fs float64, out []float64) {
	r := p.rx
	for i := range out {
		t := t0 + float64(i)/fs
		// Advance every object and bound the footprint span any of
		// them touches: outside [kStart, kEnd) every object fails its
		// coverage predicate, so the reflectance is the bare ground's
		// and (for a steady source) entire quiet time steps collapse
		// to one precomputed value.
		kStart, kEnd := len(p.xs), 0
		for j := range p.objs {
			o := &p.objs[j]
			o.lead = o.traj.PositionAt(t)
			o.kLo, o.kHi = o.kernelRange(p.xs)
			if o.kLo < o.kHi {
				if o.kLo < kStart {
					kStart = o.kLo
				}
				if o.kHi > kEnd {
					kEnd = o.kHi
				}
			}
		}
		quiet := kStart >= kEnd
		if quiet {
			// No object touches the footprint: the whole kernel is
			// the ground prefix.
			kStart, kEnd = len(p.xs), len(p.xs)
		} else {
			p.blendSpan(kStart, kEnd)
		}
		var reflected float64
		switch p.srcKind {
		case srcSteady:
			if quiet {
				out[i] = p.quietOut
				continue
			}
			// The quiet prefix collapses to its precomputed running
			// sum — the same additions in the same order, done once at
			// plan build instead of every time step.
			reflected = p.groundPrefix[kStart]
			// Active span: subslices of equal length eliminate the
			// bounds checks, and the 4-wide unroll (single
			// accumulator, so the addition order is untouched) keeps
			// the loop busy on the multiplies.
			wE := p.wE[kStart:kEnd]
			acc := p.accRho[kStart:kEnd]
			wE = wE[:len(acc)]
			k := 0
			for ; k+4 <= len(acc); k += 4 {
				reflected += wE[k] * acc[k]
				reflected += wE[k+1] * acc[k+1]
				reflected += wE[k+2] * acc[k+2]
				reflected += wE[k+3] * acc[k+3]
			}
			for ; k < len(acc); k++ {
				reflected += wE[k] * acc[k]
			}
			// Quiet suffix: its start value depends on the span sum,
			// so it cannot be a table lookup, but the same unroll
			// applies.
			wTail := p.wE[kEnd:]
			g := p.ground
			k = 0
			for ; k+4 <= len(wTail); k += 4 {
				reflected += wTail[k] * g
				reflected += wTail[k+1] * g
				reflected += wTail[k+2] * g
				reflected += wTail[k+3] * g
			}
			for ; k < len(wTail); k++ {
				reflected += wTail[k] * g
			}
			out[i] = r.CollectionEfficiency*reflected + p.strayE
		case srcUniform:
			e := p.src.IlluminanceAt(r.X, t)
			for k := 0; k < kStart; k++ {
				reflected += p.weights[k] * e * p.ground
			}
			for k := kStart; k < kEnd; k++ {
				reflected += p.weights[k] * e * p.accRho[k]
			}
			for k := kEnd; k < len(p.xs); k++ {
				reflected += p.weights[k] * e * p.ground
			}
			out[i] = r.CollectionEfficiency*reflected + r.StrayCoupling*e
		default:
			for k, x := range p.xs {
				e := p.src.IlluminanceAt(x, t)
				var rho float64
				if k >= kStart && k < kEnd {
					rho = p.accRho[k]
				} else {
					rho = p.ground
				}
				reflected += p.weights[k] * e * rho
			}
			out[i] = r.CollectionEfficiency*reflected + r.StrayCoupling*p.src.IlluminanceAt(r.X, t)
		}
	}
}
