package scene

import (
	"math"
	"testing"
)

func TestLaneOffsetHoldsThenFollows(t *testing.T) {
	inner := ConstantSpeed{Start: -2, Speed: 5}
	lo := LaneOffset{Inner: inner, Delay: 3}
	if got := lo.PositionAt(0); got != -2 {
		t.Fatalf("t=0: %v", got)
	}
	if got := lo.PositionAt(3); got != -2 {
		t.Fatalf("t=delay: %v", got)
	}
	if got, want := lo.PositionAt(4.5), inner.PositionAt(1.5); got != want {
		t.Fatalf("t=4.5: %v want %v", got, want)
	}
	if lo.Describe() == "" {
		t.Fatal("empty description")
	}
}

func TestStopAndGo(t *testing.T) {
	sg, err := StopAndGo(0, 2, []Stop{{At: 1, Dwell: 2}, {At: 5, Dwell: 1}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ t, want float64 }{
		{0, 0},
		{1, 2},   // cruised 1 s at 2 m/s
		{2, 2},   // dwelling
		{3, 2},   // dwell ends at t=3
		{5, 6},   // cruised 2 more seconds
		{6, 6},   // second dwell
		{8, 10},  // cruising again
		{10, 14}, // final segment extrapolates
	}
	for _, tc := range cases {
		if got := sg.PositionAt(tc.t); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("t=%v: got %v want %v", tc.t, got, tc.want)
		}
	}
}

func TestStopAndGoValidation(t *testing.T) {
	if _, err := StopAndGo(0, 0, nil); err == nil {
		t.Fatal("zero speed should fail")
	}
	if _, err := StopAndGo(0, 2, []Stop{{At: 1, Dwell: 0}}); err == nil {
		t.Fatal("zero dwell should fail")
	}
	if _, err := StopAndGo(0, 2, []Stop{{At: 2, Dwell: 2}, {At: 3, Dwell: 1}}); err == nil {
		t.Fatal("overlapping stops should fail")
	}
	// No stops degenerates to constant speed.
	sg, err := StopAndGo(1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := sg.PositionAt(3); got != 7 {
		t.Fatalf("no-stop trajectory: %v", got)
	}
}

func TestLaneCompose(t *testing.T) {
	mk := func(share float64) *Object {
		return &Object{Name: "o", LateralShare: share}
	}
	if err := LaneCompose(mk(0.5), mk(0.3), mk(0.2)); err != nil {
		t.Fatalf("full FoV split should compose: %v", err)
	}
	if err := LaneCompose(mk(0.6), mk(0.6)); err == nil {
		t.Fatal("overcommitted shares should fail")
	}
	if err := LaneCompose(mk(0)); err == nil {
		t.Fatal("zero share should fail")
	}
}

func TestLaneShares(t *testing.T) {
	shares := LaneShares(4, 1)
	var sum float64
	seen := map[float64]bool{}
	for _, s := range shares {
		if s <= 0 {
			t.Fatalf("non-positive share %v", s)
		}
		if seen[s] {
			t.Fatalf("duplicate share %v", s)
		}
		seen[s] = true
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %v", sum)
	}
	for i := 1; i < len(shares); i++ {
		if shares[i] >= shares[i-1] {
			t.Fatal("shares should descend (dominance ordering)")
		}
	}
	if LaneShares(0, 1) != nil {
		t.Fatal("n=0 should return nil")
	}
}
