package scene

import (
	"errors"
	"fmt"

	"passivelight/internal/material"
	"passivelight/internal/tag"
)

// CarSegment is one longitudinal section of a car's top surface as
// seen from above: hood, windshield, roof, rear glass, trunk.
type CarSegment struct {
	Name     string
	Length   float64 // meters along the car
	Material material.Material
}

// CarModel describes a car's optical signature (Figs. 13-14): the
// sequence of metal (bright) and glass (dark) sections from front to
// back, plus where a roof tag would be mounted.
type CarModel struct {
	Name     string
	Segments []CarSegment
	// RoofIndex is the index of the roof segment (where tags mount).
	RoofIndex int
	// WidthShare is the lateral FoV share of the car when centered
	// under the receiver.
	WidthShare float64
}

// Length returns the car's total length.
func (c CarModel) Length() float64 {
	var sum float64
	for _, s := range c.Segments {
		sum += s.Length
	}
	return sum
}

// RoofOffset returns the distance from the car front to the start of
// the roof segment.
func (c CarModel) RoofOffset() float64 {
	var sum float64
	for i := 0; i < c.RoofIndex; i++ {
		sum += c.Segments[i].Length
	}
	return sum
}

// VolvoV40 is the paper's first test car: a hatchback, so the rear
// glass runs to the tail (Fig. 13 labels A hood, B windshield, C
// roof, D rear glass — no separate trunk peak).
func VolvoV40() CarModel {
	return CarModel{
		Name: "volvo-v40",
		Segments: []CarSegment{
			{Name: "hood", Length: 1.00, Material: material.CarPaintMetal},
			{Name: "windshield", Length: 0.75, Material: material.WindshieldGlass},
			{Name: "roof", Length: 1.30, Material: material.CarPaintMetal},
			{Name: "rear-glass", Length: 1.30, Material: material.WindshieldGlass},
		},
		RoofIndex:  2,
		WidthShare: 1.0,
	}
}

// BMW3 is the paper's second test car: a sedan, with a distinct trunk
// after the rear glass (Fig. 14 labels A hood, B windshield, C roof,
// D rear glass, E trunk).
func BMW3() CarModel {
	return CarModel{
		Name: "bmw-3",
		Segments: []CarSegment{
			{Name: "hood", Length: 1.20, Material: material.CarPaintMetal},
			{Name: "windshield", Length: 0.70, Material: material.WindshieldGlass},
			{Name: "roof", Length: 1.20, Material: material.CarPaintMetal},
			{Name: "rear-glass", Length: 0.70, Material: material.WindshieldGlass},
			{Name: "trunk", Length: 0.85, Material: material.CarPaintMetal},
		},
		RoofIndex:  2,
		WidthShare: 1.0,
	}
}

// carProfile implements ReflectanceProfile for a bare car or a car
// with a tag glued onto the roof. The tag replaces the roof
// reflectance over its extent.
type carProfile struct {
	model     CarModel
	edges     []float64
	mats      []material.Material
	roofTag   *tag.Tag
	tagOffset float64 // distance from car front to tag leading edge
	// flatRho caches per-segment reflectances for FlatReflectance.
	flatRho []float64
}

// NewCarObject builds a bare car (no tag) moving along traj; the
// optical signature is used as the long-duration preamble baseline of
// Sec. 5.1.
func NewCarObject(model CarModel, traj Trajectory) (*Object, error) {
	p, err := newCarProfile(model, nil)
	if err != nil {
		return nil, err
	}
	return &Object{Name: model.Name, Profile: p, Trajectory: traj, LateralShare: model.WidthShare}, nil
}

// NewTaggedCarObject builds a car with a tag centered on its roof.
func NewTaggedCarObject(model CarModel, t *tag.Tag, traj Trajectory) (*Object, error) {
	if t == nil {
		return nil, errors.New("scene: nil tag")
	}
	p, err := newCarProfile(model, t)
	if err != nil {
		return nil, err
	}
	return &Object{
		Name:         fmt.Sprintf("%s+tag", model.Name),
		Profile:      p,
		Trajectory:   traj,
		LateralShare: model.WidthShare,
	}, nil
}

func newCarProfile(model CarModel, t *tag.Tag) (*carProfile, error) {
	if len(model.Segments) == 0 {
		return nil, errors.New("scene: car model has no segments")
	}
	if model.RoofIndex < 0 || model.RoofIndex >= len(model.Segments) {
		return nil, fmt.Errorf("scene: roof index %d out of range", model.RoofIndex)
	}
	cp := &carProfile{model: model}
	pos := 0.0
	cp.edges = append(cp.edges, 0)
	for _, s := range model.Segments {
		if s.Length <= 0 {
			return nil, fmt.Errorf("scene: car segment %q has non-positive length", s.Name)
		}
		pos += s.Length
		cp.edges = append(cp.edges, pos)
		cp.mats = append(cp.mats, s.Material)
	}
	if t != nil {
		roof := model.Segments[model.RoofIndex]
		if t.Length() > roof.Length {
			return nil, fmt.Errorf("scene: tag length %.3f m exceeds roof length %.3f m", t.Length(), roof.Length)
		}
		cp.roofTag = t
		// Center the tag on the roof.
		cp.tagOffset = model.RoofOffset() + (roof.Length-t.Length())/2
	}
	cp.flatRho = make([]float64, len(cp.mats))
	for i, m := range cp.mats {
		cp.flatRho[i] = m.Reflectance
	}
	return cp, nil
}

// FlatReflectance implements PiecewiseConstant: the car body as the
// base layer, the roof tag (if any) as an overlay at its mount
// offset. The two layers are deliberately not merged — the overlay
// lookup v = u - Offset must round exactly like ReflectanceAtLocal's.
func (cp *carProfile) FlatReflectance() FlatProfile {
	fp := FlatProfile{Edges: cp.edges, Rho: cp.flatRho}
	if cp.roofTag != nil {
		te, trho := cp.roofTag.Profile().FlatReflectance()
		fp.Overlay = &FlatOverlay{Offset: cp.tagOffset, Edges: te, Rho: trho}
	}
	return fp
}

// ReflectanceAtLocal implements ReflectanceProfile. Local coordinate
// u = 0 is the car front; u grows toward the tail.
func (cp *carProfile) ReflectanceAtLocal(u float64) (float64, bool) {
	if u < 0 || u >= cp.Length() {
		return 0, false
	}
	if cp.roofTag != nil {
		if v := u - cp.tagOffset; v >= 0 && v < cp.roofTag.Length() {
			if m, ok := cp.roofTag.Profile().MaterialAt(v); ok {
				return m.Reflectance, true
			}
		}
	}
	// Linear scan: car profiles have <= 5 segments.
	for i := range cp.mats {
		if u >= cp.edges[i] && u < cp.edges[i+1] {
			return cp.mats[i].Reflectance, true
		}
	}
	return 0, false
}

// Length implements ReflectanceProfile.
func (cp *carProfile) Length() float64 { return cp.edges[len(cp.edges)-1] }

// TagOffset exposes where the tag sits (for experiment alignment).
func (cp *carProfile) TagOffset() float64 { return cp.tagOffset }
