package scene

import (
	"errors"
	"fmt"
	"math"
)

// LaneOffset staggers a trajectory in time: the object holds its
// start position for Delay seconds, then follows Inner shifted by
// Delay. It is how multi-lane scenarios (several tagged cars passing
// the same receiver one after another) are composed from per-lane
// trajectories without rewriting them.
type LaneOffset struct {
	Inner Trajectory
	// Delay in seconds before the inner trajectory starts.
	Delay float64
}

// PositionAt implements Trajectory.
func (l LaneOffset) PositionAt(t float64) float64 {
	if t <= l.Delay {
		return l.Inner.PositionAt(0)
	}
	return l.Inner.PositionAt(t - l.Delay)
}

// Describe implements Trajectory.
func (l LaneOffset) Describe() string {
	return fmt.Sprintf("after %.1f s: %s", l.Delay, l.Inner.Describe())
}

// Stop is one dwell of a stop-and-go trajectory: the object halts at
// time At (seconds, measured on the trajectory clock) and stays put
// for Dwell seconds.
type Stop struct {
	At    float64
	Dwell float64
}

// StopAndGo builds the piecewise trajectory of urban traffic: cruise
// at speed, halt for each Stop in order, resume. Stops must be
// ordered, non-overlapping and strictly positive.
func StopAndGo(start, speed float64, stops []Stop) (PiecewiseSpeed, error) {
	if speed <= 0 {
		return PiecewiseSpeed{}, errors.New("scene: stop-and-go speed must be positive")
	}
	var segs []SpeedSegment
	prevEnd := 0.0
	for i, s := range stops {
		if s.At <= prevEnd {
			return PiecewiseSpeed{}, fmt.Errorf("scene: stop %d at %.3f s overlaps the previous one", i, s.At)
		}
		if s.Dwell <= 0 {
			return PiecewiseSpeed{}, fmt.Errorf("scene: stop %d dwell must be positive", i)
		}
		segs = append(segs,
			SpeedSegment{Until: s.At, Speed: speed},
			SpeedSegment{Until: s.At + s.Dwell, Speed: 0},
		)
		prevEnd = s.At + s.Dwell
	}
	segs = append(segs, SpeedSegment{Until: math.Inf(1), Speed: speed})
	return NewPiecewiseSpeed(start, segs)
}

// LaneCompose validates that objects can share one receiver FoV as
// lateral lanes: every lateral share in (0, 1] and the total within
// the FoV budget. SampleAt clamps overshoot at render time anyway;
// failing loudly here catches misconfigured scenario specs instead of
// silently flattening the last lane's contribution.
func LaneCompose(objs ...*Object) error {
	var total float64
	for _, o := range objs {
		if err := validShare(o.LateralShare); err != nil {
			return fmt.Errorf("object %q: %w", o.Name, err)
		}
		total += o.LateralShare
	}
	if total > 1+1e-9 {
		return fmt.Errorf("scene: lateral shares sum to %.3f > 1 across %d objects", total, len(objs))
	}
	return nil
}

// LaneShares splits the FoV budget into n distinct lane shares that
// sum to total: each lane is slightly wider than the next, so
// multi-object scenarios keep a dominance ordering (the paper's
// collision Case 1/2 structure generalized to n lanes).
func LaneShares(n int, total float64) []float64 {
	if n <= 0 {
		return nil
	}
	if total <= 0 || total > 1 {
		total = 1
	}
	// Arithmetic progression: share_i = base + (n-1-i)*step with
	// step = base/n keeps every share positive and distinct.
	out := make([]float64, n)
	base := total / float64(n)
	step := base / float64(n)
	// Sum of offsets (i from 0..n-1 of (n-1-i)*step) = step*n*(n-1)/2;
	// subtract its mean so the total is preserved exactly in intent.
	mean := step * float64(n-1) / 2
	for i := 0; i < n; i++ {
		out[i] = base + step*float64(n-1-i) - mean
	}
	return out
}
