package scene

import (
	"errors"
	"fmt"

	"passivelight/internal/material"
	"passivelight/internal/optics"
	"passivelight/internal/tag"
)

// ReflectanceProfile is anything that exposes a 1-D reflectance as a
// function of local position; both tags and car bodies implement it
// through adapters below.
type ReflectanceProfile interface {
	// ReflectanceAtLocal returns reflectance at local coordinate u in
	// [0, Length), and ok=false outside.
	ReflectanceAtLocal(u float64) (rho float64, ok bool)
	// Length is the profile extent (m).
	Length() float64
}

// FlatProfile is the piecewise-constant form of a reflectance
// profile: segment i covers [Edges[i], Edges[i+1]) with reflectance
// Rho[i], Edges[0] = 0 and Edges[len(Rho)] = Length. An Overlay (a
// roof tag glued on a car) takes precedence over the base segments on
// [Offset, Offset+Edges[last]) in local coordinates v = u - Offset —
// kept as a separate layer, not merged, so boundary comparisons round
// exactly like the reference lookup's. All slices are shared and
// read-only.
type FlatProfile struct {
	Edges, Rho []float64
	Overlay    *FlatOverlay
}

// FlatOverlay is a piecewise-constant patch over a base FlatProfile.
type FlatOverlay struct {
	// Offset of the overlay's origin in base profile coordinates.
	Offset     float64
	Edges, Rho []float64
}

// PiecewiseConstant is an optional capability of ReflectanceProfile:
// profiles that can expose their piecewise-constant reflectance as
// flat slices, letting the channel renderer replace per-sample
// interface dispatch with direct array lookups. FlatReflectance must
// describe exactly the same function as ReflectanceAtLocal, including
// the rounding of every boundary comparison.
type PiecewiseConstant interface {
	FlatReflectance() FlatProfile
}

// tagProfile adapts *tag.Tag (possibly dynamic) to ReflectanceProfile.
type tagProfile struct {
	t *tag.Tag
}

func (tp tagProfile) ReflectanceAtLocal(u float64) (float64, bool) {
	m, ok := tp.t.Profile().MaterialAt(u)
	if !ok {
		return 0, false
	}
	return m.Reflectance, true
}

func (tp tagProfile) Length() float64 { return tp.t.Length() }

// FlatReflectance implements PiecewiseConstant.
func (tp tagProfile) FlatReflectance() FlatProfile {
	edges, rho := tp.t.Profile().FlatReflectance()
	return FlatProfile{Edges: edges, Rho: rho}
}

// Object is a mobile element of the scene: a reflectance profile
// moving along a trajectory, occupying a lateral share of the
// receiver FoV.
type Object struct {
	// Name for logs and traces.
	Name string
	// Profile is the object's reflectance along the motion axis.
	Profile ReflectanceProfile
	// Trajectory drives the leading edge position over time. The
	// local coordinate u of ground point x at time t is
	// u = Trajectory.PositionAt(t) - x, i.e. positive motion sweeps
	// the profile tail-first across increasing x.
	Trajectory Trajectory
	// LateralShare in (0, 1] is the fraction of the receiver's FoV
	// width the object covers laterally. Two colliding packets with
	// shares 0.8/0.2 reproduce the paper's Case 1 dominance.
	LateralShare float64
	// DynamicTag, if non-nil, overrides Profile frame-by-frame
	// (future work (1)).
	DynamicTag *tag.Dynamic
}

// NewTagObject builds an Object carrying a static tag.
func NewTagObject(name string, t *tag.Tag, traj Trajectory, lateralShare float64) (*Object, error) {
	if t == nil {
		return nil, errors.New("scene: nil tag")
	}
	if err := validShare(lateralShare); err != nil {
		return nil, err
	}
	return &Object{Name: name, Profile: tagProfile{t}, Trajectory: traj, LateralShare: lateralShare}, nil
}

// NewDynamicTagObject builds an Object carrying a dynamic tag.
func NewDynamicTagObject(name string, d *tag.Dynamic, traj Trajectory, lateralShare float64) (*Object, error) {
	if d == nil {
		return nil, errors.New("scene: nil dynamic tag")
	}
	if err := validShare(lateralShare); err != nil {
		return nil, err
	}
	return &Object{Name: name, Profile: tagProfile{d.Frames[0]}, Trajectory: traj, LateralShare: lateralShare, DynamicTag: d}, nil
}

func validShare(s float64) error {
	if s <= 0 || s > 1 {
		return fmt.Errorf("scene: lateral share %.3f outside (0, 1]", s)
	}
	return nil
}

// ReflectanceAt returns the object's reflectance over ground position
// x at time t, and whether the object covers x at all.
func (o *Object) ReflectanceAt(x, t float64) (float64, bool) {
	lead := o.Trajectory.PositionAt(t)
	u := lead - x
	if o.DynamicTag != nil {
		active := o.DynamicTag.ActiveAt(t)
		m, ok := active.Profile().MaterialAt(u)
		if !ok {
			return 0, false
		}
		return m.Reflectance, true
	}
	return o.Profile.ReflectanceAtLocal(u)
}

// Scene is the complete world: light source, ground material, mobile
// objects.
type Scene struct {
	Source  optics.Source
	Ground  material.Material
	Objects []*Object
}

// New builds a scene, defaulting the ground to tarmac.
func New(src optics.Source, objects ...*Object) *Scene {
	return &Scene{Source: src, Ground: material.Tarmac, Objects: objects}
}

// WithGround overrides the ground material.
func (s *Scene) WithGround(m material.Material) *Scene {
	s.Ground = m
	return s
}

// SurfaceSample is what the channel sees at one ground point: the
// effective reflectance and the set of objects covering it.
type SurfaceSample struct {
	Reflectance float64
	// CoveredBy counts the objects over this point (0 = bare ground).
	CoveredBy int
}

// SampleAt composes the reflectance at ground position x and time t.
// Objects are blended by lateral share: the effective reflectance is
// sum(share_i * rho_i) + (1 - sum(share_i)) * rho_ground, clamping
// total share at 1 (objects cannot overlap laterally beyond the FoV).
func (s *Scene) SampleAt(x, t float64) SurfaceSample {
	var accShare, accRho float64
	covered := 0
	for _, o := range s.Objects {
		rho, ok := o.ReflectanceAt(x, t)
		if !ok {
			continue
		}
		covered++
		share := o.LateralShare
		if accShare+share > 1 {
			share = 1 - accShare
		}
		if share <= 0 {
			continue
		}
		accShare += share
		accRho += share * rho
	}
	if accShare < 1 {
		accRho += (1 - accShare) * s.Ground.Reflectance
	}
	return SurfaceSample{Reflectance: accRho, CoveredBy: covered}
}

// IlluminanceAt exposes the source illuminance for the channel.
func (s *Scene) IlluminanceAt(x, t float64) float64 {
	if s.Source == nil {
		return 0
	}
	return s.Source.IlluminanceAt(x, t)
}
