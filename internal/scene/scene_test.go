package scene

import (
	"math"
	"testing"

	"passivelight/internal/coding"
	"passivelight/internal/material"
	"passivelight/internal/optics"
	"passivelight/internal/tag"
)

func testTag(t *testing.T, payload string, width float64) *tag.Tag {
	t.Helper()
	tg, err := tag.New(coding.MustPacket(payload), tag.Config{SymbolWidth: width})
	if err != nil {
		t.Fatal(err)
	}
	return tg
}

func TestConstantSpeedTrajectory(t *testing.T) {
	c := ConstantSpeed{Start: -1, Speed: 0.5}
	if c.PositionAt(0) != -1 {
		t.Fatal("start position")
	}
	if c.PositionAt(4) != 1 {
		t.Fatal("position after 4 s")
	}
	if c.Describe() == "" {
		t.Fatal("empty description")
	}
}

func TestPiecewiseSpeedIntegration(t *testing.T) {
	p, err := NewPiecewiseSpeed(0, []SpeedSegment{
		{Until: 2, Speed: 1},
		{Until: 4, Speed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.PositionAt(1); got != 1 {
		t.Fatalf("t=1: %v", got)
	}
	if got := p.PositionAt(2); got != 2 {
		t.Fatalf("t=2: %v", got)
	}
	if got := p.PositionAt(3); got != 5 {
		t.Fatalf("t=3: %v", got)
	}
	if got := p.PositionAt(4); got != 8 {
		t.Fatalf("t=4: %v", got)
	}
	// Beyond the last segment: last speed continues.
	if got := p.PositionAt(5); got != 11 {
		t.Fatalf("t=5: %v", got)
	}
}

func TestPiecewiseSpeedValidation(t *testing.T) {
	if _, err := NewPiecewiseSpeed(0, nil); err == nil {
		t.Fatal("empty segments should fail")
	}
	if _, err := NewPiecewiseSpeed(0, []SpeedSegment{
		{Until: 2, Speed: 1},
		{Until: 1, Speed: 2},
	}); err == nil {
		t.Fatal("non-increasing Until should fail")
	}
}

func TestSpeedProfileMatchesClosedForm(t *testing.T) {
	// v(t) = 2t integrates to t^2.
	sp, err := NewSpeedProfile(0, func(tt float64) float64 { return 2 * tt }, 5, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0.5, 1, 2, 3.3, 4.9} {
		want := tt * tt
		if got := sp.PositionAt(tt); math.Abs(got-want) > 0.01 {
			t.Fatalf("t=%v: got %v want %v", tt, got, want)
		}
	}
	// Extrapolation beyond the table uses the last speed (10).
	if got := sp.PositionAt(6); math.Abs(got-(25+10)) > 0.1 {
		t.Fatalf("extrapolated position %v", got)
	}
	if _, err := NewSpeedProfile(0, func(float64) float64 { return 1 }, 0, 0.1); err == nil {
		t.Fatal("zero duration should fail")
	}
}

func TestSpeedDoublerSwitchesAtMidpoint(t *testing.T) {
	const (
		start  = -0.5
		tagLen = 0.24
		rx     = 0.0
		baseV  = 0.08
	)
	traj, err := SpeedDoubler(start, tagLen, rx, baseV)
	if err != nil {
		t.Fatal(err)
	}
	// The midpoint (leading edge - tagLen/2) reaches rx when the
	// leading edge is at rx + tagLen/2 = 0.12, i.e. after traveling
	// 0.62 m at 0.08 m/s = 7.75 s.
	tSwitch := (rx + tagLen/2 - start) / baseV
	before := traj.PositionAt(tSwitch - 0.1)
	at := traj.PositionAt(tSwitch)
	after := traj.PositionAt(tSwitch + 0.1)
	vBefore := (at - before) / 0.1
	vAfter := (after - at) / 0.1
	if math.Abs(vBefore-baseV) > 1e-9 {
		t.Fatalf("speed before switch %v", vBefore)
	}
	if math.Abs(vAfter-2*baseV) > 1e-9 {
		t.Fatalf("speed after switch %v", vAfter)
	}
	if _, err := SpeedDoubler(0.5, tagLen, 0, baseV); err == nil {
		t.Fatal("receiver behind midpoint should fail")
	}
	if _, err := SpeedDoubler(start, tagLen, rx, 0); err == nil {
		t.Fatal("zero speed should fail")
	}
}

func TestKmhToMs(t *testing.T) {
	if got := KmhToMs(18); math.Abs(got-5) > 1e-12 {
		t.Fatalf("18 km/h = %v m/s", got)
	}
}

func TestObjectReflectanceSweep(t *testing.T) {
	tg := testTag(t, "0", 0.1) // HLHL + HL: stripes of 10 cm
	obj, err := NewTagObject("o", tg, ConstantSpeed{Start: 0, Speed: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// At t=0 the leading edge is at x=0: ground point x=-0.05 has
	// local coordinate u = 0 - (-0.05) = 0.05 -> first stripe (H).
	rho, ok := obj.ReflectanceAt(-0.05, 0)
	if !ok || rho < 0.5 {
		t.Fatalf("first stripe: rho=%v ok=%v", rho, ok)
	}
	// Point ahead of the object: not covered.
	if _, ok := obj.ReflectanceAt(0.05, 0); ok {
		t.Fatal("point ahead of leading edge should be uncovered")
	}
	// After 0.35 s the leading edge is at 0.35; x=0.1 has u=0.25 ->
	// third stripe (H).
	rho, ok = obj.ReflectanceAt(0.1, 0.35)
	if !ok || rho < 0.5 {
		t.Fatalf("third stripe: rho=%v ok=%v", rho, ok)
	}
}

func TestNewTagObjectValidation(t *testing.T) {
	tg := testTag(t, "0", 0.1)
	if _, err := NewTagObject("o", nil, ConstantSpeed{}, 1); err == nil {
		t.Fatal("nil tag should fail")
	}
	if _, err := NewTagObject("o", tg, ConstantSpeed{}, 0); err == nil {
		t.Fatal("zero share should fail")
	}
	if _, err := NewTagObject("o", tg, ConstantSpeed{}, 1.5); err == nil {
		t.Fatal("share > 1 should fail")
	}
}

func TestSceneBlendsShares(t *testing.T) {
	// Two half-share objects: a HIGH-stripe over the full tag length
	// each. Build single-stripe tags via NewFromSymbols.
	hiTag, err := tag.NewFromSymbols([]coding.Symbol{coding.High}, tag.Config{SymbolWidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	loTag, err := tag.NewFromSymbols([]coding.Symbol{coding.Low}, tag.Config{SymbolWidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewTagObject("hi", hiTag, ConstantSpeed{Start: 1, Speed: 0}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTagObject("lo", loTag, ConstantSpeed{Start: 1, Speed: 0}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sc := New(optics.Sun{Lux: 100}, a, b)
	s := sc.SampleAt(0.5, 0)
	want := 0.5*material.AluminumTape.Reflectance + 0.5*material.BlackNapkin.Reflectance
	if math.Abs(s.Reflectance-want) > 1e-9 {
		t.Fatalf("blended reflectance %v, want %v", s.Reflectance, want)
	}
	if s.CoveredBy != 2 {
		t.Fatalf("covered by %d", s.CoveredBy)
	}
	// Uncovered point shows the ground.
	g := sc.SampleAt(10, 0)
	if g.Reflectance != material.Tarmac.Reflectance || g.CoveredBy != 0 {
		t.Fatalf("ground sample %+v", g)
	}
}

func TestSceneShareClamping(t *testing.T) {
	hiTag, err := tag.NewFromSymbols([]coding.Symbol{coding.High}, tag.Config{SymbolWidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Three 0.5-share objects: total clamps at 1, no ground contribution.
	var objs []*Object
	for i := 0; i < 3; i++ {
		o, err := NewTagObject("o", hiTag, ConstantSpeed{Start: 1, Speed: 0}, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, o)
	}
	sc := New(optics.Sun{Lux: 100}, objs...)
	s := sc.SampleAt(0.5, 0)
	if math.Abs(s.Reflectance-material.AluminumTape.Reflectance) > 1e-9 {
		t.Fatalf("clamped reflectance %v", s.Reflectance)
	}
}

func TestSceneIlluminance(t *testing.T) {
	sc := New(optics.Sun{Lux: 321})
	if got := sc.IlluminanceAt(0, 0); got != 321 {
		t.Fatalf("illuminance %v", got)
	}
	empty := &Scene{}
	if got := empty.IlluminanceAt(0, 0); got != 0 {
		t.Fatalf("no-source illuminance %v", got)
	}
}

func TestWithGround(t *testing.T) {
	sc := New(optics.Sun{Lux: 100}).WithGround(material.WhitePaper)
	s := sc.SampleAt(0, 0)
	if s.Reflectance != material.WhitePaper.Reflectance {
		t.Fatalf("ground reflectance %v", s.Reflectance)
	}
}
