// Package scene assembles the physical world the channel renders: a
// ground plane, an ambient light source, and mobile objects that
// carry reflectance profiles (tags and/or car bodies) along
// trajectories. Trajectories are where the paper's speed-related
// phenomena live: constant speed for the ideal channel (Sec. 4.1),
// a mid-packet speed change for the distortion study (Sec. 4.2,
// Fig. 8), and 18 km/h drive-bys for the outdoor application (Sec. 5).
package scene

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Trajectory maps time to the position of an object's leading edge
// along the motion axis (meters).
type Trajectory interface {
	// PositionAt returns the leading-edge position at time t (s).
	PositionAt(t float64) float64
	// Describe returns a short human-readable description.
	Describe() string
}

// ConstantSpeed moves at Speed m/s starting from Start at t=0.
type ConstantSpeed struct {
	Start float64 // initial position (m)
	Speed float64 // m/s (may be negative)
}

// PositionAt implements Trajectory.
func (c ConstantSpeed) PositionAt(t float64) float64 { return c.Start + c.Speed*t }

// Describe implements Trajectory.
func (c ConstantSpeed) Describe() string {
	return fmt.Sprintf("constant %.3f m/s from %.3f m", c.Speed, c.Start)
}

// PiecewiseSpeed changes speed at fixed times. It reproduces the
// Fig. 8 distortion: "the speed is doubled when the second half (Data
// field) passes by".
type PiecewiseSpeed struct {
	Start    float64
	Segments []SpeedSegment // must be ordered by Until; last Until may be +Inf
}

// SpeedSegment holds a speed valid until the given time.
type SpeedSegment struct {
	Until float64 // segment applies for t < Until
	Speed float64 // m/s
}

// NewPiecewiseSpeed validates segment ordering.
func NewPiecewiseSpeed(start float64, segments []SpeedSegment) (PiecewiseSpeed, error) {
	if len(segments) == 0 {
		return PiecewiseSpeed{}, errors.New("scene: piecewise trajectory needs at least one segment")
	}
	for i := 1; i < len(segments); i++ {
		if segments[i].Until <= segments[i-1].Until {
			return PiecewiseSpeed{}, fmt.Errorf("scene: segment %d Until %.3f not increasing", i, segments[i].Until)
		}
	}
	return PiecewiseSpeed{Start: start, Segments: segments}, nil
}

// PositionAt integrates the piecewise-constant speed.
func (p PiecewiseSpeed) PositionAt(t float64) float64 {
	pos := p.Start
	prev := 0.0
	for _, seg := range p.Segments {
		end := math.Min(t, seg.Until)
		if end > prev {
			pos += seg.Speed * (end - prev)
			prev = end
		}
		if t <= seg.Until {
			return pos
		}
	}
	// Beyond the last segment: keep the last speed.
	last := p.Segments[len(p.Segments)-1]
	pos += last.Speed * (t - prev)
	return pos
}

// Describe implements Trajectory.
func (p PiecewiseSpeed) Describe() string {
	return fmt.Sprintf("piecewise %d segments from %.3f m", len(p.Segments), p.Start)
}

// SpeedProfile is a trajectory driven by an arbitrary speed function,
// integrated numerically at construction over [0, Duration] with the
// given step.
type SpeedProfile struct {
	Start    float64
	times    []float64
	position []float64
	lastV    float64
}

// NewSpeedProfile integrates v(t) with trapezoidal steps.
func NewSpeedProfile(start float64, v func(t float64) float64, duration, step float64) (*SpeedProfile, error) {
	if duration <= 0 || step <= 0 {
		return nil, errors.New("scene: duration and step must be positive")
	}
	n := int(math.Ceil(duration/step)) + 1
	sp := &SpeedProfile{Start: start}
	sp.times = make([]float64, n)
	sp.position = make([]float64, n)
	pos := start
	prevV := v(0)
	sp.times[0], sp.position[0] = 0, pos
	for i := 1; i < n; i++ {
		t := float64(i) * step
		cv := v(t)
		pos += 0.5 * (prevV + cv) * step
		prevV = cv
		sp.times[i], sp.position[i] = t, pos
	}
	sp.lastV = prevV
	return sp, nil
}

// PositionAt interpolates the integrated table; beyond the table the
// last speed is extrapolated.
func (sp *SpeedProfile) PositionAt(t float64) float64 {
	if t <= 0 {
		return sp.position[0]
	}
	last := len(sp.times) - 1
	if t >= sp.times[last] {
		return sp.position[last] + sp.lastV*(t-sp.times[last])
	}
	i := sort.SearchFloat64s(sp.times, t)
	if i == 0 {
		return sp.position[0]
	}
	t0, t1 := sp.times[i-1], sp.times[i]
	p0, p1 := sp.position[i-1], sp.position[i]
	frac := (t - t0) / (t1 - t0)
	return p0 + (p1-p0)*frac
}

// Describe implements Trajectory.
func (sp *SpeedProfile) Describe() string { return "speed-profile" }

// KmhToMs converts km/h to m/s (the paper reports car speed as
// 18 km/h = 5 m/s).
func KmhToMs(kmh float64) float64 { return kmh / 3.6 }

// SpeedDoubler builds the exact Fig. 8 trajectory for a tag of total
// length tagLen starting at start: the object moves at baseSpeed until
// its midpoint (preamble half) has passed the receiver position rx,
// then at 2*baseSpeed.
func SpeedDoubler(start, tagLen, rx, baseSpeed float64) (PiecewiseSpeed, error) {
	if baseSpeed <= 0 {
		return PiecewiseSpeed{}, errors.New("scene: base speed must be positive")
	}
	// Time at which the tag midpoint reaches the receiver: the leading
	// edge must travel (rx - start) + tagLen/2... the midpoint is at
	// leading edge - tagLen/2, so midpoint reaches rx when leading
	// edge = rx + tagLen/2.
	dist := rx + tagLen/2 - start
	if dist <= 0 {
		return PiecewiseSpeed{}, errors.New("scene: receiver behind the tag midpoint at t=0")
	}
	tSwitch := dist / baseSpeed
	return NewPiecewiseSpeed(start, []SpeedSegment{
		{Until: tSwitch, Speed: baseSpeed},
		{Until: math.Inf(1), Speed: 2 * baseSpeed},
	})
}
