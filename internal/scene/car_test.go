package scene

import (
	"math"
	"testing"

	"passivelight/internal/coding"
	"passivelight/internal/tag"
)

func TestCarModelGeometry(t *testing.T) {
	volvo := VolvoV40()
	if volvo.Length() <= 0 {
		t.Fatal("zero-length car")
	}
	var sum float64
	for _, s := range volvo.Segments {
		sum += s.Length
	}
	if math.Abs(volvo.Length()-sum) > 1e-12 {
		t.Fatalf("length %v != segment sum %v", volvo.Length(), sum)
	}
	if volvo.Segments[volvo.RoofIndex].Name != "roof" {
		t.Fatalf("roof index points at %q", volvo.Segments[volvo.RoofIndex].Name)
	}
	wantOffset := volvo.Segments[0].Length + volvo.Segments[1].Length
	if math.Abs(volvo.RoofOffset()-wantOffset) > 1e-12 {
		t.Fatalf("roof offset %v, want %v", volvo.RoofOffset(), wantOffset)
	}
}

func TestBMWHasTrunk(t *testing.T) {
	bmw := BMW3()
	last := bmw.Segments[len(bmw.Segments)-1]
	if last.Name != "trunk" {
		t.Fatalf("sedan tail is %q", last.Name)
	}
	volvo := VolvoV40()
	vLast := volvo.Segments[len(volvo.Segments)-1]
	if vLast.Name == "trunk" {
		t.Fatal("hatchback should not have a trunk segment")
	}
}

func TestBareCarProfileSegments(t *testing.T) {
	volvo := VolvoV40()
	obj, err := NewCarObject(volvo, ConstantSpeed{Start: 0, Speed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Probe the center of each segment: metal bright, glass dark.
	offset := 0.0
	for _, seg := range volvo.Segments {
		u := offset + seg.Length/2
		rho, ok := obj.Profile.ReflectanceAtLocal(u)
		if !ok {
			t.Fatalf("segment %s: no reflectance", seg.Name)
		}
		if math.Abs(rho-seg.Material.Reflectance) > 1e-12 {
			t.Fatalf("segment %s: rho %v want %v", seg.Name, rho, seg.Material.Reflectance)
		}
		offset += seg.Length
	}
	if _, ok := obj.Profile.ReflectanceAtLocal(-0.1); ok {
		t.Fatal("before car front")
	}
	if _, ok := obj.Profile.ReflectanceAtLocal(volvo.Length()); ok {
		t.Fatal("past car tail (exclusive)")
	}
}

func TestTaggedCarReplacesRoofReflectance(t *testing.T) {
	volvo := VolvoV40()
	tg, err := tag.New(coding.MustPacket("00"), tag.Config{SymbolWidth: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	obj, err := NewTaggedCarObject(volvo, tg, ConstantSpeed{Start: 0, Speed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Tag is centered on the roof: find its start.
	roof := volvo.Segments[volvo.RoofIndex]
	tagStart := volvo.RoofOffset() + (roof.Length-tg.Length())/2
	// First stripe (preamble H: aluminum 0.85, brighter than roof 0.65).
	rho, ok := obj.Profile.ReflectanceAtLocal(tagStart + 0.05)
	if !ok || math.Abs(rho-0.85) > 1e-9 {
		t.Fatalf("first stripe rho %v", rho)
	}
	// Second stripe (L: napkin 0.06).
	rho, ok = obj.Profile.ReflectanceAtLocal(tagStart + 0.15)
	if !ok || math.Abs(rho-0.06) > 1e-9 {
		t.Fatalf("second stripe rho %v", rho)
	}
	// Roof before the tag keeps the car paint.
	rho, ok = obj.Profile.ReflectanceAtLocal(volvo.RoofOffset() + 0.01)
	if !ok || math.Abs(rho-0.65) > 1e-9 {
		t.Fatalf("roof-before-tag rho %v", rho)
	}
	if obj.Name != "volvo-v40+tag" {
		t.Fatalf("object name %q", obj.Name)
	}
}

func TestTaggedCarRejectsOversizedTag(t *testing.T) {
	volvo := VolvoV40()
	big, err := tag.New(coding.MustPacket("000000"), tag.Config{SymbolWidth: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// 16 stripes * 0.1 m = 1.6 m > 1.3 m roof.
	if _, err := NewTaggedCarObject(volvo, big, ConstantSpeed{}); err == nil {
		t.Fatal("oversized tag should fail")
	}
	if _, err := NewTaggedCarObject(volvo, nil, ConstantSpeed{}); err == nil {
		t.Fatal("nil tag should fail")
	}
}

func TestCarProfileValidation(t *testing.T) {
	bad := CarModel{Name: "bad"}
	if _, err := NewCarObject(bad, ConstantSpeed{}); err == nil {
		t.Fatal("empty car should fail")
	}
	badRoof := VolvoV40()
	badRoof.RoofIndex = 99
	if _, err := NewCarObject(badRoof, ConstantSpeed{}); err == nil {
		t.Fatal("bad roof index should fail")
	}
}
