// Package noise injects the stochastic impairments of the passive
// optical channel: shot noise (variance proportional to the received
// level), thermal/electronic noise (constant variance), slow baseline
// drift (clouds, people walking by) and impulsive glints. All noise
// is driven by a deterministic PRNG so experiments are reproducible.
package noise

import (
	"math"
	"math/rand"
)

// Model configures the noise injected into a received-light series
// (units are the same as the series, i.e. lux at the receiver input).
type Model struct {
	// ShotCoeff scales signal-dependent noise: sigma_shot =
	// ShotCoeff * sqrt(level). Zero disables it.
	ShotCoeff float64
	// ThermalSigma is the standard deviation of additive Gaussian
	// electronic noise. Zero disables it.
	ThermalSigma float64
	// DriftSigma is the per-sample standard deviation of a random
	// walk added to the baseline (slow ambient changes). Zero
	// disables it.
	DriftSigma float64
	// GlintProb is the per-sample probability of an impulsive
	// specular glint of amplitude GlintAmp (positive spike).
	GlintProb float64
	GlintAmp  float64
	// Seed selects the deterministic PRNG stream.
	Seed int64
}

// Apply returns a noisy copy of x. Negative results are clamped to 0
// (illuminance cannot be negative).
func (m Model) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	m.applyTo(out, x)
	return out
}

// ApplyInPlace is Apply writing over x itself — for callers that own
// the input buffer (the link simulation discards the clean rendering
// anyway, and capacity sweeps run thousands of simulations). The
// sample values produced are identical to Apply's.
func (m Model) ApplyInPlace(x []float64) []float64 {
	m.applyTo(x, x)
	return x
}

func (m Model) applyTo(out, x []float64) {
	rng := rand.New(rand.NewSource(m.Seed))
	drift := 0.0
	for i, v := range x {
		n := v
		if m.ShotCoeff > 0 && v > 0 {
			n += rng.NormFloat64() * m.ShotCoeff * math.Sqrt(v)
		}
		if m.ThermalSigma > 0 {
			n += rng.NormFloat64() * m.ThermalSigma
		}
		if m.DriftSigma > 0 {
			drift += rng.NormFloat64() * m.DriftSigma
			n += drift
		}
		if m.GlintProb > 0 && rng.Float64() < m.GlintProb {
			n += m.GlintAmp
		}
		if n < 0 {
			n = 0
		}
		out[i] = n
	}
}

// Quiet is a noise model with everything disabled.
var Quiet = Model{}

// Indoor is a mild noise model matching the dark-room bench: small
// thermal noise, tiny shot component.
func Indoor(seed int64) Model {
	return Model{ShotCoeff: 0.02, ThermalSigma: 0.15, Seed: seed}
}

// Outdoor is the harsher daylight model: stronger shot noise (bright
// background), wind-borne baseline drift and occasional glints.
func Outdoor(seed int64) Model {
	return Model{ShotCoeff: 0.05, ThermalSigma: 0.4, DriftSigma: 0.02, GlintProb: 0.0005, GlintAmp: 3, Seed: seed}
}

// Fog models light fog between the scene and the receiver: a share
// (1 - Transmission) of the reflected signal is scattered out of the
// path and replaced by a uniform veil at ScatterLevel, washing out
// contrast (one of the Sec. 3 channel distortions).
type Fog struct {
	// Transmission in (0, 1]: 1 means clear air.
	Transmission float64
	// ScatterLevel is the veil level (same units as the series); a
	// natural choice is the ambient stray level.
	ScatterLevel float64
}

// Apply returns the fogged series.
func (f Fog) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	f.applyTo(out, x)
	return out
}

// ApplyInPlace is Apply writing over x itself, for callers that own
// the buffer. Sample values are identical to Apply's.
func (f Fog) ApplyInPlace(x []float64) []float64 {
	f.applyTo(x, x)
	return x
}

func (f Fog) applyTo(out, x []float64) {
	t := f.Transmission
	if t <= 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	for i, v := range x {
		out[i] = t*v + (1-t)*f.ScatterLevel
	}
}

// SNR estimates the ratio between the peak-to-peak excursion of the
// clean signal and the RMS of (noisy - clean); used by capacity
// sweeps to report margins. Returns +Inf when the residual is zero.
func SNR(clean, noisy []float64) float64 {
	n := len(clean)
	if len(noisy) < n {
		n = len(noisy)
	}
	if n == 0 {
		return 0
	}
	lo, hi := clean[0], clean[0]
	var resid float64
	for i := 0; i < n; i++ {
		if clean[i] < lo {
			lo = clean[i]
		}
		if clean[i] > hi {
			hi = clean[i]
		}
		d := noisy[i] - clean[i]
		resid += d * d
	}
	rms := math.Sqrt(resid / float64(n))
	if rms == 0 {
		return math.Inf(1)
	}
	return (hi - lo) / rms
}
