package noise

import (
	"math"
	"testing"
)

func constant(v float64, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = v
	}
	return x
}

func TestQuietIsPassthrough(t *testing.T) {
	in := []float64{1, 2, 3, 0, 5}
	out := Quiet.Apply(in)
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("sample %d changed: %v", i, out[i])
		}
	}
	// Input must not be aliased.
	out[0] = 99
	if in[0] == 99 {
		t.Fatal("Apply aliased its input")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	m := Model{ThermalSigma: 1, Seed: 42}
	a := m.Apply(constant(10, 100))
	b := m.Apply(constant(10, 100))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the same noise")
		}
	}
	m2 := Model{ThermalSigma: 1, Seed: 43}
	c := m2.Apply(constant(10, 100))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical noise")
	}
}

func TestThermalNoiseStatistics(t *testing.T) {
	m := Model{ThermalSigma: 2, Seed: 1}
	out := m.Apply(constant(100, 20000))
	var sum, sq float64
	for _, v := range out {
		sum += v
	}
	mean := sum / float64(len(out))
	for _, v := range out {
		d := v - mean
		sq += d * d
	}
	std := math.Sqrt(sq / float64(len(out)))
	if math.Abs(mean-100) > 0.1 {
		t.Fatalf("mean %v", mean)
	}
	if math.Abs(std-2) > 0.1 {
		t.Fatalf("std %v, want ~2", std)
	}
}

func TestShotNoiseScalesWithLevel(t *testing.T) {
	m := Model{ShotCoeff: 0.5, Seed: 2}
	dim := m.Apply(constant(10, 20000))
	bright := Model{ShotCoeff: 0.5, Seed: 2}.Apply(constant(1000, 20000))
	stdOf := func(x []float64, mean float64) float64 {
		var sq float64
		for _, v := range x {
			d := v - mean
			sq += d * d
		}
		return math.Sqrt(sq / float64(len(x)))
	}
	sDim := stdOf(dim, 10)
	sBright := stdOf(bright, 1000)
	// sigma ~ sqrt(level): ratio should be ~10.
	if r := sBright / sDim; r < 7 || r > 13 {
		t.Fatalf("shot scaling ratio %v, want ~10", r)
	}
}

func TestClampsAtZero(t *testing.T) {
	m := Model{ThermalSigma: 100, Seed: 3}
	out := m.Apply(constant(0.1, 1000))
	for _, v := range out {
		if v < 0 {
			t.Fatalf("negative illuminance %v", v)
		}
	}
}

func TestGlints(t *testing.T) {
	m := Model{GlintProb: 0.1, GlintAmp: 50, Seed: 4}
	out := m.Apply(constant(10, 5000))
	spikes := 0
	for _, v := range out {
		if v > 40 {
			spikes++
		}
	}
	if spikes < 300 || spikes > 700 {
		t.Fatalf("glint count %d, want ~500", spikes)
	}
}

func TestDriftAccumulates(t *testing.T) {
	m := Model{DriftSigma: 0.5, Seed: 5}
	out := m.Apply(constant(100, 10000))
	// A random walk's late deviation should typically exceed its
	// early deviation.
	early := math.Abs(out[10] - 100)
	late := math.Abs(out[9999] - 100)
	if late <= early {
		t.Logf("early %v late %v (random walk can recross; checking variance growth instead)", early, late)
	}
	var lateVar float64
	for _, v := range out[9000:] {
		d := v - 100
		lateVar += d * d
	}
	lateVar /= 1000
	var earlyVar float64
	for _, v := range out[:1000] {
		d := v - 100
		earlyVar += d * d
	}
	earlyVar /= 1000
	if lateVar <= earlyVar {
		t.Fatalf("drift variance did not grow: early %v late %v", earlyVar, lateVar)
	}
}

func TestSNR(t *testing.T) {
	clean := []float64{0, 10, 0, 10}
	if snr := SNR(clean, clean); !math.IsInf(snr, 1) {
		t.Fatalf("identical signals SNR %v, want +Inf", snr)
	}
	noisy := []float64{1, 9, 1, 9}
	snr := SNR(clean, noisy)
	if snr != 10 {
		t.Fatalf("SNR %v, want 10 (pp 10 / rms 1)", snr)
	}
	if SNR(nil, nil) != 0 {
		t.Fatal("empty SNR should be 0")
	}
}

func TestPresetModels(t *testing.T) {
	in := Indoor(1)
	if in.ThermalSigma <= 0 || in.ShotCoeff <= 0 {
		t.Fatal("indoor preset incomplete")
	}
	out := Outdoor(1)
	if out.DriftSigma <= 0 || out.GlintProb <= 0 {
		t.Fatal("outdoor preset incomplete")
	}
	if out.ThermalSigma <= in.ThermalSigma {
		t.Fatal("outdoor noise should exceed indoor")
	}
}
