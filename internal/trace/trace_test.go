package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestChunks(t *testing.T) {
	tr := New(1000, 0, []float64{0, 1, 2, 3, 4, 5, 6})
	var got [][]float64
	for c := range tr.Chunks(3) {
		got = append(got, c)
	}
	if len(got) != 3 || len(got[0]) != 3 || len(got[1]) != 3 || len(got[2]) != 1 {
		t.Fatalf("chunk shapes %v", got)
	}
	if got[2][0] != 6 {
		t.Fatalf("last chunk %v", got[2])
	}
	// Non-positive size yields the whole trace at once.
	n := 0
	for c := range tr.Chunks(0) {
		n++
		if len(c) != tr.Len() {
			t.Fatalf("size 0 chunk has %d samples", len(c))
		}
	}
	if n != 1 {
		t.Fatalf("size 0 yielded %d chunks", n)
	}
}

func TestNewCopiesSamples(t *testing.T) {
	src := []float64{1, 2, 3}
	tr := New(1000, 0, src)
	src[0] = 99
	if tr.Samples[0] != 1 {
		t.Fatal("New aliased the input slice")
	}
	if tr.Len() != 3 {
		t.Fatalf("len %d", tr.Len())
	}
	if tr.Duration() != 0.003 {
		t.Fatalf("duration %v", tr.Duration())
	}
}

func TestTimeIndexConversions(t *testing.T) {
	tr := New(100, 2.0, make([]float64, 500))
	if got := tr.TimeAt(100); math.Abs(got-3.0) > 1e-12 {
		t.Fatalf("TimeAt %v", got)
	}
	if got := tr.IndexAt(3.0); got != 100 {
		t.Fatalf("IndexAt %v", got)
	}
	if got := tr.IndexAt(-10); got != 0 {
		t.Fatalf("clamped low index %v", got)
	}
	if got := tr.IndexAt(1e9); got != 499 {
		t.Fatalf("clamped high index %v", got)
	}
}

func TestSlice(t *testing.T) {
	tr := New(10, 0, []float64{0, 1, 2, 3, 4, 5})
	tr.WithMeta("k", "v")
	sub, err := tr.Slice(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 3 || sub.Samples[0] != 2 {
		t.Fatalf("slice %+v", sub.Samples)
	}
	if math.Abs(sub.T0-0.2) > 1e-12 {
		t.Fatalf("slice T0 %v", sub.T0)
	}
	if sub.Meta["k"] != "v" {
		t.Fatal("metadata not propagated")
	}
	if _, err := tr.Slice(4, 2); err == nil {
		t.Fatal("inverted slice should fail")
	}
	if _, err := tr.Slice(0, 99); err == nil {
		t.Fatal("out-of-range slice should fail")
	}
}

func TestNormalized(t *testing.T) {
	tr := New(10, 0, []float64{10, 20, 30})
	n := tr.Normalized()
	if n.Samples[0] != 0 || n.Samples[2] != 1 {
		t.Fatalf("normalized %+v", n.Samples)
	}
	if n.Meta["normalized"] != "minmax" {
		t.Fatal("normalization not recorded in metadata")
	}
	// Original untouched.
	if tr.Samples[0] != 10 {
		t.Fatal("Normalized mutated the original")
	}
}

func TestStats(t *testing.T) {
	tr := New(10, 0, []float64{1, 3, 5})
	st := tr.Stats()
	if st.Min != 1 || st.Max != 5 || st.Mean != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := New(2000, 1.5, []float64{10.25, 11, 9.75})
	tr.WithMeta("receiver", "rx-led")
	tr.WithMeta("experiment", "fig15")
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fs != 2000 || got.T0 != 1.5 {
		t.Fatalf("fs=%v t0=%v", got.Fs, got.T0)
	}
	if got.Len() != 3 {
		t.Fatalf("len %d", got.Len())
	}
	for i := range tr.Samples {
		if math.Abs(got.Samples[i]-tr.Samples[i]) > 1e-6 {
			t.Fatalf("sample %d: %v vs %v", i, got.Samples[i], tr.Samples[i])
		}
	}
	if got.Meta["receiver"] != "rx-led" || got.Meta["experiment"] != "fig15" {
		t.Fatalf("metadata %+v", got.Meta)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"missing fs": "time,rss\n0,1\n",
		"no samples": "# fs=100\ntime,rss\n",
		"bad rss":    "# fs=100\ntime,rss\n0,abc\n",
		"bad row":    "# fs=100\ntime,rss\n0,1,2\n",
		"bad fs":     "# fs=abc\ntime,rss\n0,1\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestWriteCSVRejectsReservedMetadata(t *testing.T) {
	tr := New(100, 0, []float64{1})
	tr.WithMeta("bad=key", "v")
	if err := tr.WriteCSV(&bytes.Buffer{}); err == nil {
		t.Fatal("metadata with '=' in key should fail")
	}
	tr2 := New(100, 0, []float64{1})
	tr2.WithMeta("k", "line1\nline2")
	if err := tr2.WriteCSV(&bytes.Buffer{}); err == nil {
		t.Fatal("metadata with newline should fail")
	}
}

func TestReadCSVIgnoresUnknownCommentsAndBlanks(t *testing.T) {
	in := "# fs=100\n# t0=0\n\n# weird comment without equals\ntime,rss\n0,1\n0.01,2\n"
	tr, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("len %d", tr.Len())
	}
}
