// Package trace holds received-signal-strength time series and their
// metadata, with CSV round-tripping so traces can move between the
// simulator, the decoder CLI and offline analysis.
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"iter"
	"sort"
	"strconv"
	"strings"

	"passivelight/internal/dsp"
)

// Trace is a uniformly sampled RSS series.
type Trace struct {
	// Fs is the sample rate in Hz.
	Fs float64
	// T0 is the absolute time of the first sample (s).
	T0 float64
	// Samples are RSS values (ADC counts after the front end, or lux
	// at the channel output — Meta records which).
	Samples []float64
	// Meta carries free-form key/value annotations (receiver type,
	// noise floor, experiment id...).
	Meta map[string]string
}

// New builds a trace, copying samples.
func New(fs, t0 float64, samples []float64) *Trace {
	s := make([]float64, len(samples))
	copy(s, samples)
	return &Trace{Fs: fs, T0: t0, Samples: s, Meta: map[string]string{}}
}

// WithMeta sets a metadata key and returns the trace for chaining.
func (tr *Trace) WithMeta(key, value string) *Trace {
	if tr.Meta == nil {
		tr.Meta = map[string]string{}
	}
	tr.Meta[key] = value
	return tr
}

// Len returns the number of samples.
func (tr *Trace) Len() int { return len(tr.Samples) }

// Duration returns the trace length in seconds.
func (tr *Trace) Duration() float64 {
	if tr.Fs <= 0 {
		return 0
	}
	return float64(len(tr.Samples)) / tr.Fs
}

// TimeAt returns the absolute time of sample i.
func (tr *Trace) TimeAt(i int) float64 { return tr.T0 + float64(i)/tr.Fs }

// IndexAt returns the sample index nearest to absolute time t, clamped
// to the valid range.
func (tr *Trace) IndexAt(t float64) int {
	i := int((t - tr.T0) * tr.Fs)
	if i < 0 {
		return 0
	}
	if i >= len(tr.Samples) {
		return len(tr.Samples) - 1
	}
	return i
}

// Slice returns a sub-trace covering sample indices [lo, hi).
func (tr *Trace) Slice(lo, hi int) (*Trace, error) {
	if lo < 0 || hi > len(tr.Samples) || lo >= hi {
		return nil, fmt.Errorf("trace: invalid slice [%d, %d) of %d samples", lo, hi, len(tr.Samples))
	}
	out := New(tr.Fs, tr.TimeAt(lo), tr.Samples[lo:hi])
	for k, v := range tr.Meta {
		out.Meta[k] = v
	}
	return out, nil
}

// Normalized returns a copy with samples min-max scaled to [0, 1],
// matching the "Normalized RSS" axes of the paper's figures.
func (tr *Trace) Normalized() *Trace {
	out := New(tr.Fs, tr.T0, dsp.NormalizeMinMax(tr.Samples))
	for k, v := range tr.Meta {
		out.Meta[k] = v
	}
	out.Meta["normalized"] = "minmax"
	return out
}

// Chunks yields consecutive sample slices of at most size samples,
// in stream order — the natural way to replay a recorded trace into
// a streaming decoder or over the receiver network. The slices alias
// the trace's backing array; do not mutate them.
func (tr *Trace) Chunks(size int) iter.Seq[[]float64] {
	if size <= 0 {
		size = len(tr.Samples)
	}
	return func(yield func([]float64) bool) {
		for lo := 0; lo < len(tr.Samples); lo += size {
			hi := lo + size
			if hi > len(tr.Samples) {
				hi = len(tr.Samples)
			}
			if !yield(tr.Samples[lo:hi]) {
				return
			}
		}
	}
}

// Stats summarizes the trace.
type Stats struct {
	Min, Max, Mean, Std float64
}

// Stats computes summary statistics.
func (tr *Trace) Stats() Stats {
	lo, hi := dsp.MinMax(tr.Samples)
	return Stats{Min: lo, Max: hi, Mean: dsp.Mean(tr.Samples), Std: dsp.Std(tr.Samples)}
}

// WriteCSV emits the trace as CSV: comment header lines carrying
// metadata ("# key=value"), then "time,rss" rows.
func (tr *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# fs=%g\n# t0=%g\n", tr.Fs, tr.T0); err != nil {
		return err
	}
	// Sorted keys: Meta is a map, and a bit-identical trace should
	// serialize to a byte-identical CSV.
	keys := make([]string, 0, len(tr.Meta))
	for k := range tr.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := tr.Meta[k]
		if strings.ContainsAny(k, "=\n") || strings.Contains(v, "\n") {
			return fmt.Errorf("trace: metadata %q contains reserved characters", k)
		}
		if _, err := fmt.Fprintf(bw, "# %s=%s\n", k, v); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw, "time,rss"); err != nil {
		return err
	}
	for i, s := range tr.Samples {
		if _, err := fmt.Fprintf(bw, "%.6f,%.6f\n", tr.TimeAt(i), s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV. Unknown comment keys
// land in Meta.
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	tr := &Trace{Meta: map[string]string{}}
	sawHeader := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kv := strings.SplitN(strings.TrimSpace(strings.TrimPrefix(line, "#")), "=", 2)
			if len(kv) != 2 {
				continue
			}
			switch kv[0] {
			case "fs":
				v, err := strconv.ParseFloat(kv[1], 64)
				if err != nil {
					return nil, fmt.Errorf("trace: bad fs %q: %w", kv[1], err)
				}
				tr.Fs = v
			case "t0":
				v, err := strconv.ParseFloat(kv[1], 64)
				if err != nil {
					return nil, fmt.Errorf("trace: bad t0 %q: %w", kv[1], err)
				}
				tr.T0 = v
			default:
				tr.Meta[kv[0]] = kv[1]
			}
			continue
		}
		if !sawHeader && strings.HasPrefix(line, "time,") {
			sawHeader = true
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("trace: malformed row %q", line)
		}
		v, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad rss %q: %w", parts[1], err)
		}
		tr.Samples = append(tr.Samples, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if tr.Fs <= 0 {
		return nil, errors.New("trace: missing or invalid fs header")
	}
	if len(tr.Samples) == 0 {
		return nil, errors.New("trace: no samples")
	}
	return tr, nil
}
