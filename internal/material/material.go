// Package material models the reflective surfaces that carry passive
// packets. Each material is characterized by its reflection
// coefficient (fraction of incident light re-emitted) and how diffuse
// the reflection is. The paper encodes HIGH symbols with aluminum
// tape (high reflection coefficient, low diffusion) and LOW symbols
// with black paper napkins (low coefficient, high diffusion), on a
// ground plane covered with black paper "to resemble tarmac".
package material

import "fmt"

// Material describes one reflective surface type.
type Material struct {
	// Name is a human-readable identifier.
	Name string
	// Reflectance is the total reflection coefficient in [0, 1].
	Reflectance float64
	// SpecularFraction is the share of reflected light that leaves in
	// the mirror direction (0 = fully diffuse/Lambertian, 1 = mirror).
	// A downward-looking receiver under a roughly overhead source
	// collects both, but specular surfaces produce occasional strong
	// glints modeled by the channel.
	SpecularFraction float64
}

// Validate reports whether the material parameters are physical.
func (m Material) Validate() error {
	if m.Reflectance < 0 || m.Reflectance > 1 {
		return fmt.Errorf("material %q: reflectance %.3f outside [0,1]", m.Name, m.Reflectance)
	}
	if m.SpecularFraction < 0 || m.SpecularFraction > 1 {
		return fmt.Errorf("material %q: specular fraction %.3f outside [0,1]", m.Name, m.SpecularFraction)
	}
	return nil
}

// Standard materials used across the paper's experiments.
var (
	// AluminumTape encodes the HIGH symbol: strong, fairly specular
	// reflection.
	AluminumTape = Material{Name: "aluminum-tape", Reflectance: 0.85, SpecularFraction: 0.6}
	// BlackNapkin encodes the LOW symbol: weak, diffuse reflection.
	BlackNapkin = Material{Name: "black-napkin", Reflectance: 0.06, SpecularFraction: 0.02}
	// Tarmac is the ground plane (black paper in the indoor setup).
	Tarmac = Material{Name: "tarmac", Reflectance: 0.08, SpecularFraction: 0.05}
	// CarPaintMetal is a painted metal body panel (hood/roof/trunk):
	// bright and glossy; produces the peaks of Figs. 13-14.
	CarPaintMetal = Material{Name: "car-paint-metal", Reflectance: 0.65, SpecularFraction: 0.5}
	// WindshieldGlass is tilted glass: most light is reflected away
	// from a downward receiver, so the effective upward reflectance is
	// low; produces the valleys of Figs. 13-14.
	WindshieldGlass = Material{Name: "windshield-glass", Reflectance: 0.12, SpecularFraction: 0.85}
	// WhitePaper is a generic bright diffuse reference surface.
	WhitePaper = Material{Name: "white-paper", Reflectance: 0.75, SpecularFraction: 0.05}
	// MirrorFilm is an idealized near-perfect reflector.
	MirrorFilm = Material{Name: "mirror-film", Reflectance: 0.98, SpecularFraction: 0.95}
	// DarkCloth is a rugged dark fabric: minimal reflection, fully
	// scattered ("a dark and rugged cloth" in Sec. 2).
	DarkCloth = Material{Name: "dark-cloth", Reflectance: 0.03, SpecularFraction: 0.0}
)

// WithDirt returns the material with a dirt layer: coverage in [0,1]
// scales reflectance toward a dusty gray (rho 0.25) and removes
// specularity. Dirt on top of reflective surfaces is one of the
// channel distortions called out in Sec. 3.
func (m Material) WithDirt(coverage float64) Material {
	if coverage < 0 {
		coverage = 0
	}
	if coverage > 1 {
		coverage = 1
	}
	const dustRho = 0.25
	out := m
	out.Name = fmt.Sprintf("%s+dirt%.0f%%", m.Name, coverage*100)
	out.Reflectance = m.Reflectance*(1-coverage) + dustRho*coverage
	out.SpecularFraction = m.SpecularFraction * (1 - coverage)
	return out
}

// Contrast returns the reflectance difference between two materials;
// the received HIGH/LOW amplitude gap is proportional to it.
func Contrast(high, low Material) float64 {
	return high.Reflectance - low.Reflectance
}
