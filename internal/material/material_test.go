package material

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStandardMaterialsValid(t *testing.T) {
	for _, m := range []Material{
		AluminumTape, BlackNapkin, Tarmac, CarPaintMetal,
		WindshieldGlass, WhitePaper, MirrorFilm, DarkCloth,
	} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestHighLowContrast(t *testing.T) {
	// The paper's symbol materials must have strong contrast, and the
	// LOW material must blend with the tarmac ground.
	if c := Contrast(AluminumTape, BlackNapkin); c < 0.5 {
		t.Fatalf("aluminum/napkin contrast %.2f too low", c)
	}
	if c := Contrast(BlackNapkin, Tarmac); c > 0.05 || c < -0.05 {
		t.Fatalf("napkin should be close to tarmac: %.2f", c)
	}
}

func TestValidateRejectsBadValues(t *testing.T) {
	bad := Material{Name: "bad", Reflectance: 1.5}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for reflectance > 1")
	}
	bad = Material{Name: "bad", Reflectance: 0.5, SpecularFraction: -0.1}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for negative specular fraction")
	}
}

func TestWithDirtMovesTowardDust(t *testing.T) {
	dirty := AluminumTape.WithDirt(0.5)
	if dirty.Reflectance >= AluminumTape.Reflectance {
		t.Fatalf("dirt should darken aluminum: %.2f", dirty.Reflectance)
	}
	dirtyNapkin := BlackNapkin.WithDirt(0.5)
	if dirtyNapkin.Reflectance <= BlackNapkin.Reflectance {
		t.Fatalf("dirt should brighten a black napkin: %.2f", dirtyNapkin.Reflectance)
	}
	// Full dirt erases specularity.
	caked := MirrorFilm.WithDirt(1)
	if caked.SpecularFraction != 0 {
		t.Fatalf("fully dirty mirror still specular: %.2f", caked.SpecularFraction)
	}
	// Coverage clamps.
	if m := AluminumTape.WithDirt(2); m.Validate() != nil {
		t.Fatal("over-coverage produced invalid material")
	}
	if m := AluminumTape.WithDirt(-1); m.Reflectance != AluminumTape.Reflectance {
		t.Fatal("negative coverage should be a no-op")
	}
}

func TestWithDirtPropertyStaysValid(t *testing.T) {
	f := func(refl, spec, cov float64) bool {
		// Map arbitrary floats into [0,1].
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0.5
			}
			return math.Abs(math.Mod(v, 1))
		}
		m := Material{Name: "m", Reflectance: clamp(refl), SpecularFraction: clamp(spec)}
		return m.WithDirt(clamp(cov)).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDirtReducesContrast(t *testing.T) {
	clean := Contrast(AluminumTape, BlackNapkin)
	dirty := Contrast(AluminumTape.WithDirt(0.6), BlackNapkin.WithDirt(0.6))
	if dirty >= clean {
		t.Fatalf("dirt should reduce contrast: clean %.2f dirty %.2f", clean, dirty)
	}
}
