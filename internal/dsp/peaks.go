package dsp

import (
	"math"
	"sync"
)

// Peak describes a local extremum found by FindPeaks/FindValleys.
type Peak struct {
	Index      int     // sample index of the extremum
	Value      float64 // signal value at the extremum
	Prominence float64 // height above the higher of the two flanking minima
}

// PeakOptions tunes peak detection.
type PeakOptions struct {
	// MinProminence discards peaks whose prominence is below this
	// value. Zero keeps everything.
	MinProminence float64
	// MinDistance suppresses peaks within this many samples of an
	// already-accepted higher peak.
	MinDistance int
	// MinValue discards peaks whose value is below this threshold.
	MinValue float64
}

// FindPeaks locates local maxima of x, handling flat tops by placing
// the peak at the center of the plateau. Results are ordered by index.
func FindPeaks(x []float64, opt PeakOptions) []Peak {
	n := len(x)
	if n < 3 {
		return nil
	}
	var raw []Peak
	i := 1
	for i < n-1 {
		if x[i] > x[i-1] {
			// Walk across a potential plateau.
			j := i
			for j < n-1 && x[j+1] == x[j] {
				j++
			}
			if j < n-1 && x[j+1] < x[j] {
				mid := (i + j) / 2
				raw = append(raw, Peak{Index: mid, Value: x[mid]})
				i = j + 1
				continue
			}
			i = j + 1
			continue
		}
		i++
	}
	// Per-peak walks cost the sum of the walk lengths: cheap on noisy
	// signals (the next higher sample is a few steps away) but
	// quadratic on slowly-modulated ones where many peaks are
	// near-global and walk far. The batch sweep costs two bounded
	// passes whatever the structure. Since both produce identical
	// values (TestProminencesMatchWalk), walk with a work budget of
	// one batch sweep and fall back to the sweep when the walks blow
	// it — near-optimal on both signal classes, O(len(x)) worst case.
	budget := 2 * len(x)
	for k := range raw {
		p, work := prominenceWalk(x, raw[k].Index)
		if budget -= work; budget < 0 {
			prominences(x, raw)
			break
		}
		raw[k].Prominence = p
	}
	return filterPeaks(raw, opt)
}

// promEntry is one monotonic-stack element of the prominence sweep:
// a sample value and the minimum over the gap back to the previous
// (strictly higher) stack element.
type promEntry struct {
	val, gapMin float64
}

// promScratch pools the sweep's stack and per-peak buffer; the stack
// can grow to len(x) on monotone runs, which made per-call allocation
// the dominant cost.
type promScratch struct {
	stack []promEntry
	left  []float64
}

var promPool = sync.Pool{New: func() any { return new(promScratch) }}

// prominences fills the Prominence of every peak in one forward and
// one backward sweep, O(len(x)) total instead of one O(len(x)) walk
// per peak. A monotonic stack tracks, for each position, the previous
// strictly-higher sample and the minimum over the gap since it —
// exactly the saddle the per-peak walk in prominence finds — so the
// results are identical (locked down by TestProminencesMatchWalk).
// peaks must be ordered by ascending Index.
func prominences(x []float64, peaks []Peak) {
	if len(peaks) == 0 {
		return
	}
	sc := promPool.Get().(*promScratch)
	defer promPool.Put(sc)
	if cap(sc.stack) < len(x) {
		sc.stack = make([]promEntry, len(x))
	}
	if cap(sc.left) < len(peaks) {
		sc.left = make([]float64, len(peaks))
	}
	stack, left := sc.stack[:0], sc.left[:len(peaks)]
	inf := math.Inf(1)
	// Forward sweep: saddle minima toward the previous higher sample.
	pi := 0
	for i, v := range x {
		m := inf
		for len(stack) > 0 && stack[len(stack)-1].val <= v {
			e := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if e.gapMin < m {
				m = e.gapMin
			}
			if e.val < m {
				m = e.val
			}
		}
		if pi < len(peaks) && peaks[pi].Index == i {
			lm := v
			if m < lm {
				lm = m
			}
			left[pi] = lm
			pi++
		}
		stack = append(stack, promEntry{val: v, gapMin: m})
	}
	// Backward sweep: saddle minima toward the next higher sample.
	stack = stack[:0]
	pi = len(peaks) - 1
	for i := len(x) - 1; i >= 0; i-- {
		v := x[i]
		m := inf
		for len(stack) > 0 && stack[len(stack)-1].val <= v {
			e := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if e.gapMin < m {
				m = e.gapMin
			}
			if e.val < m {
				m = e.val
			}
		}
		if pi >= 0 && peaks[pi].Index == i {
			rm := v
			if m < rm {
				rm = m
			}
			saddle := left[pi]
			if rm > saddle {
				saddle = rm
			}
			peaks[pi].Prominence = v - saddle
			pi--
		}
		stack = append(stack, promEntry{val: v, gapMin: m})
	}
	sc.stack = stack[:0]
}

// PreambleExtrema finds the paper's A/B/C anchors: the first local
// maximum of x with prominence >= minProm, the first such minimum
// after it, and the next such maximum after that. It selects exactly
// what
//
//	peaks := FindPeaks(x, PeakOptions{MinProminence: minProm})
//	valleys := FindValleys(x, PeakOptions{MinProminence: minProm})
//	a, b, c := peaks[0], first valley after a, first peak after b
//
// would (same indices and values, locked down by
// TestPreambleExtremaMatchesLists) but lazily: extrema are enumerated
// in index order, each is tested with an early-stopping qualification
// walk, and the scan stops at the anchor — the common decode path
// never builds or sweeps the full extrema lists. The Prominence field
// of the returned anchors is not filled in (the qualification stops
// as soon as the threshold is guaranteed).
func PreambleExtrema(x []float64, minProm float64) (a, b, c Peak, ok bool) {
	if len(x) < 3 {
		return Peak{}, Peak{}, Peak{}, false
	}
	lazy := func(after int, valley bool) (Peak, bool) {
		n := len(x)
		i := 1
		for i < n-1 {
			rising := x[i] > x[i-1]
			if valley {
				rising = x[i] < x[i-1]
			}
			if rising {
				j := i
				for j < n-1 && x[j+1] == x[j] {
					j++
				}
				closes := j < n-1 && x[j+1] < x[j]
				if valley {
					closes = j < n-1 && x[j+1] > x[j]
				}
				if closes {
					mid := (i + j) / 2
					if mid > after && extremumQualifies(x, mid, minProm, valley) {
						return Peak{Index: mid, Value: x[mid]}, true
					}
				}
				i = j + 1
				continue
			}
			i++
		}
		return Peak{}, false
	}
	a, ok = lazy(-1, false)
	if ok {
		b, ok = lazy(a.Index, true)
	}
	if ok {
		c, ok = lazy(b.Index, false)
	}
	return a, b, c, ok
}

// extremumQualifies reports whether the peak (or valley) at idx has
// prominence >= minProm, stopping each saddle walk as soon as the
// answer is determined. The decision is identical to computing the
// full prominence first: prominence = min(h-leftMin, h-rightMin), so
// the threshold test splits into independent per-side tests, and
// float subtraction's monotonicity makes "stop once h-min >= minProm"
// exact — extending the walk can only grow that margin. Valleys run
// the same walk on the negated samples (negation and its subtractions
// are exact in floats, so this matches the mirrored comparisons bit
// for bit — the same identity FindValleys relies on).
func extremumQualifies(x []float64, idx int, minProm float64, valley bool) bool {
	if minProm <= 0 {
		return true
	}
	sign := 1.0
	if valley {
		sign = -1
	}
	h := sign * x[idx]
	side := func(from, to, step int) bool {
		m := h
		for i := from; i != to; i += step {
			v := sign * x[i]
			if v > h {
				break
			}
			if v < m {
				m = v
				if h-m >= minProm {
					return true
				}
			}
		}
		return h-m >= minProm
	}
	return side(idx-1, -1, -1) && side(idx+1, len(x), 1)
}

var negPool = sync.Pool{New: func() any { return new([]float64) }}

// FindValleys locates local minima of x by negating the signal (into
// a pooled buffer — valley scans run once per decode attempt on
// segment-sized arrays).
func FindValleys(x []float64, opt PeakOptions) []Peak {
	negP := negPool.Get().(*[]float64)
	defer negPool.Put(negP)
	if cap(*negP) < len(x) {
		*negP = make([]float64, len(x))
	}
	neg := (*negP)[:len(x)]
	for i, v := range x {
		neg[i] = -v
	}
	peaks := FindPeaks(neg, PeakOptions{MinProminence: opt.MinProminence, MinDistance: opt.MinDistance})
	out := peaks[:0]
	for _, p := range peaks {
		p.Value = -p.Value
		if opt.MinValue != 0 && p.Value > opt.MinValue {
			continue
		}
		out = append(out, p)
	}
	return out
}

// prominence computes the classical topographic prominence of the peak
// at index idx: its height above the higher of the two key saddles
// found walking left and right until a higher peak (or the signal
// edge) is reached.
func prominence(x []float64, idx int) float64 {
	p, _ := prominenceWalk(x, idx)
	return p
}

// prominenceWalk is prominence plus the number of samples the two
// walks visited, so FindPeaks can budget walk work against the batch
// sweep.
func prominenceWalk(x []float64, idx int) (float64, int) {
	h := x[idx]
	work := 0
	// Left saddle.
	leftMin := h
	for i := idx - 1; i >= 0; i-- {
		work++
		if x[i] > h {
			break
		}
		if x[i] < leftMin {
			leftMin = x[i]
		}
	}
	// Right saddle.
	rightMin := h
	for i := idx + 1; i < len(x); i++ {
		work++
		if x[i] > h {
			break
		}
		if x[i] < rightMin {
			rightMin = x[i]
		}
	}
	saddle := leftMin
	if rightMin > saddle {
		saddle = rightMin
	}
	return h - saddle, work
}

func filterPeaks(raw []Peak, opt PeakOptions) []Peak {
	var kept []Peak
	for _, p := range raw {
		if opt.MinProminence > 0 && p.Prominence < opt.MinProminence {
			continue
		}
		if opt.MinValue != 0 && p.Value < opt.MinValue {
			continue
		}
		kept = append(kept, p)
	}
	if opt.MinDistance <= 0 || len(kept) < 2 {
		return kept
	}
	// Greedy suppression: prefer higher peaks.
	order := make([]int, len(kept))
	for i := range order {
		order[i] = i
	}
	// Insertion sort by value descending (lists are short).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && kept[order[j]].Value > kept[order[j-1]].Value; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	suppressed := make([]bool, len(kept))
	for _, i := range order {
		if suppressed[i] {
			continue
		}
		for j := range kept {
			if j == i || suppressed[j] {
				continue
			}
			if abs(kept[j].Index-kept[i].Index) < opt.MinDistance {
				suppressed[j] = true
			}
		}
	}
	var out []Peak
	for i, p := range kept {
		if !suppressed[i] {
			out = append(out, p)
		}
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
