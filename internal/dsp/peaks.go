package dsp

// Peak describes a local extremum found by FindPeaks/FindValleys.
type Peak struct {
	Index      int     // sample index of the extremum
	Value      float64 // signal value at the extremum
	Prominence float64 // height above the higher of the two flanking minima
}

// PeakOptions tunes peak detection.
type PeakOptions struct {
	// MinProminence discards peaks whose prominence is below this
	// value. Zero keeps everything.
	MinProminence float64
	// MinDistance suppresses peaks within this many samples of an
	// already-accepted higher peak.
	MinDistance int
	// MinValue discards peaks whose value is below this threshold.
	MinValue float64
}

// FindPeaks locates local maxima of x, handling flat tops by placing
// the peak at the center of the plateau. Results are ordered by index.
func FindPeaks(x []float64, opt PeakOptions) []Peak {
	n := len(x)
	if n < 3 {
		return nil
	}
	var raw []Peak
	i := 1
	for i < n-1 {
		if x[i] > x[i-1] {
			// Walk across a potential plateau.
			j := i
			for j < n-1 && x[j+1] == x[j] {
				j++
			}
			if j < n-1 && x[j+1] < x[j] {
				mid := (i + j) / 2
				raw = append(raw, Peak{Index: mid, Value: x[mid]})
				i = j + 1
				continue
			}
			i = j + 1
			continue
		}
		i++
	}
	for k := range raw {
		raw[k].Prominence = prominence(x, raw[k].Index)
	}
	return filterPeaks(raw, opt)
}

// FindValleys locates local minima of x by negating the signal.
func FindValleys(x []float64, opt PeakOptions) []Peak {
	neg := make([]float64, len(x))
	for i, v := range x {
		neg[i] = -v
	}
	negOpt := opt
	negOpt.MinValue = -opt.MinValue
	if opt.MinValue == 0 {
		negOpt.MinValue = 0
	}
	peaks := FindPeaks(neg, PeakOptions{MinProminence: opt.MinProminence, MinDistance: opt.MinDistance})
	out := peaks[:0]
	for _, p := range peaks {
		p.Value = -p.Value
		if opt.MinValue != 0 && p.Value > opt.MinValue {
			continue
		}
		out = append(out, p)
	}
	return out
}

// prominence computes the classical topographic prominence of the peak
// at index idx: its height above the higher of the two key saddles
// found walking left and right until a higher peak (or the signal
// edge) is reached.
func prominence(x []float64, idx int) float64 {
	h := x[idx]
	// Left saddle.
	leftMin := h
	for i := idx - 1; i >= 0; i-- {
		if x[i] > h {
			break
		}
		if x[i] < leftMin {
			leftMin = x[i]
		}
	}
	// Right saddle.
	rightMin := h
	for i := idx + 1; i < len(x); i++ {
		if x[i] > h {
			break
		}
		if x[i] < rightMin {
			rightMin = x[i]
		}
	}
	saddle := leftMin
	if rightMin > saddle {
		saddle = rightMin
	}
	return h - saddle
}

func filterPeaks(raw []Peak, opt PeakOptions) []Peak {
	var kept []Peak
	for _, p := range raw {
		if opt.MinProminence > 0 && p.Prominence < opt.MinProminence {
			continue
		}
		if opt.MinValue != 0 && p.Value < opt.MinValue {
			continue
		}
		kept = append(kept, p)
	}
	if opt.MinDistance <= 0 || len(kept) < 2 {
		return kept
	}
	// Greedy suppression: prefer higher peaks.
	order := make([]int, len(kept))
	for i := range order {
		order[i] = i
	}
	// Insertion sort by value descending (lists are short).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && kept[order[j]].Value > kept[order[j-1]].Value; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	suppressed := make([]bool, len(kept))
	for _, i := range order {
		if suppressed[i] {
			continue
		}
		for j := range kept {
			if j == i || suppressed[j] {
				continue
			}
			if abs(kept[j].Index-kept[i].Index) < opt.MinDistance {
				suppressed[j] = true
			}
		}
	}
	var out []Peak
	for i, p := range kept {
		if !suppressed[i] {
			out = append(out, p)
		}
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
