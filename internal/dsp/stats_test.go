package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBasicStats(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(x); m != 5 {
		t.Fatalf("mean %v", m)
	}
	if s := Std(x); !almostEqual(s, 2, 1e-12) {
		t.Fatalf("std %v", s)
	}
	if r := RMS([]float64{3, 4}); !almostEqual(r, math.Sqrt(12.5), 1e-12) {
		t.Fatalf("rms %v", r)
	}
	lo, hi := MinMax(x)
	if lo != 2 || hi != 9 {
		t.Fatalf("minmax %v %v", lo, hi)
	}
	if Mean(nil) != 0 || Std(nil) != 0 || RMS(nil) != 0 {
		t.Fatal("empty-input stats not zero")
	}
}

func TestArgMinMax(t *testing.T) {
	x := []float64{3, 1, 4, 1, 5}
	if i := ArgMax(x); i != 4 {
		t.Fatalf("argmax %d", i)
	}
	if i := ArgMin(x); i != 1 {
		t.Fatalf("argmin %d (first minimum wins)", i)
	}
	if ArgMax(nil) != -1 || ArgMin(nil) != -1 {
		t.Fatal("empty input should return -1")
	}
}

func TestQuantile(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if q := Quantile(x, 0); q != 1 {
		t.Fatalf("q0 %v", q)
	}
	if q := Quantile(x, 1); q != 5 {
		t.Fatalf("q1 %v", q)
	}
	if q := Quantile(x, 0.5); q != 3 {
		t.Fatalf("median %v", q)
	}
	if q := Quantile(x, 0.25); q != 2 {
		t.Fatalf("q25 %v", q)
	}
	// Input must not be mutated (sorted copy inside).
	if x[0] != 1 || x[4] != 5 {
		t.Fatal("quantile mutated input")
	}
}

func TestNormalizeMinMax(t *testing.T) {
	out := NormalizeMinMax([]float64{10, 20, 30})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if !almostEqual(out[i], want[i], 1e-12) {
			t.Fatalf("normalized %v", out)
		}
	}
	flat := NormalizeMinMax([]float64{5, 5, 5})
	for _, v := range flat {
		if v != 0 {
			t.Fatalf("constant signal should map to zeros: %v", flat)
		}
	}
}

func TestNormalizeZScore(t *testing.T) {
	out := NormalizeZScore([]float64{1, 2, 3, 4, 5})
	if !almostEqual(Mean(out), 0, 1e-12) {
		t.Fatalf("mean %v", Mean(out))
	}
	if !almostEqual(Std(out), 1, 1e-12) {
		t.Fatalf("std %v", Std(out))
	}
}

func TestCrossCorrelationPeakAtTemplateOffset(t *testing.T) {
	x := make([]float64, 50)
	tpl := []float64{1, 2, 1}
	copy(x[20:], tpl)
	cc := CrossCorrelation(x, tpl)
	if best := ArgMax(cc); best != 20 {
		t.Fatalf("correlation peak at %d, want 20", best)
	}
	if CrossCorrelation(tpl, x) != nil {
		t.Fatal("template longer than signal should return nil")
	}
}

func TestAutoCorrelationPeriodDetection(t *testing.T) {
	// Period-8 square wave: autocorrelation peaks at lag 8.
	n := 128
	x := make([]float64, n)
	for i := range x {
		if (i/4)%2 == 0 {
			x[i] = 1
		}
	}
	ac := AutoCorrelation(x, 16)
	if !almostEqual(ac[0], 1, 1e-12) {
		t.Fatalf("lag-0 autocorrelation %v, want 1", ac[0])
	}
	// Lag 8 (full period) should be the strongest non-trivial lag.
	best := 1
	for lag := 2; lag < len(ac); lag++ {
		if ac[lag] > ac[best] {
			best = lag
		}
	}
	if best != 8 {
		t.Fatalf("period detected at lag %d, want 8", best)
	}
}

func TestResampleLinear(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	up := ResampleLinear(x, 7)
	if len(up) != 7 {
		t.Fatalf("length %d", len(up))
	}
	if up[0] != 0 || up[6] != 3 {
		t.Fatalf("endpoints %v %v", up[0], up[6])
	}
	if !almostEqual(up[3], 1.5, 1e-12) {
		t.Fatalf("midpoint %v, want 1.5", up[3])
	}
	down := ResampleLinear(x, 2)
	if down[0] != 0 || down[1] != 3 {
		t.Fatalf("downsampled %v", down)
	}
	if ResampleLinear(x, 0) != nil {
		t.Fatal("newLen=0 should return nil")
	}
	single := ResampleLinear([]float64{7}, 3)
	for _, v := range single {
		if v != 7 {
			t.Fatalf("single-sample resample %v", single)
		}
	}
}

func TestDecimate(t *testing.T) {
	x := make([]float64, 10)
	for i := range x {
		x[i] = float64(i)
	}
	out := Decimate(x, 2)
	if len(out) != 5 {
		t.Fatalf("length %d, want 5", len(out))
	}
	same := Decimate(x, 1)
	for i := range x {
		if same[i] != x[i] {
			t.Fatal("factor 1 altered signal")
		}
	}
}

func TestEnvelopeOfAmplitudeModulatedTone(t *testing.T) {
	const fs = 1000.0
	n := 1000
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / fs
		amp := 1 + 0.8*math.Sin(2*math.Pi*2*ti)
		x[i] = amp * math.Sin(2*math.Pi*100*ti)
	}
	env := Envelope(x, 21)
	// The envelope should vary with the 2 Hz modulation, not the
	// 100 Hz carrier: check variance at modulation scale.
	lo, hi := MinMax(env[100 : n-100])
	if hi/math.Max(lo, 1e-9) < 1.5 {
		t.Fatalf("envelope flat: lo=%v hi=%v", lo, hi)
	}
}

func TestLinearFitRecoversLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2 + 3*x
	}
	a, b := LinearFit(xs, ys)
	if !almostEqual(a, 2, 1e-9) || !almostEqual(b, 3, 1e-9) {
		t.Fatalf("fit a=%v b=%v", a, b)
	}
}

func TestExpFitRecoversExponential(t *testing.T) {
	xs := []float64{0, 0.5, 1, 1.5, 2}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 4 * math.Exp(-1.5*x)
	}
	A, b := ExpFit(xs, ys)
	if !almostEqual(A, 4, 1e-6) || !almostEqual(b, -1.5, 1e-6) {
		t.Fatalf("fit A=%v b=%v", A, b)
	}
	// Non-positive ys are skipped; with fewer than 2 usable points the
	// fit degenerates to zeros.
	A, b = ExpFit([]float64{1, 2}, []float64{-1, 0})
	if A != 0 || b != 0 {
		t.Fatalf("degenerate fit A=%v b=%v", A, b)
	}
}

func TestRSquared(t *testing.T) {
	y := []float64{1, 2, 3}
	if r := RSquared(y, y); !almostEqual(r, 1, 1e-12) {
		t.Fatalf("perfect fit r2 %v", r)
	}
	if r := RSquared(y, []float64{2, 2, 2}); r >= 1 {
		t.Fatalf("mean predictor r2 %v", r)
	}
}

func TestNormalizePropertyRange(t *testing.T) {
	f := func(raw []float64) bool {
		for _, v := range raw {
			// Near-max-float ranges make 1/(hi-lo) subnormal and lose
			// precision; that is a float64 limit, not a scaling bug.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e300 {
				return true
			}
		}
		out := NormalizeMinMax(raw)
		for _, v := range out {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMovingAveragePropertyBounds(t *testing.T) {
	// A moving average never exceeds the input's min/max bounds.
	f := func(raw []float64, w uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			// Skip pathological magnitudes whose prefix sums overflow
			// float64 — that is an arithmetic limit, not a filter bug.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e300 {
				return true
			}
		}
		lo, hi := MinMax(raw)
		out := MovingAverage(raw, int(w%16)+1)
		for _, v := range out {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
