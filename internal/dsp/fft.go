// Package dsp implements the signal-processing primitives the passive
// visible-light receiver needs: FFT and power spectra (collision
// analysis, Sec. 4.3 of the paper), Dynamic Time Warping (variable
// speed classification, Sec. 4.2), digital filters, peak detection
// (preamble A/B/C points, Sec. 4.1) and basic statistics.
//
// Everything is implemented from scratch on the standard library.
package dsp

import (
	"errors"
	"math"
	"math/bits"
	"math/cmplx"
)

// ErrEmptyInput is returned by transforms that require at least one
// sample.
var ErrEmptyInput = errors.New("dsp: empty input")

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPowerOfTwo returns the smallest power of two >= n (and >= 1).
func NextPowerOfTwo(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// FFT computes the in-place iterative radix-2 Cooley-Tukey transform
// of x. len(x) must be a power of two. The forward transform is
// unnormalized (matching common DSP convention). The twiddle factors
// and bit-reversal permutation come from the cached FFTPlan for the
// size, so repeated transforms of one size pay the trigonometry once.
func FFT(x []complex128) error {
	n := len(x)
	if n == 0 {
		return ErrEmptyInput
	}
	if !IsPowerOfTwo(n) {
		return errors.New("dsp: FFT length must be a power of two")
	}
	p, err := PlanFFT(n)
	if err != nil {
		return err
	}
	p.transform(x)
	return nil
}

// IFFT computes the inverse transform of x in place, normalizing by
// 1/N. len(x) must be a power of two.
func IFFT(x []complex128) error {
	n := len(x)
	if n == 0 {
		return ErrEmptyInput
	}
	if !IsPowerOfTwo(n) {
		return errors.New("dsp: FFT length must be a power of two")
	}
	p, err := PlanFFT(n)
	if err != nil {
		return err
	}
	return p.Inverse(x)
}

// FFTAny computes the DFT of x for arbitrary length using the
// Bluestein chirp-z algorithm (radix-2 FFT under the hood). The input
// is not modified; a new slice is returned. The chirp sequence and
// the convolution kernel's transform come precomputed from the cached
// plan; only per-call scratch is pooled.
func FFTAny(x []complex128) ([]complex128, error) {
	n := len(x)
	if n == 0 {
		return nil, ErrEmptyInput
	}
	p, err := PlanFFT(n)
	if err != nil {
		return nil, err
	}
	out := make([]complex128, n)
	copy(out, x)
	if err := p.Transform(out); err != nil {
		return nil, err
	}
	return out, nil
}

// Spectrum holds a one-sided power spectrum.
type Spectrum struct {
	Freqs []float64 // Hz, bin centers from 0 to fs/2
	Power []float64 // |X(f)| magnitude per bin
}

// PowerSpectrum computes the one-sided magnitude spectrum of a real
// signal sampled at fs Hz. The mean is removed first (the passive
// channel rides on a large DC ambient level which would otherwise
// dominate every bin). A window function may be nil for rectangular.
// Internally it runs a real-input transform — one complex FFT of half
// the padded size plus an O(n) unpack — through the cached plan,
// halving the work of the naive complex transform.
func PowerSpectrum(samples []float64, fs float64, window func(n, i int) float64) (Spectrum, error) {
	n := len(samples)
	if n == 0 {
		return Spectrum{}, ErrEmptyInput
	}
	if fs <= 0 {
		return Spectrum{}, errors.New("dsp: sample rate must be positive")
	}
	mean := Mean(samples)
	re := make([]float64, n)
	for i, s := range samples {
		w := 1.0
		if window != nil {
			w = window(n, i)
		}
		re[i] = (s - mean) * w
	}
	m := NextPowerOfTwo(n)
	half := m/2 + 1
	sp := Spectrum{
		Freqs: make([]float64, half),
		Power: make([]float64, half),
	}
	if m < 2 {
		sp.Power[0] = math.Abs(re[0])
		return sp, nil
	}
	p, err := PlanFFT(m)
	if err != nil {
		return Spectrum{}, err
	}
	bins := make([]complex128, half)
	if err := p.RealHalfSpectrum(re, bins); err != nil {
		return Spectrum{}, err
	}
	for k := 0; k < half; k++ {
		sp.Freqs[k] = float64(k) * fs / float64(m)
		sp.Power[k] = cmplx.Abs(bins[k])
	}
	return sp, nil
}

// SpectralPeak is a local maximum in a power spectrum.
type SpectralPeak struct {
	Freq  float64
	Power float64
}

// DominantPeaks returns the strongest local maxima of the spectrum
// above minFreq, sorted by descending power, at most max entries.
// Peaks closer than minSeparation Hz to a stronger peak are suppressed
// (they are skirts of the same tone).
func (s Spectrum) DominantPeaks(minFreq, minSeparation float64, max int) []SpectralPeak {
	var candidates []SpectralPeak
	for k := 1; k < len(s.Power)-1; k++ {
		if s.Freqs[k] < minFreq {
			continue
		}
		if s.Power[k] >= s.Power[k-1] && s.Power[k] > s.Power[k+1] {
			candidates = append(candidates, SpectralPeak{Freq: s.Freqs[k], Power: s.Power[k]})
		}
	}
	// Selection sort by power: candidate lists are tiny.
	for i := 0; i < len(candidates); i++ {
		best := i
		for j := i + 1; j < len(candidates); j++ {
			if candidates[j].Power > candidates[best].Power {
				best = j
			}
		}
		candidates[i], candidates[best] = candidates[best], candidates[i]
	}
	var out []SpectralPeak
	for _, c := range candidates {
		tooClose := false
		for _, p := range out {
			if math.Abs(p.Freq-c.Freq) < minSeparation {
				tooClose = true
				break
			}
		}
		if !tooClose {
			out = append(out, c)
			if len(out) == max {
				break
			}
		}
	}
	return out
}

// Goertzel evaluates the magnitude of a single DFT bin at frequency f
// for a signal sampled at fs. It is the cheap way to test for one
// known tone (e.g. the 100 Hz fluorescent ripple) without a full FFT.
func Goertzel(samples []float64, fs, f float64) float64 {
	n := len(samples)
	if n == 0 || fs <= 0 {
		return 0
	}
	w := 2 * math.Pi * f / fs
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, x := range samples {
		s0 = x + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	re := s1 - s2*math.Cos(w)
	im := s2 * math.Sin(w)
	return math.Hypot(re, im)
}
