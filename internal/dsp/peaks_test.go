package dsp

import (
	"math"
	"testing"
)

func TestFindPeaksSimple(t *testing.T) {
	x := []float64{0, 1, 0, 2, 0, 3, 0}
	peaks := FindPeaks(x, PeakOptions{})
	if len(peaks) != 3 {
		t.Fatalf("got %d peaks, want 3: %+v", len(peaks), peaks)
	}
	wantIdx := []int{1, 3, 5}
	for i, p := range peaks {
		if p.Index != wantIdx[i] {
			t.Fatalf("peak %d at index %d, want %d", i, p.Index, wantIdx[i])
		}
	}
}

func TestFindPeaksPlateauCenter(t *testing.T) {
	x := []float64{0, 1, 1, 1, 0}
	peaks := FindPeaks(x, PeakOptions{})
	if len(peaks) != 1 {
		t.Fatalf("got %d peaks, want 1", len(peaks))
	}
	if peaks[0].Index != 2 {
		t.Fatalf("plateau peak at %d, want center 2", peaks[0].Index)
	}
}

func TestFindPeaksMinProminence(t *testing.T) {
	// Small ripple on a big peak: prominence filter keeps only the
	// big one.
	x := []float64{0, 10, 9.8, 10.1, 9.9, 10, 0}
	all := FindPeaks(x, PeakOptions{})
	if len(all) < 2 {
		t.Fatalf("expected ripple peaks, got %d", len(all))
	}
	big := FindPeaks(x, PeakOptions{MinProminence: 5})
	if len(big) != 1 {
		t.Fatalf("got %d prominent peaks, want 1: %+v", len(big), big)
	}
}

func TestFindPeaksMinDistanceKeepsHigher(t *testing.T) {
	x := []float64{0, 5, 0, 9, 0, 4, 0}
	peaks := FindPeaks(x, PeakOptions{MinDistance: 3})
	// The 9 at index 3 suppresses both neighbours (2 samples away).
	if len(peaks) != 1 || peaks[0].Index != 3 {
		t.Fatalf("suppression failed: %+v", peaks)
	}
}

func TestFindValleys(t *testing.T) {
	x := []float64{3, 1, 3, 0.5, 3}
	valleys := FindValleys(x, PeakOptions{})
	if len(valleys) != 2 {
		t.Fatalf("got %d valleys, want 2", len(valleys))
	}
	if valleys[0].Index != 1 || valleys[1].Index != 3 {
		t.Fatalf("valley indices %d, %d", valleys[0].Index, valleys[1].Index)
	}
	if valleys[1].Value != 0.5 {
		t.Fatalf("valley value %v, want 0.5", valleys[1].Value)
	}
}

func TestProminenceOfIsolatedPeak(t *testing.T) {
	// Isolated peak over a flat floor: prominence equals height.
	x := []float64{0, 0, 7, 0, 0}
	peaks := FindPeaks(x, PeakOptions{})
	if len(peaks) != 1 {
		t.Fatalf("got %d peaks", len(peaks))
	}
	if math.Abs(peaks[0].Prominence-7) > 1e-12 {
		t.Fatalf("prominence %v, want 7", peaks[0].Prominence)
	}
}

func TestFindPeaksShortInput(t *testing.T) {
	if p := FindPeaks([]float64{1, 2}, PeakOptions{}); p != nil {
		t.Fatalf("short input produced peaks: %+v", p)
	}
	if p := FindPeaks(nil, PeakOptions{}); p != nil {
		t.Fatalf("nil input produced peaks: %+v", p)
	}
}

func TestFindPeaksOnPreambleWaveform(t *testing.T) {
	// The decoder's actual use case: an HLHL preamble as a smoothed
	// square wave. Expect exactly two prominent peaks and one valley
	// between them.
	// Lead-in/lead-out at the LOW level, as in a real pass where the
	// tag approaches from outside the FoV.
	var x []float64
	level := []float64{0, 1, 0, 1, 0}
	for _, l := range level {
		for i := 0; i < 50; i++ {
			x = append(x, l)
		}
	}
	sm := MovingAverage(x, 9)
	peaks := FindPeaks(sm, PeakOptions{MinProminence: 0.5})
	valleys := FindValleys(sm, PeakOptions{MinProminence: 0.5})
	if len(peaks) != 2 {
		t.Fatalf("got %d peaks, want 2", len(peaks))
	}
	if len(valleys) < 1 {
		t.Fatalf("got %d valleys, want >= 1", len(valleys))
	}
	if !(peaks[0].Index < valleys[0].Index && valleys[0].Index < peaks[1].Index) {
		t.Fatalf("A/B/C ordering violated: %d, %d, %d", peaks[0].Index, valleys[0].Index, peaks[1].Index)
	}
}
