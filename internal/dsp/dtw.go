package dsp

import (
	"errors"
	"math"
	"sync"
)

// ErrDTWAbandoned is returned by DTWWith when every alignment prefix
// has exceeded the AbandonAbove cutoff: the true distance is known to
// be above the cutoff without finishing the dynamic program.
var ErrDTWAbandoned = errors.New("dsp: DTW abandoned above cutoff")

// DTWOptions configures a Dynamic Time Warping computation.
type DTWOptions struct {
	// Window is the Sakoe-Chiba band half-width in samples. Zero or
	// negative means an unconstrained (full) alignment. A positive
	// window makes the computation O(len(a)*Window) instead of
	// O(len(a)*len(b)): only cells inside the band are touched.
	Window int
	// Dist is the local distance between two samples. Nil means
	// absolute difference (computed inline, without an indirect call
	// per cell).
	Dist func(a, b float64) float64
	// AbandonAbove, when positive, stops the dynamic program as soon
	// as every cost in a row exceeds it and returns ErrDTWAbandoned.
	// Because row minima only grow, the final distance is guaranteed
	// to be above the cutoff. Use it in nearest-baseline searches
	// where only distances below the current best matter.
	AbandonAbove float64
}

// dtwRows pools the two DP rows so repeated classifications do not
// allocate.
var dtwRows = sync.Pool{New: func() any { return new([]float64) }}

func dtwRow(m int) *[]float64 {
	rp := dtwRows.Get().(*[]float64)
	if cap(*rp) < m {
		*rp = make([]float64, m)
	}
	*rp = (*rp)[:m]
	return rp
}

// DTW computes the Dynamic Time Warping distance between a and b with
// default options (unconstrained band, absolute difference). This is
// the similarity measure the paper uses to classify variable-speed
// distorted packets against clean baselines (Sec. 4.2).
func DTW(a, b []float64) (float64, error) {
	return DTWWith(a, b, DTWOptions{})
}

// DTWWith computes the DTW distance with explicit options. It uses a
// two-row dynamic program with pooled scratch: O(len(b)) space, and
// time proportional to the band area (full matrix when
// unconstrained). Only band cells are written per row — the cells
// just outside the band carry +Inf sentinels, which is exactly what
// the full-row initialization produced, so banded results are
// unchanged while narrow bands run in O(len(a)*Window).
func DTWWith(a, b []float64, opt DTWOptions) (float64, error) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0, ErrEmptyInput
	}
	dist := opt.Dist
	w := opt.Window
	if w > 0 {
		// The band must be at least |n-m| wide for a path to exist.
		if d := n - m; d < 0 {
			if w < -d {
				w = -d
			}
		} else if w < d {
			w = d
		}
	}
	inf := math.Inf(1)
	prevP, curP := dtwRow(m+1), dtwRow(m+1)
	defer dtwRows.Put(prevP)
	defer dtwRows.Put(curP)
	prev, cur := *prevP, *curP
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	cur[0] = inf
	for i := 1; i <= n; i++ {
		lo, hi := 1, m
		if w > 0 {
			lo = max(1, i-w)
			hi = min(m, i+w)
		}
		// Sentinels flanking the band: row i+1 reads prev indices
		// down to lo(i+1)-1 >= lo-1 and up to hi(i+1) <= hi+1, and
		// the in-row deletion reads cur[lo-1].
		cur[lo-1] = inf
		if hi < m {
			cur[hi+1] = inf
		}
		rowMin := inf
		ai := a[i-1]
		if dist == nil {
			for j := lo; j <= hi; j++ {
				d := ai - b[j-1]
				if d < 0 {
					d = -d
				}
				best := prev[j] // insertion
				if prev[j-1] < best {
					best = prev[j-1] // match
				}
				if cur[j-1] < best {
					best = cur[j-1] // deletion
				}
				c := d + best
				cur[j] = c
				if c < rowMin {
					rowMin = c
				}
			}
		} else {
			for j := lo; j <= hi; j++ {
				d := dist(ai, b[j-1])
				best := prev[j] // insertion
				if prev[j-1] < best {
					best = prev[j-1] // match
				}
				if cur[j-1] < best {
					best = cur[j-1] // deletion
				}
				c := d + best
				cur[j] = c
				if c < rowMin {
					rowMin = c
				}
			}
		}
		if opt.AbandonAbove > 0 && rowMin > opt.AbandonAbove {
			return rowMin, ErrDTWAbandoned
		}
		prev, cur = cur, prev
	}
	if math.IsInf(prev[m], 1) {
		return 0, errors.New("dsp: DTW window too narrow for any path")
	}
	return prev[m], nil
}

// DTWPath computes the DTW distance and the optimal alignment path as
// (i, j) index pairs from (0,0) to (len(a)-1, len(b)-1). It needs the
// full O(n*m) cost matrix, so prefer DTWWith when only the distance is
// required.
func DTWPath(a, b []float64) (float64, [][2]int, error) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0, nil, ErrEmptyInput
	}
	inf := math.Inf(1)
	cost := make([][]float64, n+1)
	for i := range cost {
		cost[i] = make([]float64, m+1)
		for j := range cost[i] {
			cost[i][j] = inf
		}
	}
	cost[0][0] = 0
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			d := math.Abs(a[i-1] - b[j-1])
			best := cost[i-1][j]
			if cost[i-1][j-1] < best {
				best = cost[i-1][j-1]
			}
			if cost[i][j-1] < best {
				best = cost[i][j-1]
			}
			cost[i][j] = d + best
		}
	}
	// Backtrack.
	var path [][2]int
	i, j := n, m
	for i > 1 || j > 1 {
		path = append(path, [2]int{i - 1, j - 1})
		switch {
		case i == 1:
			j--
		case j == 1:
			i--
		default:
			diag, up, left := cost[i-1][j-1], cost[i-1][j], cost[i][j-1]
			if diag <= up && diag <= left {
				i, j = i-1, j-1
			} else if up <= left {
				i--
			} else {
				j--
			}
		}
	}
	path = append(path, [2]int{0, 0})
	// Reverse in place.
	for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
		path[l], path[r] = path[r], path[l]
	}
	return cost[n][m], path, nil
}

// EuclideanDistance is the point-wise L2 distance between equal-length
// prefixes of a and b (the shorter length is used, mimicking a naive
// classifier that ignores time warping). It serves as the ablation
// baseline against DTW.
func EuclideanDistance(a, b []float64) float64 {
	n := min(len(a), len(b))
	var sum float64
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
