package dsp

import (
	"errors"
	"math"
)

// DTWOptions configures a Dynamic Time Warping computation.
type DTWOptions struct {
	// Window is the Sakoe-Chiba band half-width in samples. Zero or
	// negative means an unconstrained (full) alignment.
	Window int
	// Dist is the local distance between two samples. Nil means
	// absolute difference.
	Dist func(a, b float64) float64
}

// DTW computes the Dynamic Time Warping distance between a and b with
// default options (unconstrained band, absolute difference). This is
// the similarity measure the paper uses to classify variable-speed
// distorted packets against clean baselines (Sec. 4.2).
func DTW(a, b []float64) (float64, error) {
	return DTWWith(a, b, DTWOptions{})
}

// DTWWith computes the DTW distance with explicit options. It uses a
// two-row dynamic program, O(len(a)*len(b)) time and O(len(b)) space.
func DTWWith(a, b []float64, opt DTWOptions) (float64, error) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0, ErrEmptyInput
	}
	dist := opt.Dist
	if dist == nil {
		dist = func(x, y float64) float64 { return math.Abs(x - y) }
	}
	w := opt.Window
	if w > 0 {
		// The band must be at least |n-m| wide for a path to exist.
		if d := n - m; d < 0 {
			if w < -d {
				w = -d
			}
		} else if w < d {
			w = d
		}
	}
	inf := math.Inf(1)
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		for j := range cur {
			cur[j] = inf
		}
		lo, hi := 1, m
		if w > 0 {
			lo = max(1, i-w)
			hi = min(m, i+w)
		}
		for j := lo; j <= hi; j++ {
			d := dist(a[i-1], b[j-1])
			best := prev[j] // insertion
			if prev[j-1] < best {
				best = prev[j-1] // match
			}
			if cur[j-1] < best {
				best = cur[j-1] // deletion
			}
			cur[j] = d + best
		}
		prev, cur = cur, prev
	}
	if math.IsInf(prev[m], 1) {
		return 0, errors.New("dsp: DTW window too narrow for any path")
	}
	return prev[m], nil
}

// DTWPath computes the DTW distance and the optimal alignment path as
// (i, j) index pairs from (0,0) to (len(a)-1, len(b)-1). It needs the
// full O(n*m) cost matrix, so prefer DTWWith when only the distance is
// required.
func DTWPath(a, b []float64) (float64, [][2]int, error) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0, nil, ErrEmptyInput
	}
	inf := math.Inf(1)
	cost := make([][]float64, n+1)
	for i := range cost {
		cost[i] = make([]float64, m+1)
		for j := range cost[i] {
			cost[i][j] = inf
		}
	}
	cost[0][0] = 0
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			d := math.Abs(a[i-1] - b[j-1])
			best := cost[i-1][j]
			if cost[i-1][j-1] < best {
				best = cost[i-1][j-1]
			}
			if cost[i][j-1] < best {
				best = cost[i][j-1]
			}
			cost[i][j] = d + best
		}
	}
	// Backtrack.
	var path [][2]int
	i, j := n, m
	for i > 1 || j > 1 {
		path = append(path, [2]int{i - 1, j - 1})
		switch {
		case i == 1:
			j--
		case j == 1:
			i--
		default:
			diag, up, left := cost[i-1][j-1], cost[i-1][j], cost[i][j-1]
			if diag <= up && diag <= left {
				i, j = i-1, j-1
			} else if up <= left {
				i--
			} else {
				j--
			}
		}
	}
	path = append(path, [2]int{0, 0})
	// Reverse in place.
	for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
		path[l], path[r] = path[r], path[l]
	}
	return cost[n][m], path, nil
}

// EuclideanDistance is the point-wise L2 distance between equal-length
// prefixes of a and b (the shorter length is used, mimicking a naive
// classifier that ignores time warping). It serves as the ablation
// baseline against DTW.
func EuclideanDistance(a, b []float64) float64 {
	n := min(len(a), len(b))
	var sum float64
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
