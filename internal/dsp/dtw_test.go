package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDTWIdenticalSignalsZero(t *testing.T) {
	x := []float64{0, 1, 0, 1, 0.5, 0}
	d, err := DTW(x, x)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("self distance = %v, want 0", d)
	}
}

func TestDTWEmptyInput(t *testing.T) {
	if _, err := DTW(nil, []float64{1}); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestDTWAbsorbsUniformTimeWarp(t *testing.T) {
	// A signal and its 2x time-stretched version: DTW distance should
	// be near zero while Euclidean distance is large.
	n := 64
	a := make([]float64, n)
	for i := range a {
		a[i] = math.Sin(2 * math.Pi * 3 * float64(i) / float64(n))
	}
	b := make([]float64, 2*n)
	for i := range b {
		b[i] = math.Sin(2 * math.Pi * 3 * float64(i) / float64(2*n))
	}
	d, err := DTW(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Against a genuinely different shape (the negated stretch), the
	// distance must be far larger than against the pure time warp.
	neg := make([]float64, len(b))
	for i, v := range b {
		neg[i] = -v
	}
	dNeg, err := DTW(a, neg)
	if err != nil {
		t.Fatal(err)
	}
	if d > dNeg/4 {
		t.Fatalf("time-warp distance %v not well below different-shape distance %v", d, dNeg)
	}
	if eu := EuclideanDistance(a, b); eu < 1 {
		t.Fatalf("Euclidean distance %v unexpectedly small", eu)
	}
}

func TestDTWDiscriminatesDifferentShapes(t *testing.T) {
	n := 50
	sin := make([]float64, n)
	saw := make([]float64, n)
	for i := range sin {
		sin[i] = math.Sin(2 * math.Pi * float64(i) / float64(n))
		saw[i] = 2*float64(i%10)/10 - 1
	}
	dSame, err := DTW(sin, sin)
	if err != nil {
		t.Fatal(err)
	}
	dDiff, err := DTW(sin, saw)
	if err != nil {
		t.Fatal(err)
	}
	if dDiff <= dSame {
		t.Fatalf("different shapes (%v) not farther than identical (%v)", dDiff, dSame)
	}
}

func TestDTWSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := make([]float64, 30)
	b := make([]float64, 45)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	dab, err := DTW(a, b)
	if err != nil {
		t.Fatal(err)
	}
	dba, err := DTW(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dab-dba) > 1e-9 {
		t.Fatalf("DTW not symmetric: %v vs %v", dab, dba)
	}
}

func TestDTWWindowConstraint(t *testing.T) {
	a := []float64{0, 0, 1, 1, 0, 0, 1, 1}
	b := []float64{0, 1, 1, 0, 0, 1, 1, 0}
	full, err := DTWWith(a, b, DTWOptions{})
	if err != nil {
		t.Fatal(err)
	}
	banded, err := DTWWith(a, b, DTWOptions{Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A narrower band can only restrict the optimal path.
	if banded < full-1e-12 {
		t.Fatalf("banded distance %v < unconstrained %v", banded, full)
	}
}

func TestDTWWindowWidensForLengthMismatch(t *testing.T) {
	a := make([]float64, 10)
	b := make([]float64, 30)
	// Window 1 is narrower than the length difference; the
	// implementation must widen it instead of failing.
	if _, err := DTWWith(a, b, DTWOptions{Window: 1}); err != nil {
		t.Fatalf("window not widened: %v", err)
	}
}

func TestDTWCustomDistance(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 2, 5}
	sq, err := DTWWith(a, b, DTWOptions{Dist: func(x, y float64) float64 {
		d := x - y
		return d * d
	}})
	if err != nil {
		t.Fatal(err)
	}
	if sq != 4 {
		t.Fatalf("squared-distance DTW = %v, want 4", sq)
	}
}

func TestDTWPathEndpoints(t *testing.T) {
	a := []float64{0, 1, 2, 3}
	b := []float64{0, 0, 1, 2, 3}
	d, path, err := DTWPath(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("distance %v, want 0", d)
	}
	if path[0] != [2]int{0, 0} {
		t.Fatalf("path starts at %v", path[0])
	}
	if path[len(path)-1] != [2]int{len(a) - 1, len(b) - 1} {
		t.Fatalf("path ends at %v", path[len(path)-1])
	}
	// Steps must be monotone and adjacent.
	for i := 1; i < len(path); i++ {
		di := path[i][0] - path[i-1][0]
		dj := path[i][1] - path[i-1][1]
		if di < 0 || dj < 0 || di > 1 || dj > 1 || (di == 0 && dj == 0) {
			t.Fatalf("invalid path step %v -> %v", path[i-1], path[i])
		}
	}
}

func TestDTWPathMatchesDTWDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := make([]float64, 20)
	b := make([]float64, 25)
	for i := range a {
		a[i] = rng.Float64()
	}
	for i := range b {
		b[i] = rng.Float64()
	}
	d1, err := DTW(a, b)
	if err != nil {
		t.Fatal(err)
	}
	d2, _, err := DTWPath(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d1-d2) > 1e-9 {
		t.Fatalf("DTW=%v DTWPath=%v", d1, d2)
	}
}

func TestDTWPropertyNonNegativeAndSelfZero(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 || len(raw) > 64 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		self, err := DTW(raw, raw)
		if err != nil || self != 0 {
			return false
		}
		shifted := make([]float64, len(raw))
		for i, v := range raw {
			shifted[i] = v + 1
		}
		d, err := DTW(raw, shifted)
		return err == nil && d >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDTW256(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, 256)
	y := make([]float64, 256)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DTW(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDTWBanded256(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x := make([]float64, 256)
	y := make([]float64, 256)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DTWWith(x, y, DTWOptions{Window: 32}); err != nil {
			b.Fatal(err)
		}
	}
}
