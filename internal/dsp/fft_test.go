package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// naiveDFT is the O(n^2) reference implementation.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

func complexSliceClose(t *testing.T, got, want []complex128, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("length mismatch: got %d want %d", len(got), len(want))
	}
	for i := range got {
		if cmplx.Abs(got[i]-want[i]) > tol {
			t.Fatalf("bin %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func randComplex(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := randComplex(n, int64(n))
		want := naiveDFT(x)
		got := make([]complex128, n)
		copy(got, x)
		if err := FFT(got); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		complexSliceClose(t, got, want, 1e-8*float64(n))
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	if err := FFT(make([]complex128, 3)); err == nil {
		t.Fatal("expected error for n=3")
	}
	if err := FFT(nil); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestIFFTRoundTrip(t *testing.T) {
	x := randComplex(128, 7)
	y := make([]complex128, len(x))
	copy(y, x)
	if err := FFT(y); err != nil {
		t.Fatal(err)
	}
	if err := IFFT(y); err != nil {
		t.Fatal(err)
	}
	complexSliceClose(t, y, x, 1e-9)
}

func TestFFTParseval(t *testing.T) {
	x := randComplex(256, 9)
	var timeEnergy float64
	for _, v := range x {
		timeEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	y := make([]complex128, len(x))
	copy(y, x)
	if err := FFT(y); err != nil {
		t.Fatal(err)
	}
	var freqEnergy float64
	for _, v := range y {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	freqEnergy /= float64(len(x))
	if math.Abs(timeEnergy-freqEnergy) > 1e-6*timeEnergy {
		t.Fatalf("Parseval violated: time %.6f freq %.6f", timeEnergy, freqEnergy)
	}
}

func TestFFTAnyArbitraryLengths(t *testing.T) {
	for _, n := range []int{3, 5, 6, 7, 12, 17, 100, 131} {
		x := randComplex(n, int64(100+n))
		want := naiveDFT(x)
		got, err := FFTAny(x)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		complexSliceClose(t, got, want, 1e-7*float64(n))
	}
}

func TestFFTAnyDoesNotModifyInput(t *testing.T) {
	x := randComplex(13, 3)
	orig := make([]complex128, len(x))
	copy(orig, x)
	if _, err := FFTAny(x); err != nil {
		t.Fatal(err)
	}
	complexSliceClose(t, x, orig, 0)
}

func TestPowerSpectrumFindsTone(t *testing.T) {
	const (
		fs   = 1000.0
		tone = 85.0
		n    = 2048
	)
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / fs
		x[i] = 10 + 3*math.Sin(2*math.Pi*tone*ti) // DC offset + tone
	}
	sp, err := PowerSpectrum(x, fs, HannWindow)
	if err != nil {
		t.Fatal(err)
	}
	best := 0
	for k := range sp.Power {
		if sp.Power[k] > sp.Power[best] {
			best = k
		}
	}
	if math.Abs(sp.Freqs[best]-tone) > fs/float64(len(sp.Freqs))*2 {
		t.Fatalf("dominant bin at %.2f Hz, want ~%.2f", sp.Freqs[best], tone)
	}
	// DC must have been removed.
	if sp.Power[0] > sp.Power[best]/100 {
		t.Fatalf("DC bin not suppressed: %.2f", sp.Power[0])
	}
}

func TestPowerSpectrumErrors(t *testing.T) {
	if _, err := PowerSpectrum(nil, 1000, nil); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, err := PowerSpectrum([]float64{1, 2}, 0, nil); err == nil {
		t.Fatal("expected error for zero sample rate")
	}
}

func TestDominantPeaksSeparationAndOrder(t *testing.T) {
	sp := Spectrum{
		Freqs: []float64{0, 1, 2, 3, 4, 5, 6, 7, 8},
		Power: []float64{0, 5, 1, 9, 1, 8.8, 1, 3, 0},
	}
	peaks := sp.DominantPeaks(0.5, 1.5, 3)
	if len(peaks) < 2 {
		t.Fatalf("got %d peaks, want >= 2", len(peaks))
	}
	if peaks[0].Freq != 3 {
		t.Fatalf("strongest peak at %.1f, want 3", peaks[0].Freq)
	}
	// 5 Hz (power 8.8) is 2 Hz from the 3 Hz peak: kept.
	if peaks[1].Freq != 5 {
		t.Fatalf("second peak at %.1f, want 5", peaks[1].Freq)
	}
	// With a wide separation, the 5 Hz peak is suppressed as a skirt.
	peaks = sp.DominantPeaks(0.5, 2.5, 3)
	for _, p := range peaks[1:] {
		if p.Freq == 5 {
			t.Fatal("5 Hz peak should be suppressed at separation 2.5")
		}
	}
}

func TestGoertzelMatchesFFTBin(t *testing.T) {
	const fs = 1000.0
	n := 1000
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / fs
		x[i] = 2*math.Sin(2*math.Pi*100*ti) + math.Sin(2*math.Pi*40*ti)
	}
	// Goertzel at the strong tone should far exceed a quiet bin.
	strong := Goertzel(x, fs, 100)
	weak := Goertzel(x, fs, 250)
	if strong < 10*weak {
		t.Fatalf("Goertzel contrast too low: strong=%.1f weak=%.1f", strong, weak)
	}
	// And the 40 Hz tone should be about half the 100 Hz magnitude.
	mid := Goertzel(x, fs, 40)
	if ratio := mid / strong; ratio < 0.4 || ratio > 0.6 {
		t.Fatalf("magnitude ratio %.2f, want ~0.5", ratio)
	}
}

func TestNextPowerOfTwo(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPowerOfTwo(in); got != want {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", in, got, want)
		}
	}
}

func BenchmarkFFT1024(b *testing.B) {
	x := randComplex(1024, 1)
	buf := make([]complex128, len(x))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		if err := FFT(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPowerSpectrum4096(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, 4096)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PowerSpectrum(x, 1000, HannWindow); err != nil {
			b.Fatal(err)
		}
	}
}
