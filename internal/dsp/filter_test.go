package dsp

import (
	"math"
	"testing"
)

func TestMovingAveragePreservesConstant(t *testing.T) {
	x := []float64{3, 3, 3, 3, 3, 3}
	for _, w := range []int{1, 2, 3, 5, 9} {
		out := MovingAverage(x, w)
		for i, v := range out {
			if math.Abs(v-3) > 1e-12 {
				t.Fatalf("window %d sample %d: %v", w, i, v)
			}
		}
	}
}

func TestMovingAverageSmoothsStep(t *testing.T) {
	x := make([]float64, 20)
	for i := 10; i < 20; i++ {
		x[i] = 1
	}
	out := MovingAverage(x, 5)
	// The step edge must be strictly between the levels.
	if out[10] <= 0 || out[10] >= 1 {
		t.Fatalf("edge sample %v not smoothed", out[10])
	}
	// Far from the edge the levels are intact.
	if out[2] != 0 || out[18] != 1 {
		t.Fatalf("levels altered: %v, %v", out[2], out[18])
	}
}

func TestMedianFilterRemovesImpulse(t *testing.T) {
	x := []float64{1, 1, 1, 50, 1, 1, 1}
	out := MedianFilter(x, 3)
	if out[3] != 1 {
		t.Fatalf("impulse survived: %v", out[3])
	}
	// A genuine step survives the median.
	step := []float64{0, 0, 0, 5, 5, 5}
	sout := MedianFilter(step, 3)
	if sout[4] != 5 || sout[1] != 0 {
		t.Fatalf("step distorted: %v", sout)
	}
}

func TestExponentialMATracksTowardsInput(t *testing.T) {
	x := []float64{0, 10, 10, 10, 10, 10}
	out := ExponentialMA(x, 0.5)
	if out[0] != 0 {
		t.Fatalf("first sample %v", out[0])
	}
	for i := 1; i < len(out)-1; i++ {
		if out[i+1] < out[i] {
			t.Fatalf("not monotone toward input at %d: %v", i, out)
		}
	}
	if out[5] < 9 {
		t.Fatalf("converged too slowly: %v", out[5])
	}
}

func TestFirstOrderLowpassAttenuatesHighFrequency(t *testing.T) {
	const fs = 1000.0
	lp := NewFirstOrderLowpass(10, fs)
	// 200 Hz tone: far above cutoff, should be strongly attenuated.
	n := 2000
	var maxOut float64
	for i := 0; i < n; i++ {
		v := lp.Step(math.Sin(2 * math.Pi * 200 * float64(i) / fs))
		if i > n/2 && math.Abs(v) > maxOut {
			maxOut = math.Abs(v)
		}
	}
	if maxOut > 0.12 {
		t.Fatalf("200 Hz attenuated to %v, want < 0.12", maxOut)
	}
	// DC passes unchanged.
	lp.Reset()
	var last float64
	for i := 0; i < 2000; i++ {
		last = lp.Step(1)
	}
	if math.Abs(last-1) > 1e-3 {
		t.Fatalf("DC gain %v", last)
	}
}

func TestFirstOrderLowpassDisabled(t *testing.T) {
	lp := NewFirstOrderLowpass(0, 1000)
	if out := lp.Apply([]float64{1, -1, 1, -1}); out[1] != -1 || out[3] != -1 {
		t.Fatalf("disabled filter altered signal: %v", out)
	}
}

func TestBiquadLowpassAndHighpass(t *testing.T) {
	const fs = 1000.0
	lp, err := NewLowpassBiquad(20, fs, 0)
	if err != nil {
		t.Fatal(err)
	}
	hp, err := NewHighpassBiquad(20, fs, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := 3000
	tone := func(f float64) []float64 {
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Sin(2 * math.Pi * f * float64(i) / fs)
		}
		return x
	}
	amp := func(x []float64) float64 {
		var m float64
		for _, v := range x[n/2:] {
			if math.Abs(v) > m {
				m = math.Abs(v)
			}
		}
		return m
	}
	if a := amp(lp.Apply(tone(200))); a > 0.1 {
		t.Fatalf("lowpass leaks 200 Hz: %v", a)
	}
	if a := amp(lp.Apply(tone(2))); a < 0.9 {
		t.Fatalf("lowpass attenuates 2 Hz: %v", a)
	}
	if a := amp(hp.Apply(tone(2))); a > 0.1 {
		t.Fatalf("highpass leaks 2 Hz: %v", a)
	}
	if a := amp(hp.Apply(tone(200))); a < 0.9 {
		t.Fatalf("highpass attenuates 200 Hz: %v", a)
	}
}

func TestBiquadRejectsBadCutoff(t *testing.T) {
	if _, err := NewLowpassBiquad(600, 1000, 0); err == nil {
		t.Fatal("expected error for cutoff above Nyquist")
	}
	if _, err := NewHighpassBiquad(0, 1000, 0); err == nil {
		t.Fatal("expected error for zero cutoff")
	}
}

func TestConvolveIdentityAndLength(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	out := Convolve(x, []float64{1})
	for i := range x {
		if out[i] != x[i] {
			t.Fatalf("identity kernel altered signal: %v", out)
		}
	}
	out = Convolve(x, []float64{1, 1})
	if len(out) != 5 {
		t.Fatalf("full convolution length %d, want 5", len(out))
	}
	want := []float64{1, 3, 5, 7, 4}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("conv = %v, want %v", out, want)
		}
	}
}

func TestConvolveSameKeepsLengthAndAlignment(t *testing.T) {
	x := []float64{0, 0, 1, 0, 0}
	k := []float64{0.25, 0.5, 0.25}
	out := ConvolveSame(x, k)
	if len(out) != len(x) {
		t.Fatalf("length %d, want %d", len(out), len(x))
	}
	if ArgMax(out) != 2 {
		t.Fatalf("symmetric kernel shifted the impulse: %v", out)
	}
}

func TestSincLowpassKernel(t *testing.T) {
	k, err := SincLowpassKernel(0.1, 31)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range k {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("DC gain %v, want 1", sum)
	}
	// Symmetric.
	for i := range k {
		if math.Abs(k[i]-k[len(k)-1-i]) > 1e-12 {
			t.Fatalf("kernel asymmetric at %d", i)
		}
	}
	if _, err := SincLowpassKernel(0.6, 31); err == nil {
		t.Fatal("expected error for cutoff >= 0.5")
	}
	if _, err := SincLowpassKernel(0.1, 30); err == nil {
		t.Fatal("expected error for even length")
	}
}
