package dsp

import (
	"errors"
	"math"
	"math/bits"
	"math/cmplx"
	"sync"
	"sync/atomic"
)

// FFTPlan holds everything a transform of one size needs but does not
// want to recompute per call: the twiddle-factor table and
// bit-reversal permutation for a radix-2 size, and — for non-power-
// of-two sizes — the Bluestein chirp sequence with the convolution
// kernel's transform precomputed. Plans are immutable after
// construction and safe for concurrent use; per-call convolution
// scratch comes from an internal pool.
//
// Plans are cached: PlanFFT returns the shared plan for a size, so
// hot paths (PowerSpectrum on every collision segment, repeated
// classifier transforms) pay the trigonometry once per size per
// process.
type FFTPlan struct {
	n int

	// Radix-2 path (n a power of two).
	twiddle []complex128 // exp(-2πik/n), k < n/2
	bitrev  []uint32

	// Bluestein path (any n): DFT as a convolution of size m.
	m     int          // NextPowerOfTwo(2n+1)
	chirp []complex128 // exp(-iπk²/n), k < n
	bfft  []complex128 // sub-plan transform of the chirp kernel
	sub   *FFTPlan     // radix-2 plan of size m
	buf   sync.Pool    // *[]complex128 per-call scratch (convolution, real packing)
}

var (
	fftPlans sync.Map // int -> *FFTPlan
	// fftPlanCount bounds the cache: power-of-two sizes are few and
	// always cached, but Bluestein plans retain several O(n) arrays
	// per distinct size, so a stream of data-dependent lengths (every
	// segment a different size) must not pin memory without bound.
	// Sizes beyond the cap get an ephemeral per-call plan — exactly
	// the pre-plan-cache cost.
	fftPlanCount atomic.Int64
)

const maxCachedFFTPlans = 64

// PlanFFT returns the cached plan for transforms of size n. Plans are
// immutable and safe for concurrent use. At most maxCachedFFTPlans
// non-power-of-two sizes are retained; further sizes are planned per
// call.
func PlanFFT(n int) (*FFTPlan, error) {
	if n <= 0 {
		return nil, ErrEmptyInput
	}
	if p, ok := fftPlans.Load(n); ok {
		return p.(*FFTPlan), nil
	}
	p := newFFTPlan(n)
	if !IsPowerOfTwo(n) && fftPlanCount.Load() >= maxCachedFFTPlans {
		return p, nil // ephemeral: cache full
	}
	actual, loaded := fftPlans.LoadOrStore(n, p)
	if !loaded && !IsPowerOfTwo(n) {
		fftPlanCount.Add(1)
	}
	return actual.(*FFTPlan), nil
}

func newFFTPlan(n int) *FFTPlan {
	p := &FFTPlan{n: n}
	if IsPowerOfTwo(n) {
		p.twiddle = twiddleTable(n)
		p.bitrev = bitrevTable(n)
		return p
	}
	// Bluestein: express the DFT as a linear convolution with the
	// chirp kernel b[k] = conj(chirp[k]), evaluated circularly at a
	// power-of-two size m >= 2n+1.
	p.m = NextPowerOfTwo(2*n + 1)
	p.sub = mustSubPlan(p.m)
	p.chirp = make([]complex128, n)
	for k := 0; k < n; k++ {
		// Use k*k mod 2n to avoid float blowup for large k.
		kk := (int64(k) * int64(k)) % int64(2*n)
		p.chirp[k] = cmplx.Exp(complex(0, -math.Pi*float64(kk)/float64(n)))
	}
	p.bfft = make([]complex128, p.m)
	for k := 0; k < n; k++ {
		p.bfft[k] = cmplx.Conj(p.chirp[k])
	}
	for k := 1; k < n; k++ {
		p.bfft[p.m-k] = cmplx.Conj(p.chirp[k])
	}
	p.sub.transform(p.bfft)
	return p
}

func mustSubPlan(m int) *FFTPlan {
	sub, err := PlanFFT(m)
	if err != nil {
		panic(err) // unreachable: m is a positive power of two
	}
	return sub
}

// twiddleTable precomputes w[k] = exp(-2πik/n) for k < n/2.
func twiddleTable(n int) []complex128 {
	tw := make([]complex128, n/2)
	for k := range tw {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		tw[k] = complex(c, s)
	}
	return tw
}

func bitrevTable(n int) []uint32 {
	rev := make([]uint32, n)
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := range rev {
		rev[i] = uint32(bits.Reverse64(uint64(i)) >> shift)
	}
	return rev
}

// Size returns the transform size the plan was built for.
func (p *FFTPlan) Size() int { return p.n }

// Transform computes the unnormalized forward DFT of x in place.
// len(x) must equal Size. Safe for concurrent use with distinct x.
func (p *FFTPlan) Transform(x []complex128) error {
	if len(x) != p.n {
		return errors.New("dsp: input length does not match plan size")
	}
	if p.twiddle != nil {
		p.transform(x)
		return nil
	}
	return p.bluestein(x)
}

// Inverse computes the inverse DFT of x in place, normalizing by 1/N.
func (p *FFTPlan) Inverse(x []complex128) error {
	if len(x) != p.n {
		return errors.New("dsp: input length does not match plan size")
	}
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	if err := p.Transform(x); err != nil {
		return err
	}
	inv := complex(1/float64(p.n), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) * inv
	}
	return nil
}

// transform is the radix-2 kernel: iterative Cooley-Tukey over the
// precomputed twiddle table. The first stage is peeled into a pure
// add/sub sweep (its only twiddle is 1+0i, and multiplying by exactly
// one is the identity), and the remaining stages run over per-block
// subslices with a 4-wide manual unroll — each butterfly touches a
// disjoint element pair and keeps its own operation order, so the
// output matches the plain triple loop.
func (p *FFTPlan) transform(x []complex128) {
	n := p.n
	for i, r := range p.bitrev {
		if j := int(r); j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	if n < 2 {
		return
	}
	for start := 0; start+2 <= n; start += 2 {
		a, b := x[start], x[start+1]
		x[start], x[start+1] = a+b, a-b
	}
	tw := p.twiddle
	for size := 4; size <= n; size <<= 1 {
		half := size >> 1
		stride := n / size
		for start := 0; start < n; start += size {
			// Equal-length subslices of the block's two halves let the
			// compiler drop the bounds checks inside the butterfly.
			xa := x[start : start+half]
			xb := x[start+half : start+size]
			xa = xa[:len(xb)]
			ti := 0
			k := 0
			for ; k+4 <= len(xb); k += 4 {
				a0 := xa[k]
				b0 := xb[k] * tw[ti]
				xa[k], xb[k] = a0+b0, a0-b0
				a1 := xa[k+1]
				b1 := xb[k+1] * tw[ti+stride]
				xa[k+1], xb[k+1] = a1+b1, a1-b1
				a2 := xa[k+2]
				b2 := xb[k+2] * tw[ti+2*stride]
				xa[k+2], xb[k+2] = a2+b2, a2-b2
				a3 := xa[k+3]
				b3 := xb[k+3] * tw[ti+3*stride]
				xa[k+3], xb[k+3] = a3+b3, a3-b3
				ti += 4 * stride
			}
			for ; k < len(xb); k++ {
				a := xa[k]
				b := xb[k] * tw[ti]
				xa[k], xb[k] = a+b, a-b
				ti += stride
			}
		}
	}
}

func (p *FFTPlan) scratch(size int) []complex128 {
	if v := p.buf.Get(); v != nil {
		s := *(v.(*[]complex128))
		if cap(s) >= size {
			return s[:size]
		}
	}
	return make([]complex128, size)
}

func (p *FFTPlan) release(s []complex128) {
	p.buf.Put(&s)
}

// bluestein evaluates the arbitrary-size DFT with the precomputed
// chirp and kernel transform; only the a-sequence is transformed per
// call (the b-side is baked into the plan).
func (p *FFTPlan) bluestein(x []complex128) error {
	n, m := p.n, p.m
	a := p.scratch(m)
	defer p.release(a)
	for k := 0; k < n; k++ {
		a[k] = x[k] * p.chirp[k]
	}
	for k := n; k < m; k++ {
		a[k] = 0
	}
	p.sub.transform(a)
	for i := range a {
		a[i] *= p.bfft[i]
	}
	// Inverse transform of the product, inlined over the sub-plan.
	for i := range a {
		a[i] = cmplx.Conj(a[i])
	}
	p.sub.transform(a)
	inv := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		x[k] = cmplx.Conj(a[k]) * inv * p.chirp[k]
	}
	return nil
}

// RealHalfSpectrum computes the first half+1 bins (k = 0..n/2) of the
// DFT of a real signal using one complex transform of half the plan
// size: the even/odd samples are packed into complex pairs,
// transformed with the n/2 sub-plan, and unpacked with the standard
// split. out must have room for n/2+1 bins; samples beyond len(re)
// are treated as zero (zero padding up to Size). This is what halves
// PowerSpectrum's work relative to a full complex FFT.
func (p *FFTPlan) RealHalfSpectrum(re []float64, out []complex128) error {
	n := p.n
	if !IsPowerOfTwo(n) || n < 2 {
		return errors.New("dsp: real transform needs a power-of-two plan size >= 2")
	}
	if len(re) > n {
		return errors.New("dsp: input longer than plan size")
	}
	if len(out) < n/2+1 {
		return errors.New("dsp: output needs n/2+1 bins")
	}
	h := n / 2
	half, err := PlanFFT(h)
	if err != nil {
		return err
	}
	z := p.scratch(h)
	defer p.release(z)
	for j := 0; 2*j < len(re); j++ {
		even := re[2*j]
		odd := 0.0
		if 2*j+1 < len(re) {
			odd = re[2*j+1]
		}
		z[j] = complex(even, odd)
	}
	// Zero padding beyond the input (the scratch is pooled, not fresh).
	for j := (len(re) + 1) / 2; j < h; j++ {
		z[j] = 0
	}
	if h == 1 {
		// Size-1 transform is the identity.
	} else {
		half.transform(z)
	}
	// Unpack: X[k] = Ze[k] + W^k * Zo[k] with
	// Ze[k] = (Z[k] + conj(Z[h-k]))/2, Zo[k] = -i*(Z[k] - conj(Z[h-k]))/2.
	out[0] = complex(real(z[0])+imag(z[0]), 0)
	out[h] = complex(real(z[0])-imag(z[0]), 0)
	for k := 1; k < h; k++ {
		zk := z[k]
		zc := cmplx.Conj(z[h-k])
		ze := (zk + zc) * 0.5
		zo := (zk - zc) * complex(0, -0.5)
		out[k] = ze + p.twiddle[k]*zo
	}
	return nil
}
