package dsp

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// TestProminencesMatchWalk locks the batch prominence sweep to the
// reference per-peak walk on random signals (noise, plateaus, trends).
func TestProminencesMatchWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 16 + rng.Intn(400)
		x := make([]float64, n)
		for i := range x {
			switch trial % 3 {
			case 0:
				x[i] = rng.NormFloat64()
			case 1:
				// Quantized: forces plateaus and exact ties.
				x[i] = float64(rng.Intn(6))
			default:
				x[i] = math.Sin(float64(i)/7) + 0.3*rng.NormFloat64()
			}
		}
		peaks := FindPeaks(x, PeakOptions{})
		for _, p := range peaks {
			want := prominence(x, p.Index)
			if p.Prominence != want {
				t.Fatalf("trial %d: peak at %d: batch prominence %v, walk %v", trial, p.Index, p.Prominence, want)
			}
		}
	}
}

// TestPreambleExtremaMatchesLists locks the lazy A/B/C anchor scan to
// the reference list-based selection on random signals.
func TestPreambleExtremaMatchesLists(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		n := 8 + rng.Intn(600)
		x := make([]float64, n)
		for i := range x {
			switch trial % 4 {
			case 0:
				x[i] = rng.NormFloat64()
			case 1:
				x[i] = float64(rng.Intn(5)) // plateaus and ties
			case 2:
				x[i] = 10*math.Sin(float64(i)/11) + rng.NormFloat64()
			default:
				x[i] = float64(i%37) + 0.1*rng.NormFloat64() // sawtooth: long walks
			}
		}
		minProm := []float64{0, 0.5, 2, 8}[trial%4]
		gotA, gotB, gotC, gotOK := PreambleExtrema(x, minProm)

		peaks := FindPeaks(x, PeakOptions{MinProminence: minProm})
		valleys := FindValleys(x, PeakOptions{MinProminence: minProm})
		var wantA, wantB, wantC Peak
		wantOK := false
		if len(peaks) >= 1 {
			wantA = peaks[0]
			for _, v := range valleys {
				if v.Index > wantA.Index {
					wantB = v
					wantOK = true
					break
				}
			}
			if wantOK {
				wantOK = false
				for _, p := range peaks {
					if p.Index > wantB.Index {
						wantC = p
						wantOK = true
						break
					}
				}
			}
		}
		if gotOK != wantOK {
			t.Fatalf("trial %d: ok=%v want %v", trial, gotOK, wantOK)
		}
		if !gotOK {
			continue
		}
		// Prominence of the lazy anchors is unspecified (the
		// qualification walk stops early); indices and values must
		// match the list-based selection exactly.
		same := func(g, w Peak) bool { return g.Index == w.Index && g.Value == w.Value }
		if !same(gotA, wantA) || !same(gotB, wantB) || !same(gotC, wantC) {
			t.Fatalf("trial %d: anchors (%+v,%+v,%+v) want (%+v,%+v,%+v)",
				trial, gotA, gotB, gotC, wantA, wantB, wantC)
		}
	}
}

// TestDTWBandedMatchesExactWithinBand: when the optimal unconstrained
// path stays inside the Sakoe-Chiba band, the banded computation must
// return the exact distance.
func TestDTWBandedMatchesExactWithinBand(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 32 + rng.Intn(160)
		a := make([]float64, n)
		b := make([]float64, n)
		// Near-diagonal alignment: b is a mildly warped copy of a, so
		// the optimal path deviates only a little from the diagonal.
		for i := range a {
			a[i] = math.Sin(float64(i)/9) + 0.05*rng.NormFloat64()
		}
		for j := range b {
			src := float64(j) + 2*math.Sin(float64(j)/25)
			k := int(src)
			if k < 0 {
				k = 0
			}
			if k >= n {
				k = n - 1
			}
			b[j] = a[k]
		}
		exact, err := DTW(a, b)
		if err != nil {
			t.Fatal(err)
		}
		// A band wide enough to contain any path: window = n makes the
		// band cover the full matrix, so it must equal the exact
		// distance bit for bit.
		full, err := DTWWith(a, b, DTWOptions{Window: n})
		if err != nil {
			t.Fatal(err)
		}
		if full != exact {
			t.Fatalf("trial %d: full-width band %v != exact %v", trial, full, exact)
		}
		// The warp deviates by at most ~3 samples; a window of 8 must
		// still contain the optimal path.
		banded, err := DTWWith(a, b, DTWOptions{Window: 8})
		if err != nil {
			t.Fatal(err)
		}
		if banded != exact {
			t.Fatalf("trial %d: banded %v != exact %v", trial, banded, exact)
		}
	}
}

// TestDTWBandedFallbackOutsideBand: when the optimal path needs to
// leave the band, the banded distance must still be a valid (>=
// exact) alignment cost over band-constrained paths — never silently
// wrong, never below the unconstrained optimum.
func TestDTWBandedFallbackOutsideBand(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		n := 64 + rng.Intn(100)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		// b is a shifted by a large offset: the optimal path hugs an
		// off-diagonal stripe far outside a narrow band.
		shift := n / 3
		for j := range b {
			k := j + shift
			if k >= n {
				k = n - 1
			}
			b[j] = a[k]
		}
		exact, err := DTW(a, b)
		if err != nil {
			t.Fatal(err)
		}
		banded, err := DTWWith(a, b, DTWOptions{Window: 2})
		if err != nil {
			// A too-narrow band may have no finite path at all; that
			// is a correct, explicit failure — not a wrong distance.
			continue
		}
		if banded < exact {
			t.Fatalf("trial %d: banded distance %v below unconstrained optimum %v", trial, banded, exact)
		}
	}
}

// TestDTWEarlyAbandon: the cutoff must trigger exactly when the true
// distance exceeds it, and the returned lower bound must not exceed
// the true distance.
func TestDTWEarlyAbandon(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		n := 32 + rng.Intn(100)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		exact, err := DTW(a, b)
		if err != nil {
			t.Fatal(err)
		}
		// Cutoff above the true distance: must complete and match.
		got, err := DTWWith(a, b, DTWOptions{AbandonAbove: exact * 1.01})
		if err != nil {
			t.Fatalf("trial %d: abandoned below its own distance: %v", trial, err)
		}
		if got != exact {
			t.Fatalf("trial %d: distance %v != exact %v with loose cutoff", trial, got, exact)
		}
		// Cutoff far below: must abandon with a lower bound.
		lb, err := DTWWith(a, b, DTWOptions{AbandonAbove: exact * 0.1})
		if err == nil {
			t.Fatalf("trial %d: expected abandonment below cutoff", trial)
		}
		if lb > exact {
			t.Fatalf("trial %d: abandoned lower bound %v above exact %v", trial, lb, exact)
		}
	}
}

// TestFFTPlanConcurrent hammers the shared plan cache and one shared
// plan from many goroutines; run under -race it proves plan reuse is
// safe (immutable tables, pooled scratch).
func TestFFTPlanConcurrent(t *testing.T) {
	sizes := []int{8, 60, 128, 100, 256, 37}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for iter := 0; iter < 50; iter++ {
				n := sizes[iter%len(sizes)]
				p, err := PlanFFT(n)
				if err != nil {
					t.Error(err)
					return
				}
				x := make([]complex128, n)
				for i := range x {
					x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
				}
				orig := append([]complex128(nil), x...)
				if err := p.Transform(x); err != nil {
					t.Error(err)
					return
				}
				if err := p.Inverse(x); err != nil {
					t.Error(err)
					return
				}
				for i := range x {
					if d := x[i] - orig[i]; math.Hypot(real(d), imag(d)) > 1e-9 {
						t.Errorf("size %d: round trip diverged at %d", n, i)
						return
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

// TestRealHalfSpectrumMatchesComplexFFT compares the packed real
// transform against the full complex FFT bin by bin.
func TestRealHalfSpectrumMatchesComplexFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{2, 4, 8, 64, 256, 1024} {
		for _, inLen := range []int{n, n / 2, n - 1} {
			if inLen < 1 {
				continue
			}
			re := make([]float64, inLen)
			for i := range re {
				re[i] = rng.NormFloat64()
			}
			p, err := PlanFFT(n)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]complex128, n/2+1)
			if err := p.RealHalfSpectrum(re, got); err != nil {
				t.Fatal(err)
			}
			full := make([]complex128, n)
			for i, v := range re {
				full[i] = complex(v, 0)
			}
			if err := FFT(full); err != nil {
				t.Fatal(err)
			}
			for k := 0; k <= n/2; k++ {
				d := got[k] - full[k]
				if math.Hypot(real(d), imag(d)) > 1e-9*(1+math.Hypot(real(full[k]), imag(full[k]))) {
					t.Fatalf("n=%d inLen=%d bin %d: real path %v, complex %v", n, inLen, k, got[k], full[k])
				}
			}
		}
	}
}

// BenchmarkDTWKernel isolates the classifier-shaped DTW call (256
// points, unconstrained) from the simulation around it.
func BenchmarkDTWKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 256)
	c := make([]float64, 256)
	for i := range a {
		a[i] = rng.NormFloat64()
		c[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DTW(a, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDTWKernelBanded is the same call under a Sakoe-Chiba band
// of 16 — the O(n*w) path.
func BenchmarkDTWKernelBanded(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 256)
	c := make([]float64, 256)
	for i := range a {
		a[i] = rng.NormFloat64()
		c[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DTWWith(a, c, DTWOptions{Window: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPowerSpectrumKernel isolates the plan-cached real-input
// spectrum on a collision-sized trace.
func BenchmarkPowerSpectrumKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 20000)
	for i := range x {
		x[i] = 100 + 10*math.Sin(float64(i)/50) + rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PowerSpectrum(x, 1000, HannWindow); err != nil {
			b.Fatal(err)
		}
	}
}
