package dsp

import (
	"errors"
	"math"
	"sort"
)

// MovingAverage returns the centered moving average of x with the
// given window size (clamped at the edges). window <= 1 returns a
// copy of x.
func MovingAverage(x []float64, window int) []float64 {
	var s Smoother
	return s.MovingAverage(nil, x, window)
}

// Smoother computes repeated centered moving averages while reusing
// caller-held buffers; results are bit-identical to MovingAverage.
// The zero value is ready to use. Not safe for concurrent use.
type Smoother struct {
	prefix []float64
}

// MovingAverage writes the centered moving average of x (window
// clamped at the edges) into dst, growing it as needed, and returns
// it. dst must not alias x.
func (s *Smoother) MovingAverage(dst, x []float64, window int) []float64 {
	if cap(dst) < len(x) {
		dst = make([]float64, len(x))
	} else {
		dst = dst[:len(x)]
	}
	if window <= 1 {
		copy(dst, x)
		return dst
	}
	half := window / 2
	// Prefix sums for O(n) evaluation.
	if cap(s.prefix) < len(x)+1 {
		s.prefix = make([]float64, len(x)+1)
	}
	prefix := s.prefix[:len(x)+1]
	prefix[0] = 0
	for i, v := range x {
		prefix[i+1] = prefix[i] + v
	}
	for i := range x {
		lo := max(0, i-half)
		hi := min(len(x)-1, i+half)
		dst[i] = (prefix[hi+1] - prefix[lo]) / float64(hi-lo+1)
	}
	return dst
}

// MedianFilter returns the sliding median of x with the given odd
// window size (clamped at the edges). It removes impulsive outliers
// (e.g. specular glints) without smearing symbol edges the way a
// moving average does.
func MedianFilter(x []float64, window int) []float64 {
	out := make([]float64, len(x))
	if window <= 1 {
		copy(out, x)
		return out
	}
	half := window / 2
	buf := make([]float64, 0, window)
	for i := range x {
		lo := max(0, i-half)
		hi := min(len(x)-1, i+half)
		buf = buf[:0]
		buf = append(buf, x[lo:hi+1]...)
		sort.Float64s(buf)
		m := len(buf)
		if m%2 == 1 {
			out[i] = buf[m/2]
		} else {
			out[i] = 0.5 * (buf[m/2-1] + buf[m/2])
		}
	}
	return out
}

// ExponentialMA returns the exponential moving average of x with
// smoothing factor alpha in (0, 1]; larger alpha tracks faster.
func ExponentialMA(x []float64, alpha float64) []float64 {
	out := make([]float64, len(x))
	if len(x) == 0 {
		return out
	}
	alpha = Clamp01(alpha)
	out[0] = x[0]
	for i := 1; i < len(x); i++ {
		out[i] = alpha*x[i] + (1-alpha)*out[i-1]
	}
	return out
}

// Clamp01 limits v to [0, 1].
func Clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// FirstOrderLowpass models an RC low-pass with the given cutoff
// frequency, applied to samples at rate fs. The photodiode and RX-LED
// response times are modeled with this filter: a slow receiver cannot
// follow fast reflectance changes, which bounds the maximal supported
// object speed (paper Sec. 6, future work (3)).
type FirstOrderLowpass struct {
	alpha float64
	state float64
	init  bool
}

// NewFirstOrderLowpass builds the filter. cutoffHz <= 0 disables
// filtering (unity passthrough).
func NewFirstOrderLowpass(cutoffHz, fs float64) *FirstOrderLowpass {
	f := &FirstOrderLowpass{alpha: 1}
	if cutoffHz > 0 && fs > 0 {
		rc := 1 / (2 * math.Pi * cutoffHz)
		dt := 1 / fs
		f.alpha = dt / (rc + dt)
	}
	return f
}

// Step feeds one sample and returns the filtered value.
func (f *FirstOrderLowpass) Step(x float64) float64 {
	if !f.init {
		f.state = x
		f.init = true
		return x
	}
	f.state += f.alpha * (x - f.state)
	return f.state
}

// Reset clears the filter state.
func (f *FirstOrderLowpass) Reset() { f.init = false; f.state = 0 }

// Apply filters a whole slice, returning a new slice. The internal
// state is reset first.
func (f *FirstOrderLowpass) Apply(x []float64) []float64 {
	f.Reset()
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = f.Step(v)
	}
	return out
}

// Biquad is a direct-form-I second-order IIR section.
type Biquad struct {
	b0, b1, b2, a1, a2 float64
	x1, x2, y1, y2     float64
}

// NewLowpassBiquad designs a Butterworth-style low-pass biquad with
// cutoff f0 at sample rate fs and quality factor q (0.7071 for a
// maximally flat response).
func NewLowpassBiquad(f0, fs, q float64) (*Biquad, error) {
	if f0 <= 0 || fs <= 0 || f0 >= fs/2 {
		return nil, errors.New("dsp: biquad cutoff must be in (0, fs/2)")
	}
	if q <= 0 {
		q = math.Sqrt2 / 2
	}
	w0 := 2 * math.Pi * f0 / fs
	alpha := math.Sin(w0) / (2 * q)
	cosw := math.Cos(w0)
	a0 := 1 + alpha
	return &Biquad{
		b0: (1 - cosw) / 2 / a0,
		b1: (1 - cosw) / a0,
		b2: (1 - cosw) / 2 / a0,
		a1: -2 * cosw / a0,
		a2: (1 - alpha) / a0,
	}, nil
}

// NewHighpassBiquad designs a high-pass biquad (used to strip the DC
// ambient level before spectral analysis).
func NewHighpassBiquad(f0, fs, q float64) (*Biquad, error) {
	if f0 <= 0 || fs <= 0 || f0 >= fs/2 {
		return nil, errors.New("dsp: biquad cutoff must be in (0, fs/2)")
	}
	if q <= 0 {
		q = math.Sqrt2 / 2
	}
	w0 := 2 * math.Pi * f0 / fs
	alpha := math.Sin(w0) / (2 * q)
	cosw := math.Cos(w0)
	a0 := 1 + alpha
	return &Biquad{
		b0: (1 + cosw) / 2 / a0,
		b1: -(1 + cosw) / a0,
		b2: (1 + cosw) / 2 / a0,
		a1: -2 * cosw / a0,
		a2: (1 - alpha) / a0,
	}, nil
}

// Step feeds one sample through the section.
func (b *Biquad) Step(x float64) float64 {
	y := b.b0*x + b.b1*b.x1 + b.b2*b.x2 - b.a1*b.y1 - b.a2*b.y2
	b.x2, b.x1 = b.x1, x
	b.y2, b.y1 = b.y1, y
	return y
}

// Apply filters a whole slice with fresh state.
func (b *Biquad) Apply(x []float64) []float64 {
	b.x1, b.x2, b.y1, b.y2 = 0, 0, 0, 0
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = b.Step(v)
	}
	return out
}

// Convolve returns the full linear convolution of x and kernel
// (length len(x)+len(kernel)-1).
func Convolve(x, kernel []float64) []float64 {
	if len(x) == 0 || len(kernel) == 0 {
		return nil
	}
	out := make([]float64, len(x)+len(kernel)-1)
	for i, xv := range x {
		for j, kv := range kernel {
			out[i+j] += xv * kv
		}
	}
	return out
}

// ConvolveSame returns the "same"-size convolution: the central
// len(x) samples of the full convolution, aligned so that a symmetric
// kernel does not shift the signal.
func ConvolveSame(x, kernel []float64) []float64 {
	full := Convolve(x, kernel)
	if full == nil {
		return nil
	}
	start := (len(kernel) - 1) / 2
	out := make([]float64, len(x))
	copy(out, full[start:start+len(x)])
	return out
}

// SincLowpassKernel designs a windowed-sinc FIR low-pass kernel with
// the given normalized cutoff (cycles/sample, in (0, 0.5)) and odd
// length. The kernel is Hann-windowed and normalized to unit DC gain.
func SincLowpassKernel(cutoff float64, length int) ([]float64, error) {
	if cutoff <= 0 || cutoff >= 0.5 {
		return nil, errors.New("dsp: normalized cutoff must be in (0, 0.5)")
	}
	if length < 3 || length%2 == 0 {
		return nil, errors.New("dsp: kernel length must be odd and >= 3")
	}
	mid := length / 2
	k := make([]float64, length)
	var sum float64
	for i := range k {
		n := float64(i - mid)
		var s float64
		if n == 0 {
			s = 2 * cutoff
		} else {
			s = math.Sin(2*math.Pi*cutoff*n) / (math.Pi * n)
		}
		w := 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(length-1)))
		k[i] = s * w
		sum += k[i]
	}
	for i := range k {
		k[i] /= sum
	}
	return k, nil
}
