package dsp

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum float64
	for _, v := range x {
		sum += v
	}
	return sum / float64(len(x))
}

// Variance returns the population variance of x.
func Variance(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	var sum float64
	for _, v := range x {
		d := v - m
		sum += d * d
	}
	return sum / float64(len(x))
}

// Std returns the population standard deviation of x.
func Std(x []float64) float64 { return math.Sqrt(Variance(x)) }

// RMS returns the root-mean-square of x.
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum float64
	for _, v := range x {
		sum += v * v
	}
	return math.Sqrt(sum / float64(len(x)))
}

// MinMax returns the minimum and maximum of x. Empty input yields
// (0, 0).
func MinMax(x []float64) (lo, hi float64) {
	if len(x) == 0 {
		return 0, 0
	}
	lo, hi = x[0], x[0]
	for _, v := range x[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// ArgMax returns the index of the maximum of x (-1 for empty input).
func ArgMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i, v := range x {
		if v > x[best] {
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the minimum of x (-1 for empty input).
func ArgMin(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i, v := range x {
		if v < x[best] {
			best = i
		}
	}
	return best
}

// Quantile returns the q-quantile (q in [0,1]) of x using linear
// interpolation between order statistics. x is not modified.
func Quantile(x []float64, q float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := make([]float64, len(x))
	copy(s, x)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// NormalizeMinMax scales x into [0, 1]. A constant signal maps to all
// zeros. This matches the "Normalized RSS" axis of the paper's
// figures.
func NormalizeMinMax(x []float64) []float64 {
	out := make([]float64, len(x))
	lo, hi := MinMax(x)
	if hi == lo {
		return out
	}
	inv := 1 / (hi - lo)
	for i, v := range x {
		out[i] = (v - lo) * inv
	}
	return out
}

// NormalizeZScore returns (x - mean) / std; a constant signal maps to
// all zeros.
func NormalizeZScore(x []float64) []float64 {
	out := make([]float64, len(x))
	m, s := Mean(x), Std(x)
	if s == 0 {
		return out
	}
	for i, v := range x {
		out[i] = (v - m) / s
	}
	return out
}

// CrossCorrelation returns the (non-normalized) cross-correlation of x
// and template at each lag in [0, len(x)-len(template)]. Used for
// matched-filter style preamble search experiments.
func CrossCorrelation(x, template []float64) []float64 {
	n, m := len(x), len(template)
	if n == 0 || m == 0 || m > n {
		return nil
	}
	out := make([]float64, n-m+1)
	for lag := range out {
		var sum float64
		for j, t := range template {
			sum += x[lag+j] * t
		}
		out[lag] = sum
	}
	return out
}

// AutoCorrelation returns the biased autocorrelation of x for lags
// 0..maxLag (inclusive), normalized so lag 0 equals 1 (unless the
// signal is all zeros). Useful for estimating the dominant symbol
// period of a packet.
func AutoCorrelation(x []float64, maxLag int) []float64 {
	n := len(x)
	if n == 0 || maxLag < 0 {
		return nil
	}
	if maxLag >= n {
		maxLag = n - 1
	}
	m := Mean(x)
	c := make([]float64, maxLag+1)
	for lag := 0; lag <= maxLag; lag++ {
		var sum float64
		for i := 0; i+lag < n; i++ {
			sum += (x[i] - m) * (x[i+lag] - m)
		}
		c[lag] = sum / float64(n)
	}
	if c[0] != 0 {
		inv := 1 / c[0]
		for i := range c {
			c[i] *= inv
		}
	}
	return c
}

// ResampleLinear resamples x from its implicit uniform grid to a new
// length using linear interpolation. newLen <= 0 returns nil; length-1
// inputs are extended by repetition.
func ResampleLinear(x []float64, newLen int) []float64 {
	if newLen <= 0 || len(x) == 0 {
		return nil
	}
	out := make([]float64, newLen)
	if len(x) == 1 {
		for i := range out {
			out[i] = x[0]
		}
		return out
	}
	if newLen == 1 {
		out[0] = x[0]
		return out
	}
	scale := float64(len(x)-1) / float64(newLen-1)
	for i := range out {
		pos := float64(i) * scale
		lo := int(pos)
		if lo >= len(x)-1 {
			out[i] = x[len(x)-1]
			continue
		}
		frac := pos - float64(lo)
		out[i] = x[lo]*(1-frac) + x[lo+1]*frac
	}
	return out
}

// Decimate keeps every factor-th sample of x (factor >= 1), applying a
// moving-average anti-alias prefilter of the same width.
func Decimate(x []float64, factor int) []float64 {
	if factor <= 1 {
		out := make([]float64, len(x))
		copy(out, x)
		return out
	}
	smooth := MovingAverage(x, factor)
	out := make([]float64, 0, len(x)/factor+1)
	for i := 0; i < len(smooth); i += factor {
		out = append(out, smooth[i])
	}
	return out
}

// Envelope returns the amplitude envelope of x: full-wave rectify
// around the mean, then low-pass with a moving average of the given
// window.
func Envelope(x []float64, window int) []float64 {
	m := Mean(x)
	rect := make([]float64, len(x))
	for i, v := range x {
		rect[i] = math.Abs(v - m)
	}
	return MovingAverage(rect, window)
}

// HannWindow is a window function for PowerSpectrum.
func HannWindow(n, i int) float64 {
	if n <= 1 {
		return 1
	}
	return 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
}

// HammingWindow is a window function for PowerSpectrum.
func HammingWindow(n, i int) float64 {
	if n <= 1 {
		return 1
	}
	return 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n-1))
}

// LinearFit fits y = a + b*x by least squares and returns (a, b).
// Degenerate inputs return (0, 0).
func LinearFit(x, y []float64) (a, b float64) {
	n := min(len(x), len(y))
	if n < 2 {
		return 0, 0
	}
	var sx, sy, sxx, sxy float64
	for i := 0; i < n; i++ {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	if den == 0 {
		return sy / fn, 0
	}
	b = (fn*sxy - sx*sy) / den
	a = (sy - b*sx) / fn
	return a, b
}

// ExpFit fits y = A*exp(b*x) by linear regression on log(y); points
// with y <= 0 are skipped. Returns (A, b). Fewer than two usable
// points return (0, 0).
func ExpFit(x, y []float64) (A, b float64) {
	var xs, ys []float64
	for i := 0; i < min(len(x), len(y)); i++ {
		if y[i] > 0 {
			xs = append(xs, x[i])
			ys = append(ys, math.Log(y[i]))
		}
	}
	if len(xs) < 2 {
		return 0, 0
	}
	la, lb := LinearFit(xs, ys)
	return math.Exp(la), lb
}

// RSquared returns the coefficient of determination of predictions
// yhat against observations y.
func RSquared(y, yhat []float64) float64 {
	n := min(len(y), len(yhat))
	if n == 0 {
		return 0
	}
	m := Mean(y[:n])
	var ssRes, ssTot float64
	for i := 0; i < n; i++ {
		d := y[i] - yhat[i]
		ssRes += d * d
		t := y[i] - m
		ssTot += t * t
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}
