package cluster

import (
	"net"
	"sync/atomic"
	"time"

	"passivelight/internal/rxnet"
)

// Router peering: the replicated routing tier. Each router dials its
// peers and pushes its active ring as RingUpdate frames — on connect,
// on every membership change, and on a periodic keepalive — over the
// same wire protocol engines already speak. Incoming updates converge
// with three rules, no external coordinator:
//
//   - Higher remote epoch: adopt the peer's ring wholesale. Members
//     that vanish fail their routes over to survivors (the peer knows
//     something we don't — usually that we just restarted).
//   - Equal epochs, different member sets: union WITHOUT an epoch
//     bump. Concurrent admissions on both routers merge; an address
//     conflict resolves to the lexicographically greater address so
//     both sides pick the same winner. Union is commutative and
//     idempotent, so mutual pushes settle in one round trip.
//   - Lower remote epoch: ignore. Our own keepalive push heals the
//     stale peer.
//
// The merge is eventually consistent, not linearizable: an equal-epoch
// union can resurrect an engine one router just evicted (the two
// histories diverged). That is self-healing by design — a truly dead
// engine fails its next dial and the janitor re-evicts it after
// DeadEngineTimeout, while a live one was being wrongly evicted and
// its keepalive hello re-admits it anyway.

// peerKeepAlive paces unconditional ring pushes on a healthy peer
// link. It must sit well below serveConn's 2-minute read deadline on
// the receiving router, or an idle link would be cut between pushes.
const peerKeepAlive = 15 * time.Second

// peerLink is this router's outbound half of one peer connection.
// kick (capacity 1, level-triggered) coalesces push requests.
type peerLink struct {
	addr      string
	kick      chan struct{}
	connected atomic.Bool
}

// AddPeer registers a router replica and starts its link. Safe before
// or after Listen (RouterConfig.Peers calls it from Listen; in-process
// tests call it once both routers have bound ephemeral ports).
// Idempotent per address.
func (r *Router) AddPeer(addr string) {
	if addr == "" {
		return
	}
	r.mu.Lock()
	if _, ok := r.peers[addr]; ok {
		r.mu.Unlock()
		return
	}
	pl := &peerLink{addr: addr, kick: make(chan struct{}, 1)}
	r.peers[addr] = pl
	r.mu.Unlock()
	r.wg.Add(1)
	go r.peerLoop(pl)
}

// kickPeers nudges every peer link to push the current ring now.
// Non-blocking; a push already pending absorbs the kick.
func (r *Router) kickPeers() {
	r.mu.Lock()
	links := make([]*peerLink, 0, len(r.peers))
	for _, pl := range r.peers {
		links = append(links, pl)
	}
	r.mu.Unlock()
	for _, pl := range links {
		select {
		case pl.kick <- struct{}{}:
		default:
		}
	}
}

// ringUpdateBody marshals the active ring for a peer push.
func (r *Router) ringUpdateBody() ([]byte, error) {
	r.mu.Lock()
	ru := rxnet.RingUpdate{Epoch: r.ring.Epoch()}
	for _, m := range r.ring.Members() {
		ru.Members = append(ru.Members, rxnet.RingMember{ID: m.ID, Addr: m.Addr})
	}
	r.mu.Unlock()
	return rxnet.MarshalRingUpdate(ru)
}

// peerLoop maintains one peer link for the router's lifetime: dial
// with the upstream backoff policy, push the ring on connect, then on
// every kick and every peerKeepAlive, redialing when a write fails.
func (r *Router) peerLoop(pl *peerLink) {
	defer r.wg.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	attempt := 0
	tick := time.NewTicker(peerKeepAlive)
	defer tick.Stop()
	for {
		select {
		case <-r.closed:
			return
		default:
		}
		if conn == nil {
			c, err := net.DialTimeout("tcp", pl.addr, r.cfg.DialTimeout)
			if err != nil {
				attempt++
				select {
				case <-time.After(r.backoff().Delay(attempt)):
				case <-r.closed:
					return
				}
				continue
			}
			conn = c
			attempt = 0
			pl.connected.Store(true)
			r.logf("cluster: router peer %s connected", pl.addr)
		}
		body, err := r.ringUpdateBody()
		if err != nil {
			// Marshal failure (e.g. a ring past MaxRingMembers) is a
			// config problem, not a link problem; keep the link up.
			r.logf("cluster: peer ring update: %v", err)
		} else {
			conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
			if err := rxnet.WriteFrame(conn, rxnet.FrameRingUpdate, body); err != nil {
				r.logf("cluster: router peer %s write: %v; redialing", pl.addr, err)
				conn.Close()
				conn = nil
				pl.connected.Store(false)
				continue
			}
		}
		select {
		case <-r.closed:
			return
		case <-pl.kick:
		case <-tick.C:
		}
	}
}

// reconcileUpsLocked aligns the upstream table with the active ring:
// new members get fresh upstreams, moved members get fresh upstreams
// with their old connection queued for closing, departed members
// leave the table. Returns the stale upstreams to close outside r.mu
// and the departed member IDs (whose routes must fail over). Callers
// hold r.mu.
func (r *Router) reconcileUpsLocked() (stale []*upstream, removed map[string]bool) {
	keep := make(map[string]bool, r.ring.Len())
	for _, m := range r.ring.Members() {
		keep[m.ID] = true
		up := r.ups[m.ID]
		switch {
		case up == nil:
			r.ups[m.ID] = &upstream{id: m.ID, addr: m.Addr}
		case up.addr != m.Addr:
			stale = append(stale, up)
			r.ups[m.ID] = &upstream{id: m.ID, addr: m.Addr}
		}
	}
	removed = make(map[string]bool)
	for id, up := range r.ups {
		if !keep[id] {
			stale = append(stale, up)
			removed[id] = true
			delete(r.ups, id)
		}
	}
	return stale, removed
}

// applyPeerUpdate converges this router's membership with a ring
// pushed by a peer, per the rules at the top of this file.
func (r *Router) applyPeerUpdate(ru rxnet.RingUpdate) {
	r.peerUpdates.Add(1)
	members := make([]Member, 0, len(ru.Members))
	for _, m := range ru.Members {
		members = append(members, Member{ID: m.ID, Addr: m.Addr})
	}
	var stale []*upstream
	var removed map[string]bool
	changed := false
	r.mu.Lock()
	local := r.ring.Epoch()
	switch {
	case ru.Epoch > local:
		nr, err := NewRing(r.ring.VNodes(), members...)
		if err != nil {
			r.mu.Unlock()
			r.logf("cluster: peer ring epoch %d rejected: %v", ru.Epoch, err)
			return
		}
		nr.epoch = ru.Epoch
		r.ring = nr
		stale, removed = r.reconcileUpsLocked()
		changed = true
		r.logf("cluster: adopted peer ring epoch %d (%d members)", ru.Epoch, len(members))
	case ru.Epoch == local:
		// Union without a bump: both routers may have absorbed
		// different admissions at the same epoch. Same-package field
		// access keeps the merge a non-event for epoch observers.
		nr := r.ring.Clone()
		mutated := false
		for _, m := range members {
			found := false
			for i := range nr.members {
				if nr.members[i].ID == m.ID {
					found = true
					if nr.members[i].Addr != m.Addr && m.Addr > nr.members[i].Addr {
						nr.members[i].Addr = m.Addr
						mutated = true
					}
					break
				}
			}
			if !found && m.ID != "" {
				nr.members = append(nr.members, m)
				mutated = true
			}
		}
		if mutated {
			nr.rebuild()
			r.ring = nr
			stale, removed = r.reconcileUpsLocked()
			changed = true
			r.logf("cluster: merged peer ring at epoch %d (%d members)", local, nr.Len())
		}
	default:
		// Stale peer; the keepalive push heals it.
	}
	r.mu.Unlock()
	for _, up := range stale {
		up.wmu.Lock()
		if up.conn != nil {
			up.conn.Close()
			up.conn = nil
			up.connected.Store(false)
		}
		up.wmu.Unlock()
	}
	if len(removed) > 0 {
		r.failOverRoutes(removed)
	}
	if changed {
		r.kickPeers()
	}
}
