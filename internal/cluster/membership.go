package cluster

import (
	"context"
	"net"
	"sync"
	"time"

	"passivelight/internal/rxnet"
)

// JoinConfig tunes an engine's membership loop (Join).
type JoinConfig struct {
	// Backoff paces reconnects to an unreachable router.
	Backoff rxnet.Backoff
	// KeepAlive is the re-hello interval on a healthy connection; the
	// periodic EngineHello doubles as a liveness signal and re-admits
	// the engine if the router evicted it (or restarted) meanwhile.
	// Zero selects 30 s.
	KeepAlive time.Duration
	// Logf receives diagnostics; nil silences them.
	Logf func(format string, args ...any)
	// OnRing, if set, receives every RingUpdate the router acks a
	// hello with. Called from the join goroutine; keep it fast.
	OnRing func(rxnet.RingUpdate)
}

// Join announces an engine to a router and keeps the membership
// alive: it dials routerAddr, sends EngineHello{ID: id, Addr: addr},
// reads the RingUpdate ack, and re-hellos every KeepAlive. Connection
// failures redial with capped exponential backoff, so an engine may
// start before its router, and a router restart (which forgets
// auto-admitted members) heals at the next keepalive. The engine
// keeps serving its chunk-ingest listener throughout — Join is purely
// the control-plane side of self-registration.
//
// The returned stop function tears the loop down and waits for it.
func Join(ctx context.Context, routerAddr, id, addr string, cfg JoinConfig) (stop func(), err error) {
	if cfg.KeepAlive <= 0 {
		cfg.KeepAlive = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	helloBody, err := rxnet.MarshalEngineHello(rxnet.EngineHello{ID: id, Addr: addr})
	if err != nil {
		return nil, err
	}
	jctx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		joinLoop(jctx, routerAddr, id, helloBody, cfg)
	}()
	return func() {
		cancel()
		wg.Wait()
	}, nil
}

// joinLoop runs one engine's registration: connect, hello, keepalive,
// reconnect on failure — forever, until the context ends.
func joinLoop(ctx context.Context, routerAddr, id string, helloBody []byte, cfg JoinConfig) {
	attempt := 0
	for {
		if ctx.Err() != nil {
			return
		}
		conn, err := dialJoin(ctx, routerAddr, helloBody, cfg)
		if err != nil {
			attempt++
			delay := cfg.Backoff.Delay(attempt)
			cfg.Logf("cluster: engine %s join %s: %v (retry in %v)", id, routerAddr, err, delay)
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return
			}
			continue
		}
		if attempt > 0 {
			cfg.Logf("cluster: engine %s rejoined router %s", id, routerAddr)
		}
		attempt = 0
		err = keepAlive(ctx, conn, helloBody, cfg)
		conn.Close()
		if ctx.Err() != nil {
			return
		}
		cfg.Logf("cluster: engine %s join connection lost: %v", id, err)
	}
}

// dialJoin makes one connection attempt: dial, hello, ring ack.
func dialJoin(ctx context.Context, routerAddr string, helloBody []byte, cfg JoinConfig) (net.Conn, error) {
	var d net.Dialer
	dctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	conn, err := d.DialContext(dctx, "tcp", routerAddr)
	if err != nil {
		return nil, err
	}
	if err := sendHello(conn, helloBody, cfg); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// sendHello writes one EngineHello and consumes the RingUpdate ack.
func sendHello(conn net.Conn, helloBody []byte, cfg JoinConfig) error {
	if err := conn.SetWriteDeadline(time.Now().Add(10 * time.Second)); err != nil {
		return err
	}
	if err := rxnet.WriteFrame(conn, rxnet.FrameEngineHello, helloBody); err != nil {
		return err
	}
	if err := conn.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
		return err
	}
	t, body, err := rxnet.ReadFrame(conn)
	if err != nil {
		return err
	}
	if t != rxnet.FrameRingUpdate {
		cfg.Logf("cluster: unexpected join ack frame type %d", t)
		return nil
	}
	ru, err := rxnet.UnmarshalRingUpdate(body)
	if err != nil {
		return err
	}
	if cfg.OnRing != nil {
		cfg.OnRing(ru)
	}
	return nil
}

// keepAlive re-hellos on a healthy connection until it fails or the
// context ends.
func keepAlive(ctx context.Context, conn net.Conn, helloBody []byte, cfg JoinConfig) error {
	tick := time.NewTicker(cfg.KeepAlive)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
			if err := sendHello(conn, helloBody, cfg); err != nil {
				return err
			}
		}
	}
}
