package cluster

import (
	"encoding/json"
	"fmt"
	"testing"
)

func mustRing(t *testing.T, vnodes int, ids ...string) *Ring {
	t.Helper()
	members := make([]Member, len(ids))
	for i, id := range ids {
		members[i] = Member{ID: id, Addr: "127.0.0.1:" + id}
	}
	r, err := NewRing(vnodes, members...)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	return r
}

// Ownership is a pure function of the member set: two rings built
// from the same members agree on every key, regardless of member
// order, and a JSON round-trip preserves the layout exactly.
func TestRingDeterminism(t *testing.T) {
	a := mustRing(t, 0, "engine-1", "engine-2", "engine-3")
	b := mustRing(t, 0, "engine-3", "engine-1", "engine-2") // permuted

	blob, err := json.Marshal(a)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var c Ring
	if err := json.Unmarshal(blob, &c); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if c.Epoch() != a.Epoch() || c.VNodes() != a.VNodes() || c.Len() != a.Len() {
		t.Fatalf("round-trip lost ring shape: %+v vs %+v", c, a)
	}

	for key := uint64(0); key < 10000; key++ {
		oa, ok := a.Owner(key)
		if !ok {
			t.Fatalf("key %d: no owner on a populated ring", key)
		}
		if ob, _ := b.Owner(key); ob.ID != oa.ID {
			t.Fatalf("key %d: member order changed ownership: %q vs %q", key, oa.ID, ob.ID)
		}
		if oc, _ := c.Owner(key); oc.ID != oa.ID {
			t.Fatalf("key %d: JSON round-trip changed ownership: %q vs %q", key, oa.ID, oc.ID)
		}
	}
}

// The load split across members stays near-uniform: with 128 vnodes
// no member of a 4-engine ring strays past ~2x of its fair share.
func TestRingBalance(t *testing.T) {
	r := mustRing(t, 0, "a", "b", "c", "d")
	counts := map[string]int{}
	const keys = 40000
	for key := uint64(0); key < keys; key++ {
		m, _ := r.Owner(key)
		counts[m.ID]++
	}
	fair := keys / 4
	for id, n := range counts {
		if n < fair/2 || n > fair*2 {
			t.Fatalf("member %q owns %d of %d keys (fair %d): imbalance too large", id, n, keys, fair)
		}
	}
}

// Adding one member to an N-ring moves only about 1/(N+1) of the
// keys — the consistent-hashing contract — and every moved key moves
// TO the new member, never between old ones.
func TestRingRebalanceMovesBoundedFraction(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		n := n
		t.Run(fmt.Sprintf("members=%d", n), func(t *testing.T) {
			ids := make([]string, n)
			for i := range ids {
				ids[i] = fmt.Sprintf("engine-%d", i)
			}
			before := mustRing(t, 0, ids...)
			after := mustRing(t, 0, ids...)
			if err := after.Add(Member{ID: "engine-new", Addr: "127.0.0.1:0"}); err != nil {
				t.Fatalf("Add: %v", err)
			}
			if after.Epoch() != before.Epoch()+1 {
				t.Fatalf("Add did not bump epoch: %d -> %d", before.Epoch(), after.Epoch())
			}
			const keys = 20000
			moved := 0
			for key := uint64(0); key < keys; key++ {
				ob, _ := before.Owner(key)
				oa, _ := after.Owner(key)
				if ob.ID == oa.ID {
					continue
				}
				moved++
				if oa.ID != "engine-new" {
					t.Fatalf("key %d moved between existing members (%q -> %q)", key, ob.ID, oa.ID)
				}
			}
			// Expect ~keys/(n+1); allow 1.7x slack for hash variance.
			bound := keys * 17 / ((n + 1) * 10)
			if moved > bound {
				t.Fatalf("adding 1 member to %d moved %d of %d keys (bound %d)", n, moved, keys, bound)
			}
			if moved == 0 {
				t.Fatal("adding a member moved nothing — new member owns no keys")
			}
		})
	}
}

// Remove + re-Add restores the exact prior ownership (IDs drive the
// layout), which is what lets a drained engine rejoin its slice after
// a rolling restart.
func TestRingRemoveRejoinRestoresOwnership(t *testing.T) {
	r := mustRing(t, 0, "a", "b", "c")
	want := map[uint64]string{}
	for key := uint64(0); key < 5000; key++ {
		m, _ := r.Owner(key)
		want[key] = m.ID
	}
	if !r.Remove("b") {
		t.Fatal("Remove(b) reported absent")
	}
	if r.Remove("b") {
		t.Fatal("second Remove(b) reported present")
	}
	movedToOthers := 0
	for key := uint64(0); key < 5000; key++ {
		m, ok := r.Owner(key)
		if !ok {
			t.Fatalf("key %d: no owner after remove", key)
		}
		if want[key] == "b" && m.ID != "b" {
			movedToOthers++
		} else if want[key] != "b" && m.ID != want[key] {
			t.Fatalf("key %d: removing b moved it between survivors (%q -> %q)", key, want[key], m.ID)
		}
	}
	if movedToOthers == 0 {
		t.Fatal("b owned nothing before removal")
	}
	if err := r.Add(Member{ID: "b", Addr: "127.0.0.1:b"}); err != nil {
		t.Fatalf("re-Add: %v", err)
	}
	for key := uint64(0); key < 5000; key++ {
		if m, _ := r.Owner(key); m.ID != want[key] {
			t.Fatalf("key %d: rejoin did not restore ownership (%q, want %q)", key, m.ID, want[key])
		}
	}
}

// OwnerAvoiding walks past avoided members and fails cleanly when
// everyone is avoided or the ring is empty.
func TestRingOwnerAvoiding(t *testing.T) {
	r := mustRing(t, 0, "a", "b")
	for key := uint64(0); key < 2000; key++ {
		m, ok := r.OwnerAvoiding(key, func(m Member) bool { return m.ID == "a" })
		if !ok || m.ID != "b" {
			t.Fatalf("key %d: avoiding a should own b, got %q ok=%v", key, m.ID, ok)
		}
	}
	if _, ok := r.OwnerAvoiding(1, func(Member) bool { return true }); ok {
		t.Fatal("avoiding everyone still returned an owner")
	}
	empty := mustRing(t, 0)
	if _, ok := empty.Owner(1); ok {
		t.Fatal("empty ring returned an owner")
	}
}

func TestRingRejectsDuplicateAndEmptyIDs(t *testing.T) {
	if _, err := NewRing(8, Member{ID: "x"}, Member{ID: "x"}); err == nil {
		t.Fatal("duplicate member IDs accepted")
	}
	if _, err := NewRing(8, Member{ID: ""}); err == nil {
		t.Fatal("empty member ID accepted")
	}
	r := mustRing(t, 8, "x")
	if err := r.Add(Member{ID: "x"}); err == nil {
		t.Fatal("Add duplicate accepted")
	}
}
