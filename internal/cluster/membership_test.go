package cluster

import (
	"context"
	"sync"
	"testing"
	"time"

	"passivelight/internal/rxnet"
)

// joinEngine runs the Join client for an engine sim against a router
// and tears it down with the test.
func joinEngine(t *testing.T, routerAddr string, e *engineSim) {
	t.Helper()
	stop, err := Join(context.Background(), routerAddr, e.id, e.l.Addr(), JoinConfig{
		KeepAlive: 50 * time.Millisecond,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatalf("join %s: %v", e.id, err)
	}
	t.Cleanup(stop)
}

// An empty-ring router fills its fleet purely from EngineHello
// announcements: engines join, streams route, and a restart on a new
// address follows the engine with no operator Rebalance.
func TestEngineAutoJoinLifecycle(t *testing.T) {
	a := startEngineSim(t, "engine-a")
	b := startEngineSim(t, "engine-b")
	r, addr := startRouter(t, RouterConfig{AutoAdmit: true})

	if got := r.Stats().Engines; got != 0 {
		t.Fatalf("fresh auto-admit router has %d engines, want 0", got)
	}
	joinEngine(t, addr, a)
	joinEngine(t, addr, b)
	waitFor(t, "both engines admitted", func() bool { return r.Stats().Engines == 2 })
	epochAfterJoin := r.Stats().Epoch
	if epochAfterJoin < 2 {
		t.Fatalf("epoch after two joins = %d, want >= 2", epochAfterJoin)
	}

	r.mu.Lock()
	ring := r.ring
	r.mu.Unlock()
	node := dialNode(t, addr, 7)
	used := map[uint32]bool{}
	sid := streamOwnedBy(t, ring, 7, "engine-a", used)
	session := uint64(7)<<32 | uint64(sid)
	samples := make([]float64, 50)
	if err := node.StreamChunk(sid, 1000, samples); err != nil {
		t.Fatalf("stream chunk: %v", err)
	}
	waitFor(t, "chunk on engine-a", func() bool { return a.samplesFor(session) == 50 })

	// engine-a "restarts" on a new port with the same identity: the
	// next hello refreshes the address in place. Ownership must not
	// move (IDs hash, addresses don't).
	a2 := startEngineSim(t, "engine-a")
	a.l.Close()
	joinEngine(t, addr, a2)
	waitFor(t, "address refresh", func() bool {
		r.mu.Lock()
		defer r.mu.Unlock()
		for _, m := range r.ring.Members() {
			if m.ID == "engine-a" && m.Addr == a2.l.Addr() {
				return true
			}
		}
		return false
	})
	if got := r.Stats().Engines; got != 2 {
		t.Fatalf("engines after restart = %d, want 2", got)
	}
	if err := node.StreamChunk(sid, 1000, samples); err != nil {
		t.Fatalf("stream chunk after restart: %v", err)
	}
	waitFor(t, "chunk on restarted engine-a", func() bool { return a2.samplesFor(session) == 50 })
}

// A NACK that arrives after the membership changed twice must replay
// on a current member, and a stale second NACK from the old owner is
// ignored.
func TestNackAfterRingChangedTwice(t *testing.T) {
	a := startEngineSim(t, "engine-a")
	b := startEngineSim(t, "engine-b")
	c := startEngineSim(t, "engine-c")
	ring := clusterRing(t, a)
	r, _ := startRouter(t, RouterConfig{Ring: ring, AutoAdmit: true})

	key := uint64(9)<<32 | uint64(4)
	samples := make([]float64, 25)
	for seq := uint32(1); seq <= 3; seq++ {
		body, err := rxnet.MarshalSampleChunk(rxnet.SampleChunk{
			NodeID: 9, StreamID: 4, Seq: seq,
			Fs: 1000, Start: uint64(seq-1) * 25, Samples: samples,
		})
		if err != nil {
			t.Fatalf("marshal chunk: %v", err)
		}
		r.forward(nil, key, seq, body, rxnet.FrameSampleChunk)
	}
	waitFor(t, "chunks on engine-a", func() bool { return a.samplesFor(key) == 75 })

	// Two membership changes while the stream is in flight.
	r.AdmitEngine(Member{ID: "engine-b", Addr: b.l.Addr()})
	r.AdmitEngine(Member{ID: "engine-c", Addr: c.l.Addr()})
	if got := r.Stats().Epoch; got != ring.Epoch()+2 {
		t.Fatalf("epoch after two admits = %d, want %d", got, ring.Epoch()+2)
	}

	r.handleNack(r.ups["engine-a"], rxnet.StreamNack{Session: key, LastSeq: 1})
	waitFor(t, "replay on a new member", func() bool {
		return b.samplesFor(key) == 50 || c.samplesFor(key) == 50
	})
	if got := a.samplesFor(key); got != 75 {
		t.Fatalf("engine-a samples = %d, want the pre-NACK 75", got)
	}

	// Stale NACK from the ex-owner: the stream already moved, so the
	// handoff count must not change.
	handoffs := r.handoffs.Load()
	r.handleNack(r.ups["engine-a"], rxnet.StreamNack{Session: key, LastSeq: 2})
	time.Sleep(20 * time.Millisecond)
	if got := r.handoffs.Load(); got != handoffs {
		t.Fatalf("stale NACK moved the stream (handoffs %d -> %d)", handoffs, got)
	}
}

// A flapping engine re-announcing itself must be idempotent: repeated
// identical hellos bump neither the epoch nor the join counter, and
// must never clear a draining flag.
func TestDuplicateEngineHelloIdempotent(t *testing.T) {
	a := startEngineSim(t, "engine-a")
	r, _ := startRouter(t, RouterConfig{AutoAdmit: true})

	m := Member{ID: "engine-a", Addr: a.l.Addr()}
	r.AdmitEngine(m)
	epoch, joins := r.Stats().Epoch, r.joins.Load()
	for i := 0; i < 10; i++ {
		r.AdmitEngine(m)
	}
	if got := r.Stats().Epoch; got != epoch {
		t.Fatalf("duplicate hellos bumped epoch %d -> %d", epoch, got)
	}
	if got := r.joins.Load(); got != joins {
		t.Fatalf("duplicate hellos counted joins %d -> %d", joins, got)
	}
	if got := r.Stats().Engines; got != 1 {
		t.Fatalf("engines = %d, want 1", got)
	}

	// A keepalive hello from a draining engine must not un-drain it.
	r.mu.Lock()
	up := r.ups["engine-a"]
	r.mu.Unlock()
	up.draining.Store(true)
	r.AdmitEngine(m)
	if !up.draining.Load() {
		t.Fatal("keepalive hello cleared the draining flag")
	}
}

// An operator Rebalance racing engine-initiated joins must stay
// consistent: no lost upstreams, no deadlock, and the last writer's
// membership wins until the next keepalive re-admits.
func TestRebalanceRacingAutoJoin(t *testing.T) {
	a := startEngineSim(t, "engine-a")
	b := startEngineSim(t, "engine-b")
	c := startEngineSim(t, "engine-c")
	ring := clusterRing(t, a)
	r, _ := startRouter(t, RouterConfig{Ring: ring, AutoAdmit: true})

	opRing := clusterRing(t, a, b)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := r.Rebalance(opRing.Clone(), false); err != nil {
				t.Errorf("rebalance: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			r.AdmitEngine(Member{ID: "engine-c", Addr: c.l.Addr()})
		}
	}()
	wg.Wait()

	// Whatever interleaving happened, a final keepalive re-admission
	// converges on all three members, with upstreams to match.
	r.AdmitEngine(Member{ID: "engine-c", Addr: c.l.Addr()})
	r.mu.Lock()
	members := r.ring.Members()
	upsOK := true
	for _, m := range members {
		if r.ups[m.ID] == nil {
			upsOK = false
		}
	}
	r.mu.Unlock()
	if len(members) != 3 {
		t.Fatalf("converged ring has %d members, want 3 (%v)", len(members), members)
	}
	if !upsOK {
		t.Fatal("ring member without an upstream after the race")
	}
}

// The replay buffer is byte-bounded: overflow evicts oldest frames
// (counted in bytes) and a NACK past the evicted window counts a
// replay gap instead of silently splicing.
func TestReplayBufferByteBound(t *testing.T) {
	a := startEngineSim(t, "engine-a")
	ring := clusterRing(t, a)
	r, _ := startRouter(t, RouterConfig{Ring: ring, ReplayBytes: 600})

	key := uint64(3)<<32 | uint64(1)
	samples := make([]float64, 25) // ~212-byte frames
	var lastSeq uint32
	for seq := uint32(1); seq <= 6; seq++ {
		body, err := rxnet.MarshalSampleChunk(rxnet.SampleChunk{
			NodeID: 3, StreamID: 1, Seq: seq,
			Fs: 1000, Start: uint64(seq-1) * 25, Samples: samples,
		})
		if err != nil {
			t.Fatalf("marshal chunk: %v", err)
		}
		r.forward(nil, key, seq, body, rxnet.FrameSampleChunk)
		lastSeq = seq
	}
	waitFor(t, "chunks delivered", func() bool { return a.samplesFor(key) == 150 })

	if got := r.replayEvicted.Load(); got <= 0 {
		t.Fatalf("replay evicted bytes = %d, want > 0", got)
	}
	rt, _ := r.routeFor(key)
	rt.fmu.Lock()
	kept, keptBytes := len(rt.replay), rt.replayBytes
	newest := rt.replay[len(rt.replay)-1].seq
	rt.fmu.Unlock()
	if keptBytes > 600 {
		t.Fatalf("replay holds %d bytes, want <= 600", keptBytes)
	}
	if kept == 0 || newest != lastSeq {
		t.Fatalf("replay kept %d frames ending at seq %d, want newest %d", kept, newest, lastSeq)
	}
}

// An engine that stays unreachable past DeadEngineTimeout is evicted:
// the ring shrinks, the epoch bumps, and a later hello re-admits it.
func TestDeadEngineEviction(t *testing.T) {
	a := startEngineSim(t, "engine-a")
	b := startEngineSim(t, "engine-b")
	ring := clusterRing(t, a, b)
	r, _ := startRouter(t, RouterConfig{
		Ring:              ring,
		AutoAdmit:         true,
		RedialBackoff:     10 * time.Millisecond,
		DeadEngineTimeout: 80 * time.Millisecond,
	})

	// Kill engine-b and route a stream it owns; the send failure
	// starts its outage clock and fails the stream over to engine-a.
	b.l.Close()
	used := map[uint32]bool{}
	sid := streamOwnedBy(t, ring, 5, "engine-b", used)
	key := uint64(5)<<32 | uint64(sid)
	body, err := rxnet.MarshalSampleChunk(rxnet.SampleChunk{
		NodeID: 5, StreamID: sid, Seq: 1, Fs: 1000, Samples: make([]float64, 10),
	})
	if err != nil {
		t.Fatalf("marshal chunk: %v", err)
	}
	r.forward(nil, key, 1, body, rxnet.FrameSampleChunk)
	waitFor(t, "failover to engine-a", func() bool { return a.samplesFor(key) == 10 })

	waitFor(t, "dead engine evicted", func() bool { return r.Stats().Engines == 1 })
	if got := r.evicted.Load(); got != 1 {
		t.Fatalf("evicted counter = %d, want 1", got)
	}

	// The engine comes back and re-announces itself.
	b2 := startEngineSim(t, "engine-b")
	r.AdmitEngine(Member{ID: "engine-b", Addr: b2.l.Addr()})
	waitFor(t, "re-admission", func() bool { return r.Stats().Engines == 2 })
}
