// Package chaos is the cluster's fault-injection harness: net.Conn
// and net.Listener wrappers that drop, delay, duplicate, or sever
// traffic with configured probabilities, a TCP proxy for injecting
// faults between real processes, and a scripted schedule runner for
// kill/restart churn. It exists for tests — the churn tier drives the
// router/engine stack through the failures the self-healing paths
// claim to survive and asserts the loss stays counted, never silent.
package chaos

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Faults is a fault mix. Probabilities are per Write call on a
// wrapped connection, rolled independently, so a single write can be
// delayed and duplicated. Zero values inject nothing.
type Faults struct {
	// Seed makes the fault sequence reproducible. Zero selects 1.
	Seed int64
	// DropProb black-holes the write: the caller sees success, the
	// peer sees nothing. The frame stream resumes mid-frame, so the
	// peer's next read typically fails the connection — exactly how a
	// lossy network kills a TCP session.
	DropProb float64
	// DelayProb stalls the write by Delay first.
	DelayProb float64
	Delay     time.Duration
	// DupProb writes the bytes twice.
	DupProb float64
	// SeverProb writes half the buffer and closes the connection —
	// the mid-frame cut that exercises truncated-frame handling.
	SeverProb float64
}

// Injector rolls faults and counts what it injected. Safe for
// concurrent use by any number of wrapped connections.
type Injector struct {
	f   Faults
	mu  sync.Mutex
	rng *rand.Rand

	Dropped    atomic.Int64
	Delayed    atomic.Int64
	Duplicated atomic.Int64
	Severed    atomic.Int64
}

// NewInjector builds an injector for the fault mix.
func NewInjector(f Faults) *Injector {
	seed := f.Seed
	if seed == 0 {
		seed = 1
	}
	return &Injector{f: f, rng: rand.New(rand.NewSource(seed))}
}

// Injected sums every fault the injector has applied.
func (in *Injector) Injected() int64 {
	return in.Dropped.Load() + in.Delayed.Load() + in.Duplicated.Load() + in.Severed.Load()
}

func (in *Injector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	in.mu.Lock()
	v := in.rng.Float64()
	in.mu.Unlock()
	return v < p
}

// ErrSevered reports a write cut short by an injected sever.
var ErrSevered = errors.New("chaos: connection severed mid-write")

// Conn applies the injector's faults to writes. Reads pass through
// untouched — faulting one direction keeps tests deterministic about
// which peer observes the failure first.
type Conn struct {
	net.Conn
	in *Injector
}

// WrapConn wraps a connection with this injector's faults.
func (in *Injector) WrapConn(c net.Conn) *Conn { return &Conn{Conn: c, in: in} }

// Write implements net.Conn with fault injection.
func (c *Conn) Write(b []byte) (int, error) {
	in := c.in
	if in.roll(in.f.DelayProb) {
		in.Delayed.Add(1)
		time.Sleep(in.f.Delay)
	}
	if in.roll(in.f.DropProb) {
		in.Dropped.Add(1)
		return len(b), nil
	}
	if in.roll(in.f.SeverProb) {
		in.Severed.Add(1)
		n := 0
		if half := len(b) / 2; half > 0 {
			n, _ = c.Conn.Write(b[:half])
		}
		c.Conn.Close()
		return n, ErrSevered
	}
	if in.roll(in.f.DupProb) {
		in.Duplicated.Add(1)
		if n, err := c.Conn.Write(b); err != nil {
			return n, err
		}
	}
	return c.Conn.Write(b)
}

// Listener wraps every accepted connection with the injector.
type Listener struct {
	net.Listener
	in *Injector
}

// WrapListener wraps a listener so accepted connections inject this
// injector's faults on their writes (i.e. on server-to-client
// traffic).
func (in *Injector) WrapListener(l net.Listener) *Listener {
	return &Listener{Listener: l, in: in}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.WrapConn(c), nil
}

// Proxy is a faulty TCP hop between real processes: clients dial
// Addr, the proxy dials the target and pipes bytes both ways,
// injecting faults on the client-to-target direction. Sever cuts
// every active link at once — a network partition in one call.
type Proxy struct {
	ln     net.Listener
	target string
	in     *Injector

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewProxy starts a proxy on an ephemeral loopback port in front of
// target ("host:port"). A nil injector passes traffic through clean.
func NewProxy(target string, in *Injector) (*Proxy, error) {
	if in == nil {
		in = NewInjector(Faults{})
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, in: in, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listen address, for clients to dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Injector returns the proxy's fault injector (for counters).
func (p *Proxy) Injector() *Injector { return p.in }

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		upstream, err := net.DialTimeout("tcp", p.target, 5*time.Second)
		if err != nil {
			client.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			client.Close()
			upstream.Close()
			return
		}
		p.conns[client] = struct{}{}
		p.conns[upstream] = struct{}{}
		p.mu.Unlock()
		faulty := p.in.WrapConn(upstream)
		p.wg.Add(2)
		go p.pipe(client, faulty, upstream)
		go p.pipe(upstream, client, client)
	}
}

// pipe copies src to dst until either side dies, then closes both
// raw conns (drop is the second raw end to untrack).
func (p *Proxy) pipe(src net.Conn, dst io.Writer, drop net.Conn) {
	defer p.wg.Done()
	io.Copy(dst, src) //nolint:errcheck // a faulted link dying is the point
	src.Close()
	drop.Close()
	p.mu.Lock()
	delete(p.conns, src)
	delete(p.conns, drop)
	p.mu.Unlock()
}

// Sever cuts every active proxied link (both directions) while the
// proxy keeps accepting new ones — a transient partition.
func (p *Proxy) Sever() {
	p.mu.Lock()
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Close stops the proxy and cuts every link.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.Sever()
	p.wg.Wait()
	return err
}

// Step is one scripted churn action.
type Step struct {
	// After is the wait before the step runs, measured from the
	// previous step (or Start).
	After time.Duration
	// Name labels the step in logs.
	Name string
	// Do performs the action (kill a process, sever a proxy, restart
	// an engine).
	Do func()
}

// Script runs kill/restart schedules against a live cluster.
type Script struct {
	// Logf receives step-by-step progress; nil silences it.
	Logf  func(format string, args ...any)
	Steps []Step
}

// Start launches the schedule in a goroutine and returns a wait
// function that blocks until every step has run (or stop closed).
func (s *Script) Start(stop <-chan struct{}) (wait func()) {
	logf := s.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i, st := range s.Steps {
			select {
			case <-time.After(st.After):
			case <-stop:
				return
			}
			logf("chaos: step %d/%d: %s", i+1, len(s.Steps), st.Name)
			st.Do()
		}
	}()
	return func() { <-done }
}
