package chaos

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// pair returns a wrapped client conn and the raw server end of a real
// loopback TCP connection (pipes lack the close semantics the sever
// fault needs).
func pair(t *testing.T, in *Injector) (*Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	type accepted struct {
		c   net.Conn
		err error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := ln.Accept()
		ch <- accepted{c, err}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	a := <-ch
	if a.err != nil {
		t.Fatalf("accept: %v", a.err)
	}
	t.Cleanup(func() { client.Close(); a.c.Close() })
	return in.WrapConn(client), a.c
}

func TestDropBlackholesWrites(t *testing.T) {
	in := NewInjector(Faults{DropProb: 1})
	c, server := pair(t, in)
	if n, err := c.Write([]byte("vanish")); err != nil || n != 6 {
		t.Fatalf("dropped write = (%d, %v), want (6, nil)", n, err)
	}
	server.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 16)
	if n, err := server.Read(buf); err == nil {
		t.Fatalf("server read %d bytes, want timeout", n)
	}
	if got := in.Dropped.Load(); got != 1 {
		t.Fatalf("Dropped = %d, want 1", got)
	}
}

func TestDupDoublesWrites(t *testing.T) {
	in := NewInjector(Faults{DupProb: 1})
	c, server := pair(t, in)
	if _, err := c.Write([]byte("abc")); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 6)
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(buf, []byte("abcabc")) {
		t.Fatalf("server got %q, want %q", buf, "abcabc")
	}
	if got := in.Duplicated.Load(); got != 1 {
		t.Fatalf("Duplicated = %d, want 1", got)
	}
}

func TestSeverCutsMidWrite(t *testing.T) {
	in := NewInjector(Faults{SeverProb: 1})
	c, server := pair(t, in)
	n, err := c.Write([]byte("0123456789"))
	if err != ErrSevered {
		t.Fatalf("severed write error = %v, want ErrSevered", err)
	}
	if n != 5 {
		t.Fatalf("severed write wrote %d bytes, want 5", n)
	}
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	got, rerr := io.ReadAll(server)
	if rerr != nil {
		t.Fatalf("read severed conn: %v", rerr)
	}
	if !bytes.Equal(got, []byte("01234")) {
		t.Fatalf("server got %q, want the first half %q", got, "01234")
	}
	if got := in.Severed.Load(); got != 1 {
		t.Fatalf("Severed = %d, want 1", got)
	}
}

func TestDelayStallsWrites(t *testing.T) {
	in := NewInjector(Faults{DelayProb: 1, Delay: 60 * time.Millisecond})
	c, _ := pair(t, in)
	start := time.Now()
	if _, err := c.Write([]byte("slow")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if el := time.Since(start); el < 60*time.Millisecond {
		t.Fatalf("delayed write took %v, want >= 60ms", el)
	}
	if got := in.Delayed.Load(); got != 1 {
		t.Fatalf("Delayed = %d, want 1", got)
	}
}

func TestZeroFaultsPassThrough(t *testing.T) {
	in := NewInjector(Faults{})
	c, server := pair(t, in)
	if _, err := c.Write([]byte("clean")); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 5)
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(buf, []byte("clean")) {
		t.Fatalf("server got %q", buf)
	}
	if got := in.Injected(); got != 0 {
		t.Fatalf("Injected = %d, want 0", got)
	}
}

// echoServer accepts connections and echoes bytes back until closed.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(c, c) //nolint:errcheck
				c.Close()
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func TestProxyPassThroughAndSever(t *testing.T) {
	ln := echoServer(t)
	p, err := NewProxy(ln.Addr().String(), nil)
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 4)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("echo read: %v", err)
	}
	if !bytes.Equal(buf, []byte("ping")) {
		t.Fatalf("echo got %q", buf)
	}

	p.Sever()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read after sever succeeded, want connection cut")
	}

	// The proxy keeps accepting after a sever.
	c2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial after sever: %v", err)
	}
	defer c2.Close()
	if _, err := c2.Write([]byte("back")); err != nil {
		t.Fatalf("write after sever: %v", err)
	}
	c2.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c2, buf); err != nil {
		t.Fatalf("echo after sever: %v", err)
	}
}

func TestScriptRunsStepsInOrder(t *testing.T) {
	var mu sync.Mutex
	var order []string
	record := func(name string) func() {
		return func() {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
		}
	}
	s := &Script{Steps: []Step{
		{After: 5 * time.Millisecond, Name: "a", Do: record("a")},
		{After: 5 * time.Millisecond, Name: "b", Do: record("b")},
		{After: 5 * time.Millisecond, Name: "c", Do: record("c")},
	}}
	stop := make(chan struct{})
	wait := s.Start(stop)
	wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("steps ran as %v, want [a b c]", order)
	}
}

func TestScriptStops(t *testing.T) {
	ran := make(chan struct{}, 1)
	s := &Script{Steps: []Step{
		{After: time.Hour, Name: "never", Do: func() { ran <- struct{}{} }},
	}}
	stop := make(chan struct{})
	wait := s.Start(stop)
	close(stop)
	wait()
	select {
	case <-ran:
		t.Fatal("stopped script still ran its step")
	default:
	}
}
