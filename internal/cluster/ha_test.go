package cluster

import (
	"math"
	"sync"
	"testing"
	"time"

	"passivelight/internal/rxnet"
)

// wrapChunk builds a valid chunk body for the wraparound tests: 25
// samples per chunk, Start advancing by 25 per index so replayed runs
// stay contiguous for the receiving engine's cursor.
func wrapChunk(t *testing.T, node, stream, seq uint32, idx int) []byte {
	t.Helper()
	samples := make([]float64, 25)
	body, err := rxnet.MarshalSampleChunk(rxnet.SampleChunk{
		NodeID: node, StreamID: stream, Seq: seq,
		Fs: 1000, Start: uint64(idx) * 25, Samples: samples,
	})
	if err != nil {
		t.Fatalf("marshal chunk: %v", err)
	}
	return body
}

// Regression for the uint32 sequence wraparound bug: a long-lived
// stream whose Seq crosses math.MaxUint32 has post-wrap seqs that are
// numerically SMALLER than pre-wrap ones, so the old naked comparisons
// in handleAck ignored post-wrap acks (the replay buffer grew without
// bound and ackedThrough froze) and handleNack mis-sized the replay
// window. Serial-number arithmetic must treat seq 0 as AFTER seq
// MaxUint32.
func TestReplayBufferSeqWraparound(t *testing.T) {
	a := startEngineSim(t, "engine-a")
	b := startEngineSim(t, "engine-b")
	ring := clusterRing(t, a, b)
	r, _ := startRouter(t, RouterConfig{Ring: ring})

	const key = uint64(3)<<32 | uint64(17)
	// Buffer straddling the wrap: MaxUint32-1, MaxUint32, 0, 1, 2.
	seqs := []uint32{math.MaxUint32 - 1, math.MaxUint32, 0, 1, 2}
	rt, _ := r.routeFor(key)
	rt.fmu.Lock()
	rt.owner = "engine-a"
	rt.ackedThrough = math.MaxUint32 - 2
	for i, seq := range seqs {
		body := wrapChunk(t, 3, 17, seq, i)
		rt.replay = append(rt.replay, savedChunk{seq: seq, body: body})
		rt.replayBytes += len(body)
	}
	rt.fmu.Unlock()

	r.mu.Lock()
	upA := r.ups["engine-a"]
	r.mu.Unlock()
	if upA == nil {
		t.Fatal("engine-a has no upstream")
	}

	// The owner acks through post-wrap seq 0: everything up to and
	// including the wrap must trim, and ackedThrough must advance —
	// with naked uint32 comparisons (0 < MaxUint32-2) both are no-ops.
	r.handleAck(upA, rxnet.StreamAck{Session: key, LastSeq: 0})
	rt.fmu.Lock()
	acked, kept := rt.ackedThrough, len(rt.replay)
	var keptSeqs []uint32
	for _, c := range rt.replay {
		keptSeqs = append(keptSeqs, c.seq)
	}
	rt.fmu.Unlock()
	if acked != 0 {
		t.Fatalf("ackedThrough = %d after post-wrap ack, want 0", acked)
	}
	if kept != 2 || keptSeqs[0] != 1 || keptSeqs[1] != 2 {
		t.Fatalf("replay buffer after post-wrap ack = %v, want [1 2]", keptSeqs)
	}

	// The owner then refuses the stream at LastSeq 0: exactly the two
	// unacked post-wrap chunks must replay onto the other engine.
	r.handleNack(upA, rxnet.StreamNack{Session: key, LastSeq: 0})
	rt.fmu.Lock()
	owner := rt.owner
	rt.fmu.Unlock()
	if owner != "engine-b" {
		t.Fatalf("stream owner after NACK = %q, want engine-b", owner)
	}
	waitFor(t, "post-wrap replay on engine-b", func() bool { return b.samplesFor(key) == 50 })
	if got := r.replayGaps.Load(); got != 0 {
		t.Fatalf("replay gaps = %d, want 0 (window was fully buffered)", got)
	}
}

// A join stampede inside RingBatchWindow coalesces into ONE epoch
// bump and one migration pass, however many engines arrive. Run under
// -race: the admissions are concurrent.
func TestAdmitStampedeBatchesToOneEpochBump(t *testing.T) {
	seed := startEngineSim(t, "engine-seed")
	ring := clusterRing(t, seed)
	r, _ := startRouter(t, RouterConfig{Ring: ring, RingBatchWindow: 250 * time.Millisecond})
	epoch0 := r.Stats().Epoch

	joiners := []*engineSim{
		startEngineSim(t, "engine-a"),
		startEngineSim(t, "engine-b"),
		startEngineSim(t, "engine-c"),
	}
	var wg sync.WaitGroup
	for _, e := range joiners {
		wg.Add(1)
		go func(e *engineSim) {
			defer wg.Done()
			r.AdmitEngine(Member{ID: e.id, Addr: e.l.Addr()})
		}(e)
	}
	wg.Wait()

	// Nothing lands before the window fires...
	if got := r.Stats().Engines; got != 1 {
		t.Fatalf("engines visible before batch window = %d, want 1", got)
	}
	// ...then all three land as one membership change.
	waitFor(t, "batched admission flush", func() bool {
		st := r.Stats()
		return st.Engines == 4 && st.Epoch == epoch0+1
	})
	if got := r.ringBatches.Load(); got != 1 {
		t.Fatalf("ring batches = %d, want 1", got)
	}
	// A settled window later the epoch has not moved again.
	time.Sleep(150 * time.Millisecond)
	if got := r.Stats().Epoch; got != epoch0+1 {
		t.Fatalf("epoch settled at %d, want %d (one bump for three joins)", got, epoch0+1)
	}
	if got := r.ringBatches.Load(); got != 1 {
		t.Fatalf("ring batches after settle = %d, want 1", got)
	}
}

// Two peered routers converge on membership with no external
// coordinator: admissions on one appear on the other (highest epoch
// wins), and an eviction propagates the same way.
func TestRouterPeerConvergence(t *testing.T) {
	a := startEngineSim(t, "engine-a")
	b := startEngineSim(t, "engine-b")

	cfg := RouterConfig{
		AutoAdmit:         true,
		RedialBackoff:     20 * time.Millisecond,
		RedialBackoffMax:  200 * time.Millisecond,
		DeadEngineTimeout: 250 * time.Millisecond,
	}
	rA, addrA := startRouter(t, cfg)
	rB, addrB := startRouter(t, cfg)
	rA.AddPeer(addrB)
	rB.AddPeer(addrA)

	waitFor(t, "peer links up", func() bool {
		return rA.Stats().PeersUp == 1 && rB.Stats().PeersUp == 1
	})

	// Admissions land on A only; B must converge to the same ring.
	rA.AdmitEngine(Member{ID: a.id, Addr: a.l.Addr()})
	rA.AdmitEngine(Member{ID: b.id, Addr: b.l.Addr()})
	waitFor(t, "membership to converge onto router B", func() bool {
		stA, stB := rA.Stats(), rB.Stats()
		return stA.Engines == 2 && stB.Engines == 2 && stA.Epoch == stB.Epoch
	})
	if got := rB.peerUpdates.Load(); got == 0 {
		t.Fatal("router B applied no peer updates")
	}

	// Kill engine-b and push traffic it owns through A: the failed
	// sends mark it down, the janitor evicts it, and the eviction's
	// epoch bump must carry to B.
	b.l.Close()
	used := map[uint32]bool{}
	rA.mu.Lock()
	ringA := rA.ring
	rA.mu.Unlock()
	sid := streamOwnedBy(t, ringA, 5, "engine-b", used)
	key := uint64(5)<<32 | uint64(sid)
	waitFor(t, "eviction to converge onto router B", func() bool {
		body := wrapChunk(t, 5, sid, 1, 0)
		rA.forward(nil, key, 1, body, rxnet.FrameSampleChunk)
		stA, stB := rA.Stats(), rB.Stats()
		return stA.Engines == 1 && stB.Engines == 1 && stA.Epoch == stB.Epoch
	})
}
