package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"passivelight/internal/rxnet"
	"passivelight/internal/telemetry"
)

// RouterConfig tunes a Router beyond its ring.
type RouterConfig struct {
	// Ring is the engine fleet. Required, at least one member.
	Ring *Ring
	// Logf receives diagnostics; nil silences them.
	Logf func(format string, args ...any)
	// ReplayBytes bounds the per-stream replay buffer by payload bytes
	// (recent chunk frames kept so a NACKed stream can be replayed on
	// its new owner). Zero selects 1 MiB. Overflow evicts the oldest
	// frames, counted in pl_cluster_replay_evicted_bytes_total; a NACK
	// that reaches past the buffer is counted in
	// pl_cluster_replay_gaps_total and the stream resumes with a gap
	// (the new owner's continuity cursor resets it).
	ReplayBytes int
	// RouteIdleTimeout evicts routes whose stream has been silent for
	// this long, sending the owner a StreamEnd so the engine session
	// releases too. Zero selects 120 s; negative disables eviction.
	RouteIdleTimeout time.Duration
	// DialTimeout bounds one upstream dial. Zero selects 5 s.
	DialTimeout time.Duration
	// RedialBackoff is the first-failure backoff before an upstream is
	// redialed; consecutive failures double it (with jitter) up to
	// RedialBackoffMax. Zero selects 1 s.
	RedialBackoff time.Duration
	// RedialBackoffMax caps the exponential redial backoff. Zero
	// selects 15 s.
	RedialBackoffMax time.Duration
	// DeadEngineTimeout evicts an engine that has been continuously
	// unreachable this long: the ring shrinks (its streams fail over
	// permanently on their next chunk) and the epoch bumps. A later
	// EngineHello re-admits it. Zero selects 60 s; negative disables
	// eviction.
	DeadEngineTimeout time.Duration
	// AutoAdmit accepts EngineHello frames: an engine announcing
	// itself is added to the ring (or has its address refreshed after
	// a restart) with no operator Rebalance. With AutoAdmit the router
	// may start on an empty ring and wait for its fleet.
	AutoAdmit bool
	// Peers lists the addresses of this router's replicas. Each peer is
	// dialed with backoff and pushed this router's ring on every
	// membership change (plus a periodic keepalive), over the same
	// RingUpdate frames engines receive; incoming peer updates converge
	// on the highest epoch. Two routers with each other as peers form
	// the HA pair: nodes carry both addresses (rxnet.RedialConfig.Addrs)
	// and fail over between them with no external coordinator. Peers
	// can also be added after Listen with AddPeer.
	Peers []string
	// RingBatchWindow coalesces ring-changing admissions (new engines,
	// address moves): the first one arms a timer and everything that
	// lands within the window is absorbed as ONE epoch bump, so a join
	// stampede of N engines costs one rebalance instead of N. Zero
	// selects 250 ms; negative applies every admission synchronously
	// (no batching — what the pre-batching tests and latency-sensitive
	// single-join deployments want).
	RingBatchWindow time.Duration
	// Metrics registers the router's pl_cluster_* series.
	Metrics *telemetry.Registry
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.ReplayBytes == 0 {
		c.ReplayBytes = 1 << 20
	}
	if c.RouteIdleTimeout == 0 {
		c.RouteIdleTimeout = 120 * time.Second
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.RedialBackoff == 0 {
		c.RedialBackoff = time.Second
	}
	if c.RedialBackoffMax == 0 {
		c.RedialBackoffMax = 15 * time.Second
	}
	if c.RedialBackoffMax < c.RedialBackoff {
		c.RedialBackoffMax = c.RedialBackoff
	}
	if c.DeadEngineTimeout == 0 {
		c.DeadEngineTimeout = 60 * time.Second
	}
	if c.RingBatchWindow == 0 {
		c.RingBatchWindow = 250 * time.Millisecond
	}
	return c
}

// savedChunk is one buffered chunk frame for NACK replay.
type savedChunk struct {
	seq  uint32
	body []byte
}

// route is the router's view of one chunk stream: its sticky owner
// and a bounded replay buffer. fmu serializes the stream end to end —
// resolve, buffer, forward, and NACK-triggered replay — so the new
// owner can never observe replayed and live chunks out of order.
type route struct {
	fmu         sync.Mutex
	owner       string // member ID; "" means unresolved
	lastFwd     uint32
	lastAct     time.Time
	replay      []savedChunk
	replayBytes int // sum of len(body) across replay
	// ackedThrough is the highest chunk Seq the owner confirmed
	// consumed (StreamAck); acked frames are dropped from replay and a
	// failover replay starting past ackedThrough+1 is a counted gap.
	ackedThrough uint32
}

// upstream is the router's connection to one engine, redialed on
// demand. wmu serializes writes from routing goroutines, the NACK
// handler and the hello replay.
type upstream struct {
	id   string
	addr string

	wmu  sync.Mutex
	conn net.Conn

	// nextDial (unix nanos) and connected are read lock-free by
	// resolve and Stats — resolve runs under a route's fmu and must
	// not touch wmu, which send holds across dials.
	nextDial  atomic.Int64
	connected atomic.Bool
	draining  atomic.Bool
	throttled atomic.Bool
	// fails counts consecutive dial/write failures (exponential
	// backoff input); downSince (unix nanos) marks the start of the
	// current outage, 0 while healthy — the dead-engine eviction
	// clock.
	fails     atomic.Int32
	downSince atomic.Int64
}

// down reports whether the engine is unreachable and still in dial
// backoff, i.e. not worth assigning new streams to.
func (up *upstream) down(now time.Time) bool {
	return !up.connected.Load() && now.UnixNano() < up.nextDial.Load()
}

// failed records one dial/write failure: the outage clock starts (if
// not already running) and the next dial backs off exponentially with
// jitter.
func (up *upstream) failed(backoff rxnet.Backoff) {
	n := up.fails.Add(1)
	now := time.Now()
	up.nextDial.Store(now.Add(backoff.Delay(int(n))).UnixNano())
	up.downSince.CompareAndSwap(0, now.UnixNano())
}

// recovered clears the failure state after a successful dial.
func (up *upstream) recovered() {
	up.fails.Store(0)
	up.downSince.Store(0)
	up.nextDial.Store(0)
}

// nodeConn is one accepted receiver-node connection. Writes (throttle
// pause/resume relays) serialize on wmu; owners tracks which engines
// this connection's streams were forwarded to, so backpressure from a
// hot engine pauses exactly the nodes feeding it.
type nodeConn struct {
	c   net.Conn
	wmu sync.Mutex

	mu     sync.Mutex
	owners map[string]bool
	paused bool
}

func (nc *nodeConn) writeFrame(t rxnet.FrameType, body []byte) error {
	nc.wmu.Lock()
	defer nc.wmu.Unlock()
	if err := nc.c.SetWriteDeadline(time.Now().Add(10 * time.Second)); err != nil {
		return err
	}
	return rxnet.WriteFrame(nc.c, t, body)
}

// Router is the cluster front-end: it accepts rxnet chunk streams
// from receiver nodes and forwards each stream to the engine that
// owns it on the consistent-hash ring, over the same wire protocol.
// Streams are sticky — once routed, a stream stays with its engine
// until it ends, the engine refuses it (drain NACK), or a forced
// Rebalance moves it — so membership changes never cut packets
// mid-window unless explicitly forced.
type Router struct {
	cfg  RouterConfig
	logf func(format string, args ...any)

	mu     sync.Mutex
	ring   *Ring
	routes map[uint64]*route
	ups    map[string]*upstream
	hellos map[uint32][]byte // latest Hello body per node, replayed on engine (re)connect
	nconns map[*nodeConn]struct{}
	peers  map[string]*peerLink

	// pendAdmits holds ring-changing admissions waiting for the batch
	// window to close; pendTimer is armed by the first of them.
	pendAdmits map[string]Member
	pendTimer  *time.Timer

	ln        net.Listener
	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once

	chunksFwd       atomic.Int64
	streams         atomic.Int64
	handoffs        atomic.Int64
	nacksRecv       atomic.Int64
	acksRecv        atomic.Int64
	replayed        atomic.Int64
	replayGaps      atomic.Int64
	replayEvicted   atomic.Int64
	redials         atomic.Int64
	failovers       atomic.Int64
	undeliv         atomic.Int64
	routesEnded     atomic.Int64
	joins           atomic.Int64
	evicted         atomic.Int64
	throttleSignals atomic.Int64
	throttlePauses  atomic.Int64
	ringBatches     atomic.Int64
	resyncs         atomic.Int64
	peerUpdates     atomic.Int64
}

// backoff is the upstream redial policy from the config.
func (r *Router) backoff() rxnet.Backoff {
	return rxnet.Backoff{Base: r.cfg.RedialBackoff, Max: r.cfg.RedialBackoffMax}
}

// RouterStats is an operational snapshot for health checks.
type RouterStats struct {
	// Routes currently tracked; Engines on the ring; Draining engines
	// among them; Down engines in dial backoff.
	Routes, Engines, Draining, Down int
	// Epoch of the active ring.
	Epoch uint64
	// Handoffs is the total streams moved between engines.
	Handoffs int64
	// Undeliverable counts chunks dropped because no engine would
	// take them.
	Undeliverable int64
	// Peers is the number of configured router replicas; PeersUp how
	// many of their links are currently connected.
	Peers, PeersUp int
}

// NewRouter builds an idle router over the ring. With cfg.AutoAdmit
// the ring may be nil or empty — the router waits for engines to
// announce themselves with EngineHello.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Ring == nil || cfg.Ring.Len() == 0 {
		if !cfg.AutoAdmit {
			return nil, errors.New("cluster: router needs a ring with at least one member (or AutoAdmit)")
		}
		if cfg.Ring == nil {
			empty, err := NewRing(0)
			if err != nil {
				return nil, err
			}
			cfg.Ring = empty
		}
	}
	cfg = cfg.withDefaults()
	r := &Router{
		cfg:        cfg,
		logf:       cfg.Logf,
		ring:       cfg.Ring,
		routes:     make(map[uint64]*route),
		ups:        make(map[string]*upstream),
		hellos:     make(map[uint32][]byte),
		nconns:     make(map[*nodeConn]struct{}),
		peers:      make(map[string]*peerLink),
		pendAdmits: make(map[string]Member),
		closed:     make(chan struct{}),
	}
	for _, m := range cfg.Ring.Members() {
		r.ups[m.ID] = &upstream{id: m.ID, addr: m.Addr}
	}
	if reg := cfg.Metrics; reg != nil {
		reg.CounterFunc("pl_cluster_chunks_forwarded_total",
			"Sample chunks forwarded to owning engines.", r.chunksFwd.Load)
		reg.CounterFunc("pl_cluster_streams_routed_total",
			"Streams assigned an owning engine.", r.streams.Load)
		reg.CounterFunc("pl_cluster_handoffs_total",
			"Streams moved between engines (drain NACKs, forced rebalances, failovers).", r.handoffs.Load)
		reg.CounterFunc("pl_cluster_nacks_received_total",
			"Stream NACKs received from draining engines.", r.nacksRecv.Load)
		reg.CounterFunc("pl_cluster_stream_acks_total",
			"Consumption acks received from engines (replay buffers trimmed).", r.acksRecv.Load)
		reg.CounterFunc("pl_cluster_replayed_chunks_total",
			"Buffered chunks replayed on a stream's new owner after a handoff.", r.replayed.Load)
		reg.CounterFunc("pl_cluster_replay_gaps_total",
			"Handoffs whose replay buffer no longer held every unconsumed chunk.", r.replayGaps.Load)
		reg.CounterFunc("pl_cluster_replay_evicted_bytes_total",
			"Replay-buffer bytes evicted by the per-stream ReplayBytes bound.", r.replayEvicted.Load)
		reg.CounterFunc("pl_cluster_engine_joins_total",
			"EngineHello admissions (new members plus address refreshes).", r.joins.Load)
		reg.CounterFunc("pl_cluster_engines_evicted_total",
			"Engines removed from the ring after DeadEngineTimeout.", r.evicted.Load)
		reg.CounterFunc("pl_cluster_throttle_signals_total",
			"Throttle state changes received from engines.", r.throttleSignals.Load)
		reg.CounterFunc("pl_cluster_throttle_pauses_total",
			"Pause frames relayed to receiver nodes feeding a hot engine.", r.throttlePauses.Load)
		reg.GaugeFunc("pl_cluster_throttled_engines", "Engines currently signalling backpressure.", func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			n := 0
			for _, up := range r.ups {
				if up.throttled.Load() {
					n++
				}
			}
			return float64(n)
		})
		reg.CounterFunc("pl_cluster_upstream_redials_total",
			"Engine connections re-established.", r.redials.Load)
		reg.CounterFunc("pl_cluster_failovers_total",
			"Streams moved because their engine connection failed mid-forward.", r.failovers.Load)
		reg.CounterFunc("pl_cluster_undeliverable_chunks_total",
			"Chunks dropped because no engine would accept their stream.", r.undeliv.Load)
		reg.CounterFunc("pl_cluster_routes_ended_total",
			"Routes released (idle eviction and shutdown).", r.routesEnded.Load)
		reg.CounterFunc("pl_cluster_ring_batches_total",
			"Batched membership changes applied (each is one epoch bump covering every admission or eviction in the window).", r.ringBatches.Load)
		reg.CounterFunc("pl_cluster_stream_resyncs_total",
			"Mid-stream first-sight chunks that triggered a resync NACK to the node (router failover arrivals).", r.resyncs.Load)
		reg.CounterFunc("pl_cluster_peer_updates_total",
			"Ring updates received from router peers.", r.peerUpdates.Load)
		reg.GaugeFunc("pl_cluster_router_peers", "Router peer links currently connected.", func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			n := 0
			for _, pl := range r.peers {
				if pl.connected.Load() {
					n++
				}
			}
			return float64(n)
		})
		reg.GaugeFunc("pl_cluster_epoch", "Active ring epoch.", func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			return float64(r.ring.Epoch())
		})
		reg.GaugeFunc("pl_cluster_engines", "Engines on the ring.", func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			return float64(r.ring.Len())
		})
		reg.GaugeFunc("pl_cluster_routes_active", "Streams currently routed.", func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			return float64(len(r.routes))
		})
	}
	return r, nil
}

// Listen starts accepting receiver-node connections on addr
// ("host:port"; empty port picks an ephemeral one) and returns the
// bound address.
func (r *Router) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	r.mu.Lock()
	r.ln = ln
	r.mu.Unlock()
	r.wg.Add(1)
	go r.acceptLoop(ln)
	if r.cfg.RouteIdleTimeout > 0 || r.cfg.DeadEngineTimeout > 0 {
		r.wg.Add(1)
		go r.janitor()
	}
	for _, p := range r.cfg.Peers {
		r.AddPeer(p)
	}
	return ln.Addr().String(), nil
}

func (r *Router) acceptLoop(ln net.Listener) {
	defer r.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-r.closed:
				return
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			r.logf("cluster: accept: %v", err)
			return
		}
		r.wg.Add(1)
		go r.serveConn(conn)
	}
}

// serveConn relays one receiver node's frames. Chunk bodies are
// forwarded verbatim — only the 12-byte (NodeID, StreamID, Seq)
// prefix is parsed to route them — so the router never touches the
// sample payload. The same port also accepts EngineHello frames from
// engines joining the cluster (AutoAdmit).
func (r *Router) serveConn(conn net.Conn) {
	defer r.wg.Done()
	nc := &nodeConn{c: conn, owners: make(map[string]bool)}
	r.mu.Lock()
	r.nconns[nc] = struct{}{}
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		delete(r.nconns, nc)
		r.mu.Unlock()
		conn.Close()
	}()
	for {
		if err := conn.SetReadDeadline(time.Now().Add(2 * time.Minute)); err != nil {
			return
		}
		t, body, err := rxnet.ReadFrame(conn)
		if err != nil {
			select {
			case <-r.closed:
			default:
				r.logf("cluster: node read: %v", err)
			}
			return
		}
		switch t {
		case rxnet.FrameEngineHello:
			eh, err := rxnet.UnmarshalEngineHello(body)
			if err != nil {
				r.logf("cluster: bad engine hello: %v", err)
				return
			}
			if !r.cfg.AutoAdmit {
				r.logf("cluster: engine %s hello refused (auto-admit disabled)", eh.ID)
				continue
			}
			r.AdmitEngine(Member{ID: eh.ID, Addr: eh.Addr})
			// Ack with the active ring so the engine can observe its
			// own membership (and the fleet it joined). Admissions still
			// waiting in the batch window are included — the engine sees
			// itself immediately even though the epoch bump is pending.
			r.mu.Lock()
			ru := rxnet.RingUpdate{Epoch: r.ring.Epoch()}
			seen := make(map[string]bool, r.ring.Len())
			for _, m := range r.ring.Members() {
				ru.Members = append(ru.Members, rxnet.RingMember{ID: m.ID, Addr: m.Addr})
				seen[m.ID] = true
			}
			for _, m := range r.pendAdmits {
				if !seen[m.ID] {
					ru.Members = append(ru.Members, rxnet.RingMember{ID: m.ID, Addr: m.Addr})
				}
			}
			r.mu.Unlock()
			rb, err := rxnet.MarshalRingUpdate(ru)
			if err != nil {
				r.logf("cluster: ring update for %s: %v", eh.ID, err)
				continue
			}
			if err := nc.writeFrame(rxnet.FrameRingUpdate, rb); err != nil {
				r.logf("cluster: ring update to %s: %v", eh.ID, err)
				return
			}
		case rxnet.FrameHello:
			h, err := rxnet.UnmarshalHello(body)
			if err != nil {
				r.logf("cluster: bad hello: %v", err)
				return
			}
			r.mu.Lock()
			r.hellos[h.NodeID] = body
			ups := r.upstreamsLocked()
			r.mu.Unlock()
			// Node metadata fans out to the whole fleet: any engine may
			// end up owning one of this node's streams.
			for _, up := range ups {
				if err := r.send(up, rxnet.FrameHello, body); err != nil {
					r.logf("cluster: hello to %s: %v", up.id, err)
				}
			}
		case rxnet.FrameSampleChunk, rxnet.FrameSampleReplay:
			if len(body) < 12 {
				r.logf("cluster: short chunk frame (%d bytes)", len(body))
				return
			}
			node := binary.BigEndian.Uint32(body[0:4])
			stream := binary.BigEndian.Uint32(body[4:8])
			seq := binary.BigEndian.Uint32(body[8:12])
			session := uint64(node)<<32 | uint64(stream)
			r.forward(nc, session, seq, body, t)
		case rxnet.FrameRingUpdate:
			// A router peer pushing its ring (peer link, or an operator
			// tool relaying state). Converge on it.
			ru, err := rxnet.UnmarshalRingUpdate(body)
			if err != nil {
				r.logf("cluster: bad peer ring update: %v", err)
				return
			}
			r.applyPeerUpdate(ru)
		default:
			r.logf("cluster: unexpected frame type %d from node", t)
			return
		}
	}
}

// routeFor returns the session's route, creating it unresolved, and
// reports whether this call created it (the stream's first sight).
func (r *Router) routeFor(session uint64) (*route, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rt, ok := r.routes[session]
	if !ok {
		rt = &route{}
		r.routes[session] = rt
	}
	return rt, !ok
}

// upstreamsLocked snapshots the upstream set. Callers hold r.mu.
func (r *Router) upstreamsLocked() []*upstream {
	ups := make([]*upstream, 0, len(r.ups))
	for _, up := range r.ups {
		ups = append(ups, up)
	}
	return ups
}

// resolve picks the owner for a session from the active ring,
// walking past engines that are draining or in dial backoff, plus the
// member named by exclude (the sender of a NACK refused the stream
// whether or not its drain notice has been processed yet).
func (r *Router) resolve(session uint64, exclude string) (*upstream, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	m, ok := r.ring.OwnerAvoiding(session, func(m Member) bool {
		if m.ID == exclude {
			return true
		}
		up := r.ups[m.ID]
		return up == nil || up.draining.Load() || up.down(now)
	})
	if !ok {
		return nil, false
	}
	return r.ups[m.ID], true
}

// forward routes one chunk frame to its stream's owner, assigning an
// owner to new streams and buffering the frame for NACK replay. nc is
// the node connection the chunk arrived on (nil in tests); successful
// forwards record the owner on it so engine backpressure can be
// relayed to exactly the nodes feeding that engine. ft is the frame
// type the chunk arrived as: replay frames (node retransmissions
// after a failover) forward under the same marking so the engine can
// dedup them against its cursor, and never masquerade as live
// restarts.
func (r *Router) forward(nc *nodeConn, session uint64, seq uint32, body []byte, ft rxnet.FrameType) {
	rt, created := r.routeFor(session)
	rt.fmu.Lock()
	defer rt.fmu.Unlock()
	rt.lastAct = time.Now()
	if created && seq != 1 && ft == rxnet.FrameSampleChunk && nc != nil {
		// First sight of a mid-stream live chunk: this router holds
		// none of the stream's history (the node failed over from a
		// dead peer, or the route idled out). Ask the node to resend
		// its buffered tail — everything the engine already consumed
		// dedups against its continuity cursor, everything else closes
		// the gap the dead router's replay buffer took with it.
		r.resyncs.Add(1)
		nb := rxnet.MarshalStreamNack(rxnet.StreamNack{Session: session})
		if err := nc.writeFrame(rxnet.FrameStreamNack, nb); err != nil {
			r.logf("cluster: resync nack for stream %d: %v", session, err)
		}
	}
	// Buffer first: a NACK can arrive for any forwarded chunk. The
	// buffer is byte-bounded; overflow evicts from the oldest end but
	// always keeps the newest frame. Appends must keep the buffer
	// seq-ordered — a retransmission of a chunk already buffered (the
	// node resent its tail to a router that survived) is skipped
	// entirely: it was already forwarded once and a failover replay
	// must not deliver it out of order.
	if n := len(rt.replay); n > 0 && !rxnet.SeqLess(rt.replay[n-1].seq, seq) {
		if ft == rxnet.FrameSampleReplay || seq != 1 {
			return
		}
		// A live Seq=1 behind the buffer is a genuine stream restart:
		// the buffered chunks belong to the previous incarnation.
		rt.replay = rt.replay[:0]
		rt.replayBytes = 0
		rt.ackedThrough = 0
	}
	rt.replay = append(rt.replay, savedChunk{seq: seq, body: body})
	rt.replayBytes += len(body)
	drop := 0
	for rt.replayBytes > r.cfg.ReplayBytes && drop < len(rt.replay)-1 {
		rt.replayBytes -= len(rt.replay[drop].body)
		r.replayEvicted.Add(int64(len(rt.replay[drop].body)))
		drop++
	}
	if drop > 0 {
		rt.replay = append(rt.replay[:0], rt.replay[drop:]...)
	}
	rt.lastFwd = seq
	failedOver := false
	for attempt := 0; attempt < 2; attempt++ {
		if rt.owner == "" {
			up, ok := r.resolve(session, "")
			if !ok {
				r.undeliv.Add(1)
				return
			}
			rt.owner = up.id
			r.streams.Add(1)
		}
		r.mu.Lock()
		up := r.ups[rt.owner]
		r.mu.Unlock()
		if up == nil {
			rt.owner = ""
			continue
		}
		// Normally only the live chunk goes out. After a crash
		// failover the new owner has no state for this stream, so the
		// whole retained unacked buffer is replayed in front of it —
		// what the dead engine consumed past its last ack is unknown,
		// and at-least-once is safe because replayed frames carry the
		// replay marking and dedup against the new owner's cursor.
		// Anything the byte bound already trimmed is a counted gap,
		// never a silent splice.
		frames := rt.replay[len(rt.replay)-1:]
		if failedOver {
			frames = rt.replay
			if rxnet.SeqLess(rt.ackedThrough+1, frames[0].seq) {
				r.replayGaps.Add(1)
			}
		}
		var err error
		for _, c := range frames {
			// The in-hand chunk keeps its arrival type; everything in
			// front of it is a retransmission.
			ftc := rxnet.FrameSampleReplay
			if c.seq == seq {
				ftc = ft
			}
			if err = r.send(up, ftc, c.body); err != nil {
				break
			}
			r.chunksFwd.Add(1)
			if c.seq != seq {
				r.replayed.Add(1)
			}
		}
		if err != nil {
			// The engine is gone mid-stream (crash, not drain): fail
			// the stream over to a survivor.
			r.logf("cluster: forward to %s: %v; failing stream %d over", up.id, err, session)
			r.failovers.Add(1)
			r.handoffs.Add(1)
			rt.owner = ""
			failedOver = true
			continue
		}
		if nc != nil {
			r.noteOwner(nc, up)
		}
		return
	}
	r.undeliv.Add(1)
}

// noteOwner records that nc's streams feed engine up, and pauses the
// node immediately if that engine is already throttled (a stream that
// lands on a hot engine after the propagation pass must not bypass
// the backpressure).
func (r *Router) noteOwner(nc *nodeConn, up *upstream) {
	nc.mu.Lock()
	nc.owners[up.id] = true
	pause := up.throttled.Load() && !nc.paused
	if pause {
		nc.paused = true
	}
	nc.mu.Unlock()
	if !pause {
		return
	}
	r.throttlePauses.Add(1)
	if err := nc.writeFrame(rxnet.FrameThrottle, rxnet.MarshalThrottle(rxnet.Throttle{Paused: true})); err != nil {
		r.logf("cluster: throttle to node: %v", err)
	}
}

// send writes one frame to an upstream, dialing it first if needed.
func (r *Router) send(up *upstream, t rxnet.FrameType, body []byte) error {
	select {
	case <-r.closed:
		return errors.New("cluster: router closed")
	default:
	}
	up.wmu.Lock()
	defer up.wmu.Unlock()
	if up.conn == nil {
		if time.Now().UnixNano() < up.nextDial.Load() {
			return fmt.Errorf("cluster: engine %s in dial backoff", up.id)
		}
		if err := r.dialLocked(up); err != nil {
			up.failed(r.backoff())
			return err
		}
	}
	if err := up.conn.SetWriteDeadline(time.Now().Add(10 * time.Second)); err != nil {
		return err
	}
	if err := rxnet.WriteFrame(up.conn, t, body); err != nil {
		up.conn.Close()
		up.conn = nil
		up.connected.Store(false)
		up.failed(r.backoff())
		return err
	}
	return nil
}

// dialLocked connects an upstream and starts its reader. Callers hold
// up.wmu.
func (r *Router) dialLocked(up *upstream) error {
	conn, err := net.DialTimeout("tcp", up.addr, r.cfg.DialTimeout)
	if err != nil {
		return err
	}
	up.conn = conn
	up.connected.Store(true)
	up.draining.Store(false) // a fresh process announces its own state
	up.recovered()
	r.redials.Add(1)
	r.wg.Add(1)
	go r.readUpstream(up, conn)
	// A (re)connected engine needs the fleet's node metadata before
	// any of their streams land on it.
	r.mu.Lock()
	hellos := make([][]byte, 0, len(r.hellos))
	for _, h := range r.hellos {
		hellos = append(hellos, h)
	}
	r.mu.Unlock()
	for _, h := range hellos {
		if err := conn.SetWriteDeadline(time.Now().Add(10 * time.Second)); err != nil {
			return err
		}
		if err := rxnet.WriteFrame(conn, rxnet.FrameHello, h); err != nil {
			return err
		}
	}
	return nil
}

// readUpstream consumes engine-to-router control frames (drain
// notices, stream NACKs) until the connection dies.
func (r *Router) readUpstream(up *upstream, conn net.Conn) {
	defer r.wg.Done()
	for {
		// No deadline: engines speak only when state changes.
		if err := conn.SetReadDeadline(time.Time{}); err != nil {
			break
		}
		t, body, err := rxnet.ReadFrame(conn)
		if err != nil {
			select {
			case <-r.closed:
			default:
				r.logf("cluster: engine %s read: %v", up.id, err)
			}
			break
		}
		switch t {
		case rxnet.FrameDrain:
			d, err := rxnet.UnmarshalDrain(body)
			if err != nil {
				r.logf("cluster: engine %s bad drain: %v", up.id, err)
				continue
			}
			up.draining.Store(d.Draining)
			r.logf("cluster: engine %s draining=%v", up.id, d.Draining)
		case rxnet.FrameStreamNack:
			n, err := rxnet.UnmarshalStreamNack(body)
			if err != nil {
				r.logf("cluster: engine %s bad nack: %v", up.id, err)
				continue
			}
			r.nacksRecv.Add(1)
			r.handleNack(up, n)
		case rxnet.FrameStreamAck:
			a, err := rxnet.UnmarshalStreamAck(body)
			if err != nil {
				r.logf("cluster: engine %s bad ack: %v", up.id, err)
				continue
			}
			r.acksRecv.Add(1)
			r.handleAck(up, a)
		case rxnet.FrameThrottle:
			th, err := rxnet.UnmarshalThrottle(body)
			if err != nil {
				r.logf("cluster: engine %s bad throttle: %v", up.id, err)
				continue
			}
			if up.throttled.Swap(th.Paused) != th.Paused {
				r.throttleSignals.Add(1)
				r.logf("cluster: engine %s throttled=%v", up.id, th.Paused)
				r.propagateThrottle()
			}
		default:
			// Engines send nothing else today; tolerate future frames.
		}
	}
	up.wmu.Lock()
	if up.conn == conn {
		up.conn = nil
		up.connected.Store(false)
		up.failed(r.backoff())
	}
	up.wmu.Unlock()
	// A dead engine drops its throttle with its connection.
	if up.throttled.Swap(false) {
		r.propagateThrottle()
	}
}

// propagateThrottle recomputes every node connection's pause state
// from the throttled-engine set and relays the changes. A node pauses
// while any engine its streams feed is throttled, and resumes when
// the last of them recovers.
func (r *Router) propagateThrottle() {
	r.mu.Lock()
	hot := make(map[string]bool)
	for id, up := range r.ups {
		if up.throttled.Load() {
			hot[id] = true
		}
	}
	nconns := make([]*nodeConn, 0, len(r.nconns))
	for nc := range r.nconns {
		nconns = append(nconns, nc)
	}
	r.mu.Unlock()
	for _, nc := range nconns {
		nc.mu.Lock()
		want := false
		for id := range nc.owners {
			if hot[id] {
				want = true
				break
			}
		}
		changed := want != nc.paused
		if changed {
			nc.paused = want
		}
		nc.mu.Unlock()
		if !changed {
			continue
		}
		if want {
			r.throttlePauses.Add(1)
		}
		body := rxnet.MarshalThrottle(rxnet.Throttle{Paused: want})
		if err := nc.writeFrame(rxnet.FrameThrottle, body); err != nil {
			r.logf("cluster: throttle relay to node: %v", err)
		}
	}
}

// handleAck trims a stream's replay buffer: the owner decoded every
// chunk through LastSeq, so none of them ever needs replaying again.
// This is what keeps crash failover exactly-once on the happy path —
// an evicted engine's streams replay only their unacked tail.
func (r *Router) handleAck(from *upstream, a rxnet.StreamAck) {
	r.mu.Lock()
	rt := r.routes[a.Session]
	r.mu.Unlock()
	if rt == nil {
		return
	}
	rt.fmu.Lock()
	defer rt.fmu.Unlock()
	if rt.owner != from.id {
		// Stale ack: the stream already moved; the new owner's acks are
		// the ones that matter now.
		return
	}
	// Serial-number comparisons throughout: a long-lived stream's Seq
	// wraps past MaxUint32, where naked uint32 ordering inverts and an
	// ack would either be ignored or trim the whole buffer.
	if rxnet.SeqLess(rt.ackedThrough, a.LastSeq) {
		rt.ackedThrough = a.LastSeq
	}
	drop := 0
	for drop < len(rt.replay) && rxnet.SeqLEq(rt.replay[drop].seq, a.LastSeq) {
		rt.replayBytes -= len(rt.replay[drop].body)
		drop++
	}
	if drop > 0 {
		rt.replay = append(rt.replay[:0], rt.replay[drop:]...)
	}
}

// handleNack moves a refused stream to a new owner and replays every
// chunk the old owner did not consume (Seq > LastSeq) from the replay
// buffer.
func (r *Router) handleNack(from *upstream, n rxnet.StreamNack) {
	r.mu.Lock()
	rt := r.routes[n.Session]
	r.mu.Unlock()
	if rt == nil {
		return
	}
	rt.fmu.Lock()
	defer rt.fmu.Unlock()
	if rt.owner != from.id {
		// Stale NACK: the stream already moved (e.g. the first chunk
		// was NACKed and follow-ups crossed it on the wire).
		return
	}
	up, ok := r.resolve(n.Session, from.id)
	if !ok {
		// Nobody else will take it; unresolve so the next live chunk
		// retries (the drain may have ended by then).
		r.logf("cluster: stream %d refused by %s and no engine will take it", n.Session, from.id)
		rt.owner = ""
		return
	}
	rt.owner = up.id
	r.handoffs.Add(1)
	r.streams.Add(1)
	// Replay the unconsumed window in order. If the buffer no longer
	// reaches back to LastSeq+1, the stream resumes with a gap and
	// the new owner's continuity cursor resets the session; count it.
	// Serial-number comparisons: seqs wrap on long-lived streams.
	if len(rt.replay) > 0 && rxnet.SeqLess(n.LastSeq+1, rt.replay[0].seq) {
		r.replayGaps.Add(1)
	}
	for _, c := range rt.replay {
		if rxnet.SeqLEq(c.seq, n.LastSeq) {
			continue
		}
		if err := r.send(up, rxnet.FrameSampleReplay, c.body); err != nil {
			r.logf("cluster: replay to %s: %v", up.id, err)
			r.failovers.Add(1)
			rt.owner = ""
			return
		}
		r.replayed.Add(1)
		r.chunksFwd.Add(1)
	}
}

// AdmitEngine adds (or refreshes) an engine on the active ring — the
// engine-initiated path behind EngineHello, no operator Rebalance
// required. Three cases:
//
//   - Unknown ID: the member joins the ring (epoch bump). Existing
//     streams stay sticky with their owners; future streams see it.
//   - Known ID, new address: the engine restarted elsewhere. The
//     address is refreshed in place (epoch bump, no ownership
//     movement — the ring hashes IDs only) and the stale connection
//     is dropped.
//   - Known ID, same address: a restart behind a stable address or a
//     keepalive re-hello. If the engine was in dial backoff, the
//     backoff clears so its streams return on their next chunk.
//     Applied immediately — no ring change, nothing to batch.
//
// Ring-changing admissions (the first two cases) coalesce inside
// RingBatchWindow: the first one arms a timer, everything arriving
// before it fires is absorbed as ONE epoch bump — a join stampede of
// N engines costs one rebalance instead of N. A negative window
// applies each admission synchronously.
//
// Admission never clears a draining flag — a keepalive from a
// draining engine must not un-drain it; the flag resets when the
// router redials the fresh process.
func (r *Router) AdmitEngine(m Member) {
	if m.ID == "" || m.Addr == "" {
		return
	}
	r.mu.Lock()
	if up := r.ups[m.ID]; up != nil && up.addr == m.Addr {
		if _, pending := r.pendAdmits[m.ID]; !pending {
			if !up.connected.Load() && (up.fails.Load() > 0 || up.downSince.Load() != 0) {
				up.recovered()
				r.joins.Add(1)
				r.logf("cluster: engine %s rejoined at %s", m.ID, m.Addr)
			}
			r.mu.Unlock()
			return
		}
		// A queued address move for this ID is pending; fall through so
		// the newest announcement wins when the batch flushes.
	}
	r.pendAdmits[m.ID] = m
	if r.cfg.RingBatchWindow > 0 {
		if r.pendTimer == nil {
			r.pendTimer = time.AfterFunc(r.cfg.RingBatchWindow, r.flushAdmits)
		}
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	r.flushAdmits()
}

// flushAdmits applies every admission queued in the batch window as
// one membership change: a single ring clone, a single epoch bump
// (Ring.Absorb), however many engines joined or moved. Runs on the
// batch timer, or synchronously when batching is disabled.
func (r *Router) flushAdmits() {
	var stale []*upstream
	r.mu.Lock()
	r.pendTimer = nil
	members := make([]Member, 0, len(r.pendAdmits))
	for _, m := range r.pendAdmits {
		// Drop entries that became no-ops while queued (a keepalive or
		// peer update already landed the same ID+addr).
		if up := r.ups[m.ID]; up != nil && up.addr == m.Addr {
			continue
		}
		members = append(members, m)
	}
	r.pendAdmits = make(map[string]Member)
	if len(members) == 0 {
		r.mu.Unlock()
		return
	}
	nr := r.ring.Clone()
	if !nr.Absorb(members) {
		r.mu.Unlock()
		return
	}
	r.ring = nr
	for _, m := range members {
		if old := r.ups[m.ID]; old != nil {
			stale = append(stale, old)
			r.logf("cluster: engine %s moved to %s (epoch %d)", m.ID, m.Addr, nr.Epoch())
		} else {
			r.logf("cluster: engine %s joined at %s (epoch %d, %d members)",
				m.ID, m.Addr, nr.Epoch(), nr.Len())
		}
		r.ups[m.ID] = &upstream{id: m.ID, addr: m.Addr}
		r.joins.Add(1)
	}
	r.ringBatches.Add(1)
	r.mu.Unlock()
	for _, up := range stale {
		up.wmu.Lock()
		if up.conn != nil {
			up.conn.Close()
			up.conn = nil
			up.connected.Store(false)
		}
		up.wmu.Unlock()
	}
	r.kickPeers()
}

// Rebalance installs a new ring. In-flight streams are sticky: by
// default only future streams see the new layout, which is what keeps
// membership changes lossless. With force, every routed stream whose
// owner changed is handed off now — the old owner gets a StreamEnd
// (finish the packet window, emit, release) and the stream continues
// on its new owner from its next chunk.
func (r *Router) Rebalance(ring *Ring, force bool) error {
	if ring == nil || ring.Len() == 0 {
		return errors.New("cluster: rebalance needs a non-empty ring")
	}
	r.mu.Lock()
	r.ring = ring
	keep := make(map[string]bool, ring.Len())
	for _, m := range ring.Members() {
		keep[m.ID] = true
		if _, ok := r.ups[m.ID]; !ok {
			r.ups[m.ID] = &upstream{id: m.ID, addr: m.Addr}
		}
	}
	// Members that left the ring take their upstreams with them —
	// routes they still own re-resolve on their next chunk, and hello
	// fan-out stops courting the departed engine. The connections stay
	// open until after the forced handoffs below so a departing owner
	// still receives its StreamEnd flush.
	departed := make(map[string]*upstream)
	for id, up := range r.ups {
		if !keep[id] {
			departed[id] = up
			delete(r.ups, id)
		}
	}
	type pending struct {
		session uint64
		rt      *route
	}
	var all []pending
	if force {
		all = make([]pending, 0, len(r.routes))
		for s, rt := range r.routes {
			all = append(all, pending{s, rt})
		}
	}
	r.mu.Unlock()
	r.logf("cluster: ring epoch %d installed (%d members, force=%v)", ring.Epoch(), ring.Len(), force)
	for _, p := range all {
		p.rt.fmu.Lock()
		if p.rt.owner == "" {
			p.rt.fmu.Unlock()
			continue
		}
		up, ok := r.resolve(p.session, "")
		if !ok || up.id == p.rt.owner {
			p.rt.fmu.Unlock()
			continue
		}
		r.mu.Lock()
		old := r.ups[p.rt.owner]
		r.mu.Unlock()
		if old == nil {
			old = departed[p.rt.owner]
		}
		if old != nil {
			// TCP ordering makes this lossless: the StreamEnd lands
			// after every chunk already forwarded, so the old owner
			// decodes everything it was given before flushing.
			body := rxnet.MarshalStreamEnd(rxnet.StreamEnd{Session: p.session})
			if err := r.send(old, rxnet.FrameStreamEnd, body); err != nil {
				r.logf("cluster: stream end to %s: %v", old.id, err)
			}
		}
		p.rt.owner = up.id
		r.handoffs.Add(1)
		r.streams.Add(1)
		p.rt.fmu.Unlock()
	}
	for _, up := range departed {
		up.wmu.Lock()
		if up.conn != nil {
			up.conn.Close()
			up.conn = nil
		}
		up.connected.Store(false)
		up.wmu.Unlock()
		r.logf("cluster: engine %s left the ring", up.id)
	}
	r.kickPeers()
	return nil
}

// janitor evicts idle routes (releasing the engine session with a
// StreamEnd so neither side leaks per-stream state) and engines that
// have been continuously unreachable past DeadEngineTimeout.
func (r *Router) janitor() {
	defer r.wg.Done()
	interval := 30 * time.Second
	if r.cfg.RouteIdleTimeout > 0 && r.cfg.RouteIdleTimeout/4 < interval {
		interval = r.cfg.RouteIdleTimeout / 4
	}
	if r.cfg.DeadEngineTimeout > 0 && r.cfg.DeadEngineTimeout/4 < interval {
		interval = r.cfg.DeadEngineTimeout / 4
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-r.closed:
			return
		case now := <-tick.C:
			if r.cfg.DeadEngineTimeout > 0 {
				r.evictDeadEngines(now)
			}
			if r.cfg.RouteIdleTimeout <= 0 {
				continue
			}
			type idle struct {
				session uint64
				owner   string
			}
			// Lock order is fmu -> r.mu everywhere else (resolve runs
			// under a route's fmu), so snapshot first and take each
			// fmu with r.mu released.
			r.mu.Lock()
			snapshot := make(map[uint64]*route, len(r.routes))
			for s, rt := range r.routes {
				snapshot[s] = rt
			}
			r.mu.Unlock()
			var stale []idle
			for s, rt := range snapshot {
				rt.fmu.Lock()
				quiet := now.Sub(rt.lastAct) > r.cfg.RouteIdleTimeout
				owner := rt.owner
				rt.fmu.Unlock()
				if !quiet {
					continue
				}
				r.mu.Lock()
				if r.routes[s] == rt {
					delete(r.routes, s)
					stale = append(stale, idle{s, owner})
				}
				r.mu.Unlock()
			}
			for _, st := range stale {
				r.routesEnded.Add(1)
				if st.owner == "" {
					continue
				}
				r.mu.Lock()
				up := r.ups[st.owner]
				r.mu.Unlock()
				if up != nil {
					body := rxnet.MarshalStreamEnd(rxnet.StreamEnd{Session: st.session})
					if err := r.send(up, rxnet.FrameStreamEnd, body); err != nil {
						r.logf("cluster: idle stream end to %s: %v", up.id, err)
					}
				}
			}
		}
	}
}

// evictDeadEngines removes ring members whose upstream has been
// continuously unreachable past DeadEngineTimeout. Their streams fail
// over permanently on their next chunk (the owner lookup misses and
// re-resolves); a later EngineHello re-admits the engine.
func (r *Router) evictDeadEngines(now time.Time) {
	cutoff := now.Add(-r.cfg.DeadEngineTimeout).UnixNano()
	var dead []*upstream
	r.mu.Lock()
	// One ring clone and ONE epoch bump however many engines die in
	// the same sweep — evictions batch like admissions do.
	var nr *Ring
	for id, up := range r.ups {
		ds := up.downSince.Load()
		if up.connected.Load() || ds == 0 || ds > cutoff {
			continue
		}
		if nr == nil {
			nr = r.ring.Clone()
		}
		nr.Remove(id)
		delete(r.ups, id)
		dead = append(dead, up)
	}
	if nr != nil && len(dead) > 0 {
		// Remove bumps per call; collapse the batch to a single bump.
		nr.epoch = r.ring.epoch + 1
		r.ring = nr
		r.ringBatches.Add(1)
	}
	r.mu.Unlock()
	if len(dead) == 0 {
		return
	}
	r.kickPeers()
	deadIDs := make(map[string]bool, len(dead))
	for _, up := range dead {
		deadIDs[up.id] = true
		r.evicted.Add(1)
		r.logf("cluster: engine %s evicted after %v unreachable", up.id, r.cfg.DeadEngineTimeout)
		up.wmu.Lock()
		if up.conn != nil {
			up.conn.Close()
			up.conn = nil
			up.connected.Store(false)
		}
		up.wmu.Unlock()
	}
	r.failOverRoutes(deadIDs)
}

// failOverRoutes moves every stream owned by an evicted engine to a
// survivor NOW, replaying its unacked replay buffer. Waiting for the
// stream's next live chunk is not enough: a stream whose node already
// finished sending never produces another chunk, so whatever the dead
// engine had received but not yet decoded would be lost silently even
// though the router still holds it. Acked streams (buffer empty) just
// unresolve — there is nothing left to deliver.
func (r *Router) failOverRoutes(dead map[string]bool) {
	// Lock order is fmu -> r.mu (resolve runs under a route's fmu), so
	// snapshot the table first and take each fmu with r.mu released.
	r.mu.Lock()
	snapshot := make(map[uint64]*route, len(r.routes))
	for s, rt := range r.routes {
		snapshot[s] = rt
	}
	r.mu.Unlock()
	for session, rt := range snapshot {
		rt.fmu.Lock()
		if !dead[rt.owner] {
			rt.fmu.Unlock()
			continue
		}
		rt.owner = ""
		if len(rt.replay) == 0 {
			rt.fmu.Unlock()
			continue
		}
		up, ok := r.resolve(session, "")
		if !ok {
			r.undeliv.Add(int64(len(rt.replay)))
			r.logf("cluster: stream %d orphaned by eviction and no engine will take it", session)
			rt.fmu.Unlock()
			continue
		}
		if rxnet.SeqLess(rt.ackedThrough+1, rt.replay[0].seq) {
			r.replayGaps.Add(1)
		}
		r.failovers.Add(1)
		r.handoffs.Add(1)
		r.streams.Add(1)
		var err error
		for _, c := range rt.replay {
			if err = r.send(up, rxnet.FrameSampleReplay, c.body); err != nil {
				break
			}
			r.chunksFwd.Add(1)
			r.replayed.Add(1)
		}
		if err != nil {
			// The survivor is down too; leave the route unresolved so
			// the next live chunk (or a later NACK) retries.
			r.logf("cluster: eviction replay to %s: %v", up.id, err)
		} else {
			rt.owner = up.id
			r.logf("cluster: stream %d failed over to %s after eviction (%d chunks replayed)",
				session, up.id, len(rt.replay))
		}
		rt.fmu.Unlock()
	}
}

// Stats returns an operational snapshot.
func (r *Router) Stats() RouterStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RouterStats{
		Routes:        len(r.routes),
		Engines:       r.ring.Len(),
		Epoch:         r.ring.Epoch(),
		Handoffs:      r.handoffs.Load(),
		Undeliverable: r.undeliv.Load(),
	}
	now := time.Now()
	for _, up := range r.ups {
		if up.draining.Load() {
			st.Draining++
		}
		if up.down(now) {
			st.Down++
		}
	}
	st.Peers = len(r.peers)
	for _, pl := range r.peers {
		if pl.connected.Load() {
			st.PeersUp++
		}
	}
	return st
}

// Addr returns the bound listen address ("" before Listen).
func (r *Router) Addr() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ln == nil {
		return ""
	}
	return r.ln.Addr().String()
}

// Close stops the listener, node handlers and upstream connections.
func (r *Router) Close() error {
	var err error
	r.closeOnce.Do(func() {
		close(r.closed)
		r.mu.Lock()
		if r.pendTimer != nil {
			r.pendTimer.Stop()
			r.pendTimer = nil
		}
		if r.ln != nil {
			err = r.ln.Close()
		}
		ups := r.upstreamsLocked()
		conns := make([]net.Conn, 0, len(r.nconns))
		for nc := range r.nconns {
			conns = append(conns, nc.c)
		}
		r.mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
		for _, up := range ups {
			up.wmu.Lock()
			if up.conn != nil {
				up.conn.Close()
				up.conn = nil
				up.connected.Store(false)
			}
			up.wmu.Unlock()
		}
		r.wg.Wait()
	})
	return err
}
