package cluster

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"passivelight/internal/rxnet"
)

// engineSim is a scripted cluster engine: a real ChunkListener plus a
// collector goroutine standing in for the decode pipeline.
type engineSim struct {
	id string
	l  *rxnet.ChunkListener

	mu     sync.Mutex
	events []rxnet.ChunkEvent
}

func startEngineSim(t *testing.T, id string) *engineSim {
	t.Helper()
	l, err := rxnet.ListenChunks("127.0.0.1:0", t.Logf)
	if err != nil {
		t.Fatalf("engine %s listen: %v", id, err)
	}
	e := &engineSim{id: id, l: l}
	go func() {
		for ev := range l.Chunks() {
			e.mu.Lock()
			e.events = append(e.events, ev)
			e.mu.Unlock()
		}
	}()
	t.Cleanup(func() { l.Close() })
	return e
}

func (e *engineSim) snapshot() []rxnet.ChunkEvent {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]rxnet.ChunkEvent(nil), e.events...)
}

// samplesFor sums delivered samples for one session.
func (e *engineSim) samplesFor(session uint64) int {
	n := 0
	for _, ev := range e.snapshot() {
		if ev.Session == session {
			n += len(ev.Samples)
		}
	}
	return n
}

// endedFor reports whether an End event was delivered for the session.
func (e *engineSim) endedFor(session uint64) bool {
	for _, ev := range e.snapshot() {
		if ev.Session == session && ev.End {
			return true
		}
	}
	return false
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// clusterRing builds a ring whose member addresses are the engines'
// real listen addresses.
func clusterRing(t *testing.T, engines ...*engineSim) *Ring {
	t.Helper()
	members := make([]Member, len(engines))
	for i, e := range engines {
		members[i] = Member{ID: e.id, Addr: e.l.Addr()}
	}
	ring, err := NewRing(0, members...)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	return ring
}

func startRouter(t *testing.T, cfg RouterConfig) (*Router, string) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	if cfg.RingBatchWindow == 0 {
		// Most tests assert one epoch bump per admission; batching
		// tests opt back in explicitly.
		cfg.RingBatchWindow = -1
	}
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	addr, err := r.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("router listen: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	return r, addr
}

// streamOwnedBy scans stream IDs until one hashes to the wanted
// engine, skipping IDs already claimed by the test.
func streamOwnedBy(t *testing.T, ring *Ring, node uint32, owner string, used map[uint32]bool) uint32 {
	t.Helper()
	for sid := uint32(1); sid < 1<<16; sid++ {
		if used[sid] {
			continue
		}
		key := uint64(node)<<32 | uint64(sid)
		if m, ok := ring.Owner(key); ok && m.ID == owner {
			used[sid] = true
			return sid
		}
	}
	t.Fatalf("no stream id owned by %s", owner)
	return 0
}

func dialNode(t *testing.T, addr string, id uint32) *rxnet.Node {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	n, err := rxnet.Dial(ctx, addr, rxnet.Hello{NodeID: id, Name: fmt.Sprintf("node-%d", id)})
	if err != nil {
		t.Fatalf("dial router: %v", err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

// Every chunk of every stream lands intact on the stream's ring
// owner, with no resets and no leakage onto the other engine.
func TestRouterRoutesByRing(t *testing.T) {
	a := startEngineSim(t, "engine-a")
	b := startEngineSim(t, "engine-b")
	ring := clusterRing(t, a, b)
	_, addr := startRouter(t, RouterConfig{Ring: ring})

	node := dialNode(t, addr, 7)
	const streams, chunks, per = 8, 3, 100
	samples := make([]float64, per)
	for i := range samples {
		samples[i] = float64(i)
	}
	for c := 0; c < chunks; c++ {
		for sid := uint32(1); sid <= streams; sid++ {
			if err := node.StreamChunk(sid, 1000, samples); err != nil {
				t.Fatalf("stream chunk: %v", err)
			}
		}
	}

	total := func() int {
		n := 0
		for _, e := range []*engineSim{a, b} {
			for _, ev := range e.snapshot() {
				n += len(ev.Samples)
			}
		}
		return n
	}
	waitFor(t, "all chunks delivered", func() bool { return total() == streams*chunks*per })

	byID := map[string]*engineSim{"engine-a": a, "engine-b": b}
	for sid := uint32(1); sid <= streams; sid++ {
		session := uint64(7)<<32 | uint64(sid)
		m, ok := ring.Owner(session)
		if !ok {
			t.Fatalf("no owner for session %d", session)
		}
		owner := byID[m.ID]
		if got := owner.samplesFor(session); got != chunks*per {
			t.Errorf("session %d: owner %s got %d samples, want %d", session, m.ID, got, chunks*per)
		}
		for id, e := range byID {
			if id == m.ID {
				continue
			}
			if got := e.samplesFor(session); got != 0 {
				t.Errorf("session %d leaked %d samples onto %s", session, got, id)
			}
		}
		for _, ev := range owner.snapshot() {
			if ev.Session == session && ev.Reset {
				t.Errorf("session %d flagged reset on its owner", session)
			}
		}
	}
}

// A draining engine keeps its in-flight streams but new streams are
// routed to the surviving engine — the router learns the drain from
// the FrameDrain notice on its upstream connection.
func TestRouterDrainRoutesNewStreamsAway(t *testing.T) {
	a := startEngineSim(t, "engine-a")
	b := startEngineSim(t, "engine-b")
	ring := clusterRing(t, a, b)
	r, addr := startRouter(t, RouterConfig{Ring: ring})

	node := dialNode(t, addr, 1)
	used := map[uint32]bool{}
	inflight := streamOwnedBy(t, ring, 1, "engine-a", used)
	fresh := streamOwnedBy(t, ring, 1, "engine-a", used)
	inKey := uint64(1)<<32 | uint64(inflight)
	freshKey := uint64(1)<<32 | uint64(fresh)
	samples := make([]float64, 50)

	for i := 0; i < 2; i++ {
		if err := node.StreamChunk(inflight, 1000, samples); err != nil {
			t.Fatalf("stream chunk: %v", err)
		}
	}
	waitFor(t, "in-flight stream on engine-a", func() bool { return a.samplesFor(inKey) == 100 })

	a.l.Drain()
	waitFor(t, "router to observe drain", func() bool { return r.Stats().Draining == 1 })

	// New stream: ring says engine-a, drain steers it to engine-b.
	for i := 0; i < 3; i++ {
		if err := node.StreamChunk(fresh, 1000, samples); err != nil {
			t.Fatalf("stream chunk: %v", err)
		}
	}
	waitFor(t, "fresh stream on engine-b", func() bool { return b.samplesFor(freshKey) == 150 })
	if got := a.samplesFor(freshKey); got != 0 {
		t.Errorf("draining engine got %d samples of the fresh stream", got)
	}

	// The in-flight stream keeps flowing to the draining engine.
	if err := node.StreamChunk(inflight, 1000, samples); err != nil {
		t.Fatalf("stream chunk: %v", err)
	}
	waitFor(t, "in-flight stream still on engine-a", func() bool { return a.samplesFor(inKey) == 150 })
	if got := b.samplesFor(inKey); got != 0 {
		t.Errorf("in-flight stream leaked %d samples onto engine-b", got)
	}
}

// ForceRedirect during a drain hands the straggler to the other
// engine with zero loss and zero duplication: the old owner flushes
// (End event), the NACK replays anything it did not consume, and
// every sample is delivered exactly once across the fleet.
func TestRouterForceRedirectHandoffZeroLoss(t *testing.T) {
	a := startEngineSim(t, "engine-a")
	b := startEngineSim(t, "engine-b")
	ring := clusterRing(t, a, b)
	r, addr := startRouter(t, RouterConfig{Ring: ring})

	node := dialNode(t, addr, 3)
	used := map[uint32]bool{}
	sid := streamOwnedBy(t, ring, 3, "engine-a", used)
	key := uint64(3)<<32 | uint64(sid)
	samples := make([]float64, 100)

	for i := 0; i < 4; i++ {
		if err := node.StreamChunk(sid, 1000, samples); err != nil {
			t.Fatalf("stream chunk: %v", err)
		}
	}
	waitFor(t, "first window on engine-a", func() bool { return a.samplesFor(key) == 400 })

	a.l.Drain()
	waitFor(t, "router to observe drain", func() bool { return r.Stats().Draining == 1 })
	if !a.l.ForceRedirect(key) {
		t.Fatal("ForceRedirect: stream not known")
	}

	for i := 0; i < 4; i++ {
		if err := node.StreamChunk(sid, 1000, samples); err != nil {
			t.Fatalf("stream chunk: %v", err)
		}
	}
	waitFor(t, "second window on engine-b", func() bool { return b.samplesFor(key) == 400 })
	if got := a.samplesFor(key); got != 400 {
		t.Errorf("old owner delivered %d samples, want exactly 400 (no dup, no loss)", got)
	}
	if !a.endedFor(key) {
		t.Error("old owner never got the End event (decode session would leak)")
	}
	waitFor(t, "handoff counted", func() bool { return r.Stats().Handoffs >= 1 })
	if n := r.nacksRecv.Load(); n < 1 {
		t.Errorf("router counted %d NACKs, want >= 1", n)
	}
}

// White-box: a NACK replays exactly the buffered chunks past LastSeq,
// in order, on the stream's new owner.
func TestRouterNackReplay(t *testing.T) {
	a := startEngineSim(t, "engine-a")
	b := startEngineSim(t, "engine-b")
	ring := clusterRing(t, a, b)
	r, _ := startRouter(t, RouterConfig{Ring: ring})

	used := map[uint32]bool{}
	sid := streamOwnedBy(t, ring, 9, "engine-a", used)
	key := uint64(9)<<32 | uint64(sid)
	samples := make([]float64, 25)
	for seq := uint32(1); seq <= 3; seq++ {
		body, err := rxnet.MarshalSampleChunk(rxnet.SampleChunk{
			NodeID: 9, StreamID: sid, Seq: seq,
			Fs: 1000, Start: uint64(seq-1) * 25, Samples: samples,
		})
		if err != nil {
			t.Fatalf("marshal chunk: %v", err)
		}
		r.forward(nil, key, seq, body, rxnet.FrameSampleChunk)
	}
	waitFor(t, "chunks on engine-a", func() bool { return a.samplesFor(key) == 75 })

	// Engine-a consumed through seq 1; replay 2 and 3 on engine-b.
	r.handleNack(r.ups["engine-a"], rxnet.StreamNack{Session: key, LastSeq: 1})
	waitFor(t, "replayed chunks on engine-b", func() bool { return b.samplesFor(key) == 50 })
	if got := r.replayed.Load(); got != 2 {
		t.Errorf("replayed counter = %d, want 2", got)
	}
	if got := r.replayGaps.Load(); got != 0 {
		t.Errorf("replay gaps = %d, want 0", got)
	}
	evs := b.snapshot()
	if len(evs) != 2 || evs[0].Reset || evs[1].Reset {
		t.Errorf("replay delivered %d events (resets %v) — want 2 contiguous", len(evs), evs)
	}

	// A duplicate (stale) NACK from the old owner must be a no-op.
	r.handleNack(r.ups["engine-a"], rxnet.StreamNack{Session: key, LastSeq: 1})
	time.Sleep(20 * time.Millisecond)
	if got := b.samplesFor(key); got != 50 {
		t.Errorf("stale NACK re-replayed: engine-b now has %d samples", got)
	}
}

// A forced Rebalance moves a routed stream immediately: the old owner
// gets a StreamEnd (flush + release) and subsequent chunks flow to
// the new ring's owner.
func TestRouterForcedRebalance(t *testing.T) {
	a := startEngineSim(t, "engine-a")
	b := startEngineSim(t, "engine-b")
	ring := clusterRing(t, a, b)
	r, addr := startRouter(t, RouterConfig{Ring: ring})

	node := dialNode(t, addr, 5)
	used := map[uint32]bool{}
	sid := streamOwnedBy(t, ring, 5, "engine-a", used)
	key := uint64(5)<<32 | uint64(sid)
	samples := make([]float64, 80)

	for i := 0; i < 2; i++ {
		if err := node.StreamChunk(sid, 1000, samples); err != nil {
			t.Fatalf("stream chunk: %v", err)
		}
	}
	waitFor(t, "stream on engine-a", func() bool { return a.samplesFor(key) == 160 })

	ring2, err := NewRing(0, Member{ID: "engine-b", Addr: b.l.Addr()})
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	if err := r.Rebalance(ring2, true); err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	waitFor(t, "old owner flushed", func() bool { return a.endedFor(key) })

	for i := 0; i < 2; i++ {
		if err := node.StreamChunk(sid, 1000, samples); err != nil {
			t.Fatalf("stream chunk: %v", err)
		}
	}
	waitFor(t, "stream on engine-b", func() bool { return b.samplesFor(key) == 160 })
	if got := a.samplesFor(key); got != 160 {
		t.Errorf("old owner delivered %d samples after rebalance, want 160", got)
	}
	if st := r.Stats(); st.Epoch != ring2.Epoch() || st.Engines != 1 || st.Handoffs < 1 {
		t.Errorf("stats after rebalance: %+v", st)
	}
}

// An engine that dies mid-stream (no drain, no NACK) fails the stream
// over: the router moves it to the survivor and keeps forwarding.
func TestRouterFailoverOnEngineCrash(t *testing.T) {
	a := startEngineSim(t, "engine-a")
	b := startEngineSim(t, "engine-b")
	ring := clusterRing(t, a, b)
	r, addr := startRouter(t, RouterConfig{Ring: ring})

	node := dialNode(t, addr, 2)
	used := map[uint32]bool{}
	sid := streamOwnedBy(t, ring, 2, "engine-a", used)
	key := uint64(2)<<32 | uint64(sid)
	samples := make([]float64, 10)

	if err := node.StreamChunk(sid, 1000, samples); err != nil {
		t.Fatalf("stream chunk: %v", err)
	}
	waitFor(t, "stream on engine-a", func() bool { return a.samplesFor(key) == 10 })

	a.l.Close()

	// Keep sending until the failover lands. The crash loses nothing
	// the router still holds: the survivor gets the stream's full
	// retained buffer replayed in front of the live chunk (what the
	// dead engine consumed is unknown, so at-least-once, and the blank
	// continuity cursor on the new owner makes that safe).
	sent := 1
	waitFor(t, "failover to engine-b", func() bool {
		if err := node.StreamChunk(sid, 1000, samples); err != nil {
			t.Fatalf("stream chunk: %v", err)
		}
		sent++
		time.Sleep(10 * time.Millisecond)
		return b.samplesFor(key) > 0
	})
	waitFor(t, "full stream replayed on engine-b", func() bool {
		return b.samplesFor(key) == sent*10
	})
	if got := r.failovers.Load(); got < 1 {
		t.Errorf("failovers = %d, want >= 1", got)
	}
	if got := r.replayed.Load(); got < 1 {
		t.Errorf("replayed = %d, want >= 1 (crash failover must replay the buffer)", got)
	}
}

// Evicting a dead engine fails its streams over immediately — a stream
// whose node already finished sending never produces the live chunk
// that would otherwise trigger the failover, so the survivor must get
// the retained buffer now. Acked streams (the old owner confirmed the
// decode) replay nothing: that is what keeps eviction exactly-once on
// the happy path instead of re-decoding the whole fleet.
func TestEvictionFailsOverUnackedStreams(t *testing.T) {
	a := startEngineSim(t, "engine-a")
	b := startEngineSim(t, "engine-b")
	ring := clusterRing(t, a, b)
	r, _ := startRouter(t, RouterConfig{
		Ring:              ring,
		RedialBackoff:     10 * time.Millisecond,
		DeadEngineTimeout: 80 * time.Millisecond,
	})

	used := map[uint32]bool{}
	stuck := streamOwnedBy(t, ring, 11, "engine-a", used)
	done := streamOwnedBy(t, ring, 11, "engine-a", used)
	stuckKey := uint64(11)<<32 | uint64(stuck)
	doneKey := uint64(11)<<32 | uint64(done)
	samples := make([]float64, 25)
	for _, sid := range []uint32{stuck, done} {
		for seq := uint32(1); seq <= 3; seq++ {
			body, err := rxnet.MarshalSampleChunk(rxnet.SampleChunk{
				NodeID: 11, StreamID: sid, Seq: seq,
				Fs: 1000, Start: uint64(seq-1) * 25, Samples: samples,
			})
			if err != nil {
				t.Fatalf("marshal chunk: %v", err)
			}
			r.forward(nil, uint64(11)<<32|uint64(sid), seq, body, rxnet.FrameSampleChunk)
		}
	}
	waitFor(t, "both streams on engine-a", func() bool {
		return a.samplesFor(stuckKey) == 75 && a.samplesFor(doneKey) == 75
	})

	// engine-a decodes the done stream and acks it; the router trims
	// its replay buffer to nothing.
	if !a.l.AckSession(doneKey) {
		t.Fatal("AckSession did not know the stream")
	}
	waitFor(t, "ack to trim the replay buffer", func() bool {
		rt, _ := r.routeFor(doneKey)
		rt.fmu.Lock()
		defer rt.fmu.Unlock()
		return len(rt.replay) == 0
	})

	// engine-a dies with the stuck stream undecoded and both nodes
	// done sending — no live chunk will ever trigger a forward.
	a.l.Close()
	waitFor(t, "dead engine evicted", func() bool { return r.Stats().Engines == 1 })

	// Eviction replays the stuck stream's full buffer on the survivor
	// and leaves the acked stream alone.
	waitFor(t, "stuck stream replayed on engine-b", func() bool {
		return b.samplesFor(stuckKey) == 75
	})
	if got := b.samplesFor(doneKey); got != 0 {
		t.Errorf("acked stream re-replayed %d samples on the survivor", got)
	}
	if got := r.failovers.Load(); got != 1 {
		t.Errorf("failovers = %d, want exactly 1 (the unacked stream)", got)
	}
	if got := r.acksRecv.Load(); got != 1 {
		t.Errorf("acks received = %d, want 1", got)
	}
	if got := r.replayGaps.Load(); got != 0 {
		t.Errorf("replay gaps = %d, want 0 (buffer was complete)", got)
	}
}
