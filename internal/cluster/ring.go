// Package cluster is the distributed receiver-network tier: a
// consistent-hash ring over the engine fleet plus a router front-end
// that spreads rxnet chunk streams across N engine processes, with
// session handoff and zero-loss graceful drain. See doc.go for the
// full topology.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
)

// DefaultVNodes is the virtual-node count per member when RingConfig
// leaves it zero. 128 points per member keeps the ownership imbalance
// of small fleets (2-8 engines) within a few percent while the ring
// stays tiny (a few KiB).
const DefaultVNodes = 128

// Member is one engine process on the ring.
type Member struct {
	// ID is the stable identity used for hashing — ownership follows
	// IDs, not addresses, so an engine restarted on a new port keeps
	// its ring slice when its ID is stable.
	ID string `json:"id"`
	// Addr is the engine's chunk-ingest listen address ("host:port").
	Addr string `json:"addr"`
}

// ringPoint is one virtual node: a position on the 64-bit hash circle
// owned by Members[member].
type ringPoint struct {
	hash   uint64
	member int
}

// Ring is a deterministic consistent-hash ring with virtual nodes:
// every member contributes VNodes points on a 64-bit hash circle and
// a stream key is owned by the member of the first point at or after
// the key's hash (wrapping). The layout is a pure function of the
// member IDs and VNodes — independent of member order, process, or
// platform — so every process that loads the same ring JSON agrees on
// ownership. Epoch versions the membership: Add/Remove bump it, and
// routers re-resolve ownership when they observe a bump.
//
// Ring is not safe for concurrent mutation; guard it externally (the
// Router does).
type Ring struct {
	vnodes  int
	epoch   uint64
	members []Member
	points  []ringPoint
}

// ringJSON is the wire form of a Ring.
type ringJSON struct {
	VNodes  int      `json:"vnodes"`
	Epoch   uint64   `json:"epoch"`
	Members []Member `json:"members"`
}

// NewRing builds a ring over the members. vnodes <= 0 selects
// DefaultVNodes. Member IDs must be unique and non-empty.
func NewRing(vnodes int, members ...Member) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{vnodes: vnodes}
	for _, m := range members {
		if err := r.add(m); err != nil {
			return nil, err
		}
	}
	r.rebuild()
	return r, nil
}

// VNodes returns the per-member virtual-node count.
func (r *Ring) VNodes() int { return r.vnodes }

// Epoch returns the membership version. It bumps on every Add/Remove,
// so a router can cheaply detect that ownership must be re-resolved.
func (r *Ring) Epoch() uint64 { return r.epoch }

// Members returns the member set in insertion order (copy).
func (r *Ring) Members() []Member {
	return append([]Member(nil), r.members...)
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// add validates and appends a member without rebuilding.
func (r *Ring) add(m Member) error {
	if m.ID == "" {
		return errors.New("cluster: ring member needs a non-empty ID")
	}
	for _, have := range r.members {
		if have.ID == m.ID {
			return fmt.Errorf("cluster: ring member %q already present", m.ID)
		}
	}
	r.members = append(r.members, m)
	return nil
}

// Add inserts a member and bumps the epoch.
func (r *Ring) Add(m Member) error {
	if err := r.add(m); err != nil {
		return err
	}
	r.epoch++
	r.rebuild()
	return nil
}

// Clone returns an independent copy: same members, epoch and layout,
// sharing no state with the receiver. The Router mutates clones so a
// caller-held ring is never written behind its back.
func (r *Ring) Clone() *Ring {
	c := &Ring{vnodes: r.vnodes, epoch: r.epoch, members: append([]Member(nil), r.members...)}
	c.rebuild()
	return c
}

// SetAddr updates a member's address, bumping the epoch. Ownership
// hashes IDs only, so no streams move — this is how a restarted
// engine that kept its ID but landed on a new port rejoins without a
// rebalance. It reports whether the member was present; an unchanged
// address is a no-op (no epoch bump).
func (r *Ring) SetAddr(id, addr string) bool {
	for i := range r.members {
		if r.members[i].ID == id {
			if r.members[i].Addr != addr {
				r.members[i].Addr = addr
				r.epoch++
			}
			return true
		}
	}
	return false
}

// Absorb applies a batch of admissions as one membership change: each
// member is added if its ID is new, or has its address refreshed if
// it moved. However many members land, the epoch bumps AT MOST once —
// this is what lets a router coalesce a join stampede into a single
// rebalance instead of N epochs. It reports whether anything changed
// (and hence whether the epoch bumped). Members with empty IDs and
// exact duplicates of existing members are skipped.
func (r *Ring) Absorb(members []Member) bool {
	changed := false
	for _, m := range members {
		if m.ID == "" {
			continue
		}
		found := false
		for i := range r.members {
			if r.members[i].ID == m.ID {
				found = true
				if r.members[i].Addr != m.Addr {
					r.members[i].Addr = m.Addr
					changed = true
				}
				break
			}
		}
		if !found {
			r.members = append(r.members, m)
			changed = true
		}
	}
	if changed {
		r.epoch++
		r.rebuild()
	}
	return changed
}

// Remove deletes the member with the given ID, bumping the epoch.
// It reports whether the member was present.
func (r *Ring) Remove(id string) bool {
	for i, m := range r.members {
		if m.ID == id {
			r.members = append(r.members[:i], r.members[i+1:]...)
			r.epoch++
			r.rebuild()
			return true
		}
	}
	return false
}

// rebuild recomputes the point set from the member list. Points hash
// only member IDs and vnode indices, and ties sort by member ID, so
// the layout is invariant under member-list permutation.
func (r *Ring) rebuild() {
	r.points = r.points[:0]
	for i, m := range r.members {
		seed := fnv1a64(m.ID)
		for v := 0; v < r.vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:   splitmix64(seed + uint64(v)),
				member: i,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		pi, pj := r.points[i], r.points[j]
		if pi.hash != pj.hash {
			return pi.hash < pj.hash
		}
		return r.members[pi.member].ID < r.members[pj.member].ID
	})
}

// Owner returns the member owning a stream key. ok is false on an
// empty ring.
func (r *Ring) Owner(key uint64) (Member, bool) {
	return r.OwnerAvoiding(key, nil)
}

// OwnerAvoiding returns the first owner of key, walking the ring past
// members for which avoid returns true (draining or down engines).
// ok is false when the ring is empty or every member is avoided.
func (r *Ring) OwnerAvoiding(key uint64, avoid func(Member) bool) (Member, bool) {
	if len(r.points) == 0 {
		return Member{}, false
	}
	h := splitmix64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	tried := make(map[int]bool, len(r.members))
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if tried[p.member] {
			continue
		}
		m := r.members[p.member]
		if avoid == nil || !avoid(m) {
			return m, true
		}
		tried[p.member] = true
		if len(tried) == len(r.members) {
			return Member{}, false
		}
	}
	return Member{}, false
}

// MarshalJSON serializes the ring (vnodes, epoch, members); the point
// layout is derived, so it never travels.
func (r *Ring) MarshalJSON() ([]byte, error) {
	return json.Marshal(ringJSON{VNodes: r.vnodes, Epoch: r.epoch, Members: r.Members()})
}

// UnmarshalJSON loads a serialized ring and rebuilds the point
// layout, so all processes that load the same JSON agree on
// ownership.
func (r *Ring) UnmarshalJSON(b []byte) error {
	var w ringJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	if w.VNodes <= 0 {
		w.VNodes = DefaultVNodes
	}
	loaded := Ring{vnodes: w.VNodes}
	for _, m := range w.Members {
		if err := loaded.add(m); err != nil {
			return err
		}
	}
	loaded.epoch = w.Epoch
	loaded.rebuild()
	*r = loaded
	return nil
}

// fnv1a64 hashes a string with 64-bit FNV-1a — stable across
// processes and platforms, unlike hash/maphash.
func fnv1a64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// splitmix64 is the finalizer of the splitmix64 generator: a cheap,
// well-mixed 64-bit permutation used both to spread vnode points and
// to mix stream keys (which are often dense small integers).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
