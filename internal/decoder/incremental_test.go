package decoder

import (
	"math/rand"
	"testing"
)

// multiPassStream concatenates several synthetic packet traces with
// long quiet gaps, as a receiver watching a lane would see them.
func multiPassStream(payloads []string, fs, symbolDur, high, low, baseline, gapSec float64, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	gap := int(gapSec * fs)
	var out []float64
	appendQuiet := func(n int) {
		for i := 0; i < n; i++ {
			out = append(out, baseline+noise*rng.NormFloat64())
		}
	}
	appendQuiet(gap)
	for _, p := range payloads {
		tr := syntheticPacketTrace(p, fs, symbolDur, high, low, baseline, 0)
		for _, s := range tr.Samples {
			out = append(out, s+noise*rng.NormFloat64())
		}
		appendQuiet(gap)
	}
	return out
}

func TestIncrementalSegmentsMultiPassStream(t *testing.T) {
	payloads := []string{"10", "0110", "00"}
	samples := multiPassStream(payloads, 1000, 0.2, 90, 12, 10, 3.0, 0.3, 7)
	inc := NewIncremental(1000, Options{}, IncrementalConfig{})
	var segs []SegmentResult
	for lo := 0; lo < len(samples); lo += 512 {
		hi := lo + 512
		if hi > len(samples) {
			hi = len(samples)
		}
		segs = append(segs, inc.Feed(samples[lo:hi])...)
	}
	segs = append(segs, inc.Flush()...)
	if len(segs) != len(payloads) {
		t.Fatalf("got %d segments, want %d", len(segs), len(payloads))
	}
	for i, seg := range segs {
		if seg.Err != nil {
			t.Fatalf("segment %d: %v", i, seg.Err)
		}
		if seg.Result.ParseErr != nil {
			t.Fatalf("segment %d: parse: %v (%s)", i, seg.Result.ParseErr, seg.Result.SymbolString())
		}
		if got := seg.Result.Packet.BitString(); got != payloads[i] {
			t.Fatalf("segment %d decoded %q, want %q", i, got, payloads[i])
		}
		if seg.Start >= seg.End || seg.End > int64(len(samples)) {
			t.Fatalf("segment %d span [%d, %d) out of range", i, seg.Start, seg.End)
		}
	}
	// Memory stays bounded: after three passes the machine retains at
	// most the pre-roll, never the whole stream.
	if inc.Buffered() > 2*1000 {
		t.Fatalf("retained %d samples after flush, want bounded", inc.Buffered())
	}
}

// Chunk boundaries must not matter: sample-by-sample, odd chunks and
// one-shot feeding yield the same segments and payloads.
func TestIncrementalChunkInvariance(t *testing.T) {
	samples := multiPassStream([]string{"10", "111000"}, 1000, 0.2, 90, 12, 10, 2.5, 0.3, 11)
	decodeWith := func(chunk int) []string {
		inc := NewIncremental(1000, Options{}, IncrementalConfig{})
		var segs []SegmentResult
		for lo := 0; lo < len(samples); lo += chunk {
			hi := lo + chunk
			if hi > len(samples) {
				hi = len(samples)
			}
			segs = append(segs, inc.Feed(samples[lo:hi])...)
		}
		segs = append(segs, inc.Flush()...)
		var got []string
		for _, s := range segs {
			if s.Err == nil && s.Result.ParseErr == nil {
				got = append(got, s.Result.Packet.BitString())
			}
		}
		return got
	}
	want := decodeWith(len(samples))
	if len(want) != 2 {
		t.Fatalf("one-shot feed decoded %v, want 2 payloads", want)
	}
	for _, chunk := range []int{1, 7, 64, 333, 4096} {
		got := decodeWith(chunk)
		if len(got) != len(want) {
			t.Fatalf("chunk %d: decoded %v, want %v", chunk, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("chunk %d: payload %d = %q, want %q", chunk, i, got[i], want[i])
			}
		}
	}
}

// Batch mode must reproduce Decode exactly — Decode itself is now a
// wrapper, so this guards the wrapper plumbing (chunked feeding into
// batch mode changes nothing).
func TestIncrementalBatchModeMatchesDecode(t *testing.T) {
	tr := syntheticPacketTrace("0110", 1000, 0.2, 90, 12, 10, 1.5)
	want, err := Decode(tr, Options{ExpectedSymbols: 12})
	if err != nil {
		t.Fatal(err)
	}
	inc := NewIncremental(tr.Fs, Options{ExpectedSymbols: 12}, BatchConfig())
	for lo := 0; lo < tr.Len(); lo += 100 {
		hi := lo + 100
		if hi > tr.Len() {
			hi = tr.Len()
		}
		if got := inc.Feed(tr.Samples[lo:hi]); len(got) != 0 {
			t.Fatalf("batch mode emitted %d segments before flush", len(got))
		}
	}
	segs := inc.Flush()
	if len(segs) != 1 || segs[0].Err != nil {
		t.Fatalf("flush: %+v", segs)
	}
	if segs[0].Result.SymbolString() != want.SymbolString() {
		t.Fatalf("chunked batch %q, direct %q", segs[0].Result.SymbolString(), want.SymbolString())
	}
	if segs[0].Result.Packet.BitString() != want.Packet.BitString() {
		t.Fatalf("chunked batch bits %q, direct %q", segs[0].Result.Packet.BitString(), want.Packet.BitString())
	}
}
