package decoder

import (
	"testing"

	"passivelight/internal/trace"
)

// syntheticCarTrace emulates a car pass: ground baseline, hood peak,
// windshield valley, roof (optionally carrying a stripe code), rear
// glass valley, optional trunk peak, ground.
func syntheticCarTrace(fs float64, withTrunk bool, roofCode []float64) *trace.Trace {
	seg := func(level float64, dur float64) []float64 {
		out := make([]float64, int(dur*fs))
		for i := range out {
			out[i] = level
		}
		return out
	}
	var x []float64
	x = append(x, seg(20, 0.3)...)  // ground
	x = append(x, seg(80, 0.25)...) // hood
	x = append(x, seg(30, 0.15)...) // windshield
	if roofCode == nil {
		x = append(x, seg(75, 0.3)...) // bare roof
	} else {
		x = append(x, seg(75, 0.05)...) // roof before tag
		for _, level := range roofCode {
			x = append(x, seg(level, 0.04)...)
		}
		x = append(x, seg(75, 0.05)...) // roof after tag
	}
	x = append(x, seg(28, 0.15)...) // rear glass
	if withTrunk {
		x = append(x, seg(78, 0.2)...) // trunk
	}
	x = append(x, seg(20, 0.3)...) // ground
	return trace.New(fs, 0, x)
}

func TestDetectCarShape(t *testing.T) {
	tr := syntheticCarTrace(2000, false, nil)
	sig, err := DetectCarShape(tr)
	if err != nil {
		t.Fatal(err)
	}
	if sig.HoodPeakIndex <= 0 {
		t.Fatal("hood peak not found")
	}
	if sig.WindshieldValleyIndex <= sig.HoodPeakIndex {
		t.Fatal("windshield valley must follow the hood peak")
	}
	if sig.RoofStartIndex != sig.WindshieldValleyIndex {
		t.Fatal("roof start should anchor at the windshield valley")
	}
	// Hood peak lands inside the hood segment (0.3-0.55 s).
	hoodT := tr.TimeAt(sig.HoodPeakIndex)
	if hoodT < 0.3 || hoodT > 0.55 {
		t.Fatalf("hood peak at %.3f s", hoodT)
	}
}

func TestMatchCarModelHatchbackVsSedan(t *testing.T) {
	hatch, err := DetectCarShape(syntheticCarTrace(2000, false, nil))
	if err != nil {
		t.Fatal(err)
	}
	if got := MatchCarModel(hatch); got != "hatchback" {
		t.Fatalf("hatchback classified as %q", got)
	}
	sedan, err := DetectCarShape(syntheticCarTrace(2000, true, nil))
	if err != nil {
		t.Fatal(err)
	}
	if got := MatchCarModel(sedan); got != "sedan" {
		t.Fatalf("sedan classified as %q", got)
	}
}

func TestDetectCarShapeErrors(t *testing.T) {
	if _, err := DetectCarShape(nil); err == nil {
		t.Fatal("nil trace should fail")
	}
	flat := make([]float64, 1000)
	for i := range flat {
		flat[i] = 40
	}
	if _, err := DetectCarShape(trace.New(2000, 0, flat)); err == nil {
		t.Fatal("flat trace should fail")
	}
}

func TestDecodeCarPassTwoPhases(t *testing.T) {
	// Roof code HLHL.HLHL as plateau levels (H=95, L=35 on a 75 roof).
	code := []float64{95, 35, 95, 35, 95, 35, 95, 35}
	tr := syntheticCarTrace(2000, false, code)
	res, err := DecodeCarPass(tr, Options{ExpectedSymbols: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decode.ParseErr != nil {
		t.Fatalf("parse: %v (%s)", res.Decode.ParseErr, res.Decode.SymbolString())
	}
	if got := res.Decode.Packet.BitString(); got != "00" {
		t.Fatalf("decoded %q, want 00", got)
	}
}

func TestDecodeCarPassFailsWithoutCar(t *testing.T) {
	flat := make([]float64, 2000)
	for i := range flat {
		flat[i] = 40
	}
	if _, err := DecodeCarPass(trace.New(2000, 0, flat), Options{}); err == nil {
		t.Fatal("expected phase-1 failure")
	}
}

func TestMatchCarModelUnknown(t *testing.T) {
	if got := MatchCarModel(CarSignature{}); got != "unknown" {
		t.Fatalf("empty signature classified as %q", got)
	}
}
