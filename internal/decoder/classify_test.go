package decoder

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"passivelight/internal/trace"
)

// warpedCopy time-compresses the second half of a signal by factor 2,
// mimicking the paper's mid-pass speed doubling.
func warpedCopy(x []float64) []float64 {
	half := len(x) / 2
	out := append([]float64{}, x[:half]...)
	for i := half; i < len(x); i += 2 {
		out = append(out, x[i])
	}
	return out
}

func TestClassifierPicksCorrectBaseline(t *testing.T) {
	a := syntheticPacketTrace("00", 1000, 0.2, 90, 12, 10, 0)
	b := syntheticPacketTrace("10", 1000, 0.2, 90, 12, 10, 0)
	cls := NewClassifier(256)
	if err := cls.AddBaseline("00", a); err != nil {
		t.Fatal(err)
	}
	if err := cls.AddBaseline("10", b); err != nil {
		t.Fatal(err)
	}
	// Distort the '10' packet with a mid-pass speed doubling.
	distorted := trace.New(1000, 0, warpedCopy(b.Samples))
	matches, err := cls.Classify(distorted)
	if err != nil {
		t.Fatal(err)
	}
	if matches[0].Label != "10" {
		t.Fatalf("classified as %q (distances %+v)", matches[0].Label, matches)
	}
	if matches[0].Distance >= matches[1].Distance {
		t.Fatal("matches not sorted by distance")
	}
}

func TestClassifierSelfDistanceSmall(t *testing.T) {
	a := syntheticPacketTrace("00", 1000, 0.2, 90, 12, 10, 0)
	b := syntheticPacketTrace("10", 1000, 0.2, 90, 12, 10, 0)
	cls := NewClassifier(256)
	if err := cls.AddBaseline("00", a); err != nil {
		t.Fatal(err)
	}
	self, err := cls.SelfDistance(a)
	if err != nil {
		t.Fatal(err)
	}
	m, err := cls.Classify(b)
	if err != nil {
		t.Fatal(err)
	}
	// The self-distance scale must sit below the cross-packet
	// distance (as 131 < 172 in the paper).
	if self >= m[0].Distance {
		t.Fatalf("self %v >= cross %v", self, m[0].Distance)
	}
}

func TestClassifierWindowed(t *testing.T) {
	a := syntheticPacketTrace("00", 1000, 0.2, 90, 12, 10, 0)
	b := syntheticPacketTrace("10", 1000, 0.2, 90, 12, 10, 0)
	cls := NewClassifier(128).WithWindow(32)
	if err := cls.AddBaseline("00", a); err != nil {
		t.Fatal(err)
	}
	if err := cls.AddBaseline("10", b); err != nil {
		t.Fatal(err)
	}
	m, err := cls.Classify(trace.New(1000, 0, warpedCopy(b.Samples)))
	if err != nil {
		t.Fatal(err)
	}
	if m[0].Label != "10" {
		t.Fatalf("banded classification %q", m[0].Label)
	}
}

func TestClassifierErrors(t *testing.T) {
	cls := NewClassifier(0) // default length
	if _, err := cls.Classify(syntheticPacketTrace("0", 1000, 0.2, 90, 12, 10, 0)); err == nil {
		t.Fatal("classify without baselines should fail")
	}
	if err := cls.AddBaseline("x", nil); err == nil {
		t.Fatal("nil baseline should fail")
	}
	if err := cls.AddBaseline("x", trace.New(1000, 0, []float64{1})); err == nil {
		t.Fatal("short baseline should fail")
	}
	ok := syntheticPacketTrace("0", 1000, 0.2, 90, 12, 10, 0)
	if err := cls.AddBaseline("ok", ok); err != nil {
		t.Fatal(err)
	}
	if _, err := cls.Classify(nil); err == nil {
		t.Fatal("nil probe should fail")
	}
	if _, err := cls.SelfDistance(nil); err == nil {
		t.Fatal("nil self-distance should fail")
	}
}

func TestEuclideanClassifierWeakerUnderWarp(t *testing.T) {
	// Construct a case where Euclidean matching fails but DTW works:
	// the warped '10' is point-wise closer to '00' than to '10' once
	// the second half shifts.
	a := syntheticPacketTrace("00", 1000, 0.2, 90, 12, 10, 0)
	b := syntheticPacketTrace("10", 1000, 0.2, 90, 12, 10, 0)
	dtwCls := NewClassifier(256)
	eucCls := NewClassifier(256)
	eucCls.UseEuclidean = true
	for _, c := range []*Classifier{dtwCls, eucCls} {
		if err := c.AddBaseline("00", a); err != nil {
			t.Fatal(err)
		}
		if err := c.AddBaseline("10", b); err != nil {
			t.Fatal(err)
		}
	}
	distorted := trace.New(1000, 0, warpedCopy(b.Samples))
	dm, err := dtwCls.Classify(distorted)
	if err != nil {
		t.Fatal(err)
	}
	em, err := eucCls.Classify(distorted)
	if err != nil {
		t.Fatal(err)
	}
	if dm[0].Label != "10" {
		t.Fatalf("DTW misclassified: %q", dm[0].Label)
	}
	// The Euclidean margin must be worse (smaller relative gap) even
	// if it happens to rank correctly.
	dtwGap := dm[1].Distance - dm[0].Distance
	eucGap := em[1].Distance - em[0].Distance
	if dm[0].Distance > 0 && em[0].Distance > 0 {
		if eucGap/em[0].Distance > dtwGap/dm[0].Distance {
			t.Fatalf("Euclidean margin (%.3f) should be weaker than DTW (%.3f)",
				eucGap/em[0].Distance, dtwGap/dm[0].Distance)
		}
	}
}

// TestNearestMatchesClassifyWinner pins the early-abandoning Nearest
// to Classify's full-sort winner across random baseline databases.
func TestNearestMatchesClassifyWinner(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		cls := NewClassifier(128)
		if trial%2 == 1 {
			cls.WithWindow(16)
		}
		for b := 0; b < 12; b++ {
			samples := make([]float64, 300+rng.Intn(200))
			phase := rng.Float64() * 10
			for i := range samples {
				samples[i] = 50 + 30*math.Sin(float64(i)/20+phase) + rng.NormFloat64()
			}
			if err := cls.AddBaseline(fmt.Sprintf("b%d", b), trace.New(1000, 0, samples)); err != nil {
				t.Fatal(err)
			}
		}
		probe := make([]float64, 400)
		phase := rng.Float64() * 10
		for i := range probe {
			probe[i] = 50 + 30*math.Sin(float64(i)/18+phase) + rng.NormFloat64()
		}
		tr := trace.New(1000, 0, probe)
		matches, err := cls.Classify(tr)
		if err != nil {
			t.Fatal(err)
		}
		best, err := cls.Nearest(tr)
		if err != nil {
			t.Fatal(err)
		}
		if best.Label != matches[0].Label || best.Distance != matches[0].Distance {
			t.Fatalf("trial %d: Nearest %+v != Classify winner %+v", trial, best, matches[0])
		}
	}
}
