package decoder

import (
	"errors"
	"math"
	"testing"

	"passivelight/internal/coding"
	"passivelight/internal/trace"
)

// syntheticPacketTrace builds an idealized RSS trace for a packet:
// baseline lead-in, then one plateau per symbol, then lead-out, plus
// an optional 100 Hz ripple.
func syntheticPacketTrace(payload string, fs float64, symbolDur float64, high, low, baseline float64, ripple float64) *trace.Trace {
	pkt := coding.MustPacket(payload)
	symbols := pkt.Symbols()
	perSymbol := int(symbolDur * fs)
	lead := perSymbol * 2
	var samples []float64
	for i := 0; i < lead; i++ {
		samples = append(samples, baseline)
	}
	for _, s := range symbols {
		level := low
		if s == coding.High {
			level = high
		}
		for i := 0; i < perSymbol; i++ {
			samples = append(samples, level)
		}
	}
	for i := 0; i < lead; i++ {
		samples = append(samples, baseline)
	}
	if ripple > 0 {
		for i := range samples {
			samples[i] += ripple * math.Sin(2*math.Pi*100*float64(i)/fs)
		}
	}
	return trace.New(fs, 0, samples)
}

func TestDecodeCleanPacket(t *testing.T) {
	for _, payload := range []string{"00", "10", "0110", "111000"} {
		tr := syntheticPacketTrace(payload, 1000, 0.2, 90, 12, 10, 0)
		res, err := Decode(tr, Options{ExpectedSymbols: 4 + 2*len(payload)})
		if err != nil {
			t.Fatalf("%q: %v", payload, err)
		}
		if res.ParseErr != nil {
			t.Fatalf("%q: parse: %v (symbols %s)", payload, res.ParseErr, res.SymbolString())
		}
		if got := res.Packet.BitString(); got != payload {
			t.Fatalf("decoded %q, want %q", got, payload)
		}
		// tau_t should approximate the true symbol duration.
		if math.Abs(res.Thresholds.TauT-0.2) > 0.05 {
			t.Fatalf("%q: tau_t %v, want ~0.2", payload, res.Thresholds.TauT)
		}
	}
}

func TestDecodeAutoSymbolCount(t *testing.T) {
	tr := syntheticPacketTrace("10", 1000, 0.2, 90, 12, 10, 0)
	res, err := Decode(tr, Options{}) // ExpectedSymbols = 0: auto
	if err != nil {
		t.Fatal(err)
	}
	if res.ParseErr != nil {
		t.Fatalf("parse: %v (%s)", res.ParseErr, res.SymbolString())
	}
	if got := res.Packet.BitString(); got != "10" {
		t.Fatalf("auto decode %q", got)
	}
}

func TestDecodeThresholdFormula(t *testing.T) {
	// With clean plateaus, tau_r = ((rA-rB)+(rC-rB))/2 ~ high - low.
	tr := syntheticPacketTrace("00", 1000, 0.2, 100, 20, 18, 0)
	res, err := Decode(tr, Options{ExpectedSymbols: 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Thresholds.TauR-80) > 12 {
		t.Fatalf("tau_r %v, want ~80", res.Thresholds.TauR)
	}
	if res.Preamble.AIndex >= res.Preamble.BIndex || res.Preamble.BIndex >= res.Preamble.CIndex {
		t.Fatalf("A/B/C not ordered: %d %d %d", res.Preamble.AIndex, res.Preamble.BIndex, res.Preamble.CIndex)
	}
}

func TestDecodeLowContrastError(t *testing.T) {
	// 2-count swing: below the default 4-count MinContrast.
	tr := syntheticPacketTrace("00", 1000, 0.2, 12, 10, 10, 0)
	_, err := Decode(tr, Options{ExpectedSymbols: 8})
	if !errors.Is(err, ErrLowContrast) {
		t.Fatalf("err = %v, want ErrLowContrast", err)
	}
}

func TestDecodeFlatTraceError(t *testing.T) {
	samples := make([]float64, 1000)
	for i := range samples {
		samples[i] = 50
	}
	_, err := Decode(trace.New(1000, 0, samples), Options{})
	if !errors.Is(err, ErrNoPreamble) {
		t.Fatalf("err = %v, want ErrNoPreamble", err)
	}
}

func TestDecodeShortTraceError(t *testing.T) {
	if _, err := Decode(trace.New(1000, 0, []float64{1, 2}), Options{}); err == nil {
		t.Fatal("expected error for short trace")
	}
	if _, err := Decode(nil, Options{}); err == nil {
		t.Fatal("expected error for nil trace")
	}
}

func TestDecodeWithMainsRipple(t *testing.T) {
	// Strong 100 Hz ripple (the Fig. 7 condition): the ripple
	// suppressor must keep the decode working.
	tr := syntheticPacketTrace("10", 1000, 0.2, 90, 12, 10, 15)
	res, err := Decode(tr, Options{ExpectedSymbols: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.ParseErr != nil || res.Packet.BitString() != "10" {
		t.Fatalf("rippled decode: %s", res.SymbolString())
	}
}

func TestRippleSuppressionSparesFastSymbols(t *testing.T) {
	// A packet whose symbol rate is near 100 Hz must NOT be smoothed
	// away by the mains filter (narrow-line test).
	fs := 4000.0
	tr := syntheticPacketTrace("00", fs, 0.011, 90, 12, 10, 0) // ~91 sym/s
	res, err := Decode(tr, Options{ExpectedSymbols: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.ParseErr != nil || res.Packet.BitString() != "00" {
		t.Fatalf("fast decode: %s", res.SymbolString())
	}
}

func TestDecodeSearchFrom(t *testing.T) {
	// A decoy pulse before the packet; SearchFrom skips it.
	tr := syntheticPacketTrace("00", 1000, 0.2, 90, 12, 10, 0)
	decoy := make([]float64, 300)
	for i := range decoy {
		decoy[i] = 10
	}
	for i := 100; i < 180; i++ {
		decoy[i] = 95
	}
	combined := append(decoy, tr.Samples...)
	tr2 := trace.New(1000, 0, combined)
	res, err := Decode(tr2, Options{ExpectedSymbols: 8, SearchFrom: 250})
	if err != nil {
		t.Fatal(err)
	}
	if res.ParseErr != nil || res.Packet.BitString() != "00" {
		t.Fatalf("SearchFrom decode: %s", res.SymbolString())
	}
}

func TestDecodeFixedMatchesCalibration(t *testing.T) {
	tr := syntheticPacketTrace("10", 1000, 0.2, 90, 12, 10, 0)
	// Calibrate with the plain Sec. 4.1 estimator: its tau_t is the
	// raw A/B/C spacing, which is what a fixed-threshold deployment
	// would copy into its configuration.
	adaptive, err := Decode(tr, Options{ExpectedSymbols: 8, DisableTimingRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := DecodeFixed(tr, adaptive.Thresholds, Options{ExpectedSymbols: 8})
	if err != nil {
		t.Fatal(err)
	}
	if fixed.ParseErr != nil || fixed.Packet.BitString() != "10" {
		t.Fatalf("fixed decode on calibration trace: %s", fixed.SymbolString())
	}
}

func TestDecodeFixedFailsOnLevelShift(t *testing.T) {
	tr := syntheticPacketTrace("10", 1000, 0.2, 90, 12, 10, 0)
	adaptive, err := Decode(tr, Options{ExpectedSymbols: 8})
	if err != nil {
		t.Fatal(err)
	}
	// The same packet under 3x dimmer light.
	dim := syntheticPacketTrace("10", 1000, 0.2, 30, 4, 3, 0)
	fixed, err := DecodeFixed(dim, adaptive.Thresholds, Options{ExpectedSymbols: 8})
	if err == nil && fixed.ParseErr == nil && fixed.Packet.BitString() == "10" {
		t.Fatal("fixed thresholds should not survive a 3x light change")
	}
	// The adaptive decoder handles it.
	redo, err := Decode(dim, Options{ExpectedSymbols: 8, MinContrast: 3})
	if err != nil {
		t.Fatal(err)
	}
	if redo.ParseErr != nil || redo.Packet.BitString() != "10" {
		t.Fatalf("adaptive decode under dim light: %s", redo.SymbolString())
	}
}

func TestDecodeFixedValidation(t *testing.T) {
	tr := syntheticPacketTrace("10", 1000, 0.2, 90, 12, 10, 0)
	if _, err := DecodeFixed(tr, Thresholds{}, Options{}); err == nil {
		t.Fatal("zero thresholds should fail")
	}
	if _, err := DecodeFixed(nil, Thresholds{TauR: 10, TauT: 0.1}, Options{}); err == nil {
		t.Fatal("nil trace should fail")
	}
	// Decision level far above the signal: no crossing.
	if _, err := DecodeFixed(tr, Thresholds{TauR: 1000, TauT: 0.2, Baseline: 500}, Options{}); err == nil {
		t.Fatal("uncrossable decision level should fail")
	}
}

func TestDisableTimingRecoveryStillDecodesClean(t *testing.T) {
	tr := syntheticPacketTrace("0110", 1000, 0.2, 90, 12, 10, 0)
	res, err := Decode(tr, Options{ExpectedSymbols: 12, DisableTimingRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ParseErr != nil || res.Packet.BitString() != "0110" {
		t.Fatalf("plain decode: %s", res.SymbolString())
	}
}

func TestSymbolStringFormatting(t *testing.T) {
	res := Result{Symbols: []coding.Symbol{coding.High, coding.Low, coding.High, coding.Low, coding.High, coding.Low}}
	res.ParseErr = coding.ErrNoPreamble
	if s := res.SymbolString(); s != "HLHL.HL" {
		t.Fatalf("raw symbol string %q", s)
	}
}
