package decoder

import (
	"testing"

	"passivelight/internal/trace"
)

func TestSignatureClassifierIdentifiesShapes(t *testing.T) {
	cls := NewSignatureClassifier(0)
	hatch := syntheticCarTrace(2000, false, nil)
	sedan := syntheticCarTrace(2000, true, nil)
	if err := cls.AddTemplate("hatch", hatch); err != nil {
		t.Fatal(err)
	}
	if err := cls.AddTemplate("sedan", sedan); err != nil {
		t.Fatal(err)
	}
	// Probe with a time-scaled hatchback pass (different speed).
	fast := syntheticCarTrace(1500, false, nil) // same shape, fewer samples
	m, err := cls.Identify(fast)
	if err != nil {
		t.Fatal(err)
	}
	if m[0].Label != "hatch" {
		t.Fatalf("identified %q", m[0].Label)
	}
	// And a sedan probe.
	m, err = cls.Identify(syntheticCarTrace(2500, true, nil))
	if err != nil {
		t.Fatal(err)
	}
	if m[0].Label != "sedan" {
		t.Fatalf("identified %q", m[0].Label)
	}
}

func TestSignatureClassifierErrors(t *testing.T) {
	cls := NewSignatureClassifier(64)
	if _, err := cls.Identify(syntheticCarTrace(2000, false, nil)); err == nil {
		t.Fatal("no templates should fail")
	}
	if err := cls.AddTemplate("x", nil); err == nil {
		t.Fatal("nil template should fail")
	}
	flat := make([]float64, 4000)
	for i := range flat {
		flat[i] = 40
	}
	if err := cls.AddTemplate("flat", trace.New(2000, 0, flat)); err == nil {
		t.Fatal("flat template should fail")
	}
}
