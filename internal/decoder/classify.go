package decoder

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"passivelight/internal/dsp"
	"passivelight/internal/trace"
)

// Baseline is one clean reference waveform in the classifier database
// (obtained under ideal conditions, Sec. 4.1).
type Baseline struct {
	Label   string
	Samples []float64 // normalized, resampled to the classifier length
}

// Classifier matches distorted waveforms against a database of clean
// baselines using DTW (Sec. 4.2). Signals are min-max normalized and
// resampled to a common length before the DTW distance is computed;
// DTW then absorbs the *non-uniform* time warping that plain
// resampling cannot (e.g. the speed doubling of Fig. 8).
type Classifier struct {
	length    int
	window    int // Sakoe-Chiba band, samples (0 = unconstrained)
	baselines []Baseline
	// UseEuclidean switches the distance to point-wise L2; ablation
	// baseline showing why DTW is needed.
	UseEuclidean bool
}

// NewClassifier builds a classifier that resamples inputs to length
// samples. length <= 0 selects 256.
func NewClassifier(length int) *Classifier {
	if length <= 0 {
		length = 256
	}
	return &Classifier{length: length}
}

// WithWindow constrains DTW to a Sakoe-Chiba band of the given
// half-width (in resampled samples).
func (c *Classifier) WithWindow(w int) *Classifier {
	c.window = w
	return c
}

// AddBaseline registers a clean waveform under a label.
func (c *Classifier) AddBaseline(label string, tr *trace.Trace) error {
	if tr == nil || tr.Len() < 4 {
		return errors.New("decoder: baseline trace too short")
	}
	c.baselines = append(c.baselines, Baseline{
		Label:   label,
		Samples: c.prepare(tr.Samples),
	})
	return nil
}

func (c *Classifier) prepare(x []float64) []float64 {
	return dsp.ResampleLinear(dsp.NormalizeMinMax(x), c.length)
}

// Match is a classification candidate.
type Match struct {
	Label    string
	Distance float64
}

// Classify returns all baselines ordered by ascending distance to the
// trace. The paper's decision rule is the nearest baseline.
func (c *Classifier) Classify(tr *trace.Trace) ([]Match, error) {
	if len(c.baselines) == 0 {
		return nil, errors.New("decoder: classifier has no baselines")
	}
	if tr == nil || tr.Len() < 4 {
		return nil, errors.New("decoder: trace too short")
	}
	probe := c.prepare(tr.Samples)
	matches := make([]Match, 0, len(c.baselines))
	for _, b := range c.baselines {
		var d float64
		if c.UseEuclidean {
			d = dsp.EuclideanDistance(probe, b.Samples)
		} else {
			var err error
			d, err = dsp.DTWWith(probe, b.Samples, dsp.DTWOptions{Window: c.window})
			if err != nil {
				return nil, fmt.Errorf("decoder: DTW against %q: %w", b.Label, err)
			}
		}
		matches = append(matches, Match{Label: b.Label, Distance: d})
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i].Distance < matches[j].Distance })
	return matches, nil
}

// Nearest returns only the best-matching baseline, using early
// abandonment: once a baseline's partial DTW cost exceeds the best
// complete distance so far, its dynamic program stops. The winning
// label and distance match Classify's first entry (up to exact-tie
// ordering); only the losers' exact distances go uncomputed, which is
// what makes this the cheap path for large baseline databases.
func (c *Classifier) Nearest(tr *trace.Trace) (Match, error) {
	if len(c.baselines) == 0 {
		return Match{}, errors.New("decoder: classifier has no baselines")
	}
	if tr == nil || tr.Len() < 4 {
		return Match{}, errors.New("decoder: trace too short")
	}
	probe := c.prepare(tr.Samples)
	best := Match{Distance: math.Inf(1)}
	for _, b := range c.baselines {
		var d float64
		var err error
		if c.UseEuclidean {
			d = dsp.EuclideanDistance(probe, b.Samples)
		} else {
			cutoff := 0.0
			if !math.IsInf(best.Distance, 1) {
				cutoff = best.Distance
			}
			d, err = dsp.DTWWith(probe, b.Samples, dsp.DTWOptions{Window: c.window, AbandonAbove: cutoff})
			if errors.Is(err, dsp.ErrDTWAbandoned) {
				continue // provably worse than the current best
			}
			if err != nil {
				return Match{}, fmt.Errorf("decoder: DTW against %q: %w", b.Label, err)
			}
		}
		if d < best.Distance {
			best = Match{Label: b.Label, Distance: d}
		}
	}
	return best, nil
}

// SelfDistance computes the DTW distance of a trace against itself
// after independent normalization/resampling — the paper reports this
// (131 for Fig. 8) as the reference scale for its absolute distances.
// With identical preprocessing the self-distance is exactly 0, so we
// follow the paper and compare the *raw* trace against its *smoothed*
// self to expose the noise scale.
func (c *Classifier) SelfDistance(tr *trace.Trace) (float64, error) {
	if tr == nil || tr.Len() < 4 {
		return 0, errors.New("decoder: trace too short")
	}
	probe := c.prepare(tr.Samples)
	smooth := c.prepare(dsp.MovingAverage(tr.Samples, int(tr.Fs*0.01)+1))
	return dsp.DTWWith(probe, smooth, dsp.DTWOptions{Window: c.window})
}
