package decoder

import (
	"errors"

	"passivelight/internal/dsp"
	"passivelight/internal/trace"
)

// CollisionReport is the outcome of the Sec. 4.3 frequency-domain
// analysis of overlapping packets.
type CollisionReport struct {
	// Spectrum is the one-sided power spectrum of the trace.
	Spectrum dsp.Spectrum
	// Peaks are the dominant spectral peaks (strongest first).
	Peaks []dsp.SpectralPeak
	// SignificantTones counts peaks within SignificanceRatio of the
	// strongest — the number of distinct packet symbol rates present.
	SignificantTones int
	// DominantFreq is the strongest tone (Hz); 0 when no tone found.
	DominantFreq float64
}

// CollisionOptions tunes the analyzer.
type CollisionOptions struct {
	// MinFreq ignores spectral content below this frequency (Hz),
	// cutting the residual DC/drift skirt. Zero selects 0.5 Hz.
	MinFreq float64
	// MaxFreq truncates the analysis band (Hz); packet symbol rates
	// live at a few Hz, anything above is noise. Zero keeps the full
	// band.
	MaxFreq float64
	// MinSeparation merges peaks closer than this (Hz). Zero selects
	// 0.8 Hz.
	MinSeparation float64
	// SignificanceRatio: peaks with power >= ratio * strongest count
	// as distinct tones. Zero selects 0.35.
	SignificanceRatio float64
	// MaxPeaks caps the reported peak list. Zero selects 5.
	MaxPeaks int
}

func (o CollisionOptions) withDefaults() CollisionOptions {
	if o.MinFreq == 0 {
		o.MinFreq = 0.5
	}
	if o.MinSeparation == 0 {
		o.MinSeparation = 0.8
	}
	if o.SignificanceRatio == 0 {
		o.SignificanceRatio = 0.35
	}
	if o.MaxPeaks == 0 {
		o.MaxPeaks = 5
	}
	return o
}

// AnalyzeCollision computes the FFT of the trace and extracts the
// dominant symbol-rate tones. One significant tone means a single
// (or fully dominant) packet — decodable in the time domain (Cases 1
// and 2 of Fig. 10); two or more tones reveal a collision of packets
// with different symbol widths (Case 3): undecodable in time, but the
// FFT still identifies "the presence of two different types of
// object".
func AnalyzeCollision(tr *trace.Trace, opt CollisionOptions) (CollisionReport, error) {
	opt = opt.withDefaults()
	if tr == nil || tr.Len() < 8 {
		return CollisionReport{}, errors.New("decoder: trace too short for spectral analysis")
	}
	spec, err := dsp.PowerSpectrum(tr.Samples, tr.Fs, dsp.HannWindow)
	if err != nil {
		return CollisionReport{}, err
	}
	if opt.MaxFreq > 0 {
		cut := len(spec.Freqs)
		for i, f := range spec.Freqs {
			if f > opt.MaxFreq {
				cut = i
				break
			}
		}
		spec.Freqs = spec.Freqs[:cut]
		spec.Power = spec.Power[:cut]
	}
	peaks := spec.DominantPeaks(opt.MinFreq, opt.MinSeparation, opt.MaxPeaks)
	rep := CollisionReport{Spectrum: spec, Peaks: peaks}
	if len(peaks) == 0 {
		return rep, nil
	}
	rep.DominantFreq = peaks[0].Freq
	strongest := peaks[0].Power
	for _, p := range peaks {
		if p.Power >= opt.SignificanceRatio*strongest {
			rep.SignificantTones++
		}
	}
	return rep, nil
}
