package decoder

import (
	"sync"

	"passivelight/internal/coding"
	"passivelight/internal/dsp"
)

// passScratch holds the working buffers of one adaptive-threshold
// decode pass. The pass smooths the window up to four times and
// evaluates hundreds of candidate symbol grids; reusing these buffers
// across decodes (and across the grid candidates within one decode)
// removes nearly all of its allocation churn. Slices handed back in
// Result are always freshly allocated — nothing in a returned Result
// aliases scratch memory.
type passScratch struct {
	sm dsp.Smoother
	// ripple is the mains-ripple-suppressed signal; ac its detrended
	// copy used for tone detection.
	ripple, ac []float64
	// smooth and smooth2 are the light and heavy smoothing passes
	// (smooth is also reused for the final tau_t/8 re-smooth).
	smooth, smooth2 []float64
	// syms/wm hold one grid candidate's symbol decisions and window
	// maxima; eval holds the trailing-trimmed view used to judge
	// Manchester validity.
	syms []coding.Symbol
	wm   []float64
	eval []coding.Symbol
}

var passPool = sync.Pool{New: func() any { return new(passScratch) }}
