package decoder

import (
	"math/bits"
	"sync"

	"passivelight/internal/coding"
	"passivelight/internal/dsp"
)

// passScratch holds the working buffers of one adaptive-threshold
// decode pass. The pass smooths the window up to four times and
// evaluates hundreds of candidate symbol grids; reusing these buffers
// across decodes (and across the grid candidates within one decode)
// removes nearly all of its allocation churn. Slices handed back in
// Result are always freshly allocated — nothing in a returned Result
// aliases scratch memory.
type passScratch struct {
	sm dsp.Smoother
	// ripple is the mains-ripple-suppressed signal; ac its detrended
	// copy used for tone detection.
	ripple, ac []float64
	// smooth and smooth2 are the light and heavy smoothing passes
	// (smooth is also reused for the final tau_t/8 re-smooth).
	smooth, smooth2 []float64
	// syms/wm hold one grid candidate's symbol decisions and window
	// maxima; eval holds the trailing-trimmed view used to judge
	// Manchester validity.
	syms []coding.Symbol
	wm   []float64
	eval []coding.Symbol
	// rmq answers window-maximum queries for the grid search in O(1)
	// per window instead of one scan per window per candidate.
	rmq rangeMax
}

var passPool = sync.Pool{New: func() any { return new(passScratch) }}

// rangeMax is a sparse table over a fixed slice: levels[k-1][i] holds
// the maximum of the 2^k-wide window starting at i, so the maximum of
// any [lo, hi) is the max of the two (overlapping) power-of-two
// windows that cover it. Build is O(n log n); each query O(1) — the
// refineGrid search issues hundreds of window queries per signal, so
// the table pays for itself many times over. The level slices are
// reused across builds.
type rangeMax struct {
	src    []float64
	levels [][]float64
}

// build precomputes levels for window widths up to maxW (clamped to
// len(src)); wider queries fall back to a direct scan in max. The
// grid search's windows are bounded by the largest candidate step, so
// capping the table depth saves the deepest (largest) levels.
func (r *rangeMax) build(src []float64, maxW int) {
	r.src = src
	n := len(src)
	if maxW > n {
		maxW = n
	}
	prev := src
	used := 0
	for width := 2; width <= n && width>>1 < maxW; width <<= 1 {
		m := n - width + 1
		if used < len(r.levels) {
			if cap(r.levels[used]) < m {
				r.levels[used] = make([]float64, m)
			}
			r.levels[used] = r.levels[used][:m]
		} else {
			r.levels = append(r.levels, make([]float64, m))
		}
		lvl := r.levels[used]
		half := width / 2
		for i := 0; i < m; i++ {
			a, b := prev[i], prev[i+half]
			if b > a {
				a = b
			}
			lvl[i] = a
		}
		prev = lvl
		used++
	}
	r.levels = r.levels[:used]
}

// max returns the maximum of src[lo:hi]; hi must be > lo and within
// the built slice.
func (r *rangeMax) max(lo, hi int) float64 {
	w := hi - lo
	if w == 1 {
		return r.src[lo]
	}
	k := bits.Len(uint(w)) - 1 // largest power of two <= w
	if k-1 >= len(r.levels) {
		// Wider than the built table: direct scan (same result).
		m := r.src[lo]
		for _, v := range r.src[lo+1 : hi] {
			if v > m {
				m = v
			}
		}
		return m
	}
	lvl := r.levels[k-1]
	a, b := lvl[lo], lvl[hi-(1<<k)]
	if b > a {
		a = b
	}
	return a
}
