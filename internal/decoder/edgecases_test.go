package decoder

import (
	"errors"
	"math/rand"
	"testing"

	"passivelight/internal/trace"
)

// The streaming refactor routes batch Decode through the incremental
// state machine; these cases pin the degenerate-input behavior the
// refactor must preserve.

func TestDecodeEmptyTrace(t *testing.T) {
	if _, err := Decode(nil, Options{}); err == nil {
		t.Fatal("nil trace should fail")
	}
	if _, err := Decode(trace.New(1000, 0, nil), Options{}); err == nil {
		t.Fatal("empty trace should fail")
	}
	if _, err := Decode(trace.New(1000, 0, []float64{1, 2, 3}), Options{}); err == nil {
		t.Fatal("3-sample trace should fail")
	}
	if _, err := DecodeCarPass(nil, Options{}); err == nil {
		t.Fatal("nil trace should fail the car pass")
	}
	if _, err := DecodeCarPass(trace.New(1000, 0, nil), Options{}); err == nil {
		t.Fatal("empty trace should fail the car pass")
	}
}

func TestDecodeAllNoiseTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	samples := make([]float64, 4000)
	for i := range samples {
		samples[i] = 50 + 0.8*rng.NormFloat64()
	}
	tr := trace.New(1000, 0, samples)
	_, err := Decode(tr, Options{})
	if err == nil {
		t.Fatal("pure noise should not decode")
	}
	if !errors.Is(err, ErrNoPreamble) && !errors.Is(err, ErrLowContrast) {
		t.Fatalf("noise decode failed with unexpected error: %v", err)
	}
	if _, err := DecodeCarPass(tr, Options{}); err == nil {
		t.Fatal("pure noise should not pass the car-shape phase")
	}
	// The streaming state machine must not open a segment on noise.
	inc := NewIncremental(1000, Options{}, IncrementalConfig{})
	if segs := inc.Feed(samples); len(segs) != 0 {
		t.Fatalf("noise produced %d segments", len(segs))
	}
	if segs := inc.Flush(); len(segs) != 0 {
		t.Fatalf("noise flush produced %d segments", len(segs))
	}
	if inc.Buffered() > 1100 {
		t.Fatalf("idle state retains %d samples, want <= pre-roll", inc.Buffered())
	}
}

func TestDecodeTruncatedFinalSymbol(t *testing.T) {
	// Cut the trace mid-way through the final symbol: lead-out gone,
	// last plateau at 40% duration.
	full := syntheticPacketTrace("0110", 1000, 0.2, 90, 12, 10, 0)
	perSymbol := 200
	cut := full.Len() - 2*perSymbol - int(0.6*float64(perSymbol))
	truncated, err := full.Slice(0, cut)
	if err != nil {
		t.Fatal(err)
	}
	// With the symbol count pinned, the final window simply has fewer
	// samples; the decode must not panic and must keep the payload
	// prefix intact if it succeeds.
	res, err := Decode(truncated, Options{ExpectedSymbols: 12})
	if err == nil && res.ParseErr == nil {
		if got := res.Packet.BitString(); got != "0110" {
			t.Fatalf("truncated decode invented bits: %q", got)
		}
	}
	// Auto mode on the same truncated trace: whatever parses must be
	// a prefix-consistent packet, and short inputs must error cleanly.
	res, err = Decode(truncated, Options{})
	if err == nil && res.ParseErr == nil {
		got := res.Packet.BitString()
		want := "0110"
		if len(got) > len(want) || got != want[:len(got)] {
			t.Fatalf("auto truncated decode %q is not a prefix of %q", got, want)
		}
	}
	// Truncation inside the preamble leaves nothing decodable.
	tiny, err := full.Slice(0, 400+perSymbol+perSymbol/2)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := Decode(tiny, Options{}); err == nil && res.ParseErr == nil && len(res.Packet.Data) > 0 {
		t.Fatalf("preamble-only fragment decoded %q", res.Packet.BitString())
	}
}

func TestDecodeCarPassTruncatedFinalSymbol(t *testing.T) {
	// A flat-topped "car" silhouette with a stripe packet on the
	// roof, truncated mid-final-stripe: phase 1 (shape) must still
	// find hood/windshield, phase 2 must not panic or invent bits.
	fs := 1000.0
	var samples []float64
	appendLevel := func(level float64, n int) {
		for i := 0; i < n; i++ {
			samples = append(samples, level)
		}
	}
	appendLevel(10, 600) // road
	appendLevel(80, 300) // hood peak
	appendLevel(20, 300) // windshield valley
	for _, s := range syntheticPacketTrace("10", fs, 0.15, 95, 30, 28, 0).Samples {
		samples = append(samples, s)
	}
	tr := trace.New(fs, 0, samples[:len(samples)-400])
	res, err := DecodeCarPass(tr, Options{ExpectedSymbols: 8})
	if err == nil && res.Decode.ParseErr == nil {
		if got := res.Decode.Packet.BitString(); got != "10" {
			t.Fatalf("truncated car pass decoded %q", got)
		}
	}
}
