package decoder

import (
	"math"
	"testing"

	"passivelight/internal/trace"
)

func twoToneTrace(fs, f1, a1, f2, a2 float64, n int) *trace.Trace {
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / fs
		x[i] = 50 + a1*math.Sin(2*math.Pi*f1*ti) + a2*math.Sin(2*math.Pi*f2*ti)
	}
	return trace.New(fs, 0, x)
}

func TestAnalyzeCollisionSingleTone(t *testing.T) {
	tr := twoToneTrace(1000, 3, 10, 0, 0, 4000)
	rep, err := AnalyzeCollision(tr, CollisionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SignificantTones != 1 {
		t.Fatalf("tones %d, want 1 (peaks %+v)", rep.SignificantTones, rep.Peaks)
	}
	if math.Abs(rep.DominantFreq-3) > 0.5 {
		t.Fatalf("dominant %.2f Hz, want 3", rep.DominantFreq)
	}
}

func TestAnalyzeCollisionTwoTones(t *testing.T) {
	tr := twoToneTrace(1000, 3, 10, 6, 8, 4000)
	rep, err := AnalyzeCollision(tr, CollisionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SignificantTones != 2 {
		t.Fatalf("tones %d, want 2 (peaks %+v)", rep.SignificantTones, rep.Peaks)
	}
	if math.Abs(rep.DominantFreq-3) > 0.5 {
		t.Fatalf("dominant %.2f Hz", rep.DominantFreq)
	}
	// Both packet tones reported.
	found6 := false
	for _, p := range rep.Peaks {
		if math.Abs(p.Freq-6) < 0.5 {
			found6 = true
		}
	}
	if !found6 {
		t.Fatalf("6 Hz tone missing: %+v", rep.Peaks)
	}
}

func TestAnalyzeCollisionWeakToneBelowSignificance(t *testing.T) {
	tr := twoToneTrace(1000, 3, 10, 6, 1, 4000) // second tone at 10%
	rep, err := AnalyzeCollision(tr, CollisionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SignificantTones != 1 {
		t.Fatalf("tones %d, want 1", rep.SignificantTones)
	}
}

func TestAnalyzeCollisionMaxFreqBand(t *testing.T) {
	tr := twoToneTrace(1000, 3, 10, 50, 30, 4000) // strong out-of-band tone
	rep, err := AnalyzeCollision(tr, CollisionOptions{MaxFreq: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Peaks {
		if p.Freq > 10 {
			t.Fatalf("peak above MaxFreq: %+v", p)
		}
	}
	if math.Abs(rep.DominantFreq-3) > 0.5 {
		t.Fatalf("dominant %.2f Hz, want 3 (50 Hz excluded)", rep.DominantFreq)
	}
}

func TestAnalyzeCollisionErrors(t *testing.T) {
	if _, err := AnalyzeCollision(nil, CollisionOptions{}); err == nil {
		t.Fatal("nil trace should fail")
	}
	if _, err := AnalyzeCollision(trace.New(1000, 0, []float64{1, 2}), CollisionOptions{}); err == nil {
		t.Fatal("short trace should fail")
	}
}

func TestAnalyzeCollisionQuietTrace(t *testing.T) {
	x := make([]float64, 1024)
	for i := range x {
		x[i] = 50
	}
	rep, err := AnalyzeCollision(trace.New(1000, 0, x), CollisionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SignificantTones != 0 || rep.DominantFreq != 0 {
		t.Fatalf("quiet trace produced tones: %+v", rep)
	}
}
