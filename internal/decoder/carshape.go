package decoder

import (
	"errors"
	"fmt"

	"passivelight/internal/dsp"
	"passivelight/internal/trace"
)

// CarSignature is the detected long-duration preamble of Sec. 5.1:
// the car's own optical shape (hood peak, windshield valley, roof,
// ...) announcing that a tag decode should start.
type CarSignature struct {
	// HoodPeakIndex and WindshieldValleyIndex anchor the car within
	// the trace.
	HoodPeakIndex         int
	WindshieldValleyIndex int
	// RoofStartIndex is where the tag search window begins.
	RoofStartIndex int
	// Extrema lists all prominent peaks/valleys of the pass in time
	// order, for signature matching against car models (Figs. 13-14).
	Extrema []ShapeExtremum
}

// ShapeExtremum is one labeled feature of a car signature.
type ShapeExtremum struct {
	Index  int
	Value  float64
	IsPeak bool
}

// DetectCarShape finds the hood-peak / windshield-valley pattern that
// marks an approaching car. The smoothing window is wide (tens of
// milliseconds) so stripe-level detail does not hide the body shape.
func DetectCarShape(tr *trace.Trace) (CarSignature, error) {
	if tr == nil || tr.Len() < 16 {
		return CarSignature{}, errors.New("decoder: trace too short for shape detection")
	}
	// Smooth at ~40 ms: keeps car body features (hundreds of ms at
	// 18 km/h) while flattening 10 cm stripes (~20 ms).
	win := int(tr.Fs * 0.04)
	if win < 3 {
		win = 3
	}
	smooth := dsp.MovingAverage(tr.Samples, win)
	lo, hi := dsp.MinMax(smooth)
	rng := hi - lo
	if rng <= 0 {
		return CarSignature{}, errors.New("decoder: flat trace")
	}
	prom := 0.2 * rng
	// Car body features are >= 100 ms apart at street speeds;
	// suppress plateau double-peaks and glint spikes closer than that.
	minDist := int(tr.Fs * 0.1)
	peaks := dsp.FindPeaks(smooth, dsp.PeakOptions{MinProminence: prom, MinDistance: minDist})
	valleys := dsp.FindValleys(smooth, dsp.PeakOptions{MinProminence: prom, MinDistance: minDist})
	if len(peaks) == 0 || len(valleys) == 0 {
		return CarSignature{}, errors.New("decoder: no car-shape features found")
	}
	sig := CarSignature{HoodPeakIndex: -1, WindshieldValleyIndex: -1}
	// Hood = first prominent peak; windshield = first prominent
	// valley after it.
	sig.HoodPeakIndex = peaks[0].Index
	for _, v := range valleys {
		if v.Index > sig.HoodPeakIndex {
			sig.WindshieldValleyIndex = v.Index
			break
		}
	}
	if sig.WindshieldValleyIndex < 0 {
		return CarSignature{}, errors.New("decoder: hood peak without windshield valley")
	}
	sig.RoofStartIndex = sig.WindshieldValleyIndex
	// Collect the merged, time-ordered extrema list.
	pi, vi := 0, 0
	for pi < len(peaks) || vi < len(valleys) {
		switch {
		case pi == len(peaks):
			sig.Extrema = append(sig.Extrema, ShapeExtremum{valleys[vi].Index, valleys[vi].Value, false})
			vi++
		case vi == len(valleys):
			sig.Extrema = append(sig.Extrema, ShapeExtremum{peaks[pi].Index, peaks[pi].Value, true})
			pi++
		case peaks[pi].Index < valleys[vi].Index:
			sig.Extrema = append(sig.Extrema, ShapeExtremum{peaks[pi].Index, peaks[pi].Value, true})
			pi++
		default:
			sig.Extrema = append(sig.Extrema, ShapeExtremum{valleys[vi].Index, valleys[vi].Value, false})
			vi++
		}
	}
	return sig, nil
}

// TwoPhaseResult bundles the Sec. 5.2 two-phase decode.
type TwoPhaseResult struct {
	Signature CarSignature
	Decode    Result
}

// DecodeCarPass runs the outdoor two-phase algorithm: (1) detect the
// car-shape long preamble (hood peak + windshield valley), (2) run
// the Sec. 4.1 adaptive threshold decoder starting at the roof.
func DecodeCarPass(tr *trace.Trace, opt Options) (TwoPhaseResult, error) {
	sig, err := DetectCarShape(tr)
	if err != nil {
		return TwoPhaseResult{}, fmt.Errorf("phase 1 (shape): %w", err)
	}
	opt.SearchFrom = sig.RoofStartIndex
	res, err := Decode(tr, opt)
	if err != nil {
		return TwoPhaseResult{Signature: sig}, fmt.Errorf("phase 2 (decode): %w", err)
	}
	return TwoPhaseResult{Signature: sig, Decode: res}, nil
}

// MatchCarModel compares a detected signature's peak pattern against
// expectations: a hatchback (Volvo V40, Fig. 13) shows two body peaks
// (hood A, roof C); a sedan (BMW 3, Fig. 14) shows three (hood A,
// roof C, trunk E). It returns "sedan", "hatchback" or "unknown".
func MatchCarModel(sig CarSignature) string {
	peaks := 0
	for _, e := range sig.Extrema {
		if e.IsPeak {
			peaks++
		}
	}
	switch {
	case peaks >= 3:
		return "sedan"
	case peaks == 2:
		return "hatchback"
	default:
		return "unknown"
	}
}
