package decoder

import (
	"math"

	"passivelight/internal/trace"
)

// IncrementalConfig tunes the resumable streaming state machine.
// Zero values select defaults; -1 disables a bound where noted.
type IncrementalConfig struct {
	// PreRollSamples is how much quiet context is retained before
	// detected activity, so the decode pass sees a baseline lead-in.
	// Zero selects one second of samples; -1 retains the entire
	// stream (batch mode — unbounded memory).
	PreRollSamples int
	// QuietHoldSamples is how long the signal must sit back inside
	// the noise band for the active segment to be considered complete
	// and decoded. Zero selects 1.5 seconds of samples; -1 never
	// completes on quiet (segments are decoded only on Flush).
	QuietHoldSamples int
	// ActivityMargin is the activity band half-width in multiples of
	// the tracked noise deviation. Zero selects 4.
	ActivityMargin float64
	// MinActivityDelta is an absolute floor (in RSS units) on the
	// band half-width, so a perfectly clean synthetic baseline (zero
	// deviation) does not trigger on quantization flips. Zero selects
	// half the decoder's MinContrast.
	MinActivityDelta float64
	// MinActivityRun is how many consecutive out-of-band samples are
	// needed to open a segment. Zero selects 3.
	MinActivityRun int
	// MaxSegmentSamples force-decodes a segment that grows past this
	// bound (memory guard against a tag parked in the field of view).
	// Zero selects 2^21 samples; -1 disables the bound.
	MaxSegmentSamples int
	// WarmupSamples seed the noise-floor estimate before activity
	// detection is allowed to trigger. Zero selects 32.
	WarmupSamples int
	// TwoPhase decodes each segment with the Sec. 5 outdoor
	// algorithm (car-shape signature, then stripe decode) instead of
	// the plain Sec. 4.1 threshold pass.
	TwoPhase bool
}

// BatchConfig retains every sample and decodes only on Flush: the
// configuration under which a streaming decode of one full trace is
// the batch Decode, sample for sample.
func BatchConfig() IncrementalConfig {
	return IncrementalConfig{PreRollSamples: -1, QuietHoldSamples: -1, MaxSegmentSamples: -1}
}

func (c IncrementalConfig) withDefaults(fs float64, opt Options) IncrementalConfig {
	if c.PreRollSamples == 0 {
		c.PreRollSamples = int(fs)
		if c.PreRollSamples < 64 {
			c.PreRollSamples = 64
		}
	}
	if c.QuietHoldSamples == 0 {
		c.QuietHoldSamples = int(1.5 * fs)
		if c.QuietHoldSamples < 16 {
			c.QuietHoldSamples = 16
		}
	}
	if c.ActivityMargin == 0 {
		c.ActivityMargin = 4
	}
	if c.MinActivityDelta == 0 {
		c.MinActivityDelta = opt.withDefaults().MinContrast / 2
	}
	if c.MinActivityRun == 0 {
		c.MinActivityRun = 3
	}
	if c.MaxSegmentSamples == 0 {
		c.MaxSegmentSamples = 1 << 21
	}
	if c.WarmupSamples == 0 {
		c.WarmupSamples = 32
	}
	return c
}

// SegmentResult is one decoded segment emitted by the streaming state
// machine: the decode outcome plus where in the stream it came from.
type SegmentResult struct {
	// Result of the adaptive-threshold pass over the segment. Valid
	// even when Err is non-nil (partial diagnostics).
	Result Result
	// Err is the decode-stage error, if the segment held no decodable
	// packet (glint, partial pass, low contrast...).
	Err error
	// Start and End are absolute sample indices of the decoded span
	// within the stream (End exclusive).
	Start, End int64
	// Floor is the tracked noise-floor mean at the time the segment
	// opened.
	Floor float64
}

// Incremental is the paper's adaptive-threshold decoder exposed as
// resumable state: RSS samples are fed in arbitrary chunks, an online
// noise-floor tracker segments the stream into quiet/active spans,
// and each completed active span is decoded with the same pass as
// batch Decode. Memory is bounded by PreRollSamples while idle and
// MaxSegmentSamples while active.
//
// An Incremental is not safe for concurrent use; wrap it in a
// stream.Decoder session for that.
type Incremental struct {
	fs  float64
	opt Options
	cfg IncrementalConfig

	buf    []float64 // retained tail of the stream (pre-roll or open segment)
	pos    int64     // total samples consumed
	active bool
	// batchRef aliases a single batch-mode chunk so the Decode
	// wrapper adds no copy; it is materialized into buf only if a
	// second chunk arrives.
	batchRef []float64

	floorMean, floorDev float64
	floorAtOpen         float64
	warmed              int
	activeRun, quietRun int
}

// NewIncremental builds a resumable decoder for a sample stream at fs
// Hz. opt tunes the per-segment threshold decode exactly as in the
// batch Decode.
func NewIncremental(fs float64, opt Options, cfg IncrementalConfig) *Incremental {
	return &Incremental{fs: fs, opt: opt, cfg: cfg.withDefaults(fs, opt)}
}

// Position returns the number of samples consumed so far.
func (inc *Incremental) Position() int64 { return inc.pos }

// AdoptBuf seeds the retained-sample buffer with recycled capacity
// from a previous session. It is a no-op unless the machine is fresh
// (nothing retained yet) and the donated capacity beats the current
// one. The buffer is owned by the Incremental from here on.
func (inc *Incremental) AdoptBuf(buf []float64) {
	if len(inc.buf) == 0 && inc.batchRef == nil && cap(buf) > cap(inc.buf) {
		inc.buf = buf[:0]
	}
}

// ReleaseBuf surrenders the retained-sample buffer for reuse by a
// later session and leaves the machine without retained samples. Only
// call it when the stream is over (after Flush); the returned slice
// never aliases caller memory (batch-mode aliases are not released).
func (inc *Incremental) ReleaseBuf() []float64 {
	buf := inc.buf
	inc.buf = nil
	inc.batchRef = nil
	return buf[:0:cap(buf)]
}

// Buffered returns the number of samples currently retained (the
// memory footprint of the state machine, up to slice overallocation).
func (inc *Incremental) Buffered() int { return len(inc.buf) + len(inc.batchRef) }

// Floor returns the tracked noise-floor mean and deviation.
func (inc *Incremental) Floor() (mean, dev float64) { return inc.floorMean, inc.floorDev }

// Active reports whether a segment is currently open.
func (inc *Incremental) Active() bool { return inc.active }

// Feed consumes one chunk of samples and returns the segments that
// completed inside it, in stream order. Chunk boundaries are
// arbitrary; feeding a trace sample-by-sample or all at once yields
// the same segments.
func (inc *Incremental) Feed(chunk []float64) []SegmentResult {
	if inc.cfg.PreRollSamples < 0 {
		// Batch mode: retain everything (copied — the caller may
		// reuse its buffer), decode on Flush.
		inc.pos += int64(len(chunk))
		if inc.batchRef != nil {
			inc.buf = append(inc.buf, inc.batchRef...)
			inc.batchRef = nil
		}
		inc.buf = append(inc.buf, chunk...)
		return nil
	}
	var out []SegmentResult
	for _, x := range chunk {
		inc.pos++
		inc.buf = append(inc.buf, x)
		out = inc.step(x, out)
	}
	return out
}

// step advances the state machine by the one sample just appended to
// buf, appending to out when a segment completes. (Appending instead
// of returning the result keeps the large SegmentResult struct off
// the per-sample path — this runs once per ingested sample.)
func (inc *Incremental) step(x float64, out []SegmentResult) []SegmentResult {
	inc.updateFloor(x)
	delta := inc.cfg.ActivityMargin * inc.floorDev
	if delta < inc.cfg.MinActivityDelta {
		delta = inc.cfg.MinActivityDelta
	}
	inBand := math.Abs(x-inc.floorMean) <= delta
	if !inc.active {
		if inBand || inc.warmed < inc.cfg.WarmupSamples {
			inc.activeRun = 0
		} else {
			inc.activeRun++
			if inc.activeRun >= inc.cfg.MinActivityRun {
				inc.active = true
				inc.activeRun = 0
				inc.quietRun = 0
				inc.floorAtOpen = inc.floorMean
			}
		}
		if !inc.active {
			inc.trimPreRoll()
		}
		return out
	}
	if inBand {
		inc.quietRun++
	} else {
		inc.quietRun = 0
	}
	hold := inc.cfg.QuietHoldSamples
	if hold >= 0 && inc.quietRun >= hold {
		return append(out, inc.complete(inc.quietRun))
	}
	if inc.cfg.MaxSegmentSamples >= 0 && len(inc.buf) >= inc.cfg.MaxSegmentSamples {
		return append(out, inc.complete(0))
	}
	return out
}

// complete decodes the open segment and resets to idle, reseeding the
// pre-roll with the trailing quietTail samples (known-quiet context
// for the next segment).
func (inc *Incremental) complete(quietTail int) SegmentResult {
	// Exclude most of the known-quiet hold from the decoded span: in
	// auto symbol-count mode a long noise tail adds spurious windows
	// that dilute the timing search's margin ranking. Keep enough to
	// cover a trailing LOW symbol plus baseline context — LOW stripes
	// sit inside the noise band, so the quiet run can start up to one
	// symbol before the packet truly ends.
	keep := int(0.75 * inc.fs)
	if keep < 2*inc.cfg.MinActivityRun {
		keep = 2 * inc.cfg.MinActivityRun
	}
	drop := quietTail - keep
	if drop < 0 {
		drop = 0
	}
	if drop > len(inc.buf) {
		drop = len(inc.buf)
	}
	span := inc.buf[:len(inc.buf)-drop]
	seg := SegmentResult{
		Start: inc.pos - int64(len(inc.buf)),
		End:   inc.pos - int64(drop),
		Floor: inc.floorAtOpen,
	}
	seg.Result, seg.Err = inc.decodeSpan(span)
	tail := quietTail
	if tail > inc.cfg.PreRollSamples {
		tail = inc.cfg.PreRollSamples
	}
	if tail > len(inc.buf) {
		tail = len(inc.buf)
	}
	kept := inc.buf[len(inc.buf)-tail:]
	inc.buf = append(inc.buf[:0], kept...)
	inc.active = false
	inc.activeRun = 0
	inc.quietRun = 0
	return seg
}

// decodeSpan runs the configured per-segment algorithm: the plain
// Sec. 4.1 threshold pass, or the Sec. 5 two-phase car decode.
func (inc *Incremental) decodeSpan(span []float64) (Result, error) {
	if inc.cfg.TwoPhase {
		tp, err := DecodeCarPass(trace.New(inc.fs, 0, span), inc.opt)
		return tp.Decode, err
	}
	return decodePass(span, inc.fs, inc.opt)
}

// trimPreRoll bounds the idle-state ring to PreRollSamples, compacting
// in O(1) amortized time.
func (inc *Incremental) trimPreRoll() {
	cap := inc.cfg.PreRollSamples
	if len(inc.buf) >= 2*cap {
		kept := inc.buf[len(inc.buf)-cap:]
		inc.buf = append(inc.buf[:0], kept...)
	}
}

// updateFloor advances the exponential noise-floor estimate. The
// floor adapts quickly during warmup, slowly while idle, and holds
// still while a segment is open (the packet is not noise).
func (inc *Incremental) updateFloor(x float64) {
	if inc.active {
		return
	}
	if math.IsNaN(x) || math.IsInf(x, 0) {
		// A single non-finite sample must not poison the EMA — NaN
		// would stick forever (alpha*(clean-NaN) stays NaN).
		return
	}
	if inc.warmed == 0 {
		inc.floorMean = x
		inc.floorDev = 0
		inc.warmed = 1
		return
	}
	alpha := 1.0 / 256
	if inc.warmed < inc.cfg.WarmupSamples {
		alpha = 1.0 / 8
		inc.warmed++
	}
	inc.floorMean += alpha * (x - inc.floorMean)
	inc.floorDev += alpha * (math.Abs(x-inc.floorMean) - inc.floorDev)
}

// feedAlias is the batch Decode fast path: the stream IS this one
// slice, retained by reference so the wrapper adds no copy. Only
// valid on a fresh batch-mode Incremental whose caller will not
// mutate the slice before Flush — which is why it is not exported.
func (inc *Incremental) feedAlias(samples []float64) {
	inc.pos += int64(len(samples))
	inc.batchRef = samples
}

// Flush decodes whatever segment is still open (end of stream) and
// resets the machine to idle. In batch mode it decodes the entire
// retained stream as one segment, which is exactly the batch Decode.
func (inc *Incremental) Flush() []SegmentResult {
	if inc.cfg.PreRollSamples < 0 {
		span := inc.buf
		if inc.batchRef != nil {
			span = inc.batchRef
		}
		seg := SegmentResult{Start: inc.pos - int64(len(span)), End: inc.pos, Floor: inc.floorMean}
		seg.Result, seg.Err = inc.decodeSpan(span)
		inc.buf = inc.buf[:0]
		inc.batchRef = nil
		return []SegmentResult{seg}
	}
	if !inc.active {
		return nil
	}
	return []SegmentResult{inc.complete(inc.quietRun)}
}
