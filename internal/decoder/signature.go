package decoder

import (
	"errors"
	"sort"

	"passivelight/internal/dsp"
	"passivelight/internal/trace"
)

// SignatureClassifier identifies car models from their optical
// signatures (Sec. 5.1: "their optical signatures should be unique").
// It matches the body-scale waveform of a pass against registered
// template passes using DTW — the same machinery as the packet
// classifier, but at the car-shape timescale (tens of milliseconds of
// smoothing instead of milliseconds).
type SignatureClassifier struct {
	length    int
	templates []Baseline
}

// NewSignatureClassifier builds a classifier; length <= 0 selects 192
// resampled points (car bodies carry less detail than stripe codes).
func NewSignatureClassifier(length int) *SignatureClassifier {
	if length <= 0 {
		length = 192
	}
	return &SignatureClassifier{length: length}
}

// prepare extracts the body-scale waveform: smooth at ~40 ms, crop to
// the region where the signal departs from the baseline, then
// normalize and resample.
func (c *SignatureClassifier) prepare(tr *trace.Trace) ([]float64, error) {
	if tr == nil || tr.Len() < 32 {
		return nil, errors.New("decoder: trace too short for signature")
	}
	win := int(tr.Fs * 0.04)
	if win < 3 {
		win = 3
	}
	smooth := dsp.MovingAverage(tr.Samples, win)
	lo, hi := dsp.MinMax(smooth)
	if hi <= lo {
		return nil, errors.New("decoder: flat trace")
	}
	// Crop to where the signal exceeds 15% of its excursion — the
	// car's dwell under the FoV — so template alignment does not
	// depend on how much quiet road is recorded around the pass.
	thresh := lo + 0.15*(hi-lo)
	start, end := -1, -1
	for i, v := range smooth {
		if v > thresh {
			if start < 0 {
				start = i
			}
			end = i
		}
	}
	if start < 0 || end-start < 8 {
		return nil, errors.New("decoder: no pass found in trace")
	}
	crop := smooth[start : end+1]
	return dsp.ResampleLinear(dsp.NormalizeMinMax(crop), c.length), nil
}

// AddTemplate registers a labeled reference pass.
func (c *SignatureClassifier) AddTemplate(label string, tr *trace.Trace) error {
	prepared, err := c.prepare(tr)
	if err != nil {
		return err
	}
	c.templates = append(c.templates, Baseline{Label: label, Samples: prepared})
	return nil
}

// Identify returns templates ordered by ascending DTW distance to the
// trace.
func (c *SignatureClassifier) Identify(tr *trace.Trace) ([]Match, error) {
	if len(c.templates) == 0 {
		return nil, errors.New("decoder: signature classifier has no templates")
	}
	probe, err := c.prepare(tr)
	if err != nil {
		return nil, err
	}
	out := make([]Match, 0, len(c.templates))
	for _, tpl := range c.templates {
		d, err := dsp.DTWWith(probe, tpl.Samples, dsp.DTWOptions{Window: c.length / 4})
		if err != nil {
			return nil, err
		}
		out = append(out, Match{Label: tpl.Label, Distance: d})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Distance < out[j].Distance })
	return out, nil
}
