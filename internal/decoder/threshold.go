// Package decoder implements the paper's receiver-side algorithms:
// the adaptive threshold decoder of Sec. 4.1 (per-packet tau_r/tau_t
// derived from the preamble's first two peaks and first valley), the
// DTW waveform classifier of Sec. 4.2 for distorted packets, the
// FFT-based collision analyzer of Sec. 4.3, and the two-phase
// car-shape decode of Sec. 5 (optical signature as long-duration
// preamble, then stripe decode).
package decoder

import (
	"errors"
	"fmt"
	"math"

	"passivelight/internal/coding"
	"passivelight/internal/dsp"
	"passivelight/internal/trace"
)

// Errors returned by the threshold decoder.
var (
	// ErrNoPreamble means the A/B/C preamble points could not be
	// located in the trace.
	ErrNoPreamble = errors.New("decoder: preamble peaks/valley not found")
	// ErrLowContrast means the preamble was found but the HIGH/LOW
	// excursion is too small to decode reliably.
	ErrLowContrast = errors.New("decoder: insufficient HIGH/LOW contrast")
)

// PreamblePoints are the paper's A, B, C anchors: the first two peaks
// and the first valley of the preamble, each as an <RSS, time> tuple
// (Fig. 5(a)).
type PreamblePoints struct {
	AIndex, BIndex, CIndex int
	AValue, BValue, CValue float64
	ATime, BTime, CTime    float64
}

// Thresholds are the per-packet adaptive decision parameters.
type Thresholds struct {
	// TauR is the magnitude threshold:
	// ((rA-rB) + (rC-rB)) / 2, applied relative to the valley level.
	TauR float64
	// TauT is the symbol duration estimate:
	// ((tB-tA) + (tC-tB)) / 2 seconds.
	TauT float64
	// Baseline is the valley level rB the threshold is referenced to.
	Baseline float64
}

// Options tunes the threshold decoder.
type Options struct {
	// ExpectedSymbols bounds the number of symbols to slice
	// (preamble + data). Zero decodes until the trace ends and trims
	// trailing LOW symbols.
	ExpectedSymbols int
	// SmoothWindow applies a centered moving average before peak
	// detection (samples). Zero picks an automatic small window.
	SmoothWindow int
	// MinProminence for peak/valley detection as a fraction of the
	// trace's min-max range. Zero selects 0.25.
	MinProminence float64
	// MinContrast is the minimum acceptable (peak - valley) excursion
	// as a fraction of the trace range... it is an absolute RSS value
	// when AbsoluteContrast is set. Zero selects 4.0 counts, roughly
	// 4x the front-end quantization step: below that the signal is
	// indistinguishable from noise (the paper's undecodable 100 lux
	// RX-LED case).
	MinContrast float64
	// SearchFrom restricts preamble search to samples at or after
	// this index (used by the two-phase car decoder).
	SearchFrom int
	// WindowFraction is the central share of each tau_t window over
	// which the maximum is taken. Smoothing blurs symbol transitions,
	// so sampling the full window lets a LOW window catch the skirt
	// of its HIGH neighbours; the central region avoids that. Zero
	// selects 0.6.
	WindowFraction float64
	// DisableTimingRecovery turns off the post-preamble grid search
	// and decodes exactly as Sec. 4.1 describes (fixed tau_t grid
	// anchored at peak A). The Fig. 8 experiment uses this to show
	// the paper's algorithm failing under variable speed.
	DisableTimingRecovery bool
}

func (o Options) withDefaults() Options {
	if o.MinProminence == 0 {
		o.MinProminence = 0.25
	}
	if o.MinContrast == 0 {
		o.MinContrast = 4.0
	}
	if o.WindowFraction == 0 {
		o.WindowFraction = 0.5
	}
	return o
}

// Result is the outcome of a threshold decode.
type Result struct {
	Symbols    []coding.Symbol
	Packet     coding.Packet
	ParseErr   error // non-nil when symbols don't form a valid packet
	Preamble   PreamblePoints
	Thresholds Thresholds
	// WindowMax records the per-symbol window maxima used for the
	// HIGH/LOW decision (diagnostics).
	WindowMax []float64
}

// SymbolString renders the decoded symbols in the paper's notation
// ("HLHL.LHHL" when a valid packet was parsed, plain run otherwise).
func (r Result) SymbolString() string {
	if r.ParseErr == nil {
		return r.Packet.SymbolString()
	}
	s := ""
	for i, sym := range r.Symbols {
		if i == coding.PreambleLen {
			s += "."
		}
		s += sym.String()
	}
	return s
}

// Decode runs the Sec. 4.1 adaptive threshold algorithm on a trace.
// It is a thin wrapper over the resumable state machine: the whole
// trace is fed as one chunk and flushed, so batch and streaming
// decodes share one code path (see Incremental).
func Decode(tr *trace.Trace, opt Options) (Result, error) {
	if tr == nil || tr.Len() < 8 {
		return Result{}, errors.New("decoder: trace too short")
	}
	inc := NewIncremental(tr.Fs, opt, BatchConfig())
	inc.feedAlias(tr.Samples)
	segs := inc.Flush()
	if len(segs) != 1 {
		return Result{}, fmt.Errorf("decoder: batch flush produced %d segments, want 1", len(segs))
	}
	return segs[0].Result, segs[0].Err
}

// decodePass runs one full adaptive-threshold pass over a sample
// window: preamble search, tau_r/tau_t estimation, timing recovery
// and symbol slicing. It is the shared core of the batch Decode and
// the streaming Incremental decoder.
func decodePass(samples []float64, fs float64, opt Options) (Result, error) {
	opt = opt.withDefaults()
	if len(samples) < 8 {
		return Result{}, errors.New("decoder: trace too short")
	}
	sc := passPool.Get().(*passScratch)
	defer passPool.Put(sc)
	x := samples
	if opt.SearchFrom > 0 {
		if opt.SearchFrom >= len(x)-8 {
			return Result{}, fmt.Errorf("decoder: SearchFrom %d beyond trace", opt.SearchFrom)
		}
		x = x[opt.SearchFrom:]
	}
	x = suppressMainsRipple(x, fs, sc)
	smoothWin := opt.SmoothWindow
	if smoothWin == 0 {
		// Automatic: ~2.5 ms at the trace rate, at least 3 samples.
		smoothWin = int(fs * 0.0025)
		if smoothWin < 3 {
			smoothWin = 3
		}
	}
	sc.smooth = sc.sm.MovingAverage(sc.smooth, x, smoothWin)
	smooth := sc.smooth
	pts, err := findPreamble(smooth, opt)
	if err != nil {
		return Result{}, err
	}
	dt := 1 / fs
	th := computeThresholds(pts, dt)
	// Second pass: with the symbol duration roughly known, re-detect
	// the preamble on a tau_t/3-smoothed signal. Heavier smoothing
	// rounds the HIGH plateaus so their maxima sit at the symbol
	// centers, which fixes the grid phase/step estimate under
	// FoV-induced inter-symbol interference.
	if w := int(th.TauT * fs / 3); w > smoothWin {
		sc.smooth2 = sc.sm.MovingAverage(sc.smooth2, x, w)
		smooth2 := sc.smooth2
		if pts2, err2 := findPreamble(smooth2, opt); err2 == nil {
			th2 := computeThresholds(pts2, dt)
			if th2.TauT > 0 && th2.TauR > 0 {
				pts, th = pts2, th2
				// Keep amplitude anchors from the lightly smoothed
				// signal (heavy smoothing deflates the contrast).
				pts.AValue = smooth[pts.AIndex]
				pts.BValue = smooth[pts.BIndex]
				pts.CValue = smooth[pts.CIndex]
				th.TauR = ((pts.AValue - pts.BValue) + (pts.CValue - pts.BValue)) / 2
				th.Baseline = pts.BValue
			}
		}
	}
	pts.ATime = float64(pts.AIndex) * dt
	pts.BTime = float64(pts.BIndex) * dt
	pts.CTime = float64(pts.CIndex) * dt
	if th.TauR < opt.MinContrast {
		return Result{Preamble: pts, Thresholds: th}, fmt.Errorf("%w: tau_r %.2f < %.2f", ErrLowContrast, th.TauR, opt.MinContrast)
	}
	if th.TauT <= 0 {
		return Result{Preamble: pts, Thresholds: th}, ErrNoPreamble
	}
	// Slice symbol windows of length tau_t centered on the symbol
	// grid anchored at peak A (the center of the first HIGH symbol).
	tauSamples := th.TauT * fs
	// Now that the symbol duration is known, re-smooth at tau_t/8 so
	// window maxima ride the symbol level rather than noise spikes
	// (the analog front end of the real board does this for free).
	// The lightly smoothed signal is dead at this point, so its
	// buffer is reused.
	if resmooth := int(tauSamples / 8); resmooth > smoothWin {
		sc.smooth = sc.sm.MovingAverage(sc.smooth, x, resmooth)
		smooth = sc.smooth
	}
	decision := pts.BValue + th.TauR/2
	// Fine timing recovery. The A/B/C extrema shift under FoV-induced
	// inter-symbol interference (a HIGH stripe next to a bright car
	// roof has its apparent peak pulled toward the roof), so the raw
	// tau_t estimate can be off by >10%, enough for the symbol grid
	// to drift onto neighbours by the end of the data field. Search a
	// small neighbourhood of (step, phase) for the grid that (a)
	// reproduces the known HLHL preamble and (b) maximizes the margin
	// of every window decision; this is standard clock recovery on
	// top of the paper's estimator.
	var symbols []coding.Symbol
	var windowMax []float64
	if opt.DisableTimingRecovery {
		symbols, windowMax = sliceGrid(smooth, float64(pts.AIndex), tauSamples, opt.WindowFraction, decision, opt.ExpectedSymbols)
	} else {
		var bestStep float64
		symbols, windowMax, bestStep, _ = refineGrid(smooth, pts.AIndex, tauSamples, decision, opt, sc)
		th.TauT = bestStep / fs
	}
	if opt.ExpectedSymbols == 0 {
		// Trim trailing LOWs produced after the tag left the FoV.
		for len(symbols) > 0 && symbols[len(symbols)-1] == coding.Low {
			symbols = symbols[:len(symbols)-1]
			windowMax = windowMax[:len(windowMax)-1]
		}
		// A Manchester stream always has even symbol count; pad one
		// LOW back if a trailing LOW of the last bit was trimmed.
		if len(symbols)%2 == 1 {
			symbols = append(symbols, coding.Low)
		}
	}
	res := Result{Symbols: symbols, Preamble: pts, Thresholds: th, WindowMax: windowMax}
	pkt, perr := coding.ParsePacket(symbols)
	if perr != nil {
		res.ParseErr = perr
	} else {
		res.Packet = pkt
	}
	return res, nil
}

// suppressMainsRipple detects the double-line-frequency flicker of
// mains-powered luminaires (100 Hz in 50 Hz grids, 120 Hz in 60 Hz
// grids — the "thicker lines" of the paper's Fig. 7) and, when it
// carries a meaningful share of the AC energy, averages the signal
// over exactly one ripple period. Symbols are orders of magnitude
// slower, so the code content is untouched.
func suppressMainsRipple(x []float64, fs float64, sc *passScratch) []float64 {
	if len(x) < 16 || fs < 400 {
		return x
	}
	mean := dsp.Mean(x)
	if cap(sc.ac) < len(x) {
		sc.ac = make([]float64, len(x))
	}
	ac := sc.ac[:len(x)]
	for i, v := range x {
		ac[i] = v - mean
	}
	total := dsp.RMS(ac) * float64(len(ac))
	if total == 0 {
		return x
	}
	for _, f := range []float64{100, 120} {
		if f+15 >= fs/2 {
			continue
		}
		mag := dsp.Goertzel(ac, fs, f)
		// A mains line is a narrow tone: it must dominate its
		// spectral neighbourhood, otherwise the energy at f is just
		// broadband symbol content (e.g. a fast packet whose symbol
		// rate happens to sit near 100 Hz) and must not be filtered.
		side := dsp.Goertzel(ac, fs, f-15)
		if s2 := dsp.Goertzel(ac, fs, f+15); s2 > side {
			side = s2
		}
		if mag/total > 0.02 && mag > 3*side {
			period := int(fs/f + 0.5)
			if period >= 2 {
				sc.ripple = sc.sm.MovingAverage(sc.ripple, x, period)
				return sc.ripple
			}
		}
	}
	return x
}

// DecodeFixed decodes a trace using externally supplied thresholds —
// no per-packet adaptation and no timing refinement. It anchors the
// symbol grid at the first upward crossing of the decision level.
// This is the ablation baseline showing why the paper's thresholds
// "need to be highly adaptive": fixed values calibrated under one
// light level misread packets under another.
func DecodeFixed(tr *trace.Trace, th Thresholds, opt Options) (Result, error) {
	opt = opt.withDefaults()
	if tr == nil || tr.Len() < 8 {
		return Result{}, errors.New("decoder: trace too short")
	}
	if th.TauT <= 0 || th.TauR <= 0 {
		return Result{}, errors.New("decoder: invalid fixed thresholds")
	}
	smoothWin := opt.SmoothWindow
	if smoothWin == 0 {
		smoothWin = int(th.TauT * tr.Fs / 8)
		if smoothWin < 3 {
			smoothWin = 3
		}
	}
	smooth := dsp.MovingAverage(tr.Samples, smoothWin)
	decision := th.Baseline + th.TauR/2
	anchorIdx := -1
	for i := 1; i < len(smooth); i++ {
		if smooth[i-1] <= decision && smooth[i] > decision {
			anchorIdx = i
			break
		}
	}
	if anchorIdx < 0 {
		return Result{Thresholds: th}, fmt.Errorf("%w: signal never crosses fixed decision level %.1f", ErrNoPreamble, decision)
	}
	tauSamples := th.TauT * tr.Fs
	// The crossing is the leading edge of the first HIGH symbol; its
	// center is half a symbol later.
	anchor := float64(anchorIdx) + tauSamples/2
	symbols, windowMax := sliceGrid(smooth, anchor, tauSamples, opt.WindowFraction, decision, opt.ExpectedSymbols)
	res := Result{Symbols: symbols, Thresholds: th, WindowMax: windowMax}
	pkt, perr := coding.ParsePacket(symbols)
	if perr != nil {
		res.ParseErr = perr
	} else {
		res.Packet = pkt
	}
	return res, nil
}

// sliceGrid samples symbol windows on a (anchor, step) grid and
// returns the HIGH/LOW decisions plus per-window maxima in freshly
// allocated slices.
func sliceGrid(smooth []float64, anchor, step, frac, decision float64, maxSymbols int) ([]coding.Symbol, []float64) {
	return sliceGridInto(smooth, nil, anchor, step, frac, decision, maxSymbols, nil, nil)
}

// sliceGridInto is sliceGrid appending into caller-provided buffers
// (reset to length zero first), pre-sized to the expected symbol
// count so the timing search's hundreds of candidate grids do not
// each regrow their slices. A non-nil rmq (a sparse table built over
// smooth) answers each window maximum in O(1) instead of one scan
// per window; the result is identical either way.
func sliceGridInto(smooth []float64, rmq *rangeMax, anchor, step, frac, decision float64, maxSymbols int, symbols []coding.Symbol, windowMax []float64) ([]coding.Symbol, []float64) {
	want := maxSymbols
	if want <= 0 && step > 0 {
		want = int(float64(len(smooth))/step) + 2
	}
	if want > 0 && cap(symbols) < want {
		symbols = make([]coding.Symbol, 0, want)
		windowMax = make([]float64, 0, want)
	} else {
		symbols, windowMax = symbols[:0], windowMax[:0]
	}
	half := step * frac / 2
	for k := 0; ; k++ {
		if maxSymbols > 0 && k == maxSymbols {
			break
		}
		center := anchor + float64(k)*step
		lo := int(center - half)
		hi := int(center + half)
		if lo < 0 {
			lo = 0
		}
		if hi > len(smooth) {
			hi = len(smooth)
		}
		if lo >= len(smooth) || hi-lo < 1 {
			break
		}
		var maxV float64
		if rmq != nil {
			maxV = rmq.max(lo, hi)
		} else {
			maxV = smooth[lo]
			for _, v := range smooth[lo+1 : hi] {
				if v > maxV {
					maxV = v
				}
			}
		}
		windowMax = append(windowMax, maxV)
		if maxV > decision {
			symbols = append(symbols, coding.High)
		} else {
			symbols = append(symbols, coding.Low)
		}
	}
	return symbols, windowMax
}

// refineGrid searches step in [0.8, 1.2]*tauSamples and phase in
// +-0.5*tauSamples around anchor A for the symbol grid with the best
// decision margins, preferring grids whose first four symbols decode
// to the HLHL preamble.
func refineGrid(smooth []float64, aIndex int, tauSamples, decision float64, opt Options, sc *passScratch) (symbols []coding.Symbol, windowMax []float64, bestStep, bestAnchor float64) {
	const stepSteps, phaseSteps = 17, 17
	// Candidates are ranked entirely by scalar figures of merit, so
	// the search evaluates every grid into the shared scratch buffers
	// and only the winning (step, anchor) pair is re-sliced into
	// fresh memory at the end.
	type cand struct {
		score     float64 // mean decision margin
		minMargin float64 // worst-case window margin (eye opening)
		preamble  bool
		parses    bool
		step      float64
		anchor    float64
	}
	best := cand{score: -1}
	// One sparse table answers every candidate grid's window maxima in
	// O(1) per window; the searches below evaluate hundreds of grids
	// over the same signal. Window widths are bounded by the widest
	// candidate step (the coarse round sweeps up to 1.45x tau, the
	// re-acquisition rescales around the edge clock), so the table
	// stops at that depth; anything wider scans directly.
	maxW := int(tauSamples*3*opt.WindowFraction) + 4
	sc.rmq.build(smooth, maxW)
	// edgeClock, when non-zero, is the crossing-derived symbol
	// duration used by the re-acquisition rounds to rank parsing
	// candidates (set before round 2 runs, so round 1 keeps the
	// original margin ranking).
	var edgeClock float64
	search := func(stepLo, stepHi float64, stepSteps int) {
		for si := 0; si < stepSteps; si++ {
			step := tauSamples * (stepLo + (stepHi-stepLo)*float64(si)/float64(stepSteps-1))
			for pi := 0; pi < phaseSteps; pi++ {
				anchor := float64(aIndex) + step*(-0.5+float64(pi)/float64(phaseSteps-1))
				sc.syms, sc.wm = sliceGridInto(smooth, &sc.rmq, anchor, step, opt.WindowFraction, decision, opt.ExpectedSymbols, sc.syms, sc.wm)
				syms, wm := sc.syms, sc.wm
				if len(syms) < coding.PreambleLen {
					continue
				}
				pre := syms[0] == coding.High && syms[1] == coding.Low &&
					syms[2] == coding.High && syms[3] == coding.Low
				// In auto mode the stream runs to the end of the trace,
				// so parseability is judged the way Decode judges it
				// downstream: with trailing LOW windows trimmed and the
				// stream padded back to even length.
				evalSyms := syms
				if opt.ExpectedSymbols == 0 {
					end := len(syms)
					for end > 0 && syms[end-1] == coding.Low {
						end--
					}
					evalSyms = syms[:end]
					if end%2 == 1 {
						sc.eval = append(sc.eval[:0], syms[:end]...)
						sc.eval = append(sc.eval, coding.Low)
						evalSyms = sc.eval
					}
				}
				valid := coding.ValidPacket(evalSyms)
				var margin, minMargin float64
				for i, v := range wm {
					d := v - decision
					if d < 0 {
						d = -d
					}
					margin += d
					if i == 0 || d < minMargin {
						minMargin = d
					}
				}
				margin /= float64(len(wm))
				c := cand{
					score: margin, minMargin: minMargin,
					preamble: pre, parses: pre && valid,
					step: step, anchor: anchor,
				}
				// Rank: full Manchester validity > preamble validity >
				// decision margin. A half-symbol phase shift can still
				// read HLHL at the front, but its data pairs degenerate
				// to HH/LL, which Manchester forbids. Between two
				// parsing candidates the mean margin cannot be
				// trusted: a slightly-off clock can read a spurious
				// Manchester-valid stream whose windows all sit on
				// plateaus. The crossing-derived clock (set during
				// re-acquisition) is the strongest referee, then the
				// worst-case window margin — a drifting grid always
				// has at least one badly-placed window, the true clock
				// does not.
				better := false
				switch {
				case c.parses != best.parses:
					better = c.parses
				case c.parses && edgeClock > 0:
					better = math.Abs(c.step-edgeClock) < math.Abs(best.step-edgeClock)
				case c.parses:
					better = c.minMargin > best.minMargin
				case c.preamble != best.preamble:
					better = c.preamble
				default:
					better = c.score > best.score
				}
				if better {
					best = c
				}
			}
		}
	}
	search(0.8, 1.2, stepSteps)
	// Re-acquisition. On noisy flat-topped plateaus the A/B/C extrema
	// can sit anywhere on their plateau, so the tau_t estimate can be
	// off by well over the nominal +-20% — the search then either
	// finds no Manchester-valid grid at all, or locks onto an aliased
	// clock that happens to read valid pairs. Round 2 re-derives the
	// symbol clock from decision-level crossings: the shortest
	// significant run between edges is one symbol long in a
	// Manchester stream, and unlike the extrema it cannot alias to a
	// multiple of the true clock. It runs when round 1 parsed nothing
	// or when round 1's winner disagrees with the edge clock; a
	// winner that agrees (every cleanly decodable trace) is returned
	// untouched, so batch results are unchanged.
	edgeClock = edgeTauSamples(smooth, decision, tauSamples)
	reacquire := !best.parses
	if !reacquire && edgeClock > 0 {
		if r := best.step / edgeClock; r < 0.8 || r > 1.25 {
			reacquire = true
		}
	}
	if reacquire && edgeClock > 0 {
		f := edgeClock / tauSamples
		search(0.8*f, 1.2*f, stepSteps)
	}
	if !best.parses {
		// Round 3: coarse sweep as a last resort.
		search(0.6, 1.45, 2*stepSteps)
	}
	if best.score < 0 {
		// Fall back to the unrefined grid.
		syms, wm := sliceGrid(smooth, float64(aIndex), tauSamples, opt.WindowFraction, decision, opt.ExpectedSymbols)
		return syms, wm, tauSamples, float64(aIndex)
	}
	// Re-slice the winner into fresh memory (sliceGrid is
	// deterministic, so this reproduces the ranked candidate exactly).
	syms, wm := sliceGrid(smooth, best.anchor, best.step, opt.WindowFraction, decision, opt.ExpectedSymbols)
	return syms, wm, best.step, best.anchor
}

// edgeTauSamples estimates the symbol duration from decision-level
// crossings: the shortest significant same-side run between the first
// and last crossing. Manchester guarantees isolated single symbols,
// so that minimum is one symbol long. Returns 0 when there are too
// few transitions to trust the estimate. tauHint only sets the
// flicker-rejection floor; the estimate does not otherwise depend on
// it.
func edgeTauSamples(smooth []float64, decision, tauHint float64) float64 {
	minRun := int(tauHint / 4)
	if minRun < 5 {
		minRun = 5
	}
	first, last := -1, -1
	for i := 1; i < len(smooth); i++ {
		if (smooth[i-1] > decision) != (smooth[i] > decision) {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 || last-first < 2*minRun {
		return 0
	}
	best := 0
	runStart := first
	count := 0
	for i := first + 1; i <= last; i++ {
		if (smooth[i-1] > decision) != (smooth[i] > decision) {
			if run := i - runStart; run >= minRun {
				count++
				if best == 0 || run < best {
					best = run
				}
			}
			runStart = i
		}
	}
	if count < 3 {
		return 0
	}
	return float64(best)
}

// computeThresholds derives the paper's tau_r/tau_t from the A/B/C
// anchors (times are filled in from indices).
func computeThresholds(pts PreamblePoints, dt float64) Thresholds {
	pts.ATime = float64(pts.AIndex) * dt
	pts.BTime = float64(pts.BIndex) * dt
	pts.CTime = float64(pts.CIndex) * dt
	return Thresholds{
		TauR:     ((pts.AValue - pts.BValue) + (pts.CValue - pts.BValue)) / 2,
		TauT:     ((pts.BTime - pts.ATime) + (pts.CTime - pts.BTime)) / 2,
		Baseline: pts.BValue,
	}
}

// findPreamble locates A (first peak), B (first valley after A) and C
// (first peak after B).
func findPreamble(x []float64, opt Options) (PreamblePoints, error) {
	lo, hi := dsp.MinMax(x)
	rng := hi - lo
	if rng <= 0 {
		return PreamblePoints{}, ErrNoPreamble
	}
	prom := opt.MinProminence * rng
	// Lazy anchor scan: enumerate extrema in order and stop at C,
	// instead of building and sweeping the full peak/valley lists the
	// old code threw away after reading three entries.
	a, b, c, ok := dsp.PreambleExtrema(x, prom)
	if !ok {
		return PreamblePoints{}, ErrNoPreamble
	}
	return PreamblePoints{
		AIndex: a.Index, BIndex: b.Index, CIndex: c.Index,
		AValue: a.Value, BValue: b.Value, CValue: c.Value,
	}, nil
}
