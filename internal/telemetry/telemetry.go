// Package telemetry is the repository's dependency-free observability
// substrate: sharded lock-free counters, gauges and log-bucketed
// histograms with quantile readout, collected in a Registry that
// snapshots to JSON and renders Prometheus text exposition. The hot
// layers (internal/stream, internal/rxnet, the root Pipeline) record
// into it; cmd/plnet serves it live on /metrics, /metrics.json and
// /healthz; cmd/benchdump embeds the same HistogramSnapshot schema in
// committed BENCH files, so offline baselines and live metrics stay
// diffable against each other.
//
// Everything is stdlib-only and safe for concurrent use. Recording
// (Counter.Add, Gauge.Set, Histogram.Observe) is wait-free — one
// atomic add on a padded stripe or bucket — so instrumentation can sit
// on the per-chunk decode path without serializing the worker pool.
package telemetry

import (
	"sync/atomic"
	"unsafe"
)

// counterStripes is the stripe count of a Counter: a power of two,
// sized so that the handful of goroutines that share a hot counter
// (feeders on one side, decode workers on the other) land on distinct
// cache lines with high probability without bloating every counter on
// a big machine.
const counterStripes = 16

// stripedInt64 pads each stripe to its own cache line so concurrent
// adders on different stripes never false-share.
type stripedInt64 struct {
	v atomic.Int64
	_ [56]byte
}

// stripeOf picks a stripe for the calling goroutine. Go does not
// expose the running P, but goroutine stacks are spread across the
// address space, so hashing the address of a stack slot distributes
// concurrent callers across stripes at the cost of one instruction.
func stripeOf() uint64 {
	var marker byte
	p := uintptr(unsafe.Pointer(&marker))
	return uint64((p>>10)^(p>>20)) & (counterStripes - 1)
}

// Counter is a monotonically increasing sum, sharded across padded
// per-goroutine stripes so concurrent Adds on the decode hot path do
// not contend on one cache line. The zero value is ready to use.
type Counter struct {
	stripes [counterStripes]stripedInt64
}

// Add increments the counter. Negative deltas are a programming error
// but are applied as-is (the registry renders whatever the sum says).
func (c *Counter) Add(n int64) {
	c.stripes[stripeOf()].v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the stripes. It is a snapshot: concurrent Adds may or
// may not be included, but the value never goes backwards across
// calls that happen after the Adds they observe.
func (c *Counter) Value() int64 {
	var sum int64
	for i := range c.stripes {
		sum += c.stripes[i].v.Load()
	}
	return sum
}

// Gauge is a settable instantaneous value (occupancy, depth, limit).
// The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by a delta (e.g. +1 on connect, -1 on
// disconnect).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }
