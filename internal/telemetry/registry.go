package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// metricKind tags what a registered name points at, so get-or-create
// can reject a name reused across types loudly instead of corrupting
// the rendering.
type metricKind int

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k metricKind) String() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "invalid"
}

// promType is the Prometheus exposition TYPE of a kind.
func (k metricKind) promType() string {
	if k == kindHistogram {
		return "summary"
	}
	return k.String()
}

type metricEntry struct {
	name string // full series name, labels included
	kind metricKind
	help string

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	cfn     func() int64
	gfn     func() float64
}

// Registry is a named collection of metrics. Metric names follow
// Prometheus conventions (snake_case, unit suffix, _total for
// counters) and may carry a label set inline, e.g.
// `pl_rxnet_ingest_bytes_total{node="3"}` — series sharing a base
// name form one family in the exposition. All methods are safe for
// concurrent use; the typed getters are get-or-create, so independent
// layers can register the same series and share it.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*metricEntry
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*metricEntry)}
}

// get returns the entry for name, creating it with kind/help via
// build when absent. A name registered under a different kind panics:
// that is a programming error two layers cannot resolve at runtime.
func (r *Registry) get(name string, kind metricKind, help string, build func(e *metricEntry)) *metricEntry {
	if err := checkName(name); err != nil {
		panic(fmt.Sprintf("telemetry: %v", err))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q already registered as %s, requested %s", name, e.kind, kind))
		}
		return e
	}
	e := &metricEntry{name: name, kind: kind, help: help}
	build(e)
	r.entries[name] = e
	return e
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.get(name, kindCounter, help, func(e *metricEntry) { e.counter = &Counter{} }).counter
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.get(name, kindGauge, help, func(e *metricEntry) { e.gauge = &Gauge{} }).gauge
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.get(name, kindHistogram, help, func(e *metricEntry) { e.hist = &Histogram{} }).hist
}

// CounterFunc registers a counter whose value is read from fn at
// snapshot time — for layers that already maintain their own atomics
// (the stream engine's Stats counters) and should not pay for a
// second increment on the hot path. The first registration of a name
// wins; later ones are no-ops.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.get(name, kindCounterFunc, help, func(e *metricEntry) { e.cfn = fn })
}

// GaugeFunc registers a gauge computed at snapshot time (table sizes,
// queue depths, ring occupancy). The first registration of a name
// wins; later ones are no-ops.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.get(name, kindGaugeFunc, help, func(e *metricEntry) { e.gfn = fn })
}

// checkName validates `base` or `base{label="v",...}` with a
// Prometheus-shaped base name.
func checkName(name string) error {
	base, labels := splitName(name)
	if base == "" {
		return fmt.Errorf("empty metric name %q", name)
	}
	for i, c := range base {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("metric name %q: invalid character %q", name, c)
		}
	}
	if labels != "" && (!strings.HasPrefix(labels, "{") || !strings.HasSuffix(labels, "}")) {
		return fmt.Errorf("metric name %q: malformed label set", name)
	}
	return nil
}

// splitName separates the family base name from the inline label set.
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// Snapshot is the JSON form of a registry: every series by full name,
// histograms as the shared HistogramSnapshot schema.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// sorted returns the entries ordered by name, decoupled from the map.
func (r *Registry) sorted() []*metricEntry {
	r.mu.Lock()
	entries := make([]*metricEntry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	return entries
}

// Snapshot collects every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for _, e := range r.sorted() {
		switch e.kind {
		case kindCounter:
			s.Counters[e.name] = e.counter.Value()
		case kindCounterFunc:
			s.Counters[e.name] = e.cfn()
		case kindGauge:
			s.Gauges[e.name] = float64(e.gauge.Value())
		case kindGaugeFunc:
			s.Gauges[e.name] = e.gfn()
		case kindHistogram:
			s.Histograms[e.name] = e.hist.Snapshot()
		}
	}
	return s
}

// WriteJSON renders the snapshot as indented JSON (the /metrics.json
// payload).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format: one HELP/TYPE header per family, histograms as
// summaries with p50/p90/p99 quantile series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var lastFamily string
	for _, e := range r.sorted() {
		base, labels := splitName(e.name)
		if base != lastFamily {
			lastFamily = base
			if e.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, e.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, e.kind.promType()); err != nil {
				return err
			}
		}
		var err error
		switch e.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", e.name, e.counter.Value())
		case kindCounterFunc:
			_, err = fmt.Fprintf(w, "%s %d\n", e.name, e.cfn())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %d\n", e.name, e.gauge.Value())
		case kindGaugeFunc:
			_, err = fmt.Fprintf(w, "%s %g\n", e.name, e.gfn())
		case kindHistogram:
			s := e.hist.Snapshot()
			for _, q := range [...]struct {
				q string
				v float64
			}{{"0.5", s.P50}, {"0.9", s.P90}, {"0.99", s.P99}} {
				if _, err = fmt.Fprintf(w, "%s %g\n", quantileSeries(base, labels, q.q), q.v); err != nil {
					return err
				}
			}
			if _, err = fmt.Fprintf(w, "%s_sum%s %d\n", base, labels, s.Sum); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_count%s %d\n", base, labels, s.Count)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// quantileSeries splices a quantile label into a possibly-labeled
// series name.
func quantileSeries(base, labels, q string) string {
	if labels == "" {
		return fmt.Sprintf("%s{quantile=%q}", base, q)
	}
	return fmt.Sprintf("%s{quantile=%q,%s", base, q, labels[1:])
}
