package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// goldenRegistry builds a registry with deterministic values covering
// every metric kind and a labeled family.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("pl_test_detections_total", "decoded packets").Add(7)
	reg.Counter(`pl_test_ingest_bytes_total{node="1"}`, "per-node ingest").Add(1024)
	reg.Counter(`pl_test_ingest_bytes_total{node="2"}`, "per-node ingest").Add(2048)
	reg.Gauge("pl_test_sessions_active", "tracked sessions").Set(3)
	reg.GaugeFunc("pl_test_queue_depth", "listener queue depth", func() float64 { return 5 })
	reg.CounterFunc("pl_test_samples_in_total", "samples accepted", func() int64 { return 9000 })
	h := reg.Histogram("pl_test_latency_ns", "detection latency")
	for v := int64(1); v <= 10; v++ {
		h.Observe(v) // exact region: quantiles are exact
	}
	return reg
}

func TestRegistryPrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP pl_test_detections_total decoded packets
# TYPE pl_test_detections_total counter
pl_test_detections_total 7
# HELP pl_test_ingest_bytes_total per-node ingest
# TYPE pl_test_ingest_bytes_total counter
pl_test_ingest_bytes_total{node="1"} 1024
pl_test_ingest_bytes_total{node="2"} 2048
# HELP pl_test_latency_ns detection latency
# TYPE pl_test_latency_ns summary
pl_test_latency_ns{quantile="0.5"} 5
pl_test_latency_ns{quantile="0.9"} 9
pl_test_latency_ns{quantile="0.99"} 10
pl_test_latency_ns_sum 55
pl_test_latency_ns_count 10
# HELP pl_test_queue_depth listener queue depth
# TYPE pl_test_queue_depth gauge
pl_test_queue_depth 5
# HELP pl_test_samples_in_total samples accepted
# TYPE pl_test_samples_in_total counter
pl_test_samples_in_total 9000
# HELP pl_test_sessions_active tracked sessions
# TYPE pl_test_sessions_active gauge
pl_test_sessions_active 3
`
	if got := b.String(); got != want {
		t.Fatalf("prometheus exposition drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestRegistryJSONGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	want := `{
  "counters": {
    "pl_test_detections_total": 7,
    "pl_test_ingest_bytes_total{node=\"1\"}": 1024,
    "pl_test_ingest_bytes_total{node=\"2\"}": 2048,
    "pl_test_samples_in_total": 9000
  },
  "gauges": {
    "pl_test_queue_depth": 5,
    "pl_test_sessions_active": 3
  },
  "histograms": {
    "pl_test_latency_ns": {
      "count": 10,
      "sum": 55,
      "min": 1,
      "max": 10,
      "p50": 5,
      "p90": 9,
      "p99": 10
    }
  }
}
`
	if got := b.String(); got != want {
		t.Fatalf("JSON snapshot drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestRegistryGetOrCreateShares(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("pl_shared_total", "shared")
	b := reg.Counter("pl_shared_total", "shared")
	if a != b {
		t.Fatal("get-or-create returned distinct counters for one name")
	}
	a.Add(2)
	b.Add(3)
	if got := reg.Snapshot().Counters["pl_shared_total"]; got != 5 {
		t.Fatalf("shared counter = %d, want 5", got)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("pl_kind_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("pl_kind_total", "")
}

func TestRegistryBadNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	NewRegistry().Counter("pl bad name", "")
}

func TestHandlerEndpoints(t *testing.T) {
	reg := goldenRegistry()
	health := NewHealth()
	degraded := false
	health.AddCheck("drops", func() (bool, string) {
		if degraded {
			return false, "drop counters growing"
		}
		return true, ""
	})
	srv := httptest.NewServer(Handler(reg, health))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "pl_test_detections_total 7") {
		t.Fatalf("/metrics: code %d body %q", code, body)
	}
	if code, body := get("/metrics.json"); code != 200 || !strings.Contains(body, `"pl_test_detections_total": 7`) {
		t.Fatalf("/metrics.json: code %d body %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.HasPrefix(body, "ok\n") {
		t.Fatalf("healthy /healthz: code %d body %q", code, body)
	}
	degraded = true
	if code, body := get("/healthz"); code != 503 || !strings.Contains(body, "degraded drops: drop counters growing") {
		t.Fatalf("degraded /healthz: code %d body %q", code, body)
	}
}

func TestStartServer(t *testing.T) {
	srv, err := StartServer("127.0.0.1:0", goldenRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz on StartServer: code %d", resp.StatusCode)
	}
}
