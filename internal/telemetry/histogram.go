package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram bucket layout: values below 2*histSubCount are counted
// exactly in their own bucket; above that, each power-of-two octave is
// split into histSubCount linear sub-buckets, so the relative width of
// any bucket is 1/histSubCount (12.5%) and a midpoint readout is
// within ~6.25% of the true value. 64-bit values fit in
// histBucketCount buckets total (one atomic each, ~4 KB per
// histogram).
const (
	histSubBits     = 3
	histSubCount    = 1 << histSubBits // 8 sub-buckets per octave
	histExactLimit  = 2 * histSubCount // values < 16 are exact
	histBucketCount = histExactLimit + (63-histSubBits)*histSubCount
)

// histBucket maps a non-negative value to its bucket index.
func histBucket(v int64) int {
	if v < histExactLimit {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	u := uint64(v)
	exp := bits.Len64(u)           // >= histSubBits+2
	shift := exp - histSubBits - 1 // >= 1
	sub := int(u>>uint(shift)) - histSubCount
	return histExactLimit + (shift-1)*histSubCount + sub
}

// histBucketBounds returns the [lo, hi) value range of a bucket; the
// top bucket saturates hi at MaxInt64 (inclusive there).
func histBucketBounds(i int) (lo, hi int64) {
	if i < histExactLimit {
		return int64(i), int64(i) + 1
	}
	shift := (i-histExactLimit)/histSubCount + 1
	sub := (i - histExactLimit) % histSubCount
	lo = int64(histSubCount+sub) << uint(shift)
	hi = lo + int64(1)<<uint(shift)
	if hi < lo {
		hi = math.MaxInt64
	}
	return lo, hi
}

// Histogram is a log-bucketed distribution of non-negative int64
// observations (durations in nanoseconds, sizes in bytes, ...):
// wait-free single-atomic-add recording, quantile readout within
// ~6.25% relative error (exact below 16). The zero value is ready to
// use.
type Histogram struct {
	buckets [histBucketCount]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	min     atomic.Int64 // stored as min+1 so zero means "unset"
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[histBucket(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.min.Load()
		if old != 0 && old <= v+1 {
			break
		}
		if h.min.CompareAndSwap(old, v+1) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Quantile returns the q-th quantile (0 <= q <= 1) as the midpoint of
// the bucket holding that rank, which bounds the relative error by
// half the bucket width (~6.25%); values below 16 are exact. Returns
// 0 with no observations. Min and max ranks return the exact tracked
// extremes.
func (h *Histogram) Quantile(q float64) float64 {
	s := h.Snapshot()
	return s.Quantile(q)
}

// HistogramSnapshot is a consistent-enough point-in-time copy of a
// histogram — the one distribution schema shared by /metrics.json,
// the Prometheus summary rendering, and benchdump's committed BENCH
// files.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	// P50/P90/P99 are bucket-midpoint quantiles (~6.25% relative
	// error; exact below 16).
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`

	buckets [histBucketCount]int64
}

// Snapshot copies the buckets and computes the summary quantiles.
// Concurrent Observes may land between field reads; each field is
// individually consistent and Count matches the copied buckets.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.buckets[i] = n
		s.Count += n
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	if m := h.min.Load(); m != 0 {
		s.Min = m - 1
	}
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
	return s
}

// Quantile reads the q-th quantile from the snapshot's buckets.
func (s *HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based; q=0 is the first, q=1
	// the last.
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range s.buckets {
		n := s.buckets[i]
		if n == 0 {
			continue
		}
		seen += n
		if seen >= rank {
			if i < histExactLimit {
				return float64(i) // exact bucket: one value per bucket
			}
			lo, hi := histBucketBounds(i)
			// Clamp to the tracked extremes so the tails report the
			// exact min/max instead of a bucket midpoint beyond them.
			mid := float64(lo) + float64(hi-lo)/2
			if mid < float64(s.Min) {
				mid = float64(s.Min)
			}
			if mid > float64(s.Max) {
				mid = float64(s.Max)
			}
			return mid
		}
	}
	return float64(s.Max)
}
