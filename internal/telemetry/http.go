package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"sync"
)

// CheckResult is one health check's outcome.
type CheckResult struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// Health aggregates named liveness/degradation checks for /healthz.
// A check returns ok=false with a human-readable detail when its
// condition degrades (drop counters growing, session table full).
// Checks run on every probe, in registration order; they must be safe
// for concurrent use and fast (a probe holds no lock while running
// them beyond the registration list copy).
type Health struct {
	mu     sync.Mutex
	checks []namedCheck
}

type namedCheck struct {
	name string
	fn   func() (ok bool, detail string)
}

// NewHealth builds an empty check set (always healthy).
func NewHealth() *Health { return &Health{} }

// AddCheck registers a named check.
func (h *Health) AddCheck(name string, fn func() (ok bool, detail string)) {
	h.mu.Lock()
	h.checks = append(h.checks, namedCheck{name: name, fn: fn})
	h.mu.Unlock()
}

// Run executes every check.
func (h *Health) Run() []CheckResult {
	h.mu.Lock()
	checks := make([]namedCheck, len(h.checks))
	copy(checks, h.checks)
	h.mu.Unlock()
	out := make([]CheckResult, len(checks))
	for i, c := range checks {
		ok, detail := c.fn()
		out[i] = CheckResult{Name: c.name, OK: ok, Detail: detail}
	}
	return out
}

// Handler serves the registry and health checks:
//
//	/metrics      Prometheus text exposition
//	/metrics.json Snapshot as JSON
//	/healthz      200 "ok" when every check passes, 503 "degraded"
//	              with one line per failing check otherwise
//
// health may be nil (always healthy).
func Handler(reg *Registry, health *Health) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		var results []CheckResult
		if health != nil {
			results = health.Run()
		}
		degraded := false
		for _, res := range results {
			if !res.OK {
				degraded = true
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if degraded {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "degraded")
		} else {
			fmt.Fprintln(w, "ok")
		}
		for _, res := range results {
			if res.OK {
				fmt.Fprintf(w, "ok %s\n", res.Name)
			} else {
				fmt.Fprintf(w, "degraded %s: %s\n", res.Name, res.Detail)
			}
		}
	})
	return mux
}

// Server is a live metrics endpoint bound to a TCP address.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// StartServer serves Handler(reg, health) on addr ("host:port"; empty
// port picks an ephemeral one) in a background goroutine.
func StartServer(addr string, reg *Registry, health *Health) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{srv: &http.Server{Handler: Handler(reg, health)}, ln: ln}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (for ephemeral ports).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }
