package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// refQuantile is the sorted-slice reference the histogram is measured
// against: same rank convention (ceil(q*n), 1-based).
func refQuantile(sorted []int64, q float64) int64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// TestHistogramQuantileAccuracy checks the log-bucketed readout
// against a sorted-slice reference across distributions with very
// different shapes: the bucket scheme guarantees ≤6.25% relative
// error above the exact region, exactness below it.
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	distributions := map[string]func() int64{
		"uniform":     func() int64 { return rng.Int63n(1_000_000) },
		"exponential": func() int64 { return int64(rng.ExpFloat64() * 50_000) },
		"lognormal":   func() int64 { return int64(math.Exp(rng.NormFloat64()*2 + 8)) },
		"bimodal": func() int64 {
			if rng.Intn(10) == 0 {
				return 5_000_000 + rng.Int63n(1_000_000) // slow tail
			}
			return 1_000 + rng.Int63n(500)
		},
		"small-exact": func() int64 { return rng.Int63n(histExactLimit) },
	}
	quantiles := []float64{0.5, 0.9, 0.99}
	for name, draw := range distributions {
		t.Run(name, func(t *testing.T) {
			var h Histogram
			values := make([]int64, 20_000)
			for i := range values {
				values[i] = draw()
				h.Observe(values[i])
			}
			sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
			s := h.Snapshot()
			if s.Count != int64(len(values)) {
				t.Fatalf("count = %d, want %d", s.Count, len(values))
			}
			if s.Min != values[0] || s.Max != values[len(values)-1] {
				t.Fatalf("min/max = %d/%d, want %d/%d", s.Min, s.Max, values[0], values[len(values)-1])
			}
			for _, q := range quantiles {
				got := s.Quantile(q)
				want := float64(refQuantile(values, q))
				if want < histExactLimit {
					if got != want {
						t.Errorf("q%.2f = %g, want exactly %g (exact region)", q, got, want)
					}
					continue
				}
				if rel := math.Abs(got-want) / want; rel > 0.0625 {
					t.Errorf("q%.2f = %g, want %g (±6.25%%), relative error %.2f%%", q, got, want, rel*100)
				}
			}
		})
	}
}

func TestHistogramEmptyAndEdges(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Quantile(0.5) != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("empty histogram snapshot not zero: %+v", s)
	}
	h.Observe(-5) // clamps to 0
	h.Observe(0)
	s = h.Snapshot()
	if s.Count != 2 || s.Min != 0 || s.Max != 0 || s.Quantile(1) != 0 {
		t.Fatalf("zero observations mis-tracked: %+v", s)
	}
}

// TestHistogramBucketsMonotone proves the bucket index function is
// monotone and consistent with its bounds over the value boundaries
// where off-by-ones live.
func TestHistogramBucketsMonotone(t *testing.T) {
	last := -1
	for _, v := range []int64{0, 1, 14, 15, 16, 17, 31, 32, 33, 63, 64, 1 << 20, 1<<20 + 1, 1 << 40, (1 << 62) + 12345, math.MaxInt64} {
		b := histBucket(v)
		if b < last {
			t.Fatalf("bucket(%d) = %d < previous %d: not monotone", v, b, last)
		}
		if b >= histBucketCount {
			t.Fatalf("bucket(%d) = %d out of range %d", v, b, histBucketCount)
		}
		lo, hi := histBucketBounds(b)
		if v < lo || (v >= hi && hi != math.MaxInt64) {
			t.Fatalf("value %d landed in bucket %d with bounds [%d,%d)", v, b, lo, hi)
		}
		last = b
	}
}

// TestCounterConcurrent hammers one counter from many goroutines; the
// striped sum must be exact. Run under -race in the CI concurrency
// tier.
func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const goroutines, perG = 16, 10_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

// TestHistogramConcurrent checks that concurrent observers lose
// nothing: count, sum and extremes all reconcile.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const goroutines, perG = 8, 5_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(int64(g*perG + i))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	n := int64(goroutines * perG)
	if s.Count != n {
		t.Fatalf("count = %d, want %d", s.Count, n)
	}
	if s.Sum != n*(n-1)/2 {
		t.Fatalf("sum = %d, want %d", s.Sum, n*(n-1)/2)
	}
	if s.Min != 0 || s.Max != n-1 {
		t.Fatalf("min/max = %d/%d, want 0/%d", s.Min, s.Max, n-1)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(42)
	g.Add(-2)
	if got := g.Value(); got != 40 {
		t.Fatalf("gauge = %d, want 40", got)
	}
}
