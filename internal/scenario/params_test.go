package scenario

import (
	"strings"
	"testing"

	"passivelight/internal/core"
	"passivelight/internal/decoder"
	"passivelight/internal/frontend"
	"passivelight/internal/scene"
)

func TestBenchValidation(t *testing.T) {
	bad := []BenchParams{
		{Height: 0, SymbolWidth: 0.03, Speed: 0.08, Payload: "0"},
		{Height: 0.2, SymbolWidth: 0, Speed: 0.08, Payload: "0"},
		{Height: 0.2, SymbolWidth: 0.03, Speed: 0, Payload: "0"},
		{Height: 0.2, SymbolWidth: 0.03, Speed: 0.08, Payload: "2"},
		{Height: 0.2, SymbolWidth: 0.03, Speed: 0.08, Payload: "0", Symbols: "HX"},
	}
	for i, b := range bad {
		if _, _, err := b.Build(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestBenchEndToEndBothFig5Payloads(t *testing.T) {
	for i, payload := range []string{"00", "10"} {
		b := BenchParams{Height: 0.2, SymbolWidth: 0.03, Speed: 0.08, Payload: payload, Seed: int64(i + 1)}
		link, pkt, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.EndToEnd(link, pkt, decoder.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Success {
			t.Fatalf("payload %q: decoded %s err %v", payload, res.Decode.SymbolString(), res.Err)
		}
		if res.BitErrs != 0 {
			t.Fatalf("payload %q: %d bit errors", payload, res.BitErrs)
		}
	}
}

func TestBenchTraceMetadata(t *testing.T) {
	link, _, err := BenchParams{Height: 0.2, SymbolWidth: 0.03, Speed: 0.08, Payload: "0", Seed: 1}.Build()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := link.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Meta["receiver"] == "" || tr.Meta["source"] == "" || tr.Meta["unit"] != "adc-counts" {
		t.Fatalf("metadata incomplete: %+v", tr.Meta)
	}
	if !strings.HasPrefix(tr.Meta["receiver"], "pd-") {
		t.Fatalf("indoor receiver %q", tr.Meta["receiver"])
	}
}

func TestOutdoorValidation(t *testing.T) {
	if _, _, err := (OutdoorParams{NoiseFloorLux: 100}).Build(); err == nil {
		t.Fatal("zero height should fail")
	}
	if _, _, err := (OutdoorParams{ReceiverHeight: 0.5}).Build(); err == nil {
		t.Fatal("zero noise floor should fail")
	}
	if _, _, err := (OutdoorParams{ReceiverHeight: 0.5, NoiseFloorLux: 100, Payload: "x"}).Build(); err == nil {
		t.Fatal("bad payload should fail")
	}
}

// TestOutdoorPaperOutcomes asserts the pass/fail pattern of the
// paper's Sec. 5 (Figs. 15-17) end to end through the scenario layer.
func TestOutdoorPaperOutcomes(t *testing.T) {
	cases := []struct {
		name   string
		setup  OutdoorParams
		wantOK bool
	}{
		{"fig15a led 450lux h25", OutdoorParams{Payload: "00", NoiseFloorLux: 450, ReceiverHeight: 0.25, Seed: 3}, true},
		{"fig15b led 100lux h25", OutdoorParams{Payload: "00", NoiseFloorLux: 100, ReceiverHeight: 0.25, Seed: 4}, false},
		{"fig16a pd-g2 bare 100lux", OutdoorParams{Payload: "00", NoiseFloorLux: 100, ReceiverHeight: 0.25, Receiver: frontend.PD(frontend.G2), Seed: 8}, false},
		{"fig16b pd-g2 cap 100lux", OutdoorParams{Payload: "00", NoiseFloorLux: 100, ReceiverHeight: 0.25, Receiver: frontend.PD(frontend.G2).WithCap(), Seed: 9}, true},
		{"fig17a led 6200lux h75", OutdoorParams{Payload: "00", NoiseFloorLux: 6200, ReceiverHeight: 0.75, Seed: 5}, true},
		{"fig17b led 3700lux h100", OutdoorParams{Payload: "00", NoiseFloorLux: 3700, ReceiverHeight: 1.0, Seed: 6}, true},
		{"fig17c led 5500lux h100 code10", OutdoorParams{Payload: "10", NoiseFloorLux: 5500, ReceiverHeight: 1.0, Seed: 7}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			link, pkt, err := tc.setup.Build()
			if err != nil {
				t.Fatal(err)
			}
			tr, err := link.Simulate()
			if err != nil {
				t.Fatal(err)
			}
			tp, derr := decoder.DecodeCarPass(tr, decoder.Options{ExpectedSymbols: 4 + 2*len(pkt.Data)})
			ok := derr == nil && tp.Decode.ParseErr == nil &&
				tp.Decode.Packet.BitString() == pkt.BitString()
			if ok != tc.wantOK {
				t.Fatalf("decode ok=%v, want %v (err=%v)", ok, tc.wantOK, derr)
			}
		})
	}
}

func TestOutdoorCarShapes(t *testing.T) {
	for _, tc := range []struct {
		car  scene.CarModel
		want string
	}{
		{scene.VolvoV40(), "hatchback"},
		{scene.BMW3(), "sedan"},
	} {
		link, _, err := OutdoorParams{Car: tc.car, NoiseFloorLux: 6200, ReceiverHeight: 0.75, Seed: 2}.Build()
		if err != nil {
			t.Fatal(err)
		}
		tr, err := link.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		sig, err := decoder.DetectCarShape(tr)
		if err != nil {
			t.Fatal(err)
		}
		if got := decoder.MatchCarModel(sig); got != tc.want {
			t.Fatalf("%s classified as %q", tc.car.Name, got)
		}
	}
}

func TestOutdoorThroughputMatchesPaper(t *testing.T) {
	// 18 km/h with 10 cm symbols = 50 symbols/s (Sec. 5.3).
	link, pkt, err := OutdoorParams{Payload: "00", NoiseFloorLux: 6200, ReceiverHeight: 0.75, Seed: 5}.Build()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := link.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	tp, err := decoder.DecodeCarPass(tr, decoder.Options{ExpectedSymbols: 4 + 2*len(pkt.Data)})
	if err != nil {
		t.Fatal(err)
	}
	tput := 1 / tp.Decode.Thresholds.TauT
	if tput < 45 || tput > 55 {
		t.Fatalf("throughput %.1f sym/s, want ~50", tput)
	}
}

func TestDurationCoversWholePass(t *testing.T) {
	link, _, err := OutdoorParams{Payload: "00", NoiseFloorLux: 6200, ReceiverHeight: 0.75, Seed: 1}.Build()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := link.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	// The trace must start and end at the quiet ground level (the car
	// fully outside the FoV): first and last samples within a few
	// counts of each other.
	first, last := tr.Samples[0], tr.Samples[tr.Len()-1]
	if diff := first - last; diff > 5 || diff < -5 {
		t.Fatalf("trace does not cover the whole pass: first %v last %v", first, last)
	}
}
