package scenario

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Load is a declarative load-generation spec: a base scenario fanned
// out into N sessions, each with its own deterministic seed and a
// staggered (optionally jittered) start. Expanding a Load yields one
// Spec per session; compiling those (CompileMulti) yields sessions ×
// receivers links — the spec-driven workload the streaming engine is
// scale-tested and benchmarked against. A Load round-trips through
// JSON and expands identically every time.
type Load struct {
	// Name labels the load (registry key for load presets).
	Name string `json:"name,omitempty"`
	// Description is a one-line summary for -list output.
	Description string `json:"description,omitempty"`
	// Preset names the base scenario in the preset registry. Base
	// inlines a spec instead; setting both is an error.
	Preset string `json:"preset,omitempty"`
	// Base is the inline base scenario (nil selects Preset).
	Base *Spec `json:"base,omitempty"`
	// Sessions is the expanded session count (>= 1).
	Sessions int `json:"sessions"`
	// StaggerSec delays session k's objects by k*StaggerSec: the
	// deterministic arrival ramp of a staggered fleet.
	StaggerSec float64 `json:"stagger_sec,omitempty"`
	// JitterSec adds a per-session uniform [0, JitterSec) extra delay,
	// drawn from a deterministic stream seeded by the load seed, so
	// sessions de-correlate without losing reproducibility.
	JitterSec float64 `json:"jitter_sec,omitempty"`
	// Seed drives the jitter stream and anchors the per-session spec
	// seeds. Zero adopts the base spec's seed.
	Seed int64 `json:"seed,omitempty"`
	// SeedStride spaces per-session seeds: session k runs at seed +
	// k*SeedStride. Zero selects DefaultSeedStride, wide enough that
	// the per-receiver offsets CompileMulti adds (seed + receiver
	// index) can never collide across sessions.
	SeedStride int64 `json:"seed_stride,omitempty"`
	// Pace asks replayers to deliver the expanded streams at their
	// stream clocks (wall-time pacing) instead of as fast as possible.
	// Expansion ignores it — the specs are identical either way — but
	// NewLoadSource and plnet -mode load honor it, and -pace overrides
	// it from the command line.
	Pace bool `json:"pace,omitempty"`
}

// DefaultSeedStride is the per-session seed spacing Expand uses when
// SeedStride is zero. It is deliberately huge: CompileMulti seeds
// receiver i of a session at spec seed + i, so a stride of 1 would
// give (session k, receiver i) and (session k+1, receiver i-1)
// byte-identical noise streams; 2^20 keeps every (session, receiver)
// seed distinct for any realistic receiver count.
const DefaultSeedStride = int64(1) << 20

// base resolves the base scenario spec.
func (l Load) base() (Spec, error) {
	if l.Base != nil {
		if l.Preset != "" {
			return Spec{}, errors.New("scenario: load sets both preset and base; pick one")
		}
		return *l.Base, nil
	}
	if l.Preset == "" {
		return Spec{}, errors.New("scenario: load needs a base scenario (preset name or inline base)")
	}
	return Get(l.Preset)
}

// Expand produces the per-session specs: session k gets seed
// seed+k*stride and every object delayed by k*StaggerSec plus its
// jitter draw. Expansion is deterministic — the same Load expands to
// the same specs (and therefore the same traces) every time.
func (l Load) Expand() ([]Spec, error) {
	if l.Sessions < 1 {
		return nil, fmt.Errorf("scenario: load needs sessions >= 1, got %d", l.Sessions)
	}
	if l.StaggerSec < 0 || l.JitterSec < 0 {
		return nil, errors.New("scenario: load stagger/jitter must be non-negative")
	}
	base, err := l.base()
	if err != nil {
		return nil, err
	}
	seed := l.Seed
	if seed == 0 {
		seed = base.Seed
	}
	stride := l.SeedStride
	if stride == 0 {
		stride = DefaultSeedStride
	}
	name := l.Name
	if name == "" {
		name = base.Name
	}
	jitter := rand.New(rand.NewSource(seed))
	specs := make([]Spec, l.Sessions)
	for k := range specs {
		spec := base
		// The base's slices are shared across sessions; copy before
		// staggering the mobility so sessions stay independent.
		spec.Objects = append([]ObjectSpec(nil), base.Objects...)
		spec.Seed = seed + int64(k)*stride
		spec.Name = fmt.Sprintf("%s#%d", name, k)
		shiftPinnedSeeds(&spec, int64(k)*stride)
		delay := float64(k) * l.StaggerSec
		if l.JitterSec > 0 {
			delay += jitter.Float64() * l.JitterSec
		}
		if delay > 0 {
			for i := range spec.Objects {
				spec.Objects[i].Mobility.DelaySec += delay
			}
			if spec.DurationSec > 0 {
				spec.DurationSec += delay
			}
		}
		specs[k] = spec
	}
	return specs, nil
}

// shiftPinnedSeeds moves a base spec's explicit seed overrides
// (NoiseSpec.Seed, per-receiver ReceiverSpec.Seed and nested noise
// seeds) by the session's seed offset. Overrides win over the
// spec-level seed in CompileMulti, so without the shift a base that
// pins any stream's seed would render that stream bit-identically in
// every session — the opposite of what a load fan-out is for.
// Session 0 (offset 0) keeps the base values exactly.
func shiftPinnedSeeds(spec *Spec, offset int64) {
	if offset == 0 {
		return
	}
	shift := func(ns NoiseSpec) NoiseSpec {
		if ns.Seed != nil {
			v := *ns.Seed + offset
			ns.Seed = &v
		}
		return ns
	}
	spec.Noise = shift(spec.Noise)
	shiftReceiver := func(r *ReceiverSpec) {
		if r.Seed != nil {
			v := *r.Seed + offset
			r.Seed = &v
		}
		if r.Noise != nil {
			ns := shift(*r.Noise)
			r.Noise = &ns
		}
	}
	shiftReceiver(&spec.Receiver)
	if len(spec.Receivers) == 0 {
		return
	}
	spec.Receivers = append([]ReceiverSpec(nil), spec.Receivers...)
	for i := range spec.Receivers {
		shiftReceiver(&spec.Receivers[i])
	}
}

// LoadEntry is one named load preset.
type LoadEntry struct {
	// Name is the registry key (also what cmd/plsim -scenario takes
	// in -load mode).
	Name string
	// Description is a one-line summary for -list output.
	Description string

	build func() (Load, error)
}

// Load builds the preset's load (a fresh value each call; callers may
// mutate it freely, e.g. override Sessions).
func (e LoadEntry) Load() (Load, error) {
	l, err := e.build()
	if err != nil {
		return Load{}, err
	}
	l.Name = e.Name
	if l.Description == "" {
		l.Description = e.Description
	}
	return l, nil
}

var (
	loadMu    sync.RWMutex
	loadReg   []LoadEntry
	loadIndex = map[string]int{}
)

// RegisterLoad adds a named load preset; the name must be unused.
func RegisterLoad(name, description string, build func() (Load, error)) error {
	if build == nil {
		return fmt.Errorf("scenario: load preset %q registered with a nil builder", name)
	}
	loadMu.Lock()
	defer loadMu.Unlock()
	if _, dup := loadIndex[name]; dup {
		return fmt.Errorf("scenario: load preset %q already registered", name)
	}
	loadIndex[name] = len(loadReg)
	loadReg = append(loadReg, LoadEntry{Name: name, Description: description, build: build})
	return nil
}

func mustRegisterLoad(name, description string, build func() (Load, error)) {
	if err := RegisterLoad(name, description, build); err != nil {
		panic(err)
	}
}

// ErrUnknownLoad marks a GetLoad miss (no preset registered under
// the name), distinguishable with errors.Is from a registered
// preset's builder failing.
var ErrUnknownLoad = errors.New("scenario: unknown load preset")

// GetLoad builds the named load preset. A miss wraps ErrUnknownLoad;
// any other error came from the preset's own builder.
func GetLoad(name string) (Load, error) {
	loadMu.RLock()
	i, ok := loadIndex[name]
	var entry LoadEntry
	if ok {
		entry = loadReg[i]
	}
	// Release before invoking the builder (it may re-enter the
	// scenario registry), mirroring Get.
	loadMu.RUnlock()
	if !ok {
		return Load{}, fmt.Errorf("%w %q (run with -list to see the registry)", ErrUnknownLoad, name)
	}
	return entry.Load()
}

// LoadEntries lists the registered load presets sorted by name.
func LoadEntries() []LoadEntry {
	loadMu.RLock()
	defer loadMu.RUnlock()
	out := make([]LoadEntry, len(loadReg))
	copy(out, loadReg)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DefaultStaggerSec / DefaultJitterSec are the stagger policy the
// fleet-load preset ships with, shared with ad-hoc fan-outs (plsim
// -load over a plain scenario): the stagger keeps per-session traces
// bounded (25 ms per session plus up to 400 ms jitter over a ~7.8 s
// base pass) while spreading packet arrivals so the engine never
// sees a synchronized decode burst.
const (
	DefaultStaggerSec = 0.025
	DefaultJitterSec  = 0.4
)

const fleetLoadDescription = "N staggered indoor tag passes (default 128) — the spec-driven workload for engine-scale runs"

// fleetLoad builds the fleet-load preset: the indoor bench fanned out
// into staggered sessions.
func fleetLoad() (Load, error) {
	return Load{
		Preset:     "indoor-bench",
		Sessions:   128,
		StaggerSec: DefaultStaggerSec,
		JitterSec:  DefaultJitterSec,
		Seed:       1,
	}, nil
}

func init() {
	mustRegisterLoad("fleet-load", fleetLoadDescription, fleetLoad)
}
