package scenario

import (
	"encoding/json"
	"strings"
	"testing"

	"passivelight/internal/decoder"
)

// TestMultiLinkDeterminism locks the fan-out guarantee: the same spec
// + seed compiles to bit-identical traces per receiver, while
// different receivers of one scenario see independent noise streams
// over the same world.
func TestMultiLinkDeterminism(t *testing.T) {
	spec, err := Get("rx-lanes")
	if err != nil {
		t.Fatal(err)
	}
	m1, trs1 := simulateLinks(t, spec)
	_, trs2 := simulateLinks(t, spec)
	if len(trs1) < 2 {
		t.Fatalf("rx-lanes compiled to %d links, want >= 2", len(trs1))
	}
	for i := range trs1 {
		identical(t, m1.Links[i].Name, trs1[i], trs2[i])
	}
	// Receivers must not share a noise stream: the two links render
	// the same world but digitize through independent electronics.
	same := true
	for i := range trs1[0].Samples {
		if trs1[0].Samples[i] != trs1[1].Samples[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("both receivers produced the identical trace; per-receiver streams are not independent")
	}
	// Stream ids are stable and recover (session, receiver).
	for i, l := range m1.Links {
		if l.StreamID != StreamID(0, i) {
			t.Fatalf("link %d stream id %d", i, l.StreamID)
		}
		if StreamSession(l.StreamID) != 0 || StreamReceiver(l.StreamID) != i {
			t.Fatalf("stream id %d does not split back to (0, %d)", l.StreamID, i)
		}
	}
	id := StreamID(130, 3)
	if StreamSession(id) != 130 || StreamReceiver(id) != 3 {
		t.Fatalf("StreamID(130,3) -> (%d,%d)", StreamSession(id), StreamReceiver(id))
	}
}

// TestMultiLinkSingleReceiverParity: a single-receiver spec compiled
// through CompileMulti is bit-identical to the historical Compile
// path, for every single-receiver preset.
func TestMultiLinkSingleReceiverParity(t *testing.T) {
	for _, e := range Entries() {
		spec, err := e.Spec()
		if err != nil {
			t.Fatal(err)
		}
		if len(spec.Receivers) > 0 {
			continue
		}
		t.Run(e.Name, func(t *testing.T) {
			_, tr := simulateSpec(t, spec)
			m, trs := simulateLinks(t, spec)
			if len(trs) != 1 {
				t.Fatalf("single-receiver spec compiled to %d links", len(trs))
			}
			identical(t, e.Name, tr, trs[0])
			if m.Links[0].StreamID != 0 || m.Links[0].Index != 0 {
				t.Fatalf("single link keyed %d/%d", m.Links[0].Index, m.Links[0].StreamID)
			}
		})
	}
}

// TestMultiLinkJSONRoundTrip: the receivers list survives JSON and
// compiles to identical output (TestSpecJSONRoundTrip covers this for
// registry presets; this case adds per-receiver seed/noise overrides,
// which only a multi-receiver spec carries).
func TestMultiLinkJSONRoundTrip(t *testing.T) {
	spec, err := Get("rx-lanes")
	if err != nil {
		t.Fatal(err)
	}
	seed := int64(99)
	spec.Receivers[1].Seed = &seed
	spec.Receivers[1].Noise = &NoiseSpec{Profile: "quiet", Fog: &FogSpec{Density: 0.2, ScatterLux: 100}}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var loaded Spec
	if err := json.Unmarshal(data, &loaded); err != nil {
		t.Fatal(err)
	}
	_, want := simulateLinks(t, spec)
	_, got := simulateLinks(t, loaded)
	for i := range want {
		identical(t, "rx-lanes+overrides", want[i], got[i])
	}
}

// TestMultiLinkReceiverOverrides: per-receiver seed and noise
// overrides change that link only, and the single/multi receiver
// fields stay mutually exclusive.
func TestMultiLinkReceiverOverrides(t *testing.T) {
	spec, err := Get("rx-lanes")
	if err != nil {
		t.Fatal(err)
	}
	_, base := simulateLinks(t, spec)
	seed := int64(7)
	spec.Receivers[1].Seed = &seed
	_, reseeded := simulateLinks(t, spec)
	identical(t, "untouched link", base[0], reseeded[0])
	sameCount := 0
	for i := range base[1].Samples {
		if base[1].Samples[i] == reseeded[1].Samples[i] {
			sameCount++
		}
	}
	if sameCount == len(base[1].Samples) {
		t.Fatal("per-receiver seed override did not change the link's streams")
	}

	// Compile (single-link surface) refuses a multi-receiver spec.
	if _, err := spec.Compile(); err == nil || !strings.Contains(err.Error(), "CompileMulti") {
		t.Fatalf("Compile over 2 receivers: %v", err)
	}
	// Setting both forms is an error.
	spec.Receiver = ReceiverSpec{Device: "rx-led", HeightM: 0.75}
	if _, err := spec.CompileMulti(); err == nil {
		t.Fatal("receiver + receivers should not compile")
	}
}

// TestLoadExpandDeterministic: the same Load expands to the same
// staggered specs every time, the stagger is monotone, per-session
// seeds are distinct, and a JSON round-tripped Load compiles to
// bit-identical traces.
func TestLoadExpandDeterministic(t *testing.T) {
	load, err := GetLoad("fleet-load")
	if err != nil {
		t.Fatal(err)
	}
	load.Sessions = 6
	specs, err := load.Expand()
	if err != nil {
		t.Fatal(err)
	}
	again, err := load.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 6 || len(again) != 6 {
		t.Fatalf("expanded %d/%d sessions", len(specs), len(again))
	}
	seeds := map[int64]bool{}
	prevDelay := -1.0
	for k, spec := range specs {
		if seeds[spec.Seed] {
			t.Fatalf("session %d repeats seed %d", k, spec.Seed)
		}
		seeds[spec.Seed] = true
		delay := spec.Objects[0].Mobility.DelaySec
		if delay < float64(k)*load.StaggerSec {
			t.Fatalf("session %d delay %.3f under the stagger ramp", k, delay)
		}
		if delay <= prevDelay && load.StaggerSec > load.JitterSec {
			t.Fatalf("session %d delay %.3f not past session %d's %.3f", k, delay, k-1, prevDelay)
		}
		prevDelay = delay
	}
	// Bit-identical expansion and JSON round-trip, checked on a
	// sampled session (first and last).
	data, err := json.Marshal(load)
	if err != nil {
		t.Fatal(err)
	}
	var reloaded Load
	if err := json.Unmarshal(data, &reloaded); err != nil {
		t.Fatal(err)
	}
	respecs, err := reloaded.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 5} {
		_, want := simulateSpec(t, specs[k])
		_, fromSame := simulateSpec(t, again[k])
		_, fromJSON := simulateSpec(t, respecs[k])
		identical(t, "re-expansion", want, fromSame)
		identical(t, "json round trip", want, fromJSON)
	}
}

// TestLoadShiftsPinnedSeeds: a base spec that pins a stream's seed
// (spec-level noise override, per-receiver seed/noise overrides)
// still fans out to de-correlated sessions — the pins are shifted by
// each session's seed offset, with session 0 keeping the base values
// and the base spec itself left untouched.
func TestLoadShiftsPinnedSeeds(t *testing.T) {
	pin := int64(42)
	base, err := Get("rx-lanes")
	if err != nil {
		t.Fatal(err)
	}
	base.Noise.Seed = &pin
	rpin := int64(7)
	base.Receivers[0].Seed = &rpin
	base.Receivers[1].Noise = &NoiseSpec{Profile: "outdoor", Seed: &pin}
	load := Load{Base: &base, Sessions: 2}
	specs, err := load.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if *specs[0].Noise.Seed != pin || *specs[0].Receivers[0].Seed != rpin {
		t.Fatal("session 0 must keep the base's pinned seeds")
	}
	if *specs[1].Noise.Seed == pin || *specs[1].Receivers[0].Seed == rpin ||
		*specs[1].Receivers[1].Noise.Seed == pin {
		t.Fatalf("session 1 kept a pinned seed: noise=%d rx0=%d rx1noise=%d",
			*specs[1].Noise.Seed, *specs[1].Receivers[0].Seed, *specs[1].Receivers[1].Noise.Seed)
	}
	if *base.Noise.Seed != pin || *base.Receivers[0].Seed != rpin || base.Receivers[1].Noise.Seed != specs[0].Receivers[1].Noise.Seed {
		t.Fatal("expanding must not mutate the base spec")
	}
	// The pinned channel-noise stream must actually differ between
	// sessions now.
	_, trs0 := simulateLinks(t, specs[0])
	_, trs1 := simulateLinks(t, specs[1])
	same := true
	for i := range trs0[1].Samples {
		if trs0[1].Samples[i] != trs1[1].Samples[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("pinned-seed receiver rendered bit-identically across sessions")
	}
}

// TestLoadValidation: the load layer fails loudly on bad shapes.
func TestLoadValidation(t *testing.T) {
	if _, err := (Load{Preset: "indoor-bench"}).Expand(); err == nil {
		t.Fatal("sessions < 1 should fail")
	}
	if _, err := (Load{Preset: "no-such", Sessions: 1}).Expand(); err == nil {
		t.Fatal("unknown preset should fail")
	}
	if _, err := (Load{Sessions: 1}).Expand(); err == nil {
		t.Fatal("load without a base should fail")
	}
	base := Spec{Name: "x"}
	if _, err := (Load{Preset: "indoor-bench", Base: &base, Sessions: 1}).Expand(); err == nil {
		t.Fatal("preset + base should fail")
	}
	if _, err := (Load{Preset: "indoor-bench", Sessions: 1, StaggerSec: -1}).Expand(); err == nil {
		t.Fatal("negative stagger should fail")
	}
	if _, err := GetLoad("no-such-load"); err == nil {
		t.Fatal("unknown load preset should fail")
	}
	if err := RegisterLoad("fleet-load", "dup", nil); err == nil {
		t.Fatal("duplicate load registration should fail")
	}
}

// TestStopAndGoDTWFallback is the decode lock for the stop-and-go
// preset: the paper's plain Sec. 4.1 threshold algorithm (fixed tau_t
// slicing, no timing recovery) cannot read the dwell-stretched
// packet, and the Sec. 4.2 DTW fallback classifies it correctly
// against the clean bench baselines.
func TestStopAndGoDTWFallback(t *testing.T) {
	spec, err := Get("stop-and-go")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Objects[0].Mobility.Kind != "stop-and-go" {
		t.Fatalf("preset mobility kind %q", spec.Objects[0].Mobility.Kind)
	}
	c, tr := simulateSpec(t, spec)
	want := c.Packets[0].Packet.BitString()

	// Phase 1: the plain threshold decoder trips over the dwell.
	res, err := decoder.Decode(tr, decoder.Options{
		ExpectedSymbols:       spec.Decode.ExpectedSymbols,
		DisableTimingRecovery: true,
	})
	thresholdOK := err == nil && res.ParseErr == nil && res.Packet.BitString() == want
	if thresholdOK {
		t.Fatalf("threshold decode read %q despite the mid-packet dwell; the preset no longer exercises the DTW fallback", want)
	}

	// Phase 2: DTW against the clean '00'/'10' baselines classifies
	// the distorted pass correctly.
	cls := newBenchClassifier(t)
	matches, err := cls.Classify(tr)
	if err != nil {
		t.Fatal(err)
	}
	if matches[0].Label != want {
		t.Fatalf("DTW classified %q, want %q (distances %v)", matches[0].Label, want, matches)
	}
	// And the cheap single-winner path agrees.
	best, err := cls.Nearest(tr)
	if err != nil {
		t.Fatal(err)
	}
	if best.Label != want {
		t.Fatalf("Nearest classified %q, want %q", best.Label, want)
	}
}
