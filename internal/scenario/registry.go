package scenario

import (
	"fmt"
	"sort"
	"sync"

	"passivelight/internal/channel"
	"passivelight/internal/core"
	"passivelight/internal/frontend"
	"passivelight/internal/scene"
)

// Entry is one named scenario preset.
type Entry struct {
	// Name is the registry key (also what cmd/plsim -scenario takes).
	Name string
	// Description is a one-line summary for -list output.
	Description string

	build func() (Spec, error)
}

// Spec builds the preset's spec (a fresh value each call; callers may
// mutate it freely).
func (e Entry) Spec() (Spec, error) {
	spec, err := e.build()
	if err != nil {
		return Spec{}, err
	}
	spec.Name = e.Name
	if spec.Description == "" {
		spec.Description = e.Description
	}
	return spec, nil
}

var (
	regMu    sync.RWMutex
	registry []Entry
	regIndex = map[string]int{}

	// aliases map the legacy cmd/plsim scenario names onto presets.
	aliases = map[string]string{
		"indoor":  "indoor-bench",
		"outdoor": "outdoor-pass",
		"car":     "car-signature",
	}
)

// Register adds a named preset; the name must be unused.
func Register(name, description string, build func() (Spec, error)) error {
	if build == nil {
		return fmt.Errorf("scenario: preset %q registered with a nil builder", name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := regIndex[name]; dup {
		return fmt.Errorf("scenario: preset %q already registered", name)
	}
	regIndex[name] = len(registry)
	registry = append(registry, Entry{Name: name, Description: description, build: build})
	return nil
}

func mustRegister(name, description string, build func() (Spec, error)) {
	if err := Register(name, description, build); err != nil {
		panic(err)
	}
}

// Get builds the named preset's spec. Legacy aliases ("indoor",
// "outdoor", "car") resolve to their presets.
func Get(name string) (Spec, error) {
	regMu.RLock()
	if target, ok := aliases[name]; ok {
		name = target
	}
	i, ok := regIndex[name]
	var entry Entry
	if ok {
		entry = registry[i]
	}
	// Release before invoking the builder: user-supplied builders may
	// re-enter Get (a preset derived from another preset), and a
	// nested RLock can deadlock against a concurrent Register.
	regMu.RUnlock()
	if !ok {
		return Spec{}, fmt.Errorf("scenario: unknown preset %q (run with -list to see the registry)", name)
	}
	return entry.Spec()
}

// Entries lists the registered presets sorted by name.
func Entries() []Entry {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Entry, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names lists the registered preset names sorted.
func Names() []string {
	entries := Entries()
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Name
	}
	return out
}

func init() {
	mustRegister("indoor-bench",
		"paper Fig. 5 bench: one tag at 3 cm symbols under the dark-room lamp, 20 cm height",
		func() (Spec, error) {
			return BenchParams{Height: 0.20, SymbolWidth: 0.03, Speed: 0.08, Payload: "10", Seed: 1}.Spec()
		})
	mustRegister("outdoor-pass",
		"paper Sec. 5 pass: tagged Volvo V40 under the RX-LED pole at 6200 lux, 18 km/h",
		func() (Spec, error) {
			return OutdoorParams{Payload: "00", NoiseFloorLux: 6200, ReceiverHeight: 0.75, Seed: 1}.Spec()
		})
	mustRegister("car-signature",
		"paper Sec. 5.1 baseline: bare Volvo V40, its optical signature as the long-duration preamble",
		func() (Spec, error) {
			return OutdoorParams{NoiseFloorLux: 6200, ReceiverHeight: 0.75, Seed: 1}.Spec()
		})
	mustRegister("collision",
		"paper Sec. 4.3 Case 1: low-frequency packet dominates a simultaneous two-tag crossing (80/20 FoV split)",
		func() (Spec, error) {
			return CollisionParams{LowShare: 0.80, HighShare: 0.20, Seed: 20}.Spec()
		})
	mustRegister("multi-lane", multiLaneDescription, multiLaneSpec)
	mustRegister("tag-fleet", tagFleetDescription, tagFleetSpec)
	mustRegister("weather-sweep", weatherSweepDescription, weatherSweepSpec)
	mustRegister("rx-lanes", rxLanesDescription, rxLanesSpec)
	mustRegister("stop-and-go", stopAndGoDescription, stopAndGoSpec)
}

const multiLaneDescription = "two staggered tagged cars in adjacent lanes under one pole receiver; each decodes in turn"

// multiLaneSpec builds the multi-lane preset: two tagged cars in
// adjacent lanes (distinct lateral FoV shares), the second staggered
// by a lane offset so the shared receiver reads both packets in turn.
func multiLaneSpec() (Spec, error) {
	const (
		lux        = 6200.0
		heightM    = 0.75
		fs         = core.OutdoorFs
		stagger    = 6.0
		symbolW    = core.OutdoorSymbolWidth
		shareNear  = 0.60 // lane under the pole
		shareFar   = 0.40 // adjacent lane
		marginM    = 0.5
		leadInM    = 1.0
		speedKmh   = core.CarSpeedKmh
		nearCar    = "volvo-v40"
		farCar     = "bmw-3"
		nearPacket = "00"
		farPacket  = "10"
	)
	dev := frontend.RXLED()
	rx := channel.Receiver{X: 0, Height: heightM, FoVHalfAngleDeg: dev.FoVHalfAngleDeg}
	fp := rx.FootprintRadius()
	start := -(leadInM + fp)
	speed := scene.KmhToMs(speedKmh)
	lanes := []struct {
		car, payload string
		share, delay float64
	}{
		{nearCar, nearPacket, shareNear, 0},
		{farCar, farPacket, shareFar, stagger},
	}
	spec := Spec{
		Seed:     1,
		Optics:   SunOptics(lux, 0, 0),
		Receiver: ReceiverSpec{Device: dev.Name, HeightM: heightM, FoVDeg: dev.FoVHalfAngleDeg, Fs: fs},
		Noise:    NoiseSpec{Profile: "outdoor"},
		Decode:   DecodeSpec{Strategy: "two-phase", ExpectedSymbols: 8},
	}
	var dur float64
	for i, lane := range lanes {
		model, err := CarByName(lane.car)
		if err != nil {
			return Spec{}, err
		}
		mob := ConstantMobility(start, speed)
		mob.DelaySec = lane.delay
		spec.Objects = append(spec.Objects, ObjectSpec{
			Kind:         "tagged-car",
			Name:         fmt.Sprintf("lane%d-%s", i+1, lane.car),
			Car:          lane.car,
			Payload:      lane.payload,
			SymbolWidthM: symbolW,
			LateralShare: lane.share,
			Mobility:     mob,
		})
		if end := lane.delay + (model.Length()-start+fp+marginM)/speed; end > dur {
			dur = end
		}
	}
	spec.DurationSec = dur
	return spec, nil
}

const tagFleetDescription = "three staggered tags at distinct lateral shares crossing one indoor receiver (a trolley fleet at a checkpoint)"

// tagFleetSpec builds the tag-fleet preset: N plain tags at distinct
// lateral shares, staggered so each is read in turn by the same
// receiver — the indoor fleet/checkpoint workload.
func tagFleetSpec() (Spec, error) {
	const (
		heightM = 0.20
		speed   = 0.10
		symbolW = 0.03
		stagger = 8.0
		// A checkpoint reader is deliberately well lit: the brighter
		// lamp keeps even the narrowest lane share (~0.22 of the FoV)
		// above the online activity detector's margin.
		lampLux = 700.0
	)
	rx := channel.Receiver{X: 0, Height: heightM, FoVHalfAngleDeg: core.IndoorFoVDeg}
	fp := rx.FootprintRadius()
	start := -(fp + 0.15)
	payloads := []string{"00", "10", "01"}
	// Distinct descending lane shares splitting the full FoV, so the
	// fleet keeps a dominance ordering (~0.44/0.33/0.22).
	shares := scene.LaneShares(len(payloads), 1)
	spec := Spec{
		Seed:     1,
		Optics:   LampOptics(0.12, heightM, lampLux, core.IndoorRefHeight, 4),
		Receiver: ReceiverSpec{Device: "pd-G1", HeightM: heightM, FoVDeg: core.IndoorFoVDeg, Fs: 1000},
		Noise:    NoiseSpec{Profile: "indoor"},
		Decode:   DecodeSpec{Strategy: "threshold", ExpectedSymbols: 8},
	}
	var dur float64
	for i, payload := range payloads {
		mob := ConstantMobility(start, speed)
		mob.DelaySec = float64(i) * stagger
		obj := ObjectSpec{
			Kind:         "tag",
			Name:         fmt.Sprintf("fleet-tag-%d", i+1),
			Payload:      payload,
			SymbolWidthM: symbolW,
			LateralShare: shares[i],
			Mobility:     mob,
		}
		spec.Objects = append(spec.Objects, obj)
		tagLen, err := TagLength(payload, symbolW)
		if err != nil {
			return Spec{}, err
		}
		if end := mob.DelaySec + (-start+tagLen+fp+0.05)/speed; end > dur {
			dur = end
		}
	}
	spec.DurationSec = dur
	return spec, nil
}

const rxLanesDescription = "two staggered tagged lanes observed by two heterogeneous receivers on one gantry (compiles to 2 links)"

// rxLanesSpec builds the rx-lanes preset: the multi-lane world
// observed by two heterogeneous receivers sharing one gantry — the
// RX-LED pole of the paper's outdoor runs plus a lens-focused bare G3
// photodiode one quarter-meter higher. It is the declarative form of
// the Sec. 4.4 receiver-network deployment: one scene, N links, one
// multi-session pipeline, detections attributed per receiver.
func rxLanesSpec() (Spec, error) {
	// The 6200-lux sky illuminates the scene; the receivers only see
	// the light the cars reflect, which stays well under the G3's
	// 5000-lux rail. The G3's wide 40-degree FoV is focused down to
	// the RX-LED's 4 degrees, as a lens tube would.
	const (
		lux      = 6200.0
		fs       = core.OutdoorFs
		stagger  = 6.0
		symbolW  = core.OutdoorSymbolWidth
		marginM  = 0.5
		leadInM  = 1.0
		speedKmh = core.CarSpeedKmh
	)
	led := frontend.RXLED()
	receivers := []ReceiverSpec{
		{Name: "pole-led", Device: led.Name, HeightM: 0.75, FoVDeg: led.FoVHalfAngleDeg, Fs: fs},
		{Name: "pole-pd", Device: "pd-G3", HeightM: 1.00, FoVDeg: led.FoVHalfAngleDeg, Fs: fs},
	}
	// The widest footprint among the receivers sizes lead-in and
	// window so the pass clears every link.
	var fp float64
	for _, r := range receivers {
		geom := channel.Receiver{X: r.X, Height: r.HeightM, FoVHalfAngleDeg: r.FoVDeg}
		if f := geom.FootprintRadius(); f > fp {
			fp = f
		}
	}
	start := -(leadInM + fp)
	speed := scene.KmhToMs(speedKmh)
	lanes := []struct {
		car, payload string
		share, delay float64
	}{
		{"volvo-v40", "00", 0.60, 0},
		{"bmw-3", "10", 0.40, stagger},
	}
	spec := Spec{
		Seed:      1,
		Optics:    SunOptics(lux, 0, 0),
		Receivers: receivers,
		Noise:     NoiseSpec{Profile: "outdoor"},
		Decode:    DecodeSpec{Strategy: "two-phase", ExpectedSymbols: 8},
	}
	var dur float64
	for i, lane := range lanes {
		model, err := CarByName(lane.car)
		if err != nil {
			return Spec{}, err
		}
		mob := ConstantMobility(start, speed)
		mob.DelaySec = lane.delay
		spec.Objects = append(spec.Objects, ObjectSpec{
			Kind:         "tagged-car",
			Name:         fmt.Sprintf("lane%d-%s", i+1, lane.car),
			Car:          lane.car,
			Payload:      lane.payload,
			SymbolWidthM: symbolW,
			LateralShare: lane.share,
			Mobility:     mob,
		})
		if end := lane.delay + (model.Length()-start+fp+marginM)/speed; end > dur {
			dur = end
		}
	}
	spec.DurationSec = dur
	return spec, nil
}

const stopAndGoDescription = "indoor '10' pass that dwells mid-packet (urban stop-and-go) — threshold decode breaks, DTW classifies"

// stopAndGoSpec builds the stop-and-go preset: the Fig. 5 bench tag
// halting for 1.2 s with half the packet under the receiver. The
// dwell stretches one symbol ~4x, which defeats the Sec. 4.1 fixed
// tau_t slicing the paper's plain decoder uses — the scenario is the
// registry's canonical DTW-fallback workload (Decode hint "dtw").
func stopAndGoSpec() (Spec, error) {
	b := BenchParams{Height: 0.20, SymbolWidth: 0.03, Speed: 0.08, Payload: "10", Seed: 1}
	spec, err := b.Spec()
	if err != nil {
		return Spec{}, err
	}
	const dwell = 1.2
	mob := spec.Objects[0].Mobility
	tagLen, err := TagLength(b.Payload, b.SymbolWidth)
	if err != nil {
		return Spec{}, err
	}
	// Halt when the tag's midpoint crosses the receiver at x=0: the
	// leading edge has covered -start plus half the tag by then.
	atSec := (tagLen/2 - mob.StartM) / b.Speed
	spec.Name = "stop-and-go"
	spec.Objects[0].Mobility = MobilitySpec{
		Kind:    "stop-and-go",
		StartM:  mob.StartM,
		SpeedMS: b.Speed,
		Stops:   []StopSpec{{AtSec: atSec, DwellSec: dwell}},
	}
	spec.DurationSec += dwell
	spec.Decode = DecodeSpec{Strategy: "dtw", ExpectedSymbols: 8}
	return spec, nil
}

const weatherSweepDescription = "tagged car pass while clouds ramp the ambient level and light fog veils the path"

// weatherSweepSpec builds the weather-sweep preset: the outdoor pass
// under a drifting (cloud-ramped) sun with a light fog stage — the
// Sec. 3 weather distortions as one declarative world.
func weatherSweepSpec() (Spec, error) {
	spec, err := OutdoorParams{Payload: "00", NoiseFloorLux: 5500, ReceiverHeight: 0.75, Seed: 1}.Spec()
	if err != nil {
		return Spec{}, err
	}
	// Clouds ramp the ambient by ±25% over 8 s — roughly one full
	// swing across the ~1.2 s pass window plus lead-in — and a light
	// fog scatters 10% of the reflected signal into a veil.
	spec.Optics = SunOptics(5500, 0.25, 8)
	spec.Noise.Fog = &FogSpec{Density: 0.10, ScatterLux: 300}
	return spec, nil
}
