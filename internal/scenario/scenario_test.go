package scenario

import (
	"encoding/json"
	"strings"
	"testing"

	"passivelight/internal/decoder"
	"passivelight/internal/frontend"
	"passivelight/internal/scene"
	"passivelight/internal/stream"
	"passivelight/internal/trace"
)

func simulateSpec(t *testing.T, spec Spec) (*Compiled, *trace.Trace) {
	t.Helper()
	c, tr, err := spec.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	return c, tr
}

// simulateLinks renders every receiver link of a (possibly
// multi-receiver) spec, in receiver order.
func simulateLinks(t *testing.T, spec Spec) (*MultiCompiled, []*trace.Trace) {
	t.Helper()
	m, err := spec.CompileMulti()
	if err != nil {
		t.Fatal(err)
	}
	traces := make([]*trace.Trace, len(m.Links))
	for i, l := range m.Links {
		tr, err := l.Link.Simulate()
		if err != nil {
			t.Fatalf("link %d (%s): %v", i, l.Name, err)
		}
		traces[i] = tr
	}
	return m, traces
}

func identical(t *testing.T, name string, a, b *trace.Trace) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: trace length %d vs %d", name, a.Len(), b.Len())
	}
	if a.Fs != b.Fs || a.T0 != b.T0 {
		t.Fatalf("%s: trace framing differs", name)
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("%s: sample %d differs: %v vs %v", name, i, a.Samples[i], b.Samples[i])
		}
	}
}

// TestRegistryPresetsDeterministic locks the determinism guarantee:
// the same Spec + seed renders a bit-identical trace every time.
func TestRegistryPresetsDeterministic(t *testing.T) {
	for _, e := range Entries() {
		t.Run(e.Name, func(t *testing.T) {
			spec, err := e.Spec()
			if err != nil {
				t.Fatal(err)
			}
			_, trs1 := simulateLinks(t, spec)
			_, trs2 := simulateLinks(t, spec)
			for i := range trs1 {
				identical(t, e.Name, trs1[i], trs2[i])
			}
		})
	}
}

// TestSpecJSONRoundTrip locks the declarative guarantee: every preset
// marshals to JSON, loads back, and renders the identical trace.
func TestSpecJSONRoundTrip(t *testing.T) {
	for _, e := range Entries() {
		t.Run(e.Name, func(t *testing.T) {
			spec, err := e.Spec()
			if err != nil {
				t.Fatal(err)
			}
			data, err := json.Marshal(spec)
			if err != nil {
				t.Fatal(err)
			}
			var loaded Spec
			if err := json.Unmarshal(data, &loaded); err != nil {
				t.Fatal(err)
			}
			_, want := simulateLinks(t, spec)
			_, got := simulateLinks(t, loaded)
			for i := range want {
				identical(t, e.Name, want[i], got[i])
			}
		})
	}
}

// TestRegistryPresetsDecode runs every preset end to end through its
// declared decode strategy: each builds, simulates, and decodes
// without error, and streaming presets recover every encoded packet.
func TestRegistryPresetsDecode(t *testing.T) {
	for _, e := range Entries() {
		t.Run(e.Name, func(t *testing.T) {
			spec, err := e.Spec()
			if err != nil {
				t.Fatal(err)
			}
			c, trs := simulateLinks(t, spec)
			for li, tr := range trs {
				switch spec.Decode.Strategy {
				case "threshold", "two-phase":
					dec, err := stream.NewDecoder(stream.Config{
						Fs:       tr.Fs,
						Decode:   decoder.Options{ExpectedSymbols: spec.Decode.ExpectedSymbols},
						CarShape: spec.Decode.Strategy == "two-phase",
					})
					if err != nil {
						t.Fatal(err)
					}
					dets := dec.Feed(tr.Samples)
					dets = append(dets, dec.Flush()...)
					var got []string
					for _, d := range dets {
						if d.Err != nil {
							t.Fatalf("link %s: detection error: %v", c.Links[li].Name, d.Err)
						}
						got = append(got, d.BitString())
					}
					if len(got) != len(c.Packets) {
						t.Fatalf("link %s: decoded %d packets (%v), scenario encodes %d", c.Links[li].Name, len(got), got, len(c.Packets))
					}
					for i, want := range c.Packets {
						if got[i] != want.Packet.BitString() {
							t.Fatalf("link %s: packet %d: decoded %q, want %q (object %s)", c.Links[li].Name, i, got[i], want.Packet.BitString(), want.Object)
						}
					}
				case "collision":
					rep, err := decoder.AnalyzeCollision(tr, decoder.CollisionOptions{
						MinFreq: 1.0, MaxFreq: 4.0, MinSeparation: 0.9, SignificanceRatio: 0.6,
					})
					if err != nil {
						t.Fatal(err)
					}
					if rep.SignificantTones < 1 {
						t.Fatalf("no significant tone in collision preset")
					}
				case "shape":
					sig, err := decoder.DetectCarShape(tr)
					if err != nil {
						t.Fatal(err)
					}
					if model := decoder.MatchCarModel(sig); model == "" {
						t.Fatal("car shape not classified")
					}
				case "dtw":
					cls := newBenchClassifier(t)
					matches, err := cls.Classify(tr)
					if err != nil {
						t.Fatal(err)
					}
					if want := c.Packets[0].Packet.BitString(); matches[0].Label != want {
						t.Fatalf("DTW classified %q, want %q", matches[0].Label, want)
					}
				default:
					t.Fatalf("preset %q declares no decode strategy", e.Name)
				}
			}
		})
	}
}

// newBenchClassifier builds the Sec. 4.2 classifier database: clean
// Fig. 5 bench baselines for the '00' and '10' payloads.
func newBenchClassifier(t *testing.T) *decoder.Classifier {
	t.Helper()
	cls := decoder.NewClassifier(256)
	for i, payload := range []string{"00", "10"} {
		link, _, err := (BenchParams{
			Height: 0.20, SymbolWidth: 0.03, Speed: 0.08,
			Payload: payload, Seed: int64(10 + i),
		}).Build()
		if err != nil {
			t.Fatal(err)
		}
		tr, err := link.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		if err := cls.AddBaseline(payload, tr); err != nil {
			t.Fatal(err)
		}
	}
	return cls
}

// TestMultiLanePacketsAreOrdered pins the multi-lane preset shape:
// two tagged cars, distinct shares, staggered lanes.
func TestMultiLanePacketsAreOrdered(t *testing.T) {
	spec, err := Get("multi-lane")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Objects) < 2 {
		t.Fatalf("multi-lane has %d objects", len(spec.Objects))
	}
	shares := map[float64]bool{}
	for _, o := range spec.Objects {
		if o.Kind != "tagged-car" {
			t.Fatalf("object kind %q", o.Kind)
		}
		if shares[o.LateralShare] {
			t.Fatalf("duplicate lateral share %v", o.LateralShare)
		}
		shares[o.LateralShare] = true
	}
	if spec.Objects[0].Mobility.DelaySec >= spec.Objects[1].Mobility.DelaySec {
		t.Fatal("lanes are not staggered")
	}
}

func TestGetAliasesAndErrors(t *testing.T) {
	for alias, target := range map[string]string{"indoor": "indoor-bench", "outdoor": "outdoor-pass", "car": "car-signature"} {
		spec, err := Get(alias)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Name != target {
			t.Fatalf("alias %q resolved to %q", alias, spec.Name)
		}
	}
	if _, err := Get("no-such-preset"); err == nil {
		t.Fatal("unknown preset should fail")
	}
	if err := Register("indoor-bench", "dup", nil); err == nil {
		t.Fatal("duplicate registration should fail")
	}
}

func TestCompileValidation(t *testing.T) {
	valid := func() Spec {
		return Spec{
			Seed:     1,
			Optics:   SunOptics(500, 0, 0),
			Receiver: ReceiverSpec{Device: "rx-led", HeightM: 0.75, Fs: 2000},
			Objects: []ObjectSpec{{
				Kind: "car", Car: "volvo",
				Mobility: ConstantMobility(-1.1, 5),
			}},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"no-optics", func(s *Spec) { s.Optics = OpticsSpec{} }},
		{"bad-optics", func(s *Spec) { s.Optics.Kind = "laser" }},
		{"no-objects", func(s *Spec) { s.Objects = nil }},
		{"bad-device", func(s *Spec) { s.Receiver.Device = "cmos" }},
		{"no-height", func(s *Spec) { s.Receiver.HeightM = 0 }},
		{"bad-car", func(s *Spec) { s.Objects[0].Car = "tank" }},
		{"bad-kind", func(s *Spec) { s.Objects[0].Kind = "drone" }},
		{"bare-car-with-payload", func(s *Spec) { s.Objects[0].Payload = "10" }},
		{"bare-car-with-dirt", func(s *Spec) { s.Objects[0].Dirt = 0.5 }},
		{"lamp-no-height", func(s *Spec) { s.Optics = OpticsSpec{Kind: "point-lamp", Lux: 500} }},
		{"bad-noise", func(s *Spec) { s.Noise.Profile = "cosmic" }},
		{"bad-mobility", func(s *Spec) { s.Objects[0].Mobility.Kind = "teleport" }},
		{"share-overflow", func(s *Spec) {
			s.Objects = append(s.Objects, s.Objects[0], s.Objects[0])
			for i := range s.Objects {
				s.Objects[i].LateralShare = 0.5
			}
		}},
	}
	if _, err := valid().Compile(); err != nil {
		t.Fatalf("base spec should compile: %v", err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := valid()
			tc.mutate(&spec)
			if _, err := spec.Compile(); err == nil {
				t.Fatal("expected compile error")
			}
		})
	}
}

// TestCustomMobilityDoesNotRoundTrip documents the escape hatch:
// programmatic trajectories survive compilation but not JSON.
func TestCustomMobilityDoesNotRoundTrip(t *testing.T) {
	spec := Spec{
		Seed:     1,
		Optics:   SunOptics(500, 0, 0),
		Receiver: ReceiverSpec{Device: "rx-led", HeightM: 0.75, Fs: 2000},
		Objects: []ObjectSpec{{
			Kind: "car", Car: "volvo",
			Mobility: CustomMobility(nil),
		}},
	}
	if _, err := spec.Compile(); err == nil || !strings.Contains(err.Error(), "custom mobility") {
		t.Fatalf("nil custom trajectory should fail clearly, got %v", err)
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var loaded Spec
	if err := json.Unmarshal(data, &loaded); err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.Compile(); err == nil {
		t.Fatal("custom mobility must not silently round-trip through JSON")
	}
}

// TestCustomReceiverAndCarDoNotRoundTrip: the programmatic receiver
// and car escape hatches keep a "custom" marker in JSON, so a lossy
// reload fails Compile instead of silently substituting defaults.
func TestCustomReceiverAndCarDoNotRoundTrip(t *testing.T) {
	dev := frontend.RXLED()
	dev.Sensitivity *= 2 // no registry name matches this model
	spec := Spec{
		Seed:     1,
		Optics:   SunOptics(6200, 0, 0),
		Receiver: CustomReceiverSpec(dev, 0, 0.75, dev.FoVHalfAngleDeg, 2000),
		Objects: []ObjectSpec{{
			Kind: "car", Car: "volvo",
			Mobility: ConstantMobility(-1.1, 5),
		}},
	}
	if _, err := spec.Compile(); err != nil {
		t.Fatalf("programmatic custom receiver should compile: %v", err)
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var loaded Spec
	if err := json.Unmarshal(data, &loaded); err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.Compile(); err == nil || !strings.Contains(err.Error(), "custom") {
		t.Fatalf("reloaded custom receiver should fail clearly, got %v", err)
	}
	// Same for a custom car model injected via the params layer.
	car := scene.VolvoV40()
	car.Segments[0].Length = 1.5
	carSpec, err := OutdoorParams{Car: car, NoiseFloorLux: 6200, ReceiverHeight: 0.75, Seed: 1}.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := carSpec.Compile(); err != nil {
		t.Fatalf("programmatic custom car should compile: %v", err)
	}
	data, err = json.Marshal(carSpec)
	if err != nil {
		t.Fatal(err)
	}
	var loadedCar Spec
	if err := json.Unmarshal(data, &loadedCar); err != nil {
		t.Fatal(err)
	}
	if _, err := loadedCar.Compile(); err == nil || !strings.Contains(err.Error(), "custom") {
		t.Fatalf("reloaded custom car should fail clearly, got %v", err)
	}
}

// TestAutoDuration verifies the derived window covers the pass when
// DurationSec is omitted.
func TestAutoDuration(t *testing.T) {
	spec := Spec{
		Seed:     1,
		Optics:   SunOptics(6200, 0, 0),
		Receiver: ReceiverSpec{Device: "rx-led", HeightM: 0.75, Fs: 2000},
		Objects: []ObjectSpec{{
			Kind: "tagged-car", Car: "volvo", Payload: "00", SymbolWidthM: 0.10,
			Mobility: ConstantMobility(-1.1, 5),
		}},
	}
	_, tr := simulateSpec(t, spec)
	first, last := tr.Samples[0], tr.Samples[tr.Len()-1]
	if diff := first - last; diff > 5 || diff < -5 {
		t.Fatalf("auto duration does not cover the pass: first %v last %v", first, last)
	}
	// An object that never reaches the FoV must fail loudly.
	spec.Objects[0].Mobility = ConstantMobility(-1000, 0.001)
	if _, err := spec.Compile(); err == nil {
		t.Fatal("unreachable object should fail auto duration")
	}
}

func TestSymbolsRoundTrip(t *testing.T) {
	syms, err := ParseSymbols("HLHL.LHHL")
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatSymbols(syms); got != "HLHLLHHL" {
		t.Fatalf("round trip %q", got)
	}
	if _, err := ParseSymbols("HLX"); err == nil {
		t.Fatal("invalid symbol should fail")
	}
	if _, err := ParseSymbols(""); err == nil {
		t.Fatal("empty symbols should fail")
	}
}
