package scenario

import (
	"errors"
	"math"
	"reflect"

	"passivelight/internal/channel"
	"passivelight/internal/coding"
	"passivelight/internal/core"
	"passivelight/internal/frontend"
	"passivelight/internal/noise"
	"passivelight/internal/scene"
)

// BenchParams is the typed builder for the paper's indoor bench
// (Sec. 4.1): an LED lamp and receiver at the same height h, lamp
// offset 12 cm from the receiver, dark room, tag moving at the given
// speed. It compiles to a declarative Spec; Build is the one-call
// spec-and-compile for drivers that want the link directly.
type BenchParams struct {
	// Height of lamp and receiver above the work plane (m).
	Height float64
	// LampLux is the illuminance directly under the lamp.
	LampLux float64
	// SymbolWidth of the tag stripes (m).
	SymbolWidth float64
	// Speed of the moving tag (m/s).
	Speed float64
	// Payload bits encoded after the preamble.
	Payload string
	// Symbols overrides Payload with a raw stripe sequence (e.g.
	// NRZ-coded ablation tags) such as "HLHLHHLL".
	Symbols string
	// Dirt covers the tag stripes with dirt at this coverage
	// (distortion studies).
	Dirt float64
	// Fs sampling rate (Hz). Zero selects 1000.
	Fs float64
	// Seed for noise streams.
	Seed int64
	// FoVHalfAngleDeg of the focused indoor receiver. Zero selects
	// the calibrated IndoorFoVDeg.
	FoVHalfAngleDeg float64
	// Trajectory overrides the default constant-speed pass when set.
	Trajectory scene.Trajectory
	// NoiseModel overrides the default indoor noise when set.
	NoiseModel *noise.Model
}

// Spec compiles the bench parameters into a declarative scenario,
// computing the same lead-in geometry and simulation window the
// paper's bench drivers always used.
func (b BenchParams) Spec() (Spec, error) {
	if b.Height <= 0 || b.SymbolWidth <= 0 || b.Speed <= 0 {
		return Spec{}, errors.New("scenario: bench height, symbol width and speed must be positive")
	}
	fs := b.Fs
	if fs == 0 {
		fs = 1000
	}
	lux := b.LampLux
	if lux == 0 {
		lux = core.IndoorLampLux
	}
	fov := b.FoVHalfAngleDeg
	if fov == 0 {
		fov = core.IndoorFoVDeg
	}
	obj := ObjectSpec{
		Kind:         "tag",
		Name:         "bench-tag",
		Payload:      b.Payload,
		Symbols:      b.Symbols,
		SymbolWidthM: b.SymbolWidth,
		Dirt:         b.Dirt,
		LateralShare: 1.0,
	}
	tg, pkt, err := obj.buildTag()
	if err != nil {
		return Spec{}, err
	}
	// Receiver at x=0; lamp 12 cm away as in Fig. 5's setup. The lamp
	// intensity is calibrated to deliver LampLux at the 20 cm
	// reference height — raising the bench dims the work plane with
	// 1/h^2 exactly as raising a physical lamp would.
	rxGeom := channel.Receiver{X: 0, Height: b.Height, FoVHalfAngleDeg: fov}
	footprint := rxGeom.FootprintRadius()
	var dur float64
	if b.Trajectory == nil {
		// Start the tag just before the FoV with enough quiet lead
		// for the decoder to see a baseline.
		startX := -(footprint + 0.15)
		obj.Mobility = ConstantMobility(startX, b.Speed)
		// Duration: time for the tag to fully cross the FoV plus
		// margin.
		distance := math.Abs(startX) + tg.Length() + footprint + 0.05
		dur = distance / b.Speed
	} else {
		obj.Mobility = MobilityFromTrajectory(b.Trajectory)
		// Caller-supplied trajectory: simulate a generous window.
		dur = (2*b.Height + tg.Length() + footprint + 0.05) / b.Speed * 2
	}
	expected := len(tg.Packet.Symbols())
	if pkt == nil {
		sym, _ := ParseSymbols(b.Symbols)
		expected = len(sym)
	}
	ns := NoiseSpec{Profile: "indoor"}
	if b.NoiseModel != nil {
		ns = CustomNoise(*b.NoiseModel)
	}
	return Spec{
		Name:        "indoor-bench",
		Seed:        b.Seed,
		DurationSec: dur,
		Optics:      LampOptics(0.12, b.Height, lux, core.IndoorRefHeight, 4),
		Receiver:    ReceiverSpec{Device: "pd-G1", X: 0, HeightM: b.Height, FoVDeg: fov, Fs: fs},
		Noise:       ns,
		Objects:     []ObjectSpec{obj},
		Decode:      DecodeSpec{Strategy: "threshold", ExpectedSymbols: expected},
	}, nil
}

// Build assembles the bench link and returns it with the tag's packet
// (the zero packet for raw-symbol tags).
func (b BenchParams) Build() (*core.Link, coding.Packet, error) {
	spec, err := b.Spec()
	if err != nil {
		return nil, coding.Packet{}, err
	}
	c, err := spec.Compile()
	if err != nil {
		return nil, coding.Packet{}, err
	}
	return c.Link, c.Packet(), nil
}

// OutdoorParams is the typed builder for the Sec. 5 application: a
// tagged car passing under a pole-mounted receiver lit by the sun.
type OutdoorParams struct {
	// Car model; zero value selects the Volvo V40.
	Car scene.CarModel
	// Payload bits on the roof tag; empty string means a bare car
	// (the Sec. 5.1 shape-detection baseline).
	Payload string
	// SymbolWidth of the roof stripes (m). Zero selects the paper's
	// 10 cm.
	SymbolWidth float64
	// SpeedKmh of the car. Zero selects 18 km/h.
	SpeedKmh float64
	// ReceiverHeight above the car roof plane (m), e.g. 0.25, 0.75,
	// 1.00 in the paper's runs.
	ReceiverHeight float64
	// NoiseFloorLux is the ambient sun illuminance (100, 450, 3700,
	// 5500, 6200 lux across the paper's runs).
	NoiseFloorLux float64
	// Receiver front-end device; zero value selects the RX-LED.
	Receiver frontend.Receiver
	// Fs sampling rate. Zero selects 2000 S/s.
	Fs float64
	// Seed for the noise streams.
	Seed int64
	// CalmNoise swaps the harsh outdoor noise for the mild indoor
	// model (cloudy, windless runs).
	CalmNoise bool
}

// Spec compiles the outdoor parameters into a declarative scenario.
func (o OutdoorParams) Spec() (Spec, error) {
	if o.ReceiverHeight <= 0 {
		return Spec{}, errors.New("scenario: receiver height must be positive")
	}
	if o.NoiseFloorLux <= 0 {
		return Spec{}, errors.New("scenario: noise floor must be positive")
	}
	car := o.Car
	if car.Name == "" {
		car = scene.VolvoV40()
	}
	width := o.SymbolWidth
	if width == 0 {
		width = core.OutdoorSymbolWidth
	}
	speedKmh := o.SpeedKmh
	if speedKmh == 0 {
		speedKmh = core.CarSpeedKmh
	}
	fs := o.Fs
	if fs == 0 {
		fs = core.OutdoorFs
	}
	rxDev := o.Receiver
	if rxDev.Name == "" {
		rxDev = frontend.RXLED()
	}
	if o.Payload != "" {
		if _, err := coding.NewPacket(o.Payload); err != nil {
			return Spec{}, err
		}
	}
	speed := scene.KmhToMs(speedKmh)
	// The car starts with its front 1 m before the receiver FoV edge
	// so the shape preamble (hood) leads the trace.
	rx := channel.Receiver{X: 0, Height: o.ReceiverHeight, FoVHalfAngleDeg: rxDev.FoVHalfAngleDeg}
	start := -(1.0 + rx.FootprintRadius())
	obj := ObjectSpec{
		Kind:         "tagged-car",
		Payload:      o.Payload,
		SymbolWidthM: width,
		Mobility:     ConstantMobility(start, speed),
	}
	if o.Payload == "" {
		obj.Kind = "car"
		obj.SymbolWidthM = 0
	}
	setCarModel(&obj, car)
	profile := "outdoor"
	if o.CalmNoise {
		profile = "indoor"
	}
	// Simulate until the car tail clears the FoV plus margin.
	dur := (car.Length() - start + rx.FootprintRadius() + 0.5) / speed
	decode := DecodeSpec{Strategy: "two-phase", ExpectedSymbols: coding.PreambleLen + 2*len(o.Payload)}
	if o.Payload == "" {
		decode = DecodeSpec{Strategy: "shape"}
	}
	return Spec{
		Name:        "outdoor-pass",
		Seed:        o.Seed,
		DurationSec: dur,
		Optics:      SunOptics(o.NoiseFloorLux, 0, 0),
		Receiver:    receiverSpecFromDevice(rxDev, 0, o.ReceiverHeight, fs),
		Noise:       NoiseSpec{Profile: profile},
		Objects:     []ObjectSpec{obj},
		Decode:      decode,
	}, nil
}

// Build assembles the link. The returned packet is the zero value for
// bare-car runs.
func (o OutdoorParams) Build() (*core.Link, coding.Packet, error) {
	spec, err := o.Spec()
	if err != nil {
		return nil, coding.Packet{}, err
	}
	c, err := spec.Compile()
	if err != nil {
		return nil, coding.Packet{}, err
	}
	return c.Link, c.Packet(), nil
}

// CollisionParams is the typed builder for the Sec. 4.3 collision
// bench: two tagged objects (one wide-symbol "low-frequency", one
// narrow-symbol "high-frequency") crossing the FoV simultaneously,
// splitting the receiver's lateral view.
type CollisionParams struct {
	// LowShare / HighShare are the FoV shares of the low- and
	// high-frequency packets (the paper's Case 1/2/3 dominance
	// splits).
	LowShare, HighShare float64
	// LowPayload / HighPayload default to the repository's standard
	// collision payloads ("0010" at 4 cm and "0000100000" at 2 cm:
	// equal 48 cm strips whose alternation tones sit at 1.5 and
	// 3 Hz at the bench speed).
	LowPayload, HighPayload string
	// LowSymbolWidth / HighSymbolWidth override the stripe widths.
	LowSymbolWidth, HighSymbolWidth float64
	// Seed for the noise streams.
	Seed int64
}

// Collision bench constants (shared with the Fig. 10 driver).
const (
	// CollisionLowPayload / CollisionHighPayload: mostly-zero data
	// keeps each stripe sequence close to a uniform HLHL...
	// alternation so each packet contributes a clean symbol-rate
	// tone, while the embedded '1' bits give the payloads enough
	// structure that a 50/50 superposition garbles in the time
	// domain.
	CollisionLowPayload  = "0010"
	CollisionHighPayload = "0000100000"
)

// Spec compiles the collision parameters. The receiver sits at 8 cm
// so its footprint resolves even the narrow stripes.
func (c CollisionParams) Spec() (Spec, error) {
	const (
		height = 0.08
		speed  = 0.12
		fs     = 1000.0
	)
	lowPayload := c.LowPayload
	if lowPayload == "" {
		lowPayload = CollisionLowPayload
	}
	highPayload := c.HighPayload
	if highPayload == "" {
		highPayload = CollisionHighPayload
	}
	lowWidth := c.LowSymbolWidth
	if lowWidth == 0 {
		lowWidth = 0.04
	}
	highWidth := c.HighSymbolWidth
	if highWidth == 0 {
		highWidth = 0.02
	}
	rx := channel.Receiver{X: 0, Height: height, FoVHalfAngleDeg: core.IndoorFoVDeg}
	start := -(rx.FootprintRadius() + 0.1)
	lowObj := ObjectSpec{
		Kind: "tag", Name: "low-freq",
		Payload: lowPayload, SymbolWidthM: lowWidth,
		LateralShare: c.LowShare,
		Mobility:     ConstantMobility(start, speed),
	}
	highObj := ObjectSpec{
		Kind: "tag", Name: "high-freq",
		Payload: highPayload, SymbolWidthM: highWidth,
		LateralShare: c.HighShare,
		Mobility:     ConstantMobility(start, speed),
	}
	lowTag, _, err := lowObj.buildTag()
	if err != nil {
		return Spec{}, err
	}
	dur := (-start + lowTag.Length() + rx.FootprintRadius() + 0.05) / speed
	return Spec{
		Name:        "collision",
		Seed:        c.Seed,
		DurationSec: dur,
		Optics:      LampOptics(0.10, height, core.IndoorLampLux, core.IndoorRefHeight, 4),
		Receiver:    ReceiverSpec{Device: "pd-G1", X: 0, HeightM: height, FoVDeg: core.IndoorFoVDeg, Fs: fs},
		Noise:       NoiseSpec{Profile: "indoor"},
		Objects:     []ObjectSpec{lowObj, highObj},
		Decode:      DecodeSpec{Strategy: "collision"},
	}, nil
}

// Compile is Spec().Compile().
func (c CollisionParams) Compile() (*Compiled, error) {
	spec, err := c.Spec()
	if err != nil {
		return nil, err
	}
	return spec.Compile()
}

// receiverSpecFromDevice converts a programmatic receiver model into
// a spec: by registry name when the model is (a FoV variant of) a
// named device, otherwise via the programmatic escape hatch.
func receiverSpecFromDevice(dev frontend.Receiver, x, height, fs float64) ReceiverSpec {
	if base, err := frontend.ByName(dev.Name); err == nil {
		base.FoVHalfAngleDeg = dev.FoVHalfAngleDeg
		if base == dev {
			return ReceiverSpec{Device: dev.Name, X: x, HeightM: height, FoVDeg: dev.FoVHalfAngleDeg, Fs: fs}
		}
	}
	return CustomReceiverSpec(dev, x, height, dev.FoVHalfAngleDeg, fs)
}

// setCarModel stores the car on the object spec: by name when it is
// an unmodified registry model, otherwise via the escape hatch (with
// the "custom" marker so a JSON round-trip fails instead of silently
// substituting a default model).
func setCarModel(o *ObjectSpec, car scene.CarModel) {
	if named, err := CarByName(car.Name); err == nil && reflect.DeepEqual(named, car) {
		o.Car = car.Name
		return
	}
	o.Car = "custom"
	o.carModel = &car
}
