// Package scenario is the declarative world layer of the simulator:
// one JSON-serializable Spec describes a complete passive-light
// scenario — ambient optics, receiver placement and electronics,
// noise/weather profile, and mobile objects with mobility models —
// and compiles into a renderable core.Link. Every construction site
// in the repository (experiment drivers, simulated pipeline sources,
// cmd/plsim) builds worlds through this layer, so a new workload is a
// spec or a registry preset, not a new file of scene-assembly glue.
//
// The package has three surfaces:
//
//   - Spec / Compile: the declarative core. A Spec is plain data
//     (marshals to JSON and back losslessly), Compile turns it into a
//     *core.Link plus the packets physically encoded on its tags.
//   - Params builders (BenchParams, OutdoorParams, CollisionParams):
//     typed convenience front ends that mirror the paper's three
//     experiment families and compute the same geometry (start
//     positions, simulation windows) the original hand-assembled
//     setups used, bit for bit.
//   - The preset registry (Get, Entries, Register): named, ready-made
//     specs — the paper's worlds plus new multi-object workloads.
package scenario

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"passivelight/internal/channel"
	"passivelight/internal/coding"
	"passivelight/internal/core"
	"passivelight/internal/frontend"
	"passivelight/internal/noise"
	"passivelight/internal/optics"
	"passivelight/internal/scene"
	"passivelight/internal/tag"
	"passivelight/internal/trace"
)

// Spec is a complete declarative scenario. The zero value of every
// optional field selects a sensible default; a Spec round-trips
// through JSON without losing information. The one exception are
// specs carrying programmatic escape hatches — a custom Trajectory,
// receiver model or car model injected by the typed params builders —
// which cannot be expressed as data: they keep a "custom" kind/name
// marker in the JSON, so a lossily reloaded spec fails Compile loudly
// instead of silently substituting defaults.
type Spec struct {
	// Name labels the scenario (registry key for presets).
	Name string `json:"name,omitempty"`
	// Description is a one-line summary for -list output.
	Description string `json:"description,omitempty"`
	// Seed drives every deterministic noise stream (front-end
	// electronics and the channel noise model, unless Noise.Seed
	// overrides the latter).
	Seed int64 `json:"seed,omitempty"`
	// T0Sec is the simulation start time (s); tags and rippling
	// sources are time-anchored, so a dynamic-tag pass at T0=61 s can
	// read a different frame than one at T0=1 s.
	T0Sec float64 `json:"t0_sec,omitempty"`
	// DurationSec is the simulated window length. Zero derives it
	// from the objects' pass windows (time for every object to cross
	// the receiver FoV, padded).
	DurationSec float64 `json:"duration_sec,omitempty"`
	// Optics is the ambient light source powering the channel.
	Optics OpticsSpec `json:"optics"`
	// Receiver is the receiver placement, optics and sampling — the
	// common single-receiver form, sugar for a one-element Receivers
	// list.
	Receiver ReceiverSpec `json:"receiver,omitempty"`
	// Receivers is the multi-receiver form of the paper's Sec. 4.4
	// deployment story: one deterministic core.Link per entry is
	// compiled over the same shared world by CompileMulti
	// (heterogeneous devices, placements, and per-receiver noise/seed
	// overrides). Setting both Receiver and Receivers is an error;
	// Compile requires exactly one receiver, CompileMulti accepts any
	// count.
	Receivers []ReceiverSpec `json:"receivers,omitempty"`
	// Noise is the stochastic impairment profile (plus optional fog).
	Noise NoiseSpec `json:"noise,omitempty"`
	// Objects are the mobile reflective elements, in scene order
	// (order matters for lateral-share blending, exactly as in
	// scene.SampleAt).
	Objects []ObjectSpec `json:"objects"`
	// Decode hints how the scenario is meant to be decoded
	// (strategy + expected symbol count); consumers like the e2e
	// tests and example pipelines read it, Compile ignores it.
	Decode DecodeSpec `json:"decode,omitempty"`
}

// OpticsSpec selects and configures the ambient light source.
type OpticsSpec struct {
	// Kind: "point-lamp" | "ceiling-light" | "sun".
	Kind string `json:"kind"`
	// X is the lamp's horizontal position (point-lamp only).
	X float64 `json:"x,omitempty"`
	// HeightM is the lamp height above the ground (point-lamp only).
	HeightM float64 `json:"height_m,omitempty"`
	// Lux is the characteristic illuminance: directly under a point
	// lamp at RefHeightM, or the uniform work-plane/ground level for
	// ceiling lights and the sun.
	Lux float64 `json:"lux,omitempty"`
	// RefHeightM is the calibration height of a point lamp's Lux
	// (the lamp's luminous intensity is Lux*RefHeightM^2, so raising
	// the lamp dims the plane by 1/h^2). Zero selects HeightM.
	RefHeightM float64 `json:"ref_height_m,omitempty"`
	// LambertOrder shapes the point lamp beam (cos^m falloff).
	LambertOrder float64 `json:"lambert_order,omitempty"`
	// RippleDepth / MainsHz / Harmonics / PhaseRad configure the AC
	// ripple of a ceiling light.
	RippleDepth float64   `json:"ripple_depth,omitempty"`
	MainsHz     float64   `json:"mains_hz,omitempty"`
	Harmonics   []float64 `json:"harmonics,omitempty"`
	PhaseRad    float64   `json:"phase_rad,omitempty"`
	// DriftAmp / DriftPeriodSec configure the sun's slow ambient ramp
	// (clouds; the weather-sweep preset).
	DriftAmp       float64 `json:"drift_amp,omitempty"`
	DriftPeriodSec float64 `json:"drift_period_sec,omitempty"`
}

// LampOptics builds a point-lamp optics spec calibrated to deliver
// lux directly underneath at refHeight.
func LampOptics(x, height, lux, refHeight, lambertOrder float64) OpticsSpec {
	return OpticsSpec{Kind: "point-lamp", X: x, HeightM: height, Lux: lux, RefHeightM: refHeight, LambertOrder: lambertOrder}
}

// CeilingOptics builds a mains-powered ceiling-light optics spec.
func CeilingOptics(lux, rippleDepth, mainsHz float64, harmonics []float64) OpticsSpec {
	return OpticsSpec{Kind: "ceiling-light", Lux: lux, RippleDepth: rippleDepth, MainsHz: mainsHz, Harmonics: harmonics}
}

// SunOptics builds a daylight optics spec; driftAmp > 0 adds a slow
// ambient ramp of that relative amplitude over driftPeriod seconds.
func SunOptics(lux, driftAmp, driftPeriodSec float64) OpticsSpec {
	return OpticsSpec{Kind: "sun", Lux: lux, DriftAmp: driftAmp, DriftPeriodSec: driftPeriodSec}
}

// source compiles the optics spec.
func (o OpticsSpec) source() (optics.Source, error) {
	switch o.Kind {
	case "point-lamp":
		if o.HeightM <= 0 {
			return nil, errors.New("scenario: point-lamp height_m must be positive")
		}
		ref := o.RefHeightM
		if ref == 0 {
			ref = o.HeightM
		}
		return optics.PointLamp{
			X:            o.X,
			Height:       o.HeightM,
			Intensity:    o.Lux * ref * ref,
			LambertOrder: o.LambertOrder,
		}, nil
	case "ceiling-light":
		return optics.CeilingLight{
			Lux:         o.Lux,
			RippleDepth: o.RippleDepth,
			MainsHz:     o.MainsHz,
			Harmonics:   o.Harmonics,
			Phase:       o.PhaseRad,
		}, nil
	case "sun":
		return optics.Sun{Lux: o.Lux, SlowDriftAmp: o.DriftAmp, DriftPeriod: o.DriftPeriodSec}, nil
	case "":
		return nil, errors.New("scenario: optics kind required (point-lamp | ceiling-light | sun)")
	default:
		return nil, fmt.Errorf("scenario: unknown optics kind %q", o.Kind)
	}
}

// AmbientLux reports the ambient level a receiver-selection policy
// should plan for, and whether the spec defines one (uniform sources
// only; a focused point lamp is not an ambient noise floor).
func (o OpticsSpec) AmbientLux() (float64, bool) {
	switch o.Kind {
	case "ceiling-light", "sun":
		return o.Lux, true
	}
	return 0, false
}

// ReceiverSpec places and configures the receiver.
type ReceiverSpec struct {
	// Name labels the receiver in multi-receiver scenarios (stream
	// attribution, diagnostics). Empty derives "rx<i>-<device>".
	Name string `json:"name,omitempty"`
	// Device selects the front-end model by name: "pd-g1" | "pd-g2" |
	// "pd-g3" | "rx-led", optionally with a "+cap" suffix. Empty
	// selects the PD at G1.
	Device string `json:"device,omitempty"`
	// X is the horizontal receiver position (m).
	X float64 `json:"x,omitempty"`
	// HeightM above the ground/roof plane (m).
	HeightM float64 `json:"height_m"`
	// FoVDeg is the optical half-angle of the link geometry. Zero
	// adopts the device's own optics (the outdoor configuration);
	// indoor benches focus tighter than the bare device and set it
	// explicitly.
	FoVDeg float64 `json:"fov_deg,omitempty"`
	// Fs is the ADC sampling rate (Hz). Zero selects 1000.
	Fs float64 `json:"fs,omitempty"`
	// Seed overrides this receiver's deterministic seed (front-end
	// electronics and, unless the noise spec overrides it again, the
	// channel noise). Nil derives spec seed + receiver index, so
	// receiver 0 reproduces the single-receiver compile exactly and
	// every further receiver gets independent streams.
	Seed *int64 `json:"seed,omitempty"`
	// Noise overrides the spec-level noise/weather profile for this
	// receiver's link (e.g. one lane in fog, one clear).
	Noise *NoiseSpec `json:"noise,omitempty"`

	// custom carries a programmatic receiver model that has no
	// registry name (escape hatch for the typed params builders);
	// not expressible in JSON.
	custom *frontend.Receiver
}

// CustomReceiverSpec wraps an arbitrary receiver model in a spec;
// the result is programmatic-only. The Device field is set to the
// "custom" marker so a JSON round-trip (which drops the model) fails
// Compile loudly instead of silently selecting a default device.
func CustomReceiverSpec(dev frontend.Receiver, x, height, fovDeg, fs float64) ReceiverSpec {
	return ReceiverSpec{Device: "custom", X: x, HeightM: height, FoVDeg: fovDeg, Fs: fs, custom: &dev}
}

// device resolves the front-end model.
func (r ReceiverSpec) device() (frontend.Receiver, error) {
	if r.custom != nil {
		return *r.custom, nil
	}
	name := r.Device
	if name == "custom" {
		return frontend.Receiver{}, errors.New("scenario: receiver device \"custom\" lost its model (a custom receiver cannot round-trip through JSON)")
	}
	if name == "" {
		name = "pd-g1"
	}
	return frontend.ByName(name)
}

// NoiseSpec selects the stochastic impairment profile.
type NoiseSpec struct {
	// Profile: "indoor" (default) | "outdoor" | "quiet" | "custom".
	Profile string `json:"profile,omitempty"`
	// Custom profile fields (used when Profile == "custom").
	Shot      float64 `json:"shot,omitempty"`
	Thermal   float64 `json:"thermal,omitempty"`
	Drift     float64 `json:"drift,omitempty"`
	GlintProb float64 `json:"glint_prob,omitempty"`
	GlintAmp  float64 `json:"glint_amp,omitempty"`
	// Seed overrides the spec-level seed for the channel noise stream
	// only (the front end keeps the spec seed) — used by sweeps that
	// re-noise one rendered world with fresh streams.
	Seed *int64 `json:"seed,omitempty"`
	// Fog, if set, inserts a fog stage between the rendered channel
	// and the noise (Sec. 3 weather distortion).
	Fog *FogSpec `json:"fog,omitempty"`
}

// FogSpec configures the fog stage.
type FogSpec struct {
	// Density in [0, 1): the share of reflected light scattered out
	// of the path (Transmission = 1 - Density).
	Density float64 `json:"density"`
	// ScatterLux is the veil level replacing the scattered light.
	ScatterLux float64 `json:"scatter_lux,omitempty"`
}

// CustomNoise builds a "custom" NoiseSpec from an explicit model.
// The model's own seed is preserved via the per-stream override.
func CustomNoise(m noise.Model) NoiseSpec {
	seed := m.Seed
	return NoiseSpec{
		Profile: "custom",
		Shot:    m.ShotCoeff, Thermal: m.ThermalSigma, Drift: m.DriftSigma,
		GlintProb: m.GlintProb, GlintAmp: m.GlintAmp,
		Seed: &seed,
	}
}

// model compiles the noise spec.
func (n NoiseSpec) model(defaultSeed int64) (noise.Model, error) {
	seed := defaultSeed
	if n.Seed != nil {
		seed = *n.Seed
	}
	switch n.Profile {
	case "", "indoor":
		return noise.Indoor(seed), nil
	case "outdoor":
		return noise.Outdoor(seed), nil
	case "quiet":
		return noise.Model{Seed: seed}, nil
	case "custom":
		return noise.Model{
			ShotCoeff: n.Shot, ThermalSigma: n.Thermal, DriftSigma: n.Drift,
			GlintProb: n.GlintProb, GlintAmp: n.GlintAmp, Seed: seed,
		}, nil
	default:
		return noise.Model{}, fmt.Errorf("scenario: unknown noise profile %q", n.Profile)
	}
}

// ObjectSpec is one mobile element of the scenario.
type ObjectSpec struct {
	// Kind: "tag" | "car" | "tagged-car" | "dynamic-tag".
	Kind string `json:"kind"`
	// Name labels the object (defaults per kind).
	Name string `json:"name,omitempty"`
	// Payload is the bit string physically encoded on the tag (tag /
	// tagged-car); empty with Kind "car" means a bare car.
	Payload string `json:"payload,omitempty"`
	// Symbols overrides Payload with a raw stripe sequence such as
	// "HLHLHLLH" — non-Manchester patterns (NRZ ablations) that have
	// no packet interpretation.
	Symbols string `json:"symbols,omitempty"`
	// SymbolWidthM is the stripe width (m).
	SymbolWidthM float64 `json:"symbol_width_m,omitempty"`
	// Dirt is the dirt coverage on the tag stripes in [0, 1)
	// (distortion studies).
	Dirt float64 `json:"dirt,omitempty"`
	// Car names the car model ("volvo-v40" | "bmw-3") for car kinds.
	Car string `json:"car,omitempty"`
	// LateralShare in (0, 1] is the fraction of the receiver FoV the
	// object covers laterally; zero selects the car model's width
	// share, or 1 for plain tags.
	LateralShare float64 `json:"lateral_share,omitempty"`
	// Frames are the cycled payloads of a dynamic tag.
	Frames []string `json:"frames,omitempty"`
	// FramePeriodSec is how long each dynamic frame is displayed.
	FramePeriodSec float64 `json:"frame_period_sec,omitempty"`
	// Mobility drives the object across the FoV.
	Mobility MobilitySpec `json:"mobility"`

	// carModel carries a programmatic car model with no registry
	// name (escape hatch; not expressible in JSON).
	carModel *scene.CarModel
}

// MobilitySpec is a declarative trajectory.
type MobilitySpec struct {
	// Kind: "constant" (default) | "piecewise" | "stop-and-go".
	Kind string `json:"kind,omitempty"`
	// StartM is the leading-edge position at t=0 (m).
	StartM float64 `json:"start_m,omitempty"`
	// SpeedMS is the cruise speed (m/s); SpeedKmh is an alternative
	// spelling (used when SpeedMS is zero).
	SpeedMS  float64 `json:"speed_ms,omitempty"`
	SpeedKmh float64 `json:"speed_kmh,omitempty"`
	// DelaySec staggers the whole trajectory: the object holds its
	// start position this long before moving (lane offsets in
	// multi-lane scenarios).
	DelaySec float64 `json:"delay_sec,omitempty"`
	// Segments define a piecewise-constant speed profile (Kind
	// "piecewise"). UntilSec <= 0 on the last segment means "forever".
	Segments []SpeedSegmentSpec `json:"segments,omitempty"`
	// Stops define stop-and-go traffic (Kind "stop-and-go").
	Stops []StopSpec `json:"stops,omitempty"`

	// custom carries a programmatic trajectory (escape hatch; not
	// expressible in JSON).
	custom scene.Trajectory
}

// SpeedSegmentSpec is one piecewise-speed segment.
type SpeedSegmentSpec struct {
	// UntilSec bounds the segment (trajectory clock); <= 0 means
	// +Inf and is only valid on the last segment.
	UntilSec float64 `json:"until_sec,omitempty"`
	SpeedMS  float64 `json:"speed_ms"`
}

// StopSpec is one dwell of a stop-and-go trajectory.
type StopSpec struct {
	AtSec    float64 `json:"at_sec"`
	DwellSec float64 `json:"dwell_sec"`
}

// CustomMobility wraps a programmatic trajectory in a spec (escape
// hatch for trajectories that are not piecewise-constant; does not
// survive JSON).
func CustomMobility(t scene.Trajectory) MobilitySpec {
	return MobilitySpec{Kind: "custom", custom: t}
}

// ConstantMobility is a constant-speed pass from start.
func ConstantMobility(startM, speedMS float64) MobilitySpec {
	return MobilitySpec{Kind: "constant", StartM: startM, SpeedMS: speedMS}
}

// PiecewiseMobility converts a scene.PiecewiseSpeed into its
// declarative form (infinite segment bounds become the <= 0 marker).
func PiecewiseMobility(p scene.PiecewiseSpeed) MobilitySpec {
	m := MobilitySpec{Kind: "piecewise", StartM: p.Start}
	for _, s := range p.Segments {
		seg := SpeedSegmentSpec{UntilSec: s.Until, SpeedMS: s.Speed}
		if math.IsInf(s.Until, 1) {
			seg.UntilSec = 0
		}
		m.Segments = append(m.Segments, seg)
	}
	return m
}

// MobilityFromTrajectory converts a known trajectory type into its
// declarative form; unknown types are wrapped as programmatic-only
// custom mobility.
func MobilityFromTrajectory(t scene.Trajectory) MobilitySpec {
	switch tr := t.(type) {
	case scene.ConstantSpeed:
		return ConstantMobility(tr.Start, tr.Speed)
	case scene.PiecewiseSpeed:
		return PiecewiseMobility(tr)
	case scene.LaneOffset:
		inner := MobilityFromTrajectory(tr.Inner)
		if inner.custom == nil && inner.DelaySec == 0 {
			inner.DelaySec = tr.Delay
			return inner
		}
	}
	return CustomMobility(t)
}

// speed resolves the cruise speed.
func (m MobilitySpec) speed() float64 {
	if m.SpeedMS != 0 {
		return m.SpeedMS
	}
	return scene.KmhToMs(m.SpeedKmh)
}

// trajectory compiles the mobility spec.
func (m MobilitySpec) trajectory() (scene.Trajectory, error) {
	var base scene.Trajectory
	switch m.Kind {
	case "custom":
		if m.custom == nil {
			return nil, errors.New("scenario: custom mobility lost its trajectory (a custom mobility cannot round-trip through JSON)")
		}
		base = m.custom
	case "", "constant":
		base = scene.ConstantSpeed{Start: m.StartM, Speed: m.speed()}
	case "piecewise":
		segs := make([]scene.SpeedSegment, len(m.Segments))
		for i, s := range m.Segments {
			until := s.UntilSec
			if until <= 0 {
				until = math.Inf(1)
			}
			segs[i] = scene.SpeedSegment{Until: until, Speed: s.SpeedMS}
		}
		ps, err := scene.NewPiecewiseSpeed(m.StartM, segs)
		if err != nil {
			return nil, err
		}
		base = ps
	case "stop-and-go":
		stops := make([]scene.Stop, len(m.Stops))
		for i, s := range m.Stops {
			stops[i] = scene.Stop{At: s.AtSec, Dwell: s.DwellSec}
		}
		sg, err := scene.StopAndGo(m.StartM, m.speed(), stops)
		if err != nil {
			return nil, err
		}
		base = sg
	default:
		return nil, fmt.Errorf("scenario: unknown mobility kind %q", m.Kind)
	}
	if m.DelaySec > 0 {
		base = scene.LaneOffset{Inner: base, Delay: m.DelaySec}
	}
	return base, nil
}

// DecodeSpec hints how a scenario's trace is meant to be decoded.
type DecodeSpec struct {
	// Strategy: "threshold" | "two-phase" | "collision" | "shape" |
	// "dtw" (distorted waveform, classify against clean baselines) |
	// "none".
	Strategy string `json:"strategy,omitempty"`
	// ExpectedSymbols bounds the per-packet symbol slice (preamble +
	// data); zero lets the decoder run to segment end.
	ExpectedSymbols int `json:"expected_symbols,omitempty"`
}

// TagPacket records the packet physically encoded on one scenario
// object.
type TagPacket struct {
	// Object is the carrying object's name.
	Object string
	// Packet is the logical payload.
	Packet coding.Packet
}

// Compiled is a scenario compiled to a renderable link.
type Compiled struct {
	// Spec is the source spec (after compilation defaults).
	Spec Spec
	// Link is the assembled world, ready to Simulate.
	Link *core.Link
	// Packets are the payloads physically present in the scene, in
	// object order (bare cars and raw-symbol tags contribute none).
	Packets []TagPacket
}

// Packet returns the first encoded packet (the zero Packet when the
// scenario carries none) — the common single-tag case.
func (c *Compiled) Packet() coding.Packet {
	if len(c.Packets) == 0 {
		return coding.Packet{}
	}
	return c.Packets[0].Packet
}

// CompiledLink is one receiver's view of a compiled multi-receiver
// scenario: its own core.Link (private front end, noise streams and
// geometry) over the shared world scene.
type CompiledLink struct {
	// Index is the receiver's position in the effective receiver list.
	Index int
	// StreamID is the stable per-receiver stream id — StreamID(0,
	// Index) for a plain compile; load generators re-key it with their
	// session index so detections attribute back to both.
	StreamID uint64
	// Name labels the receiver (ReceiverSpec.Name, or
	// "rx<i>-<device>").
	Name string
	// Receiver is the source spec entry.
	Receiver ReceiverSpec
	// Link is the assembled per-receiver world, ready to Simulate.
	Link *core.Link
}

// MultiCompiled is a scenario compiled to one link per receiver over
// a single shared world: every link references the same scene (same
// objects, same trajectories, same light source), so the N receivers
// observe one physical scene exactly as a deployed receiver network
// would.
type MultiCompiled struct {
	// Spec is the source spec (after compilation defaults).
	Spec Spec
	// Links are the per-receiver links, in receiver order.
	Links []CompiledLink
	// Packets are the payloads physically present in the shared
	// scene, in object order.
	Packets []TagPacket
}

// StreamID composes the stable stream id of (session, receiver):
// session in the high 32 bits, receiver index in the low 32 — the
// same keying rxnet uses for (node, stream), so a fleet-load session
// maps onto a synthetic node without translation.
func StreamID(session, receiver int) uint64 {
	return uint64(uint32(session))<<32 | uint64(uint32(receiver))
}

// StreamSession recovers the session half of a StreamID.
func StreamSession(id uint64) int { return int(id >> 32) }

// StreamReceiver recovers the receiver half of a StreamID.
func StreamReceiver(id uint64) int { return int(uint32(id)) }

// receiversList resolves the effective receiver list: Receivers when
// set (the multi-receiver form), else the single Receiver field as a
// one-element list.
func (s Spec) receiversList() ([]ReceiverSpec, error) {
	if len(s.Receivers) == 0 {
		return []ReceiverSpec{s.Receiver}, nil
	}
	if s.Receiver != (ReceiverSpec{}) {
		return nil, errors.New("scenario: set receiver or receivers, not both")
	}
	return s.Receivers, nil
}

// Compile assembles the scenario into a link. It is deterministic:
// the same spec compiles to an identical world every time. Specs with
// a Receivers list must use CompileMulti.
func (s Spec) Compile() (*Compiled, error) {
	m, err := s.CompileMulti()
	if err != nil {
		return nil, err
	}
	if len(m.Links) != 1 {
		return nil, fmt.Errorf("scenario: spec %q compiles to %d links; use CompileMulti", s.Name, len(m.Links))
	}
	return &Compiled{Spec: s, Link: m.Links[0].Link, Packets: m.Packets}, nil
}

// CompileMulti assembles the scenario into one deterministic link per
// receiver over a single shared world. Receiver 0 of a
// single-receiver spec compiles bit-identically to the historical
// Compile path; each further receiver gets an independent front-end
// and noise stream (spec seed + index, unless overridden per
// receiver) over the same scene.
func (s Spec) CompileMulti() (*MultiCompiled, error) {
	recs, err := s.receiversList()
	if err != nil {
		return nil, err
	}
	type resolved struct {
		dev  frontend.Receiver
		geom channel.Receiver
		fs   float64
	}
	res := make([]resolved, len(recs))
	for i, r := range recs {
		wrap := func(err error) error {
			if len(recs) == 1 {
				return err
			}
			return fmt.Errorf("scenario: receiver %d: %w", i, err)
		}
		dev, err := r.device()
		if err != nil {
			return nil, wrap(err)
		}
		if r.HeightM <= 0 {
			return nil, wrap(errors.New("scenario: receiver height must be positive"))
		}
		fs := r.Fs
		if fs == 0 {
			fs = 1000
		}
		fov := r.FoVDeg
		if fov == 0 {
			fov = dev.FoVHalfAngleDeg
		}
		res[i] = resolved{
			dev:  dev,
			geom: channel.Receiver{X: r.X, Height: r.HeightM, FoVHalfAngleDeg: fov},
			fs:   fs,
		}
	}

	src, err := s.Optics.source()
	if err != nil {
		return nil, err
	}

	if len(s.Objects) == 0 {
		return nil, errors.New("scenario: at least one object required")
	}
	objs := make([]*scene.Object, 0, len(s.Objects))
	var packets []TagPacket
	for i, os := range s.Objects {
		obj, pkt, err := os.build()
		if err != nil {
			return nil, fmt.Errorf("scenario: object %d: %w", i, err)
		}
		objs = append(objs, obj)
		if pkt != nil {
			packets = append(packets, TagPacket{Object: obj.Name, Packet: *pkt})
		}
	}
	if err := scene.LaneCompose(objs...); err != nil {
		return nil, err
	}
	sc := scene.New(src, objs...)

	// One shared simulation window: the duration either comes from
	// the spec or is derived so every object's pass clears every
	// receiver's footprint — all links render the same time span.
	dur := s.DurationSec
	if dur == 0 {
		for _, r := range res {
			d, err := autoDuration(objs, r.geom, s.T0Sec)
			if err != nil {
				return nil, err
			}
			if d > dur {
				dur = d
			}
		}
	}

	links := make([]CompiledLink, len(recs))
	for i, r := range recs {
		wrap := func(err error) error {
			if len(recs) == 1 {
				return err
			}
			return fmt.Errorf("scenario: receiver %d: %w", i, err)
		}
		seed := s.Seed + int64(i)
		if r.Seed != nil {
			seed = *r.Seed
		}
		ns := s.Noise
		if r.Noise != nil {
			ns = *r.Noise
		}
		fe, err := frontend.NewChain(res[i].dev, res[i].fs, seed)
		if err != nil {
			return nil, wrap(err)
		}
		nm, err := ns.model(seed)
		if err != nil {
			return nil, wrap(err)
		}
		var fog *noise.Fog
		if f := ns.Fog; f != nil {
			fog = &noise.Fog{Transmission: 1 - f.Density, ScatterLevel: f.ScatterLux}
		}
		name := r.Name
		if name == "" {
			name = fmt.Sprintf("rx%d-%s", i, res[i].dev.Name)
		}
		links[i] = CompiledLink{
			Index:    i,
			StreamID: StreamID(0, i),
			Name:     name,
			Receiver: r,
			Link: &core.Link{
				Scene:    sc,
				Receiver: res[i].geom,
				Frontend: fe,
				Noise:    nm,
				Fog:      fog,
				T0:       s.T0Sec,
				Duration: dur,
			},
		}
	}
	return &MultiCompiled{Spec: s, Links: links, Packets: packets}, nil
}

// Simulate compiles the scenario and renders its trace — the one-call
// form of Compile().Link.Simulate().
func (s Spec) Simulate() (*Compiled, *trace.Trace, error) {
	c, err := s.Compile()
	if err != nil {
		return nil, nil, err
	}
	tr, err := c.Link.Simulate()
	if err != nil {
		return nil, nil, err
	}
	return c, tr, nil
}

// AmbientLux reports the ambient noise floor the scenario's optics
// define (false for focused lamps).
func (s Spec) AmbientLux() (float64, bool) { return s.Optics.AmbientLux() }

// SetReceiverDevice swaps the receiver device while keeping the
// placement and sampling — the hook a Sec. 4.4 receiver-selection
// policy uses. The link geometry follows the new device's optics.
func (s *Spec) SetReceiverDevice(dev frontend.Receiver) {
	s.Receiver = receiverSpecFromDevice(dev, s.Receiver.X, s.Receiver.HeightM, s.Receiver.Fs)
}

// autoDuration derives a simulation window that covers every object's
// pass through the receiver footprint (plus padding), scanning up to
// a bounded horizon.
func autoDuration(objs []*scene.Object, rx channel.Receiver, t0 float64) (float64, error) {
	const (
		maxT = 300.0
		step = 2e-3
		pad  = 0.75
	)
	var dur float64
	for _, o := range objs {
		_, t1, ok := channel.PassWindow(o, rx, maxT, step, pad)
		if !ok {
			return 0, fmt.Errorf("scenario: object %q never enters the receiver FoV within %.0f s; set duration_sec explicitly", o.Name, maxT)
		}
		if t1 > dur {
			dur = t1
		}
	}
	if dur <= t0 {
		return 0, errors.New("scenario: derived duration does not reach past t0; set duration_sec explicitly")
	}
	return dur - t0, nil
}

// build compiles one object spec.
func (o ObjectSpec) build() (*scene.Object, *coding.Packet, error) {
	traj, err := o.Mobility.trajectory()
	if err != nil {
		return nil, nil, err
	}
	switch o.Kind {
	case "tag":
		tg, pkt, err := o.buildTag()
		if err != nil {
			return nil, nil, err
		}
		share := o.LateralShare
		if share == 0 {
			share = 1.0
		}
		obj, err := scene.NewTagObject(defaultName(o.Name, "tag"), tg, traj, share)
		return obj, pkt, err
	case "car", "tagged-car":
		if o.Kind == "car" && (o.Payload != "" || o.Symbols != "" || o.Dirt > 0) {
			return nil, nil, errors.New(`a bare "car" ignores payload/symbols/dirt; use kind "tagged-car"`)
		}
		model, err := o.resolveCar()
		if err != nil {
			return nil, nil, err
		}
		var obj *scene.Object
		var pkt *coding.Packet
		if o.Kind == "car" || (o.Payload == "" && o.Symbols == "") {
			obj, err = scene.NewCarObject(model, traj)
		} else {
			var tg *tag.Tag
			tg, pkt, err = o.buildTag()
			if err != nil {
				return nil, nil, err
			}
			obj, err = scene.NewTaggedCarObject(model, tg, traj)
		}
		if err != nil {
			return nil, nil, err
		}
		if o.LateralShare != 0 {
			obj.LateralShare = o.LateralShare
		}
		if o.Name != "" {
			obj.Name = o.Name
		}
		return obj, pkt, nil
	case "dynamic-tag":
		if len(o.Frames) == 0 {
			return nil, nil, errors.New("dynamic-tag needs frames")
		}
		if o.Payload != "" || o.Symbols != "" || o.Dirt > 0 {
			return nil, nil, errors.New(`a "dynamic-tag" encodes its frames; payload/symbols/dirt are ignored fields`)
		}
		frames := make([]*tag.Tag, len(o.Frames))
		for i, payload := range o.Frames {
			pkt, err := coding.NewPacket(payload)
			if err != nil {
				return nil, nil, err
			}
			frames[i], err = tag.New(pkt, tag.Config{SymbolWidth: o.SymbolWidthM})
			if err != nil {
				return nil, nil, err
			}
		}
		dyn, err := tag.NewDynamic(frames, o.FramePeriodSec)
		if err != nil {
			return nil, nil, err
		}
		share := o.LateralShare
		if share == 0 {
			share = 1.0
		}
		obj, err := scene.NewDynamicTagObject(defaultName(o.Name, "dynamic-tag"), dyn, traj, share)
		return obj, nil, err
	case "":
		return nil, nil, errors.New("object kind required (tag | car | tagged-car | dynamic-tag)")
	default:
		return nil, nil, fmt.Errorf("unknown object kind %q", o.Kind)
	}
}

// buildTag constructs the object's physical tag; the returned packet
// is nil for raw-symbol tags (no logical payload).
func (o ObjectSpec) buildTag() (*tag.Tag, *coding.Packet, error) {
	var tg *tag.Tag
	var pkt *coding.Packet
	if o.Symbols != "" {
		symbols, err := ParseSymbols(o.Symbols)
		if err != nil {
			return nil, nil, err
		}
		tg, err = tag.NewFromSymbols(symbols, tag.Config{SymbolWidth: o.SymbolWidthM})
		if err != nil {
			return nil, nil, err
		}
	} else {
		p, err := coding.NewPacket(o.Payload)
		if err != nil {
			return nil, nil, err
		}
		tg, err = tag.New(p, tag.Config{SymbolWidth: o.SymbolWidthM})
		if err != nil {
			return nil, nil, err
		}
		pkt = &p
	}
	if o.Dirt > 0 {
		var err error
		tg, err = tg.WithDirt(o.Dirt)
		if err != nil {
			return nil, nil, err
		}
	}
	return tg, pkt, nil
}

// resolveCar maps the car name (or escape hatch) to a model. The
// "custom" marker without a model means the spec went through JSON
// and lost its programmatic car; fail loudly.
func (o ObjectSpec) resolveCar() (scene.CarModel, error) {
	if o.carModel != nil {
		return *o.carModel, nil
	}
	if o.Car == "custom" {
		return scene.CarModel{}, errors.New("car model \"custom\" lost its definition (a custom car cannot round-trip through JSON)")
	}
	return CarByName(o.Car)
}

// CarByName resolves a car model name ("volvo-v40" | "bmw-3", with
// the short aliases "volvo" and "bmw3"/"bmw").
func CarByName(name string) (scene.CarModel, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "volvo-v40", "volvo", "":
		return scene.VolvoV40(), nil
	case "bmw-3", "bmw3", "bmw":
		return scene.BMW3(), nil
	default:
		return scene.CarModel{}, fmt.Errorf("unknown car %q (want volvo | bmw3)", name)
	}
}

// TagLength returns the physical length of the tag a payload +
// symbol width would produce — the exact accumulated profile length,
// for drivers that size simulation windows declaratively.
func TagLength(payload string, symbolWidth float64) (float64, error) {
	pkt, err := coding.NewPacket(payload)
	if err != nil {
		return 0, err
	}
	tg, err := tag.New(pkt, tag.Config{SymbolWidth: symbolWidth})
	if err != nil {
		return 0, err
	}
	return tg.Length(), nil
}

// ParseSymbols parses a stripe string such as "HLHL.LHHL" ('.' and
// spaces are ignored) into symbols.
func ParseSymbols(s string) ([]coding.Symbol, error) {
	var out []coding.Symbol
	for i, c := range s {
		switch c {
		case 'H', 'h':
			out = append(out, coding.High)
		case 'L', 'l':
			out = append(out, coding.Low)
		case '.', ' ':
		default:
			return nil, fmt.Errorf("scenario: invalid symbol %q at position %d (want H or L)", c, i)
		}
	}
	if len(out) == 0 {
		return nil, errors.New("scenario: empty symbol string")
	}
	return out, nil
}

// FormatSymbols renders symbols as an "HL..." string ParseSymbols
// accepts.
func FormatSymbols(symbols []coding.Symbol) string {
	var sb strings.Builder
	for _, s := range symbols {
		sb.WriteString(s.String())
	}
	return sb.String()
}

func defaultName(name, fallback string) string {
	if name != "" {
		return name
	}
	return fallback
}
