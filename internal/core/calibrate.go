package core

// Calibration constants. The paper's absolute RSS values depend on
// their lab and parking lot; these constants pin the simulator so the
// *shape* of each result matches the paper (see DESIGN.md Sec. 5-6).
const (
	// IndoorLampLux is the illuminance directly under the bench LED
	// lamp at the IndoorRefHeight reference. With the receiver at
	// 20 cm this produces the clean near-binary signals of Fig. 5.
	IndoorLampLux = 350.0

	// IndoorRefHeight is the height at which IndoorLampLux is
	// calibrated; the lamp's luminous intensity is fixed, so higher
	// benches receive 1/h^2 less light.
	IndoorRefHeight = 0.20

	// IndoorFoVDeg is the effective FoV half-angle of the focused
	// indoor bench receiver. It sets the decodable-region slope of
	// Fig. 6(a): the footprint diameter 2*h*tan(psi) must stay
	// comparable to the symbol width, giving max height roughly
	// linear in width. 5 degrees yields a slope near the paper's
	// ~5.4 m height per meter of symbol width.
	IndoorFoVDeg = 5.0

	// OutdoorPoleFoVDeg is the RX-LED half-angle on the outdoor pole
	// (Sec. 5): a clear 5 mm LED used as a receiver accepts light in
	// a very narrow cone, which is what lets it resolve 10 cm symbols
	// from 75-100 cm up (2*h*tan(4 deg) = 0.14 m at h = 1 m).
	OutdoorPoleFoVDeg = 4.0

	// CarSpeedKmh is the outdoor evaluation speed.
	CarSpeedKmh = 18.0

	// OutdoorSymbolWidth is the stripe width on the car roof (m).
	OutdoorSymbolWidth = 0.10

	// OutdoorFs is the outdoor sampling rate (samples/s).
	OutdoorFs = 2000.0
)
