package core

import (
	"errors"

	"passivelight/internal/channel"
	"passivelight/internal/coding"
	"passivelight/internal/frontend"
	"passivelight/internal/noise"
	"passivelight/internal/optics"
	"passivelight/internal/scene"
	"passivelight/internal/tag"
)

// OutdoorSetup builds the Sec. 5 application: a tagged car passing
// under a pole-mounted receiver lit by the sun.
type OutdoorSetup struct {
	// Car model; zero value selects the Volvo V40.
	Car scene.CarModel
	// Payload bits on the roof tag; empty string means a bare car
	// (the Sec. 5.1 shape-detection baseline).
	Payload string
	// SymbolWidth of the roof stripes (m). Zero selects the paper's
	// 10 cm.
	SymbolWidth float64
	// SpeedKmh of the car. Zero selects 18 km/h.
	SpeedKmh float64
	// ReceiverHeight above the car roof plane (m), e.g. 0.25, 0.75,
	// 1.00 in the paper's runs.
	ReceiverHeight float64
	// NoiseFloorLux is the ambient sun illuminance (100, 450, 3700,
	// 5500, 6200 lux across the paper's runs).
	NoiseFloorLux float64
	// Frontend receiver; zero value selects the RX-LED.
	Receiver frontend.Receiver
	// Fs sampling rate. Zero selects 2000 S/s.
	Fs float64
	// Seed for the noise streams.
	Seed int64
	// CalmNoise swaps the harsh outdoor noise for the mild indoor
	// model (cloudy, windless runs).
	CalmNoise bool
}

// Build assembles the link. The returned packet is the zero value for
// bare-car runs.
func (o OutdoorSetup) Build() (*Link, coding.Packet, error) {
	if o.ReceiverHeight <= 0 {
		return nil, coding.Packet{}, errors.New("core: receiver height must be positive")
	}
	if o.NoiseFloorLux <= 0 {
		return nil, coding.Packet{}, errors.New("core: noise floor must be positive")
	}
	car := o.Car
	if car.Name == "" {
		car = scene.VolvoV40()
	}
	width := o.SymbolWidth
	if width == 0 {
		width = OutdoorSymbolWidth
	}
	speedKmh := o.SpeedKmh
	if speedKmh == 0 {
		speedKmh = CarSpeedKmh
	}
	fs := o.Fs
	if fs == 0 {
		fs = OutdoorFs
	}
	rxDev := o.Receiver
	if rxDev.Name == "" {
		rxDev = frontend.RXLED()
	}
	speed := scene.KmhToMs(speedKmh)
	// The car starts with its front 1 m before the receiver FoV edge
	// so the shape preamble (hood) leads the trace.
	rx := channel.Receiver{X: 0, Height: o.ReceiverHeight, FoVHalfAngleDeg: rxDev.FoVHalfAngleDeg}
	start := -(1.0 + rx.FootprintRadius())
	traj := scene.ConstantSpeed{Start: start, Speed: speed}

	var obj *scene.Object
	var pkt coding.Packet
	var err error
	if o.Payload == "" {
		obj, err = scene.NewCarObject(car, traj)
	} else {
		pkt, err = coding.NewPacket(o.Payload)
		if err != nil {
			return nil, coding.Packet{}, err
		}
		var tg *tag.Tag
		tg, err = tag.New(pkt, tag.Config{SymbolWidth: width})
		if err != nil {
			return nil, coding.Packet{}, err
		}
		obj, err = scene.NewTaggedCarObject(car, tg, traj)
	}
	if err != nil {
		return nil, coding.Packet{}, err
	}
	sun := optics.Sun{Lux: o.NoiseFloorLux}
	sc := scene.New(sun, obj)
	fe, err := frontend.NewChain(rxDev, fs, o.Seed)
	if err != nil {
		return nil, coding.Packet{}, err
	}
	nm := noise.Outdoor(o.Seed)
	if o.CalmNoise {
		nm = noise.Indoor(o.Seed)
	}
	// Simulate until the car tail clears the FoV plus margin.
	dur := (car.Length() - start + rx.FootprintRadius() + 0.5) / speed
	link := &Link{
		Scene:    sc,
		Receiver: rx,
		Frontend: fe,
		Noise:    nm,
		Duration: dur,
	}
	return link, pkt, nil
}
