// Package core wires the full passive-communication pipeline together:
// encode a packet onto a reflective tag, mount it on a mobile object,
// render the optical channel, push the light through a receiver front
// end, and decode. It is the programmatic equivalent of one run of
// the paper's testbed.
package core

import (
	"errors"
	"fmt"

	"passivelight/internal/channel"
	"passivelight/internal/coding"
	"passivelight/internal/decoder"
	"passivelight/internal/frontend"
	"passivelight/internal/noise"
	"passivelight/internal/optics"
	"passivelight/internal/scene"
	"passivelight/internal/trace"
)

// Link describes one complete passive link: scene geometry, receiver
// optics + electronics, and sampling.
type Link struct {
	// Scene holds the light source and mobile objects.
	Scene *scene.Scene
	// Geometry of the receiver head.
	Receiver channel.Receiver
	// Frontend is the optical receiver + ADC chain. The receiver's
	// FoV half-angle is copied into Geometry unless Geometry already
	// set one explicitly.
	Frontend *frontend.Chain
	// Noise applied to the incident light before the front end.
	Noise noise.Model
	// Fog, if non-nil, attenuates the rendered light and adds a
	// scatter veil before the noise stage (Sec. 3's weather
	// distortion as a first-class link element).
	Fog *noise.Fog
	// Window is the simulated time span [T0, T0+Duration).
	T0, Duration float64
}

// Validate checks the link configuration.
func (l *Link) Validate() error {
	if l.Scene == nil {
		return errors.New("core: link has no scene")
	}
	if l.Frontend == nil {
		return errors.New("core: link has no front end")
	}
	if l.Duration <= 0 {
		return errors.New("core: link duration must be positive")
	}
	return nil
}

// Simulate renders the channel and digitizes it, returning the RSS
// trace in ADC counts.
func (l *Link) Simulate() (*trace.Trace, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	rx := l.Receiver
	if rx.FoVHalfAngleDeg == 0 {
		rx.FoVHalfAngleDeg = l.Frontend.Receiver.FoVHalfAngleDeg
	}
	lux, err := channel.Render(l.Scene, rx, l.T0, l.Duration, l.Frontend.Fs)
	if err != nil {
		return nil, err
	}
	if l.Fog != nil {
		lux = l.Fog.ApplyInPlace(lux)
	}
	// In place: the clean rendering is owned here and never reused.
	lux = l.Noise.ApplyInPlace(lux)
	counts := l.Frontend.Digitize(lux)
	tr := trace.New(l.Frontend.Fs, l.T0, counts)
	tr.WithMeta("receiver", l.Frontend.Receiver.Name)
	tr.WithMeta("source", l.Scene.Source.Name())
	tr.WithMeta("unit", "adc-counts")
	tr.WithMeta("fov_deg", fmt.Sprintf("%.1f", rx.FoVHalfAngleDeg))
	tr.WithMeta("height_m", fmt.Sprintf("%.3f", rx.Height))
	return tr, nil
}

// RunResult is the outcome of an end-to-end encode/simulate/decode.
type RunResult struct {
	Trace   *trace.Trace
	Decode  decoder.Result
	Sent    coding.Packet
	Success bool    // decoded payload == sent payload
	BitErrs int     // Hamming distance between sent and decoded bits
	Err     error   // decode-stage error, if any
	Floor   float64 // ambient noise floor (lux) at the receiver spot
}

// EndToEnd simulates the link and decodes the trace, comparing against
// the packet that was physically encoded on the tag.
func EndToEnd(l *Link, sent coding.Packet, opt decoder.Options) (RunResult, error) {
	tr, err := l.Simulate()
	if err != nil {
		return RunResult{}, err
	}
	res := RunResult{
		Trace: tr,
		Sent:  sent,
		Floor: optics.MeanLux(l.Scene.Source, l.Receiver.X, l.Duration, 64),
	}
	if opt.ExpectedSymbols == 0 {
		opt.ExpectedSymbols = coding.PreambleLen + 2*len(sent.Data)
	}
	dec, derr := decoder.Decode(tr, opt)
	res.Decode = dec
	if derr != nil {
		res.Err = derr
		res.BitErrs = len(sent.Data)
		return res, nil
	}
	if dec.ParseErr != nil {
		res.Err = dec.ParseErr
		res.BitErrs = len(sent.Data)
		return res, nil
	}
	res.BitErrs = coding.HammingDistance(sent.Data, dec.Packet.Data)
	res.Success = res.BitErrs == 0 && len(dec.Packet.Data) == len(sent.Data)
	return res, nil
}
