// Package core wires the full passive-communication pipeline together:
// encode a packet onto a reflective tag, mount it on a mobile object,
// render the optical channel, push the light through a receiver front
// end, and decode. It is the programmatic equivalent of one run of
// the paper's testbed.
package core

import (
	"errors"
	"fmt"
	"math"

	"passivelight/internal/channel"
	"passivelight/internal/coding"
	"passivelight/internal/decoder"
	"passivelight/internal/frontend"
	"passivelight/internal/noise"
	"passivelight/internal/optics"
	"passivelight/internal/scene"
	"passivelight/internal/tag"
	"passivelight/internal/trace"
)

// Link describes one complete passive link: scene geometry, receiver
// optics + electronics, and sampling.
type Link struct {
	// Scene holds the light source and mobile objects.
	Scene *scene.Scene
	// Geometry of the receiver head.
	Receiver channel.Receiver
	// Frontend is the optical receiver + ADC chain. The receiver's
	// FoV half-angle is copied into Geometry unless Geometry already
	// set one explicitly.
	Frontend *frontend.Chain
	// Noise applied to the incident light before the front end.
	Noise noise.Model
	// Window is the simulated time span [T0, T0+Duration).
	T0, Duration float64
}

// Validate checks the link configuration.
func (l *Link) Validate() error {
	if l.Scene == nil {
		return errors.New("core: link has no scene")
	}
	if l.Frontend == nil {
		return errors.New("core: link has no front end")
	}
	if l.Duration <= 0 {
		return errors.New("core: link duration must be positive")
	}
	return nil
}

// Simulate renders the channel and digitizes it, returning the RSS
// trace in ADC counts.
func (l *Link) Simulate() (*trace.Trace, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	rx := l.Receiver
	if rx.FoVHalfAngleDeg == 0 {
		rx.FoVHalfAngleDeg = l.Frontend.Receiver.FoVHalfAngleDeg
	}
	lux, err := channel.Render(l.Scene, rx, l.T0, l.Duration, l.Frontend.Fs)
	if err != nil {
		return nil, err
	}
	// In place: the clean rendering is owned here and never reused.
	lux = l.Noise.ApplyInPlace(lux)
	counts := l.Frontend.Digitize(lux)
	tr := trace.New(l.Frontend.Fs, l.T0, counts)
	tr.WithMeta("receiver", l.Frontend.Receiver.Name)
	tr.WithMeta("source", l.Scene.Source.Name())
	tr.WithMeta("unit", "adc-counts")
	tr.WithMeta("fov_deg", fmt.Sprintf("%.1f", rx.FoVHalfAngleDeg))
	tr.WithMeta("height_m", fmt.Sprintf("%.3f", rx.Height))
	return tr, nil
}

// RunResult is the outcome of an end-to-end encode/simulate/decode.
type RunResult struct {
	Trace   *trace.Trace
	Decode  decoder.Result
	Sent    coding.Packet
	Success bool    // decoded payload == sent payload
	BitErrs int     // Hamming distance between sent and decoded bits
	Err     error   // decode-stage error, if any
	Floor   float64 // ambient noise floor (lux) at the receiver spot
}

// EndToEnd simulates the link and decodes the trace, comparing against
// the packet that was physically encoded on the tag.
func EndToEnd(l *Link, sent coding.Packet, opt decoder.Options) (RunResult, error) {
	tr, err := l.Simulate()
	if err != nil {
		return RunResult{}, err
	}
	res := RunResult{
		Trace: tr,
		Sent:  sent,
		Floor: optics.MeanLux(l.Scene.Source, l.Receiver.X, l.Duration, 64),
	}
	if opt.ExpectedSymbols == 0 {
		opt.ExpectedSymbols = coding.PreambleLen + 2*len(sent.Data)
	}
	dec, derr := decoder.Decode(tr, opt)
	res.Decode = dec
	if derr != nil {
		res.Err = derr
		res.BitErrs = len(sent.Data)
		return res, nil
	}
	if dec.ParseErr != nil {
		res.Err = dec.ParseErr
		res.BitErrs = len(sent.Data)
		return res, nil
	}
	res.BitErrs = coding.HammingDistance(sent.Data, dec.Packet.Data)
	res.Success = res.BitErrs == 0 && len(dec.Packet.Data) == len(sent.Data)
	return res, nil
}

// BenchSetup is a convenience builder for the paper's indoor bench
// (Sec. 4.1): LED lamp and receiver at the same height h, lamp offset
// 12 cm from the receiver, dark room, tag moving at the given speed.
type BenchSetup struct {
	// Height of lamp and receiver above the work plane (m).
	Height float64
	// LampLux is the illuminance directly under the lamp.
	LampLux float64
	// SymbolWidth of the tag stripes (m).
	SymbolWidth float64
	// Speed of the moving tag (m/s).
	Speed float64
	// Payload bits encoded after the preamble.
	Payload string
	// Fs sampling rate (Hz). Zero selects 1000.
	Fs float64
	// Seed for noise streams.
	Seed int64
	// FoVHalfAngleDeg of the focused indoor receiver. Zero selects
	// the calibrated IndoorFoVDeg.
	FoVHalfAngleDeg float64
	// Trajectory overrides the default constant-speed pass when set.
	Trajectory scene.Trajectory
	// NoiseModel overrides the default indoor noise when set.
	NoiseModel *noise.Model
}

// Build assembles the link and returns it with the tag's packet.
func (b BenchSetup) Build() (*Link, coding.Packet, error) {
	if b.Height <= 0 || b.SymbolWidth <= 0 || b.Speed <= 0 {
		return nil, coding.Packet{}, errors.New("core: bench height, symbol width and speed must be positive")
	}
	fs := b.Fs
	if fs == 0 {
		fs = 1000
	}
	lux := b.LampLux
	if lux == 0 {
		lux = IndoorLampLux
	}
	fov := b.FoVHalfAngleDeg
	if fov == 0 {
		fov = IndoorFoVDeg
	}
	pkt, err := coding.NewPacket(b.Payload)
	if err != nil {
		return nil, coding.Packet{}, err
	}
	tg, err := tag.New(pkt, tag.Config{SymbolWidth: b.SymbolWidth})
	if err != nil {
		return nil, coding.Packet{}, err
	}
	// Receiver at x=0; lamp 12 cm away as in Fig. 5's setup. The lamp
	// has a fixed luminous intensity calibrated to deliver IndoorLampLux
	// at the 20 cm reference height — raising the bench dims the work
	// plane with 1/h^2 exactly as raising a physical lamp would.
	lamp := optics.PointLamp{
		X:            0.12,
		Height:       b.Height,
		Intensity:    lux * IndoorRefHeight * IndoorRefHeight,
		LambertOrder: 4,
	}
	rxGeom := channel.Receiver{X: 0, Height: b.Height, FoVHalfAngleDeg: fov}
	traj := b.Trajectory
	var startX float64
	if traj == nil {
		// Start the tag just before the FoV with enough quiet lead
		// for the decoder to see a baseline.
		startX = -(rxGeom.FootprintRadius() + 0.15)
		traj = scene.ConstantSpeed{Start: startX, Speed: b.Speed}
	}
	obj, err := scene.NewTagObject("bench-tag", tg, traj, 1.0)
	if err != nil {
		return nil, coding.Packet{}, err
	}
	sc := scene.New(lamp, obj)
	fe, err := frontend.NewChain(indoorReceiver(), fs, b.Seed)
	if err != nil {
		return nil, coding.Packet{}, err
	}
	nm := noise.Indoor(b.Seed)
	if b.NoiseModel != nil {
		nm = *b.NoiseModel
	}
	// Duration: time for the tag to fully cross the FoV plus margin.
	footprint := rxGeom.FootprintRadius()
	distance := math.Abs(startX) + tg.Length() + footprint + 0.05
	dur := distance / b.Speed
	if b.Trajectory != nil {
		// Caller-supplied trajectory: simulate a generous window.
		dur = (2*b.Height + tg.Length() + footprint + 0.05) / b.Speed * 2
	}
	link := &Link{
		Scene:    sc,
		Receiver: rxGeom,
		Frontend: fe,
		Noise:    nm,
		Duration: dur,
	}
	return link, pkt, nil
}

func indoorReceiver() frontend.Receiver {
	// The indoor bench uses the PD at G1 (dark room, low light); the
	// effective FoV comes from the link geometry, not the PD package.
	r := frontend.PD(frontend.G1)
	return r
}
