package core

import (
	"testing"

	"passivelight/internal/channel"
	"passivelight/internal/frontend"
	"passivelight/internal/noise"
	"passivelight/internal/optics"
	"passivelight/internal/scene"
)

// minimalLink hand-assembles the smallest valid link; the builder
// surface lives one layer up in internal/scenario.
func minimalLink(t *testing.T) *Link {
	t.Helper()
	fe, err := frontend.NewChain(frontend.PD(frontend.G1), 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	return &Link{
		Scene:    scene.New(optics.Sun{Lux: 200}),
		Receiver: channel.Receiver{Height: 0.3},
		Frontend: fe,
		Noise:    noise.Quiet,
		Duration: 0.25,
	}
}

func TestLinkValidation(t *testing.T) {
	if _, err := (&Link{}).Simulate(); err == nil {
		t.Fatal("empty link should fail")
	}
	link := minimalLink(t)
	link.Duration = 0
	if _, err := link.Simulate(); err == nil {
		t.Fatal("zero duration should fail")
	}
}

func TestSimulateFogStage(t *testing.T) {
	clear := minimalLink(t)
	clearTr, err := clear.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	fogged := minimalLink(t)
	fogged.Fog = &noise.Fog{Transmission: 0.5, ScatterLevel: 0}
	fogTr, err := fogged.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if clearTr.Stats().Mean <= fogTr.Stats().Mean {
		t.Fatalf("fog should attenuate: clear mean %.1f, fogged mean %.1f",
			clearTr.Stats().Mean, fogTr.Stats().Mean)
	}
}
