// Package capacity measures the passive channel's capacity envelope
// the way the paper does (Sec. 4.1, Fig. 6): sweep the
// emitter/receiver height and the symbol width, test whether packets
// decode, and derive (a) the decodable region — maximal height per
// symbol width, which is close to linear — and (b) the throughput
// curve — symbols/second at a fixed speed using the narrowest
// decodable width per height, which falls off steeply (the paper
// calls it exponential) as the receiver moves up.
package capacity

import (
	"errors"
	"math"

	"passivelight/internal/core"
	"passivelight/internal/decoder"
	"passivelight/internal/dsp"
	"passivelight/internal/scenario"
)

// SweepConfig controls the decodability sweeps.
type SweepConfig struct {
	// Payload used in the probe packets. Default "10".
	Payload string
	// Speed of the moving tag (m/s). The paper uses 0.08.
	Speed float64
	// Trials per operating point (different noise seeds); a point is
	// decodable when every trial decodes. Default 3.
	Trials int
	// Fs is the sweep sampling rate. Capacity sweeps run at a reduced
	// 250 S/s: the slowest symbol is >0.15 s so this keeps >35
	// samples per symbol while making the sweep tractable. Default
	// 250.
	Fs float64
	// BaseSeed offsets the per-trial noise seeds.
	BaseSeed int64
}

func (c SweepConfig) withDefaults() SweepConfig {
	if c.Payload == "" {
		c.Payload = "10"
	}
	if c.Speed == 0 {
		c.Speed = 0.08
	}
	if c.Trials == 0 {
		c.Trials = 3
	}
	if c.Fs == 0 {
		c.Fs = 250
	}
	return c
}

// Decodable runs the indoor bench at (height, symbol width) and
// reports whether all trials decode correctly.
func Decodable(height, width float64, cfg SweepConfig) (bool, error) {
	cfg = cfg.withDefaults()
	for trial := 0; trial < cfg.Trials; trial++ {
		b := scenario.BenchParams{
			Height:      height,
			SymbolWidth: width,
			Speed:       cfg.Speed,
			Payload:     cfg.Payload,
			Fs:          cfg.Fs,
			Seed:        cfg.BaseSeed + int64(trial)*7919,
		}
		link, pkt, err := b.Build()
		if err != nil {
			return false, err
		}
		res, err := core.EndToEnd(link, pkt, decoder.Options{})
		if err != nil {
			return false, err
		}
		if !res.Success {
			return false, nil
		}
	}
	return true, nil
}

// MaxHeight scans heights from lo to hi (inclusive) in the given step
// and returns the largest decodable height for the symbol width, or
// ok=false when even the lowest height fails.
func MaxHeight(width, lo, hi, step float64, cfg SweepConfig) (float64, bool, error) {
	if step <= 0 || hi < lo {
		return 0, false, errors.New("capacity: invalid height scan range")
	}
	best, ok := 0.0, false
	for h := lo; h <= hi+1e-9; h += step {
		dec, err := Decodable(h, width, cfg)
		if err != nil {
			return 0, false, err
		}
		if dec {
			best, ok = h, true
		}
	}
	return best, ok, nil
}

// NarrowestWidth scans symbol widths downward from hi to lo and
// returns the narrowest width that still decodes at the given height,
// or ok=false when even the widest fails.
func NarrowestWidth(height, lo, hi, step float64, cfg SweepConfig) (float64, bool, error) {
	if step <= 0 || hi < lo {
		return 0, false, errors.New("capacity: invalid width scan range")
	}
	best, ok := 0.0, false
	for w := hi; w >= lo-1e-9; w -= step {
		dec, err := Decodable(height, w, cfg)
		if err != nil {
			return 0, false, err
		}
		if !dec {
			break
		}
		best, ok = w, true
	}
	return best, ok, nil
}

// RegionPoint is one point of the Fig. 6(a) decodable boundary.
type RegionPoint struct {
	SymbolWidth float64 // m
	MaxHeight   float64 // m; 0 when not decodable anywhere in range
	Decodable   bool
}

// DecodableRegion sweeps symbol widths and finds the maximal
// decodable height for each (Fig. 6(a)).
func DecodableRegion(widths []float64, hLo, hHi, hStep float64, cfg SweepConfig) ([]RegionPoint, error) {
	out := make([]RegionPoint, 0, len(widths))
	for _, w := range widths {
		h, ok, err := MaxHeight(w, hLo, hHi, hStep, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, RegionPoint{SymbolWidth: w, MaxHeight: h, Decodable: ok})
	}
	return out, nil
}

// ThroughputPoint is one point of the Fig. 6(b) curve.
type ThroughputPoint struct {
	Height     float64 // m
	Width      float64 // narrowest decodable symbol width (m)
	Throughput float64 // symbols/second = speed / width
	Decodable  bool
}

// ThroughputCurve finds, for each height, the narrowest decodable
// symbol width at the configured speed and converts it to
// symbols/second (Fig. 6(b)).
func ThroughputCurve(heights []float64, wLo, wHi, wStep float64, cfg SweepConfig) ([]ThroughputPoint, error) {
	cfg = cfg.withDefaults()
	out := make([]ThroughputPoint, 0, len(heights))
	for _, h := range heights {
		w, ok, err := NarrowestWidth(h, wLo, wHi, wStep, cfg)
		if err != nil {
			return nil, err
		}
		p := ThroughputPoint{Height: h, Width: w, Decodable: ok}
		if ok {
			p.Throughput = cfg.Speed / w
		}
		out = append(out, p)
	}
	return out, nil
}

// FitRegion fits maxHeight = a + b*width over the decodable points and
// returns the coefficients with R^2 (the paper reports an
// approximately linear boundary).
func FitRegion(points []RegionPoint) (a, b, r2 float64) {
	var xs, ys []float64
	for _, p := range points {
		if p.Decodable {
			xs = append(xs, p.SymbolWidth)
			ys = append(ys, p.MaxHeight)
		}
	}
	a, b = dsp.LinearFit(xs, ys)
	pred := make([]float64, len(xs))
	for i, x := range xs {
		pred[i] = a + b*x
	}
	r2 = dsp.RSquared(ys, pred)
	return a, b, r2
}

// FitThroughput fits throughput = A*exp(b*height) over decodable
// points (the paper describes an exponential decrease with height)
// and returns A, b and R^2 in log space.
func FitThroughput(points []ThroughputPoint) (A, b, r2 float64) {
	var xs, ys []float64
	for _, p := range points {
		if p.Decodable && p.Throughput > 0 {
			xs = append(xs, p.Height)
			ys = append(ys, p.Throughput)
		}
	}
	A, b = dsp.ExpFit(xs, ys)
	if A == 0 {
		return 0, 0, 0
	}
	logPred := make([]float64, len(xs))
	logObs := make([]float64, len(xs))
	for i, x := range xs {
		logPred[i] = math.Log(A) + b*x
		logObs[i] = math.Log(ys[i])
	}
	r2 = dsp.RSquared(logObs, logPred)
	return A, b, r2
}
