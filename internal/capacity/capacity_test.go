package capacity

import (
	"math"
	"testing"
)

func quickCfg() SweepConfig { return SweepConfig{Trials: 1} }

func TestDecodableKnownPoints(t *testing.T) {
	// The Fig. 5 operating point decodes.
	ok, err := Decodable(0.20, 0.03, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Fig. 5 point (h=20cm, w=3cm) should decode")
	}
	// Far above the decodable boundary it fails: 1.5 cm symbols from
	// 55 cm is hopeless (footprint ~9.6 cm >> symbol width).
	ok, err = Decodable(0.55, 0.015, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("h=55cm, w=1.5cm should not decode")
	}
}

func TestMaxHeightGrowsWithWidth(t *testing.T) {
	cfg := quickCfg()
	hNarrow, okN, err := MaxHeight(0.03, 0.20, 0.50, 0.05, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hWide, okW, err := MaxHeight(0.06, 0.20, 0.50, 0.05, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !okN || !okW {
		t.Fatalf("both widths should decode somewhere: %v %v", okN, okW)
	}
	if hWide < hNarrow {
		t.Fatalf("wider symbols should reach higher: %.2f vs %.2f", hWide, hNarrow)
	}
}

func TestNarrowestWidthGrowsWithHeight(t *testing.T) {
	cfg := quickCfg()
	wLow, okL, err := NarrowestWidth(0.20, 0.01, 0.075, 0.005, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wHigh, okH, err := NarrowestWidth(0.45, 0.01, 0.075, 0.005, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !okL || !okH {
		t.Fatalf("both heights should decode at some width")
	}
	if wHigh < wLow {
		t.Fatalf("higher receiver should need wider symbols: %.3f vs %.3f", wHigh, wLow)
	}
}

func TestSweepValidation(t *testing.T) {
	if _, _, err := MaxHeight(0.03, 0.5, 0.2, 0.05, quickCfg()); err == nil {
		t.Fatal("inverted range should fail")
	}
	if _, _, err := MaxHeight(0.03, 0.2, 0.5, 0, quickCfg()); err == nil {
		t.Fatal("zero step should fail")
	}
	if _, _, err := NarrowestWidth(0.2, 0.075, 0.01, 0.005, quickCfg()); err == nil {
		t.Fatal("inverted width range should fail")
	}
}

func TestFitRegionLinear(t *testing.T) {
	pts := []RegionPoint{
		{SymbolWidth: 0.02, MaxHeight: 0.2, Decodable: true},
		{SymbolWidth: 0.04, MaxHeight: 0.3, Decodable: true},
		{SymbolWidth: 0.06, MaxHeight: 0.4, Decodable: true},
		{SymbolWidth: 0.01, Decodable: false}, // excluded from fit
	}
	a, b, r2 := FitRegion(pts)
	if math.Abs(a-0.1) > 1e-9 || math.Abs(b-5) > 1e-9 {
		t.Fatalf("fit a=%v b=%v", a, b)
	}
	if r2 < 0.999 {
		t.Fatalf("r2 %v", r2)
	}
}

func TestFitThroughputExponential(t *testing.T) {
	pts := []ThroughputPoint{
		{Height: 0.2, Throughput: 8 * math.Exp(-3*0.2), Decodable: true},
		{Height: 0.3, Throughput: 8 * math.Exp(-3*0.3), Decodable: true},
		{Height: 0.4, Throughput: 8 * math.Exp(-3*0.4), Decodable: true},
		{Height: 0.5, Decodable: false},
	}
	A, b, r2 := FitThroughput(pts)
	if math.Abs(A-8) > 1e-6 || math.Abs(b+3) > 1e-6 {
		t.Fatalf("fit A=%v b=%v", A, b)
	}
	if r2 < 0.999 {
		t.Fatalf("r2 %v", r2)
	}
	// Degenerate input.
	A, b, r2 = FitThroughput(nil)
	if A != 0 || b != 0 || r2 != 0 {
		t.Fatal("empty fit should be zeros")
	}
}

func TestDecodableRegionShapeIsLinear(t *testing.T) {
	// Coarse sweep; the boundary fit should be positive-slope linear
	// with a decent R^2, the paper's qualitative claim.
	pts, err := DecodableRegion([]float64{0.03, 0.05, 0.07}, 0.20, 0.55, 0.05, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	decodable := 0
	for _, p := range pts {
		if p.Decodable {
			decodable++
		}
	}
	if decodable < 3 {
		t.Fatalf("only %d widths decodable", decodable)
	}
	_, b, r2 := FitRegion(pts)
	if b <= 0 {
		t.Fatalf("boundary slope %v, want positive", b)
	}
	if r2 < 0.8 {
		t.Fatalf("boundary linearity r2=%v", r2)
	}
}

func TestThroughputCurveFallsWithHeight(t *testing.T) {
	pts, err := ThroughputCurve([]float64{0.20, 0.35, 0.50}, 0.01, 0.075, 0.005, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = math.Inf(1)
	for _, p := range pts {
		if !p.Decodable {
			t.Fatalf("h=%.2f not decodable", p.Height)
		}
		if p.Throughput > prev {
			t.Fatalf("throughput rose with height: %+v", pts)
		}
		prev = p.Throughput
	}
}
