package rxnet

import (
	"math"
	"testing"
)

func TestSeqOrderingAcrossWraparound(t *testing.T) {
	cases := []struct {
		a, b uint32
		less bool
	}{
		{1, 2, true},
		{2, 1, false},
		{7, 7, false},
		// The wrap: MaxUint32 precedes 0, 1, 2... in serial order even
		// though it is numerically the largest value.
		{math.MaxUint32, 0, true},
		{math.MaxUint32, 1, true},
		{math.MaxUint32 - 5, 3, true},
		{3, math.MaxUint32 - 5, false},
		{0, math.MaxUint32, false},
	}
	for _, c := range cases {
		if got := SeqLess(c.a, c.b); got != c.less {
			t.Errorf("SeqLess(%d, %d) = %v, want %v", c.a, c.b, got, c.less)
		}
		wantLEq := c.less || c.a == c.b
		if got := SeqLEq(c.a, c.b); got != wantLEq {
			t.Errorf("SeqLEq(%d, %d) = %v, want %v", c.a, c.b, got, wantLEq)
		}
	}
}
