package rxnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
)

// This file is the zero-copy half of the wire protocol: a reusable
// frame read buffer (one allocation per connection instead of one per
// frame) and a reference-counted pooled sample buffer, so the path
// from the wire into a session ring buffer costs exactly one copy
// (decode into the pooled buffer) instead of three (frame body,
// samples, ring).

// frameReader reads frames from one connection into a single growing
// buffer. The body returned by next is valid only until the following
// next call — callers must copy anything they retain, which every
// Unmarshal* in this package already does.
type frameReader struct {
	r   io.Reader
	buf []byte
}

func newFrameReader(r io.Reader) *frameReader { return &frameReader{r: r} }

// next reads one frame, returning its type and body. The body aliases
// the reader's internal buffer.
func (fr *frameReader) next() (FrameType, []byte, error) {
	var hdr [7]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if hdr[0] != MagicByte {
		return 0, nil, ErrBadMagic
	}
	if hdr[1] != Version {
		return 0, nil, ErrBadVersion
	}
	n := binary.BigEndian.Uint32(hdr[3:])
	if n > MaxFrameSize {
		return 0, nil, ErrFrameTooBig
	}
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	body := fr.buf[:n]
	if _, err := io.ReadFull(fr.r, body); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, ErrTruncated
		}
		return 0, nil, err
	}
	return FrameType(hdr[2]), body, nil
}

// SampleBuf is a reference-counted, pooled sample buffer. The listener
// decodes each wire chunk into one and threads it through ChunkEvent
// and SourceChunk down to Engine.Feed; whoever holds the last
// reference calls Release after the samples have been consumed (copied
// into a session ring), returning the buffer to the pool. A nil
// SampleBuf is valid everywhere and makes Retain/Release no-ops, so
// sources whose chunks are not pooled (trace subslices, caller-owned
// slices) need no special casing.
type SampleBuf struct {
	refs    atomic.Int32
	samples []float64
}

var sampleBufPool = sync.Pool{
	New: func() any { return &SampleBuf{samples: make([]float64, MaxChunkSamples)} },
}

// getSampleBuf returns a buffer sized for n samples with one
// outstanding reference.
func getSampleBuf(n int) *SampleBuf {
	sb := sampleBufPool.Get().(*SampleBuf)
	if cap(sb.samples) < n {
		sb.samples = make([]float64, n)
	}
	sb.samples = sb.samples[:n]
	sb.refs.Store(1)
	return sb
}

// Samples is the buffer's sample slice. Valid until the last Release.
func (sb *SampleBuf) Samples() []float64 {
	if sb == nil {
		return nil
	}
	return sb.samples
}

// Retain adds a reference, for handing the buffer to an additional
// consumer.
func (sb *SampleBuf) Retain() {
	if sb != nil {
		sb.refs.Add(1)
	}
}

// Release drops one reference; the last one returns the buffer to the
// pool. The samples must not be touched afterwards.
func (sb *SampleBuf) Release() {
	if sb == nil {
		return
	}
	if n := sb.refs.Add(-1); n == 0 {
		sampleBufPool.Put(sb)
	} else if n < 0 {
		panic("rxnet: SampleBuf over-released")
	}
}

// unmarshalSampleChunkPooled decodes a SampleChunk body into a pooled
// SampleBuf instead of a fresh allocation; c.Samples aliases the
// returned buffer, which carries one reference the consumer must
// Release. Validation is identical to UnmarshalSampleChunk. On error
// the buffer is already released and the returned SampleBuf is nil.
func unmarshalSampleChunkPooled(b []byte) (SampleChunk, *SampleBuf, error) {
	const fixed = 4 + 4 + 4 + 8 + 8 + 2
	if len(b) < fixed {
		return SampleChunk{}, nil, ErrTruncated
	}
	c := SampleChunk{
		NodeID:   binary.BigEndian.Uint32(b[0:4]),
		StreamID: binary.BigEndian.Uint32(b[4:8]),
		Seq:      binary.BigEndian.Uint32(b[8:12]),
		Fs:       getF64(b[12:20]),
		Start:    binary.BigEndian.Uint64(b[20:28]),
	}
	n := int(binary.BigEndian.Uint16(b[28:30]))
	if n > MaxChunkSamples {
		return SampleChunk{}, nil, fmt.Errorf("rxnet: %d samples exceeds chunk limit %d", n, MaxChunkSamples)
	}
	if len(b) < fixed+8*n {
		return SampleChunk{}, nil, ErrTruncated
	}
	if c.Fs <= 0 || math.IsNaN(c.Fs) || math.IsInf(c.Fs, 0) {
		return SampleChunk{}, nil, fmt.Errorf("rxnet: chunk has invalid sample rate %g", c.Fs)
	}
	sb := getSampleBuf(n)
	out := sb.samples
	for i := range out {
		v := getF64(b[fixed+8*i : fixed+8*i+8])
		if math.IsNaN(v) || math.IsInf(v, 0) {
			// One NaN would wedge the server-side noise-floor tracker
			// permanently; reject the frame at the wire instead.
			sb.Release()
			return SampleChunk{}, nil, fmt.Errorf("rxnet: chunk sample %d is not finite", i)
		}
		out[i] = v
	}
	c.Samples = out
	return c, sb, nil
}
