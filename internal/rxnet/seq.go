package rxnet

// Serial-number arithmetic (RFC 1982) over the protocol's uint32
// chunk sequence numbers. Chunk seqs start at 1 and increment per
// chunk; a long-lived stream eventually wraps past math.MaxUint32,
// at which point naked uint32 comparisons invert: seq 3 is "after"
// seq 4294967295 even though 3 < 4294967295. Every ordering decision
// over live seqs (ack trims, NACK replay windows, failover gap
// detection) must go through these helpers instead.
//
// The comparison is exact as long as the two seqs are within 2^31 of
// each other — far beyond any replay buffer or ack lag the protocol
// allows.

// SeqLess reports whether sequence number a precedes b in serial
// order, correctly across uint32 wraparound.
func SeqLess(a, b uint32) bool { return int32(a-b) < 0 }

// SeqLEq reports whether a precedes or equals b in serial order.
func SeqLEq(a, b uint32) bool { return int32(a-b) <= 0 }
