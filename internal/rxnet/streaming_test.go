package rxnet

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"passivelight/internal/coding"
	"passivelight/internal/decoder"
	"passivelight/internal/stream"
)

func TestSampleChunkRoundTrip(t *testing.T) {
	c := SampleChunk{
		NodeID:   3,
		StreamID: 9,
		Seq:      42,
		Fs:       1000,
		Start:    123456,
		Samples:  []float64{1.5, -2.25, 0, 6200.125},
	}
	body, err := MarshalSampleChunk(c)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameSampleChunk, body); err != nil {
		t.Fatal(err)
	}
	ft, rb, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ft != FrameSampleChunk {
		t.Fatalf("frame type %d", ft)
	}
	got, err := UnmarshalSampleChunk(rb)
	if err != nil {
		t.Fatal(err)
	}
	if got.NodeID != c.NodeID || got.StreamID != c.StreamID || got.Seq != c.Seq ||
		got.Fs != c.Fs || got.Start != c.Start || len(got.Samples) != len(c.Samples) {
		t.Fatalf("round trip %+v != %+v", got, c)
	}
	for i := range c.Samples {
		if got.Samples[i] != c.Samples[i] {
			t.Fatalf("sample %d: %v != %v", i, got.Samples[i], c.Samples[i])
		}
	}
	if got.SessionKey() != uint64(3)<<32|9 {
		t.Fatalf("session key %d", got.SessionKey())
	}
}

func TestSampleChunkLimits(t *testing.T) {
	if _, err := MarshalSampleChunk(SampleChunk{Fs: 1000, Samples: make([]float64, MaxChunkSamples+1)}); err == nil {
		t.Fatal("oversized chunk should fail to marshal")
	}
	if _, err := MarshalSampleChunk(SampleChunk{Fs: 0, Samples: []float64{1}}); err == nil {
		t.Fatal("zero fs should fail to marshal")
	}
	body, err := MarshalSampleChunk(SampleChunk{Fs: 1000, Samples: []float64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalSampleChunk(body[:len(body)-1]); err == nil {
		t.Fatal("truncated chunk should fail to unmarshal")
	}
	bad := append([]byte(nil), body...)
	nan := math.Float64bits(math.NaN())
	for i := 0; i < 8; i++ {
		bad[12+i] = byte(nan >> (56 - 8*i))
	}
	if _, err := UnmarshalSampleChunk(bad); err == nil {
		t.Fatal("NaN fs should fail to unmarshal")
	}
}

// packetStream renders a synthetic node observation: quiet, packet,
// quiet.
func packetStream(payload string, fs, symbolDur, gapSec float64, seed int64) []float64 {
	const high, low, baseline = 90.0, 12.0, 10.0
	rng := rand.New(rand.NewSource(seed))
	var out []float64
	quiet := func(n int) {
		for i := 0; i < n; i++ {
			out = append(out, baseline+0.3*rng.NormFloat64())
		}
	}
	quiet(int(gapSec * fs))
	for _, s := range coding.MustPacket(payload).Symbols() {
		level := low
		if s == coding.High {
			level = high
		}
		for i := 0; i < int(symbolDur*fs); i++ {
			out = append(out, level+0.3*rng.NormFloat64())
		}
	}
	quiet(int(gapSec * fs))
	return out
}

// TestStreamingNodesToTrack is the full loop: nodes stream raw
// samples, the aggregator decodes them server-side and fuses the
// detections into an object track.
func TestStreamingNodesToTrack(t *testing.T) {
	agg := NewAggregator(AggregatorOptions{
		TrackGap: time.Minute,
		Streaming: &stream.EngineConfig{
			Session: stream.Config{Fs: 1000, Decode: decoder.Options{ExpectedSymbols: 12}},
		},
	})
	addr, err := agg.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	const payload = "1001"
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var sent int64
	for i, x := range []float64{0, 25, 50} {
		node, err := Dial(ctx, addr, Hello{
			NodeID: uint32(i + 1),
			PosX:   x,
			Height: 0.75,
			Name:   "pole",
		})
		if err != nil {
			t.Fatal(err)
		}
		samples := packetStream(payload, 1000, 0.2, 2.0, int64(i+1))
		for lo := 0; lo < len(samples); lo += 700 {
			hi := min(lo+700, len(samples))
			if err := node.StreamChunk(0, 1000, samples[lo:hi]); err != nil {
				t.Fatal(err)
			}
		}
		node.Close()
		// Wait for the server to ingest this node's samples (the TCP
		// stream is asynchronous), then flush its open segment. The
		// dial-order spacing keeps detection timestamps ordered.
		sent += int64(len(samples))
		ingested := time.Now().Add(10 * time.Second)
		for {
			st, ok := agg.StreamStats()
			if ok && st.SamplesIn >= sent {
				break
			}
			if time.Now().After(ingested) {
				t.Fatalf("server ingested %v of %d samples", st, sent)
			}
			time.Sleep(5 * time.Millisecond)
		}
		agg.FlushStreams()
		time.Sleep(30 * time.Millisecond)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		tracks := agg.Tracks()
		if len(tracks) > 0 {
			last := tracks[len(tracks)-1]
			if BitsString(last.ObjectBits) != payload {
				t.Fatalf("track object %s, want %s", BitsString(last.ObjectBits), payload)
			}
			if last.Confirmations < 2 {
				t.Fatalf("confirmations %d", last.Confirmations)
			}
			break
		}
		if time.Now().After(deadline) {
			st, _ := agg.StreamStats()
			t.Fatalf("no track fused; stream stats %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	st, ok := agg.StreamStats()
	if !ok {
		t.Fatal("streaming should be enabled")
	}
	if st.Detections < 3 {
		t.Fatalf("engine decoded %d detections, want >= 3", st.Detections)
	}
	if st.SamplesIn == 0 {
		t.Fatal("engine saw no samples")
	}
}

// TestStreamingReconnectResetsSession checks the Seq/Start fields do
// their job: a node that reconnects and restarts its stream from
// zero must not splice into the stale server-side session.
func TestStreamingReconnectResetsSession(t *testing.T) {
	agg := NewAggregator(AggregatorOptions{
		Streaming: &stream.EngineConfig{
			Session: stream.Config{Fs: 1000, Decode: decoder.Options{ExpectedSymbols: 8}},
		},
	})
	addr, err := agg.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	samples := packetStream("10", 1000, 0.2, 1.5, 4)
	half := len(samples) * 2 / 3 // cuts inside the packet
	connect := func() *Node {
		n, err := Dial(ctx, addr, Hello{NodeID: 9, Name: "pole"})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	// First connection dies mid-packet.
	n1 := connect()
	if err := n1.StreamChunk(0, 1000, samples[:half]); err != nil {
		t.Fatal(err)
	}
	n1.Close()
	waitIngest := func(want int64) {
		deadline := time.Now().Add(10 * time.Second)
		for {
			st, _ := agg.StreamStats()
			if st.SamplesIn >= want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("ingested %d, want %d", st.SamplesIn, want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitIngest(int64(half))
	// Reconnect and replay the whole stream from the start. Without
	// the restart reset, the engine session would see a splice
	// (two-thirds of a packet followed by a full one).
	n2 := connect()
	if err := n2.StreamChunk(0, 1000, samples); err != nil {
		t.Fatal(err)
	}
	n2.Close()
	waitIngest(int64(half + len(samples)))
	agg.FlushStreams()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, _ := agg.StreamStats()
		if st.Detections >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no detection after reconnect: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamingDisabledRejectsChunks checks a chunk sent to a
// detection-only aggregator closes the connection instead of silently
// eating samples.
func TestStreamingDisabledRejectsChunks(t *testing.T) {
	agg := NewAggregator(AggregatorOptions{})
	addr, err := agg.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	node, err := Dial(ctx, addr, Hello{NodeID: 1, Name: "pole"})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if err := node.StreamChunk(0, 1000, []float64{1, 2, 3}); err != nil {
		// The write itself may or may not fail depending on timing;
		// the server closing the connection is the contract.
		t.Logf("stream chunk write: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		// The server must eventually drop the connection: publishing
		// a detection then fails.
		err := node.Publish(Detection{Time: time.Now(), Bits: []byte{1, 0}})
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server kept the connection despite streaming being disabled")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestStreamingReconnectResumesSession is the lossless counterpart of
// the reset test: a node that saves its stream state and resumes
// after redialing continues the SAME engine session — the packet cut
// by the connection loss still decodes, no sample is duplicated and
// none is lost.
func TestStreamingReconnectResumesSession(t *testing.T) {
	agg := NewAggregator(AggregatorOptions{
		Streaming: &stream.EngineConfig{
			Session: stream.Config{Fs: 1000, Decode: decoder.Options{ExpectedSymbols: 8}},
		},
	})
	addr, err := agg.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	samples := packetStream("10", 1000, 0.2, 1.5, 4)
	half := len(samples) * 2 / 3 // cuts inside the packet
	waitIngest := func(want int64) {
		deadline := time.Now().Add(10 * time.Second)
		for {
			st, _ := agg.StreamStats()
			if st.SamplesIn >= want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("ingested %d, want %d", st.SamplesIn, want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	n1, err := Dial(ctx, addr, Hello{NodeID: 9, Name: "pole"})
	if err != nil {
		t.Fatal(err)
	}
	if err := n1.StreamChunk(0, 1000, samples[:half]); err != nil {
		t.Fatal(err)
	}
	seq, start := n1.StreamState(0)
	n1.Close()
	waitIngest(int64(half))

	n2, err := Dial(ctx, addr, Hello{NodeID: 9, Name: "pole"})
	if err != nil {
		t.Fatal(err)
	}
	n2.ResumeStream(0, seq, start)
	if err := n2.StreamChunk(0, 1000, samples[half:]); err != nil {
		t.Fatal(err)
	}
	n2.Close()
	waitIngest(int64(len(samples)))
	agg.FlushStreams()

	deadline := time.Now().Add(10 * time.Second)
	for {
		st, _ := agg.StreamStats()
		if st.Detections >= 1 {
			// Exactly the stream's samples were fed: a duplicate (full
			// replay) would show half+len, a gap fewer.
			if st.SamplesIn != int64(len(samples)) {
				t.Fatalf("engine saw %d samples, want exactly %d", st.SamplesIn, len(samples))
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("packet spanning the reconnect did not decode: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
