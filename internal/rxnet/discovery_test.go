package rxnet

import (
	"context"
	"net"
	"testing"
	"time"
)

func TestDiscoveryRoundTrip(t *testing.T) {
	resp, udpAddr, err := NewResponder("127.0.0.1:0", "127.0.0.1:7410")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Close()
	got, err := Discover(udpAddr, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got != "127.0.0.1:7410" {
		t.Fatalf("discovered %q", got)
	}
}

func TestDiscoveryTimeoutWithoutResponder(t *testing.T) {
	// Nothing listens on this address: Discover must time out.
	if _, err := Discover("127.0.0.1:9", 400*time.Millisecond); err == nil {
		t.Fatal("expected timeout")
	}
}

func TestDiscoveryIgnoresGarbageProbes(t *testing.T) {
	resp, udpAddr, err := NewResponder("127.0.0.1:0", "127.0.0.1:7410")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Close()
	// The responder must survive junk datagrams and still answer a
	// proper probe afterwards. Send junk directly.
	conn, err := netDial(udpAddr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	got, err := Discover(udpAddr, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got != "127.0.0.1:7410" {
		t.Fatalf("discovered %q", got)
	}
}

func TestDiscoveryEndToEndWithAggregator(t *testing.T) {
	agg := NewAggregator(AggregatorOptions{})
	tcpAddr, err := agg.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	resp, udpAddr, err := NewResponder("127.0.0.1:0", tcpAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Close()
	// A node discovers the aggregator and connects.
	found, err := Discover(udpAddr, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	node, err := Dial(ctx, found, Hello{NodeID: 9, Name: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if err := node.Publish(Detection{Time: time.Now(), Bits: []byte{1}}); err != nil {
		t.Fatal(err)
	}
}

func TestResponderRejectsEmptyAdvertisement(t *testing.T) {
	if _, _, err := NewResponder("127.0.0.1:0", ""); err == nil {
		t.Fatal("empty TCP address should fail")
	}
}

func TestResponderCloseIdempotent(t *testing.T) {
	resp, _, err := NewResponder("127.0.0.1:0", "x:1")
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := resp.Close(); err != nil {
		t.Fatal("second close should be a no-op")
	}
}

func TestParseAnswerValidation(t *testing.T) {
	if _, err := parseAnswer([]byte{1, 2}); err == nil {
		t.Fatal("short answer should fail")
	}
	bad := append(append([]byte{}, discoveryMagic[:]...), answerType, 0, 10, 'x')
	if _, err := parseAnswer(bad); err == nil {
		t.Fatal("truncated payload should fail")
	}
}

// netDial is a tiny helper wrapping net.Dial for the garbage test.
func netDial(addr string) (interface {
	Write([]byte) (int, error)
	Close() error
}, error) {
	return netDialUDP(addr)
}

func netDialUDP(addr string) (*net.UDPConn, error) {
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	return net.DialUDP("udp", nil, raddr)
}
