package rxnet

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// frameBytes assembles a raw frame for the seed corpus without going
// through WriteFrame's validation.
func frameBytes(t FrameType, body []byte) []byte {
	b := []byte{MagicByte, Version, byte(t), 0, 0, 0, 0}
	binary.BigEndian.PutUint32(b[3:7], uint32(len(body)))
	return append(b, body...)
}

// FuzzParseFrame drives the full wire-parsing surface with arbitrary
// bytes: framing (ReadFrame) and every per-type unmarshal. The
// invariant is the cluster's byzantine-input contract — malformed
// frames must return errors; they must never panic, hang, or
// allocate unboundedly (length fields are validated before use).
func FuzzParseFrame(f *testing.F) {
	// Well-formed frames so the fuzzer starts inside the grammar.
	hello, _ := MarshalHello(Hello{NodeID: 7, Name: "rx-7", PosX: 12.5, Height: 2})
	f.Add(frameBytes(FrameHello, hello))
	chunk, _ := MarshalSampleChunk(SampleChunk{
		NodeID: 7, StreamID: 1, Seq: 1, Fs: 1000, Samples: []float64{0.5, -0.5},
	})
	f.Add(frameBytes(FrameSampleChunk, chunk))
	eh, _ := MarshalEngineHello(EngineHello{ID: "engine-a", Addr: "127.0.0.1:9"})
	f.Add(frameBytes(FrameEngineHello, eh))
	ru, _ := MarshalRingUpdate(RingUpdate{Epoch: 3, Members: []RingMember{{ID: "a", Addr: "x:1"}}})
	f.Add(frameBytes(FrameRingUpdate, ru))
	f.Add(frameBytes(FrameStreamEnd, MarshalStreamEnd(StreamEnd{Session: 99})))
	f.Add(frameBytes(FrameStreamNack, MarshalStreamNack(StreamNack{Session: 99, LastSeq: 4})))
	f.Add(frameBytes(FrameStreamAck, MarshalStreamAck(StreamAck{Session: 99, LastSeq: 4})))
	f.Add(frameBytes(FrameDrain, MarshalDrain(Drain{Draining: true})))
	f.Add(frameBytes(FrameThrottle, MarshalThrottle(Throttle{Paused: true})))
	// Malformed shapes: truncated bodies, bad magic, huge length.
	f.Add(frameBytes(FrameDrain, nil))
	f.Add(frameBytes(FrameStreamNack, []byte{1, 2, 3}))
	f.Add(frameBytes(FrameStreamEnd, []byte{0}))
	f.Add([]byte{0xFF, Version, byte(FrameHello), 0, 0, 0, 0})
	f.Add([]byte{MagicByte, Version, byte(FrameHello), 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{MagicByte})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			ft, body, err := ReadFrame(r)
			if err != nil {
				return // any error ends the stream; must not panic
			}
			switch ft {
			case FrameHello:
				UnmarshalHello(body) //nolint:errcheck
			case FrameDetection:
				UnmarshalDetection(body) //nolint:errcheck
			case FrameAck:
				UnmarshalAck(body) //nolint:errcheck
			case FrameSampleChunk:
				UnmarshalSampleChunk(body) //nolint:errcheck
			case FrameTrack:
				UnmarshalTrack(body) //nolint:errcheck
			case FrameStreamEnd:
				UnmarshalStreamEnd(body) //nolint:errcheck
			case FrameStreamNack:
				UnmarshalStreamNack(body) //nolint:errcheck
			case FrameStreamAck:
				UnmarshalStreamAck(body) //nolint:errcheck
			case FrameDrain, FrameDrainRequest:
				UnmarshalDrain(body) //nolint:errcheck
			case FrameEngineHello:
				UnmarshalEngineHello(body) //nolint:errcheck
			case FrameRingUpdate:
				UnmarshalRingUpdate(body) //nolint:errcheck
			case FrameThrottle:
				UnmarshalThrottle(body) //nolint:errcheck
			}
		}
	})
}
