// Package rxnet implements the paper's future-work item (5):
// networking the low-end receivers so they can share information
// about tracked objects. Receiver nodes decode passive packets
// locally and publish compact detection records to an aggregator
// over TCP; the aggregator fuses detections from receivers at known
// positions into object tracks (direction, speed, identity).
//
// The wire protocol is a length-prefixed binary framing (big endian)
// designed for microcontroller-class senders: no allocations beyond
// the payload, fixed header, bounded frame size.
package rxnet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"
)

// Protocol limits.
const (
	// MagicByte opens every frame.
	MagicByte = 0xA7
	// Version of the wire protocol.
	Version = 1
	// MaxFrameSize bounds a frame body (sanity limit against corrupt
	// length prefixes).
	MaxFrameSize = 64 * 1024
	// MaxBitsLen bounds the decoded payload length in a detection.
	MaxBitsLen = 256
	// MaxChunkSamples bounds one SampleChunk (4096 samples = 32 KiB
	// of payload, comfortably under MaxFrameSize).
	MaxChunkSamples = 4096
)

// FrameType discriminates messages.
type FrameType uint8

// Frame types.
const (
	// FrameHello announces a receiver node and its position.
	FrameHello FrameType = iota + 1
	// FrameDetection carries one decoded passive packet.
	FrameDetection
	// FrameAck acknowledges a detection (aggregator -> node).
	FrameAck
	// FrameTrack carries a fused track (aggregator -> subscribers).
	FrameTrack
	// FrameSampleChunk carries raw RSS samples from a node that
	// delegates decoding to the aggregator's streaming engine.
	// Unacknowledged: chunk streams are high-rate and TCP already
	// orders them.
	FrameSampleChunk
	// FrameStreamEnd ends one chunk stream (cluster router -> engine):
	// the engine finishes the stream's current packet window, emits
	// buffered detections and releases the session. Sent on handoff,
	// before the stream's chunks replay on a new owner.
	FrameStreamEnd
	// FrameStreamNack refuses a chunk stream (engine -> router): the
	// sender will consume no more of the stream's chunks and the
	// router must re-route it, replaying from LastSeq+1.
	FrameStreamNack
	// FrameDrain announces the sender's drain state (engine ->
	// router): draining engines get no new streams assigned.
	FrameDrain
	// FrameDrainRequest asks an engine to start draining (router/ops
	// -> engine). Empty body.
	FrameDrainRequest
	// FrameEngineHello announces a decode engine to a cluster router
	// (engine -> router): the engine's stable ID and its chunk-ingest
	// listen address. The router admits it onto the ring (or refreshes
	// its address after a restart) — membership is engine-initiated,
	// no operator rebalance needed. Re-sent periodically as a
	// keepalive; admission is idempotent.
	FrameEngineHello
	// FrameRingUpdate answers an EngineHello (router -> engine) with
	// the router's active ring epoch and member set, so an engine can
	// observe its own admission.
	FrameRingUpdate
	// FrameThrottle carries a backpressure signal. Engines emit it
	// upstream when their session rings or batch channel run hot
	// (paused=true) and again when pressure clears (paused=false);
	// a router relays pause/resume to the receiver-node connections
	// whose streams feed the hot engine, so nodes shed or stall at
	// the edge instead of overrunning it.
	FrameThrottle
	// FrameStreamAck confirms consumption on a chunk stream (engine ->
	// router): every chunk through LastSeq has been decoded, so the
	// router can trim the stream's replay buffer — acked chunks never
	// need replaying to a failover owner. Plain nodes receiving one
	// (direct engine connections) may ignore it.
	FrameStreamAck
	// FrameSampleReplay carries a resent sample chunk — identical body
	// to FrameSampleChunk, but explicitly marked as a retransmission
	// (node resend after a router failover, or a router replaying its
	// buffer to a failover engine). Receivers dedup replay frames
	// against their per-stream cursor and discard anything already
	// consumed instead of treating it as a stream restart; a replay
	// past the cursor is delivered normally. The distinct type exists
	// because a live chunk with Seq=1/Start=0 is indistinguishable
	// from a genuine restart, while a replayed one is provably a
	// duplicate.
	FrameSampleReplay
)

// Errors.
var (
	ErrBadMagic    = errors.New("rxnet: bad frame magic")
	ErrBadVersion  = errors.New("rxnet: unsupported protocol version")
	ErrFrameTooBig = errors.New("rxnet: frame exceeds size limit")
	ErrTruncated   = errors.New("rxnet: truncated frame")
)

// Hello announces a node.
type Hello struct {
	NodeID uint32
	// X position of the receiver along the monitored lane (m).
	PosX float64
	// Height of the receiver (m).
	Height float64
	// Name is a short label (<= 64 bytes).
	Name string
}

// Detection is one decoded passive packet at one receiver.
type Detection struct {
	NodeID uint32
	// Seq is a per-node monotonically increasing sequence number.
	Seq uint32
	// Time the packet's preamble crossed the receiver.
	Time time.Time
	// Bits is the decoded payload ('0'/'1' per entry).
	Bits []byte
	// RSSPeak and NoiseFloor summarize link quality.
	RSSPeak    float64
	NoiseFloor float64
	// SymbolRate is the measured symbols/second (1/tau_t).
	SymbolRate float64
}

// Track is a fused multi-receiver observation of one object.
type Track struct {
	ObjectBits []byte
	// FirstNode/LastNode are the receivers that saw the object first
	// and last.
	FirstNode, LastNode uint32
	// SpeedMS is the estimated speed (m/s), positive in +x direction.
	SpeedMS float64
	// FirstSeen/LastSeen timestamps.
	FirstSeen, LastSeen time.Time
	// Confirmations is the number of receivers that saw the object.
	Confirmations int
}

// Ack confirms receipt of a detection.
type Ack struct {
	NodeID uint32
	Seq    uint32
}

// SampleChunk is a slice of raw RSS samples streamed by a node for
// server-side decoding.
type SampleChunk struct {
	NodeID uint32
	// StreamID distinguishes multiple sensors on one node.
	StreamID uint32
	// Seq is a per-stream monotonically increasing chunk counter.
	Seq uint32
	// Fs is the stream's sample rate (Hz); it must not change within
	// a stream.
	Fs float64
	// Start is the absolute index of Samples[0] within the stream.
	Start uint64
	// Samples are RSS values (ADC counts).
	Samples []float64
}

// SessionKey maps the (node, stream) pair onto one streaming-engine
// session id.
func (c SampleChunk) SessionKey() uint64 {
	return uint64(c.NodeID)<<32 | uint64(c.StreamID)
}

// SessionNodeID recovers the node half of a SessionKey. Consumers of
// engine/pipeline detections must use this (not the bit layout) to
// attribute a session to its node.
func SessionNodeID(key uint64) uint32 { return uint32(key >> 32) }

// SessionStreamID recovers the stream half of a SessionKey.
func SessionStreamID(key uint64) uint32 { return uint32(key) }

// WriteFrame writes one frame: magic, version, type, 4-byte length,
// body.
func WriteFrame(w io.Writer, t FrameType, body []byte) error {
	if len(body) > MaxFrameSize {
		return ErrFrameTooBig
	}
	var hdr [7]byte
	hdr[0] = MagicByte
	hdr[1] = Version
	hdr[2] = byte(t)
	binary.BigEndian.PutUint32(hdr[3:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadFrame reads one frame, returning its type and body.
func ReadFrame(r io.Reader) (FrameType, []byte, error) {
	var hdr [7]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if hdr[0] != MagicByte {
		return 0, nil, ErrBadMagic
	}
	if hdr[1] != Version {
		return 0, nil, ErrBadVersion
	}
	n := binary.BigEndian.Uint32(hdr[3:])
	if n > MaxFrameSize {
		return 0, nil, ErrFrameTooBig
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, ErrTruncated
		}
		return 0, nil, err
	}
	return FrameType(hdr[2]), body, nil
}

func putF64(buf *bytes.Buffer, v float64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
	buf.Write(b[:])
}

func getF64(b []byte) float64 {
	return math.Float64frombits(binary.BigEndian.Uint64(b))
}

// MarshalHello encodes a Hello body.
func MarshalHello(h Hello) ([]byte, error) {
	if len(h.Name) > 64 {
		return nil, fmt.Errorf("rxnet: node name %q too long", h.Name)
	}
	var buf bytes.Buffer
	var id [4]byte
	binary.BigEndian.PutUint32(id[:], h.NodeID)
	buf.Write(id[:])
	putF64(&buf, h.PosX)
	putF64(&buf, h.Height)
	buf.WriteByte(byte(len(h.Name)))
	buf.WriteString(h.Name)
	return buf.Bytes(), nil
}

// UnmarshalHello decodes a Hello body.
func UnmarshalHello(b []byte) (Hello, error) {
	if len(b) < 4+8+8+1 {
		return Hello{}, ErrTruncated
	}
	h := Hello{
		NodeID: binary.BigEndian.Uint32(b[0:4]),
		PosX:   getF64(b[4:12]),
		Height: getF64(b[12:20]),
	}
	nameLen := int(b[20])
	if len(b) < 21+nameLen {
		return Hello{}, ErrTruncated
	}
	h.Name = string(b[21 : 21+nameLen])
	return h, nil
}

// MarshalDetection encodes a Detection body.
func MarshalDetection(d Detection) ([]byte, error) {
	if len(d.Bits) > MaxBitsLen {
		return nil, fmt.Errorf("rxnet: %d bits exceeds limit %d", len(d.Bits), MaxBitsLen)
	}
	for i, bit := range d.Bits {
		if bit != 0 && bit != 1 {
			return nil, fmt.Errorf("rxnet: bit %d has invalid value %d", i, bit)
		}
	}
	var buf bytes.Buffer
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], d.NodeID)
	buf.Write(u32[:])
	binary.BigEndian.PutUint32(u32[:], d.Seq)
	buf.Write(u32[:])
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], uint64(d.Time.UnixNano()))
	buf.Write(u64[:])
	putF64(&buf, d.RSSPeak)
	putF64(&buf, d.NoiseFloor)
	putF64(&buf, d.SymbolRate)
	buf.WriteByte(byte(len(d.Bits)))
	buf.Write(d.Bits)
	return buf.Bytes(), nil
}

// UnmarshalDetection decodes a Detection body.
func UnmarshalDetection(b []byte) (Detection, error) {
	const fixed = 4 + 4 + 8 + 8 + 8 + 8 + 1
	if len(b) < fixed {
		return Detection{}, ErrTruncated
	}
	d := Detection{
		NodeID:     binary.BigEndian.Uint32(b[0:4]),
		Seq:        binary.BigEndian.Uint32(b[4:8]),
		Time:       time.Unix(0, int64(binary.BigEndian.Uint64(b[8:16]))),
		RSSPeak:    getF64(b[16:24]),
		NoiseFloor: getF64(b[24:32]),
		SymbolRate: getF64(b[32:40]),
	}
	n := int(b[40])
	if len(b) < fixed+n {
		return Detection{}, ErrTruncated
	}
	d.Bits = append([]byte(nil), b[fixed:fixed+n]...)
	for i, bit := range d.Bits {
		if bit != 0 && bit != 1 {
			return Detection{}, fmt.Errorf("rxnet: bit %d has invalid value %d", i, bit)
		}
	}
	return d, nil
}

// MarshalAck encodes an Ack body.
func MarshalAck(a Ack) []byte {
	var b [8]byte
	binary.BigEndian.PutUint32(b[0:4], a.NodeID)
	binary.BigEndian.PutUint32(b[4:8], a.Seq)
	return b[:]
}

// UnmarshalAck decodes an Ack body.
func UnmarshalAck(b []byte) (Ack, error) {
	if len(b) < 8 {
		return Ack{}, ErrTruncated
	}
	return Ack{
		NodeID: binary.BigEndian.Uint32(b[0:4]),
		Seq:    binary.BigEndian.Uint32(b[4:8]),
	}, nil
}

// MarshalSampleChunk encodes a SampleChunk body.
func MarshalSampleChunk(c SampleChunk) ([]byte, error) {
	if len(c.Samples) > MaxChunkSamples {
		return nil, fmt.Errorf("rxnet: %d samples exceeds chunk limit %d", len(c.Samples), MaxChunkSamples)
	}
	if c.Fs <= 0 {
		return nil, fmt.Errorf("rxnet: chunk needs a positive sample rate, got %g", c.Fs)
	}
	buf := bytes.NewBuffer(make([]byte, 0, 4+4+4+8+8+2+8*len(c.Samples)))
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], c.NodeID)
	buf.Write(u32[:])
	binary.BigEndian.PutUint32(u32[:], c.StreamID)
	buf.Write(u32[:])
	binary.BigEndian.PutUint32(u32[:], c.Seq)
	buf.Write(u32[:])
	putF64(buf, c.Fs)
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], c.Start)
	buf.Write(u64[:])
	var u16 [2]byte
	binary.BigEndian.PutUint16(u16[:], uint16(len(c.Samples)))
	buf.Write(u16[:])
	for _, s := range c.Samples {
		putF64(buf, s)
	}
	return buf.Bytes(), nil
}

// UnmarshalSampleChunk decodes a SampleChunk body.
func UnmarshalSampleChunk(b []byte) (SampleChunk, error) {
	const fixed = 4 + 4 + 4 + 8 + 8 + 2
	if len(b) < fixed {
		return SampleChunk{}, ErrTruncated
	}
	c := SampleChunk{
		NodeID:   binary.BigEndian.Uint32(b[0:4]),
		StreamID: binary.BigEndian.Uint32(b[4:8]),
		Seq:      binary.BigEndian.Uint32(b[8:12]),
		Fs:       getF64(b[12:20]),
		Start:    binary.BigEndian.Uint64(b[20:28]),
	}
	n := int(binary.BigEndian.Uint16(b[28:30]))
	if n > MaxChunkSamples {
		return SampleChunk{}, fmt.Errorf("rxnet: %d samples exceeds chunk limit %d", n, MaxChunkSamples)
	}
	if len(b) < fixed+8*n {
		return SampleChunk{}, ErrTruncated
	}
	if c.Fs <= 0 || math.IsNaN(c.Fs) || math.IsInf(c.Fs, 0) {
		return SampleChunk{}, fmt.Errorf("rxnet: chunk has invalid sample rate %g", c.Fs)
	}
	c.Samples = make([]float64, n)
	for i := range c.Samples {
		v := getF64(b[fixed+8*i : fixed+8*i+8])
		if math.IsNaN(v) || math.IsInf(v, 0) {
			// One NaN would wedge the server-side noise-floor tracker
			// permanently; reject the frame at the wire instead.
			return SampleChunk{}, fmt.Errorf("rxnet: chunk sample %d is not finite", i)
		}
		c.Samples[i] = v
	}
	return c, nil
}

// StreamEnd orders an engine to finish a chunk stream: flush the
// session's decode boundary (current packet window), emit, release.
type StreamEnd struct {
	// Session is the stream's SessionKey.
	Session uint64
}

// MarshalStreamEnd encodes a StreamEnd body.
func MarshalStreamEnd(e StreamEnd) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], e.Session)
	return b[:]
}

// UnmarshalStreamEnd decodes a StreamEnd body.
func UnmarshalStreamEnd(b []byte) (StreamEnd, error) {
	if len(b) < 8 {
		return StreamEnd{}, ErrTruncated
	}
	return StreamEnd{Session: binary.BigEndian.Uint64(b[0:8])}, nil
}

// StreamNack tells the router the sending engine will consume no more
// chunks of a stream (it is draining, or the stream was reassigned).
type StreamNack struct {
	// Session is the stream's SessionKey.
	Session uint64
	// LastSeq is the highest chunk Seq the engine consumed; the
	// router replays the stream from LastSeq+1 on its new owner.
	// Chunk Seqs start at 1, so 0 means "nothing consumed, replay
	// from the beginning".
	LastSeq uint32
}

// MarshalStreamNack encodes a StreamNack body.
func MarshalStreamNack(n StreamNack) []byte {
	var b [12]byte
	binary.BigEndian.PutUint64(b[0:8], n.Session)
	binary.BigEndian.PutUint32(b[8:12], n.LastSeq)
	return b[:]
}

// UnmarshalStreamNack decodes a StreamNack body.
func UnmarshalStreamNack(b []byte) (StreamNack, error) {
	if len(b) < 12 {
		return StreamNack{}, ErrTruncated
	}
	return StreamNack{
		Session: binary.BigEndian.Uint64(b[0:8]),
		LastSeq: binary.BigEndian.Uint32(b[8:12]),
	}, nil
}

// StreamAck tells the router the sending engine has consumed
// (decoded) a stream's chunks through LastSeq. It is the inverse of a
// StreamNack: instead of pushing unconsumed chunks to a new owner, it
// lets the router drop them from the replay buffer — a later crash of
// this engine must replay only what was never acked.
type StreamAck struct {
	// Session is the stream's SessionKey.
	Session uint64
	// LastSeq is the highest chunk Seq consumed into a decoded packet.
	LastSeq uint32
}

// MarshalStreamAck encodes a StreamAck body.
func MarshalStreamAck(a StreamAck) []byte {
	var b [12]byte
	binary.BigEndian.PutUint64(b[0:8], a.Session)
	binary.BigEndian.PutUint32(b[8:12], a.LastSeq)
	return b[:]
}

// UnmarshalStreamAck decodes a StreamAck body.
func UnmarshalStreamAck(b []byte) (StreamAck, error) {
	if len(b) < 12 {
		return StreamAck{}, ErrTruncated
	}
	return StreamAck{
		Session: binary.BigEndian.Uint64(b[0:8]),
		LastSeq: binary.BigEndian.Uint32(b[8:12]),
	}, nil
}

// Drain announces the sending engine's drain state. Draining engines
// keep their in-flight streams (they finish at their own pace — that
// is what makes drains lossless) but must be assigned no new ones.
type Drain struct {
	Draining bool
}

// MarshalDrain encodes a Drain body.
func MarshalDrain(d Drain) []byte {
	if d.Draining {
		return []byte{1}
	}
	return []byte{0}
}

// UnmarshalDrain decodes a Drain body.
func UnmarshalDrain(b []byte) (Drain, error) {
	if len(b) < 1 {
		return Drain{}, ErrTruncated
	}
	return Drain{Draining: b[0] != 0}, nil
}

// EngineHello announces a decode engine to a cluster router: its
// stable ring identity and the address the router should dial for
// chunk forwarding.
type EngineHello struct {
	// ID is the engine's stable ring identity (<= 64 bytes). Ownership
	// hashes IDs, so a restarted engine that keeps its ID keeps its
	// ring slice even on a new address.
	ID string
	// Addr is the engine's chunk-ingest listen address ("host:port",
	// <= 255 bytes).
	Addr string
}

// MarshalEngineHello encodes an EngineHello body.
func MarshalEngineHello(h EngineHello) ([]byte, error) {
	if h.ID == "" || len(h.ID) > 64 {
		return nil, fmt.Errorf("rxnet: engine hello needs an ID of 1-64 bytes, got %d", len(h.ID))
	}
	if h.Addr == "" || len(h.Addr) > 255 {
		return nil, fmt.Errorf("rxnet: engine hello needs an address of 1-255 bytes, got %d", len(h.Addr))
	}
	var buf bytes.Buffer
	buf.WriteByte(byte(len(h.ID)))
	buf.WriteString(h.ID)
	buf.WriteByte(byte(len(h.Addr)))
	buf.WriteString(h.Addr)
	return buf.Bytes(), nil
}

// UnmarshalEngineHello decodes an EngineHello body.
func UnmarshalEngineHello(b []byte) (EngineHello, error) {
	if len(b) < 1 {
		return EngineHello{}, ErrTruncated
	}
	idLen := int(b[0])
	if idLen == 0 || idLen > 64 {
		return EngineHello{}, fmt.Errorf("rxnet: engine hello ID length %d out of range", idLen)
	}
	if len(b) < 1+idLen+1 {
		return EngineHello{}, ErrTruncated
	}
	h := EngineHello{ID: string(b[1 : 1+idLen])}
	addrLen := int(b[1+idLen])
	if addrLen == 0 {
		return EngineHello{}, errors.New("rxnet: engine hello has an empty address")
	}
	if len(b) < 2+idLen+addrLen {
		return EngineHello{}, ErrTruncated
	}
	h.Addr = string(b[2+idLen : 2+idLen+addrLen])
	return h, nil
}

// MaxRingMembers bounds a RingUpdate's member list.
const MaxRingMembers = 1024

// RingMember is one engine in a RingUpdate.
type RingMember struct {
	ID   string
	Addr string
}

// RingUpdate reports a router's active ring to an engine, answering
// its EngineHello.
type RingUpdate struct {
	// Epoch is the ring's membership version.
	Epoch uint64
	// Members is the admitted engine set.
	Members []RingMember
}

// MarshalRingUpdate encodes a RingUpdate body.
func MarshalRingUpdate(u RingUpdate) ([]byte, error) {
	if len(u.Members) > MaxRingMembers {
		return nil, fmt.Errorf("rxnet: %d ring members exceeds limit %d", len(u.Members), MaxRingMembers)
	}
	var buf bytes.Buffer
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], u.Epoch)
	buf.Write(u64[:])
	var u16 [2]byte
	binary.BigEndian.PutUint16(u16[:], uint16(len(u.Members)))
	buf.Write(u16[:])
	for _, m := range u.Members {
		if len(m.ID) > 64 || len(m.Addr) > 255 {
			return nil, fmt.Errorf("rxnet: ring member %q fields too long", m.ID)
		}
		buf.WriteByte(byte(len(m.ID)))
		buf.WriteString(m.ID)
		buf.WriteByte(byte(len(m.Addr)))
		buf.WriteString(m.Addr)
	}
	if buf.Len() > MaxFrameSize {
		return nil, ErrFrameTooBig
	}
	return buf.Bytes(), nil
}

// UnmarshalRingUpdate decodes a RingUpdate body.
func UnmarshalRingUpdate(b []byte) (RingUpdate, error) {
	if len(b) < 10 {
		return RingUpdate{}, ErrTruncated
	}
	u := RingUpdate{Epoch: binary.BigEndian.Uint64(b[0:8])}
	n := int(binary.BigEndian.Uint16(b[8:10]))
	if n > MaxRingMembers {
		return RingUpdate{}, fmt.Errorf("rxnet: %d ring members exceeds limit %d", n, MaxRingMembers)
	}
	off := 10
	for i := 0; i < n; i++ {
		if len(b) < off+1 {
			return RingUpdate{}, ErrTruncated
		}
		idLen := int(b[off])
		off++
		if len(b) < off+idLen+1 {
			return RingUpdate{}, ErrTruncated
		}
		m := RingMember{ID: string(b[off : off+idLen])}
		off += idLen
		addrLen := int(b[off])
		off++
		if len(b) < off+addrLen {
			return RingUpdate{}, ErrTruncated
		}
		m.Addr = string(b[off : off+addrLen])
		off += addrLen
		u.Members = append(u.Members, m)
	}
	return u, nil
}

// Throttle is a backpressure signal: paused=true asks the receiver to
// stop (or shed) new sample chunks until a paused=false follows.
type Throttle struct {
	Paused bool
}

// MarshalThrottle encodes a Throttle body.
func MarshalThrottle(t Throttle) []byte {
	if t.Paused {
		return []byte{1}
	}
	return []byte{0}
}

// UnmarshalThrottle decodes a Throttle body.
func UnmarshalThrottle(b []byte) (Throttle, error) {
	if len(b) < 1 {
		return Throttle{}, ErrTruncated
	}
	return Throttle{Paused: b[0] != 0}, nil
}

// MarshalTrack encodes a Track body.
func MarshalTrack(t Track) ([]byte, error) {
	if len(t.ObjectBits) > MaxBitsLen {
		return nil, fmt.Errorf("rxnet: %d bits exceeds limit %d", len(t.ObjectBits), MaxBitsLen)
	}
	var buf bytes.Buffer
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], t.FirstNode)
	buf.Write(u32[:])
	binary.BigEndian.PutUint32(u32[:], t.LastNode)
	buf.Write(u32[:])
	putF64(&buf, t.SpeedMS)
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], uint64(t.FirstSeen.UnixNano()))
	buf.Write(u64[:])
	binary.BigEndian.PutUint64(u64[:], uint64(t.LastSeen.UnixNano()))
	buf.Write(u64[:])
	binary.BigEndian.PutUint32(u32[:], uint32(t.Confirmations))
	buf.Write(u32[:])
	buf.WriteByte(byte(len(t.ObjectBits)))
	buf.Write(t.ObjectBits)
	return buf.Bytes(), nil
}

// UnmarshalTrack decodes a Track body.
func UnmarshalTrack(b []byte) (Track, error) {
	const fixed = 4 + 4 + 8 + 8 + 8 + 4 + 1
	if len(b) < fixed {
		return Track{}, ErrTruncated
	}
	t := Track{
		FirstNode:     binary.BigEndian.Uint32(b[0:4]),
		LastNode:      binary.BigEndian.Uint32(b[4:8]),
		SpeedMS:       getF64(b[8:16]),
		FirstSeen:     time.Unix(0, int64(binary.BigEndian.Uint64(b[16:24]))),
		LastSeen:      time.Unix(0, int64(binary.BigEndian.Uint64(b[24:32]))),
		Confirmations: int(binary.BigEndian.Uint32(b[32:36])),
	}
	n := int(b[36])
	if len(b) < fixed+n {
		return Track{}, ErrTruncated
	}
	t.ObjectBits = append([]byte(nil), b[fixed:fixed+n]...)
	return t, nil
}

// BitsString renders a bit slice as "0"/"1" text.
func BitsString(bits []byte) string {
	out := make([]byte, len(bits))
	for i, b := range bits {
		out[i] = '0' + b
	}
	return string(out)
}
