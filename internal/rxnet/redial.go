package rxnet

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"time"
)

// Backoff computes capped exponential redial delays with jitter:
// attempt n (1-based) waits Base<<(n-1) capped at Max, scaled by a
// uniform factor in [0.5, 1.5) so a fleet of retrying peers does not
// thundering-herd a restarted server. The zero value selects
// 500 ms / 15 s.
type Backoff struct {
	// Base is the first-attempt delay. Zero selects 500 ms.
	Base time.Duration
	// Max caps the exponential growth. Zero selects 15 s.
	Max time.Duration
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 500 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 15 * time.Second
	}
	if b.Max < b.Base {
		b.Max = b.Base
	}
	return b
}

// Delay returns the jittered delay before attempt n (1-based).
func (b Backoff) Delay(attempt int) time.Duration {
	b = b.withDefaults()
	d := b.Base
	for i := 1; i < attempt && d < b.Max; i++ {
		d *= 2
	}
	if d > b.Max {
		d = b.Max
	}
	// Uniform jitter in [0.5d, 1.5d).
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// RedialConfig tunes a reliable node client (DialReliable).
type RedialConfig struct {
	// Backoff paces reconnect attempts after a connection failure.
	Backoff Backoff
	// MaxDowntime bounds one reconnect episode: if the server stays
	// unreachable this long, the pending write fails with the dial
	// error. Zero selects 30 s; negative retries forever.
	MaxDowntime time.Duration
	// FlowControl starts a control reader that honors server-sent
	// Throttle frames: StreamChunk stalls while paused (or sheds, see
	// ShedWhilePaused). A flow-controlled node must not use Publish —
	// the reader would consume its acks.
	FlowControl bool
	// ShedWhilePaused makes a paused StreamChunk discard the chunk
	// (advancing the stream counters so the gap stays visible to the
	// server's continuity cursor, and counting it in Shed) instead of
	// blocking until resume — edge-side load shedding.
	ShedWhilePaused bool
	// Logf receives diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

func (c RedialConfig) withDefaults() RedialConfig {
	if c.MaxDowntime == 0 {
		c.MaxDowntime = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// ErrNodeClosed reports a write on a closed reliable node.
var ErrNodeClosed = errors.New("rxnet: node closed")

// DialReliable connects a node like Dial but survives server
// restarts: writes that hit a dead connection redial with capped
// exponential backoff and jitter, re-announce the Hello, and resume
// every stream's chunk numbering — a router bounce costs at most one
// counted continuity reset, never a silent splice. With
// cfg.FlowControl it also honors server Throttle frames (cluster
// backpressure). The initial dial retries under the same policy, so
// nodes may start before their router.
func DialReliable(ctx context.Context, addr string, hello Hello, cfg RedialConfig) (*Node, error) {
	cfg = cfg.withDefaults()
	helloBody, err := MarshalHello(hello)
	if err != nil {
		return nil, err
	}
	n := &Node{
		hello:     hello,
		addr:      addr,
		rcfg:      &cfg,
		helloBody: helloBody,
		rctx:      ctx,
		closedCh:  make(chan struct{}),
		resumeCh:  make(chan struct{}),
	}
	n.mu.Lock()
	err = n.reconnectLocked(0)
	n.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if cfg.FlowControl {
		n.readerWG.Add(1)
		go n.controlLoop()
	}
	return n, nil
}

// Redials reports how many times a reliable node has re-established
// its connection (the initial dial not counted).
func (n *Node) Redials() int64 { return n.redials.Load() }

// Shed reports how many chunks a ShedWhilePaused node discarded while
// the server held it paused.
func (n *Node) Shed() int64 { return n.shedCnt.Load() }

// Paused reports whether the server currently holds this
// flow-controlled node paused.
func (n *Node) Paused() bool {
	if n.rcfg == nil {
		return false
	}
	n.pmu.Lock()
	defer n.pmu.Unlock()
	return n.paused
}

// reconnectLocked re-establishes the connection if generation gen is
// still current (a concurrent caller may have beaten us to it),
// retrying with backoff until MaxDowntime. Callers hold n.mu.
func (n *Node) reconnectLocked(gen int) error {
	if n.gen != gen {
		return nil // already reconnected by another path
	}
	if n.conn != nil {
		n.conn.Close()
		n.conn = nil
	}
	var deadline time.Time
	if n.rcfg.MaxDowntime > 0 {
		deadline = time.Now().Add(n.rcfg.MaxDowntime)
	}
	for attempt := 1; ; attempt++ {
		select {
		case <-n.closedCh:
			return ErrNodeClosed
		case <-n.rctx.Done():
			return n.rctx.Err()
		default:
		}
		conn, err := n.dialOnce()
		if err == nil {
			n.conn = conn
			n.gen++
			if n.gen > 1 {
				n.redials.Add(1)
				n.rcfg.Logf("rxnet: node %d reconnected to %s (attempt %d)", n.hello.NodeID, n.addr, attempt)
			}
			return nil
		}
		delay := n.rcfg.Backoff.Delay(attempt)
		if !deadline.IsZero() && time.Now().Add(delay).After(deadline) {
			return err
		}
		select {
		case <-time.After(delay):
		case <-n.closedCh:
			return ErrNodeClosed
		case <-n.rctx.Done():
			return n.rctx.Err()
		}
	}
}

// dialOnce makes one connection attempt and sends the Hello.
func (n *Node) dialOnce() (net.Conn, error) {
	var d net.Dialer
	dctx, cancel := context.WithTimeout(n.rctx, 5*time.Second)
	defer cancel()
	conn, err := d.DialContext(dctx, "tcp", n.addr)
	if err != nil {
		return nil, err
	}
	if err := conn.SetWriteDeadline(time.Now().Add(10 * time.Second)); err != nil {
		conn.Close()
		return nil, err
	}
	if err := WriteFrame(conn, FrameHello, n.helloBody); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// writeChunkLocked writes one chunk frame, redialing and retrying on
// failure for reliable nodes. Callers hold n.mu.
func (n *Node) writeChunkLocked(body []byte) error {
	for {
		gen := n.gen
		if err := n.conn.SetWriteDeadline(time.Now().Add(10 * time.Second)); err == nil {
			if err := WriteFrame(n.conn, FrameSampleChunk, body); err == nil {
				return nil
			} else if n.rcfg == nil {
				return err
			}
		} else if n.rcfg == nil {
			return err
		}
		// The connection died under the write: reconnect and resend.
		// Whether the server consumed the failed chunk is unknowable
		// without acks; a duplicate surfaces as a counted continuity
		// reset on the server, never a silent splice.
		if err := n.reconnectLocked(gen); err != nil {
			return err
		}
	}
}

// pauseGate blocks while a flow-controlled (non-shedding) node is
// paused by the server. Advisory: a pause that lands after the gate
// delays only until the next chunk.
func (n *Node) pauseGate() error {
	if n.rcfg == nil || !n.rcfg.FlowControl || n.rcfg.ShedWhilePaused {
		return nil
	}
	for {
		n.pmu.Lock()
		if !n.paused {
			n.pmu.Unlock()
			return nil
		}
		ch := n.resumeCh
		n.pmu.Unlock()
		select {
		case <-ch:
		case <-n.closedCh:
			return ErrNodeClosed
		case <-n.rctx.Done():
			return n.rctx.Err()
		}
	}
}

// shedGateLocked reports whether a paused shedding node should drop
// the chunk in hand. Callers hold n.mu; counters still advance so the
// server's continuity cursor sees the gap.
func (n *Node) shedGateLocked() bool {
	if n.rcfg == nil || !n.rcfg.FlowControl || !n.rcfg.ShedWhilePaused {
		return false
	}
	n.pmu.Lock()
	paused := n.paused
	n.pmu.Unlock()
	if paused {
		n.shedCnt.Add(1)
	}
	return paused
}

// controlLoop consumes server-to-node control frames (Throttle
// pause/resume, drain notices) and drives reconnects when the read
// side sees the connection die first.
func (n *Node) controlLoop() {
	defer n.readerWG.Done()
	for {
		n.mu.Lock()
		conn, gen := n.conn, n.gen
		n.mu.Unlock()
		if conn == nil {
			return
		}
		conn.SetReadDeadline(time.Time{})
		t, body, err := ReadFrame(conn)
		if err != nil {
			select {
			case <-n.closedCh:
				return
			case <-n.rctx.Done():
				return
			default:
			}
			n.mu.Lock()
			rerr := n.reconnectLocked(gen)
			n.mu.Unlock()
			if rerr != nil {
				n.rcfg.Logf("rxnet: node %d control reader giving up: %v", n.hello.NodeID, rerr)
				return
			}
			// A reconnect lands on a fresh server conn with no pause
			// state; release any stalled writer.
			n.setPaused(false)
			continue
		}
		switch t {
		case FrameThrottle:
			th, err := UnmarshalThrottle(body)
			if err != nil {
				n.rcfg.Logf("rxnet: node %d bad throttle: %v", n.hello.NodeID, err)
				continue
			}
			n.setPaused(th.Paused)
		default:
			// Drain notices and future control frames are advisory for
			// a sending node; ignore.
		}
	}
}

// setPaused flips the flow-control state, waking blocked writers on
// resume.
func (n *Node) setPaused(paused bool) {
	n.pmu.Lock()
	defer n.pmu.Unlock()
	if paused == n.paused {
		return
	}
	n.paused = paused
	if paused {
		n.resumeCh = make(chan struct{})
	} else {
		close(n.resumeCh)
	}
}
